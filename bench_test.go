// Benchmark harness: one testing.B benchmark per table/figure of the
// paper, plus ablation benchmarks for the design decisions listed in
// DESIGN.md §4.
//
// The raw-throughput and figure benchmarks live in internal/benchsuite,
// shared with cmd/bench (which records them into BENCH_<n>.json); the
// thin Benchmark* shells here keep them runnable through `go test
// -bench` with identical semantics. Each figure benchmark regenerates
// its experiment at reduced fidelity (three representative apps, 400K
// instructions) so the whole suite finishes in minutes; cmd/figures
// runs the same drivers at full fidelity. Reported custom metrics
// (edp_red_pct and friends) carry the experiment's headline result so
// regressions in *results*, not just speed, show up in benchmark diffs.
// The ablation and orchestration benchmarks below assert properties
// (memo hits, barrier counts) and stay test-only.
package resizecache_test

import (
	"context"
	"testing"
	"time"

	"resizecache"
	"resizecache/figures"
	"resizecache/internal/benchsuite"
	"resizecache/internal/core"
	"resizecache/internal/experiment"
	"resizecache/internal/runner"
	"resizecache/internal/sim"
)

// benchApps mirrors benchsuite.BenchApps for the test-only benchmarks.
var benchApps = benchsuite.BenchApps

func benchFigOpts() figures.Options { return benchsuite.FigOpts() }

func benchOpts() experiment.Options {
	o := experiment.DefaultOptions()
	o.Instructions = 400_000
	o.Apps = benchApps
	return o
}

func BenchmarkTable1Hybrid(b *testing.B)            { benchsuite.Table1Hybrid(b) }
func BenchmarkFigure4Organizations(b *testing.B)    { benchsuite.Figure4Organizations(b) }
func BenchmarkFigure5PerApp(b *testing.B)           { benchsuite.Figure5PerApp(b) }
func BenchmarkFigure6Hybrid(b *testing.B)           { benchsuite.Figure6Hybrid(b) }
func BenchmarkFigure7DCacheStrategies(b *testing.B) { benchsuite.Figure7DCacheStrategies(b) }
func BenchmarkFigure8ICacheStrategies(b *testing.B) { benchsuite.Figure8ICacheStrategies(b) }
func BenchmarkFigure9DualResize(b *testing.B)       { benchsuite.Figure9DualResize(b) }
func BenchmarkFigureL2Resizing(b *testing.B)        { benchsuite.FigureL2Resizing(b) }

// Raw-throughput benchmarks (simulator engineering, not paper results).

func BenchmarkSimRun(b *testing.B)              { benchsuite.SimRun(b) }
func BenchmarkSimSampled(b *testing.B)          { benchsuite.SimSampled(b) }
func BenchmarkSimRunDeepHierarchy(b *testing.B) { benchsuite.SimRunDeepHierarchy(b) }
func BenchmarkSimInOrder(b *testing.B)          { benchsuite.SimInOrder(b) }
func BenchmarkSweepGang(b *testing.B)           { benchsuite.SweepGang(b) }
func BenchmarkWorkloadGenerator(b *testing.B)   { benchsuite.WorkloadGenerator(b) }

// BenchmarkPlanBatchVsSequential quantifies the tentpole property of
// the batch API: one plan over N scenarios submits its profiling sweeps
// in one batched enqueue pass, where N sequential Simulate calls pay
// one enqueue pass per sweep and drain the pool between scenarios.
// (Both paths now gather barrier-free — sequential sweeps pre-enqueue
// their candidates.) Both paths run the identical scenario set on cold
// sessions; the reported metrics carry the enqueue-pass counts and wall
// times.
func BenchmarkPlanBatchVsSequential(b *testing.B) {
	scenarios := make([]resizecache.Scenario, 0, len(benchApps))
	for _, app := range benchApps {
		scenarios = append(scenarios, resizecache.Scenario{
			Benchmark:    app,
			Organization: resizecache.SelectiveSets,
			Sides:        resizecache.DOnly,
			Instructions: 400_000,
		})
	}
	plan, err := resizecache.PlanOf(scenarios...)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var planNS, seqNS, planPasses, seqPasses float64
	for i := 0; i < b.N; i++ {
		batch := resizecache.NewSession()
		start := time.Now()
		if _, err := resizecache.Collect(batch.Run(ctx, plan)); err != nil {
			b.Fatal(err)
		}
		planNS = float64(time.Since(start).Nanoseconds())

		seq := resizecache.NewSession()
		start = time.Now()
		for _, sc := range scenarios {
			if _, err := seq.Simulate(sc); err != nil {
				b.Fatal(err)
			}
		}
		seqNS = float64(time.Since(start).Nanoseconds())

		bst, sst := batch.Stats(), seq.Stats()
		if bst.Runs != sst.Runs {
			b.Fatalf("paths ran different work: %d vs %d sims", bst.Runs, sst.Runs)
		}
		if bst.EnqueueBatches >= sst.EnqueueBatches {
			b.Fatalf("plan run did not reduce enqueue passes: %d vs %d",
				bst.EnqueueBatches, sst.EnqueueBatches)
		}
		planPasses, seqPasses = float64(bst.EnqueueBatches), float64(sst.EnqueueBatches)
	}
	b.ReportMetric(planNS, "plan_ns")
	b.ReportMetric(seqNS, "sequential_ns")
	b.ReportMetric(planPasses, "plan_enqueue_passes")
	b.ReportMetric(seqPasses, "sequential_enqueue_passes")
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §4).
// ---------------------------------------------------------------------

// staticSetsRun runs m88ksim with a statically downsized selective-sets
// d-cache, with the given ablation switches, and returns the EDP
// reduction versus the non-resizable baseline.
func staticSetsRun(b *testing.B, fullPrecharge, freeFlush bool, dynamic bool) float64 {
	b.Helper()
	base := sim.Default("m88ksim")
	base.Instructions = 400_000
	bres, err := sim.Run(base)
	if err != nil {
		b.Fatal(err)
	}
	cut := base
	cut.DCache.Org = core.SelectiveSets
	if dynamic {
		cut.DCache.Policy = sim.PolicySpec{Kind: sim.PolicyDynamic,
			Interval: 16384, MissBound: 163, SizeBoundBytes: 4 << 10}
	} else {
		cut.DCache.Policy = sim.PolicySpec{Kind: sim.PolicyStatic, StaticIndex: 3} // 4K
	}
	cut.DCache.AblationFullPrecharge = fullPrecharge
	cut.DCache.AblationFreeFlush = freeFlush
	cres, err := sim.Run(cut)
	if err != nil {
		b.Fatal(err)
	}
	return cres.EDP.ReductionPct(bres.EDP)
}

// BenchmarkAblationFullPrecharge quantifies design decision 1: with all
// subarrays precharging regardless of masks, resizing saves (almost)
// nothing — the enabled-subarray accounting is where the benefit lives.
func BenchmarkAblationFullPrecharge(b *testing.B) {
	var withMasks, without float64
	for i := 0; i < b.N; i++ {
		withMasks = staticSetsRun(b, false, false, false)
		without = staticSetsRun(b, true, false, false)
	}
	b.ReportMetric(withMasks, "masked_edp_red_pct")
	b.ReportMetric(without, "fullprecharge_edp_red_pct")
}

// BenchmarkAblationFreeFlush quantifies design decision 3: the cost of
// selective-sets' flush semantics under dynamic resizing. su2cor's
// periodic working set makes the controller resize repeatedly, so every
// transition pays (or, ablated, skips) the flush traffic.
func BenchmarkAblationFreeFlush(b *testing.B) {
	run := func(freeFlush bool) float64 {
		base := sim.Default("su2cor")
		base.Instructions = 400_000
		bres, err := sim.Run(base)
		if err != nil {
			b.Fatal(err)
		}
		cut := base
		cut.DCache.Org = core.SelectiveSets
		cut.DCache.Policy = sim.PolicySpec{Kind: sim.PolicyDynamic,
			Interval: 16384, MissBound: 655, SizeBoundBytes: 8 << 10}
		cut.DCache.AblationFreeFlush = freeFlush
		cres, err := sim.Run(cut)
		if err != nil {
			b.Fatal(err)
		}
		return cres.EDP.ReductionPct(bres.EDP)
	}
	var real, free float64
	for i := 0; i < b.N; i++ {
		real = run(false)
		free = run(true)
	}
	b.ReportMetric(real, "realflush_edp_red_pct")
	b.ReportMetric(free, "freeflush_edp_red_pct")
}

// BenchmarkAblationHybridTieBreak quantifies design decision 4: Table 1's
// prefer-highest-associativity rule versus preferring the fewest ways.
func BenchmarkAblationHybridTieBreak(b *testing.B) {
	opts := benchOpts()
	var maxAssoc, minWays float64
	for i := 0; i < b.N; i++ {
		ba, err := experiment.BestStatic("vpr", experiment.DSide, core.Hybrid, 4, opts)
		if err != nil {
			b.Fatal(err)
		}
		bw, err := experiment.BestStatic("vpr", experiment.DSide, core.HybridMinWays, 4, opts)
		if err != nil {
			b.Fatal(err)
		}
		maxAssoc = ba.EDPReductionPct()
		minWays = bw.EDPReductionPct()
	}
	b.ReportMetric(maxAssoc, "maxassoc_edp_red_pct")
	b.ReportMetric(minWays, "minways_edp_red_pct")
}

// BenchmarkAblationNoSizeBound quantifies design decision 5: removing the
// dynamic controller's thrash guard. ammp's working set fits 4K but not
// 2K, so an unbounded controller oscillates at the bottom of the
// schedule, flushing and refilling every other interval.
func BenchmarkAblationNoSizeBound(b *testing.B) {
	run := func(bound int) float64 {
		base := sim.Default("ammp")
		base.Engine = sim.InOrder
		base.Instructions = 400_000
		bres, err := sim.Run(base)
		if err != nil {
			b.Fatal(err)
		}
		cut := base
		cut.DCache.Org = core.SelectiveSets
		cut.DCache.Policy = sim.PolicySpec{Kind: sim.PolicyDynamic,
			Interval: 16384, MissBound: 163, SizeBoundBytes: bound}
		cres, err := sim.Run(cut)
		if err != nil {
			b.Fatal(err)
		}
		return cres.EDP.ReductionPct(bres.EDP)
	}
	var bounded, unbounded float64
	for i := 0; i < b.N; i++ {
		bounded = run(8 << 10)
		unbounded = run(0)
	}
	b.ReportMetric(bounded, "sizebound_edp_red_pct")
	b.ReportMetric(unbounded, "nobound_edp_red_pct")
}

// ---------------------------------------------------------------------
// Run-orchestration (internal/runner) memoization.
// ---------------------------------------------------------------------

// BenchmarkRunnerMemoization quantifies the tentpole property of the
// run-orchestration layer: a repeated sweep resolves from the memo store
// instead of re-simulating. Each iteration profiles one app across all
// three organizations on a cold runner — the three BestStatic sweeps
// share their non-resizable baseline, so even the cold pass must score
// memo hits — then repeats the identical sweep warm, which must complete
// with zero fresh simulations and far lower wall time.
func BenchmarkRunnerMemoization(b *testing.B) {
	orgs := []core.Organization{core.SelectiveWays, core.SelectiveSets, core.Hybrid}
	var coldNS, warmNS, hits, runs float64
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Apps = []string{"m88ksim"}
		opts.Runner = runner.New(runner.Options{})
		sweep := func() {
			for _, org := range orgs {
				if _, err := experiment.BestStatic("m88ksim", experiment.DSide, org, 4, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
		start := time.Now()
		sweep()
		cold := time.Since(start)
		afterCold := opts.Runner.Stats()
		if afterCold.Hits() < 1 {
			b.Fatalf("cold sweep scored no memo hits: %+v", afterCold)
		}
		start = time.Now()
		sweep()
		warm := time.Since(start)
		st := opts.Runner.Stats()
		if st.Runs != afterCold.Runs {
			b.Fatalf("warm sweep re-simulated: %d -> %d runs", afterCold.Runs, st.Runs)
		}
		if warm >= cold {
			b.Fatalf("warm sweep (%v) not faster than cold (%v)", warm, cold)
		}
		coldNS = float64(cold.Nanoseconds())
		warmNS = float64(warm.Nanoseconds())
		hits = float64(st.Hits())
		runs = float64(st.Runs)
	}
	b.ReportMetric(coldNS, "cold_ns")
	b.ReportMetric(warmNS, "warm_ns")
	b.ReportMetric(coldNS/warmNS, "speedup_x")
	b.ReportMetric(hits, "memo_hits")
	b.ReportMetric(runs, "sims_run")
}

// BenchmarkArtifactCacheWarmFigures quantifies the sweep-artifact cache:
// rendering one figure warms the next. Each iteration regenerates
// Figure 4 on a cold runner, then Figure 6 — whose grid repeats every
// (ways, sets) cell of Figure 4 — which must resolve those cells as
// whole-sweep artifact hits, and finally Figure 4 again, which must
// resolve every Best grid from the artifact cache with zero new
// simulations (zero new submissions, even: warm sweeps never reach the
// per-config layer).
func BenchmarkArtifactCacheWarmFigures(b *testing.B) {
	ctx := context.Background()
	var coldNS, warmNS, crossHits, warmHits float64
	for i := 0; i < b.N; i++ {
		s := resizecache.NewSession()

		start := time.Now()
		if _, err := figures.Figure4(ctx, s, benchFigOpts()); err != nil {
			b.Fatal(err)
		}
		cold := time.Since(start)
		afterFig4 := s.Stats()
		if afterFig4.ArtifactComputes == 0 {
			b.Fatalf("cold figure computed no sweep artifacts: %+v", afterFig4)
		}

		if _, err := figures.Figure6(ctx, s, benchFigOpts()); err != nil {
			b.Fatal(err)
		}
		afterFig6 := s.Stats()
		if afterFig6.ArtifactHits == afterFig4.ArtifactHits {
			b.Fatalf("figure 6 reused no sweep artifacts from figure 4: %+v", afterFig6)
		}

		start = time.Now()
		if _, err := figures.Figure4(ctx, s, benchFigOpts()); err != nil {
			b.Fatal(err)
		}
		warm := time.Since(start)
		st := s.Stats()
		if st.Runs != afterFig6.Runs {
			b.Fatalf("warm figure re-simulated: %d -> %d runs", afterFig6.Runs, st.Runs)
		}
		if st.Submitted != afterFig6.Submitted {
			b.Fatalf("warm figure reached the per-config layer: %d -> %d submitted",
				afterFig6.Submitted, st.Submitted)
		}
		coldNS = float64(cold.Nanoseconds())
		warmNS = float64(warm.Nanoseconds())
		crossHits = float64(afterFig6.ArtifactHits - afterFig4.ArtifactHits)
		warmHits = float64(st.ArtifactHits - afterFig6.ArtifactHits)
	}
	b.ReportMetric(coldNS, "cold_ns")
	b.ReportMetric(warmNS, "warm_ns")
	b.ReportMetric(coldNS/warmNS, "speedup_x")
	b.ReportMetric(crossHits, "crossfigure_artifact_hits")
	b.ReportMetric(warmHits, "warmfigure_artifact_hits")
}
