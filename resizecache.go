// Package resizecache is the public facade of the resizable-cache
// design-space simulator, a from-scratch reproduction of Yang, Powell,
// Falsafi & Vijaykumar, "Exploiting Choice in Resizable Cache Design to
// Optimize Deep-Submicron Processor Energy-Delay" (HPCA 2002).
//
// The library simulates a complete processor — out-of-order or in-order
// pipeline, resizable L1 instruction and data caches, unified L2, main
// memory, and a Wattch-style energy model — driven by synthetic
// reproductions of the paper's twelve SPEC workloads. It exposes:
//
//   - the three resizing organizations: selective-ways, selective-sets,
//     and the paper's hybrid selective-sets-and-ways;
//   - the two resizing strategies: static (offline-profiled fixed size)
//     and dynamic (miss-ratio interval controller with miss-bound and
//     size-bound);
//   - profiling sweeps and the drivers that regenerate every table and
//     figure of the paper's evaluation (see cmd/figures).
//
// Quick start:
//
//	res, err := resizecache.Simulate(resizecache.Scenario{
//	    Benchmark:    "gcc",
//	    Organization: resizecache.SelectiveSets,
//	    Strategy:     resizecache.Dynamic,
//	})
//
// For full control over geometries, policies and engines, use the
// lower-level sim configuration via NewConfig and RunConfig.
package resizecache

import (
	"context"
	"fmt"
	"slices"

	"resizecache/internal/core"
	"resizecache/internal/experiment"
	"resizecache/internal/runner"
	"resizecache/internal/sim"
	"resizecache/internal/workload"
)

// Organization selects a resizable-cache organization.
type Organization = core.Organization

// Organizations, re-exported from the core package.
const (
	NonResizable  = core.NonResizable
	SelectiveWays = core.SelectiveWays
	SelectiveSets = core.SelectiveSets
	Hybrid        = core.Hybrid
)

// Strategy selects when the cache resizes.
type Strategy int

const (
	// Static profiles all offered sizes offline and fixes the best one.
	Static Strategy = iota
	// Dynamic resizes at run time with the miss-ratio controller,
	// choosing its parameters by offline profiling.
	Dynamic
)

func (s Strategy) String() string {
	if s == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Scenario is a high-level experiment description: resize one or both
// L1 caches of the paper's base processor for one benchmark and report
// the energy-delay outcome against the non-resizable baseline.
type Scenario struct {
	// Benchmark is one of Benchmarks().
	Benchmark string
	// Organization of the resizable cache(s).
	Organization Organization
	// Strategy: Static (default) or Dynamic.
	Strategy Strategy
	// ResizeDCache / ResizeICache select which caches resize. Both false
	// means both resize (the paper's combined experiment).
	ResizeDCache bool
	ResizeICache bool
	// Assoc is the L1 set-associativity (default 2, the base config).
	Assoc int
	// InOrder switches to the in-order/blocking-d-cache engine.
	InOrder bool
	// Instructions per run (default 1.5M).
	Instructions uint64
}

// Outcome reports a scenario's result.
type Outcome struct {
	// EDPReductionPct is the processor energy-delay reduction (%) versus
	// the non-resizable baseline.
	EDPReductionPct float64
	// SlowdownPct is the execution-time increase (%).
	SlowdownPct float64
	// DCacheSizeReductionPct / ICacheSizeReductionPct are reductions in
	// time-averaged enabled capacity (%), per cache.
	DCacheSizeReductionPct float64
	ICacheSizeReductionPct float64
	// DChosen / IChosen describe the selected configurations.
	DChosen string
	IChosen string
	// Stats snapshots the executing runner's counters after the scenario
	// completed: per-config hits/misses plus sweep-level artifact-cache
	// reuse. Counters are cumulative for the runner that executed the
	// scenario (the process-wide runner for Simulate, the session's for
	// Session.Simulate).
	Stats runner.Stats
}

// Benchmarks lists the available workload names (the paper's twelve SPEC
// applications).
func Benchmarks() []string { return workload.Names() }

// Simulate runs a scenario: it profiles the requested strategy per the
// paper's methodology (offline sweep, minimum energy-delay product) and
// returns the outcome. All simulations execute through the process-wide
// shared runner, so repeated Simulate calls memoize against each other;
// use a Session for an isolated memo store, or SimulateContext for
// cancellation.
func Simulate(sc Scenario) (Outcome, error) {
	return SimulateContext(context.Background(), sc)
}

// SimulateContext is Simulate with cancellation: a cancelled context
// stops the scenario's profiling sweeps between simulations.
func SimulateContext(ctx context.Context, sc Scenario) (Outcome, error) {
	return simulate(ctx, sc, nil)
}

// Session shares one run-orchestration layer (worker pool, memoized
// result store, and sweep-level artifact cache; see internal/runner)
// across many Simulate calls while staying isolated from the
// process-wide shared runner. Scenarios that overlap — the same
// benchmark under different strategies, or single- and dual-cache
// resizing of the same organization — re-use each other's simulations
// (including the non-resizable baselines) and whole profiling sweeps.
// The zero value is not usable; construct with NewSession or
// NewSessionWith. Safe for concurrent use.
type Session struct {
	r     *runner.Runner
	store *runner.DiskStore
}

// NewSession returns a Session with a fresh memo store.
func NewSession() *Session {
	return &Session{r: runner.New(runner.Options{})}
}

// SessionOptions configure a Session's run-orchestration layer.
type SessionOptions struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// StorePath, if non-empty, persists per-config results and sweep
	// artifacts to a JSON store at that path, so a later session (or
	// process) resumes without re-simulating or re-profiling. Call
	// Flush to write it out.
	StorePath string
	// MemoLimit bounds the in-memory memo table, evicting the least
	// recently used results beyond it (0 = unbounded).
	MemoLimit int
}

// NewSessionWith returns a Session configured by opts.
func NewSessionWith(opts SessionOptions) (*Session, error) {
	ropts := runner.Options{Workers: opts.Workers, MemoLimit: opts.MemoLimit}
	var store *runner.DiskStore
	if opts.StorePath != "" {
		var err error
		store, err = runner.OpenDiskStore(opts.StorePath)
		if err != nil {
			return nil, err
		}
		ropts.Store = store
	}
	return &Session{r: runner.New(ropts), store: store}, nil
}

// Flush writes the session's persistent store, if it has one.
func (s *Session) Flush() error {
	if s.store == nil {
		return nil
	}
	return s.store.Flush()
}

// Simulate is Session-scoped Simulate.
func (s *Session) Simulate(sc Scenario) (Outcome, error) {
	return s.SimulateContext(context.Background(), sc)
}

// SimulateContext is Session-scoped SimulateContext.
func (s *Session) SimulateContext(ctx context.Context, sc Scenario) (Outcome, error) {
	return simulate(ctx, sc, s.r)
}

// Stats reports the session's scheduling counters: how many simulations
// were submitted, how many actually ran, and how many were resolved from
// the memo store or deduplicated in flight.
func (s *Session) Stats() runner.Stats { return s.r.Stats() }

func simulate(ctx context.Context, sc Scenario, r *runner.Runner) (Outcome, error) {
	if sc.Benchmark == "" {
		return Outcome{}, fmt.Errorf("resizecache: benchmark required (one of %v)", Benchmarks())
	}
	if !slices.Contains(Benchmarks(), sc.Benchmark) {
		return Outcome{}, fmt.Errorf("resizecache: unknown benchmark %q (valid: %v)",
			sc.Benchmark, Benchmarks())
	}
	if sc.Assoc == 0 {
		sc.Assoc = 2
	}
	if sc.Instructions == 0 {
		sc.Instructions = 1_500_000
	}
	if sc.Organization == NonResizable {
		return Outcome{}, fmt.Errorf("resizecache: pick a resizable organization")
	}
	resizeD, resizeI := sc.ResizeDCache, sc.ResizeICache
	if !resizeD && !resizeI {
		resizeD, resizeI = true, true
	}

	opts := experiment.DefaultOptions()
	opts.Instructions = sc.Instructions
	opts.Runner = r // nil selects the shared default runner
	if sc.InOrder {
		opts.Engine = sim.InOrder
	}

	sweep := experiment.BestStaticContext
	if sc.Strategy == Dynamic {
		sweep = experiment.BestDynamicContext
	}

	var out Outcome
	var dBest, iBest experiment.Best
	var err error
	if resizeD {
		dBest, err = sweep(ctx, sc.Benchmark, experiment.DSide, sc.Organization, sc.Assoc, opts)
		if err != nil {
			return Outcome{}, err
		}
		out.DCacheSizeReductionPct = dBest.SizeReductionPct()
		out.DChosen = dBest.Desc
	}
	if resizeI {
		iBest, err = sweep(ctx, sc.Benchmark, experiment.ISide, sc.Organization, sc.Assoc, opts)
		if err != nil {
			return Outcome{}, err
		}
		out.ICacheSizeReductionPct = iBest.SizeReductionPct()
		out.IChosen = iBest.Desc
	}

	switch {
	case resizeD && resizeI:
		// Combined run: the paper's additivity experiment shows the two
		// resizings compose; EDP is measured in one simulation with both
		// caches at their individually profiled configurations.
		comb, err := experiment.CombinedContext(ctx, sc.Benchmark, sc.Organization, sc.Assoc, dBest, iBest, opts)
		if err != nil {
			return Outcome{}, err
		}
		out.EDPReductionPct = comb.EDPReductionPct()
		out.SlowdownPct = comb.SlowdownPct()
		out.DCacheSizeReductionPct = comb.Chosen.DCache.SizeReductionPct()
		out.ICacheSizeReductionPct = comb.Chosen.ICache.SizeReductionPct()
	case resizeD:
		out.EDPReductionPct = dBest.EDPReductionPct()
		out.SlowdownPct = dBest.SlowdownPct()
	default:
		out.EDPReductionPct = iBest.EDPReductionPct()
		out.SlowdownPct = iBest.SlowdownPct()
	}
	exec := r
	if exec == nil {
		exec = runner.Default()
	}
	out.Stats = exec.Stats()
	return out, nil
}
