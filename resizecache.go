// Package resizecache is the public facade of the resizable-cache
// design-space simulator, a from-scratch reproduction of Yang, Powell,
// Falsafi & Vijaykumar, "Exploiting Choice in Resizable Cache Design to
// Optimize Deep-Submicron Processor Energy-Delay" (HPCA 2002).
//
// The library simulates a complete processor — out-of-order or in-order
// pipeline, resizable L1 instruction and data caches, unified L2, main
// memory, and a Wattch-style energy model — driven by synthetic
// reproductions of the paper's twelve SPEC workloads. It exposes:
//
//   - the three resizing organizations: selective-ways, selective-sets,
//     and the paper's hybrid selective-sets-and-ways;
//   - the two resizing strategies: static (offline-profiled fixed size)
//     and dynamic (miss-ratio interval controller with miss-bound and
//     size-bound);
//   - profiling sweeps and the drivers that regenerate every table and
//     figure of the paper's evaluation (see cmd/figures).
//
// Quick start:
//
//	res, err := resizecache.Simulate(resizecache.Scenario{
//	    Benchmark:    "gcc",
//	    Organization: resizecache.SelectiveSets,
//	    Strategy:     resizecache.Dynamic,
//	})
//
// For full control over geometries, policies and engines, use the
// lower-level sim configuration via NewConfig and RunConfig.
package resizecache

import (
	"fmt"

	"resizecache/internal/core"
	"resizecache/internal/experiment"
	"resizecache/internal/sim"
	"resizecache/internal/workload"
)

// Organization selects a resizable-cache organization.
type Organization = core.Organization

// Organizations, re-exported from the core package.
const (
	NonResizable  = core.NonResizable
	SelectiveWays = core.SelectiveWays
	SelectiveSets = core.SelectiveSets
	Hybrid        = core.Hybrid
)

// Strategy selects when the cache resizes.
type Strategy int

const (
	// Static profiles all offered sizes offline and fixes the best one.
	Static Strategy = iota
	// Dynamic resizes at run time with the miss-ratio controller,
	// choosing its parameters by offline profiling.
	Dynamic
)

func (s Strategy) String() string {
	if s == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Scenario is a high-level experiment description: resize one or both
// L1 caches of the paper's base processor for one benchmark and report
// the energy-delay outcome against the non-resizable baseline.
type Scenario struct {
	// Benchmark is one of Benchmarks().
	Benchmark string
	// Organization of the resizable cache(s).
	Organization Organization
	// Strategy: Static (default) or Dynamic.
	Strategy Strategy
	// ResizeDCache / ResizeICache select which caches resize. Both false
	// means both resize (the paper's combined experiment).
	ResizeDCache bool
	ResizeICache bool
	// Assoc is the L1 set-associativity (default 2, the base config).
	Assoc int
	// InOrder switches to the in-order/blocking-d-cache engine.
	InOrder bool
	// Instructions per run (default 1.5M).
	Instructions uint64
}

// Outcome reports a scenario's result.
type Outcome struct {
	// EDPReductionPct is the processor energy-delay reduction (%) versus
	// the non-resizable baseline.
	EDPReductionPct float64
	// SlowdownPct is the execution-time increase (%).
	SlowdownPct float64
	// DCacheSizeReductionPct / ICacheSizeReductionPct are reductions in
	// time-averaged enabled capacity (%), per cache.
	DCacheSizeReductionPct float64
	ICacheSizeReductionPct float64
	// DChosen / IChosen describe the selected configurations.
	DChosen string
	IChosen string
}

// Benchmarks lists the available workload names (the paper's twelve SPEC
// applications).
func Benchmarks() []string { return workload.Names() }

// Simulate runs a scenario: it profiles the requested strategy per the
// paper's methodology (offline sweep, minimum energy-delay product) and
// returns the outcome.
func Simulate(sc Scenario) (Outcome, error) {
	if sc.Benchmark == "" {
		return Outcome{}, fmt.Errorf("resizecache: benchmark required (one of %v)", Benchmarks())
	}
	if sc.Assoc == 0 {
		sc.Assoc = 2
	}
	if sc.Instructions == 0 {
		sc.Instructions = 1_500_000
	}
	if sc.Organization == NonResizable {
		return Outcome{}, fmt.Errorf("resizecache: pick a resizable organization")
	}
	resizeD, resizeI := sc.ResizeDCache, sc.ResizeICache
	if !resizeD && !resizeI {
		resizeD, resizeI = true, true
	}

	opts := experiment.DefaultOptions()
	opts.Instructions = sc.Instructions
	if sc.InOrder {
		opts.Engine = sim.InOrder
	}

	sweep := experiment.BestStatic
	if sc.Strategy == Dynamic {
		sweep = experiment.BestDynamic
	}

	var out Outcome
	var dBest, iBest experiment.Best
	var err error
	if resizeD {
		dBest, err = sweep(sc.Benchmark, experiment.DSide, sc.Organization, sc.Assoc, opts)
		if err != nil {
			return Outcome{}, err
		}
		out.DCacheSizeReductionPct = dBest.SizeReductionPct()
		out.DChosen = dBest.Desc
	}
	if resizeI {
		iBest, err = sweep(sc.Benchmark, experiment.ISide, sc.Organization, sc.Assoc, opts)
		if err != nil {
			return Outcome{}, err
		}
		out.ICacheSizeReductionPct = iBest.SizeReductionPct()
		out.IChosen = iBest.Desc
	}

	switch {
	case resizeD && resizeI:
		// Combined run: the paper's additivity experiment shows the two
		// resizings compose; EDP is measured in one simulation with both
		// caches at their individually profiled configurations.
		comb, err := experiment.Combined(sc.Benchmark, sc.Organization, sc.Assoc, dBest, iBest, opts)
		if err != nil {
			return Outcome{}, err
		}
		out.EDPReductionPct = comb.EDPReductionPct()
		out.SlowdownPct = comb.SlowdownPct()
		out.DCacheSizeReductionPct = comb.Chosen.DCache.SizeReductionPct()
		out.ICacheSizeReductionPct = comb.Chosen.ICache.SizeReductionPct()
	case resizeD:
		out.EDPReductionPct = dBest.EDPReductionPct()
		out.SlowdownPct = dBest.SlowdownPct()
	default:
		out.EDPReductionPct = iBest.EDPReductionPct()
		out.SlowdownPct = iBest.SlowdownPct()
	}
	return out, nil
}
