// Package resizecache is the public facade of the resizable-cache
// design-space simulator, a from-scratch reproduction of Yang, Powell,
// Falsafi & Vijaykumar, "Exploiting Choice in Resizable Cache Design to
// Optimize Deep-Submicron Processor Energy-Delay" (HPCA 2002).
//
// The library simulates a complete processor — out-of-order or in-order
// pipeline, resizable L1 instruction and data caches, unified L2, main
// memory, and a Wattch-style energy model — driven by synthetic
// reproductions of the paper's twelve SPEC workloads. It exposes:
//
//   - the three resizing organizations: selective-ways, selective-sets,
//     and the paper's hybrid selective-sets-and-ways;
//   - the two resizing strategies: static (offline-profiled fixed size)
//     and dynamic (miss-ratio interval controller with miss-bound and
//     size-bound);
//   - a declarative shared hierarchy: preset shapes (BaseL2, NoL2,
//     SmallL2, BigL2, DeepL2L3) on the Hierarchies grid axis, and a
//     resizable L2 via Scenario.L2 / the L2Orgs axis — the L2 profiles
//     and resizes with exactly the machinery the L1s use;
//   - profiling sweeps and the drivers that regenerate every table and
//     figure of the paper's evaluation (see cmd/figures).
//
// Quick start:
//
//	res, err := resizecache.Simulate(resizecache.Scenario{
//	    Benchmark:    "gcc",
//	    Organization: resizecache.SelectiveSets,
//	    Strategy:     resizecache.Dynamic,
//	})
//
// The paper's evaluation is a design-space sweep, and the API is built
// around that shape: a Grid declares axes (benchmarks, organizations,
// strategies, associativities, resize sides, engines), expands into a
// deterministic deduplicated Plan of Scenarios, and Session.Run executes
// the whole plan as one batch — every cold profiling sweep is enqueued
// on the shared worker pool up front, and Results stream back as
// scenarios complete. See Grid, Plan, and Session.Run.
//
// For full control over geometries, policies and engines, use the
// lower-level sim configuration via NewConfig and RunConfig.
package resizecache

import (
	"context"
	"fmt"
	"slices"

	"resizecache/internal/core"
	"resizecache/internal/energy"
	"resizecache/internal/experiment"
	"resizecache/internal/geometry"
	"resizecache/internal/runner"
	"resizecache/internal/sim"
	"resizecache/internal/workload"
)

// Organization selects a resizable-cache organization.
type Organization = core.Organization

// Organizations, re-exported from the core package.
const (
	NonResizable  = core.NonResizable
	SelectiveWays = core.SelectiveWays
	SelectiveSets = core.SelectiveSets
	Hybrid        = core.Hybrid
)

// ParseOrganization parses an organization name as the CLIs spell it:
// "none", "ways", "sets", or "hybrid" (the String() forms are also
// accepted).
func ParseOrganization(s string) (Organization, error) {
	switch s {
	case "", "none", "non-resizable":
		return NonResizable, nil
	case "ways", "selective-ways":
		return SelectiveWays, nil
	case "sets", "selective-sets":
		return SelectiveSets, nil
	case "hybrid":
		return Hybrid, nil
	default:
		return 0, fmt.Errorf("resizecache: unknown organization %q (none, ways, sets, hybrid)", s)
	}
}

// ParseStrategy parses a strategy name: "static" or "dynamic".
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "static":
		return Static, nil
	case "dynamic":
		return Dynamic, nil
	default:
		return 0, fmt.Errorf("resizecache: unknown strategy %q (static, dynamic)", s)
	}
}

// Strategy selects when the cache resizes.
type Strategy int

const (
	// Static profiles all offered sizes offline and fixes the best one.
	Static Strategy = iota
	// Dynamic resizes at run time with the miss-ratio controller,
	// choosing its parameters by offline profiling.
	Dynamic
)

func (s Strategy) String() string {
	if s == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Sides selects which of the L1 caches a scenario resizes.
type Sides int

const (
	// BothSides resizes the d-cache and the i-cache together (the
	// paper's combined experiment). This is the zero value.
	BothSides Sides = iota
	// DOnly resizes the data cache only.
	DOnly
	// IOnly resizes the instruction cache only.
	IOnly
	// L2Only leaves both L1s fixed and resizes the shared L2 alone;
	// Scenario.L2 must name a resizable organization. A scenario whose
	// Organization is NonResizable but whose L2 resizes normalizes to
	// this value.
	L2Only
)

func (s Sides) String() string {
	switch s {
	case DOnly:
		return "d-cache"
	case IOnly:
		return "i-cache"
	case L2Only:
		return "l2-cache"
	default:
		return "d+i-caches"
	}
}

// Hierarchy names a shared-cache hierarchy shape below the split L1s —
// one Grid axis, sweepable like any other dimension. Each value expands
// to a sim.LevelSpec stack; BaseL2 (the zero value) is the paper's
// Table 2 hierarchy.
type Hierarchy int

const (
	// BaseL2 is the paper's base hierarchy: one 512K 4-way unified L2.
	BaseL2 Hierarchy = iota
	// NoL2 connects the L1s straight to memory.
	NoL2
	// SmallL2 halves the L2 to 256K (4-way).
	SmallL2
	// BigL2 doubles the L2 to 1M (4-way).
	BigL2
	// DeepL2L3 backs the 512K L2 with a 2M 8-way L3.
	DeepL2L3
)

func (h Hierarchy) String() string {
	switch h {
	case NoL2:
		return "no-l2"
	case SmallL2:
		return "256K-l2"
	case BigL2:
		return "1M-l2"
	case DeepL2L3:
		return "l2+l3"
	default:
		return "512K-l2"
	}
}

// l2DefaultAssoc is the set-associativity of every preset's L2.
const l2DefaultAssoc = 4

// l2Geometry returns a preset-style L2/L3 geometry at one capacity and
// associativity (64B blocks, 4K subarrays, per Table 2).
func l2Geometry(sizeBytes, assoc int) geometry.Geometry {
	return geometry.Geometry{SizeBytes: sizeBytes, Assoc: assoc,
		BlockBytes: 64, SubarrayBytes: 4 << 10}
}

// levelSpecs expands the hierarchy to its level stack; l2Assoc overrides
// the outermost level's associativity when nonzero.
func (h Hierarchy) levelSpecs(l2Assoc int) ([]sim.LevelSpec, error) {
	assoc := l2DefaultAssoc
	if l2Assoc != 0 {
		assoc = l2Assoc
	}
	level := func(size int) sim.LevelSpec {
		return sim.LevelSpec{CacheSpec: sim.CacheSpec{
			Geom: l2Geometry(size, assoc), Org: core.NonResizable}}
	}
	switch h {
	case BaseL2:
		return []sim.LevelSpec{level(512 << 10)}, nil
	case NoL2:
		if l2Assoc != 0 {
			return nil, fmt.Errorf("resizecache: L2 associativity set on a NoL2 hierarchy")
		}
		return nil, nil
	case SmallL2:
		return []sim.LevelSpec{level(256 << 10)}, nil
	case BigL2:
		return []sim.LevelSpec{level(1 << 20)}, nil
	case DeepL2L3:
		return []sim.LevelSpec{level(512 << 10),
			{CacheSpec: sim.CacheSpec{Geom: l2Geometry(2<<20, 8), Org: core.NonResizable}}}, nil
	default:
		return nil, fmt.Errorf("resizecache: unknown hierarchy %d", int(h))
	}
}

// L2Spec configures resizing of the hierarchy's outermost shared level
// in a Scenario. The zero value keeps the L2 fixed at the hierarchy's
// default geometry.
type L2Spec struct {
	// Organization of the resizable L2; NonResizable (the default)
	// keeps the L2 fixed.
	Organization Organization
	// Strategy for a resizable L2: Static (default) or Dynamic.
	Strategy Strategy
	// Assoc overrides the L2 set-associativity (0 = the hierarchy's
	// default, 4).
	Assoc int
}

// SamplingSpec configures interval-sampled execution: short detailed
// windows alternating with functional fast-forward (and optional
// skipped) gaps, scaled to whole-run estimates with standard-error
// bars. The zero value simulates every instruction in detail. See
// sim.SamplingSpec for field semantics and DefaultSampling for the
// tuned default schedule.
type SamplingSpec = sim.SamplingSpec

// DefaultSampling returns the tuned default sampling schedule: a 3-5×
// speedup with EDP estimates inside ±3% error bars at the default
// instruction budgets. Assign it to Scenario.Sampling or Grid.Sampling
// to trade exactness for sweep throughput.
func DefaultSampling() SamplingSpec { return sim.DefaultSampling() }

// Engine selects the processor timing model for a Grid axis.
type Engine int

const (
	// OutOfOrderEngine is the base 4-wide out-of-order configuration
	// with a non-blocking d-cache.
	OutOfOrderEngine Engine = iota
	// InOrderEngine is the in-order, blocking-d-cache configuration.
	InOrderEngine
)

func (e Engine) String() string {
	if e == InOrderEngine {
		return "in-order"
	}
	return "out-of-order"
}

// Scenario is a high-level experiment description: resize one or both
// L1 caches of the paper's base processor for one benchmark and report
// the energy-delay outcome against the non-resizable baseline.
type Scenario struct {
	// Benchmark is one of Benchmarks().
	Benchmark string
	// Organization of the resizable cache(s).
	Organization Organization
	// Strategy: Static (default) or Dynamic.
	Strategy Strategy
	// Sides selects which caches resize: BothSides (the default), DOnly,
	// or IOnly.
	Sides Sides
	// ResizeDCache / ResizeICache are the older boolean form of Sides:
	// exactly one true selects that cache; both false (or both true)
	// means both resize.
	//
	// Deprecated: set Sides instead. The booleans remain honoured when
	// Sides is left at its BothSides zero value, but a combination that
	// contradicts an explicit DOnly/IOnly is an error.
	ResizeDCache bool
	ResizeICache bool
	// Assoc is the L1 set-associativity (default 2, the base config).
	// It must describe a geometry the schedule builder supports: a
	// positive power of two no larger than the 32K cache's subarray
	// count allows (32 at the base 1K subarrays).
	Assoc int
	// Hierarchy selects the shared-cache stack below the L1s (default
	// BaseL2, the paper's 512K 4-way unified L2).
	Hierarchy Hierarchy
	// L2 resizes the hierarchy's outermost shared level: when its
	// Organization is resizable, the L2 is profiled and resized exactly
	// like an L1 — alone (Sides == L2Only) or alongside the resizing
	// L1s, with the combined run holding every cache at its
	// individually profiled winner.
	L2 L2Spec
	// InOrder switches to the in-order/blocking-d-cache engine.
	InOrder bool
	// Instructions per run (default 1.5M).
	Instructions uint64
	// Sampling, when enabled, runs every simulation of this scenario —
	// profiling sweeps, baselines, and the combined run — interval
	// sampled instead of fully detailed: estimates carry error bars and
	// sweeps finish several times faster. The zero value keeps full
	// detail. Sampled and detailed runs of the same experiment memoize
	// separately (Sampling is part of the config fingerprint).
	Sampling SamplingSpec
}

// normalize validates a scenario and fills defaults, returning the
// canonical form shared by Simulate and Plan expansion: Sides carries
// the resize selection (the deprecated booleans are folded in and
// cleared) and Assoc and Instructions are defaulted, so two scenarios
// describing the same experiment compare equal — which is what Plan
// deduplication relies on.
func (sc Scenario) normalize() (Scenario, error) {
	if sc.Benchmark == "" {
		return Scenario{}, fmt.Errorf("resizecache: benchmark required (one of %v)", Benchmarks())
	}
	if !slices.Contains(Benchmarks(), sc.Benchmark) {
		return Scenario{}, fmt.Errorf("resizecache: unknown benchmark %q (valid: %v)",
			sc.Benchmark, Benchmarks())
	}
	if sc.Assoc == 0 {
		sc.Assoc = 2
	}
	// Reject associativities the geometry layer cannot build (negative,
	// non-power-of-two way sizes, ways smaller than a subarray) up front,
	// instead of surfacing a degenerate schedule from deep inside a sweep.
	l1 := geometry.Geometry{SizeBytes: 32 << 10, Assoc: sc.Assoc,
		BlockBytes: 32, SubarrayBytes: 1 << 10}
	if err := l1.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("resizecache: unsupported associativity %d for the 32K L1: %w",
			sc.Assoc, err)
	}
	if sc.Instructions == 0 {
		sc.Instructions = 1_500_000
	}
	// Surface sampling-spec mistakes at plan time instead of from deep
	// inside a sweep (the sim layer enforces the same rules).
	if s := sc.Sampling; s != (SamplingSpec{}) {
		if !s.Enabled() {
			return Scenario{}, fmt.Errorf("resizecache: partial sampling spec %+v: both DetailedInstructions and FastForwardInstructions must be set", s)
		}
		if s.WarmupInstructions >= sc.Instructions {
			return Scenario{}, fmt.Errorf("resizecache: sampling warmup %d consumes the whole %d-instruction budget",
				s.WarmupInstructions, sc.Instructions)
		}
	}
	// Range-check the L1 strategy before any canonicalization can zero
	// it: a garbage value is an error even on a scenario that folds to
	// L2Only (folding a *valid* Dynamic to Static there is intended).
	if sc.Strategy != Static && sc.Strategy != Dynamic {
		return Scenario{}, fmt.Errorf("resizecache: unknown strategy %d", sc.Strategy)
	}

	// Hierarchy and L2 resizing. The hierarchy must be a known preset;
	// a resizable L2 needs a shared level to resize and defaults its
	// associativity to the preset's, so equal experiments compare equal.
	if _, err := sc.Hierarchy.levelSpecs(0); err != nil {
		return Scenario{}, err
	}
	// Same garbage-is-an-error rule as the L1 strategy; a *valid* Dynamic
	// on a fixed L2 is merely inert and folds away below (the
	// L2Strategies grid axis crosses with fixed-L2 cells).
	if sc.L2.Strategy != Static && sc.L2.Strategy != Dynamic {
		return Scenario{}, fmt.Errorf("resizecache: unknown L2 strategy %d", sc.L2.Strategy)
	}
	resizesL2 := sc.L2.Organization != NonResizable
	if resizesL2 {
		if sc.Hierarchy == NoL2 {
			return Scenario{}, fmt.Errorf("resizecache: L2 resizing needs a hierarchy with a shared level (got %v)", sc.Hierarchy)
		}
		if sc.L2.Assoc == 0 {
			sc.L2.Assoc = l2DefaultAssoc
		}
	} else {
		sc.L2.Strategy = Static
	}
	if sc.L2.Assoc != 0 {
		// Validate against the hierarchy's actual L2 geometry: a 256K L2
		// supports fewer ways than a 1M one.
		levels, err := sc.Hierarchy.levelSpecs(sc.L2.Assoc)
		if err != nil {
			return Scenario{}, err
		}
		if err := levels[0].Geom.Validate(); err != nil {
			return Scenario{}, fmt.Errorf("resizecache: unsupported L2 associativity %d for the %v hierarchy: %w",
				sc.L2.Assoc, sc.Hierarchy, err)
		}
		if !resizesL2 && sc.L2.Assoc == l2DefaultAssoc {
			sc.L2.Assoc = 0 // the hierarchy default, spelled explicitly
		}
	}

	switch sc.Sides {
	case BothSides:
		// Fold in the deprecated booleans; both set (or neither) is the
		// combined experiment, matching their historical contract.
		switch {
		case sc.ResizeDCache && !sc.ResizeICache:
			sc.Sides = DOnly
		case sc.ResizeICache && !sc.ResizeDCache:
			sc.Sides = IOnly
		}
	case DOnly:
		if sc.ResizeICache {
			return Scenario{}, fmt.Errorf("resizecache: Sides=DOnly contradicts ResizeICache")
		}
	case IOnly:
		if sc.ResizeDCache {
			return Scenario{}, fmt.Errorf("resizecache: Sides=IOnly contradicts ResizeDCache")
		}
	case L2Only:
		if sc.ResizeDCache || sc.ResizeICache {
			return Scenario{}, fmt.Errorf("resizecache: Sides=L2Only contradicts the L1 resize booleans")
		}
	default:
		return Scenario{}, fmt.Errorf("resizecache: invalid Sides value %d", sc.Sides)
	}
	sc.ResizeDCache, sc.ResizeICache = false, false

	// Which caches actually resize. An L2-only experiment has two
	// spellings — Sides == L2Only, or a NonResizable L1 organization
	// with a resizable L2 — that normalize to one form with the inert
	// L1 axes zeroed.
	switch {
	case sc.Sides == L2Only:
		if !resizesL2 {
			return Scenario{}, fmt.Errorf("resizecache: Sides=L2Only needs a resizable Scenario.L2 organization")
		}
		sc.Organization, sc.Strategy = NonResizable, Static
	case sc.Organization == NonResizable:
		if !resizesL2 {
			return Scenario{}, fmt.Errorf("resizecache: pick a resizable organization")
		}
		// Only the unset (BothSides) default folds to L2Only: an explicit
		// DOnly/IOnly asked for an L1 resize the scenario cannot perform.
		if sc.Sides != BothSides {
			return Scenario{}, fmt.Errorf("resizecache: Sides=%v resizes an L1 but Organization is NonResizable; pick a resizable organization or Sides=L2Only", sc.Sides)
		}
		sc.Sides, sc.Strategy = L2Only, Static
	}
	return sc, nil
}

// experimentOptions translates a normalized scenario into the experiment
// layer's sweep options.
func (sc Scenario) experimentOptions(r *runner.Runner) experiment.Options {
	opts := experiment.DefaultOptions()
	opts.Instructions = sc.Instructions
	opts.Runner = r // nil selects the shared default runner
	if sc.InOrder {
		opts.Engine = sim.InOrder
	}
	return opts
}

// baseSimConfig builds the normalized scenario's non-resizable baseline
// config: L1s at the scenario's associativity over the hierarchy's
// level stack. Every profiling sweep and the combined run derive from
// it, so their fingerprints agree by construction.
func (sc Scenario) baseSimConfig(opts experiment.Options) (sim.Config, error) {
	base := experiment.BaseConfig(sc.Benchmark, sc.Assoc, opts)
	levels, err := sc.Hierarchy.levelSpecs(sc.L2.Assoc)
	if err != nil {
		return sim.Config{}, err
	}
	base.Levels = levels
	base.Sampling = sc.Sampling
	return base, nil
}

// resizesD / resizesI / resizesL2 report which caches the normalized
// scenario resizes.
func (sc Scenario) resizesD() bool  { return sc.Sides == BothSides || sc.Sides == DOnly }
func (sc Scenario) resizesI() bool  { return sc.Sides == BothSides || sc.Sides == IOnly }
func (sc Scenario) resizesL2() bool { return sc.L2.Organization != NonResizable }

// sweepSpecs lists the profiling sweeps a normalized scenario gathers —
// one per resized cache. Plan execution enqueues these up front;
// simulate gathers the same specs, so the fingerprints agree by
// construction. The error is non-nil only for a scenario that bypassed
// normalize (an invalid hierarchy).
func (sc Scenario) sweepSpecs() ([]experiment.SweepSpec, error) {
	opts := sc.experimentOptions(nil)
	base, err := sc.baseSimConfig(opts)
	if err != nil {
		return nil, err
	}
	var specs []experiment.SweepSpec
	if sc.resizesD() {
		specs = append(specs, experiment.SweepSpec{App: sc.Benchmark, Side: experiment.DSide,
			Org: sc.Organization, Dynamic: sc.Strategy == Dynamic, Base: base})
	}
	if sc.resizesI() {
		specs = append(specs, experiment.SweepSpec{App: sc.Benchmark, Side: experiment.ISide,
			Org: sc.Organization, Dynamic: sc.Strategy == Dynamic, Base: base})
	}
	if sc.resizesL2() {
		specs = append(specs, experiment.SweepSpec{App: sc.Benchmark, Side: experiment.L2Side,
			Org: sc.L2.Organization, Dynamic: sc.L2.Strategy == Dynamic, Base: base})
	}
	return specs, nil
}

// EnergyShares is a processor energy breakdown in percent of total:
// where the chosen configuration's energy went.
type EnergyShares struct {
	CorePct float64
	L1IPct  float64
	L1DPct  float64
	L2Pct   float64 // every shared level below the L1s
	MemPct  float64
}

// Add returns the component-wise sum of two share sets; with Scale it
// supports aggregating shares (e.g. a suite mean) without enumerating
// fields at every call site.
func (e EnergyShares) Add(o EnergyShares) EnergyShares {
	e.CorePct += o.CorePct
	e.L1IPct += o.L1IPct
	e.L1DPct += o.L1DPct
	e.L2Pct += o.L2Pct
	e.MemPct += o.MemPct
	return e
}

// Scale returns the shares multiplied component-wise by f.
func (e EnergyShares) Scale(f float64) EnergyShares {
	e.CorePct *= f
	e.L1IPct *= f
	e.L1DPct *= f
	e.L2Pct *= f
	e.MemPct *= f
	return e
}

// sharesOf converts a breakdown to percentages.
func sharesOf(b energy.Breakdown) EnergyShares {
	t := b.TotalPJ()
	if t == 0 {
		return EnergyShares{}
	}
	return EnergyShares{
		CorePct: 100 * b.CorePJ / t,
		L1IPct:  100 * b.L1IPJ / t,
		L1DPct:  100 * b.L1DPJ / t,
		L2Pct:   100 * b.L2PJ / t,
		MemPct:  100 * b.MemPJ / t,
	}
}

// Outcome reports a scenario's result.
type Outcome struct {
	// EDPReductionPct is the processor energy-delay reduction (%) versus
	// the non-resizable baseline.
	EDPReductionPct float64
	// SlowdownPct is the execution-time increase (%).
	SlowdownPct float64
	// DCacheSizeReductionPct / ICacheSizeReductionPct /
	// L2SizeReductionPct are reductions in time-averaged enabled
	// capacity (%), per cache.
	DCacheSizeReductionPct float64
	ICacheSizeReductionPct float64
	L2SizeReductionPct     float64
	// DChosen / IChosen / L2Chosen describe the selected configurations.
	DChosen  string
	IChosen  string
	L2Chosen string
	// Energy is the chosen configuration's processor energy breakdown.
	Energy EnergyShares
	// Stats reports the runner activity of this call as a delta: the
	// difference between the executing runner's counters after and
	// before the scenario ran. A warm repeat therefore shows zero Runs
	// and positive ArtifactHits rather than an ever-growing cumulative
	// snapshot. On a shared runner (the process-wide one, or a Session
	// running a concurrent plan) the window also includes work submitted
	// by overlapping callers; Session.Stats has the cumulative view.
	Stats runner.Stats
}

// Benchmarks lists the available workload names (the paper's twelve SPEC
// applications).
func Benchmarks() []string { return workload.Names() }

// Simulate runs a scenario: it profiles the requested strategy per the
// paper's methodology (offline sweep, minimum energy-delay product) and
// returns the outcome. All simulations execute through the process-wide
// shared runner, so repeated Simulate calls memoize against each other;
// use a Session for an isolated memo store, or SimulateContext for
// cancellation.
func Simulate(sc Scenario) (Outcome, error) {
	return SimulateContext(context.Background(), sc)
}

// SimulateContext is Simulate with cancellation: a cancelled context
// stops the scenario's profiling sweeps between simulations.
func SimulateContext(ctx context.Context, sc Scenario) (Outcome, error) {
	return simulate(ctx, sc, nil)
}

// Executor is the execution surface shared by the in-process Session
// and the daemon-backed RemoteSession (see Dial): everything the figure
// drivers and CLIs need — plan runs with streaming results, single
// scenarios, plan-level artifact memoization, scheduling stats, and
// store flushing. Code written against Executor runs unchanged whether
// the simulations execute in this process or on a shared simd daemon.
type Executor interface {
	// Run executes a plan and streams results; see Session.Run.
	Run(ctx context.Context, plan Plan, opts ...RunOption) <-chan Result
	// Simulate / SimulateContext run one scenario.
	Simulate(sc Scenario) (Outcome, error)
	SimulateContext(ctx context.Context, sc Scenario) (Outcome, error)
	// Artifact / PutArtifact memoize plan-level derived payloads; see
	// Session.Artifact.
	Artifact(ctx context.Context, domain string, version int, plan Plan, compute func(context.Context) ([]byte, error)) ([]byte, error)
	PutArtifact(domain string, version int, plan Plan, payload []byte)
	// Stats reports scheduling counters. For a RemoteSession they are
	// the daemon's cumulative counters across all clients; diff two
	// snapshots (runner.Stats.Delta) for a per-invocation view.
	Stats() runner.Stats
	// Flush persists the executor's store, if it has one.
	Flush() error
}

var _ Executor = (*Session)(nil)

// Session shares one run-orchestration layer (worker pool, memoized
// result store, and sweep-level artifact cache; see internal/runner)
// across many Simulate and Run calls while staying isolated from the
// process-wide shared runner. Scenarios that overlap — the same
// benchmark under different strategies, or single- and dual-cache
// resizing of the same organization — re-use each other's simulations
// (including the non-resizable baselines) and whole profiling sweeps;
// Run executes a whole Plan as one batch-scheduled pass. The zero
// value is not usable; construct with NewSession or NewSessionWith.
// Safe for concurrent use.
type Session struct {
	r     *runner.Runner
	store runner.Store
}

// NewSession returns a Session with a fresh memo store.
func NewSession() *Session {
	return &Session{r: runner.New(runner.Options{})}
}

// SessionOptions configure a Session's run-orchestration layer.
type SessionOptions struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// StorePath, if non-empty, persists per-config results and sweep
	// artifacts to a JSON store at that path, so a later session (or
	// process) resumes without re-simulating or re-profiling. Call
	// Flush to write it out.
	StorePath string
	// MemoLimit bounds the in-memory memo table, evicting the least
	// recently used results beyond it (0 = unbounded).
	MemoLimit int
	// GangSize bounds how many same-front-end configurations a plan's
	// batch-enqueue pass coalesces into one gang simulation (0 =
	// runner.DefaultGangSize, currently 8; 1 disables coalescing).
	GangSize int
	// Store injects a pluggable persistent backend — e.g. a
	// runner.NetStore dialled to a simd daemon, so this session's
	// simulations run locally but share the daemon's memo fabric.
	// Mutually exclusive with StorePath (which opens a DiskStore).
	Store runner.Store
}

// NewSessionWith returns a Session configured by opts.
func NewSessionWith(opts SessionOptions) (*Session, error) {
	if opts.Store != nil && opts.StorePath != "" {
		return nil, fmt.Errorf("resizecache: SessionOptions.Store and StorePath are mutually exclusive")
	}
	ropts := runner.Options{Workers: opts.Workers, MemoLimit: opts.MemoLimit,
		GangSize: opts.GangSize}
	store := opts.Store
	if opts.StorePath != "" {
		diskStore, err := runner.OpenDiskStore(opts.StorePath)
		if err != nil {
			return nil, err
		}
		store = diskStore
	}
	ropts.Store = store
	return &Session{r: runner.New(ropts), store: store}, nil
}

// Flush writes the session's persistent store, if it has one.
func (s *Session) Flush() error {
	if s.store == nil {
		return nil
	}
	return s.store.Flush()
}

// Simulate is Session-scoped Simulate.
func (s *Session) Simulate(sc Scenario) (Outcome, error) {
	return s.SimulateContext(context.Background(), sc)
}

// SimulateContext is Session-scoped SimulateContext.
func (s *Session) SimulateContext(ctx context.Context, sc Scenario) (Outcome, error) {
	return simulate(ctx, sc, s.r)
}

// Stats reports the session's scheduling counters: how many simulations
// were submitted, how many actually ran, and how many were resolved from
// the memo store or deduplicated in flight.
func (s *Session) Stats() runner.Stats { return s.r.Stats() }

// planArtifactKey fingerprints a derived artifact of a whole plan: the
// caller's domain and schema version plus every scenario's axes and the
// artifact fingerprints of its profiling sweeps (which cover the
// experiment layer's schema version and every config each sweep would
// run) — so anything that changes any underlying simulation, the
// winner-selection machinery, or the set of scenarios moves the key.
func planArtifactKey(domain string, version int, plan Plan) sim.Key {
	b := sim.NewKeyBuilder("facade/plan-artifact")
	b.Str(domain)
	b.Int(version)
	b.Int(plan.Len())
	for _, sc := range plan.scenarios {
		b.Str(sc.Benchmark)
		b.U64(uint64(sc.Organization))
		b.U64(uint64(sc.Strategy))
		b.Int(sc.Assoc)
		b.U64(uint64(sc.Sides))
		b.U64(uint64(sc.Hierarchy))
		b.U64(uint64(sc.L2.Organization))
		b.U64(uint64(sc.L2.Strategy))
		b.Int(sc.L2.Assoc)
		var inOrder uint64
		if sc.InOrder {
			inOrder = 1
		}
		b.U64(inOrder)
		b.U64(sc.Instructions)
		b.U64(sc.Sampling.WarmupInstructions)
		b.U64(sc.Sampling.DetailedInstructions)
		b.U64(sc.Sampling.FastForwardInstructions)
		b.U64(sc.Sampling.SkipInstructions)
		specs, err := sc.sweepSpecs()
		if err != nil {
			// Only reachable for a scenario that bypassed normalize; give
			// it a key that cannot collide with any valid plan's.
			b.Str("invalid-scenario: " + err.Error())
			continue
		}
		for _, spec := range specs {
			k, err := spec.ArtifactKey()
			if err != nil {
				b.Str("invalid-sweep: " + err.Error())
				continue
			}
			b.RawKey(k)
		}
	}
	return b.Sum()
}

// Artifact memoizes a derived payload — typically a figure's aggregated
// row set — through the session's two-tier artifact cache (in-memory,
// plus the persistent store when the session has one), keyed by
// (domain, version) and the full content of the plan it aggregates. A
// warm fingerprint returns the cached payload without touching the
// plan's sweeps at all; a cold one runs compute once, with concurrent
// calls for the same fingerprint joining it. Payloads must be valid
// JSON (the store embeds them in JSON documents).
func (s *Session) Artifact(ctx context.Context, domain string, version int, plan Plan, compute func(context.Context) ([]byte, error)) ([]byte, error) {
	return s.r.Artifact(ctx, planArtifactKey(domain, version, plan), compute)
}

// PutArtifact force-installs a payload under Artifact's fingerprint,
// replacing both tiers. Callers use it to repair a cached payload that
// no longer decodes against their current schema.
func (s *Session) PutArtifact(domain string, version int, plan Plan, payload []byte) {
	s.r.PutArtifact(planArtifactKey(domain, version, plan), payload)
}

func simulate(ctx context.Context, sc Scenario, r *runner.Runner) (Outcome, error) {
	sc, err := sc.normalize()
	if err != nil {
		return Outcome{}, err
	}
	exec := r
	if exec == nil {
		exec = runner.Default()
	}
	before := exec.Stats()

	opts := sc.experimentOptions(r)
	base, err := sc.baseSimConfig(opts)
	if err != nil {
		return Outcome{}, err
	}

	// Profile each resizing cache alone (the paper's decoupled-profiling
	// protocol, extended over the hierarchy), recording the per-cache
	// outcome fields as the sweeps complete.
	specs, err := sc.sweepSpecs()
	if err != nil {
		return Outcome{}, err
	}
	var out Outcome
	var parts []experiment.Best
	for _, spec := range specs {
		best, err := experiment.BestSpecContext(ctx, spec, opts)
		if err != nil {
			return Outcome{}, err
		}
		switch spec.Side {
		case experiment.DSide:
			out.DCacheSizeReductionPct = best.SizeReductionPct()
			out.DChosen = best.Desc
		case experiment.ISide:
			out.ICacheSizeReductionPct = best.SizeReductionPct()
			out.IChosen = best.Desc
		case experiment.L2Side:
			out.L2SizeReductionPct = best.SizeReductionPct()
			out.L2Chosen = best.Desc
		}
		parts = append(parts, best)
	}

	// One resized cache: its sweep already measured the outcome. More
	// than one: a combined run holds every cache at its individually
	// profiled winner (the paper's additivity experiment shows the
	// resizings compose).
	chosen := parts[0].Chosen
	if len(parts) == 1 {
		out.EDPReductionPct = parts[0].EDPReductionPct()
		out.SlowdownPct = parts[0].SlowdownPct()
	} else {
		comb, err := experiment.CombinedBestsContext(ctx, base, parts, opts)
		if err != nil {
			return Outcome{}, err
		}
		chosen = comb.Chosen
		out.EDPReductionPct = comb.EDPReductionPct()
		out.SlowdownPct = comb.SlowdownPct()
		if sc.resizesD() {
			out.DCacheSizeReductionPct = chosen.DCache.SizeReductionPct()
		}
		if sc.resizesI() {
			out.ICacheSizeReductionPct = chosen.ICache.SizeReductionPct()
		}
		if sc.resizesL2() {
			out.L2SizeReductionPct = chosen.L2().SizeReductionPct()
		}
	}
	out.Energy = sharesOf(chosen.Energy)
	out.Stats = exec.Stats().Delta(before)
	return out, nil
}
