// Package resizecache is the public facade of the resizable-cache
// design-space simulator, a from-scratch reproduction of Yang, Powell,
// Falsafi & Vijaykumar, "Exploiting Choice in Resizable Cache Design to
// Optimize Deep-Submicron Processor Energy-Delay" (HPCA 2002).
//
// The library simulates a complete processor — out-of-order or in-order
// pipeline, resizable L1 instruction and data caches, unified L2, main
// memory, and a Wattch-style energy model — driven by synthetic
// reproductions of the paper's twelve SPEC workloads. It exposes:
//
//   - the three resizing organizations: selective-ways, selective-sets,
//     and the paper's hybrid selective-sets-and-ways;
//   - the two resizing strategies: static (offline-profiled fixed size)
//     and dynamic (miss-ratio interval controller with miss-bound and
//     size-bound);
//   - profiling sweeps and the drivers that regenerate every table and
//     figure of the paper's evaluation (see cmd/figures).
//
// Quick start:
//
//	res, err := resizecache.Simulate(resizecache.Scenario{
//	    Benchmark:    "gcc",
//	    Organization: resizecache.SelectiveSets,
//	    Strategy:     resizecache.Dynamic,
//	})
//
// The paper's evaluation is a design-space sweep, and the API is built
// around that shape: a Grid declares axes (benchmarks, organizations,
// strategies, associativities, resize sides, engines), expands into a
// deterministic deduplicated Plan of Scenarios, and Session.Run executes
// the whole plan as one batch — every cold profiling sweep is enqueued
// on the shared worker pool up front, and Results stream back as
// scenarios complete. See Grid, Plan, and Session.Run.
//
// For full control over geometries, policies and engines, use the
// lower-level sim configuration via NewConfig and RunConfig.
package resizecache

import (
	"context"
	"fmt"
	"slices"

	"resizecache/internal/core"
	"resizecache/internal/experiment"
	"resizecache/internal/geometry"
	"resizecache/internal/runner"
	"resizecache/internal/sim"
	"resizecache/internal/workload"
)

// Organization selects a resizable-cache organization.
type Organization = core.Organization

// Organizations, re-exported from the core package.
const (
	NonResizable  = core.NonResizable
	SelectiveWays = core.SelectiveWays
	SelectiveSets = core.SelectiveSets
	Hybrid        = core.Hybrid
)

// Strategy selects when the cache resizes.
type Strategy int

const (
	// Static profiles all offered sizes offline and fixes the best one.
	Static Strategy = iota
	// Dynamic resizes at run time with the miss-ratio controller,
	// choosing its parameters by offline profiling.
	Dynamic
)

func (s Strategy) String() string {
	if s == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Sides selects which of the two L1 caches a scenario resizes.
type Sides int

const (
	// BothSides resizes the d-cache and the i-cache together (the
	// paper's combined experiment). This is the zero value.
	BothSides Sides = iota
	// DOnly resizes the data cache only.
	DOnly
	// IOnly resizes the instruction cache only.
	IOnly
)

func (s Sides) String() string {
	switch s {
	case DOnly:
		return "d-cache"
	case IOnly:
		return "i-cache"
	default:
		return "d+i-caches"
	}
}

// Engine selects the processor timing model for a Grid axis.
type Engine int

const (
	// OutOfOrderEngine is the base 4-wide out-of-order configuration
	// with a non-blocking d-cache.
	OutOfOrderEngine Engine = iota
	// InOrderEngine is the in-order, blocking-d-cache configuration.
	InOrderEngine
)

func (e Engine) String() string {
	if e == InOrderEngine {
		return "in-order"
	}
	return "out-of-order"
}

// Scenario is a high-level experiment description: resize one or both
// L1 caches of the paper's base processor for one benchmark and report
// the energy-delay outcome against the non-resizable baseline.
type Scenario struct {
	// Benchmark is one of Benchmarks().
	Benchmark string
	// Organization of the resizable cache(s).
	Organization Organization
	// Strategy: Static (default) or Dynamic.
	Strategy Strategy
	// Sides selects which caches resize: BothSides (the default), DOnly,
	// or IOnly.
	Sides Sides
	// ResizeDCache / ResizeICache are the older boolean form of Sides:
	// exactly one true selects that cache; both false (or both true)
	// means both resize.
	//
	// Deprecated: set Sides instead. The booleans remain honoured when
	// Sides is left at its BothSides zero value, but a combination that
	// contradicts an explicit DOnly/IOnly is an error.
	ResizeDCache bool
	ResizeICache bool
	// Assoc is the L1 set-associativity (default 2, the base config).
	// It must describe a geometry the schedule builder supports: a
	// positive power of two no larger than the 32K cache's subarray
	// count allows (32 at the base 1K subarrays).
	Assoc int
	// InOrder switches to the in-order/blocking-d-cache engine.
	InOrder bool
	// Instructions per run (default 1.5M).
	Instructions uint64
}

// normalize validates a scenario and fills defaults, returning the
// canonical form shared by Simulate and Plan expansion: Sides carries
// the resize selection (the deprecated booleans are folded in and
// cleared) and Assoc and Instructions are defaulted, so two scenarios
// describing the same experiment compare equal — which is what Plan
// deduplication relies on.
func (sc Scenario) normalize() (Scenario, error) {
	if sc.Benchmark == "" {
		return Scenario{}, fmt.Errorf("resizecache: benchmark required (one of %v)", Benchmarks())
	}
	if !slices.Contains(Benchmarks(), sc.Benchmark) {
		return Scenario{}, fmt.Errorf("resizecache: unknown benchmark %q (valid: %v)",
			sc.Benchmark, Benchmarks())
	}
	if sc.Organization == NonResizable {
		return Scenario{}, fmt.Errorf("resizecache: pick a resizable organization")
	}
	if sc.Strategy != Static && sc.Strategy != Dynamic {
		return Scenario{}, fmt.Errorf("resizecache: unknown strategy %d", sc.Strategy)
	}
	if sc.Assoc == 0 {
		sc.Assoc = 2
	}
	// Reject associativities the geometry layer cannot build (negative,
	// non-power-of-two way sizes, ways smaller than a subarray) up front,
	// instead of surfacing a degenerate schedule from deep inside a sweep.
	l1 := geometry.Geometry{SizeBytes: 32 << 10, Assoc: sc.Assoc,
		BlockBytes: 32, SubarrayBytes: 1 << 10}
	if err := l1.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("resizecache: unsupported associativity %d for the 32K L1: %w",
			sc.Assoc, err)
	}
	if sc.Instructions == 0 {
		sc.Instructions = 1_500_000
	}
	switch sc.Sides {
	case BothSides:
		// Fold in the deprecated booleans; both set (or neither) is the
		// combined experiment, matching their historical contract.
		switch {
		case sc.ResizeDCache && !sc.ResizeICache:
			sc.Sides = DOnly
		case sc.ResizeICache && !sc.ResizeDCache:
			sc.Sides = IOnly
		}
	case DOnly:
		if sc.ResizeICache {
			return Scenario{}, fmt.Errorf("resizecache: Sides=DOnly contradicts ResizeICache")
		}
	case IOnly:
		if sc.ResizeDCache {
			return Scenario{}, fmt.Errorf("resizecache: Sides=IOnly contradicts ResizeDCache")
		}
	default:
		return Scenario{}, fmt.Errorf("resizecache: invalid Sides value %d", sc.Sides)
	}
	sc.ResizeDCache, sc.ResizeICache = false, false
	return sc, nil
}

// experimentOptions translates a normalized scenario into the experiment
// layer's sweep options.
func (sc Scenario) experimentOptions(r *runner.Runner) experiment.Options {
	opts := experiment.DefaultOptions()
	opts.Instructions = sc.Instructions
	opts.Runner = r // nil selects the shared default runner
	if sc.InOrder {
		opts.Engine = sim.InOrder
	}
	return opts
}

// sweepSpecs lists the profiling sweeps a normalized scenario gathers —
// one per resized cache. Plan execution enqueues these up front;
// simulate gathers the same specs, so the fingerprints agree by
// construction.
func (sc Scenario) sweepSpecs() []experiment.SweepSpec {
	opts := sc.experimentOptions(nil)
	dyn := sc.Strategy == Dynamic
	var specs []experiment.SweepSpec
	if sc.Sides != IOnly {
		specs = append(specs, experiment.NewSweepSpec(sc.Benchmark, experiment.DSide,
			sc.Organization, sc.Assoc, dyn, opts))
	}
	if sc.Sides != DOnly {
		specs = append(specs, experiment.NewSweepSpec(sc.Benchmark, experiment.ISide,
			sc.Organization, sc.Assoc, dyn, opts))
	}
	return specs
}

// Outcome reports a scenario's result.
type Outcome struct {
	// EDPReductionPct is the processor energy-delay reduction (%) versus
	// the non-resizable baseline.
	EDPReductionPct float64
	// SlowdownPct is the execution-time increase (%).
	SlowdownPct float64
	// DCacheSizeReductionPct / ICacheSizeReductionPct are reductions in
	// time-averaged enabled capacity (%), per cache.
	DCacheSizeReductionPct float64
	ICacheSizeReductionPct float64
	// DChosen / IChosen describe the selected configurations.
	DChosen string
	IChosen string
	// Stats reports the runner activity of this call as a delta: the
	// difference between the executing runner's counters after and
	// before the scenario ran. A warm repeat therefore shows zero Runs
	// and positive ArtifactHits rather than an ever-growing cumulative
	// snapshot. On a shared runner (the process-wide one, or a Session
	// running a concurrent plan) the window also includes work submitted
	// by overlapping callers; Session.Stats has the cumulative view.
	Stats runner.Stats
}

// Benchmarks lists the available workload names (the paper's twelve SPEC
// applications).
func Benchmarks() []string { return workload.Names() }

// Simulate runs a scenario: it profiles the requested strategy per the
// paper's methodology (offline sweep, minimum energy-delay product) and
// returns the outcome. All simulations execute through the process-wide
// shared runner, so repeated Simulate calls memoize against each other;
// use a Session for an isolated memo store, or SimulateContext for
// cancellation.
func Simulate(sc Scenario) (Outcome, error) {
	return SimulateContext(context.Background(), sc)
}

// SimulateContext is Simulate with cancellation: a cancelled context
// stops the scenario's profiling sweeps between simulations.
func SimulateContext(ctx context.Context, sc Scenario) (Outcome, error) {
	return simulate(ctx, sc, nil)
}

// Session shares one run-orchestration layer (worker pool, memoized
// result store, and sweep-level artifact cache; see internal/runner)
// across many Simulate and Run calls while staying isolated from the
// process-wide shared runner. Scenarios that overlap — the same
// benchmark under different strategies, or single- and dual-cache
// resizing of the same organization — re-use each other's simulations
// (including the non-resizable baselines) and whole profiling sweeps;
// Run executes a whole Plan as one batch-scheduled pass. The zero
// value is not usable; construct with NewSession or NewSessionWith.
// Safe for concurrent use.
type Session struct {
	r     *runner.Runner
	store *runner.DiskStore
}

// NewSession returns a Session with a fresh memo store.
func NewSession() *Session {
	return &Session{r: runner.New(runner.Options{})}
}

// SessionOptions configure a Session's run-orchestration layer.
type SessionOptions struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// StorePath, if non-empty, persists per-config results and sweep
	// artifacts to a JSON store at that path, so a later session (or
	// process) resumes without re-simulating or re-profiling. Call
	// Flush to write it out.
	StorePath string
	// MemoLimit bounds the in-memory memo table, evicting the least
	// recently used results beyond it (0 = unbounded).
	MemoLimit int
}

// NewSessionWith returns a Session configured by opts.
func NewSessionWith(opts SessionOptions) (*Session, error) {
	ropts := runner.Options{Workers: opts.Workers, MemoLimit: opts.MemoLimit}
	var store *runner.DiskStore
	if opts.StorePath != "" {
		var err error
		store, err = runner.OpenDiskStore(opts.StorePath)
		if err != nil {
			return nil, err
		}
		ropts.Store = store
	}
	return &Session{r: runner.New(ropts), store: store}, nil
}

// Flush writes the session's persistent store, if it has one.
func (s *Session) Flush() error {
	if s.store == nil {
		return nil
	}
	return s.store.Flush()
}

// Simulate is Session-scoped Simulate.
func (s *Session) Simulate(sc Scenario) (Outcome, error) {
	return s.SimulateContext(context.Background(), sc)
}

// SimulateContext is Session-scoped SimulateContext.
func (s *Session) SimulateContext(ctx context.Context, sc Scenario) (Outcome, error) {
	return simulate(ctx, sc, s.r)
}

// Stats reports the session's scheduling counters: how many simulations
// were submitted, how many actually ran, and how many were resolved from
// the memo store or deduplicated in flight.
func (s *Session) Stats() runner.Stats { return s.r.Stats() }

func simulate(ctx context.Context, sc Scenario, r *runner.Runner) (Outcome, error) {
	sc, err := sc.normalize()
	if err != nil {
		return Outcome{}, err
	}
	exec := r
	if exec == nil {
		exec = runner.Default()
	}
	before := exec.Stats()

	opts := sc.experimentOptions(r)
	resizeD, resizeI := sc.Sides != IOnly, sc.Sides != DOnly
	dyn := sc.Strategy == Dynamic

	var out Outcome
	var dBest, iBest experiment.Best
	if resizeD {
		dBest, err = experiment.BestSpecContext(ctx,
			experiment.NewSweepSpec(sc.Benchmark, experiment.DSide, sc.Organization, sc.Assoc, dyn, opts), opts)
		if err != nil {
			return Outcome{}, err
		}
		out.DCacheSizeReductionPct = dBest.SizeReductionPct()
		out.DChosen = dBest.Desc
	}
	if resizeI {
		iBest, err = experiment.BestSpecContext(ctx,
			experiment.NewSweepSpec(sc.Benchmark, experiment.ISide, sc.Organization, sc.Assoc, dyn, opts), opts)
		if err != nil {
			return Outcome{}, err
		}
		out.ICacheSizeReductionPct = iBest.SizeReductionPct()
		out.IChosen = iBest.Desc
	}

	switch sc.Sides {
	case BothSides:
		// Combined run: the paper's additivity experiment shows the two
		// resizings compose; EDP is measured in one simulation with both
		// caches at their individually profiled configurations.
		comb, err := experiment.CombinedContext(ctx, sc.Benchmark, sc.Organization, sc.Assoc, dBest, iBest, opts)
		if err != nil {
			return Outcome{}, err
		}
		out.EDPReductionPct = comb.EDPReductionPct()
		out.SlowdownPct = comb.SlowdownPct()
		out.DCacheSizeReductionPct = comb.Chosen.DCache.SizeReductionPct()
		out.ICacheSizeReductionPct = comb.Chosen.ICache.SizeReductionPct()
	case DOnly:
		out.EDPReductionPct = dBest.EDPReductionPct()
		out.SlowdownPct = dBest.SlowdownPct()
	default:
		out.EDPReductionPct = iBest.EDPReductionPct()
		out.SlowdownPct = iBest.SlowdownPct()
	}
	out.Stats = exec.Stats().Delta(before)
	return out, nil
}
