package resizecache

// Declarative batch experiments. The paper's evaluation — and most real
// use of this library — is a design-space sweep: a grid over
// {benchmark × organization × strategy × associativity × sides ×
// engine}. Grid declares the axes, Expand turns them into a
// deterministic, deduplicated Plan of Scenarios, and Session.Run
// executes the whole plan as one batch: every cold profiling sweep is
// enqueued on the shared worker pool up front (one batched runner
// pass), scenarios gather by joining that in-flight work, and results
// stream back as they complete.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"resizecache/internal/experiment"
)

// Grid declares a design-space sweep as axes over Scenario fields.
// Empty axes default to: all benchmarks, the three resizable
// organizations, {Static}, associativity {2}, {BothSides},
// {OutOfOrderEngine}, {BaseL2}, a fixed L2 ({NonResizable}), and
// {Static} L2 strategies. Instructions is a scalar applied to every
// scenario (0 = the 1.5M default).
type Grid struct {
	Benchmarks    []string
	Organizations []Organization
	Strategies    []Strategy
	Assocs        []int
	Sides         []Sides
	Engines       []Engine
	// Hierarchies sweeps the shared-cache stack below the L1s.
	Hierarchies []Hierarchy
	// L2Orgs / L2Strategies sweep resizing of the shared L2; cells with
	// a NonResizable L2 org keep the L2 fixed, and the L2Strategies axis
	// is inert for them (such cells deduplicate).
	L2Orgs       []Organization
	L2Strategies []Strategy
	Instructions uint64
	// Sampling, like Instructions, is a scalar applied to every scenario:
	// an enabled spec runs the whole sweep interval-sampled (estimates
	// with error bars, several times faster), which is how large
	// cross-products stay affordable. The zero value keeps full detail.
	Sampling SamplingSpec
}

// Expand enumerates the grid's cross product into a Plan. The order is
// deterministic — nested loops with Benchmarks outermost and the
// hierarchy axes (Hierarchies, then L2Orgs, then L2Strategies)
// innermost, each axis in its given order — and duplicate cells
// (repeated axis values, or distinct spellings that normalize to the
// same scenario) collapse to their first position. Inherent
// cross-product contradictions are skipped rather than aborting the
// grid: cells pairing Sides == L2Only with a NonResizable L2
// organization (nothing resizes), cells pairing a NoL2 hierarchy with
// a resizable L2 organization (no shared level to resize), and cells
// pairing a NonResizable L1 organization with a Sides value that
// resizes an L1 — so {DOnly, L2Only} × {NonResizable, SelectiveWays}
// expands to the three meaningful cells, and a resizable L2 sweeps
// cleanly against a Hierarchies axis that includes NoL2. A grid whose
// every cell is such a contradiction is an error. Every remaining
// scenario is validated; the first invalid cell aborts the expansion
// with its error.
func (g Grid) Expand() (Plan, error) {
	benchmarks := g.Benchmarks
	if len(benchmarks) == 0 {
		benchmarks = Benchmarks()
	}
	orgs := g.Organizations
	if len(orgs) == 0 {
		orgs = []Organization{SelectiveWays, SelectiveSets, Hybrid}
	}
	strategies := g.Strategies
	if len(strategies) == 0 {
		strategies = []Strategy{Static}
	}
	assocs := g.Assocs
	if len(assocs) == 0 {
		assocs = []int{2}
	}
	sides := g.Sides
	if len(sides) == 0 {
		sides = []Sides{BothSides}
	}
	engines := g.Engines
	if len(engines) == 0 {
		engines = []Engine{OutOfOrderEngine}
	}
	hierarchies := g.Hierarchies
	if len(hierarchies) == 0 {
		hierarchies = []Hierarchy{BaseL2}
	}
	l2orgs := g.L2Orgs
	if len(l2orgs) == 0 {
		l2orgs = []Organization{NonResizable}
	}
	l2strategies := g.L2Strategies
	if len(l2strategies) == 0 {
		l2strategies = []Strategy{Static}
	}
	var scenarios []Scenario
	skipped := 0
	for _, b := range benchmarks {
		for _, org := range orgs {
			for _, st := range strategies {
				for _, a := range assocs {
					for _, sd := range sides {
						for _, e := range engines {
							if e != OutOfOrderEngine && e != InOrderEngine {
								return Plan{}, fmt.Errorf("resizecache: unknown engine %d", e)
							}
							for _, h := range hierarchies {
								for _, l2o := range l2orgs {
									for _, l2s := range l2strategies {
										// Inherent cross-product contradictions (see Expand doc).
										l1Resizes := org != NonResizable
										l2Resizes := l2o != NonResizable
										switch {
										case sd == L2Only && !l2Resizes, // nothing resizes the L2
											h == NoL2 && l2Resizes, // no shared level to resize
											// an L1-resizing side with no L1 organization
											// (BothSides with a resizable L2 folds to L2Only)
											!l1Resizes && (sd == DOnly || sd == IOnly),
											!l1Resizes && sd == BothSides && !l2Resizes:
											skipped++
											continue
										}
										scenarios = append(scenarios, Scenario{
											Benchmark:    b,
											Organization: org,
											Strategy:     st,
											Assoc:        a,
											Sides:        sd,
											Hierarchy:    h,
											L2:           L2Spec{Organization: l2o, Strategy: l2s},
											InOrder:      e == InOrderEngine,
											Instructions: g.Instructions,
											Sampling:     g.Sampling,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if len(scenarios) == 0 && skipped > 0 {
		return Plan{}, fmt.Errorf("resizecache: every grid cell is a contradiction (nothing resizes: check the Organizations/Sides/L2Orgs/Hierarchies axes against each other)")
	}
	return PlanOf(scenarios...)
}

// Plan is a validated, normalized, duplicate-free sequence of Scenarios
// ready for Session.Run. The zero value is an empty plan. Build one
// with Grid.Expand or PlanOf.
type Plan struct {
	scenarios []Scenario
}

// PlanOf builds a Plan from explicit scenarios: each is validated and
// normalized (defaults filled, the deprecated resize booleans folded
// into Sides), and duplicates after normalization collapse to their
// first position — a legacy ResizeDCache scenario and its Sides=DOnly
// equivalent count as one.
func PlanOf(scenarios ...Scenario) (Plan, error) {
	seen := make(map[Scenario]struct{}, len(scenarios))
	var p Plan
	for i, sc := range scenarios {
		n, err := sc.normalize()
		if err != nil {
			return Plan{}, fmt.Errorf("scenario %d: %w", i, err)
		}
		if _, dup := seen[n]; dup {
			continue
		}
		seen[n] = struct{}{}
		p.scenarios = append(p.scenarios, n)
	}
	return p, nil
}

// Len returns the number of scenarios in the plan.
func (p Plan) Len() int { return len(p.scenarios) }

// Scenarios returns the plan's scenarios in plan order (a copy).
func (p Plan) Scenarios() []Scenario {
	return append([]Scenario(nil), p.scenarios...)
}

// Result is one scenario's outcome within a plan run. Exactly one
// Result per plan scenario is delivered, in completion order; Index is
// the scenario's position in plan order, and Err carries that
// scenario's failure without affecting the rest of the plan.
type Result struct {
	Index    int
	Scenario Scenario
	Outcome  Outcome
	Err      error
}

// RunOption configures Session.Run.
type RunOption func(*runOptions)

type runOptions struct {
	onResult func(Result, int, int)
}

// OnResult registers a progress callback invoked once per completed
// scenario, in completion order, with the result and
// completed-of-total counts. Callbacks are serialized; keep them fast —
// they run on the scenario workers' critical path, before the result is
// delivered on the stream.
func OnResult(fn func(r Result, completed, total int)) RunOption {
	return func(o *runOptions) { o.onResult = fn }
}

// Run executes every scenario of a plan through the session's shared
// runner and streams results back as scenarios complete. The returned
// channel delivers exactly plan.Len() results and is then closed; it is
// buffered to the plan size, so an abandoned stream never blocks the
// workers.
//
// Batch scheduling: before any scenario starts gathering, one batched
// pass enqueues every cold profiling sweep of the whole plan on the
// runner (sweeps whose artifacts are already cached are skipped, so a
// warm plan enqueues nothing). Scenario gathers then join that
// in-flight work instead of each fanning out its own per-sweep barrier
// — the pool interleaves simulations across scenarios, and the
// runner's Barriers counter stays flat where N sequential Simulate
// calls would add one barrier per sweep. Work still in the queue when
// every scenario has finished (e.g. after per-scenario errors) is
// abandoned.
//
// Errors are per scenario: a failing benchmark yields a Result with Err
// set and the rest of the plan continues. Cancelling ctx stops the plan
// between simulations; unfinished scenarios deliver their context
// error. The stream closes only after abandoned stragglers have
// published, so a Session.Flush issued after draining the stream
// persists every result the plan produced.
func (s *Session) Run(ctx context.Context, plan Plan, opts ...RunOption) <-chan Result {
	var ro runOptions
	for _, o := range opts {
		o(&ro)
	}
	out := make(chan Result, plan.Len())
	if plan.Len() == 0 {
		close(out)
		return out
	}

	var specs []experiment.SweepSpec
	for _, sc := range plan.scenarios {
		// A spec error is only possible for a scenario that bypassed
		// normalize; its simulate gather reports it as that scenario's
		// Result.Err, so the enqueue pass just skips it.
		if scSpecs, err := sc.sweepSpecs(); err == nil {
			specs = append(specs, scSpecs...)
		}
	}
	enqCtx, stopEnqueue := context.WithCancel(ctx)
	_, waitEnqueued := experiment.EnqueueSweeps(enqCtx, specs, experiment.Options{Runner: s.r})

	total := plan.Len()
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed := 0
	for i, sc := range plan.scenarios {
		wg.Add(1)
		go func(i int, sc Scenario) {
			defer wg.Done()
			o, err := simulate(ctx, sc, s.r)
			res := Result{Index: i, Scenario: sc, Outcome: o, Err: err}
			mu.Lock()
			completed++
			if ro.onResult != nil {
				ro.onResult(res, completed, total)
			}
			mu.Unlock()
			out <- res
		}(i, sc)
	}
	go func() {
		wg.Wait()
		// Abandon enqueued work no gather is waiting for, then let the
		// stragglers publish before the stream closes — otherwise a
		// Flush right after could race their store writes and lose them.
		stopEnqueue()
		waitEnqueued()
		close(out)
	}()
	return out
}

// Collect drains a Run stream and returns every result in plan order.
// The returned error is the first per-scenario error in plan order, or
// nil if every scenario succeeded; the results slice is complete either
// way, so callers can inspect the scenarios that did succeed.
func Collect(stream <-chan Result) ([]Result, error) {
	var out []Result
	for r := range stream {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	for _, r := range out {
		if r.Err != nil {
			return out, fmt.Errorf("resizecache: scenario %d (%s): %w", r.Index, r.Scenario.Benchmark, r.Err)
		}
	}
	return out, nil
}
