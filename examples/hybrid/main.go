// Hybrid organization walkthrough: print the size spectra the three
// organizations offer over a 32K 4-way cache (the paper's Table 1), then
// profile all three on a benchmark whose working set falls between
// selective-sets' power-of-two points — the case the hybrid organization
// was designed for.
package main

import (
	"fmt"
	"log"

	"resizecache/internal/core"
	"resizecache/internal/experiment"
	"resizecache/internal/geometry"
)

func main() {
	g := geometry.Geometry{SizeBytes: 32 << 10, Assoc: 4, BlockBytes: 32, SubarrayBytes: 1 << 10}

	for _, org := range []core.Organization{core.SelectiveWays, core.SelectiveSets, core.Hybrid} {
		sched, err := core.BuildSchedule(g, org)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s offers:", org)
		for _, p := range sched.Points {
			fmt.Printf(" %v", p)
		}
		fmt.Println()
	}

	// compress's data working set sits near 20K: selective-sets must stay
	// at 32K, selective-ways can take 24K, and hybrid picks its best
	// point from the union.
	fmt.Println("\nprofiling compress d-cache at 32K 4-way (static):")
	opts := experiment.DefaultOptions()
	opts.Instructions = 800_000
	for _, org := range []core.Organization{core.SelectiveWays, core.SelectiveSets, core.Hybrid} {
		best, err := experiment.BestStatic("compress", experiment.DSide, org, 4, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s chose %-18s EDP %+.1f%%  size -%.1f%%  slowdown %.1f%%\n",
			org, best.Desc, best.EDPReductionPct(), best.SizeReductionPct(), best.SlowdownPct())
	}
}
