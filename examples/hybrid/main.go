// Hybrid organization walkthrough: print the size spectra the three
// organizations offer over a 32K 4-way cache (the paper's Table 1), then
// profile all three on a benchmark whose working set falls between
// selective-sets' power-of-two points — the case the hybrid organization
// was designed for. The three profilings are one declarative plan over
// the Organizations axis; they share the non-resizable baseline, so the
// batch simulates it once.
package main

import (
	"context"
	"fmt"
	"log"

	"resizecache"
	"resizecache/internal/core"
	"resizecache/internal/geometry"
)

func main() {
	g := geometry.Geometry{SizeBytes: 32 << 10, Assoc: 4, BlockBytes: 32, SubarrayBytes: 1 << 10}

	orgs := []resizecache.Organization{
		resizecache.SelectiveWays, resizecache.SelectiveSets, resizecache.Hybrid}
	for _, org := range orgs {
		sched, err := core.BuildSchedule(g, org)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s offers:", org)
		for _, p := range sched.Points {
			fmt.Printf(" %v", p)
		}
		fmt.Println()
	}

	// compress's data working set sits near 20K: selective-sets must stay
	// at 32K, selective-ways can take 24K, and hybrid picks its best
	// point from the union.
	fmt.Println("\nprofiling compress d-cache at 32K 4-way (static):")
	plan, err := resizecache.Grid{
		Benchmarks:    []string{"compress"},
		Organizations: orgs,
		Assocs:        []int{4},
		Sides:         []resizecache.Sides{resizecache.DOnly},
		Instructions:  800_000,
	}.Expand()
	if err != nil {
		log.Fatal(err)
	}
	results, err := resizecache.Collect(resizecache.NewSession().Run(context.Background(), plan))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("  %-15s chose %-18s EDP %+.1f%%  size -%.1f%%  slowdown %.1f%%\n",
			r.Scenario.Organization, r.Outcome.DChosen, r.Outcome.EDPReductionPct,
			r.Outcome.DCacheSizeReductionPct, r.Outcome.SlowdownPct)
	}
}
