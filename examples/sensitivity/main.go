// Sensitivity walkthrough: how the headline resizing result moves with
// the knobs the paper fixes — subarray granularity and the dynamic
// controller's interval. Uses a two-app subset so it finishes quickly;
// `go run ./cmd/figures -exp sens` runs the full versions.
package main

import (
	"fmt"
	"log"

	"resizecache/internal/experiment"
)

func main() {
	opts := experiment.DefaultOptions()
	opts.Instructions = 500_000
	opts.Apps = []string{"ammp", "vpr"}

	rows, err := experiment.SubarraySensitivity(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiment.RenderSensitivity(
		"Subarray granularity (static selective-sets d-cache, ammp+vpr):", rows))
	fmt.Println("\nFiner subarrays offer smaller minimum sizes and more schedule")
	fmt.Println("points, so small-working-set apps keep gaining; coarser subarrays")
	fmt.Println("throw that opportunity away.")

	rows, err = experiment.IntervalSensitivity(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiment.RenderSensitivity(
		"Dynamic interval (in-order engine, d-cache, ammp+vpr):", rows))
	fmt.Println("\nShort intervals adapt fast but react to noise; long intervals")
	fmt.Println("stay oversized for whole program phases.")
}
