// Dual-resize walkthrough: the paper's Figure 9 claim is that d-cache
// and i-cache resizings are decoupled — the combined savings are close
// to the sum of the individual savings, because resizing one L1 barely
// changes the other's (or the L2's) footprint. Demonstrate on three
// benchmarks.
package main

import (
	"fmt"
	"log"

	"resizecache"
)

func main() {
	fmt.Println("static selective-sets on the base processor (32K 2-way L1s):")
	fmt.Printf("  %-10s %10s %10s %10s %12s\n", "app", "d alone", "i alone", "both", "d+i sum")
	for _, app := range []string{"ammp", "m88ksim", "ijpeg"} {
		dOnly := simulate(app, true, false)
		iOnly := simulate(app, false, true)
		both := simulate(app, true, true)
		fmt.Printf("  %-10s %9.1f%% %9.1f%% %9.1f%% %11.1f%%\n",
			app, dOnly.EDPReductionPct, iOnly.EDPReductionPct,
			both.EDPReductionPct, dOnly.EDPReductionPct+iOnly.EDPReductionPct)
	}
	fmt.Println("\n\"both\" tracking the sum is the paper's additivity property:")
	fmt.Println("resizings can be profiled per cache and deployed together.")
}

func simulate(app string, d, i bool) resizecache.Outcome {
	out, err := resizecache.Simulate(resizecache.Scenario{
		Benchmark:    app,
		Organization: resizecache.SelectiveSets,
		Strategy:     resizecache.Static,
		ResizeDCache: d,
		ResizeICache: i,
		Instructions: 800_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return out
}
