// Dual-resize walkthrough: the paper's Figure 9 claim is that d-cache
// and i-cache resizings are decoupled — the combined savings are close
// to the sum of the individual savings, because resizing one L1 barely
// changes the other's (or the L2's) footprint. Demonstrate on three
// benchmarks with one declarative plan: the Sides axis expands to
// {d alone, i alone, both} per benchmark, and Session.Run executes the
// nine scenarios as one batch — the standalone sweeps and the combined
// runs share their baselines and profiling sweeps automatically.
package main

import (
	"context"
	"fmt"
	"log"

	"resizecache"
)

func main() {
	grid := resizecache.Grid{
		Benchmarks:    []string{"ammp", "m88ksim", "ijpeg"},
		Organizations: []resizecache.Organization{resizecache.SelectiveSets},
		Sides: []resizecache.Sides{
			resizecache.DOnly, resizecache.IOnly, resizecache.BothSides},
		Instructions: 800_000,
	}
	plan, err := grid.Expand()
	if err != nil {
		log.Fatal(err)
	}
	session := resizecache.NewSession()
	results, err := resizecache.Collect(session.Run(context.Background(), plan))
	if err != nil {
		log.Fatal(err)
	}

	edp := make(map[string]map[resizecache.Sides]float64)
	for _, r := range results {
		app := r.Scenario.Benchmark
		if edp[app] == nil {
			edp[app] = make(map[resizecache.Sides]float64)
		}
		edp[app][r.Scenario.Sides] = r.Outcome.EDPReductionPct
	}

	fmt.Println("static selective-sets on the base processor (32K 2-way L1s):")
	fmt.Printf("  %-10s %10s %10s %10s %12s\n", "app", "d alone", "i alone", "both", "d+i sum")
	for _, app := range grid.Benchmarks {
		e := edp[app]
		fmt.Printf("  %-10s %9.1f%% %9.1f%% %9.1f%% %11.1f%%\n",
			app, e[resizecache.DOnly], e[resizecache.IOnly],
			e[resizecache.BothSides], e[resizecache.DOnly]+e[resizecache.IOnly])
	}
	fmt.Println("\n\"both\" tracking the sum is the paper's additivity property:")
	fmt.Println("resizings can be profiled per cache and deployed together.")
}
