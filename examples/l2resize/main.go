// L2-resizing walkthrough: the hierarchy is data, so the shared L2
// resizes with the same machinery as the L1s. Declare one grid over the
// L2Orgs axis (L1s fixed, L2 resizing alone), run it as one batch, and
// show where the saved energy comes from — then sweep the Hierarchies
// axis to see the same benchmark on a machine with no L2 at all.
package main

import (
	"context"
	"fmt"
	"log"

	"resizecache"
)

func main() {
	apps := []string{"m88ksim", "compress", "gcc"}
	plan, err := resizecache.Grid{
		Benchmarks:    apps,
		Organizations: []resizecache.Organization{resizecache.SelectiveSets}, // inert for L2Only cells
		Sides:         []resizecache.Sides{resizecache.L2Only},
		L2Orgs: []resizecache.Organization{
			resizecache.SelectiveWays, resizecache.SelectiveSets, resizecache.Hybrid},
		Instructions: 400_000,
	}.Expand()
	if err != nil {
		log.Fatal(err)
	}
	session := resizecache.NewSession()
	results, err := resizecache.Collect(session.Run(context.Background(), plan))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("resizing the 512K 4-way L2 alone (static, profiled per app):")
	fmt.Printf("  %-10s %-16s %-22s %10s %10s %8s\n",
		"app", "L2 org", "chosen", "size red", "EDP red", "l2 en%")
	for _, r := range results {
		o := r.Outcome
		fmt.Printf("  %-10s %-16s %-22s %9.1f%% %9.1f%% %7.1f%%\n",
			r.Scenario.Benchmark, r.Scenario.L2.Organization, o.L2Chosen,
			o.L2SizeReductionPct, o.EDPReductionPct, o.Energy.L2Pct)
	}

	// The Hierarchies axis: the same experiment on different machines.
	fmt.Println("\nd-cache resizing across hierarchy shapes (m88ksim, static selective-sets):")
	plan, err = resizecache.Grid{
		Benchmarks:    []string{"m88ksim"},
		Organizations: []resizecache.Organization{resizecache.SelectiveSets},
		Sides:         []resizecache.Sides{resizecache.DOnly},
		Hierarchies: []resizecache.Hierarchy{
			resizecache.BaseL2, resizecache.SmallL2, resizecache.BigL2,
			resizecache.DeepL2L3, resizecache.NoL2},
		Instructions: 400_000,
	}.Expand()
	if err != nil {
		log.Fatal(err)
	}
	results, err = resizecache.Collect(session.Run(context.Background(), plan))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-10s %-22s %10s %8s\n", "hierarchy", "d-cache chose", "EDP red", "l2 en%")
	for _, r := range results {
		o := r.Outcome
		fmt.Printf("  %-10v %-22s %9.1f%% %7.1f%%\n",
			r.Scenario.Hierarchy, o.DChosen, o.EDPReductionPct, o.Energy.L2Pct)
	}
	fmt.Println("\nthe resizing gain is stable across hierarchy shapes — the paper's")
	fmt.Println("claim that L1 resizing barely perturbs the levels below it.")
}
