// Dynamic resizing walkthrough: run the miss-ratio controller on
// su2cor's periodic data working set under the in-order/blocking-d-cache
// engine (where d-miss latency is fully exposed) and print the
// interval-by-interval size trace — the adaptation the paper's Figure 7
// credits dynamic resizing for.
package main

import (
	"fmt"
	"log"

	"resizecache/internal/core"
	"resizecache/internal/geometry"
	"resizecache/internal/sim"
)

func main() {
	cfg := sim.Default("su2cor")
	cfg.Engine = sim.InOrder
	cfg.Instructions = 2_000_000
	cfg.DCache = sim.CacheSpec{
		Geom: geometry.Geometry{SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, SubarrayBytes: 1 << 10},
		Org:  core.SelectiveSets,
		Policy: sim.PolicySpec{
			Kind:      sim.PolicyDynamic,
			Interval:  32768, // accesses per monitoring window
			MissBound: 650,   // misses per window before upsizing
		},
	}

	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	sched, _ := core.BuildSchedule(cfg.DCache.Geom, core.SelectiveSets)
	fmt.Println("su2cor d-cache, dynamic selective-sets, in-order engine")
	fmt.Printf("  schedule: %v\n", sched.Points)
	fmt.Printf("  resizes: %d, flushed blocks: %d\n", res.DCache.Resizes, res.DCache.FlushedBlocks)
	fmt.Printf("  avg enabled size: %.1fK (−%.1f%%)\n",
		res.DCache.AvgBytes/1024, res.DCache.SizeReductionPct())
	fmt.Print("  size trace (schedule index per interval):\n    ")
	for i, idx := range res.DCache.SizeTrace {
		if i > 0 && i%32 == 0 {
			fmt.Print("\n    ")
		}
		fmt.Print(idx)
	}
	fmt.Println()
	fmt.Println("  (watch it walk down during the small-working-set phase and back up")
	fmt.Println("   when the periodic large phase returns)")
}
