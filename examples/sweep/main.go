// Sweep: the declarative batch API end to end. Declare a
// benchmarks × organizations × strategies grid, expand it to a
// deduplicated plan, run the whole plan as one batch through a Session,
// and stream results as they complete — with a progress callback and an
// ordered Collect at the end. The session's stats show the batch
// scheduling at work: every cold profiling sweep was enqueued in one
// pass (EnqueueBatches=1) and the per-sweep gathers joined that work
// instead of fanning out their own barriers (Barriers=0).
//
// The instruction budget is kept small so this finishes in seconds; it
// doubles as the CI smoke test for the batch API.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"resizecache"
)

func main() {
	grid := resizecache.Grid{
		Benchmarks:    []string{"gcc", "m88ksim", "compress", "vpr"},
		Organizations: []resizecache.Organization{resizecache.SelectiveWays, resizecache.SelectiveSets},
		Strategies:    []resizecache.Strategy{resizecache.Static},
		Sides:         []resizecache.Sides{resizecache.DOnly},
		Instructions:  150_000,
	}
	plan, err := grid.Expand()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d scenarios (benchmarks × organizations)\n\n", plan.Len())

	session := resizecache.NewSession()
	stream := session.Run(context.Background(), plan,
		resizecache.OnResult(func(r resizecache.Result, completed, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d scenarios complete", completed, total)
			if completed == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	results, err := resizecache.Collect(stream)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  %-10s %-15s %-18s %10s %10s\n",
		"app", "organization", "chose", "EDP red", "size red")
	for _, r := range results {
		fmt.Printf("  %-10s %-15v %-18s %9.1f%% %9.1f%%\n",
			r.Scenario.Benchmark, r.Scenario.Organization, r.Outcome.DChosen,
			r.Outcome.EDPReductionPct, r.Outcome.DCacheSizeReductionPct)
	}

	st := session.Stats()
	fmt.Printf("\nbatch scheduling: %d sims enqueued in %d pass(es), %d gather barriers, %d dedup joins\n",
		st.Enqueued, st.EnqueueBatches, st.Barriers, st.InFlightDedups)
}
