// Quickstart: resize both L1 caches of the base processor for one
// benchmark with static selective-sets — the paper's headline experiment
// — and print the energy-delay outcome.
package main

import (
	"fmt"
	"log"

	"resizecache"
)

func main() {
	out, err := resizecache.Simulate(resizecache.Scenario{
		Benchmark:    "m88ksim",
		Organization: resizecache.SelectiveSets,
		Strategy:     resizecache.Static,
		Instructions: 800_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("m88ksim, static selective-sets, resizing both L1 caches:")
	fmt.Printf("  d-cache: %-18s avg size reduced %.1f%%\n", out.DChosen, out.DCacheSizeReductionPct)
	fmt.Printf("  i-cache: %-18s avg size reduced %.1f%%\n", out.IChosen, out.ICacheSizeReductionPct)
	fmt.Printf("  processor energy-delay reduced %.1f%% (slowdown %.1f%%)\n",
		out.EDPReductionPct, out.SlowdownPct)
}
