// Command simlint runs the repo's custom static-analysis suite — the
// four analyzers under internal/analysis that prove the invariants the
// paper's claims rest on:
//
//	keycomplete  every exported field reachable from sim.Config is
//	             written into the Key() fingerprint, and the field set
//	             is pinned to keyVersion (no silent memo aliasing);
//	hotalloc     //simlint:hotpath functions, and everything they
//	             statically call across the module, contain no
//	             allocating constructs (PR 5's zero-alloc hot path,
//	             proven instead of sampled);
//	determinism  no wall-clock reads, global math/rand, or map-order
//	             iteration inside the deterministic simulation core
//	             (the gang/golden bit-identity contract);
//	ctxflow      Enqueue wait funcs are consumed and context threads
//	             through every sweep entry point.
//
// Usage:
//
//	go run ./cmd/simlint ./...          # whole module (what CI runs)
//	go run ./cmd/simlint ./internal/sim # specific package directories
//	go run ./cmd/simlint -only hotalloc,determinism ./...
//
// simlint exits 1 when any analyzer reports a finding and 2 on driver
// errors. It is a standalone driver rather than a `go vet -vettool`
// because the vettool protocol needs golang.org/x/tools/go/analysis,
// which this repo's hermetic build environment cannot fetch; the
// analysis framework (internal/analysis) reimplements the x/tools API
// shape on the standard library instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"resizecache/internal/analysis"
	"resizecache/internal/analysis/ctxflow"
	"resizecache/internal/analysis/determinism"
	"resizecache/internal/analysis/hotalloc"
	"resizecache/internal/analysis/keycomplete"
)

// determinismScope lists the deterministic simulation core: the
// packages whose output must be a pure function of the config. The
// reporting/benchmarking layers (benchsuite, prof, figures, cmds) may
// legitimately read the clock and are excluded.
var determinismScope = map[string]bool{
	"internal/sim":      true,
	"internal/cpu":      true,
	"internal/cache":    true,
	"internal/core":     true,
	"internal/workload": true,
	"internal/runner":   true,
	// The substrates the core packages embed share the same contract.
	"internal/bpred":    true,
	"internal/geometry": true,
	"internal/energy":   true,
	"internal/stats":    true,
	// The daemon fabric: frames, handlers, and the client mux must not
	// inject wall-clock or iteration-order nondeterminism between a
	// plan's submission and its bit-identical remote results.
	"internal/simd":        true,
	"internal/simd/wire":   true,
	"internal/simd/client": true,
	// The chaos harness must be as deterministic as the code it breaks:
	// a scripted fault schedule that drifted with the clock or math/rand
	// would make chaos failures unreproducible.
	"internal/simd/faultnet": true,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "log every package as it is checked")
	flag.Parse()

	all := []*analysis.Analyzer{keycomplete.Analyzer, hotalloc.Analyzer, determinism.Analyzer, ctxflow.Analyzer}
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	selected := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (use -list)", name)
			}
			selected = append(selected, a)
		}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatalf("%v", err)
	}
	paths, err := resolvePatterns(loader, flag.Args())
	if err != nil {
		fatalf("%v", err)
	}

	failed := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatalf("load %s: %v", path, err)
		}
		if len(pkg.TypeErrors) > 0 {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintln(os.Stderr, e)
			}
			fatalf("%s does not type-check; fix the build before linting", path)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "simlint: %s\n", path)
		}
		for _, a := range selected {
			if a == determinism.Analyzer && !inDeterminismScope(loader, path) {
				continue
			}
			diags, err := analysis.Run(a, pkg, loader.Load)
			if err != nil {
				fatalf("%v", err)
			}
			for _, d := range diags {
				fmt.Println(rel(loader, d))
				failed++
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", failed)
		os.Exit(1)
	}
}

// resolvePatterns expands the package patterns: no args or "./..."
// means every package in the module; other args are directories
// relative to the working directory.
func resolvePatterns(l *analysis.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		if arg == "./..." || arg == "all" {
			pkgs, err := l.ModulePackages()
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				add(p)
			}
			continue
		}
		abs, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
		if err != nil {
			return nil, err
		}
		relDir, err := filepath.Rel(l.ModuleRoot(), abs)
		if err != nil || strings.HasPrefix(relDir, "..") {
			return nil, fmt.Errorf("package %q is outside module %s", arg, l.ModulePath())
		}
		if strings.HasSuffix(arg, "/...") {
			pkgs, err := l.ModulePackages()
			if err != nil {
				return nil, err
			}
			prefix := l.ModulePath()
			if relDir != "." {
				prefix = l.ModulePath() + "/" + filepath.ToSlash(relDir)
			}
			for _, p := range pkgs {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
				}
			}
			continue
		}
		if relDir == "." {
			add(l.ModulePath())
		} else {
			add(l.ModulePath() + "/" + filepath.ToSlash(relDir))
		}
	}
	sort.Strings(out)
	return out, nil
}

func inDeterminismScope(l *analysis.Loader, path string) bool {
	rel := strings.TrimPrefix(path, l.ModulePath()+"/")
	return determinismScope[rel]
}

// rel renders a diagnostic with the filename relative to the module
// root, matching compiler output style.
func rel(l *analysis.Loader, d analysis.Diagnostic) string {
	if r, err := filepath.Rel(l.ModuleRoot(), d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d.String()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simlint: "+format+"\n", args...)
	os.Exit(2)
}
