package main

import (
	"testing"

	"resizecache/internal/analysis"
)

func newLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	return l
}

func TestResolvePatternsAll(t *testing.T) {
	l := newLoader(t)
	pkgs, err := resolvePatterns(l, nil)
	if err != nil {
		t.Fatalf("resolvePatterns: %v", err)
	}
	want := map[string]bool{
		"resizecache/internal/sim": true,
		"resizecache/cmd/simlint":  true,
	}
	for _, p := range pkgs {
		delete(want, p)
	}
	for missing := range want {
		t.Errorf("./... did not resolve %s", missing)
	}
}

func TestResolvePatternsDir(t *testing.T) {
	l := newLoader(t)
	pkgs, err := resolvePatterns(l, []string{"../../internal/sim"})
	if err != nil {
		t.Fatalf("resolvePatterns: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0] != "resizecache/internal/sim" {
		t.Fatalf("got %v, want exactly [resizecache/internal/sim]", pkgs)
	}
}

func TestResolvePatternsSubtree(t *testing.T) {
	l := newLoader(t)
	pkgs, err := resolvePatterns(l, []string{"../../internal/analysis/..."})
	if err != nil {
		t.Fatalf("resolvePatterns: %v", err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p] = true
		if p == "resizecache/internal/sim" {
			t.Errorf("subtree pattern leaked %s", p)
		}
	}
	for _, want := range []string{
		"resizecache/internal/analysis",
		"resizecache/internal/analysis/keycomplete",
	} {
		if !seen[want] {
			t.Errorf("subtree pattern missed %s (got %v)", want, pkgs)
		}
	}
}

func TestResolvePatternsOutsideModule(t *testing.T) {
	l := newLoader(t)
	if _, err := resolvePatterns(l, []string{"/tmp"}); err == nil {
		t.Fatal("path outside the module resolved without error")
	}
}

func TestDeterminismScope(t *testing.T) {
	l := newLoader(t)
	if !inDeterminismScope(l, "resizecache/internal/sim") {
		t.Error("internal/sim must be in the determinism scope")
	}
	if inDeterminismScope(l, "resizecache/internal/benchsuite") {
		t.Error("benchsuite may read the clock; it must not be in scope")
	}
}
