// Command bench runs the repository's performance benchmarks
// (internal/benchsuite) and writes a machine-readable BENCH_<n>.json —
// the performance-regression trajectory CI extends on every main build.
//
// Usage:
//
//	bench                    # full suite (raw throughput + figures; minutes)
//	bench -short             # raw-throughput tier only (seconds)
//	bench -out BENCH_0.json  # fixed output path (CI overwrites the head)
//	bench -dir out           # auto-number BENCH_<n>.json under out/
//	bench -baseline BENCH_0.json -maxregress 10
//	                         # compare against a baseline report and exit
//	                         # non-zero if any benchmark is >10% slower
//
// Each entry records ns/op, allocs/op, bytes/op, derived instrs/sec for
// the simulator benchmarks, and every custom metric the benchmark
// reports — the figure benchmarks carry their experiment's headline
// results (edp_red_pct and friends), so diffing two BENCH files shows
// result regressions alongside speed regressions.
package main

import (
	"flag"
	"fmt"
	"os"

	"resizecache/internal/benchsuite"
)

func main() {
	var (
		short      = flag.Bool("short", false, "run only the raw-throughput tier (skip minutes-scale figure benchmarks)")
		out        = flag.String("out", "", "output path (default: next free BENCH_<n>.json in -dir)")
		dir        = flag.String("dir", ".", "directory for auto-numbered BENCH_<n>.json files")
		quiet      = flag.Bool("q", false, "suppress per-benchmark progress on stderr")
		baseline   = flag.String("baseline", "", "baseline BENCH_<n>.json to compare against (prints per-benchmark deltas)")
		maxregress = flag.Float64("maxregress", 10, "with -baseline: max tolerated ns/op regression in percent before exiting non-zero")
	)
	flag.Parse()

	// Load the baseline before spending minutes on the suite.
	var base benchsuite.Report
	if *baseline != "" {
		var err error
		if base, err = benchsuite.LoadReport(*baseline); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	path := *out
	if path == "" {
		var err error
		if path, err = benchsuite.NextPath(*dir); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	var progress func(string)
	if !*quiet {
		progress = func(name string) { fmt.Fprintf(os.Stderr, "bench: running %s\n", name) }
	}
	entries := benchsuite.Run(*short, progress)

	failed := false
	for _, e := range entries {
		if e.Failed {
			failed = true
			fmt.Fprintf(os.Stderr, "bench: %s FAILED\n", e.Name)
			continue
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "bench: %-24s %12.0f ns/op  %6d allocs/op\n",
				e.Name, e.NsPerOp, e.AllocsPerOp)
		}
	}

	if err := benchsuite.WriteReport(path, benchsuite.NewReport(*short, entries)); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println(path)
	if failed {
		os.Exit(1)
	}

	if *baseline != "" {
		fmt.Fprintf(os.Stderr, "bench: comparing against %s (max regression %.0f%%)\n",
			*baseline, *maxregress)
		deltas := benchsuite.Compare(base, entries)
		for _, d := range deltas {
			fmt.Fprintln(os.Stderr, "bench:", d)
		}
		if bad := benchsuite.Regressions(deltas, *maxregress); len(bad) > 0 {
			for _, d := range bad {
				fmt.Fprintf(os.Stderr, "bench: REGRESSION %s: %+.1f%% over baseline (limit %.0f%%)\n",
					d.Name, d.Pct, *maxregress)
			}
			os.Exit(2)
		}
	}
}
