package main

import (
	"testing"

	"resizecache"
)

func TestScenarioFromFlags(t *testing.T) {
	sc, err := scenarioFromFlags("gcc", "hybrid", "dynamic", "d", "inorder", "big-l2",
		"ways", false, true, 4, 8, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	want := resizecache.Scenario{
		Benchmark:    "gcc",
		Organization: resizecache.Hybrid,
		Strategy:     resizecache.Dynamic,
		Sides:        resizecache.DOnly,
		Assoc:        4,
		Hierarchy:    resizecache.BigL2,
		L2:           resizecache.L2Spec{Organization: resizecache.SelectiveWays, Strategy: resizecache.Dynamic, Assoc: 8},
		InOrder:      true,
		Instructions: 500_000,
	}
	if sc != want {
		t.Errorf("scenario = %+v, want %+v", sc, want)
	}

	// -org none with -l2org resizes the L2 alone: the CLI passes the
	// scenario through untouched and the facade folds it to L2Only.
	sc, err = scenarioFromFlags("gcc", "none", "static", "both", "ooo", "base",
		"sets", true, false, 2, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Organization != resizecache.NonResizable || sc.L2.Organization != resizecache.SelectiveSets {
		t.Errorf("L2-only spelling wrong: %+v", sc)
	}
	if _, err := resizecache.PlanOf(sc); err != nil {
		t.Errorf("facade rejected the L2-only spelling: %v", err)
	}

	bad := []struct{ name, org, strategy, sides, engine, hier, l2org string }{
		{"bad org", "diagonal", "static", "both", "ooo", "base", "none"},
		{"bad strategy", "sets", "psychic", "both", "ooo", "base", "none"},
		{"bad sides", "sets", "static", "sideways", "ooo", "base", "none"},
		{"bad engine", "sets", "static", "both", "quantum", "base", "none"},
		{"bad hierarchy", "sets", "static", "both", "ooo", "l9", "none"},
		{"bad l2 org", "sets", "static", "both", "ooo", "base", "spirals"},
	}
	for _, c := range bad {
		if _, err := scenarioFromFlags("gcc", c.org, c.strategy, c.sides, c.engine, c.hier,
			c.l2org, false, false, 2, 0, 1000); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// L2 strategy flags without an L2 organization, or both at once.
	if _, err := scenarioFromFlags("gcc", "sets", "static", "both", "ooo", "base",
		"none", true, false, 2, 0, 1000); err == nil {
		t.Error("-l2static without -l2org accepted")
	}
	if _, err := scenarioFromFlags("gcc", "sets", "static", "both", "ooo", "base",
		"ways", true, true, 2, 0, 1000); err == nil {
		t.Error("-l2static with -l2dynamic accepted")
	}
}

func TestParsersAcceptStringForms(t *testing.T) {
	// The tool's own printed spellings must round-trip through the flags.
	for in, want := range map[string]resizecache.Hierarchy{
		"512K-l2": resizecache.BaseL2, "256K-l2": resizecache.SmallL2,
		"1M-l2": resizecache.BigL2, "no-l2": resizecache.NoL2, "l2+l3": resizecache.DeepL2L3,
	} {
		got, err := parseHierarchy(in)
		if err != nil || got != want {
			t.Errorf("parseHierarchy(%q) = %v, %v", in, got, err)
		}
	}
	for in, want := range map[string]resizecache.Sides{
		"d-cache": resizecache.DOnly, "i-cache": resizecache.IOnly,
		"l2-cache": resizecache.L2Only, "d+i-caches": resizecache.BothSides,
	} {
		got, err := parseSides(in)
		if err != nil || got != want {
			t.Errorf("parseSides(%q) = %v, %v", in, got, err)
		}
	}
}
