// Command respcache runs one scenario through the public facade and
// prints a detailed report: the profiled winner per resized cache, the
// energy-delay outcome versus the non-resizable baseline, the energy
// breakdown, and (with -stats) the run-orchestration counters.
//
// Examples:
//
//	respcache -bench gcc -org sets
//	respcache -bench compress -org ways -sides d
//	respcache -bench su2cor -org sets -strategy dynamic -engine inorder
//	respcache -bench vpr -org hybrid -l2org ways           # L1s + L2
//	respcache -bench gcc -org none -l2org sets -l2dynamic  # L2 alone
//	respcache -bench gcc -org sets -hierarchy l2+l3 -stats
//	respcache -bench gcc -org sets -server unix:/tmp/simd.sock  # shared memo fabric
//
// With -server, simulations still run in this process but the memo
// store round-trips to a simd daemon (cmd/simd): results another client
// already computed are store hits here (visible as remote hits under
// -stats), and this run's fresh results are recorded for everyone else.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"resizecache"
	"resizecache/internal/prof"
	"resizecache/internal/runner"
)

// parseHierarchy maps the -hierarchy flag to a preset; the String()
// forms the tool prints round-trip too.
func parseHierarchy(s string) (resizecache.Hierarchy, error) {
	switch s {
	case "", "base", "512K-l2":
		return resizecache.BaseL2, nil
	case "no-l2":
		return resizecache.NoL2, nil
	case "small-l2", "256K-l2":
		return resizecache.SmallL2, nil
	case "big-l2", "1M-l2":
		return resizecache.BigL2, nil
	case "l2+l3":
		return resizecache.DeepL2L3, nil
	default:
		return 0, fmt.Errorf("unknown hierarchy %q (base, no-l2, small-l2, big-l2, l2+l3)", s)
	}
}

// parseSides maps the -sides flag to a Sides value; the String() forms
// round-trip too.
func parseSides(s string) (resizecache.Sides, error) {
	switch s {
	case "", "both", "d+i-caches":
		return resizecache.BothSides, nil
	case "d", "d-cache":
		return resizecache.DOnly, nil
	case "i", "i-cache":
		return resizecache.IOnly, nil
	case "l2", "l2-cache":
		return resizecache.L2Only, nil
	default:
		return 0, fmt.Errorf("unknown sides %q (both, d, i, l2)", s)
	}
}

// scenarioFromFlags translates the flag set into a facade Scenario.
func scenarioFromFlags(bench, org, strategy, sides, engine, hierarchy, l2org string,
	l2static, l2dynamic bool, assoc, l2assoc int, instr uint64) (resizecache.Scenario, error) {

	var sc resizecache.Scenario
	sc.Benchmark = bench
	sc.Instructions = instr
	sc.Assoc = assoc

	var err error
	if sc.Organization, err = resizecache.ParseOrganization(org); err != nil {
		return sc, err
	}
	if sc.Strategy, err = resizecache.ParseStrategy(strategy); err != nil {
		return sc, err
	}
	if sc.Sides, err = parseSides(sides); err != nil {
		return sc, err
	}
	if sc.Hierarchy, err = parseHierarchy(hierarchy); err != nil {
		return sc, err
	}
	switch engine {
	case "", "ooo":
	case "inorder":
		sc.InOrder = true
	default:
		return sc, fmt.Errorf("unknown engine %q (ooo, inorder)", engine)
	}

	if sc.L2.Organization, err = resizecache.ParseOrganization(l2org); err != nil {
		return sc, err
	}
	sc.L2.Assoc = l2assoc
	switch {
	case l2static && l2dynamic:
		return sc, fmt.Errorf("-l2static and -l2dynamic are mutually exclusive")
	case l2dynamic:
		sc.L2.Strategy = resizecache.Dynamic
	default:
		sc.L2.Strategy = resizecache.Static
	}
	if (l2static || l2dynamic) && sc.L2.Organization == resizecache.NonResizable {
		return sc, fmt.Errorf("-l2static/-l2dynamic need -l2org (ways, sets, hybrid)")
	}
	// -org none with a resizable L2 normalizes to an L2-only experiment
	// inside the facade; no CLI-side folding needed.
	return sc, nil
}

// main defers to realMain so the profiling stop (and every other defer)
// runs before the process exits — os.Exit would skip them.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		bench    = flag.String("bench", "gcc", "benchmark name")
		instr    = flag.Uint64("instr", 1_500_000, "instructions per simulation")
		engine   = flag.String("engine", "ooo", "engine: ooo or inorder")
		assoc    = flag.Int("assoc", 2, "L1 set-associativity")
		org      = flag.String("org", "sets", "L1 organization: none, ways, sets, hybrid")
		strategy = flag.String("strategy", "static", "L1 resizing strategy: static or dynamic")
		sides    = flag.String("sides", "both", "which caches resize: both, d, i, l2")
		hier     = flag.String("hierarchy", "base", "shared hierarchy: base, no-l2, small-l2, big-l2, l2+l3")

		l2org     = flag.String("l2org", "none", "L2 organization: none, ways, sets, hybrid")
		l2static  = flag.Bool("l2static", false, "resize the L2 with the static (profiled) strategy")
		l2dynamic = flag.Bool("l2dynamic", false, "resize the L2 with the dynamic miss-ratio controller")
		l2assoc   = flag.Int("l2assoc", 0, "L2 set-associativity (0 = the hierarchy default, 4)")

		stats  = flag.Bool("stats", false, "print runner hit/miss statistics to stderr")
		gang   = flag.Int("gang", 0, "max same-front configs coalesced into one simulation pass (0 = default 8, 1 = solo runs)")
		server = flag.String("server", "", "share the memo store of a simd daemon at this address (unix:<path> or host:port; a comma-separated list fails over); simulations still run locally")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	sc, err := scenarioFromFlags(*bench, *org, *strategy, *sides, *engine, *hier, *l2org,
		*l2static, *l2dynamic, *assoc, *l2assoc, *instr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "respcache:", err)
		return 1
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "respcache:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "respcache:", err)
		}
	}()

	sopts := resizecache.SessionOptions{GangSize: *gang}
	if *server != "" {
		// Simulations run in this process, but results and profiling
		// artifacts round-trip to the daemon's store — so detached
		// respcache invocations (and every figures -server client) share
		// one memo fabric.
		netStore, err := runner.OpenNetStore(*server)
		if err != nil {
			fmt.Fprintln(os.Stderr, "respcache:", err)
			return 1
		}
		defer netStore.Close()
		sopts.Store = netStore
	}
	session, err := resizecache.NewSessionWith(sopts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "respcache:", err)
		return 1
	}
	out, err := session.SimulateContext(context.Background(), sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "respcache:", err)
		return 1
	}
	if *server != "" {
		// Ask the daemon to persist what this run contributed.
		if err := session.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "respcache:", err)
		}
	}

	eng := "out-of-order"
	if sc.InOrder {
		eng = "in-order"
	}
	fmt.Printf("benchmark      %s (%s engine, %d instructions, %v hierarchy)\n",
		sc.Benchmark, eng, sc.Instructions, sc.Hierarchy)
	report := func(name, chosen string, sizeRed float64) {
		if chosen == "" {
			return
		}
		fmt.Printf("%-14s %-24s avg size reduced %.1f%%\n", name, chosen, sizeRed)
	}
	report("L1d", out.DChosen, out.DCacheSizeReductionPct)
	report("L1i", out.IChosen, out.ICacheSizeReductionPct)
	report("L2", out.L2Chosen, out.L2SizeReductionPct)
	fmt.Printf("EDP            reduced %.1f%% (slowdown %.1f%%)\n",
		out.EDPReductionPct, out.SlowdownPct)
	fmt.Printf("energy         core %.1f%%, l1i %.1f%%, l1d %.1f%%, l2 %.1f%%, mem %.1f%%\n",
		out.Energy.CorePct, out.Energy.L1IPct, out.Energy.L1DPct,
		out.Energy.L2Pct, out.Energy.MemPct)
	if *stats {
		fmt.Fprintln(os.Stderr, "respcache:", out.Stats)
	}
	return 0
}
