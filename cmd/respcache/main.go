// Command respcache runs one simulation and prints a detailed report:
// timing, energy breakdown, cache behaviour, and (for resizable
// configurations) the interval-by-interval size trace.
//
// Examples:
//
//	respcache -bench gcc
//	respcache -bench compress -dorg ways -dstatic 1
//	respcache -bench su2cor -dorg sets -ddynamic -missbound 512 -engine inorder
//	respcache -bench vpr -dorg hybrid -dstatic 3 -iorg sets -istatic 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"resizecache/internal/core"
	"resizecache/internal/geometry"
	"resizecache/internal/runner"
	"resizecache/internal/sim"
)

func parseOrg(s string) (core.Organization, error) {
	switch s {
	case "", "none":
		return core.NonResizable, nil
	case "ways":
		return core.SelectiveWays, nil
	case "sets":
		return core.SelectiveSets, nil
	case "hybrid":
		return core.Hybrid, nil
	default:
		return 0, fmt.Errorf("unknown organization %q (none, ways, sets, hybrid)", s)
	}
}

func main() {
	var (
		bench  = flag.String("bench", "gcc", "benchmark name")
		instr  = flag.Uint64("instr", 2_000_000, "instructions to simulate")
		engine = flag.String("engine", "ooo", "engine: ooo or inorder")
		assoc  = flag.Int("assoc", 2, "L1 set-associativity")

		dorg     = flag.String("dorg", "none", "d-cache organization")
		dstatic  = flag.Int("dstatic", -1, "d-cache static schedule index")
		ddynamic = flag.Bool("ddynamic", false, "d-cache dynamic resizing")

		iorg     = flag.String("iorg", "none", "i-cache organization")
		istatic  = flag.Int("istatic", -1, "i-cache static schedule index")
		idynamic = flag.Bool("idynamic", false, "i-cache dynamic resizing")

		interval  = flag.Uint64("interval", 65536, "dynamic interval (accesses)")
		missbound = flag.Uint64("missbound", 512, "dynamic miss-bound per interval")
		sizebound = flag.Int("sizebound", 0, "dynamic size-bound in bytes (0 = schedule minimum)")
	)
	flag.Parse()

	cfg := sim.Default(*bench)
	cfg.Instructions = *instr
	if *engine == "inorder" {
		cfg.Engine = sim.InOrder
	}
	geom := geometry.Geometry{SizeBytes: 32 << 10, Assoc: *assoc, BlockBytes: 32, SubarrayBytes: 1 << 10}
	cfg.DCache.Geom = geom
	cfg.ICache.Geom = geom

	side := func(orgFlag string, static int, dynamic bool, spec *sim.CacheSpec) error {
		org, err := parseOrg(orgFlag)
		if err != nil {
			return err
		}
		spec.Org = org
		switch {
		case dynamic:
			spec.Policy = sim.PolicySpec{Kind: sim.PolicyDynamic, Interval: *interval,
				MissBound: *missbound, SizeBoundBytes: *sizebound}
		case static >= 0:
			spec.Policy = sim.PolicySpec{Kind: sim.PolicyStatic, StaticIndex: static}
		}
		return nil
	}
	if err := side(*dorg, *dstatic, *ddynamic, &cfg.DCache); err != nil {
		fmt.Fprintln(os.Stderr, "respcache:", err)
		os.Exit(1)
	}
	if err := side(*iorg, *istatic, *idynamic, &cfg.ICache); err != nil {
		fmt.Fprintln(os.Stderr, "respcache:", err)
		os.Exit(1)
	}

	// No signal handling: this is one simulation, and the runner only
	// observes cancellation between simulations, so capturing SIGINT
	// would swallow ^C; the default terminate behaviour is right here.
	res, err := runner.Default().Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "respcache:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark      %s (%s engine, %d instructions)\n", *bench, cfg.Engine, *instr)
	fmt.Printf("cycles         %d (IPC %.2f, branch accuracy %.1f%%)\n",
		res.CPU.Cycles, res.CPU.IPC(), 100*res.CPU.BranchAccuracy)
	fmt.Printf("energy         %v\n", res.Energy)
	fmt.Printf("EDP            %.6g J·cycles\n", res.EDP.Product())
	report := func(name string, c sim.CacheReport) {
		fmt.Printf("%-8s       %s accesses=%d miss=%.3f avg-size=%.1fK (−%.1f%%) resizes=%d flushed=%d\n",
			name, "", c.Accesses, c.MissRatio, c.AvgBytes/1024, c.SizeReductionPct(),
			c.Resizes, c.FlushedBlocks)
		if len(c.SizeTrace) > 0 {
			fmt.Printf("  size trace   %v\n", c.SizeTrace)
		}
	}
	report("L1d", res.DCache)
	report("L1i", res.ICache)
}
