// Command simd is the long-lived simulation daemon: it listens on a TCP
// or unix socket, accepts serialized plans and store operations over the
// wire protocol of internal/simd/wire, and executes everything through
// one shared session — so gang coalescing, in-flight dedup, and
// memoization work across every connected client, and a client replaying
// a plan another client already ran completes with zero new simulations.
//
// Usage:
//
//	simd -listen unix:/tmp/simd.sock -store results.json
//	simd -listen tcp:127.0.0.1:9821 -workers 8 -gang 8
//
// Clients connect with resizecache.Dial (figures -server, respcache
// -server) or runner.OpenNetStore. The first SIGINT/SIGTERM drains
// gracefully: the daemon stops accepting, in-flight plans run to
// completion, and the backing store is flushed; a second signal aborts
// in-flight work (which still flushes what completed).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resizecache/internal/runner"
	"resizecache/internal/simd"
)

// main defers to realMain so deferred cleanups run before the process
// exits — os.Exit would skip them.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		listen  = flag.String("listen", "tcp:127.0.0.1:9821", "listen address: unix:<path> or tcp:<host:port> (a bare path or host:port also works)")
		workers = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		gang    = flag.Int("gang", 0, "max same-front configs coalesced into one simulation pass (0 = default 8, 1 = solo runs)")
		store   = flag.String("store", "", "JSON result/artifact-store path backing the daemon (empty = in-memory only)")
		memo    = flag.Int("memolimit", 65536, "max in-memory memoized results, LRU-evicted beyond (0 = unbounded)")
		idle    = flag.Duration("idletimeout", 5*time.Minute, "close connections idle (no frames, no in-flight requests) this long; clients keep-alive with pings (0 = never)")
		verbose = flag.Bool("v", false, "log client connects/disconnects to stderr")
	)
	flag.Parse()

	opts := simd.Options{Workers: *workers, GangSize: *gang, MemoLimit: *memo,
		IdleTimeout: *idle}
	if *store != "" {
		diskStore, err := runner.OpenDiskStore(*store)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simd:", err)
			return 1
		}
		opts.Store = diskStore
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	srv, err := simd.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		return 1
	}
	ln, err := simd.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// First signal: graceful drain (in-flight plans finish, store
		// flushes). A second signal aborts in-flight work; a third gets
		// the default terminate behaviour once stop() has unregistered.
		fmt.Fprintln(os.Stderr, "simd: draining (signal again to abort in-flight work)")
		second := make(chan os.Signal, 1)
		signal.Notify(second, os.Interrupt, syscall.SIGTERM)
		<-second
		signal.Stop(second)
		stop()
		fmt.Fprintln(os.Stderr, "simd: aborting in-flight work")
		srv.Abort()
	}()

	fmt.Fprintf(os.Stderr, "simd: listening on %s (workers=%d, gang=%d, store=%q)\n",
		*listen, *workers, *gang, *store)
	serveErr := srv.Serve(ctx, ln)
	fmt.Fprintln(os.Stderr, "simd:", srv.Stats())
	if serveErr != nil {
		fmt.Fprintln(os.Stderr, "simd:", serveErr)
		return 1
	}
	return 0
}
