// Command tracegen exports a benchmark's synthetic reference stream to
// the binary trace format (internal/workload), for inspection or replay
// by external tools.
//
// Example:
//
//	tracegen -bench compress -n 1000000 -o compress.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"resizecache/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "gcc", "benchmark name")
		n     = flag.Uint64("n", 1_000_000, "number of instructions")
		out   = flag.String("o", "", "output file (default <bench>.trace)")
	)
	flag.Parse()

	if *out == "" {
		*out = *bench + ".trace"
	}
	if err := run(*bench, *n, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d events for %s to %s\n", *n, *bench, *out)
}

func run(bench string, n uint64, out string) error {
	prof, err := workload.Get(bench)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()

	w, err := workload.NewTraceWriter(f, bench, n)
	if err != nil {
		return err
	}
	gen := workload.NewGenerator(prof)
	var ev workload.Event
	for i := uint64(0); i < n; i++ {
		if !gen.Next(&ev) {
			return fmt.Errorf("workload exhausted at %d events", i)
		}
		if err := w.Write(&ev); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}
