package main

import (
	"os"
	"path/filepath"
	"testing"

	"resizecache/internal/workload"
)

func TestRunWritesReplayableTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.trace")
	if err := run("ijpeg", 5000, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := workload.NewTraceReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "ijpeg" || r.Count != 5000 {
		t.Fatalf("header %q/%d", r.Name, r.Count)
	}
	src := &workload.ReplaySource{R: r}
	var ev workload.Event
	n := 0
	for src.Next(&ev) {
		n++
	}
	if src.Err() != nil || n != 5000 {
		t.Fatalf("replayed %d events, err %v", n, src.Err())
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run("nosuch", 10, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestRoundTripMatchesGeneratorEventForEvent writes a trace with the
// binary writer, replays it through a reader, and asserts every decoded
// record equals the event a fresh generator produces — field for field.
// The generator is deterministic per profile, so any writer/reader
// asymmetry (truncated fields, flag bits, byte order) surfaces as the
// first mismatching event.
func TestRoundTripMatchesGeneratorEventForEvent(t *testing.T) {
	const n = 20_000
	out := filepath.Join(t.TempDir(), "rt.trace")
	if err := run("su2cor", n, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := workload.NewTraceReader(f)
	if err != nil {
		t.Fatal(err)
	}
	src := &workload.ReplaySource{R: r}
	gen := workload.NewGenerator(workload.MustGet("su2cor"))
	var got, want workload.Event
	for i := 0; i < n; i++ {
		if !src.Next(&got) {
			t.Fatalf("trace ended at event %d (err %v)", i, src.Err())
		}
		if !gen.Next(&want) {
			t.Fatalf("generator ended at event %d", i)
		}
		if got != want {
			t.Fatalf("event %d diverges:\n  trace:     %+v\n  generator: %+v", i, got, want)
		}
	}
	if src.Next(&got) {
		t.Fatal("trace has surplus events beyond the declared count")
	}
}
