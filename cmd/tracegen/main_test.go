package main

import (
	"os"
	"path/filepath"
	"testing"

	"resizecache/internal/workload"
)

func TestRunWritesReplayableTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.trace")
	if err := run("ijpeg", 5000, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := workload.NewTraceReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "ijpeg" || r.Count != 5000 {
		t.Fatalf("header %q/%d", r.Name, r.Count)
	}
	src := &workload.ReplaySource{R: r}
	var ev workload.Event
	n := 0
	for src.Next(&ev) {
		n++
	}
	if src.Err() != nil || n != 5000 {
		t.Fatalf("replayed %d events, err %v", n, src.Err())
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run("nosuch", 10, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
