package main

import (
	"context"
	"testing"

	"resizecache/internal/experiment"
)

func tinyOpts() experiment.Options {
	o := experiment.DefaultOptions()
	o.Instructions = 60_000
	o.Apps = []string{"m88ksim"}
	return o
}

func TestRunTables(t *testing.T) {
	if err := run(context.Background(), "table1", tinyOpts()); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "table2", tinyOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "fig99", tinyOpts()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFig5Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	if err := run(context.Background(), "fig5", tinyOpts()); err != nil {
		t.Fatal(err)
	}
}
