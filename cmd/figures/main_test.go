package main

import (
	"context"
	"testing"

	"resizecache"
	"resizecache/figures"
)

func tinyOpts() figures.Options {
	return figures.Options{Instructions: 60_000, Apps: []string{"m88ksim"}}
}

func TestRunTables(t *testing.T) {
	s := resizecache.NewSession()
	if err := run(context.Background(), "table1", s, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "table2", s, tinyOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "fig99", resizecache.NewSession(), tinyOpts()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestSensExperimentRouting(t *testing.T) {
	for _, name := range []string{"sens", "sens-subarray", "sens-interval", "sens-l2"} {
		if !sensExperiment(name) {
			t.Errorf("%s not routed to the sensitivity path", name)
		}
	}
	for _, name := range []string{"all", "fig4", "table1", "sensible"} {
		if sensExperiment(name) {
			t.Errorf("%s wrongly routed to the sensitivity path", name)
		}
	}
}

func TestRunFig5Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	if err := run(context.Background(), "fig5", resizecache.NewSession(), tinyOpts()); err != nil {
		t.Fatal(err)
	}
}
