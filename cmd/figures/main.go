// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures -exp all                 # everything (minutes)
//	figures -exp table1              # hybrid size schedule
//	figures -exp table2              # base configuration
//	figures -exp fig4                # ways vs sets across associativity
//	figures -exp fig5                # per-app comparison at 4-way
//	figures -exp fig6                # hybrid organization
//	figures -exp fig7                # d-cache static vs dynamic
//	figures -exp fig8                # i-cache static vs dynamic
//	figures -exp fig9                # resizing both caches
//	figures -exp l2                  # extension: resizing the shared L2
//	figures -exp fig4 -instr 500000  # faster, lower fidelity
//	figures -exp fig5 -apps gcc,vpr  # restrict benchmarks
//	figures -exp all -resume out/results.json   # resumable across runs
//	figures -exp fig4 -server unix:/tmp/simd.sock  # run on a simd daemon
//
// Every figure runs through the declarative batch API: its grid expands
// to a resizecache.Plan and executes via Session.Run, which enqueues
// the whole grid's cold profiling sweeps on the shared worker pool in
// one batched pass and streams scenario results as they complete
// (-progress shows the completed-of-total count). Overlapping
// experiments — Figure 4's grid inside Figure 6's, the shared baselines
// of Figures 5 and 9 — simulate each distinct configuration once, and
// whole profiling sweeps memoize as sweep-level artifacts, so a figure
// repeating a grid an earlier figure profiled skips the sweep outright.
// With -resume, results and artifacts also persist to a JSON store
// keyed by content fingerprint, so an interrupted or repeated
// invocation re-simulates only what is missing (persisted simulation
// *errors* replay without re-running; only cancellations are retried).
// -memolimit bounds the in-memory memo table with LRU eviction.
// With -server, plans execute on a long-lived simd daemon (cmd/simd)
// instead of in-process: simulations partition across the daemon's
// worker shards and memoize against every other client's work, so a
// second client replaying a figure reports zero new simulations.
// -stats prints the scheduler's hit/miss, batch, and artifact counters
// for this invocation to stderr on exit (against a daemon, the delta of
// its cumulative counters). Interrupting with ^C cancels cleanly
// between simulations (and, with -resume, flushes what completed).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"resizecache"
	"resizecache/figures"
	"resizecache/internal/experiment"
	"resizecache/internal/prof"
	"resizecache/internal/runner"
)

// main defers to realMain so the profiling stop (and every other defer)
// runs before the process exits — os.Exit would skip them.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table1, table2, fig4..fig9, l2, sens, sens-*")
		instr    = flag.Uint64("instr", 1_500_000, "instructions per simulation")
		apps     = flag.String("apps", "", "comma-separated benchmark subset (default all twelve)")
		par      = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		gang     = flag.Int("gang", 0, "max same-front configs coalesced into one simulation pass (0 = default 8, 1 = solo runs)")
		resume   = flag.String("resume", "", "JSON result/artifact-store path for cross-process resume")
		server   = flag.String("server", "", "run plans on a simd daemon at this address (unix:<path> or host:port; a comma-separated list fails over) instead of in-process")
		stats    = flag.Bool("stats", false, "print runner hit/miss statistics to stderr")
		memo     = flag.Int("memolimit", 65536, "max in-memory memoized results, LRU-evicted beyond (0 = unbounded)")
		progress = flag.Bool("progress", false, "print completed-of-total scenario progress to stderr (figure experiments only)")
		sample   = flag.Bool("sample", false, "interval-sampled simulation (default schedule): several times faster, EDP reductions become estimates with error bars")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// First ^C cancels gracefully (between simulations, flushing the
	// result store); un-registering then restores the default terminate
	// behaviour so a second ^C force-quits.
	go func() {
		<-ctx.Done()
		stop()
	}()

	var appList []string
	if *apps != "" {
		appList = strings.Split(*apps, ",")
	}

	if sensExperiment(*exp) {
		// The sensitivity extensions vary parameters (subarray size, L2
		// geometry) a Scenario cannot express, so they run on the
		// experiment layer directly — batch-scheduled on their own runner,
		// without the plan-level progress stream.
		if *progress {
			fmt.Fprintln(os.Stderr, "figures: -progress is not supported for sensitivity experiments")
		}
		if *sample {
			fmt.Fprintln(os.Stderr, "figures: -sample is not supported for sensitivity experiments (they bypass the plan protocol)")
		}
		if *server != "" {
			fmt.Fprintln(os.Stderr, "figures: -server is not supported for sensitivity experiments (they bypass the plan protocol)")
			return 1
		}
		if err := runSens(ctx, *exp, *instr, appList, *par, *gang, *resume, *memo, *stats); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		return 0
	}

	var session resizecache.Executor
	if *server != "" {
		// The daemon owns the workers, gangs, and store; client-side
		// overrides would silently not apply.
		if *resume != "" {
			fmt.Fprintln(os.Stderr, "figures: -server and -resume are mutually exclusive (the daemon owns the store; start simd with -store)")
			return 1
		}
		remote, err := resizecache.Dial(*server)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		defer remote.Close()
		session = remote
	} else {
		local, err := resizecache.NewSessionWith(resizecache.SessionOptions{
			Workers: *par, GangSize: *gang, StorePath: *resume, MemoLimit: *memo})
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		session = local
	}

	fopts := figures.Options{Instructions: *instr, Apps: appList}
	if *sample {
		fopts.Sampling = resizecache.DefaultSampling()
	}
	if *progress {
		fopts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rfigures: %d/%d scenarios", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	// Snapshot before running: a RemoteSession's counters are the
	// daemon's cumulative view across all clients, so -stats reports the
	// delta this invocation caused. For a fresh local session the delta
	// equals the cumulative counters.
	before := session.Stats()
	runErr := run(ctx, *exp, session, fopts)

	if *resume != "" {
		if err := session.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
		} else {
			fmt.Fprintf(os.Stderr, "figures: result store flushed to %s\n", *resume)
		}
	}
	if *stats {
		fmt.Fprintln(os.Stderr, "figures:", session.Stats().Delta(before))
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "figures:", runErr)
		return 1
	}
	return 0
}

// run regenerates the tables and figures selected by exp through the
// session's batch API.
func run(ctx context.Context, exp string, s resizecache.Executor, fopts figures.Options) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("table1") {
		ran = true
		out, err := figures.Table1()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want("table2") {
		ran = true
		fmt.Println(figures.Table2())
	}
	if want("fig4") {
		ran = true
		f, err := figures.Figure4(ctx, s, fopts)
		if err != nil {
			return err
		}
		fmt.Println(f.Render())
	}
	if want("fig5") {
		ran = true
		for _, side := range []resizecache.Sides{resizecache.DOnly, resizecache.IOnly} {
			f, err := figures.Figure5(ctx, s, side, fopts)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		}
	}
	if want("fig6") {
		ran = true
		f, err := figures.Figure6(ctx, s, fopts)
		if err != nil {
			return err
		}
		fmt.Println(figures.RenderFigure6(f))
	}
	if want("fig7") {
		ran = true
		inord, ooo, err := figures.Figure7(ctx, s, fopts)
		if err != nil {
			return err
		}
		fmt.Println("Figure 7 (a):", "\n"+inord.Render())
		fmt.Println("Figure 7 (b):", "\n"+ooo.Render())
	}
	if want("fig8") {
		ran = true
		inord, ooo, err := figures.Figure8(ctx, s, fopts)
		if err != nil {
			return err
		}
		fmt.Println("Figure 8 (a):", "\n"+inord.Render())
		fmt.Println("Figure 8 (b):", "\n"+ooo.Render())
	}
	if want("fig9") {
		ran = true
		f, err := figures.Figure9(ctx, s, fopts)
		if err != nil {
			return err
		}
		fmt.Println(f.Render())
	}
	// The L2-resizing extension is not part of "all": its dynamic panel
	// profiles the controller grid over the L2 schedule for every app.
	if exp == "l2" {
		ran = true
		for _, strat := range []resizecache.Strategy{resizecache.Static, resizecache.Dynamic} {
			f, err := figures.FigureL2(ctx, s, strat, fopts)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// sensExperiment reports whether exp names an extension sensitivity
// sweep (not part of "all").
func sensExperiment(exp string) bool {
	switch exp {
	case "sens", "sens-subarray", "sens-interval", "sens-l2":
		return true
	}
	return false
}

// runSens runs the extension sensitivity sweeps on the experiment layer.
func runSens(ctx context.Context, exp string, instr uint64, apps []string, par, gang int, resume string, memo int, stats bool) error {
	ropts := runner.Options{Workers: par, GangSize: gang, MemoLimit: memo}
	var store *runner.DiskStore
	if resume != "" {
		var err error
		store, err = runner.OpenDiskStore(resume)
		if err != nil {
			return err
		}
		ropts.Store = store
	}
	r := runner.New(ropts)

	opts := experiment.DefaultOptions()
	opts.Instructions = instr
	opts.Apps = apps
	opts.Runner = r

	sens := func(name string) bool { return exp == "sens" || exp == name }
	var err error
	if err == nil && sens("sens-subarray") {
		var rows []experiment.SensitivityRow
		if rows, err = experiment.SubarraySensitivityContext(ctx, opts); err == nil {
			fmt.Println(experiment.RenderSensitivity(
				"Sensitivity: subarray granularity (static selective-sets d-cache)", rows))
		}
	}
	if err == nil && sens("sens-interval") {
		var rows []experiment.SensitivityRow
		if rows, err = experiment.IntervalSensitivityContext(ctx, opts); err == nil {
			fmt.Println(experiment.RenderSensitivity(
				"Sensitivity: dynamic interval (in-order engine, d-cache)", rows))
		}
	}
	if err == nil && sens("sens-l2") {
		var rows []experiment.SensitivityRow
		if rows, err = experiment.L2SensitivityContext(ctx, opts); err == nil {
			fmt.Println(experiment.RenderSensitivity(
				"Sensitivity: L2 capacity (static selective-sets d-cache)", rows))
		}
	}

	if store != nil {
		if ferr := store.Flush(); ferr != nil {
			fmt.Fprintln(os.Stderr, "figures:", ferr)
		} else {
			fmt.Fprintf(os.Stderr, "figures: result store %s holds %d results, %d sweep artifacts\n",
				store.Path(), store.Len(), store.ArtifactLen())
		}
	}
	if stats {
		fmt.Fprintln(os.Stderr, "figures:", r.Stats())
	}
	return err
}
