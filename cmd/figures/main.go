// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures -exp all                 # everything (minutes)
//	figures -exp table1              # hybrid size schedule
//	figures -exp table2              # base configuration
//	figures -exp fig4                # ways vs sets across associativity
//	figures -exp fig5                # per-app comparison at 4-way
//	figures -exp fig6                # hybrid organization
//	figures -exp fig7                # d-cache static vs dynamic
//	figures -exp fig8                # i-cache static vs dynamic
//	figures -exp fig9                # resizing both caches
//	figures -exp fig4 -instr 500000  # faster, lower fidelity
//	figures -exp fig5 -apps gcc,vpr  # restrict benchmarks
//	figures -exp all -resume out/results.json   # resumable across runs
//
// All simulations execute through one shared memoizing runner
// (internal/runner), so overlapping experiments — Figure 4's grid inside
// Figure 6's, the shared baselines of Figures 5 and 9 — simulate each
// distinct configuration once, and whole profiling sweeps (the
// BestStatic/BestDynamic winner selections) memoize as sweep-level
// artifacts, so a figure repeating a grid an earlier figure profiled
// skips the sweep outright. With -resume, results and artifacts also
// persist to a JSON store keyed by content fingerprint, so an
// interrupted or repeated invocation re-simulates only what is missing
// (persisted simulation *errors* replay without re-running; only
// cancellations are retried). -memolimit bounds the in-memory memo
// table with LRU eviction for very large sweeps. -stats prints the
// scheduler's hit/miss and artifact counters to stderr on exit.
// Interrupting with ^C cancels cleanly between simulations (and, with
// -resume, flushes what completed).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"resizecache/internal/experiment"
	"resizecache/internal/runner"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: all, table1, table2, fig4..fig9")
		instr  = flag.Uint64("instr", 1_500_000, "instructions per simulation")
		apps   = flag.String("apps", "", "comma-separated benchmark subset (default all twelve)")
		par    = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		resume = flag.String("resume", "", "JSON result/artifact-store path for cross-process resume")
		stats  = flag.Bool("stats", false, "print runner hit/miss statistics to stderr")
		memo   = flag.Int("memolimit", 65536, "max in-memory memoized results, LRU-evicted beyond (0 = unbounded)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// First ^C cancels gracefully (between simulations, flushing the
	// result store); un-registering then restores the default terminate
	// behaviour so a second ^C force-quits.
	go func() {
		<-ctx.Done()
		stop()
	}()

	ropts := runner.Options{Workers: *par, MemoLimit: *memo}
	var store *runner.DiskStore
	if *resume != "" {
		var err error
		store, err = runner.OpenDiskStore(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		ropts.Store = store
	}
	r := runner.New(ropts)

	opts := experiment.DefaultOptions()
	opts.Instructions = *instr
	opts.Runner = r // -parallel is enforced by the runner's pool size
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}

	runErr := run(ctx, *exp, opts)

	if store != nil {
		if err := store.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
		} else {
			fmt.Fprintf(os.Stderr, "figures: result store %s holds %d results, %d sweep artifacts\n",
				store.Path(), store.Len(), store.ArtifactLen())
		}
	}
	if *stats {
		fmt.Fprintln(os.Stderr, "figures:", r.Stats())
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "figures:", runErr)
		os.Exit(1)
	}
}

func run(ctx context.Context, exp string, opts experiment.Options) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("table1") {
		ran = true
		s, err := experiment.Table1()
		if err != nil {
			return err
		}
		fmt.Println(s)
	}
	if want("table2") {
		ran = true
		fmt.Println(experiment.Table2())
	}
	if want("fig4") {
		ran = true
		f, err := experiment.Figure4Context(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(f.Render())
	}
	if want("fig5") {
		ran = true
		for _, side := range []experiment.Side{experiment.DSide, experiment.ISide} {
			f, err := experiment.Figure5Context(ctx, side, opts)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		}
	}
	if want("fig6") {
		ran = true
		f, err := experiment.Figure6Context(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderFigure6(f))
	}
	if want("fig7") {
		ran = true
		inord, ooo, err := experiment.Figure7Context(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println("Figure 7 (a):", "\n"+inord.Render())
		fmt.Println("Figure 7 (b):", "\n"+ooo.Render())
	}
	if want("fig8") {
		ran = true
		inord, ooo, err := experiment.Figure8Context(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println("Figure 8 (a):", "\n"+inord.Render())
		fmt.Println("Figure 8 (b):", "\n"+ooo.Render())
	}
	if want("fig9") {
		ran = true
		f, err := experiment.Figure9Context(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(f.Render())
	}
	// Extension experiments (not in the paper; see DESIGN.md §4). They
	// run under "-exp sens" or individually, not under "all".
	sens := func(name string) bool { return exp == "sens" || exp == name }
	if sens("sens-subarray") {
		ran = true
		rows, err := experiment.SubarraySensitivityContext(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderSensitivity(
			"Sensitivity: subarray granularity (static selective-sets d-cache)", rows))
	}
	if sens("sens-interval") {
		ran = true
		rows, err := experiment.IntervalSensitivityContext(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderSensitivity(
			"Sensitivity: dynamic interval (in-order engine, d-cache)", rows))
	}
	if sens("sens-l2") {
		ran = true
		rows, err := experiment.L2SensitivityContext(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderSensitivity(
			"Sensitivity: L2 capacity (static selective-sets d-cache)", rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
