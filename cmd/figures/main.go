// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures -exp all                 # everything (minutes)
//	figures -exp table1              # hybrid size schedule
//	figures -exp table2              # base configuration
//	figures -exp fig4                # ways vs sets across associativity
//	figures -exp fig5                # per-app comparison at 4-way
//	figures -exp fig6                # hybrid organization
//	figures -exp fig7                # d-cache static vs dynamic
//	figures -exp fig8                # i-cache static vs dynamic
//	figures -exp fig9                # resizing both caches
//	figures -exp fig4 -instr 500000  # faster, lower fidelity
//	figures -exp fig5 -apps gcc,vpr  # restrict benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"resizecache/internal/experiment"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: all, table1, table2, fig4..fig9")
		instr = flag.Uint64("instr", 1_500_000, "instructions per simulation")
		apps  = flag.String("apps", "", "comma-separated benchmark subset (default all twelve)")
		par   = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	)
	flag.Parse()

	opts := experiment.DefaultOptions()
	opts.Instructions = *instr
	opts.Parallelism = *par
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}

	if err := run(*exp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(exp string, opts experiment.Options) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("table1") {
		ran = true
		s, err := experiment.Table1()
		if err != nil {
			return err
		}
		fmt.Println(s)
	}
	if want("table2") {
		ran = true
		fmt.Println(experiment.Table2())
	}
	if want("fig4") {
		ran = true
		f, err := experiment.Figure4(opts)
		if err != nil {
			return err
		}
		fmt.Println(f.Render())
	}
	if want("fig5") {
		ran = true
		for _, side := range []experiment.Side{experiment.DSide, experiment.ISide} {
			f, err := experiment.Figure5(side, opts)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		}
	}
	if want("fig6") {
		ran = true
		f, err := experiment.Figure6(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderFigure6(f))
	}
	if want("fig7") {
		ran = true
		inord, ooo, err := experiment.Figure7(opts)
		if err != nil {
			return err
		}
		fmt.Println("Figure 7 (a):", "\n"+inord.Render())
		fmt.Println("Figure 7 (b):", "\n"+ooo.Render())
	}
	if want("fig8") {
		ran = true
		inord, ooo, err := experiment.Figure8(opts)
		if err != nil {
			return err
		}
		fmt.Println("Figure 8 (a):", "\n"+inord.Render())
		fmt.Println("Figure 8 (b):", "\n"+ooo.Render())
	}
	if want("fig9") {
		ran = true
		f, err := experiment.Figure9(opts)
		if err != nil {
			return err
		}
		fmt.Println(f.Render())
	}
	// Extension experiments (not in the paper; see DESIGN.md §4). They
	// run under "-exp sens" or individually, not under "all".
	sens := func(name string) bool { return exp == "sens" || exp == name }
	if sens("sens-subarray") {
		ran = true
		rows, err := experiment.SubarraySensitivity(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderSensitivity(
			"Sensitivity: subarray granularity (static selective-sets d-cache)", rows))
	}
	if sens("sens-interval") {
		ran = true
		rows, err := experiment.IntervalSensitivity(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderSensitivity(
			"Sensitivity: dynamic interval (in-order engine, d-cache)", rows))
	}
	if sens("sens-l2") {
		ran = true
		rows, err := experiment.L2Sensitivity(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderSensitivity(
			"Sensitivity: L2 capacity (static selective-sets d-cache)", rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
