package simd_test

// Chaos tests: the fault-tolerance contracts of the simd stack under
// deterministic fault injection (internal/simd/faultnet). The headline
// acceptance test cuts the transport repeatedly mid-plan and proves the
// plan still delivers exactly plan.Len() results, bit-identical to a
// clean run, with no duplicates — and that a warm replay afterwards
// simulates nothing.

import (
	"context"
	"errors"
	"io"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"resizecache"
	"resizecache/internal/runner"
	"resizecache/internal/runner/storetest"
	"resizecache/internal/sim"
	"resizecache/internal/simd"
	simdclient "resizecache/internal/simd/client"
	"resizecache/internal/simd/faultnet"
	"resizecache/internal/simd/wire"
)

// fastDial keeps chaos-test reconnect schedules down to milliseconds.
func fastDial(extra resizecache.DialOptions) resizecache.DialOptions {
	if extra.BackoffBase == 0 {
		extra.BackoffBase = time.Millisecond
	}
	if extra.BackoffMax == 0 {
		extra.BackoffMax = 4 * time.Millisecond
	}
	return extra
}

// fastClient is the simd-client analogue of fastDial, for NetStore.
func fastClient() simdclient.Options {
	return simdclient.Options{
		CallTimeout: 2 * time.Second,
		DialTimeout: 200 * time.Millisecond,
		DialPasses:  1,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}
}

// startChaosDaemon is startDaemon behind a fault-scripted listener:
// accepted connection i lives under scripts[i]; later connections are
// clean.
func startChaosDaemon(t *testing.T, opts simd.Options, scripts ...faultnet.Script) (addr string, srv *simd.Server, ln *faultnet.Listener) {
	t.Helper()
	srv, err := simd.New(opts)
	if err != nil {
		t.Fatalf("simd.New: %v", err)
	}
	addr = "unix:" + filepath.Join(t.TempDir(), "s.sock")
	base, err := simd.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ln = faultnet.WrapListener(base, scripts...)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return addr, srv, ln
}

// startStoppableDaemon is startDaemon with an explicit, idempotent stop:
// the daemon drains and its socket file disappears, so later dials fail
// fast — the in-process stand-in for a crashed daemon host.
func startStoppableDaemon(t *testing.T, opts simd.Options) (addr string, srv *simd.Server, stop func()) {
	t.Helper()
	srv, err := simd.New(opts)
	if err != nil {
		t.Fatalf("simd.New: %v", err)
	}
	addr = "unix:" + filepath.Join(t.TempDir(), "s.sock")
	ln, err := simd.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
	t.Cleanup(stop)
	return addr, srv, stop
}

// chaosPlan is a four-scenario plan, so a plan stream spans five
// response frames and a cut can land strictly inside it.
func chaosPlan(t *testing.T) resizecache.Plan {
	t.Helper()
	apps := resizecache.Benchmarks()
	if len(apps) < 4 {
		t.Fatalf("need 4 benchmarks, have %d", len(apps))
	}
	scenarios := make([]resizecache.Scenario, 4)
	for i, app := range apps[:4] {
		scenarios[i] = resizecache.Scenario{Benchmark: app,
			Organization: resizecache.SelectiveSets, Sides: resizecache.DOnly,
			Instructions: 60_000}
	}
	plan, err := resizecache.PlanOf(scenarios...)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// checkNoDuplicates fails if any plan index was delivered twice.
func checkNoDuplicates(t *testing.T, results []resizecache.Result, planLen int) {
	t.Helper()
	seen := make(map[int]int, len(results))
	for _, r := range results {
		seen[r.Index]++
	}
	for idx, n := range seen { //simlint:ordered failure reporting only
		if n > 1 {
			t.Errorf("scenario %d delivered %d times", idx, n)
		}
		if idx < 0 || idx >= planLen {
			t.Errorf("result index %d outside the plan", idx)
		}
	}
}

// TestChaosPlanSurvivesCuts is the fault-tolerance acceptance test: the
// daemon's transport is scripted to cut the response stream on each of
// the first three connections, mid-plan, at seeded frame offsets. The
// client must reconnect, resubmit only what it has not received, and
// deliver exactly plan.Len() results, bit-identical to a clean local
// run, with no duplicate indices — and a warm replay right after must
// simulate nothing.
func TestChaosPlanSurvivesCuts(t *testing.T) {
	plan := chaosPlan(t)
	ctx := context.Background()

	local := resizecache.NewSession()
	want, err := resizecache.Collect(local.Run(ctx, plan))
	if err != nil {
		t.Fatal(err)
	}
	zeroStats(want)

	// Each faulty connection cuts the server-to-client stream at a frame
	// in [1,3): at least one result lands per attempt, so the resubmit
	// loop always makes progress.
	scripts := faultnet.CutScripts(0xC0FFEE, 3, 1, 3)
	addr, srv, ln := startChaosDaemon(t, simd.Options{}, scripts...)

	remote, err := resizecache.DialWith(addr, fastDial(resizecache.DialOptions{PlanAttempts: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	got, err := resizecache.Collect(remote.Run(ctx, plan))
	if err != nil {
		t.Fatalf("plan under transport cuts: %v", err)
	}
	if len(got) != plan.Len() {
		t.Fatalf("delivered %d results, want exactly %d", len(got), plan.Len())
	}
	checkNoDuplicates(t, got, plan.Len())
	zeroStats(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("results under cuts differ from the clean local run:\n got %+v\nwant %+v", got, want)
	}
	if ln.Accepted() < 2 {
		t.Errorf("listener accepted %d connections; the scripted cuts never forced a reconnect", ln.Accepted())
	}

	// Warm replay on a clean connection: everything the chaos run
	// computed is in the daemon's memo fabric.
	before := srv.Stats()
	clean, err := resizecache.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	warm, err := resizecache.Collect(clean.Run(ctx, plan))
	if err != nil {
		t.Fatal(err)
	}
	zeroStats(warm)
	if !reflect.DeepEqual(warm, want) {
		t.Errorf("warm replay differs from the clean local run")
	}
	if delta := srv.Stats().Delta(before); delta.Runs != 0 {
		t.Errorf("warm replay simulated %d configs, want 0", delta.Runs)
	}
}

// TestChaosFailoverToSecondDaemon: daemon A's first connection is
// scripted to die mid-plan; the client's address list names A then B.
// The plan must complete through B with no duplicate or missing
// results.
func TestChaosFailoverToSecondDaemon(t *testing.T) {
	plan := chaosPlan(t)
	ctx := context.Background()

	local := resizecache.NewSession()
	want, err := resizecache.Collect(local.Run(ctx, plan))
	if err != nil {
		t.Fatal(err)
	}
	zeroStats(want)

	addrA, _, _ := startChaosDaemon(t, simd.Options{},
		faultnet.Script{{Dir: faultnet.Write, Frame: 2, Act: faultnet.Cut}})
	addrB, srvB := startDaemon(t, simd.Options{})

	remote, err := resizecache.DialWith(addrA+","+addrB, fastDial(resizecache.DialOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	got, err := resizecache.Collect(remote.Run(ctx, plan))
	if err != nil {
		t.Fatalf("plan across a daemon failover: %v", err)
	}
	if len(got) != plan.Len() {
		t.Fatalf("delivered %d results, want exactly %d", len(got), plan.Len())
	}
	checkNoDuplicates(t, got, plan.Len())
	zeroStats(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("failover results differ from the clean local run")
	}
	if srvB.Stats().Runs == 0 {
		t.Error("second daemon ran nothing; the client never failed over")
	}
}

// TestChaosLocalFallback: every daemon attempt fails (the daemon is
// stopped right after dial), and DialOptions.LocalFallback is set — the
// plan must complete on the in-process session with correct results
// instead of failing.
func TestChaosLocalFallback(t *testing.T) {
	plan := chaosPlan(t)
	ctx := context.Background()

	fallback := resizecache.NewSession()
	want, err := resizecache.Collect(fallback.Run(ctx, plan))
	if err != nil {
		t.Fatal(err)
	}
	zeroStats(want)

	addr, _, stop := startStoppableDaemon(t, simd.Options{})
	remote, err := resizecache.DialWith(addr, fastDial(resizecache.DialOptions{
		PlanAttempts:  2,
		LocalFallback: fallback,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	stop() // the fabric dies before the plan is submitted

	got, err := resizecache.Collect(remote.Run(ctx, plan))
	if err != nil {
		t.Fatalf("plan with a local fallback: %v", err)
	}
	if len(got) != plan.Len() {
		t.Fatalf("delivered %d results, want exactly %d", len(got), plan.Len())
	}
	checkNoDuplicates(t, got, plan.Len())
	zeroStats(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fallback results differ from the local session's")
	}
}

// TestNetStoreUnreachableConformance runs the degradation half of the
// Store contract against a NetStore whose daemon has been stopped: all
// lookups must degrade to misses without error within bounded time,
// records must drop silently, and Flush must fail loudly.
func TestNetStoreUnreachableConformance(t *testing.T) {
	open := func(t *testing.T) runner.Store {
		addr, _, stop := startStoppableDaemon(t, simd.Options{})
		ns, err := runner.OpenNetStoreWith(addr, runner.NetStoreOptions{
			BreakerThreshold:   2,
			BreakerCooldownOps: 4,
			Client:             fastClient(),
		})
		if err != nil {
			t.Fatalf("OpenNetStoreWith: %v", err)
		}
		t.Cleanup(func() { ns.Close() })
		stop()
		return ns
	}
	storetest.RunUnreachable(t, open, 10*time.Second)
}

// TestBreakerTripsAndShortCircuits pins the breaker's lifecycle: it
// trips after the configured run of consecutive failures, serves the
// cooldown without touching the network (the error counter freezes),
// re-trips on a failed half-open probe, and reports its trips through
// Runner.Stats.
func TestBreakerTripsAndShortCircuits(t *testing.T) {
	addr, _, stop := startStoppableDaemon(t, simd.Options{})
	ns, err := runner.OpenNetStoreWith(addr, runner.NetStoreOptions{
		BreakerThreshold:   3,
		BreakerCooldownOps: 8,
		Client:             fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	stop()

	lookup := func() {
		var sk sim.Key
		ns.Lookup(sk)
	}
	// Trip: three consecutive failures.
	for i := 0; i < 3; i++ {
		lookup()
	}
	if trips := ns.BreakerTrips(); trips != 1 {
		t.Fatalf("after %d failures: %d trips, want 1", 3, trips)
	}
	_, errsAtTrip := ns.RemoteCounts()
	if errsAtTrip != 3 {
		t.Errorf("errors at trip = %d, want 3", errsAtTrip)
	}

	// Cooldown: eight operations short-circuit without network calls.
	for i := 0; i < 8; i++ {
		lookup()
	}
	if _, errs := ns.RemoteCounts(); errs != errsAtTrip {
		t.Errorf("cooldown ops reached the network: errors %d → %d", errsAtTrip, errs)
	}

	// Half-open probe against the still-dead daemon: one more network
	// error, and the breaker re-trips immediately.
	lookup()
	if _, errs := ns.RemoteCounts(); errs != errsAtTrip+1 {
		t.Errorf("probe errors = %d, want %d", errs, errsAtTrip+1)
	}
	if trips := ns.BreakerTrips(); trips != 2 {
		t.Errorf("after failed probe: %d trips, want 2", trips)
	}

	// The trips surface in Runner.Stats and its String rendering.
	r := runner.New(runner.Options{Store: ns})
	st := r.Stats()
	if st.BreakerTrips != 2 {
		t.Errorf("Stats.BreakerTrips = %d, want 2", st.BreakerTrips)
	}
	if !strings.Contains(st.String(), "2 breaker trips") {
		t.Errorf("Stats.String() = %q, want it to mention breaker trips", st.String())
	}
}

// TestIdleTimeoutAndPingKeepalive: a connection kept warm by OpPing
// outlives many idle windows; a connection that goes silent is closed
// by the server once the idle timeout elapses.
func TestIdleTimeoutAndPingKeepalive(t *testing.T) {
	const idle = 150 * time.Millisecond
	addr, _ := startDaemon(t, simd.Options{IdleTimeout: idle})
	nc, err := net.Dial("unix", strings.TrimPrefix(addr, "unix:"))
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Five keepalives at a third of the idle window: the connection
	// stays up well past several times the timeout.
	for i := 0; i < 5; i++ {
		time.Sleep(idle / 3)
		if err := wire.WriteFrame(nc, wire.Request{V: wire.ProtocolVersion, ID: uint64(i + 1), Op: wire.OpPing}); err != nil {
			t.Fatalf("ping %d write: %v", i, err)
		}
		var resp wire.Response
		if err := wire.ReadFrame(nc, &resp); err != nil {
			t.Fatalf("ping %d reply: %v", i, err)
		}
		if resp.Kind != wire.KindReply {
			t.Fatalf("ping %d reply kind = %q", i, resp.Kind)
		}
	}

	// Go silent: the server must hang up within a few idle windows.
	nc.SetReadDeadline(time.Now().Add(10 * idle))
	var resp wire.Response
	err = wire.ReadFrame(nc, &resp)
	if err == nil {
		t.Fatalf("server sent an unsolicited frame: %+v", resp)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		t.Error("server never closed the idle connection")
	}
}

// TestIdleTimeoutSparesBusyConnections: a client silently awaiting plan
// results sends no frames, but its connection has in-flight work and
// must not be reaped even when the plan outlives many idle windows.
func TestIdleTimeoutSparesBusyConnections(t *testing.T) {
	addr, _ := startDaemon(t, simd.Options{IdleTimeout: 20 * time.Millisecond})
	remote, err := resizecache.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if _, err := resizecache.Collect(remote.Run(context.Background(), chaosPlan(t))); err != nil {
		t.Fatalf("plan over a connection with a short idle timeout: %v", err)
	}
}

// TestWedgedDaemonBoundsCalls: against a daemon that accepts frames and
// never answers, Stats and Flush must return within the configured call
// timeout instead of hanging (satisfying the bounded-degradation
// contract of the Executor surface).
func TestWedgedDaemonBoundsCalls(t *testing.T) {
	ln, err := net.Listen("unix", filepath.Join(t.TempDir(), "wedged.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, nc) // consume requests, answer nothing
		}
	}()

	remote, err := resizecache.DialWith("unix:"+ln.Addr().String(),
		resizecache.DialOptions{CallTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	start := time.Now()
	if err := remote.Flush(); err == nil {
		t.Error("Flush against a wedged daemon returned nil")
	}
	if st := remote.Stats(); !reflect.DeepEqual(st, runner.Stats{}) {
		t.Errorf("Stats against a wedged daemon = %+v, want zero", st)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("wedged-daemon calls took %v, want bounded by the call timeout", elapsed)
	}
}
