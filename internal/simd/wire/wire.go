// Package wire defines the simd daemon's wire protocol: length-prefixed
// JSON frames carrying a small request/response vocabulary. A frame is a
// 4-byte big-endian payload length followed by one JSON document; the
// encoding is symmetric, so clients and the server share ReadFrame and
// WriteFrame.
//
// Two request families flow over one connection:
//
//   - plan submission (OpPlan): the client sends a serialized scenario
//     list; the server streams one KindResult frame per scenario in
//     completion order — each with completed-of-total progress and
//     per-scenario error isolation, mirroring Session.Run — and closes
//     the exchange with a KindDone frame. OpCancel aborts a named
//     in-flight plan.
//   - store service (OpLookup..OpStats, OpFlush): synchronous key-value
//     round trips against the daemon's shared runner.Store, answered by
//     a single KindReply frame. runner.NetStore is built on these.
//
// Requests and responses are correlated by a client-assigned ID, so one
// connection multiplexes concurrent plans and store calls. Every request
// carries ProtocolVersion; the server rejects mismatches per request
// with a KindError frame instead of dropping the connection, so a stale
// client gets a diagnosable error. Bump ProtocolVersion whenever a
// message field changes meaning, is removed, or a new op alters existing
// exchange semantics (see CONTRIBUTING.md).
package wire

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"resizecache/internal/sim"
)

// ProtocolVersion tags every request; see the package comment for the
// bump policy.
// Version history: 1 = initial op set; 2 = OpPing health check (and the
// reconnecting client that relies on it).
const ProtocolVersion = 2

// MaxFrame bounds a single frame's payload. Plans serialize to a few
// bytes per scenario and results to a few KB, so 64 MiB is far above any
// legitimate frame while still rejecting a corrupt length prefix before
// it turns into an allocation.
const MaxFrame = 64 << 20

// Request operations.
const (
	// OpPlan submits a serialized scenario list; answered by a stream of
	// KindResult frames and a final KindDone.
	OpPlan = "plan"
	// OpCancel aborts the in-flight plan whose request ID is Target.
	// Fire-and-forget: it is never answered (the cancelled plan's own
	// stream terminates instead).
	OpCancel = "cancel"
	// OpLookup / OpRecord are runner.Store result operations; Value
	// carries a runner.StoredResult document.
	OpLookup = "lookup"
	OpRecord = "record"
	// OpLookupArtifact / OpRecordArtifact are the artifact analogues;
	// Value carries the opaque artifact payload (valid JSON).
	OpLookupArtifact = "lookup-artifact"
	OpRecordArtifact = "record-artifact"
	// OpFlush persists the daemon's backing store.
	OpFlush = "flush"
	// OpStats returns the daemon's cumulative runner.Stats as JSON.
	OpStats = "stats"
	// OpPing is the health check: answered by an empty KindReply. The
	// reconnecting client uses it to validate a connection before
	// trusting it after failover, and any received frame (ping included)
	// resets the server's idle-timeout clock, so a long-lived idle
	// client pings to keep its connection alive.
	OpPing = "ping"
)

// Response kinds.
const (
	// KindResult is one scenario's outcome within a plan stream.
	KindResult = "result"
	// KindDone terminates a plan stream: every result frame has been
	// sent.
	KindDone = "done"
	// KindReply answers a synchronous store/stats/flush request.
	KindReply = "reply"
	// KindError terminates any exchange with a request-level failure
	// (malformed payload, version mismatch, unknown op).
	KindError = "error"
)

// Request is one client-to-server frame.
type Request struct {
	// V is the client's ProtocolVersion; checked per request.
	V int `json:"v"`
	// ID correlates the responses to this request. The client must not
	// reuse an ID while its exchange is live. ID 0 is reserved for
	// fire-and-forget requests (OpCancel).
	ID uint64 `json:"id,omitempty"`
	// Op selects the operation.
	Op string `json:"op"`
	// Scenarios is the serialized []resizecache.Scenario of an OpPlan.
	Scenarios json.RawMessage `json:"scenarios,omitempty"`
	// Target is the plan request ID an OpCancel aborts.
	Target uint64 `json:"target,omitempty"`
	// Key is the hex sim.Key of a store operation.
	Key string `json:"key,omitempty"`
	// Value is the store operation's payload (StoredResult document or
	// artifact bytes).
	Value json.RawMessage `json:"value,omitempty"`
}

// Response is one server-to-client frame.
type Response struct {
	// ID echoes the request this frame answers.
	ID uint64 `json:"id"`
	// Kind is one of the Kind constants.
	Kind string `json:"kind"`
	// Index / Outcome / Err / Completed / Total populate KindResult
	// frames: the scenario's plan-order index, its serialized
	// resizecache.Outcome (or its isolated error), and the stream's
	// completed-of-total progress. Err on a KindError frame carries the
	// request-level failure.
	Index     int             `json:"index,omitempty"`
	Outcome   json.RawMessage `json:"outcome,omitempty"`
	Err       string          `json:"err,omitempty"`
	Completed int             `json:"completed,omitempty"`
	Total     int             `json:"total,omitempty"`
	// Found / Value populate KindReply frames for lookups.
	Found bool            `json:"found,omitempty"`
	Value json.RawMessage `json:"value,omitempty"`
}

// WriteFrame marshals v and writes it as one length-prefixed frame.
// Callers serialize concurrent writers themselves (a frame must not
// interleave with another).
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: encode frame: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte bound", len(body), MaxFrame)
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame and unmarshals it into v.
func ReadFrame(r io.Reader, v any) error {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > MaxFrame {
		return fmt.Errorf("wire: frame length %d exceeds the %d-byte bound", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: decode frame: %w", err)
	}
	return nil
}

// ParseKey decodes the hex form produced by sim.Key.String — the wire
// spelling of every store key.
func ParseKey(s string) (sim.Key, error) {
	var k sim.Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return sim.Key{}, fmt.Errorf("wire: parse key %q: %w", s, err)
	}
	if len(b) != len(k) {
		return sim.Key{}, fmt.Errorf("wire: parse key %q: %d bytes, want %d", s, len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}
