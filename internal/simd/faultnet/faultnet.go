// Package faultnet is the deterministic fault-injection harness for the
// simd stack: every transport and store failure mode the fault-tolerance
// layer claims to survive is reproduced by a scripted test, not a story.
//
// The wrappers operate at the wire protocol's frame granularity. A
// Script lists Faults, each naming a direction (the wrapped endpoint's
// reads or writes), a 0-based frame index in that direction's stream,
// and an Action:
//
//   - Cut severs the transport cleanly at the frame boundary, before
//     any byte of the frame moves — the peer sees EOF between frames;
//   - Truncate delivers the length prefix and half the payload, then
//     severs — the peer sees an unexpected EOF mid-frame;
//   - Corrupt flips the first payload byte and delivers the frame —
//     the peer's JSON decode fails, exercising the poisoned-frame path;
//   - Stall blocks the frame until the connection is closed — a
//     half-open peer that neither answers nor hangs up, exercising
//     deadlines and idle timeouts.
//
// WrapListener scripts a server's accepted connections in order (the
// reconnect after a cut gets the next script; connections beyond the
// script list are clean), so a test describes a whole failure schedule
// declaratively. CutScripts derives schedules from a seed, and
// FlakyStore decorates a runner.Store with a seeded failure pattern —
// all deterministic, never wall-clock- or math/rand-dependent.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"resizecache/internal/runner"
	"resizecache/internal/sim"
)

// ErrInjected is the error a faulted operation returns on the wrapped
// side; the peer sees an ordinary transport failure (EOF, reset, or a
// decode error), exactly as it would from a real network fault.
var ErrInjected = errors.New("faultnet: injected fault")

// Action selects what happens to a scripted frame.
type Action int

const (
	// Cut severs the connection at the frame's first byte.
	Cut Action = iota + 1
	// Truncate delivers the prefix and half the payload, then severs.
	Truncate
	// Corrupt flips the first payload byte and delivers the frame.
	Corrupt
	// Stall blocks the frame until the connection is closed.
	Stall
)

// Direction selects which of the wrapped endpoint's streams a fault
// applies to. For a connection wrapped by WrapListener, Write is the
// server-to-client stream (response frames) and Read is the
// client-to-server stream (request frames).
type Direction int

const (
	Write Direction = iota
	Read
)

// Fault is one scripted failure point in a connection's life.
type Fault struct {
	Dir   Direction
	Frame int // 0-based frame index within the direction's stream
	Act   Action
}

// Script is the ordered fault set of one connection. Frames not named
// pass through untouched; after a Cut/Truncate/Stall fires, nothing
// else moves on that connection.
type Script []Fault

// CutScripts derives n single-fault scripts from seed, each cutting the
// write stream at a pseudo-random frame index in [minFrame, maxFrame).
// Chaos tests use it to vary cut points across rounds while staying
// bit-reproducible for a fixed seed.
func CutScripts(seed uint64, n, minFrame, maxFrame int) []Script {
	if maxFrame <= minFrame {
		maxFrame = minFrame + 1
	}
	scripts := make([]Script, n)
	for i := range scripts {
		r := splitmix(seed + uint64(i))
		frame := minFrame + int(r%uint64(maxFrame-minFrame))
		scripts[i] = Script{{Dir: Write, Frame: frame, Act: Cut}}
	}
	return scripts
}

// splitmix is the splitmix64 mix function: the package's only source of
// pseudo-randomness, fully determined by its input.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Conn wraps a net.Conn with a fault script. Construct with WrapConn.
type Conn struct {
	net.Conn
	r, w      tracker
	closeOnce sync.Once
	done      chan struct{} // closed on Close; releases stalled frames
}

// WrapConn applies script to nc. The returned Conn is safe for the
// wire protocol's use (one reader, serialized writers).
func WrapConn(nc net.Conn, script Script) *Conn {
	c := &Conn{Conn: nc, done: make(chan struct{})}
	c.r.faults = make(map[int]Action)
	c.w.faults = make(map[int]Action)
	for _, f := range script {
		if f.Dir == Read {
			c.r.faults[f.Frame] = f.Act
		} else {
			c.w.faults[f.Frame] = f.Act
		}
	}
	return c
}

// Close releases any stalled frame and closes the underlying conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return c.Conn.Close()
}

// Write passes p through the write-direction tracker: scripted frames
// are cut, truncated, corrupted, or stalled at their exact boundary.
func (c *Conn) Write(p []byte) (int, error) {
	out, n, act := c.w.step(p)
	if n > 0 {
		if _, err := c.Conn.Write(out); err != nil {
			return n, err
		}
	}
	switch act {
	case Stall:
		<-c.done
		return n, ErrInjected
	case Cut, Truncate:
		c.Close()
		return n, ErrInjected
	}
	return n, nil
}

// Read reads from the underlying conn and passes the bytes through the
// read-direction tracker. A faulted frame delivers its allowed prefix
// (if any) first; the fault itself surfaces on the same or next call.
func (c *Conn) Read(p []byte) (int, error) {
	k, err := c.Conn.Read(p)
	if k <= 0 {
		return k, err
	}
	out, n, act := c.r.step(p[:k])
	copy(p, out)
	switch act {
	case Stall:
		if n > 0 {
			return n, nil // deliver the clean prefix; stall on the next call
		}
		<-c.done
		return 0, ErrInjected
	case Cut, Truncate:
		c.Close()
		if n > 0 {
			return n, nil // the close error surfaces on the next Read
		}
		return 0, ErrInjected
	}
	return n, err
}

// tracker parses one direction's byte stream into length-prefixed
// frames and decides, per frame, whether a scripted fault fires.
type tracker struct {
	mu     sync.Mutex
	faults map[int]Action

	frame     int     // index of the current (or next) frame
	hdr       [4]byte // length prefix of the current frame
	hdrN      int     // prefix bytes consumed
	remaining int     // payload bytes left in the current frame
	act       Action  // pending action for the current frame (0 = none)
	allow     int     // payload bytes Truncate still lets through
	terminal  Action  // a terminal fault that already fired (0 = none)
}

// step consumes p and returns the bytes to pass through (aliasing p, or
// a mutated copy for Corrupt), how many bytes of p they cover, and the
// action that fired at that point (0 if the whole chunk passes).
func (t *tracker) step(p []byte) (out []byte, n int, fired Action) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.terminal != 0 {
		return nil, 0, t.terminal
	}
	out = p
	for n < len(p) {
		if t.hdrN < 4 { // consuming the length prefix
			if t.hdrN == 0 && t.remaining == 0 { // frame boundary
				t.act = t.faults[t.frame]
				if t.act == Cut || t.act == Stall {
					t.terminal = t.act
					return out[:n], n, t.act
				}
			}
			t.hdr[t.hdrN] = p[n]
			t.hdrN++
			n++
			if t.hdrN == 4 {
				t.remaining = int(uint32(t.hdr[0])<<24 | uint32(t.hdr[1])<<16 | uint32(t.hdr[2])<<8 | uint32(t.hdr[3]))
				if t.act == Truncate {
					t.allow = t.remaining / 2
				}
				if t.act == Corrupt && t.remaining > 0 {
					// Flip the first payload byte when it arrives.
					t.allow = -1
				}
			}
			continue
		}
		// Payload bytes.
		if t.act == Truncate {
			if t.allow == 0 {
				t.terminal = Truncate
				return out[:n], n, Truncate
			}
			t.allow--
		}
		if t.act == Corrupt && t.allow == -1 {
			if &out[0] == &p[0] {
				out = append([]byte(nil), p...)
			}
			out[n] ^= 0xFF
			t.allow = 0
		}
		t.remaining--
		n++
		if t.remaining == 0 { // frame complete
			t.hdrN = 0
			t.frame++
			t.act = 0
			t.allow = 0
		}
	}
	return out[:n], n, 0
}

// Listener wraps a net.Listener, applying scripts[i] to the i-th
// accepted connection (later connections are clean). Construct with
// WrapListener.
type Listener struct {
	net.Listener
	mu       sync.Mutex
	scripts  []Script
	accepted int
}

// WrapListener scripts a listener's accepted connections in order.
func WrapListener(ln net.Listener, scripts ...Script) *Listener {
	return &Listener{Listener: ln, scripts: scripts}
}

// Accepted reports how many connections the listener has handed out.
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted
}

// Accept wraps the next connection with its script.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	var script Script
	if l.accepted < len(l.scripts) {
		script = l.scripts[l.accepted]
	}
	l.accepted++
	l.mu.Unlock()
	return WrapConn(nc, script), nil
}

// FlakyStore decorates a runner.Store with a seeded failure pattern:
// operation k (1-based, across all methods) fails iff
// splitmix(seed+k) % failOneIn == 0. Per the Store contract a failed
// Lookup degrades to a miss, a failed Record drops the write, and a
// failed Flush returns ErrInjected — so a runner over a FlakyStore must
// still produce bit-identical results, just with fewer store hits.
type FlakyStore struct {
	inner     runner.Store
	seed      uint64
	failOneIn uint64
	ops       atomic.Uint64
	failures  atomic.Uint64
}

var _ runner.Store = (*FlakyStore)(nil)

// NewFlakyStore wraps inner; failOneIn = 0 never fails, 1 always fails.
func NewFlakyStore(inner runner.Store, seed uint64, failOneIn uint64) *FlakyStore {
	return &FlakyStore{inner: inner, seed: seed, failOneIn: failOneIn}
}

// Failures reports how many operations the schedule failed so far.
func (s *FlakyStore) Failures() uint64 { return s.failures.Load() }

// fail advances the schedule and reports whether this operation fails.
func (s *FlakyStore) fail() bool {
	if s.failOneIn == 0 {
		return false
	}
	k := s.ops.Add(1)
	if splitmix(s.seed+k)%s.failOneIn == 0 {
		s.failures.Add(1)
		return true
	}
	return false
}

// Lookup implements runner.Store; a scheduled failure is a miss.
func (s *FlakyStore) Lookup(k sim.Key) (runner.StoredResult, bool) {
	if s.fail() {
		return runner.StoredResult{}, false
	}
	return s.inner.Lookup(k)
}

// Record implements runner.Store; a scheduled failure drops the write.
func (s *FlakyStore) Record(k sim.Key, v runner.StoredResult) {
	if s.fail() {
		return
	}
	s.inner.Record(k, v)
}

// LookupArtifact implements runner.Store; failures are misses.
func (s *FlakyStore) LookupArtifact(k sim.Key) ([]byte, bool) {
	if s.fail() {
		return nil, false
	}
	return s.inner.LookupArtifact(k)
}

// RecordArtifact implements runner.Store; failures drop the write.
func (s *FlakyStore) RecordArtifact(k sim.Key, data []byte) {
	if s.fail() {
		return
	}
	s.inner.RecordArtifact(k, data)
}

// Flush implements runner.Store; a scheduled failure surfaces (flushes
// establish durability, so a silent no-op would break the contract).
func (s *FlakyStore) Flush() error {
	if s.fail() {
		return ErrInjected
	}
	return s.inner.Flush()
}
