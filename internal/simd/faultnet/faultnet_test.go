package faultnet_test

// Unit tests for the fault-injection harness itself: each Action must
// produce exactly the transport symptom it advertises, at exactly the
// scripted frame, and every schedule must be reproducible — the chaos
// suite's assertions are only as strong as the harness's precision.

import (
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"resizecache/internal/runner"
	"resizecache/internal/sim"
	"resizecache/internal/simd/faultnet"
	"resizecache/internal/simd/wire"
)

// pipe returns a faulted side and a clean peer. The returned cleanup
// closes both ends.
func pipe(t *testing.T, script faultnet.Script) (faulted *faultnet.Conn, peer net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	faulted = faultnet.WrapConn(a, script)
	t.Cleanup(func() { faulted.Close(); b.Close() })
	return faulted, b
}

// frame is a small distinctive payload for frame index i.
func frame(i int) wire.Request {
	return wire.Request{V: wire.ProtocolVersion, ID: uint64(i + 1), Op: wire.OpPing}
}

// writeFrames writes n frames on c from a goroutine, reporting each
// write's error on the returned channel (buffered, never blocks).
func writeFrames(c net.Conn, n int) <-chan error {
	errs := make(chan error, n)
	go func() {
		for i := 0; i < n; i++ {
			errs <- wire.WriteFrame(c, frame(i))
		}
		close(errs)
	}()
	return errs
}

func TestCleanConnPassesFramesThrough(t *testing.T) {
	faulted, peer := pipe(t, nil)
	go writeFrames(faulted, 3)
	for i := 0; i < 3; i++ {
		var req wire.Request
		if err := wire.ReadFrame(peer, &req); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(req, frame(i)) {
			t.Errorf("frame %d mutated: %+v", i, req)
		}
	}
}

func TestCutSeversAtFrameBoundary(t *testing.T) {
	faulted, peer := pipe(t, faultnet.Script{{Dir: faultnet.Write, Frame: 1, Act: faultnet.Cut}})
	errs := writeFrames(faulted, 2)

	var req wire.Request
	if err := wire.ReadFrame(peer, &req); err != nil {
		t.Fatalf("frame 0 should pass untouched: %v", err)
	}
	// Frame 1 was cut before its first byte: the peer sees a clean EOF
	// between frames, not a partial frame.
	if err := wire.ReadFrame(peer, &req); !errors.Is(err, io.EOF) {
		t.Errorf("after the cut: err = %v, want io.EOF", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("frame 0 write: %v", err)
	}
	if err := <-errs; !errors.Is(err, faultnet.ErrInjected) {
		t.Errorf("cut write error = %v, want ErrInjected", err)
	}
}

func TestTruncateSeversMidFrame(t *testing.T) {
	faulted, peer := pipe(t, faultnet.Script{{Dir: faultnet.Write, Frame: 0, Act: faultnet.Truncate}})
	errs := writeFrames(faulted, 1)

	var req wire.Request
	if err := wire.ReadFrame(peer, &req); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated frame: err = %v, want io.ErrUnexpectedEOF", err)
	}
	if err := <-errs; !errors.Is(err, faultnet.ErrInjected) {
		t.Errorf("truncate write error = %v, want ErrInjected", err)
	}
}

func TestCorruptPoisonsExactlyOneFrame(t *testing.T) {
	faulted, peer := pipe(t, faultnet.Script{{Dir: faultnet.Write, Frame: 0, Act: faultnet.Corrupt}})
	go writeFrames(faulted, 2)

	// Frame 0's first payload byte is flipped: the frame arrives whole
	// but its JSON no longer decodes.
	var req wire.Request
	err := wire.ReadFrame(peer, &req)
	if err == nil || !strings.Contains(err.Error(), "decode frame") {
		t.Errorf("corrupted frame: err = %v, want a decode failure", err)
	}
	// Frame 1 is untouched: corruption is per-frame, not a poisoned
	// stream.
	if err := wire.ReadFrame(peer, &req); err != nil {
		t.Fatalf("frame after the corrupt one: %v", err)
	}
	if !reflect.DeepEqual(req, frame(1)) {
		t.Errorf("frame 1 mutated: %+v", req)
	}
}

func TestStallBlocksUntilClose(t *testing.T) {
	faulted, _ := pipe(t, faultnet.Script{{Dir: faultnet.Write, Frame: 0, Act: faultnet.Stall}})
	errs := make(chan error, 1)
	go func() { errs <- wire.WriteFrame(faulted, frame(0)) }()

	select {
	case err := <-errs:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
		// Still blocked, as scripted.
	}
	faulted.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, faultnet.ErrInjected) {
			t.Errorf("released stall error = %v, want ErrInjected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the stalled write")
	}
}

func TestReadDirectionFaults(t *testing.T) {
	faulted, peer := pipe(t, faultnet.Script{{Dir: faultnet.Read, Frame: 1, Act: faultnet.Cut}})
	go writeFrames(peer, 2)

	var req wire.Request
	if err := wire.ReadFrame(faulted, &req); err != nil {
		t.Fatalf("frame 0 should pass untouched: %v", err)
	}
	if !reflect.DeepEqual(req, frame(0)) {
		t.Errorf("frame 0 mutated: %+v", req)
	}
	if err := wire.ReadFrame(faulted, &req); err == nil {
		t.Error("read past a scripted read-cut succeeded")
	}
}

func TestListenerScriptsConnectionsInOrder(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := faultnet.WrapListener(base,
		faultnet.Script{{Dir: faultnet.Write, Frame: 0, Act: faultnet.Cut}})
	defer ln.Close()

	// An echo server that writes one frame back per connection.
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				var req wire.Request
				if wire.ReadFrame(nc, &req) == nil {
					wire.WriteFrame(nc, wire.Response{ID: req.ID, Kind: wire.KindReply})
				}
			}()
		}
	}()

	dial := func() (wire.Response, error) {
		nc, err := net.Dial("tcp", base.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if err := wire.WriteFrame(nc, frame(0)); err != nil {
			return wire.Response{}, err
		}
		var resp wire.Response
		err = wire.ReadFrame(nc, &resp)
		return resp, err
	}

	// Connection 0 is scripted: its reply is cut.
	if _, err := dial(); err == nil {
		t.Error("scripted connection delivered its reply through a cut")
	}
	// Connection 1 is beyond the script list: clean.
	if resp, err := dial(); err != nil || resp.Kind != wire.KindReply {
		t.Errorf("clean connection failed: resp %+v, err %v", resp, err)
	}
	if got := ln.Accepted(); got != 2 {
		t.Errorf("Accepted = %d, want 2", got)
	}
}

func TestCutScriptsAreReproducible(t *testing.T) {
	a := faultnet.CutScripts(42, 4, 1, 5)
	b := faultnet.CutScripts(42, 4, 1, 5)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	for i, s := range a {
		if len(s) != 1 || s[0].Act != faultnet.Cut || s[0].Dir != faultnet.Write {
			t.Fatalf("script %d = %v, want one write-cut", i, s)
		}
		if f := s[0].Frame; f < 1 || f >= 5 {
			t.Errorf("script %d cuts frame %d, outside [1,5)", i, f)
		}
	}
	if reflect.DeepEqual(a, faultnet.CutScripts(43, 4, 1, 5)) {
		t.Error("different seeds produced identical schedules")
	}
}

// storeKey returns a distinct deterministic fingerprint per seed.
func storeKey(seed byte) sim.Key {
	var k sim.Key
	for i := range k {
		k[i] = seed + byte(i)
	}
	return k
}

// flakySequence records the hit/miss pattern of n lookups against a
// FlakyStore whose inner store holds every key.
func flakySequence(seed uint64, n int) []bool {
	inner := runner.NewMemStore()
	fs := faultnet.NewFlakyStore(inner, seed, 2)
	pattern := make([]bool, n)
	for i := 0; i < n; i++ {
		k := storeKey(byte(i))
		inner.Record(k, runner.StoredResult{Err: "x"})
		_, pattern[i] = fs.Lookup(k)
	}
	return pattern
}

func TestFlakyStoreScheduleIsDeterministic(t *testing.T) {
	a := flakySequence(7, 64)
	if !reflect.DeepEqual(a, flakySequence(7, 64)) {
		t.Error("same seed produced different failure schedules")
	}
	misses := 0
	for _, hit := range a {
		if !hit {
			misses++
		}
	}
	if misses == 0 || misses == 64 {
		t.Errorf("failOneIn=2 schedule failed %d of 64 lookups; want a mix", misses)
	}
}

func TestFlakyStoreContract(t *testing.T) {
	inner := runner.NewMemStore()
	always := faultnet.NewFlakyStore(inner, 1, 1) // every op fails
	k := storeKey(1)

	always.Record(k, runner.StoredResult{Err: "x"}) // dropped
	if _, ok := inner.Lookup(k); ok {
		t.Error("failed Record reached the inner store")
	}
	inner.Record(k, runner.StoredResult{Err: "x"})
	if _, ok := always.Lookup(k); ok {
		t.Error("failed Lookup reported a hit")
	}
	if err := always.Flush(); !errors.Is(err, faultnet.ErrInjected) {
		t.Errorf("failed Flush = %v, want ErrInjected", err)
	}
	if always.Failures() != 3 {
		t.Errorf("Failures = %d, want 3", always.Failures())
	}

	never := faultnet.NewFlakyStore(inner, 1, 0)
	if _, ok := never.Lookup(k); !ok {
		t.Error("failOneIn=0 store failed a lookup")
	}
	if err := never.Flush(); err != nil {
		t.Errorf("failOneIn=0 Flush: %v", err)
	}
}
