// Package simd implements the long-lived simulation daemon: a
// message-passing request loop (in the style of minixfs's fs server)
// over the wire protocol of internal/simd/wire. One shared
// resizecache.Session backs every connection, so plans submitted by
// concurrent clients partition across the same worker shards through
// Runner.Enqueue — gang coalescing, in-flight dedup, and memoization
// work across clients, and the second client to replay a plan gets
// near-total store hits and zero new simulations.
//
// Each connection runs three goroutines: a reader that decodes request
// frames, the request loop that dispatches them, and a writer that
// serializes response frames. Handlers run concurrently per request
// (a connection can interleave store calls with a long plan), publish
// through the writer's channel, and derive their contexts from the
// server's run context — not the accept loop's — so a graceful drain
// (Serve's ctx cancelled) stops accepting and dispatching while
// in-flight plans run to completion; Abort cancels them too.
package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"resizecache"
	"resizecache/internal/runner"
	"resizecache/internal/sim"
	"resizecache/internal/simd/wire"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// GangSize bounds gang coalescing (0 = runner.DefaultGangSize).
	GangSize int
	// MemoLimit bounds the in-memory memo table (0 = unbounded).
	MemoLimit int
	// Store is the backing persistent store shared by the daemon's
	// runner and its store service (nil = a fresh MemStore). Serve
	// flushes it after draining.
	Store runner.Store
	// IdleTimeout closes a connection that has sent no frame for this
	// long while it has no in-flight requests — a half-open client can
	// no longer pin its three goroutines for the process lifetime
	// (0 = no idle timeout). A connection running a long plan is busy,
	// not idle, and is never closed by this; idle clients that want to
	// stay connected send wire.OpPing keepalives, which (like any
	// frame) reset the clock.
	IdleTimeout time.Duration
	// Logf, when non-nil, receives connection-lifecycle log lines.
	Logf func(format string, args ...any)
}

// Server is the daemon: one shared session, many client connections.
// Construct with New.
type Server struct {
	session *resizecache.Session
	store   runner.Store
	idle    time.Duration
	logf    func(string, ...any)

	// runCtx scopes request handlers: it outlives Serve's accept/drain
	// context so a graceful drain lets in-flight plans finish, and Abort
	// cancels it for a hard stop.
	runCtx context.Context
	abort  context.CancelFunc
}

// New constructs a Server around one shared session.
func New(opts Options) (*Server, error) {
	store := opts.Store
	if store == nil {
		store = runner.NewMemStore()
	}
	session, err := resizecache.NewSessionWith(resizecache.SessionOptions{
		Workers: opts.Workers, GangSize: opts.GangSize,
		MemoLimit: opts.MemoLimit, Store: store})
	if err != nil {
		return nil, err
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	runCtx, abort := context.WithCancel(context.Background())
	return &Server{session: session, store: store, idle: opts.IdleTimeout,
		logf: logf, runCtx: runCtx, abort: abort}, nil
}

// Abort cancels every in-flight request's context: plans stop between
// simulations and report context errors. Used for a hard shutdown after
// a graceful drain has been requested (e.g. a second SIGTERM).
func (s *Server) Abort() { s.abort() }

// Stats snapshots the shared session's scheduling counters.
func (s *Server) Stats() runner.Stats { return s.session.Stats() }

// Listen resolves a simd listen address ("unix:<path>", "tcp:<addr>",
// bare path or host:port — see the client's ParseAddr) into a listener.
func Listen(addr string) (net.Listener, error) {
	network, target := parseAddr(addr)
	ln, err := net.Listen(network, target)
	if err != nil {
		return nil, fmt.Errorf("simd: listen %s: %w", addr, err)
	}
	return ln, nil
}

// parseAddr mirrors the client's address grammar (kept in sync by
// TestAddressGrammar rather than an import, so the client package stays
// free of server dependencies).
func parseAddr(addr string) (network, target string) {
	switch {
	case len(addr) > 5 && addr[:5] == "unix:":
		return "unix", addr[5:]
	case len(addr) > 4 && addr[:4] == "tcp:":
		return "tcp", addr[4:]
	default:
		for i := 0; i < len(addr); i++ {
			if addr[i] == '/' || addr[i] == '\\' {
				return "unix", addr
			}
		}
		return "tcp", addr
	}
}

// Serve accepts connections until ctx is cancelled or the listener
// fails, then drains: no new requests are dispatched, in-flight
// requests (whole plans included) run to completion on the run context,
// and the backing store is flushed before Serve returns. Callers wanting
// a hard stop call Abort after cancelling ctx.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()

	var wg sync.WaitGroup
	var acceptErr error
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				acceptErr = err
			}
			break
		}
		s.logf("simd: client connected: %v", nc.RemoteAddr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(ctx, nc)
			s.logf("simd: client disconnected: %v", nc.RemoteAddr())
		}()
	}
	wg.Wait()
	if err := s.store.Flush(); err != nil {
		if acceptErr == nil {
			acceptErr = fmt.Errorf("simd: final flush: %w", err)
		}
	}
	return acceptErr
}

// conn is one client connection's server-side state: the serialized
// response stream and the cancel functions of its in-flight plans.
type conn struct {
	out chan wire.Response

	// inflight counts dispatched-but-unfinished requests: the reader's
	// idle-timeout check treats a connection with in-flight work (a
	// long-running plan, a slow store op) as busy, never idle.
	inflight atomic.Int64

	mu      sync.Mutex
	cancels map[uint64]context.CancelFunc
}

// send queues a response frame for the writer goroutine.
func (c *conn) send(resp wire.Response) { c.out <- resp }

// register installs a plan request's cancel func so an OpCancel frame
// can abort it.
func (c *conn) register(id uint64, cancel context.CancelFunc) {
	c.mu.Lock()
	c.cancels[id] = cancel
	c.mu.Unlock()
}

func (c *conn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.cancels, id)
	c.mu.Unlock()
}

// cancel aborts the in-flight plan with the given request ID, if any.
func (c *conn) cancel(id uint64) {
	c.mu.Lock()
	fn := c.cancels[id]
	c.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// serveConn runs one connection's request loop until the client hangs
// up or ctx asks for a drain; either way it waits for the connection's
// in-flight handlers before closing the socket, so every accepted
// request's frames are delivered.
func (s *Server) serveConn(ctx context.Context, nc net.Conn) {
	defer nc.Close()
	c := &conn{out: make(chan wire.Response, 64), cancels: make(map[uint64]context.CancelFunc)}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for resp := range c.out {
			if err := wire.WriteFrame(nc, resp); err != nil {
				// The client is gone; drain the channel so handlers never
				// block publishing to it.
				for range c.out {
				}
				return
			}
		}
	}()

	// Reader: frames flow to the request loop; a read error (EOF on
	// hangup) closes reqs and ends the loop. With an idle timeout, each
	// frame read carries a deadline: a connection that goes silent with
	// no in-flight work is torn down instead of pinning its goroutines
	// forever (the half-open-client case), while a deadline that fires
	// on a busy connection — a client quietly waiting out a long plan —
	// just re-arms. A deadline that fires mid-frame is a wedged peer
	// either way and closes the connection: resuming a partial read
	// after an unknown delay would desynchronize the framing.
	reqs := make(chan wire.Request)
	go func() {
		defer close(reqs)
		cr := &countingReader{r: nc}
		for {
			if s.idle > 0 {
				// One wall-clock read per armed deadline; the value never
				// reaches simulation state, only the socket option.
				nc.SetReadDeadline(time.Now().Add(s.idle)) //simlint:allow idle-timeout deadline is transport plumbing, not simulation input
			}
			before := cr.n
			var req wire.Request
			if err := wire.ReadFrame(cr, &req); err != nil {
				if s.idle > 0 && isTimeout(err) && cr.n == before && c.inflight.Load() > 0 {
					continue // busy, not idle: re-arm and keep listening
				}
				return
			}
			select {
			case reqs <- req:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case req, ok := <-reqs:
			if !ok {
				break loop
			}
			s.dispatch(c, req, &wg)
		}
	}
	// On a client hangup, abort its in-flight plans — nobody is left to
	// read their frames. On a drain (ctx done) the reader also stops, but
	// connected clients keep their cancels unfired so plans finish.
	if ctx.Err() == nil {
		c.mu.Lock()
		cancels := make([]context.CancelFunc, 0, len(c.cancels))
		for _, fn := range c.cancels { //simlint:ordered cancel fan-out is order-insensitive
			cancels = append(cancels, fn)
		}
		c.mu.Unlock()
		for _, fn := range cancels {
			fn()
		}
	}
	wg.Wait()
	close(c.out)
	// A peer that stopped reading (or a stalled transport) can wedge the
	// writer on its final frames; bound the wait by closing the socket
	// instead of pinning the drain forever.
	unwedge := time.AfterFunc(drainGrace, func() { nc.Close() })
	<-writerDone
	unwedge.Stop()
}

// drainGrace bounds how long a closing connection waits for its last
// response frames to flush to a peer that has stopped reading.
const drainGrace = 5 * time.Second

// countingReader counts bytes delivered to ReadFrame so the idle check
// can tell "no frame started" (idle) from "a frame stalled mid-read"
// (wedged peer). Only the reader goroutine touches it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// isTimeout reports whether err is a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// dispatch routes one request. Cancel frames are handled inline
// (fire-and-forget); everything else gets a handler goroutine tracked
// by wg — and counted in the connection's in-flight gauge, which the
// idle-timeout check consults — scoped to the server's run context so a
// drain does not cancel it.
func (s *Server) dispatch(c *conn, req wire.Request, wg *sync.WaitGroup) {
	if req.Op == wire.OpCancel {
		c.cancel(req.Target)
		return
	}
	if req.V != wire.ProtocolVersion {
		c.send(wire.Response{ID: req.ID, Kind: wire.KindError,
			Err: fmt.Sprintf("protocol version mismatch: client v%d, server v%d", req.V, wire.ProtocolVersion)})
		return
	}
	wg.Add(1)
	c.inflight.Add(1)
	go func() {
		defer wg.Done()
		defer c.inflight.Add(-1)
		s.handle(s.runCtx, c, req)
	}()
}

// handle executes one non-cancel request against the shared session and
// store.
func (s *Server) handle(ctx context.Context, c *conn, req wire.Request) {
	fail := func(format string, args ...any) {
		c.send(wire.Response{ID: req.ID, Kind: wire.KindError, Err: fmt.Sprintf(format, args...)})
	}
	reply := func(resp wire.Response) {
		resp.ID, resp.Kind = req.ID, wire.KindReply
		c.send(resp)
	}

	// The store ops need a parsed key.
	var key sim.Key
	switch req.Op {
	case wire.OpLookup, wire.OpRecord, wire.OpLookupArtifact, wire.OpRecordArtifact:
		k, err := wire.ParseKey(req.Key)
		if err != nil {
			fail("%v", err)
			return
		}
		key = k
	}

	switch req.Op {
	case wire.OpPlan:
		s.handlePlan(ctx, c, req)
	case wire.OpLookup:
		sr, ok := s.store.Lookup(key)
		if !ok {
			reply(wire.Response{})
			return
		}
		data, err := json.Marshal(sr)
		if err != nil {
			fail("encode stored result: %v", err)
			return
		}
		reply(wire.Response{Found: true, Value: data})
	case wire.OpRecord:
		var sr runner.StoredResult
		if err := json.Unmarshal(req.Value, &sr); err != nil {
			fail("decode stored result: %v", err)
			return
		}
		s.store.Record(key, sr)
		reply(wire.Response{})
	case wire.OpLookupArtifact:
		data, ok := s.store.LookupArtifact(key)
		reply(wire.Response{Found: ok, Value: data})
	case wire.OpRecordArtifact:
		s.store.RecordArtifact(key, req.Value)
		reply(wire.Response{})
	case wire.OpFlush:
		if err := s.store.Flush(); err != nil {
			fail("flush: %v", err)
			return
		}
		reply(wire.Response{})
	case wire.OpStats:
		data, err := json.Marshal(s.session.Stats())
		if err != nil {
			fail("encode stats: %v", err)
			return
		}
		reply(wire.Response{Value: data})
	case wire.OpPing:
		// The health check: an empty reply proves the request loop is
		// alive. Receiving the frame already reset the idle clock.
		reply(wire.Response{})
	default:
		fail("unknown op %q", req.Op)
	}
}

// handlePlan executes one plan submission: deserialize, re-validate
// through PlanOf (scenarios arrive normalized, so plan order — and
// therefore result indexing — is preserved), run it on the shared
// session, and stream result frames in completion order followed by a
// done frame. Per-scenario errors travel in their result frame; the
// rest of the plan continues — exactly Session.Run's isolation.
func (s *Server) handlePlan(ctx context.Context, c *conn, req wire.Request) {
	var scenarios []resizecache.Scenario
	if err := json.Unmarshal(req.Scenarios, &scenarios); err != nil {
		c.send(wire.Response{ID: req.ID, Kind: wire.KindError, Err: fmt.Sprintf("decode plan: %v", err)})
		return
	}
	plan, err := resizecache.PlanOf(scenarios...)
	if err != nil {
		c.send(wire.Response{ID: req.ID, Kind: wire.KindError, Err: fmt.Sprintf("invalid plan: %v", err)})
		return
	}
	if plan.Len() != len(scenarios) {
		// Would break index correlation: the client sent a plan whose
		// normal form differs from its own (version skew or a hand-rolled
		// non-normalized submission).
		c.send(wire.Response{ID: req.ID, Kind: wire.KindError,
			Err: fmt.Sprintf("plan renormalized from %d to %d scenarios; client and server disagree on scenario normal form", len(scenarios), plan.Len())})
		return
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	c.register(req.ID, cancel)
	defer c.unregister(req.ID)

	total := plan.Len()
	completed := 0
	for r := range s.session.Run(pctx, plan) {
		completed++
		frame := wire.Response{ID: req.ID, Kind: wire.KindResult,
			Index: r.Index, Completed: completed, Total: total}
		if r.Err != nil {
			frame.Err = r.Err.Error()
		} else if data, err := json.Marshal(r.Outcome); err != nil {
			frame.Err = fmt.Sprintf("encode outcome: %v", err)
		} else {
			frame.Outcome = data
		}
		c.send(frame)
	}
	c.send(wire.Response{ID: req.ID, Kind: wire.KindDone})
}
