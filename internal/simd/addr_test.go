package simd

import (
	"testing"

	"resizecache/internal/simd/client"
)

// TestAddressGrammar keeps the server's parseAddr and the client's
// ParseAddr in lockstep: the two packages deliberately do not import
// each other, so this table is the contract that one address string
// means the same endpoint on both ends.
func TestAddressGrammar(t *testing.T) {
	cases := []struct {
		addr    string
		network string
		target  string
	}{
		{"unix:/run/simd.sock", "unix", "/run/simd.sock"},
		{"tcp:127.0.0.1:9821", "tcp", "127.0.0.1:9821"},
		{"tcp:localhost:80", "tcp", "localhost:80"},
		{"/tmp/simd.sock", "unix", "/tmp/simd.sock"},
		{"./relative.sock", "unix", "./relative.sock"},
		{`C:\pipe\simd`, "unix", `C:\pipe\simd`},
		{"127.0.0.1:9821", "tcp", "127.0.0.1:9821"},
		{"localhost:9821", "tcp", "localhost:9821"},
	}
	for _, tc := range cases {
		sn, st := parseAddr(tc.addr)
		if sn != tc.network || st != tc.target {
			t.Errorf("server parseAddr(%q) = %s, %s; want %s, %s",
				tc.addr, sn, st, tc.network, tc.target)
		}
		cn, ct := client.ParseAddr(tc.addr)
		if cn != sn || ct != st {
			t.Errorf("grammar skew on %q: client says %s,%s; server says %s,%s",
				tc.addr, cn, ct, sn, st)
		}
	}
}
