package simd_test

// Integration tests for the daemon: every test starts a real server on
// a unix socket in a temp dir and talks to it through the public client
// surfaces (resizecache.Dial, runner.OpenNetStore) or raw wire frames.
// The headline contracts under test: remote results are bit-identical
// to a local session's, concurrent clients submitting the same plan
// deduplicate down to one simulation set, and a warm replay runs zero
// new simulations.

import (
	"context"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"resizecache"
	"resizecache/internal/runner"
	"resizecache/internal/runner/storetest"
	"resizecache/internal/simd"
	"resizecache/internal/simd/wire"
)

// startDaemon runs a Server on a fresh unix socket until the test ends;
// cleanup drains it gracefully and reports any Serve error.
func startDaemon(t *testing.T, opts simd.Options) (addr string, srv *simd.Server) {
	t.Helper()
	srv, err := simd.New(opts)
	if err != nil {
		t.Fatalf("simd.New: %v", err)
	}
	addr = "unix:" + filepath.Join(t.TempDir(), "s.sock")
	ln, err := simd.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return addr, srv
}

// testPlan is the shared fixture: two cheap scenarios with distinct
// benchmarks, so the plan profiles two sweeps.
func testPlan(t *testing.T) resizecache.Plan {
	t.Helper()
	plan, err := resizecache.PlanOf(
		resizecache.Scenario{Benchmark: "m88ksim", Organization: resizecache.SelectiveSets,
			Sides: resizecache.DOnly, Instructions: 60_000},
		resizecache.Scenario{Benchmark: "gcc", Organization: resizecache.SelectiveSets,
			Sides: resizecache.DOnly, Instructions: 60_000},
	)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// zeroStats strips the per-call runner-activity delta from outcomes
// before comparison: it reflects which runner executed the call (and
// what its neighbours were doing), not what the scenario computed.
func zeroStats(results []resizecache.Result) {
	for i := range results {
		results[i].Outcome.Stats = runner.Stats{}
	}
}

// TestRemotePlanMatchesLocal is the tentpole acceptance test: two
// concurrent clients submit the same plan to one daemon; every result
// is bit-identical to an in-process session's, the daemon deduplicates
// the overlapping submissions down to one simulation set, and a warm
// third client replays the plan with zero new simulations.
func TestRemotePlanMatchesLocal(t *testing.T) {
	plan := testPlan(t)
	ctx := context.Background()

	local := resizecache.NewSession()
	want, err := resizecache.Collect(local.Run(ctx, plan))
	if err != nil {
		t.Fatal(err)
	}
	zeroStats(want)
	localRuns := local.Stats().Runs

	addr, srv := startDaemon(t, simd.Options{})

	// Two clients race the same plan through one shared session.
	results := make([][]resizecache.Result, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func() {
			defer wg.Done()
			remote, err := resizecache.Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer remote.Close()
			results[i], errs[i] = resizecache.Collect(remote.Run(ctx, plan))
		}()
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		zeroStats(results[i])
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("client %d results differ from the local session:\n got %+v\nwant %+v",
				i, results[i], want)
		}
	}
	if got := srv.Stats().Runs; got != localRuns {
		t.Errorf("daemon ran %d simulations for two overlapping clients, want %d (in-flight dedup)",
			got, localRuns)
	}

	// A warm replay: the third client's plan resolves entirely from the
	// shared memo fabric.
	before := srv.Stats()
	remote, err := resizecache.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	warm, err := resizecache.Collect(remote.Run(ctx, plan))
	if err != nil {
		t.Fatal(err)
	}
	zeroStats(warm)
	if !reflect.DeepEqual(warm, want) {
		t.Errorf("warm replay differs from the local session")
	}
	delta := srv.Stats().Delta(before)
	if delta.Runs != 0 || delta.Enqueued != 0 {
		t.Errorf("warm replay did fresh work: %v", delta)
	}
	if delta.ArtifactHits == 0 {
		t.Errorf("warm replay scored no sweep-level reuse: %v", delta)
	}
}

// TestRemoteSimulateAndStats exercises the non-plan Executor surface:
// one scenario through SimulateContext, cumulative daemon counters
// through Stats, and error isolation for an invalid scenario.
func TestRemoteSimulateAndStats(t *testing.T) {
	addr, srv := startDaemon(t, simd.Options{})
	remote, err := resizecache.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	sc := resizecache.Scenario{Benchmark: "m88ksim", Organization: resizecache.SelectiveSets,
		Sides: resizecache.DOnly, Instructions: 60_000}
	out, err := remote.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if out.DChosen == "" {
		t.Error("remote outcome has no chosen configuration")
	}
	st := remote.Stats()
	if st.Runs == 0 || st.Runs != srv.Stats().Runs {
		t.Errorf("remote Stats = %+v, want the daemon's cumulative counters (%d runs)",
			st, srv.Stats().Runs)
	}

	if _, err := remote.Simulate(resizecache.Scenario{Benchmark: "no-such-app",
		Organization: resizecache.SelectiveSets, Instructions: 60_000}); err == nil {
		t.Error("invalid scenario simulated without error")
	}
}

// TestRemoteCancelKeepsConnectionUsable: cancelling a plan mid-stream
// must deliver exactly plan.Len() results (the unfinished ones carrying
// the cancellation), and the multiplexed connection must stay usable
// for later requests.
func TestRemoteCancelKeepsConnectionUsable(t *testing.T) {
	addr, _ := startDaemon(t, simd.Options{Workers: 1})
	remote, err := resizecache.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	var scenarios []resizecache.Scenario
	for _, app := range resizecache.Benchmarks() {
		scenarios = append(scenarios, resizecache.Scenario{Benchmark: app,
			Organization: resizecache.SelectiveSets, Sides: resizecache.DOnly,
			Instructions: 400_000})
	}
	plan, err := resizecache.PlanOf(scenarios...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // before submission: every scenario should fail fast
	results, err := resizecache.Collect(remote.Run(ctx, plan))
	if err == nil {
		t.Error("cancelled plan reported no error")
	}
	if len(results) != plan.Len() {
		t.Fatalf("cancelled plan delivered %d results, want %d", len(results), plan.Len())
	}

	// The connection multiplexes: a fresh request on the same conn works.
	if err := remote.Flush(); err != nil {
		t.Errorf("connection unusable after cancel: %v", err)
	}
}

// TestNetStoreConformance runs the Store contract suite against
// NetStore, each subtest on its own fresh daemon.
func TestNetStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) runner.Store {
		addr, _ := startDaemon(t, simd.Options{})
		ns, err := runner.OpenNetStore(addr)
		if err != nil {
			t.Fatalf("OpenNetStore: %v", err)
		}
		t.Cleanup(func() { ns.Close() })
		return ns
	})
}

// TestNetStoreSharesFabricWithPlans: results a NetStore-backed local
// session computes become store hits for remote plans on the same
// daemon — the two client modes (run-here-share-store and
// run-on-the-daemon) interoperate through one memo fabric.
func TestNetStoreSharesFabricWithPlans(t *testing.T) {
	plan := testPlan(t)
	ctx := context.Background()
	addr, srv := startDaemon(t, simd.Options{})

	ns, err := runner.OpenNetStore(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	local, err := resizecache.NewSessionWith(resizecache.SessionOptions{Store: ns})
	if err != nil {
		t.Fatal(err)
	}
	want, err := resizecache.Collect(local.Run(ctx, plan))
	if err != nil {
		t.Fatal(err)
	}
	zeroStats(want)
	if hits, errors := ns.RemoteCounts(); errors != 0 {
		t.Fatalf("net store: %d hits, %d errors; want error-free", hits, errors)
	}

	// The daemon itself has simulated nothing; the remote plan must
	// resolve from what the local session recorded.
	if runs := srv.Stats().Runs; runs != 0 {
		t.Fatalf("daemon ran %d simulations before any plan", runs)
	}
	remote, err := resizecache.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	got, err := resizecache.Collect(remote.Run(ctx, plan))
	if err != nil {
		t.Fatal(err)
	}
	zeroStats(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remote plan over the shared store differs from the local session")
	}
	if runs := srv.Stats().Runs; runs != 0 {
		t.Errorf("remote plan re-simulated %d configs the local session already stored", runs)
	}
}

// TestProtocolVersionMismatch: a client speaking the wrong protocol
// version gets a per-request error frame naming both versions, not a
// hangup or a silent misinterpretation.
func TestProtocolVersionMismatch(t *testing.T) {
	addr, _ := startDaemon(t, simd.Options{})
	nc, err := net.Dial("unix", strings.TrimPrefix(addr, "unix:"))
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	req := wire.Request{V: wire.ProtocolVersion + 1, ID: 7, Op: wire.OpStats}
	if err := wire.WriteFrame(nc, req); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.ReadFrame(nc, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 || resp.Kind != wire.KindError {
		t.Fatalf("response = %+v, want an error frame for request 7", resp)
	}
	if !strings.Contains(resp.Err, "protocol version mismatch") {
		t.Errorf("error = %q, want a protocol version mismatch", resp.Err)
	}
}
