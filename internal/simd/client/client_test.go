package client_test

// Unit tests for the resilient client: address-list parsing, the
// deterministic backoff schedule (injected Sleep + JitterSeed), and
// transparent retry of synchronous calls across a dying connection.

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"resizecache/internal/simd/client"
	"resizecache/internal/simd/wire"
)

func TestParseAddrList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"tcp:a:1", []string{"tcp:a:1"}},
		{"tcp:a:1,tcp:b:2", []string{"tcp:a:1", "tcp:b:2"}},
		{" tcp:a:1 , unix:/s.sock ,", []string{"tcp:a:1", "unix:/s.sock"}},
		{",,", nil},
	}
	for _, c := range cases {
		if got := client.ParseAddrList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseAddrList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// sleeps runs one failing Call against an unreachable address and
// returns the backoff durations the retry policy chose.
func sleeps(t *testing.T, seed uint64) []time.Duration {
	t.Helper()
	var slept []time.Duration
	c, err := client.New("unix:"+filepath.Join(t.TempDir(), "nowhere.sock"), client.Options{
		DialTimeout: 50 * time.Millisecond,
		JitterSeed:  seed,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping of a nonexistent daemon succeeded")
	}
	return slept
}

func TestBackoffScheduleIsDeterministic(t *testing.T) {
	a := sleeps(t, 99)
	b := sleeps(t, 99)
	if len(a) == 0 {
		t.Fatal("no backoff sleeps recorded; the redial loop never backed off")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different backoff schedules:\n%v\n%v", a, b)
	}
	if reflect.DeepEqual(a, sleeps(t, 100)) {
		t.Error("different seeds produced identical jitter")
	}
	for i, d := range a {
		lo := client.DefaultBackoffBase << i
		if lo > client.DefaultBackoffMax {
			lo = client.DefaultBackoffMax
		}
		hi := lo + client.DefaultBackoffBase
		if d < lo || d >= hi {
			t.Errorf("backoff %d = %v, outside [%v, %v)", i, d, lo, hi)
		}
	}
}

// flakyServer answers wire requests but hangs up after every frame it
// writes on its first connection, forcing the client to reconnect.
func flakyServer(t *testing.T) (addr string) {
	t.Helper()
	ln, err := net.Listen("unix", filepath.Join(t.TempDir(), "flaky.sock"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	conns := 0
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			conns++
			first := conns == 1
			go func() {
				defer nc.Close()
				for {
					var req wire.Request
					if wire.ReadFrame(nc, &req) != nil {
						return
					}
					if first {
						return // hang up instead of answering
					}
					wire.WriteFrame(nc, wire.Response{ID: req.ID, Kind: wire.KindReply})
				}
			}()
		}
	}()
	return "unix:" + ln.Addr().String()
}

func TestCallRetriesAcrossReconnect(t *testing.T) {
	c, err := client.DialWith(flakyServer(t), client.Options{
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The first connection dies on the request; the client must retry it
	// on a fresh socket and succeed without the caller noticing.
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping across a dying connection: %v", err)
	}
	if got := c.Redials(); got != 1 {
		t.Errorf("Redials = %d, want 1", got)
	}
}

func TestCallFailsFastOnRemoteError(t *testing.T) {
	// A server that rejects every request with a KindError frame: the
	// client must surface a *RemoteError without retrying (retries are
	// for transport faults, not remote rejections).
	ln, err := net.Listen("unix", filepath.Join(t.TempDir(), "reject.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	requests := make(chan struct{}, 64)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				for {
					var req wire.Request
					if wire.ReadFrame(nc, &req) != nil {
						return
					}
					requests <- struct{}{}
					wire.WriteFrame(nc, wire.Response{ID: req.ID, Kind: wire.KindError, Err: "nope"})
				}
			}()
		}
	}()

	c, err := client.Dial("unix:" + ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Ping(context.Background())
	var re *client.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if len(requests) != 1 {
		t.Errorf("server saw %d requests, want 1 (no retry of a rejection)", len(requests))
	}
}
