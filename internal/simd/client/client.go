// Package client implements the client side of the simd wire protocol:
// one multiplexed connection over which synchronous store calls (Call)
// and streaming plan submissions (Stream) interleave freely. Both
// runner.NetStore and the facade's RemoteSession are built on a Conn.
package client

import (
	"context"
	"net"
	"strings"
	"sync"

	"resizecache/internal/simd/wire"
)

// RemoteError is a request-level failure reported by the daemon (a
// KindError frame): the request reached the server and was rejected, as
// opposed to a transport failure.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "simd: remote error: " + e.Msg }

// ParseAddr splits a simd address into a net.Dial network and target.
// Accepted forms: "unix:<path>", "tcp:<host:port>", a bare path
// containing a path separator (unix), or a bare host:port (tcp).
func ParseAddr(addr string) (network, target string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:")
	case strings.ContainsAny(addr, "/\\"):
		return "unix", addr
	default:
		return "tcp", addr
	}
}

// Conn is a multiplexed client connection to a simd daemon. Safe for
// concurrent use: requests carry unique IDs, a single read loop routes
// response frames to their callers, and writes are serialized.
type Conn struct {
	nc  net.Conn
	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan wire.Response
	err     error
	closed  chan struct{} // closed when the read loop exits
}

// Dial connects to a simd daemon at addr (see ParseAddr).
func Dial(addr string) (*Conn, error) {
	network, target := ParseAddr(addr)
	nc, err := net.Dial(network, target)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		nc:      nc,
		pending: make(map[uint64]chan wire.Response),
		closed:  make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection; pending calls fail with the close
// error.
func (c *Conn) Close() error {
	err := c.nc.Close()
	<-c.closed
	return err
}

// Err returns the error that terminated the read loop, if it has.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// readLoop routes incoming frames to their exchange's channel. A
// decode or transport error terminates the connection: the loop records
// the error and closes the broadcast channel every waiter selects on.
func (c *Conn) readLoop() {
	for {
		var resp wire.Response
		if err := wire.ReadFrame(c.nc, &resp); err != nil {
			c.mu.Lock()
			c.err = err
			close(c.closed)
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		if resp.Kind != wire.KindResult {
			// A terminal frame (done/reply/error) ends the exchange.
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ch != nil {
			// Call buffers its single reply and Stream drains to the
			// terminal frame before abandoning its channel, so this send
			// cannot block the loop indefinitely.
			ch <- resp
		}
	}
}

// send registers a new exchange and writes its request frame. buffered
// sizes the exchange channel: 1 for single-reply calls, larger for
// streams so the read loop keeps flowing while the consumer works.
func (c *Conn) send(req wire.Request, buffered int) (chan wire.Response, uint64, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, 0, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan wire.Response, buffered)
	c.pending[id] = ch
	c.mu.Unlock()

	req.V = wire.ProtocolVersion
	req.ID = id
	c.wmu.Lock()
	err := wire.WriteFrame(c.nc, req)
	c.wmu.Unlock()
	if err != nil {
		c.forget(id)
		return nil, 0, err
	}
	return ch, id, nil
}

// forget abandons an exchange: late frames for the ID are dropped by
// the read loop.
func (c *Conn) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Call performs one synchronous request and returns its single reply
// frame. A KindError reply is surfaced as a *RemoteError.
func (c *Conn) Call(ctx context.Context, req wire.Request) (wire.Response, error) {
	ch, id, err := c.send(req, 1)
	if err != nil {
		return wire.Response{}, err
	}
	select {
	case resp := <-ch:
		if resp.Kind == wire.KindError {
			return wire.Response{}, &RemoteError{Msg: resp.Err}
		}
		return resp, nil
	case <-ctx.Done():
		c.forget(id)
		return wire.Response{}, ctx.Err()
	case <-c.closed:
		return wire.Response{}, c.Err()
	}
}

// Stream performs one streaming request (OpPlan), invoking frame for
// every KindResult until the server's KindDone. Cancelling ctx — or a
// frame callback error — sends a best-effort OpCancel and keeps
// draining the exchange to its terminal frame so the connection's
// multiplexing stays healthy, then returns the cancellation cause. A
// KindError terminal frame returns a *RemoteError; a connection failure
// returns the transport error.
func (c *Conn) Stream(ctx context.Context, req wire.Request, frame func(wire.Response) error) error {
	ch, id, err := c.send(req, 64)
	if err != nil {
		return err
	}
	done := ctx.Done()
	var cause error // first cancellation/callback error; wins over later frames
	abandon := func(err error) {
		if cause != nil {
			return
		}
		cause = err
		done = nil // drain on frames alone from here
		c.wmu.Lock()
		// Best-effort: if the cancel frame cannot be written the read
		// loop is about to fail and end the drain anyway.
		_ = wire.WriteFrame(c.nc, wire.Request{V: wire.ProtocolVersion, Op: wire.OpCancel, Target: id})
		c.wmu.Unlock()
	}
	for {
		select {
		case resp := <-ch:
			switch resp.Kind {
			case wire.KindDone:
				if cause != nil {
					return cause
				}
				return nil
			case wire.KindError:
				if cause != nil {
					return cause
				}
				return &RemoteError{Msg: resp.Err}
			default:
				if cause != nil {
					continue // draining after cancellation
				}
				if err := frame(resp); err != nil {
					abandon(err)
				}
			}
		case <-done:
			abandon(ctx.Err())
			// Keep draining: the terminal frame (or connection close)
			// ends the loop.
		case <-c.closed:
			if cause != nil {
				return cause
			}
			return c.Err()
		}
	}
}
