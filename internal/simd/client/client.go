// Package client implements the client side of the simd wire protocol:
// one multiplexed connection over which synchronous store calls (Call)
// and streaming plan submissions (Stream) interleave freely. Both
// runner.NetStore and the facade's RemoteSession are built on a Conn.
//
// A Conn treats transport failures as routine inputs. It owns a list of
// daemon addresses and one live socket at a time; when the socket dies,
// the next operation redials with capped exponential backoff plus
// jitter, rotating through the address list so a dead daemon fails over
// to its neighbours. Synchronous calls (all of which are idempotent
// store/stats/ping round trips) retry transparently across reconnects
// and carry a bounded per-request deadline; plan streams surface a
// *TransportError instead, so the caller — which alone knows which
// results were already delivered — can resubmit only the undelivered
// remainder (see resizecache.RemoteSession.Run).
//
// The retry machinery is deterministic-core friendly: it never reads
// the wall clock (timeouts and backoff run on context deadlines and
// timers), and jitter comes from an injectable splitmix64 stream, not
// math/rand — tests inject Options.Sleep and Options.JitterSeed to make
// every schedule reproducible.
package client

import (
	"context"
	"errors"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"resizecache/internal/simd/wire"
)

// Defaults for the zero Options. Exported so callers (resizecache.Dial,
// runner.OpenNetStore) can document the values they inherit.
const (
	// DefaultCallTimeout bounds each synchronous Call when neither the
	// caller's context nor Options.CallTimeout says otherwise: a dead or
	// wedged daemon costs a bounded wait, never a hang.
	DefaultCallTimeout = 15 * time.Second
	// DefaultDialTimeout bounds one connection attempt to one address.
	DefaultDialTimeout = 5 * time.Second
	// DefaultDialPasses is how many full passes over the address list a
	// redial makes (with backoff between passes) before giving up.
	DefaultDialPasses = 3
	// DefaultBackoffBase / DefaultBackoffMax shape the capped
	// exponential backoff between redial passes.
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// ErrClosed is returned by operations on a Conn after Close. It is not
// a *TransportError: the connection was torn down deliberately, so
// nothing should retry or fail over.
var ErrClosed = errors.New("simd: client closed")

// RemoteError is a request-level failure reported by the daemon (a
// KindError frame): the request reached the server and was rejected, as
// opposed to a transport failure.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "simd: remote error: " + e.Msg }

// TransportError is a connection-level failure: a dial, write, or read
// failed, and the request may or may not have reached the daemon.
// Call retries idempotent requests across it automatically; Stream
// returns it so the caller can reconnect-and-resubmit undelivered work.
type TransportError struct{ Err error }

func (e *TransportError) Error() string { return "simd: transport: " + e.Err.Error() }
func (e *TransportError) Unwrap() error { return e.Err }

// IsTransport reports whether err is (or wraps) a transport failure —
// the class of error a resubmission can heal.
func IsTransport(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

// transport wraps err as a *TransportError, preserving an existing one.
func transport(err error) error {
	if err == nil || IsTransport(err) {
		return err
	}
	return &TransportError{Err: err}
}

// ParseAddr splits a simd address into a net.Dial network and target.
// Accepted forms: "unix:<path>", "tcp:<host:port>", a bare path
// containing a path separator (unix), or a bare host:port (tcp).
func ParseAddr(addr string) (network, target string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:")
	case strings.ContainsAny(addr, "/\\"):
		return "unix", addr
	default:
		return "tcp", addr
	}
}

// ParseAddrList splits a comma-separated simd address list, trimming
// whitespace and dropping empty elements. Every client entry point
// accepts such a list; the addresses are failover peers tried in
// round-robin order.
func ParseAddrList(addr string) []string {
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// Options tune a Conn's resilience machinery. The zero value uses the
// Default* constants.
type Options struct {
	// CallTimeout bounds each synchronous Call whose context has no
	// deadline of its own (0 = DefaultCallTimeout; negative = none).
	CallTimeout time.Duration
	// DialTimeout bounds one connection attempt (0 = DefaultDialTimeout).
	DialTimeout time.Duration
	// DialPasses is how many full passes over the address list a
	// (re)dial makes before reporting the daemons unreachable
	// (0 = DefaultDialPasses). Backoff sleeps separate passes, not
	// individual addresses — failover within a pass is immediate.
	DialPasses int
	// BackoffBase / BackoffMax shape the capped exponential backoff
	// between redial passes: pass n waits min(Base<<n, Max) plus jitter
	// in [0, Base) (0 = the Default* constants).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Sleep, when non-nil, replaces the real backoff wait — tests
	// inject it to run retry schedules instantly while still observing
	// the durations the policy chose.
	Sleep func(ctx context.Context, d time.Duration) error
	// JitterSeed seeds the deterministic jitter stream (0 = derived
	// from the process ID and address list, so concurrent processes
	// retrying against one dead daemon spread out).
	JitterSeed uint64
}

// withDefaults resolves zero fields to the package defaults.
func (o Options) withDefaults() Options {
	if o.CallTimeout == 0 {
		o.CallTimeout = DefaultCallTimeout
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.DialPasses <= 0 {
		o.DialPasses = DefaultDialPasses
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.Sleep == nil {
		o.Sleep = sleepCtx
	}
	return o
}

// sleepCtx is the real backoff wait: a timer raced against ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Conn is a resilient, multiplexed client connection to one or more
// simd daemons. Safe for concurrent use: requests carry unique IDs, a
// single read loop per live socket routes response frames to their
// callers, writes are serialized, and reconnect/failover is
// single-flight across callers.
type Conn struct {
	addrs []string
	opts  Options

	mu        sync.Mutex
	sock      *socket
	next      int // round-robin cursor into addrs
	closed    bool
	dialing   bool
	dialDone  chan struct{}
	jitter    uint64 // splitmix64 state
	connected bool   // a socket has been established at least once
	redials   uint64 // sockets established beyond the first
}

// New returns a Conn over a comma-separated address list without
// connecting: the first operation dials (with failover and backoff).
// Use Dial for the eager, fail-fast variant.
func New(addr string, opts Options) (*Conn, error) {
	addrs := ParseAddrList(addr)
	if len(addrs) == 0 {
		return nil, errors.New("simd: no daemon address given")
	}
	opts = opts.withDefaults()
	c := &Conn{addrs: addrs, opts: opts, jitter: opts.JitterSeed}
	if c.jitter == 0 {
		c.jitter = uint64(os.Getpid())<<32 ^ hashAddrs(addrs)
	}
	return c, nil
}

// Dial connects to a simd daemon. addr is a comma-separated failover
// list; each address is tried once (no backoff), so an unreachable
// fabric fails fast at dial time. See ParseAddr for address forms.
func Dial(addr string) (*Conn, error) { return DialWith(addr, Options{}) }

// DialWith is Dial with explicit Options.
func DialWith(addr string, opts Options) (*Conn, error) {
	c, err := New(addr, opts)
	if err != nil {
		return nil, err
	}
	s, err := c.dialOnce()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.sock = s
	c.connected = true
	c.mu.Unlock()
	return c, nil
}

// hashAddrs is an FNV-style fold of the address list, used only to
// spread default jitter seeds across differently-targeted clients.
func hashAddrs(addrs []string) uint64 {
	h := uint64(14695981039346656037)
	for _, a := range addrs {
		for i := 0; i < len(a); i++ {
			h = (h ^ uint64(a[i])) * 1099511628211
		}
	}
	return h
}

// Addrs returns the failover address list the Conn rotates through.
func (c *Conn) Addrs() []string { return append([]string(nil), c.addrs...) }

// Redials reports how many replacement sockets the Conn has
// established after its first — the number of reconnects survived.
func (c *Conn) Redials() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redials
}

// Close tears down the connection; pending calls fail with ErrClosed or
// the socket close error, and no operation redials afterwards.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	s := c.sock
	c.sock = nil
	c.mu.Unlock()
	if s == nil {
		return nil
	}
	return s.close()
}

// rand64 advances the jitter stream (splitmix64): deterministic for a
// fixed seed, so tests can replay exact backoff schedules.
func (c *Conn) rand64() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jitter += 0x9e3779b97f4a7c15
	z := c.jitter
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// backoff returns the wait before redial pass n (0-based): capped
// exponential plus jitter in [0, base).
func (c *Conn) backoff(pass int) time.Duration {
	base, max := c.opts.BackoffBase, c.opts.BackoffMax
	d := base
	for i := 0; i < pass && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d + time.Duration(c.rand64()%uint64(base))
}

// nextAddr advances the round-robin cursor. After a socket dies the
// cursor already points past its address, so the first redial attempt
// lands on the next daemon in the list — failover before retry.
func (c *Conn) nextAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addr := c.addrs[c.next%len(c.addrs)]
	c.next++
	return addr
}

// dialOnce makes one failover pass over the address list with no
// backoff: the fail-fast policy of Dial itself.
func (c *Conn) dialOnce() (*socket, error) {
	var lastErr error
	for range c.addrs {
		network, target := ParseAddr(c.nextAddr())
		nc, err := net.DialTimeout(network, target, c.opts.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		return newSocket(nc), nil
	}
	return nil, transport(lastErr)
}

// redial makes up to DialPasses failover passes, sleeping the backoff
// schedule between passes. Callers must not hold c.mu.
func (c *Conn) redial(ctx context.Context) (*socket, error) {
	var lastErr error
	for pass := 0; pass < c.opts.DialPasses; pass++ {
		if pass > 0 {
			if err := c.opts.Sleep(ctx, c.backoff(pass-1)); err != nil {
				return nil, err
			}
		}
		s, err := c.dialOnce()
		if err == nil {
			return s, nil
		}
		lastErr = err
	}
	return nil, transport(lastErr)
}

// socket returns the live socket, redialing (single-flight) if the
// previous one died. Concurrent callers wait for the in-flight dial
// and then re-check rather than dog-piling the daemons.
func (c *Conn) socket(ctx context.Context) (*socket, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if s := c.sock; s != nil && s.alive() {
			c.mu.Unlock()
			return s, nil
		}
		if c.dialing {
			done := c.dialDone
			c.mu.Unlock()
			select {
			case <-done:
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		c.dialing = true
		c.dialDone = make(chan struct{})
		first := !c.connected
		c.mu.Unlock()

		s, err := c.redial(ctx)

		c.mu.Lock()
		c.dialing = false
		close(c.dialDone)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		if c.closed {
			c.mu.Unlock()
			s.close()
			return nil, ErrClosed
		}
		c.sock = s
		c.connected = true
		if !first {
			c.redials++
		}
		c.mu.Unlock()
		return s, nil
	}
}

// drop retires a dead socket so the next operation redials. Another
// caller may have replaced it already; only the current one is cleared.
func (c *Conn) drop(s *socket) {
	c.mu.Lock()
	if c.sock == s {
		c.sock = nil
	}
	c.mu.Unlock()
	s.close()
}

// reqCtx applies the per-request deadline policy: a context that
// already has a deadline is respected; otherwise CallTimeout bounds the
// exchange (negative disables).
func (c *Conn) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.opts.CallTimeout < 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.opts.CallTimeout)
}

// Call performs one synchronous request and returns its single reply
// frame. Transport failures retry on a fresh socket (failover +
// backoff) up to DialPasses times — every synchronous op in the
// protocol is idempotent, so a request that died in flight is safe to
// repeat. A KindError reply is surfaced as a *RemoteError; the total
// exchange is bounded by CallTimeout when ctx carries no deadline.
func (c *Conn) Call(ctx context.Context, req wire.Request) (wire.Response, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	var lastErr error
	for attempt := 0; attempt < c.opts.DialPasses; attempt++ {
		s, err := c.socket(ctx)
		if err != nil {
			return wire.Response{}, err
		}
		resp, err := s.call(ctx, req)
		if err == nil {
			return resp, nil
		}
		if !IsTransport(err) {
			// Remote rejection or context expiry: retrying cannot help.
			return wire.Response{}, err
		}
		c.drop(s)
		lastErr = err
	}
	return wire.Response{}, lastErr
}

// Ping round-trips the OpPing health check; nil means a live daemon
// answered on a validated connection.
func (c *Conn) Ping(ctx context.Context) error {
	_, err := c.Call(ctx, wire.Request{Op: wire.OpPing})
	return err
}

// Stream performs one streaming request (OpPlan), invoking frame for
// every KindResult until the server's KindDone. One socket serves the
// whole stream: if the transport dies mid-stream a *TransportError is
// returned (after the next operation's redial the caller resubmits what
// it has not yet received — the caller, not the Conn, knows which
// results were delivered). Cancelling ctx — or a frame callback error —
// sends a best-effort OpCancel and keeps draining the exchange to its
// terminal frame so the connection's multiplexing stays healthy, then
// returns the cancellation cause. A KindError terminal frame returns a
// *RemoteError.
func (c *Conn) Stream(ctx context.Context, req wire.Request, frame func(wire.Response) error) error {
	s, err := c.socket(ctx)
	if err != nil {
		return err
	}
	err = s.stream(ctx, req, frame)
	if IsTransport(err) {
		c.drop(s)
	}
	return err
}

// socket is one live transport: a net.Conn, its read loop, and the
// pending-exchange table. A Conn replaces its socket on failure; the
// exchange machinery below is unchanged from the single-socket client.
type socket struct {
	nc  net.Conn
	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan wire.Response
	err     error
	closed  chan struct{} // closed when the read loop exits
}

func newSocket(nc net.Conn) *socket {
	s := &socket{
		nc:      nc,
		pending: make(map[uint64]chan wire.Response),
		closed:  make(chan struct{}),
	}
	go s.readLoop()
	return s
}

// alive reports whether the read loop is still running.
func (s *socket) alive() bool {
	select {
	case <-s.closed:
		return false
	default:
		return true
	}
}

func (s *socket) close() error { return s.nc.Close() }

// fatal returns the error that terminated the read loop as a transport
// error.
func (s *socket) fatal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return transport(s.err)
}

// readLoop routes incoming frames to their exchange's channel. A
// decode or transport error terminates the socket: the loop records
// the error and closes the broadcast channel every waiter selects on.
func (s *socket) readLoop() {
	for {
		var resp wire.Response
		if err := wire.ReadFrame(s.nc, &resp); err != nil {
			s.mu.Lock()
			s.err = err
			close(s.closed)
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		ch := s.pending[resp.ID]
		if resp.Kind != wire.KindResult {
			// A terminal frame (done/reply/error) ends the exchange.
			delete(s.pending, resp.ID)
		}
		s.mu.Unlock()
		if ch != nil {
			// call buffers its single reply and stream drains to the
			// terminal frame before abandoning its channel, so this send
			// cannot block the loop indefinitely.
			ch <- resp
		}
	}
}

// send registers a new exchange and writes its request frame. buffered
// sizes the exchange channel: 1 for single-reply calls, larger for
// streams so the read loop keeps flowing while the consumer works.
func (s *socket) send(req wire.Request, buffered int) (chan wire.Response, uint64, error) {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return nil, 0, transport(err)
	}
	s.nextID++
	id := s.nextID
	ch := make(chan wire.Response, buffered)
	s.pending[id] = ch
	s.mu.Unlock()

	req.V = wire.ProtocolVersion
	req.ID = id
	s.wmu.Lock()
	err := wire.WriteFrame(s.nc, req)
	s.wmu.Unlock()
	if err != nil {
		s.forget(id)
		return nil, 0, transport(err)
	}
	return ch, id, nil
}

// forget abandons an exchange: late frames for the ID are dropped by
// the read loop.
func (s *socket) forget(id uint64) {
	s.mu.Lock()
	delete(s.pending, id)
	s.mu.Unlock()
}

// call performs one synchronous exchange on this socket.
func (s *socket) call(ctx context.Context, req wire.Request) (wire.Response, error) {
	ch, id, err := s.send(req, 1)
	if err != nil {
		return wire.Response{}, err
	}
	select {
	case resp := <-ch:
		if resp.Kind == wire.KindError {
			return wire.Response{}, &RemoteError{Msg: resp.Err}
		}
		return resp, nil
	case <-ctx.Done():
		s.forget(id)
		return wire.Response{}, ctx.Err()
	case <-s.closed:
		return wire.Response{}, s.fatal()
	}
}

// stream performs one streaming exchange on this socket; see
// Conn.Stream for the contract.
func (s *socket) stream(ctx context.Context, req wire.Request, frame func(wire.Response) error) error {
	ch, id, err := s.send(req, 64)
	if err != nil {
		return err
	}
	done := ctx.Done()
	var cause error // first cancellation/callback error; wins over later frames
	abandon := func(err error) {
		if cause != nil {
			return
		}
		cause = err
		done = nil // drain on frames alone from here
		s.wmu.Lock()
		// Best-effort: if the cancel frame cannot be written the read
		// loop is about to fail and end the drain anyway.
		_ = wire.WriteFrame(s.nc, wire.Request{V: wire.ProtocolVersion, Op: wire.OpCancel, Target: id})
		s.wmu.Unlock()
	}
	for {
		select {
		case resp := <-ch:
			switch resp.Kind {
			case wire.KindDone:
				if cause != nil {
					return cause
				}
				return nil
			case wire.KindError:
				if cause != nil {
					return cause
				}
				return &RemoteError{Msg: resp.Err}
			default:
				if cause != nil {
					continue // draining after cancellation
				}
				if err := frame(resp); err != nil {
					abandon(err)
				}
			}
		case <-done:
			abandon(ctx.Err())
			// Keep draining: the terminal frame (or connection close)
			// ends the loop.
		case <-s.closed:
			if cause != nil {
				return cause
			}
			return s.fatal()
		}
	}
}
