// Package stats provides small statistical helpers used throughout the
// simulator: event counters, running means, and energy-delay arithmetic.
//
// The simulator is single-threaded per run, so none of these types are
// synchronized; experiment-level parallelism runs independent simulations
// in separate goroutines with separate stat instances.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns c/other as a float64, or 0 when other is zero.
func (c *Counter) Ratio(other *Counter) float64 {
	if other.n == 0 {
		return 0
	}
	return float64(c.n) / float64(other.n)
}

// Mean tracks a running arithmetic mean without storing samples
// (Welford's algorithm, which is numerically stable for long runs).
type Mean struct {
	count uint64
	mean  float64
	m2    float64
}

// Observe adds one sample.
func (m *Mean) Observe(x float64) {
	m.count++
	d := x - m.mean
	m.mean += d / float64(m.count)
	m.m2 += d * (x - m.mean)
}

// ObserveWeighted adds a sample with an integral weight, equivalent to
// observing x weight times.
func (m *Mean) ObserveWeighted(x float64, weight uint64) {
	if weight == 0 {
		return
	}
	// Chan et al. parallel-merge form for a constant block.
	wc := float64(weight)
	tc := float64(m.count) + wc
	d := x - m.mean
	m.mean += d * wc / tc
	m.m2 += d * d * float64(m.count) * wc / tc
	m.count += weight
}

// Count returns the number of samples observed.
func (m *Mean) Count() uint64 { return m.count }

// Value returns the mean of the observed samples (0 with no samples).
func (m *Mean) Value() float64 { return m.mean }

// Variance returns the population variance (0 with fewer than 2 samples).
func (m *Mean) Variance() float64 {
	if m.count < 2 {
		return 0
	}
	return m.m2 / float64(m.count)
}

// StdDev returns the population standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// EDP is an energy-delay product measurement for one simulation.
type EDP struct {
	EnergyJ float64 // total energy in joules
	Cycles  uint64  // execution time in cycles
}

// Product returns energy × delay (joule-cycles). Frequency is constant
// across compared configurations, so cycles stand in for seconds.
func (e EDP) Product() float64 { return e.EnergyJ * float64(e.Cycles) }

// RelativeTo returns this EDP normalized to a baseline (1.0 = equal,
// lower = better). Returns +Inf for a zero baseline product.
func (e EDP) RelativeTo(base EDP) float64 {
	bp := base.Product()
	if bp == 0 {
		return math.Inf(1)
	}
	return e.Product() / bp
}

// ReductionPct returns the percentage reduction of this EDP versus the
// baseline: 100 × (1 − this/base). Positive means improvement.
func (e EDP) ReductionPct(base EDP) float64 {
	return 100 * (1 - e.RelativeTo(base))
}

// Slowdown returns the fractional increase in cycles relative to base
// (0.03 = 3 % performance degradation).
func (e EDP) Slowdown(base EDP) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return float64(e.Cycles)/float64(base.Cycles) - 1
}

// Percentile returns the p-th percentile (0..100) of the sample slice
// using linear interpolation. The input is not modified.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// GeoMean returns the geometric mean of positive samples; zero or
// negative entries make the result 0.
func GeoMean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range samples {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(samples)))
}

// FormatPct renders a fraction as a fixed-width percentage string, e.g.
// 0.123 -> "12.3%". Used by the experiment table printers.
func FormatPct(frac float64) string {
	return fmt.Sprintf("%5.1f%%", 100*frac)
}
