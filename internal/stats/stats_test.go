package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c, d Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("Value = %d, want 10", c.Value())
	}
	d.Add(40)
	if got := c.Ratio(&d); got != 0.25 {
		t.Fatalf("Ratio = %v, want 0.25", got)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("Reset left %d", c.Value())
	}
}

func TestCounterRatioZeroDenominator(t *testing.T) {
	var c, d Counter
	c.Add(5)
	if got := c.Ratio(&d); got != 0 {
		t.Fatalf("Ratio with zero denominator = %v, want 0", got)
	}
}

func TestMeanMatchesDirectComputation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var m Mean
	var sum float64
	const n = 1000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		sum += xs[i]
		m.Observe(xs[i])
	}
	want := sum / n
	if math.Abs(m.Value()-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", m.Value(), want)
	}
	var sq float64
	for _, x := range xs {
		sq += (x - want) * (x - want)
	}
	if math.Abs(m.Variance()-sq/n) > 1e-6 {
		t.Fatalf("variance = %v, want %v", m.Variance(), sq/n)
	}
}

func TestMeanWeightedEquivalence(t *testing.T) {
	var a, b Mean
	vals := []struct {
		x float64
		w uint64
	}{{2, 3}, {5, 1}, {-1, 4}, {7.5, 2}}
	for _, v := range vals {
		a.ObserveWeighted(v.x, v.w)
		for i := uint64(0); i < v.w; i++ {
			b.Observe(v.x)
		}
	}
	if a.Count() != b.Count() {
		t.Fatalf("count %d != %d", a.Count(), b.Count())
	}
	if math.Abs(a.Value()-b.Value()) > 1e-9 {
		t.Fatalf("weighted mean %v != repeated mean %v", a.Value(), b.Value())
	}
	if math.Abs(a.Variance()-b.Variance()) > 1e-9 {
		t.Fatalf("weighted var %v != repeated var %v", a.Variance(), b.Variance())
	}
}

func TestMeanWeightedZeroWeightIsNoop(t *testing.T) {
	var m Mean
	m.Observe(3)
	m.ObserveWeighted(100, 0)
	if m.Count() != 1 || m.Value() != 3 {
		t.Fatalf("zero weight changed state: count=%d mean=%v", m.Count(), m.Value())
	}
}

func TestEDPProductAndReduction(t *testing.T) {
	base := EDP{EnergyJ: 2, Cycles: 1000}
	improved := EDP{EnergyJ: 1.5, Cycles: 1100}
	rel := improved.RelativeTo(base)
	want := (1.5 * 1100) / (2 * 1000)
	if math.Abs(rel-want) > 1e-12 {
		t.Fatalf("RelativeTo = %v, want %v", rel, want)
	}
	if math.Abs(improved.ReductionPct(base)-(100*(1-want))) > 1e-9 {
		t.Fatalf("ReductionPct mismatch")
	}
	if math.Abs(improved.Slowdown(base)-0.1) > 1e-12 {
		t.Fatalf("Slowdown = %v, want 0.1", improved.Slowdown(base))
	}
}

func TestEDPZeroBaseline(t *testing.T) {
	e := EDP{EnergyJ: 1, Cycles: 1}
	if !math.IsInf(e.RelativeTo(EDP{}), 1) {
		t.Fatal("expected +Inf for zero baseline")
	}
	if e.Slowdown(EDP{}) != 0 {
		t.Fatal("expected 0 slowdown for zero-cycle baseline")
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{4, 1, 3, 2}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {-5, 1}, {150, 4}}
	for _, c := range cases {
		if got := Percentile(s, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be reordered.
	if s[0] != 4 || s[3] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean should be 0")
	}
	if GeoMean([]float64{1, 0, 2}) != 0 {
		t.Fatal("GeoMean with zero entry should be 0")
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(0.123); got != " 12.3%" {
		t.Fatalf("FormatPct = %q", got)
	}
}

// Property: a Mean's value always lies within [min, max] of its samples.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var m Mean
		lo, hi := math.Inf(1), math.Inf(-1)
		ok := false
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			ok = true
			m.Observe(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if !ok {
			return true
		}
		return m.Value() >= lo-1e-6 && m.Value() <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		var s []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s = append(s, x)
			}
		}
		if len(s) == 0 {
			return true
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(s, pa) <= Percentile(s, pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
