package cpu

import (
	"resizecache/internal/bpred"
	"resizecache/internal/cache"
	"resizecache/internal/workload"
)

// OutOfOrder is the 4-wide out-of-order engine with a non-blocking
// d-cache. Instruction timing follows the dataflow model: an instruction
// issues when its producers complete and resources (ROB slot, LSQ slot)
// are available; independent d-misses overlap up to the d-cache's MSHR
// capacity; retirement is in order and width-limited.
type OutOfOrder struct {
	Cfg   Config
	IC    cache.Level
	DC    cache.Level
	Bpred *bpred.Stats
	cu    *controlUnit
}

// NewOutOfOrder builds the engine; the d-cache should be configured with
// MSHRs (non-blocking) to match the paper's configuration.
func NewOutOfOrder(cfg Config, ic, dc cache.Level, bp bpred.Predictor) (*OutOfOrder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := &bpred.Stats{P: bp}
	return &OutOfOrder{Cfg: cfg, IC: ic, DC: dc, Bpred: st, cu: newControlUnit(st)}, nil
}

// Name implements Engine.
func (o *OutOfOrder) Name() string { return "out-of-order/nonblocking" }

// Run implements Engine.
func (o *OutOfOrder) Run(src workload.Source, maxInstr uint64) Result {
	var (
		res   Result
		ev    workload.Event
		fetch = newFetchUnit(o.IC, o.Cfg.Width)

		rob        = make([]uint64, o.Cfg.ROBEntries) // completion time ring
		retire     = make([]uint64, o.Cfg.ROBEntries) // retire time ring
		lsqRetire  = make([]uint64, o.Cfg.LSQEntries) // memop retire ring
		memopCount uint64

		lastRetire    uint64
		retireInCycle int
	)

	for res.Instructions < maxInstr && src.Next(&ev) {
		i := res.Instructions
		res.Instructions++

		o.cu.observe(ev.PC)
		fetched := fetch.fetch(ev.PC, &res.Activity)

		// Dispatch: needs decode plus a free ROB entry (the instruction
		// ROBEntries back must have retired).
		dispatch := fetched + o.Cfg.DecodeLatency
		if i >= uint64(o.Cfg.ROBEntries) {
			if t := retire[i%uint64(o.Cfg.ROBEntries)]; t > dispatch {
				dispatch = t
			}
		}
		res.Activity.ROBInserts++

		// Issue: producers must have completed. Producers older than the
		// ROB window have necessarily retired.
		ready := dispatch
		for _, dep := range [2]int32{ev.Dep1, ev.Dep2} {
			if dep > 0 && uint64(dep) <= i && dep <= int32(o.Cfg.ROBEntries) {
				if t := rob[(i-uint64(dep))%uint64(o.Cfg.ROBEntries)]; t > ready {
					ready = t
				}
				res.Activity.RegReads++
			}
		}

		var complete uint64
		switch ev.Kind {
		case workload.KindLoad, workload.KindStore:
			// LSQ slot: the memop LSQEntries back must have retired.
			if memopCount >= uint64(o.Cfg.LSQEntries) {
				if t := lsqRetire[memopCount%uint64(o.Cfg.LSQEntries)]; t > ready {
					ready = t
				}
			}
			res.Activity.LSQInserts++
			done := o.DC.Access(ready, ev.Addr, ev.Kind == workload.KindStore)
			if ev.Kind == workload.KindLoad {
				res.Activity.Loads++
				complete = done
				res.Activity.RegWrites++
			} else {
				// Stores retire from the store buffer: their miss latency
				// is not on the dependence path, but the access still
				// occupies MSHR/writeback resources via the cache model.
				res.Activity.Stores++
				complete = ready + 1
			}
		case workload.KindBranch:
			complete = ready + uint64(ev.Lat)
			o.cu.branch(ev.PC, ev.Taken, complete, o.Cfg.MispredictPenalty, fetch, &res.Activity)
		case workload.KindCall:
			complete = ready + 1
			o.cu.call(ev.PC, fetch, &res.Activity)
		case workload.KindReturn:
			complete = ready + 1
			o.cu.ret(complete, o.Cfg.MispredictPenalty, fetch, &res.Activity)
		case workload.KindFloat:
			res.Activity.FloatOps++
			complete = ready + uint64(ev.Lat)
			res.Activity.RegWrites++
		default:
			res.Activity.IntOps++
			complete = ready + uint64(ev.Lat)
			res.Activity.RegWrites++
		}

		rob[i%uint64(o.Cfg.ROBEntries)] = complete

		// In-order, width-limited retirement.
		rt := complete
		if rt < lastRetire {
			rt = lastRetire
		}
		if rt == lastRetire {
			retireInCycle++
			if retireInCycle >= o.Cfg.Width {
				rt++
				retireInCycle = 0
			}
		} else {
			retireInCycle = 1
		}
		lastRetire = rt
		retire[i%uint64(o.Cfg.ROBEntries)] = rt
		if ev.Kind == workload.KindLoad || ev.Kind == workload.KindStore {
			lsqRetire[memopCount%uint64(o.Cfg.LSQEntries)] = rt
			memopCount++
		}
	}

	res.Cycles = lastRetire + 1
	res.BranchAccuracy = o.Bpred.Accuracy()
	return res
}
