package cpu

import (
	"resizecache/internal/bpred"
	"resizecache/internal/cache"
	"resizecache/internal/workload"
)

// OutOfOrder is the 4-wide out-of-order engine with a non-blocking
// d-cache. Instruction timing follows the dataflow model: an instruction
// issues when its producers complete and resources (ROB slot, LSQ slot)
// are available; independent d-misses overlap up to the d-cache's MSHR
// capacity; retirement is in order and width-limited.
type OutOfOrder struct {
	Cfg   Config
	IC    cache.Level
	DC    cache.Level
	Bpred *bpred.Stats
	cu    *controlUnit
}

// NewOutOfOrder builds the engine; the d-cache should be configured with
// MSHRs (non-blocking) to match the paper's configuration.
func NewOutOfOrder(cfg Config, ic, dc cache.Level, bp bpred.Predictor) (*OutOfOrder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := &bpred.Stats{P: bp}
	return &OutOfOrder{Cfg: cfg, IC: ic, DC: dc, Bpred: st, cu: newControlUnit(st)}, nil
}

// Name implements Engine.
func (o *OutOfOrder) Name() string { return "out-of-order/nonblocking" }

// Run implements Engine.
func (o *OutOfOrder) Run(src workload.Source, maxInstr uint64) Result {
	return o.RunWindow(src, maxInstr, 0)
}

// RunWindow executes up to maxInstr instructions with every pipeline
// clock starting at absolute cycle base, and returns this window's
// timing in res (res.Cycles is the absolute end cycle). The sampled
// execution mode chains detailed windows by passing the previous
// window's end cycle as the next base, so cache state — which carries
// absolute-cycle timestamps — stays consistent across windows. Pipeline
// structures (ROB/LSQ rings) start empty each window; only the control
// unit's predictor state persists on the engine.
//
//simlint:hotpath the per-instruction loop; prologue allocations are once per run
func (o *OutOfOrder) RunWindow(src workload.Source, maxInstr uint64, base uint64) Result {
	// Ring sizes and widths are loop-invariant; hoisting them (and
	// tracking wrapping ring indices instead of taking `%` by a
	// non-constant size several times per instruction) keeps the
	// per-instruction step in registers. robIdx == i % robN and
	// lsqIdx == memopCount % lsqN throughout.
	var (
		res   Result
		ev    workload.Event
		fetch = newFetchUnit(o.IC, o.Cfg.Width)

		robN = o.Cfg.ROBEntries
		lsqN = o.Cfg.LSQEntries
		// Completion, retire, and memop-retire time rings.
		//simlint:allow once-per-run prologue, outside the per-instruction loop
		rob = make([]uint64, robN)
		//simlint:allow once-per-run prologue, outside the per-instruction loop
		retire = make([]uint64, robN)
		//simlint:allow once-per-run prologue, outside the per-instruction loop
		lsqRetire = make([]uint64, lsqN)

		robIdx     int
		lsqIdx     int
		memopCount uint64

		decodeLat = o.Cfg.DecodeLatency
		width     = o.Cfg.Width

		lastRetire    = base
		retireInCycle int
	)
	fetch.fetchTime = base

	for res.Instructions < maxInstr && src.Next(&ev) {
		i := res.Instructions
		res.Instructions++

		o.cu.observe(ev.PC)
		fetched := fetch.fetch(ev.PC, &res.Activity)

		// Dispatch: needs decode plus a free ROB entry (the instruction
		// ROBEntries back must have retired).
		dispatch := fetched + decodeLat
		if i >= uint64(robN) {
			if t := retire[robIdx]; t > dispatch {
				dispatch = t
			}
		}
		res.Activity.ROBInserts++

		// Issue: producers must have completed. Producers older than the
		// ROB window have necessarily retired. Unrolled over the two
		// operands so no per-instruction operand array materializes.
		ready := dispatch
		if dep := ev.Dep1; dep > 0 && uint64(dep) <= i && dep <= int32(robN) {
			j := robIdx - int(dep)
			if j < 0 {
				j += robN
			}
			if t := rob[j]; t > ready {
				ready = t
			}
			res.Activity.RegReads++
		}
		if dep := ev.Dep2; dep > 0 && uint64(dep) <= i && dep <= int32(robN) {
			j := robIdx - int(dep)
			if j < 0 {
				j += robN
			}
			if t := rob[j]; t > ready {
				ready = t
			}
			res.Activity.RegReads++
		}

		var complete uint64
		switch ev.Kind {
		case workload.KindLoad, workload.KindStore:
			// LSQ slot: the memop LSQEntries back must have retired.
			if memopCount >= uint64(lsqN) {
				if t := lsqRetire[lsqIdx]; t > ready {
					ready = t
				}
			}
			res.Activity.LSQInserts++
			done := o.DC.Access(ready, ev.Addr, ev.Kind == workload.KindStore)
			if ev.Kind == workload.KindLoad {
				res.Activity.Loads++
				complete = done
				res.Activity.RegWrites++
			} else {
				// Stores retire from the store buffer: their miss latency
				// is not on the dependence path, but the access still
				// occupies MSHR/writeback resources via the cache model.
				res.Activity.Stores++
				complete = ready + 1
			}
		case workload.KindBranch:
			complete = ready + uint64(ev.Lat)
			o.cu.branch(ev.PC, ev.Taken, complete, o.Cfg.MispredictPenalty, fetch, &res.Activity)
		case workload.KindCall:
			complete = ready + 1
			o.cu.call(ev.PC, fetch, &res.Activity)
		case workload.KindReturn:
			complete = ready + 1
			o.cu.ret(complete, o.Cfg.MispredictPenalty, fetch, &res.Activity)
		case workload.KindFloat:
			res.Activity.FloatOps++
			complete = ready + uint64(ev.Lat)
			res.Activity.RegWrites++
		default:
			res.Activity.IntOps++
			complete = ready + uint64(ev.Lat)
			res.Activity.RegWrites++
		}

		rob[robIdx] = complete

		// In-order, width-limited retirement.
		rt := complete
		if rt < lastRetire {
			rt = lastRetire
		}
		if rt == lastRetire {
			retireInCycle++
			if retireInCycle >= width {
				rt++
				retireInCycle = 0
			}
		} else {
			retireInCycle = 1
		}
		lastRetire = rt
		retire[robIdx] = rt
		if robIdx++; robIdx == robN {
			robIdx = 0
		}
		if ev.Kind == workload.KindLoad || ev.Kind == workload.KindStore {
			lsqRetire[lsqIdx] = rt
			memopCount++
			if lsqIdx++; lsqIdx == lsqN {
				lsqIdx = 0
			}
		}
	}

	res.Cycles = lastRetire + 1
	res.BranchAccuracy = o.Bpred.Accuracy()
	return res
}
