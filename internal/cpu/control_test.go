package cpu

import (
	"testing"

	"resizecache/internal/bpred"
	"resizecache/internal/workload"
)

// callReturnSource emits call/return pairs interleaved with ALU ops.
type callReturnSource struct {
	i     int
	depth int
}

func (s *callReturnSource) Next(ev *workload.Event) bool {
	pc := uint64(0x400000 + (s.i%512)*4)
	switch {
	case s.i%8 == 0 && s.depth < 4:
		*ev = workload.Event{PC: pc, Kind: workload.KindCall, Taken: true, Lat: 1}
		s.depth++
	case s.i%8 == 4 && s.depth > 0:
		*ev = workload.Event{PC: pc, Kind: workload.KindReturn, Taken: true, Lat: 1}
		s.depth--
	default:
		*ev = workload.Event{PC: pc, Kind: workload.KindInt, Lat: 1}
	}
	s.i++
	return true
}

func TestCallsAndReturnsCounted(t *testing.T) {
	ic, dc := l1Pair(t, 8)
	e, _ := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
	res := e.Run(&callReturnSource{}, 20000)
	if res.Activity.RASOps == 0 {
		t.Fatal("no RAS operations recorded")
	}
	if res.Activity.BTBLookups == 0 {
		t.Fatal("no BTB lookups recorded")
	}
	// Balanced pairs: underflow mispredicts should be rare, so returns
	// predicted via the RAS cost no redirects and accuracy stays high.
	if res.Activity.Mispredicts > res.Activity.RASOps/10 {
		t.Fatalf("too many mispredicts on balanced call/return: %d", res.Activity.Mispredicts)
	}
}

func TestBTBWarmupRemovesTakenBubbles(t *testing.T) {
	// A hot loop of taken branches: after BTB warmup, correctly predicted
	// taken branches should not pay the BTB-miss bubble, so steady-state
	// throughput beats a stream of always-new branch PCs.
	run := func(hotLoop bool) uint64 {
		ic, dc := l1Pair(t, 8)
		e, _ := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
		src := &takenBranchSource{hot: hotLoop}
		return e.Run(src, 40000).Cycles
	}
	hot := run(true)
	cold := run(false)
	if float64(cold)/float64(hot) < 1.05 {
		t.Fatalf("BTB warmup has no effect: hot %d vs cold %d", hot, cold)
	}
}

type takenBranchSource struct {
	i   int
	hot bool
}

func (s *takenBranchSource) Next(ev *workload.Event) bool {
	var pc uint64
	if s.hot {
		pc = uint64(0x400000 + (s.i%64)*4) // small loop: BTB-resident
	} else {
		pc = uint64(0x400000 + s.i*4) // every branch PC fresh
	}
	if s.i%4 == 0 {
		*ev = workload.Event{PC: pc, Kind: workload.KindBranch, Taken: true, Lat: 1}
	} else {
		*ev = workload.Event{PC: pc, Kind: workload.KindInt, Lat: 1}
	}
	s.i++
	return true
}

func TestRASUnderflowMispredicts(t *testing.T) {
	// Returns without matching calls must be treated as mispredicts.
	ic, dc := l1Pair(t, 8)
	e, _ := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
	src := &returnsOnlySource{}
	res := e.Run(src, 4000)
	if res.Activity.Mispredicts == 0 {
		t.Fatal("underflowed returns should mispredict")
	}
}

type returnsOnlySource struct{ i int }

func (s *returnsOnlySource) Next(ev *workload.Event) bool {
	pc := uint64(0x400000 + (s.i%64)*4)
	if s.i%4 == 0 {
		*ev = workload.Event{PC: pc, Kind: workload.KindReturn, Taken: true, Lat: 1}
	} else {
		*ev = workload.Event{PC: pc, Kind: workload.KindInt, Lat: 1}
	}
	s.i++
	return true
}

func TestGeneratorCallDepthBalanced(t *testing.T) {
	g := workload.NewGenerator(workload.MustGet("gcc"))
	var ev workload.Event
	calls, rets := 0, 0
	for i := 0; i < 300000; i++ {
		g.Next(&ev)
		switch ev.Kind {
		case workload.KindCall:
			calls++
		case workload.KindReturn:
			rets++
		}
	}
	if calls == 0 || rets == 0 {
		t.Fatalf("no calls/returns generated: %d/%d", calls, rets)
	}
	if calls < rets {
		t.Fatalf("returns exceed calls: %d vs %d", calls, rets)
	}
	if calls-rets > 48 {
		t.Fatalf("call depth unbounded: %d vs %d", calls, rets)
	}
}
