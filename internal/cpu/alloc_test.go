package cpu

import (
	"testing"

	"resizecache/internal/bpred"
	"resizecache/internal/workload"
)

// allocSource cycles a fixed event mix without allocating.
type allocSource struct {
	evs []workload.Event
	i   int
}

func (s *allocSource) Next(ev *workload.Event) bool {
	*ev = s.evs[s.i]
	if s.i++; s.i == len(s.evs) {
		s.i = 0
	}
	return true
}

func allocMix() []workload.Event {
	return []workload.Event{
		{PC: 0x1000, Kind: workload.KindLoad, Addr: 0x2000_0000, Dep1: 2, Lat: 1},
		{PC: 0x1004, Kind: workload.KindInt, Dep1: 1, Dep2: 3, Lat: 1},
		{PC: 0x1008, Kind: workload.KindStore, Addr: 0x2000_4000, Dep1: 1, Lat: 1},
		{PC: 0x100c, Kind: workload.KindBranch, Taken: true, Dep1: 2, Lat: 1},
		{PC: 0x2000, Kind: workload.KindCall, Taken: true, Dep1: 1, Lat: 1},
		{PC: 0x3000, Kind: workload.KindFloat, Dep1: 4, Dep2: 1, Lat: 4},
		{PC: 0x3004, Kind: workload.KindReturn, Taken: true, Dep1: 1, Lat: 1},
		{PC: 0x1010, Kind: workload.KindInt, Dep1: 1, Lat: 1},
	}
}

// TestOutOfOrderStepZeroAllocs locks in the per-instruction step's
// allocation behaviour: a Run's allocations are a fixed setup cost
// (rings, fetch unit, predictor tables) independent of how many
// instructions execute — i.e. the per-instruction step allocates zero
// bytes. Asserted by comparing total allocations of a short and a 16×
// longer run.
func TestOutOfOrderStepZeroAllocs(t *testing.T) {
	run := func(n uint64) float64 {
		src := &allocSource{evs: allocMix()}
		ic := &fixedLevel{lat: 1}
		dc := &fixedLevel{lat: 1}
		return testing.AllocsPerRun(3, func() {
			eng, err := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
			if err != nil {
				t.Fatal(err)
			}
			eng.Run(src, n)
		})
	}
	shortRun, longRun := run(2_000), run(32_000)
	if longRun != shortRun {
		t.Fatalf("out-of-order Run allocations grew with instruction count: %.1f for 2K instrs vs %.1f for 32K; the per-instruction step must not allocate", shortRun, longRun)
	}
}

// TestInOrderStepZeroAllocs is the same guard for the in-order engine.
func TestInOrderStepZeroAllocs(t *testing.T) {
	run := func(n uint64) float64 {
		src := &allocSource{evs: allocMix()}
		ic := &fixedLevel{lat: 1}
		dc := &fixedLevel{lat: 1}
		return testing.AllocsPerRun(3, func() {
			eng, err := NewInOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
			if err != nil {
				t.Fatal(err)
			}
			eng.Run(src, n)
		})
	}
	shortRun, longRun := run(2_000), run(32_000)
	if longRun != shortRun {
		t.Fatalf("in-order Run allocations grew with instruction count: %.1f for 2K instrs vs %.1f for 32K; the per-instruction step must not allocate", shortRun, longRun)
	}
}
