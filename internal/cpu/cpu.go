// Package cpu provides the two processor timing models the paper
// compares resizing strategies on:
//
//   - an out-of-order issue engine with a non-blocking d-cache: 4-wide
//     fetch/retire, 64-entry ROB, 32-entry LSQ, dataflow issue bounded by
//     register dependences, and MSHR-limited memory-level parallelism —
//     this engine hides most d-cache miss latency but exposes i-cache
//     misses and mispredictions at the fetch front-end;
//
//   - an in-order issue engine with a blocking d-cache: the pipeline
//     stalls for the full latency of every d-cache miss, so d-miss
//     latency lies directly on the critical path.
//
// Both are trace-driven cycle models: each dynamic instruction's fetch,
// dispatch, execute, and retire times are computed against finite
// window/queue resources, which is exactly the latency-exposure structure
// the paper's Section 4.2 argument depends on.
package cpu

import (
	"fmt"

	"resizecache/internal/bpred"
	"resizecache/internal/cache"
	"resizecache/internal/workload"
)

// Config sets the pipeline parameters (paper Table 2 defaults).
type Config struct {
	Width             int    // fetch/issue/retire width
	ROBEntries        int    // reorder buffer
	LSQEntries        int    // load/store queue
	DecodeLatency     uint64 // fetch -> dispatch
	MispredictPenalty uint64 // redirect bubble after branch resolution
}

// DefaultConfig returns the paper's base pipeline (4-wide, ROB 64,
// LSQ 32).
func DefaultConfig() Config {
	return Config{Width: 4, ROBEntries: 64, LSQEntries: 32, DecodeLatency: 3, MispredictPenalty: 7}
}

// Validate reports the first invalid parameter.
//
//simlint:coldpath validation, once per run
func (c Config) Validate() error {
	switch {
	case c.Width <= 0:
		return fmt.Errorf("cpu: width %d", c.Width)
	case c.ROBEntries <= 0:
		return fmt.Errorf("cpu: ROB %d", c.ROBEntries)
	case c.LSQEntries <= 0:
		return fmt.Errorf("cpu: LSQ %d", c.LSQEntries)
	}
	return nil
}

// Activity counts the per-structure events the energy model multiplies
// by per-access energies (Wattch-style activity factors).
type Activity struct {
	IntOps       uint64
	FloatOps     uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
	FetchGroups  uint64
	ROBInserts   uint64
	LSQInserts   uint64
	RegReads     uint64
	RegWrites    uint64
	BpredLookups uint64
	BTBLookups   uint64
	RASOps       uint64
}

// Add accumulates b's counts into a. The sampled execution mode sums
// per-window activities into a whole-run aggregate before energy
// accounting; TestActivityAddScaledCoverEveryField pins that both
// helpers cover every field.
func (a *Activity) Add(b Activity) {
	a.IntOps += b.IntOps
	a.FloatOps += b.FloatOps
	a.Loads += b.Loads
	a.Stores += b.Stores
	a.Branches += b.Branches
	a.Mispredicts += b.Mispredicts
	a.FetchGroups += b.FetchGroups
	a.ROBInserts += b.ROBInserts
	a.LSQInserts += b.LSQInserts
	a.RegReads += b.RegReads
	a.RegWrites += b.RegWrites
	a.BpredLookups += b.BpredLookups
	a.BTBLookups += b.BTBLookups
	a.RASOps += b.RASOps
}

// Scaled returns every count multiplied by s, rounded half-up: the
// extrapolation from detailed-window measurements to a whole-run
// estimate in the sampled execution mode.
func (a Activity) Scaled(s float64) Activity {
	scale := func(v uint64) uint64 { return uint64(float64(v)*s + 0.5) }
	return Activity{
		IntOps:       scale(a.IntOps),
		FloatOps:     scale(a.FloatOps),
		Loads:        scale(a.Loads),
		Stores:       scale(a.Stores),
		Branches:     scale(a.Branches),
		Mispredicts:  scale(a.Mispredicts),
		FetchGroups:  scale(a.FetchGroups),
		ROBInserts:   scale(a.ROBInserts),
		LSQInserts:   scale(a.LSQInserts),
		RegReads:     scale(a.RegReads),
		RegWrites:    scale(a.RegWrites),
		BpredLookups: scale(a.BpredLookups),
		BTBLookups:   scale(a.BTBLookups),
		RASOps:       scale(a.RASOps),
	}
}

// Result is one simulation's timing outcome.
type Result struct {
	Instructions   uint64
	Cycles         uint64
	Activity       Activity
	BranchAccuracy float64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Engine runs a workload against an L1 i-cache and d-cache pair.
type Engine interface {
	// Run executes up to maxInstr instructions (or until the source is
	// exhausted) and returns the timing result.
	Run(src workload.Source, maxInstr uint64) Result
	// Name identifies the engine in reports.
	Name() string
}

// fetchUnit models the shared front-end: width-limited group fetch
// through the i-cache with misprediction redirects. Both engines use it,
// which keeps their i-side behaviour identical by construction (the
// paper's comparison isolates the d-side exposure difference).
type fetchUnit struct {
	ic        cache.Level
	width     int
	groupLeft int
	fetchTime uint64
	hitLat    uint64
}

//simlint:coldpath constructor, once per Run
func newFetchUnit(ic cache.Level, width int) *fetchUnit {
	return &fetchUnit{ic: ic, width: width, hitLat: 1}
}

// fetch returns the cycle at which the given instruction is available,
// accessing the i-cache once per fetch group. act counts fetch groups.
func (f *fetchUnit) fetch(pc uint64, act *Activity) uint64 {
	if f.groupLeft == 0 {
		f.groupLeft = f.width
		f.fetchTime++
		act.FetchGroups++
		done := f.ic.Access(f.fetchTime, pc, false)
		if done > f.fetchTime+f.hitLat {
			// I-cache miss: fetch stalls for the full latency — i-misses
			// are always on the critical path.
			f.fetchTime = done
		}
	}
	f.groupLeft--
	return f.fetchTime
}

// redirect restarts fetch at the given cycle (mispredicted branch
// resolved or taken-branch fetch break).
func (f *fetchUnit) redirect(at uint64) {
	if at > f.fetchTime {
		f.fetchTime = at
	}
	f.groupLeft = 0
}

// controlUnit owns the front-end's control-flow predictors: the
// direction predictor, the branch target buffer (a correctly-predicted
// taken branch still bubbles if its target is absent from the BTB), and
// the return-address stack for call/return pairs. Both engines share it
// so the strategy comparisons differ only in the d-side latency exposure.
type controlUnit struct {
	bp  *bpred.Stats
	btb *bpred.BTB
	ras *bpred.RAS

	btbMissPenalty uint64

	pendingPC  uint64 // taken control transfer awaiting its target
	hasPending bool
}

//simlint:coldpath constructor, once per engine
func newControlUnit(bp *bpred.Stats) *controlUnit {
	return &controlUnit{
		bp:             bp,
		btb:            bpred.NewBTB(9, 4), // 512-set 4-way
		ras:            bpred.NewRAS(8),
		btbMissPenalty: 2,
	}
}

// observe must be called with every instruction's PC before it is
// processed: it completes the deferred BTB update of the previous taken
// transfer (whose target is this instruction).
func (cu *controlUnit) observe(pc uint64) {
	if cu.hasPending {
		cu.btb.Update(cu.pendingPC, pc)
		cu.hasPending = false
	}
}

// lookupTarget models target prediction for a taken transfer at pc: a
// BTB hit redirects fetch with no bubble; a miss costs btbMissPenalty
// and schedules the entry's installation.
func (cu *controlUnit) lookupTarget(pc uint64, fetch *fetchUnit, act *Activity) {
	act.BTBLookups++
	if _, hit := cu.btb.Lookup(pc); hit {
		fetch.redirect(fetch.fetchTime)
	} else {
		fetch.redirect(fetch.fetchTime + cu.btbMissPenalty)
		cu.pendingPC = pc
		cu.hasPending = true
	}
}

// branch resolves a conditional branch completing at the given cycle and
// applies the front-end consequences. mispredictPenalty is the pipeline
// refill cost after resolution.
func (cu *controlUnit) branch(pc uint64, taken bool, complete uint64,
	mispredictPenalty uint64, fetch *fetchUnit, act *Activity) {
	act.Branches++
	act.BpredLookups++
	if !cu.bp.PredictAndTrain(pc, taken) {
		act.Mispredicts++
		fetch.redirect(complete + mispredictPenalty)
		return
	}
	if taken {
		cu.lookupTarget(pc, fetch, act)
	}
}

// call pushes the return address and redirects through the BTB.
func (cu *controlUnit) call(pc uint64, fetch *fetchUnit, act *Activity) {
	act.RASOps++
	cu.ras.Push(pc + 4)
	cu.lookupTarget(pc, fetch, act)
}

// ret pops the predicted return address; an underflowed stack is a
// target mispredict resolved at complete.
func (cu *controlUnit) ret(complete, mispredictPenalty uint64, fetch *fetchUnit, act *Activity) {
	act.RASOps++
	if _, ok := cu.ras.Pop(); ok {
		fetch.redirect(fetch.fetchTime)
	} else {
		act.Mispredicts++
		fetch.redirect(complete + mispredictPenalty)
	}
}
