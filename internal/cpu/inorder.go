package cpu

import (
	"resizecache/internal/bpred"
	"resizecache/internal/cache"
	"resizecache/internal/workload"
)

// window is the in-order engine's dependence-scoreboard depth.
const window = 64

// InOrder is the in-order issue engine with a blocking d-cache: an
// instruction issues only after all older instructions have issued and
// its producers have completed, and a d-cache miss stalls the pipeline
// for its full latency (the cache should be configured without MSHRs).
// This engine exposes d-miss latency directly to execution time, the
// regime in which the paper finds dynamic resizing clearly superior.
type InOrder struct {
	Cfg   Config
	IC    cache.Level
	DC    cache.Level
	Bpred *bpred.Stats
	cu    *controlUnit
}

// NewInOrder builds the engine.
func NewInOrder(cfg Config, ic, dc cache.Level, bp bpred.Predictor) (*InOrder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := &bpred.Stats{P: bp}
	return &InOrder{Cfg: cfg, IC: ic, DC: dc, Bpred: st, cu: newControlUnit(st)}, nil
}

// Name implements Engine.
func (e *InOrder) Name() string { return "in-order/blocking" }

// Run implements Engine.
func (e *InOrder) Run(src workload.Source, maxInstr uint64) Result {
	return e.RunWindow(src, maxInstr, 0)
}

// RunWindow executes up to maxInstr instructions with every pipeline
// clock starting at absolute cycle base; res.Cycles is the absolute end
// cycle. See OutOfOrder.RunWindow for the window-chaining contract.
//
//simlint:hotpath the per-instruction loop; prologue allocations are once per run
func (e *InOrder) RunWindow(src workload.Source, maxInstr uint64, base uint64) Result {
	var (
		res   Result
		ev    workload.Event
		fetch = newFetchUnit(e.IC, e.Cfg.Width)

		// Scoreboard of recent completion times for dependence stalls.
		// A constant power-of-two window lets the compiler turn the
		// per-instruction ring indexing into a mask instead of a divide.
		completed [window]uint64

		issueTime    = base // last issue cycle (in-order)
		issueInCycle int
	)
	fetch.fetchTime = base
	res.Cycles = base

	for res.Instructions < maxInstr && src.Next(&ev) {
		i := res.Instructions
		res.Instructions++

		e.cu.observe(ev.PC)
		fetched := fetch.fetch(ev.PC, &res.Activity)
		issue := fetched + e.Cfg.DecodeLatency

		// In-order: cannot issue before the previous instruction.
		if issue < issueTime {
			issue = issueTime
		}
		// Width limit within a cycle.
		if issue == issueTime {
			issueInCycle++
			if issueInCycle >= e.Cfg.Width {
				issue++
				issueInCycle = 0
			}
		} else {
			issueInCycle = 1
		}

		// Dependence stalls: producers must complete before issue.
		for _, dep := range [2]int32{ev.Dep1, ev.Dep2} {
			if dep > 0 && uint64(dep) <= i && int(dep) <= window {
				if t := completed[(i-uint64(dep))%uint64(window)]; t > issue {
					issue = t
				}
				res.Activity.RegReads++
			}
		}

		var complete uint64
		switch ev.Kind {
		case workload.KindLoad, workload.KindStore:
			done := e.DC.Access(issue, ev.Addr, ev.Kind == workload.KindStore)
			complete = done
			if ev.Kind == workload.KindLoad {
				res.Activity.Loads++
				res.Activity.RegWrites++
			} else {
				res.Activity.Stores++
			}
			// Blocking d-cache: the pipeline cannot issue anything until
			// the access completes.
			if complete > issue+1 {
				issue = complete - 1
			}
		case workload.KindBranch:
			complete = issue + uint64(ev.Lat)
			e.cu.branch(ev.PC, ev.Taken, complete, e.Cfg.MispredictPenalty, fetch, &res.Activity)
		case workload.KindCall:
			complete = issue + 1
			e.cu.call(ev.PC, fetch, &res.Activity)
		case workload.KindReturn:
			complete = issue + 1
			e.cu.ret(complete, e.Cfg.MispredictPenalty, fetch, &res.Activity)
		case workload.KindFloat:
			res.Activity.FloatOps++
			complete = issue + uint64(ev.Lat)
			res.Activity.RegWrites++
		default:
			res.Activity.IntOps++
			complete = issue + uint64(ev.Lat)
			res.Activity.RegWrites++
		}

		completed[i%uint64(window)] = complete
		issueTime = issue
		if complete > res.Cycles {
			res.Cycles = complete
		}
	}

	res.Cycles++
	res.BranchAccuracy = e.Bpred.Accuracy()
	return res
}
