package cpu

import (
	"reflect"
	"testing"
)

// TestActivityAddScaledCoverEveryField walks Activity's fields by
// reflection so that adding a counter without extending Add and Scaled
// fails here instead of silently dropping events from sampled-run
// extrapolation.
func TestActivityAddScaledCoverEveryField(t *testing.T) {
	typ := reflect.TypeOf(Activity{})
	for i := 0; i < typ.NumField(); i++ {
		if typ.Field(i).Type.Kind() != reflect.Uint64 {
			t.Fatalf("Activity.%s is %s; Add/Scaled assume uint64 counters", typ.Field(i).Name, typ.Field(i).Type)
		}
	}

	// Give every field a distinct value via reflection.
	var a Activity
	av := reflect.ValueOf(&a).Elem()
	for i := 0; i < av.NumField(); i++ {
		av.Field(i).SetUint(uint64(i + 1))
	}

	var sum Activity
	sum.Add(a)
	sum.Add(a)
	sv := reflect.ValueOf(sum)
	for i := 0; i < sv.NumField(); i++ {
		if got, want := sv.Field(i).Uint(), uint64(2*(i+1)); got != want {
			t.Errorf("Add dropped Activity.%s: got %d, want %d", typ.Field(i).Name, got, want)
		}
	}

	dv := reflect.ValueOf(a.Scaled(3))
	for i := 0; i < dv.NumField(); i++ {
		if got, want := dv.Field(i).Uint(), uint64(3*(i+1)); got != want {
			t.Errorf("Scaled dropped Activity.%s: got %d, want %d", typ.Field(i).Name, got, want)
		}
	}
}
