package cpu

import (
	"testing"

	"resizecache/internal/bpred"
	"resizecache/internal/cache"
	"resizecache/internal/geometry"
	"resizecache/internal/workload"
)

// fixedLevel is a cache stand-in with constant latency.
type fixedLevel struct {
	lat      uint64
	accesses uint64
}

func (f *fixedLevel) Access(now uint64, addr uint64, write bool) uint64 {
	f.accesses++
	return now + f.lat
}
func (f *fixedLevel) Warm(addr uint64, write bool) { f.accesses++ }
func (f *fixedLevel) Finalize(uint64)              {}
func (f *fixedLevel) EnergyPJ() float64            { return 0 }

// synthSource yields a scripted list of events repeatedly.
type synthSource struct {
	evs []workload.Event
	i   int
}

func (s *synthSource) Next(ev *workload.Event) bool {
	*ev = s.evs[s.i%len(s.evs)]
	s.i++
	return true
}

func l1Pair(t *testing.T, dcMSHR int) (cache.Level, cache.Level) {
	t.Helper()
	g := geometry.Geometry{SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, SubarrayBytes: 1 << 10}
	gl2 := geometry.Geometry{SizeBytes: 512 << 10, Assoc: 4, BlockBytes: 64, SubarrayBytes: 4 << 10}
	mem := cache.NewMemory(64)
	l2, err := cache.New(cache.Config{Name: "L2", Geom: gl2, HitLatency: 12,
		Energy: geometry.Default18um(), DelayedPrecharge: true}, mem)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, mshr int) cache.Level {
		c, err := cache.New(cache.Config{Name: name, Geom: g, HitLatency: 1,
			Energy: geometry.Default18um(), MSHREntries: mshr, WritebackEntries: 8}, l2)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	return mk("L1i", 2), mk("L1d", dcMSHR)
}

func intOp(pc uint64) workload.Event {
	return workload.Event{PC: pc, Kind: workload.KindInt, Lat: 1, Dep1: 1}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Width = 0
	if bad.Validate() == nil {
		t.Fatal("zero width accepted")
	}
	bad = DefaultConfig()
	bad.ROBEntries = 0
	if bad.Validate() == nil {
		t.Fatal("zero ROB accepted")
	}
	bad = DefaultConfig()
	bad.LSQEntries = 0
	if bad.Validate() == nil {
		t.Fatal("zero LSQ accepted")
	}
}

func TestIPCNeverExceedsWidth(t *testing.T) {
	ic, dc := l1Pair(t, 8)
	// Fully independent single-cycle ops: the only limit is width.
	evs := make([]workload.Event, 64)
	for i := range evs {
		evs[i] = workload.Event{PC: uint64(0x400000 + i*4), Kind: workload.KindInt, Lat: 1}
	}
	eng, err := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(&synthSource{evs: evs}, 100000)
	if res.IPC() > 4.0 {
		t.Fatalf("IPC %.2f exceeds width", res.IPC())
	}
	if res.IPC() < 2.0 {
		t.Fatalf("IPC %.2f too low for independent ALU ops", res.IPC())
	}
}

func TestDependenceChainSerializes(t *testing.T) {
	ic, dc := l1Pair(t, 8)
	// Every op depends on the previous one: IPC must approach 1.
	evs := []workload.Event{intOp(0x400000)}
	eng, _ := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
	res := eng.Run(&synthSource{evs: evs}, 50000)
	if res.IPC() > 1.1 {
		t.Fatalf("serial chain IPC %.2f, want <= ~1", res.IPC())
	}
}

func TestOoOHidesDMissesBetterThanInOrder(t *testing.T) {
	// Loads sweep a 256K region (every L1 misses) with generous dep
	// distances: the OoO engine should overlap misses via MSHRs, the
	// in-order engine must expose each one.
	mkEvents := func() []workload.Event {
		evs := make([]workload.Event, 512)
		for i := range evs {
			kind := workload.KindInt
			var addr uint64
			if i%3 == 0 {
				kind = workload.KindLoad
				addr = uint64(i) * 512 // distinct blocks far apart
			}
			evs[i] = workload.Event{PC: uint64(0x400000 + (i%64)*4), Kind: kind,
				Addr: addr, Lat: 1, Dep1: 40}
		}
		return evs
	}

	icO, dcO := l1Pair(t, 8)
	ooo, _ := NewOutOfOrder(DefaultConfig(), icO, dcO, bpred.NewDefault())
	resO := ooo.Run(&synthSource{evs: mkEvents()}, 100000)

	icI, dcI := l1Pair(t, 0) // blocking d-cache
	ino, _ := NewInOrder(DefaultConfig(), icI, dcI, bpred.NewDefault())
	resI := ino.Run(&synthSource{evs: mkEvents()}, 100000)

	if resO.Cycles >= resI.Cycles {
		t.Fatalf("OoO (%d cycles) should beat in-order (%d) on miss-heavy code",
			resO.Cycles, resI.Cycles)
	}
	// The gap should be substantial: misses overlap 8-deep vs. serial.
	if float64(resI.Cycles)/float64(resO.Cycles) < 1.5 {
		t.Fatalf("in-order/OoO ratio %.2f too small: MLP not modelled",
			float64(resI.Cycles)/float64(resO.Cycles))
	}
}

func TestICacheMissesHurtBothEngines(t *testing.T) {
	run := func(engine string, hotICode bool) uint64 {
		ic, dc := l1Pair(t, 8)
		evs := make([]workload.Event, 4096)
		for i := range evs {
			pc := uint64(0x400000 + (i%32)*4) // fits one or two blocks
			if !hotICode {
				pc = uint64(0x400000 + i*128) // new block almost every instr
			}
			evs[i] = workload.Event{PC: pc, Kind: workload.KindInt, Lat: 1}
		}
		src := &synthSource{evs: evs}
		if engine == "ooo" {
			e, _ := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
			return e.Run(src, 50000).Cycles
		}
		e, _ := NewInOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
		return e.Run(src, 50000).Cycles
	}
	for _, eng := range []string{"ooo", "inorder"} {
		hot := run(eng, true)
		cold := run(eng, false)
		if float64(cold)/float64(hot) < 2 {
			t.Errorf("%s: i-miss-heavy run only %.2fx slower (%d vs %d)",
				eng, float64(cold)/float64(hot), cold, hot)
		}
	}
}

// branchSource emits a branch every 4th instruction; outcomes come from a
// live RNG so they are genuinely unlearnable when random is set.
type branchSource struct {
	i      int
	r      uint64
	random bool
}

func (s *branchSource) Next(ev *workload.Event) bool {
	pc := uint64(0x400000 + (s.i%256)*4)
	if s.i%4 == 0 {
		taken := true
		if s.random {
			s.r ^= s.r << 13
			s.r ^= s.r >> 7
			s.r ^= s.r << 17
			taken = s.r&1 == 0
		}
		*ev = workload.Event{PC: pc, Kind: workload.KindBranch, Taken: taken, Lat: 1}
	} else {
		*ev = workload.Event{PC: pc, Kind: workload.KindInt, Lat: 1}
	}
	s.i++
	return true
}

func TestMispredictionsCostCycles(t *testing.T) {
	run := func(randomBranches bool) uint64 {
		ic, dc := l1Pair(t, 8)
		e, _ := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
		res := e.Run(&branchSource{r: 12345, random: randomBranches}, 50000)
		if randomBranches && res.BranchAccuracy > 0.8 {
			t.Fatalf("random branches predicted with accuracy %.2f", res.BranchAccuracy)
		}
		return res.Cycles
	}
	predictable := run(false)
	random := run(true)
	if float64(random)/float64(predictable) < 1.2 {
		t.Fatalf("mispredictions cost too little: %d vs %d", random, predictable)
	}
}

func TestStoresDoNotBlockOoO(t *testing.T) {
	// Store misses should not serialize the OoO engine the way load
	// misses do (store-buffer semantics).
	run := func(kind workload.Kind) uint64 {
		ic, dc := l1Pair(t, 8)
		evs := make([]workload.Event, 256)
		for i := range evs {
			evs[i] = workload.Event{PC: 0x400000 + uint64(i%16)*4, Kind: kind,
				Addr: uint64(i) * 4096, Lat: 1, Dep1: 1}
		}
		e, _ := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
		return e.Run(&synthSource{evs: evs}, 20000).Cycles
	}
	loads := run(workload.KindLoad)
	stores := run(workload.KindStore)
	if stores >= loads {
		t.Fatalf("dependent store stream (%d cycles) should outrun dependent load stream (%d)",
			stores, loads)
	}
}

func TestEnginesRunRealWorkloads(t *testing.T) {
	for _, name := range []string{"gcc", "swim"} {
		ic, dc := l1Pair(t, 8)
		e, _ := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
		res := e.Run(workload.NewGenerator(workload.MustGet(name)), 200000)
		if res.Instructions != 200000 {
			t.Fatalf("%s: ran %d instructions", name, res.Instructions)
		}
		if res.IPC() <= 0.1 || res.IPC() > 4 {
			t.Fatalf("%s: implausible IPC %.2f", name, res.IPC())
		}
		a := res.Activity
		if a.Loads == 0 || a.Stores == 0 || a.Branches == 0 || a.FetchGroups == 0 {
			t.Fatalf("%s: activity not recorded: %+v", name, a)
		}
		if a.Mispredicts > a.Branches {
			t.Fatalf("%s: more mispredicts than branches", name)
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() Result {
		ic, dc := l1Pair(t, 8)
		e, _ := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
		return e.Run(workload.NewGenerator(workload.MustGet("vpr")), 100000)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Activity != b.Activity {
		t.Fatalf("nondeterministic engine: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestEngineNames(t *testing.T) {
	ic, dc := l1Pair(t, 8)
	o, _ := NewOutOfOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
	i, _ := NewInOrder(DefaultConfig(), ic, dc, bpred.NewDefault())
	if o.Name() == i.Name() || o.Name() == "" {
		t.Fatal("engine names wrong")
	}
	if _, err := NewOutOfOrder(Config{}, ic, dc, bpred.NewDefault()); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewInOrder(Config{}, ic, dc, bpred.NewDefault()); err == nil {
		t.Fatal("invalid config accepted")
	}
}
