package cpu

import (
	"resizecache/internal/bpred"
	"resizecache/internal/cache"
	"resizecache/internal/workload"
)

// Gang execution: one workload pass drives N cache configurations in
// lockstep. The split that makes this possible is already present in
// the solo engines — everything that steers the instruction stream is
// *functional* (depends only on the event sequence), while cache
// contents and cycle arithmetic are *timing*:
//
//   - the direction predictor, BTB, and RAS are trained with (PC, taken)
//     pairs only, so their state evolution is identical for every cache
//     configuration;
//   - fetch-group boundaries are functional too: groupLeft cycles with
//     the width and resets on redirects, and every redirect is caused by
//     a functional event (mispredict, taken transfer, BTB miss, RAS
//     underflow) — the *cycle* a redirect lands on differs per member,
//     but *that* it happens, and at which instruction, does not;
//   - consequently every Activity counter and the branch accuracy are
//     member-invariant, and the ROB/LSQ ring indices advance identically.
//
// What differs per member is exactly the timing model: fetch timestamps,
// completion/retire rings, and the cache hierarchies those timestamps
// are computed against. RunGang* therefore evaluates the shared
// functional front-end once per instruction and fans the event out to N
// private timing models, turning N×(generate+front-end+timing) into
// generate+front-end+N×timing. Results are bit-identical to running
// each member through the corresponding solo engine (pinned by
// TestGangMatchesSolo and the sim golden fixtures).

// GangMember is one gang member's private memory system: the L1 caches
// its timing model issues accesses to (each backed by its own private
// hierarchy and memory).
type GangMember struct {
	IC cache.Level
	DC cache.Level
}

// ctrlAction is the shared functional outcome of one instruction's
// control-flow handling; members apply its timing consequence to their
// own fetch clock.
type ctrlAction int

const (
	// ctrlNone: no control transfer, fetch continues.
	ctrlNone ctrlAction = iota
	// ctrlRedirect: fetch restarts at the current fetch time (correctly
	// predicted taken transfer with a BTB/RAS hit) — a fetch-group break
	// with no bubble.
	ctrlRedirect
	// ctrlRedirectBTBMiss: fetch restarts after the BTB-miss bubble.
	ctrlRedirectBTBMiss
	// ctrlRedirectMispredict: fetch restarts after the instruction
	// completes plus the mispredict penalty.
	ctrlRedirectMispredict
)

// gangFront is the shared functional front-end of a gang: one control
// unit (predictor, BTB, RAS) and the fetch-group cursor, evolving
// exactly as each solo engine's would.
type gangFront struct {
	cu        *controlUnit
	groupLeft int
	width     int
}

//simlint:coldpath constructor, once per gang
func newGangFront(bp *bpred.Stats, width int) *gangFront {
	return &gangFront{cu: newControlUnit(bp), width: width}
}

// step consumes one instruction's functional front-end work: the
// deferred BTB update, the fetch-group boundary decision, and the
// control-flow outcome. It returns whether this instruction opens a new
// fetch group and the shared control action. act receives every
// member-invariant counter of the instruction's control handling.
func (f *gangFront) step(ev *workload.Event, act *Activity) (newGroup bool, action ctrlAction) {
	f.cu.observe(ev.PC)
	if f.groupLeft == 0 {
		f.groupLeft = f.width
		act.FetchGroups++
		newGroup = true
	}
	f.groupLeft--

	switch ev.Kind {
	case workload.KindBranch:
		act.Branches++
		act.BpredLookups++
		if !f.cu.bp.PredictAndTrain(ev.PC, ev.Taken) {
			act.Mispredicts++
			action = ctrlRedirectMispredict
		} else if ev.Taken {
			action = f.lookupTarget(ev.PC, act)
		}
	case workload.KindCall:
		act.RASOps++
		f.cu.ras.Push(ev.PC + 4)
		action = f.lookupTarget(ev.PC, act)
	case workload.KindReturn:
		act.RASOps++
		if _, ok := f.cu.ras.Pop(); ok {
			action = ctrlRedirect
		} else {
			act.Mispredicts++
			action = ctrlRedirectMispredict
		}
	}
	if action != ctrlNone {
		// The redirect breaks the fetch group for the next instruction;
		// members apply the cycle consequence themselves.
		f.groupLeft = 0
	}
	return newGroup, action
}

// lookupTarget is controlUnit.lookupTarget's functional half.
func (f *gangFront) lookupTarget(pc uint64, act *Activity) ctrlAction {
	act.BTBLookups++
	if _, hit := f.cu.btb.Lookup(pc); hit {
		return ctrlRedirect
	}
	f.cu.pendingPC = pc
	f.cu.hasPending = true
	return ctrlRedirectBTBMiss
}

// results assembles the per-member Results: the shared functional
// outcome (instructions, activity, branch accuracy) plus each member's
// private cycle count.
//
//simlint:coldpath epilogue, once per gang
func gangResults(instr uint64, act Activity, accuracy float64, cycles []uint64) []Result {
	out := make([]Result, len(cycles))
	for m := range out {
		out[m] = Result{
			Instructions:   instr,
			Cycles:         cycles[m],
			Activity:       act,
			BranchAccuracy: accuracy,
		}
	}
	return out
}

// RunGangOutOfOrder drives every member's private out-of-order timing
// model with one shared workload pass. Member m's Result is
// bit-identical to NewOutOfOrder(cfg, members[m].IC, members[m].DC,
// bp').Run(src', maxInstr) with a fresh predictor and source.
func RunGangOutOfOrder(cfg Config, bp bpred.Predictor, members []GangMember, src workload.Source, maxInstr uint64) ([]Result, error) {
	g, err := NewGangOutOfOrder(cfg, bp, members)
	if err != nil {
		return nil, err
	}
	return g.RunWindow(src, maxInstr, nil), nil
}

// RunWindow executes up to maxInstr instructions with member m's
// pipeline clocks starting at absolute cycle base[m] (a nil base means
// cycle zero for every member); result[m].Cycles is member m's absolute
// end cycle. The shared front-end persists across windows; pipeline
// rings start empty each window, mirroring the solo engines' RunWindow.
//
//simlint:hotpath the gang fan-out inner loop; prologue allocations are once per window
func (g *GangOutOfOrder) RunWindow(src workload.Source, maxInstr uint64, base []uint64) []Result {
	cfg := g.cfg
	front := g.front
	members := g.members
	front.groupLeft = 0
	n := len(members)
	var (
		act   Activity
		instr uint64
		ev    workload.Event

		robN      = cfg.ROBEntries
		lsqN      = cfg.LSQEntries
		decodeLat = cfg.DecodeLatency
		width     = cfg.Width

		// Shared functional ring cursors (identical across members).
		robIdx     int
		lsqIdx     int
		memopCount uint64

		// Per-member timing state, struct-of-arrays: member m's ROB ring
		// is rob[m*robN : (m+1)*robN], and the scalar clocks live in
		// parallel slices so the member loop walks contiguous memory.
		rob           = make([]uint64, n*robN) //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
		retire        = make([]uint64, n*robN) //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
		lsqRetire     = make([]uint64, n*lsqN) //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
		fetchTime     = make([]uint64, n)      //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
		lastRetire    = make([]uint64, n)      //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
		retireInCycle = make([]int, n)         //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
	)
	if base != nil {
		copy(fetchTime, base)
		copy(lastRetire, base)
	}

	for instr < maxInstr && src.Next(&ev) {
		i := instr
		instr++

		newGroup, action := front.step(&ev, &act)

		// Shared functional decisions of the issue path: which operands
		// are in the dependence window, and whether the LSQ ring clamps.
		act.ROBInserts++
		dep1 := ev.Dep1 > 0 && uint64(ev.Dep1) <= i && ev.Dep1 <= int32(robN)
		dep2 := ev.Dep2 > 0 && uint64(ev.Dep2) <= i && ev.Dep2 <= int32(robN)
		if dep1 {
			act.RegReads++
		}
		if dep2 {
			act.RegReads++
		}
		isStore := ev.Kind == workload.KindStore
		isMem := isStore || ev.Kind == workload.KindLoad
		lsqClamp := isMem && memopCount >= uint64(lsqN)
		// execLat is the non-memory execution latency (control transfers
		// resolve in one cycle; loads/stores go through the d-cache).
		var execLat uint64
		switch ev.Kind {
		case workload.KindLoad:
			act.LSQInserts++
			act.Loads++
			act.RegWrites++
		case workload.KindStore:
			act.LSQInserts++
			act.Stores++
		case workload.KindBranch:
			execLat = uint64(ev.Lat)
		case workload.KindCall, workload.KindReturn:
			execLat = 1
		case workload.KindFloat:
			act.FloatOps++
			act.RegWrites++
			execLat = uint64(ev.Lat)
		default:
			act.IntOps++
			act.RegWrites++
			execLat = uint64(ev.Lat)
		}

		for m := 0; m < n; m++ {
			ft := fetchTime[m]
			if newGroup {
				ft++
				if done := members[m].IC.Access(ft, ev.PC, false); done > ft+1 {
					ft = done
				}
			}

			dispatch := ft + decodeLat
			mrob := rob[m*robN : (m+1)*robN]
			mretire := retire[m*robN : (m+1)*robN]
			if i >= uint64(robN) {
				if t := mretire[robIdx]; t > dispatch {
					dispatch = t
				}
			}

			ready := dispatch
			if dep1 {
				j := robIdx - int(ev.Dep1)
				if j < 0 {
					j += robN
				}
				if t := mrob[j]; t > ready {
					ready = t
				}
			}
			if dep2 {
				j := robIdx - int(ev.Dep2)
				if j < 0 {
					j += robN
				}
				if t := mrob[j]; t > ready {
					ready = t
				}
			}

			var complete uint64
			if isMem {
				if lsqClamp {
					if t := lsqRetire[m*lsqN+lsqIdx]; t > ready {
						ready = t
					}
				}
				done := members[m].DC.Access(ready, ev.Addr, isStore)
				if isStore {
					complete = ready + 1
				} else {
					complete = done
				}
			} else {
				complete = ready + execLat
			}

			switch action {
			case ctrlRedirectBTBMiss:
				// fetchTime + penalty > fetchTime always.
				ft += front.cu.btbMissPenalty
			case ctrlRedirectMispredict:
				if at := complete + cfg.MispredictPenalty; at > ft {
					ft = at
				}
			}
			fetchTime[m] = ft

			mrob[robIdx] = complete

			rt := complete
			if rt < lastRetire[m] {
				rt = lastRetire[m]
			}
			if rt == lastRetire[m] {
				retireInCycle[m]++
				if retireInCycle[m] >= width {
					rt++
					retireInCycle[m] = 0
				}
			} else {
				retireInCycle[m] = 1
			}
			lastRetire[m] = rt
			mretire[robIdx] = rt
			if isMem {
				lsqRetire[m*lsqN+lsqIdx] = rt
			}
		}

		if robIdx++; robIdx == robN {
			robIdx = 0
		}
		if isMem {
			memopCount++
			if lsqIdx++; lsqIdx == lsqN {
				lsqIdx = 0
			}
		}
	}

	cycles := make([]uint64, n) //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
	for m := range cycles {
		cycles[m] = lastRetire[m] + 1
	}
	return gangResults(instr, act, g.st.Accuracy(), cycles)
}

// RunGangInOrder is RunGangOutOfOrder for the in-order/blocking-d-cache
// timing model.
func RunGangInOrder(cfg Config, bp bpred.Predictor, members []GangMember, src workload.Source, maxInstr uint64) ([]Result, error) {
	g, err := NewGangInOrder(cfg, bp, members)
	if err != nil {
		return nil, err
	}
	return g.RunWindow(src, maxInstr, nil), nil
}

// RunWindow executes up to maxInstr instructions with member m's clocks
// starting at base[m]; see GangOutOfOrder.RunWindow for the contract.
//
//simlint:hotpath the gang fan-out inner loop; prologue allocations are once per window
func (g *GangInOrder) RunWindow(src workload.Source, maxInstr uint64, base []uint64) []Result {
	cfg := g.cfg
	front := g.front
	members := g.members
	front.groupLeft = 0
	n := len(members)
	var (
		act   Activity
		instr uint64
		ev    workload.Event

		// Per-member timing state: member m's dependence scoreboard is
		// completed[m*window : (m+1)*window].
		completed    = make([]uint64, n*window) //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
		fetchTime    = make([]uint64, n)        //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
		issueTime    = make([]uint64, n)        //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
		issueInCycle = make([]int, n)           //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
		maxComplete  = make([]uint64, n)        //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
	)
	if base != nil {
		copy(fetchTime, base)
		copy(issueTime, base)
		copy(maxComplete, base)
	}

	for instr < maxInstr && src.Next(&ev) {
		i := instr
		instr++

		newGroup, action := front.step(&ev, &act)

		dep1 := ev.Dep1 > 0 && uint64(ev.Dep1) <= i && int(ev.Dep1) <= window
		dep2 := ev.Dep2 > 0 && uint64(ev.Dep2) <= i && int(ev.Dep2) <= window
		if dep1 {
			act.RegReads++
		}
		if dep2 {
			act.RegReads++
		}
		isStore := ev.Kind == workload.KindStore
		isMem := isStore || ev.Kind == workload.KindLoad
		var execLat uint64
		switch ev.Kind {
		case workload.KindLoad:
			act.Loads++
			act.RegWrites++
		case workload.KindStore:
			act.Stores++
		case workload.KindBranch:
			execLat = uint64(ev.Lat)
		case workload.KindCall, workload.KindReturn:
			execLat = 1
		case workload.KindFloat:
			act.FloatOps++
			act.RegWrites++
			execLat = uint64(ev.Lat)
		default:
			act.IntOps++
			act.RegWrites++
			execLat = uint64(ev.Lat)
		}

		for m := 0; m < n; m++ {
			ft := fetchTime[m]
			if newGroup {
				ft++
				if done := members[m].IC.Access(ft, ev.PC, false); done > ft+1 {
					ft = done
				}
			}

			issue := ft + cfg.DecodeLatency
			if issue < issueTime[m] {
				issue = issueTime[m]
			}
			if issue == issueTime[m] {
				issueInCycle[m]++
				if issueInCycle[m] >= cfg.Width {
					issue++
					issueInCycle[m] = 0
				}
			} else {
				issueInCycle[m] = 1
			}

			sb := completed[m*window : (m+1)*window]
			if dep1 {
				if t := sb[(i-uint64(ev.Dep1))%uint64(window)]; t > issue {
					issue = t
				}
			}
			if dep2 {
				if t := sb[(i-uint64(ev.Dep2))%uint64(window)]; t > issue {
					issue = t
				}
			}

			var complete uint64
			if isMem {
				complete = members[m].DC.Access(issue, ev.Addr, isStore)
				// Blocking d-cache: nothing issues until the access
				// completes.
				if complete > issue+1 {
					issue = complete - 1
				}
			} else {
				complete = issue + execLat
			}

			switch action {
			case ctrlRedirectBTBMiss:
				ft += front.cu.btbMissPenalty
			case ctrlRedirectMispredict:
				if at := complete + cfg.MispredictPenalty; at > ft {
					ft = at
				}
			}
			fetchTime[m] = ft

			sb[i%uint64(window)] = complete
			issueTime[m] = issue
			if complete > maxComplete[m] {
				maxComplete[m] = complete
			}
		}
	}

	cycles := make([]uint64, n) //simlint:allow once-per-run prologue/epilogue, outside the per-instruction loop
	for m := range cycles {
		cycles[m] = maxComplete[m] + 1
	}
	return gangResults(instr, act, g.st.Accuracy(), cycles)
}
