package cpu

import (
	"testing"

	"resizecache/internal/bpred"
	"resizecache/internal/cache"
	"resizecache/internal/geometry"
	"resizecache/internal/workload"
)

// gangVariant is one member's private d-cache shape; the i-cache stays
// fixed so members differ the way sweep cells do.
type gangVariant struct {
	dcSize  int
	dcAssoc int
	dcMSHR  int
}

// buildMember constructs an i/d L1 pair over a private L2+memory. Each
// call builds an independent hierarchy, so solo and gang runs see
// identical fresh cache state.
func buildMember(t *testing.T, v gangVariant) (cache.Level, cache.Level) {
	t.Helper()
	mem := cache.NewMemory(64)
	l2, err := cache.New(cache.Config{
		Name: "L2", HitLatency: 12, Energy: geometry.Default18um(), DelayedPrecharge: true,
		Geom: geometry.Geometry{SizeBytes: 512 << 10, Assoc: 4, BlockBytes: 64, SubarrayBytes: 4 << 10},
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := cache.New(cache.Config{
		Name: "L1i", HitLatency: 1, Energy: geometry.Default18um(),
		MSHREntries: 2, WritebackEntries: 8,
		Geom: geometry.Geometry{SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, SubarrayBytes: 1 << 10},
	}, l2)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := cache.New(cache.Config{
		Name: "L1d", HitLatency: 1, Energy: geometry.Default18um(),
		MSHREntries: v.dcMSHR, WritebackEntries: 8,
		Geom: geometry.Geometry{SizeBytes: v.dcSize, Assoc: v.dcAssoc, BlockBytes: 32, SubarrayBytes: 1 << 10},
	}, l2)
	if err != nil {
		t.Fatal(err)
	}
	return ic, dc
}

func gangVariants(mshr int) []gangVariant {
	return []gangVariant{
		{dcSize: 8 << 10, dcAssoc: 1, dcMSHR: mshr},
		{dcSize: 16 << 10, dcAssoc: 2, dcMSHR: mshr},
		{dcSize: 32 << 10, dcAssoc: 2, dcMSHR: mshr},
		{dcSize: 64 << 10, dcAssoc: 4, dcMSHR: mshr},
	}
}

// TestGangMatchesSoloOutOfOrder: every gang member's Result is
// bit-identical to a solo OutOfOrder run over the same config.
func TestGangMatchesSoloOutOfOrder(t *testing.T) {
	const instr = 30000
	cfg := DefaultConfig()
	variants := gangVariants(8)

	solo := make([]Result, len(variants))
	for m, v := range variants {
		ic, dc := buildMember(t, v)
		eng, err := NewOutOfOrder(cfg, ic, dc, bpred.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		solo[m] = eng.Run(workload.NewGenerator(workload.MustGet("gcc")), instr)
	}

	members := make([]GangMember, len(variants))
	for m, v := range variants {
		ic, dc := buildMember(t, v)
		members[m] = GangMember{IC: ic, DC: dc}
	}
	got, err := RunGangOutOfOrder(cfg, bpred.NewDefault(), members,
		workload.NewGenerator(workload.MustGet("gcc")), instr)
	if err != nil {
		t.Fatal(err)
	}
	for m := range variants {
		if got[m] != solo[m] {
			t.Errorf("member %d: gang %+v\nsolo %+v", m, got[m], solo[m])
		}
	}
}

// TestGangMatchesSoloInOrder: same equivalence for the in-order engine
// with a blocking d-cache.
func TestGangMatchesSoloInOrder(t *testing.T) {
	const instr = 30000
	cfg := DefaultConfig()
	variants := gangVariants(0)

	solo := make([]Result, len(variants))
	for m, v := range variants {
		ic, dc := buildMember(t, v)
		eng, err := NewInOrder(cfg, ic, dc, bpred.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		solo[m] = eng.Run(workload.NewGenerator(workload.MustGet("vpr")), instr)
	}

	members := make([]GangMember, len(variants))
	for m, v := range variants {
		ic, dc := buildMember(t, v)
		members[m] = GangMember{IC: ic, DC: dc}
	}
	got, err := RunGangInOrder(cfg, bpred.NewDefault(), members,
		workload.NewGenerator(workload.MustGet("vpr")), instr)
	if err != nil {
		t.Fatal(err)
	}
	for m := range variants {
		if got[m] != solo[m] {
			t.Errorf("member %d: gang %+v\nsolo %+v", m, got[m], solo[m])
		}
	}
}

// TestGangRejectsInvalidConfig: validation errors surface rather than
// running a desynchronized gang.
func TestGangRejectsInvalidConfig(t *testing.T) {
	bad := DefaultConfig()
	bad.Width = 0
	if _, err := RunGangOutOfOrder(bad, bpred.NewDefault(), nil, nil, 0); err == nil {
		t.Error("out-of-order gang accepted invalid config")
	}
	if _, err := RunGangInOrder(bad, bpred.NewDefault(), nil, nil, 0); err == nil {
		t.Error("in-order gang accepted invalid config")
	}
}
