package cpu

import (
	"resizecache/internal/bpred"
	"resizecache/internal/cache"
	"resizecache/internal/workload"
)

// Sampled execution support: functional fast-forward stepping and
// front-end warm-state snapshots.
//
// A fast-forward window advances exactly the *functional* half of the
// machine — the workload stream, the direction predictor/BTB/RAS, the
// fetch-group cursor, and (via cache.Level.Warm) the cache tag arrays —
// with no timing arithmetic and no energy accounting. The split is the
// same one gang execution exploits (see gang.go): everything the
// fast-forward touches is member- and configuration-invariant except
// the cache contents, which each configuration warms through its own
// hierarchy.
//
// A warmup prefix is a fast-forward that additionally skips cache
// warming: its end state is then a pure function of the front-end
// (Config.FrontKey() in internal/sim), which is what makes warmup
// checkpoints shareable across every configuration with the same
// front-end. FrontEndState + workload.Snapshot is that checkpoint's
// payload; changing what they capture requires a checkpoint format
// version bump (internal/sim, CONTRIBUTING.md).

// FrontEndState is the serializable warm state of an engine's shared
// front-end: the direction predictor (with accuracy counters), the BTB,
// the return-address stack, and the deferred BTB-install latch.
type FrontEndState struct {
	Predictor  bpred.PredictorState `json:"predictor"`
	Stats      bpred.StatsState     `json:"stats"`
	BTB        bpred.BTBState       `json:"btb"`
	RAS        bpred.RASState       `json:"ras"`
	PendingPC  uint64               `json:"pendingPC"`
	HasPending bool                 `json:"hasPending"`
}

func (cu *controlUnit) snapshot() (FrontEndState, error) {
	ps, err := bpred.SnapshotPredictor(cu.bp.P)
	if err != nil {
		return FrontEndState{}, err
	}
	return FrontEndState{
		Predictor:  ps,
		Stats:      cu.bp.Snapshot(),
		BTB:        cu.btb.Snapshot(),
		RAS:        cu.ras.Snapshot(),
		PendingPC:  cu.pendingPC,
		HasPending: cu.hasPending,
	}, nil
}

func (cu *controlUnit) restore(s FrontEndState) error {
	if err := bpred.RestorePredictor(cu.bp.P, s.Predictor); err != nil {
		return err
	}
	if err := cu.btb.Restore(s.BTB); err != nil {
		return err
	}
	if err := cu.ras.Restore(s.RAS); err != nil {
		return err
	}
	cu.bp.Restore(s.Stats)
	cu.pendingPC = s.PendingPC
	cu.hasPending = s.HasPending
	return nil
}

// ffAdvance drives up to maxInstr instructions through the functional
// front-end only, optionally warming the i-/d-caches, and returns how
// many instructions were consumed. It reuses gangFront.step so the
// functional state evolves exactly as it does under detailed (solo or
// gang) execution — the property the checkpoint bit-identity tests pin.
//
//simlint:hotpath per-instruction fast-forward loop; scratch state is stack-allocated
func ffAdvance(cu *controlUnit, width int, ic, dc cache.Level, src workload.Source, maxInstr uint64, warmCaches bool) uint64 {
	var (
		n       uint64
		ev      workload.Event
		scratch Activity
		front   = gangFront{cu: cu, width: width}
	)
	for n < maxInstr && src.Next(&ev) {
		n++
		newGroup, _ := front.step(&ev, &scratch)
		if !warmCaches {
			continue
		}
		if newGroup {
			ic.Warm(ev.PC, false)
		}
		if ev.Kind == workload.KindLoad {
			dc.Warm(ev.Addr, false)
		} else if ev.Kind == workload.KindStore {
			dc.Warm(ev.Addr, true)
		}
	}
	return n
}

// FastForward advances the engine functionally by up to maxInstr
// instructions: predictors train, caches warm, no cycles elapse.
func (o *OutOfOrder) FastForward(src workload.Source, maxInstr uint64) uint64 {
	return ffAdvance(o.cu, o.Cfg.Width, o.IC, o.DC, src, maxInstr, true)
}

// WarmupFrontEnd advances only the front-end (predictors, BTB, RAS,
// fetch-group cursor) — not the caches — so the resulting state is
// shareable across every configuration with the same front-end.
func (o *OutOfOrder) WarmupFrontEnd(src workload.Source, maxInstr uint64) uint64 {
	return ffAdvance(o.cu, o.Cfg.Width, o.IC, o.DC, src, maxInstr, false)
}

// SnapshotFrontEnd captures the engine's front-end warm state.
func (o *OutOfOrder) SnapshotFrontEnd() (FrontEndState, error) { return o.cu.snapshot() }

// RestoreFrontEnd loads a front-end snapshot taken from an engine with
// the same predictor configuration.
func (o *OutOfOrder) RestoreFrontEnd(s FrontEndState) error { return o.cu.restore(s) }

// FastForward advances the engine functionally; see OutOfOrder.FastForward.
func (e *InOrder) FastForward(src workload.Source, maxInstr uint64) uint64 {
	return ffAdvance(e.cu, e.Cfg.Width, e.IC, e.DC, src, maxInstr, true)
}

// WarmupFrontEnd advances only the front-end; see OutOfOrder.WarmupFrontEnd.
func (e *InOrder) WarmupFrontEnd(src workload.Source, maxInstr uint64) uint64 {
	return ffAdvance(e.cu, e.Cfg.Width, e.IC, e.DC, src, maxInstr, false)
}

// SnapshotFrontEnd captures the engine's front-end warm state.
func (e *InOrder) SnapshotFrontEnd() (FrontEndState, error) { return e.cu.snapshot() }

// RestoreFrontEnd loads a front-end snapshot.
func (e *InOrder) RestoreFrontEnd(s FrontEndState) error { return e.cu.restore(s) }

// GangOutOfOrder is the persistent form of RunGangOutOfOrder: the shared
// functional front-end survives across calls, so detailed windows and
// fast-forward windows can alternate over one workload stream. Pipeline
// timing state (ROB/LSQ rings, clocks) is per-window, exactly as in the
// solo engines' RunWindow.
type GangOutOfOrder struct {
	cfg     Config
	st      *bpred.Stats
	front   *gangFront
	members []GangMember
}

// NewGangOutOfOrder builds a window-capable out-of-order gang.
func NewGangOutOfOrder(cfg Config, bp bpred.Predictor, members []GangMember) (*GangOutOfOrder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := &bpred.Stats{P: bp}
	return &GangOutOfOrder{cfg: cfg, st: st, front: newGangFront(st, cfg.Width), members: members}, nil
}

// FastForward advances the shared front-end and warms every member's
// caches by up to maxInstr instructions; no cycles elapse.
//
//simlint:hotpath per-instruction gang fast-forward loop
func (g *GangOutOfOrder) FastForward(src workload.Source, maxInstr uint64) uint64 {
	return gangFFAdvance(g.front, g.members, src, maxInstr, true)
}

// WarmupFrontEnd advances only the shared front-end (no cache warming).
func (g *GangOutOfOrder) WarmupFrontEnd(src workload.Source, maxInstr uint64) uint64 {
	return gangFFAdvance(g.front, g.members, src, maxInstr, false)
}

// SnapshotFrontEnd captures the shared front-end warm state.
func (g *GangOutOfOrder) SnapshotFrontEnd() (FrontEndState, error) { return g.front.cu.snapshot() }

// RestoreFrontEnd loads a front-end snapshot.
func (g *GangOutOfOrder) RestoreFrontEnd(s FrontEndState) error { return g.front.cu.restore(s) }

// gangFFAdvance is ffAdvance for a gang: one shared functional pass,
// fanning cache warming out to every member.
//
//simlint:hotpath per-instruction gang fast-forward loop; scratch state is stack-allocated
func gangFFAdvance(front *gangFront, members []GangMember, src workload.Source, maxInstr uint64, warmCaches bool) uint64 {
	var (
		n       uint64
		ev      workload.Event
		scratch Activity
	)
	front.groupLeft = 0
	for n < maxInstr && src.Next(&ev) {
		n++
		newGroup, _ := front.step(&ev, &scratch)
		if !warmCaches {
			continue
		}
		isLoad := ev.Kind == workload.KindLoad
		isStore := ev.Kind == workload.KindStore
		for m := range members {
			if newGroup {
				members[m].IC.Warm(ev.PC, false)
			}
			if isLoad {
				members[m].DC.Warm(ev.Addr, false)
			} else if isStore {
				members[m].DC.Warm(ev.Addr, true)
			}
		}
	}
	return n
}

// GangInOrder is the persistent, window-capable form of RunGangInOrder.
type GangInOrder struct {
	cfg     Config
	st      *bpred.Stats
	front   *gangFront
	members []GangMember
}

// NewGangInOrder builds a window-capable in-order gang.
func NewGangInOrder(cfg Config, bp bpred.Predictor, members []GangMember) (*GangInOrder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := &bpred.Stats{P: bp}
	return &GangInOrder{cfg: cfg, st: st, front: newGangFront(st, cfg.Width), members: members}, nil
}

// FastForward advances the shared front-end and warms every member's
// caches; see GangOutOfOrder.FastForward.
//
//simlint:hotpath per-instruction gang fast-forward loop
func (g *GangInOrder) FastForward(src workload.Source, maxInstr uint64) uint64 {
	return gangFFAdvance(g.front, g.members, src, maxInstr, true)
}

// WarmupFrontEnd advances only the shared front-end (no cache warming).
func (g *GangInOrder) WarmupFrontEnd(src workload.Source, maxInstr uint64) uint64 {
	return gangFFAdvance(g.front, g.members, src, maxInstr, false)
}

// SnapshotFrontEnd captures the shared front-end warm state.
func (g *GangInOrder) SnapshotFrontEnd() (FrontEndState, error) { return g.front.cu.snapshot() }

// RestoreFrontEnd loads a front-end snapshot.
func (g *GangInOrder) RestoreFrontEnd(s FrontEndState) error { return g.front.cu.restore(s) }
