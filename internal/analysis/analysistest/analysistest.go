// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` expectations, in
// the style of golang.org/x/tools/go/analysis/analysistest (which this
// environment cannot fetch). Fixtures live under
// <testdata>/src/<pkgname>/ and may import the standard library and
// module-local packages; each `// want` comment on a line asserts one
// diagnostic whose message matches the quoted regexp, and every
// diagnostic must be matched by exactly one want.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"resizecache/internal/analysis"
)

// wantRe matches `// want "..."` with one or more space-separated
// quoted regexps (several diagnostics may land on one line).
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkg> relative to dir, applies the analyzer,
// and reports mismatches through t. It returns the diagnostics for any
// further assertions.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) []analysis.Diagnostic {
	t.Helper()
	l, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("analysistest: loader: %v", err)
	}
	fixdir := filepath.Join(dir, "testdata", "src", pkg)
	p, err := l.LoadDir(fixdir, pkg)
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", fixdir, err)
	}
	for _, e := range p.TypeErrors {
		t.Errorf("analysistest: fixture type error: %v", e)
	}
	diags, err := analysis.Run(a, p)
	if err != nil {
		t.Fatalf("analysistest: run %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, f := range p.Files {
		wants = append(wants, collectWants(t, p, f)...)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
	return diags
}

func collectWants(t *testing.T, p *analysis.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			rest := strings.TrimSpace(m[1])
			for rest != "" {
				if !strings.HasPrefix(rest, `"`) {
					t.Fatalf("%s:%d: malformed want clause %q", pos.Filename, pos.Line, rest)
				}
				q, tail, err := cutQuoted(rest)
				if err != nil {
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				re, err := regexp.Compile(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q, err)
				}
				out = append(out, &expectation{
					file: filepath.Base(pos.Filename),
					line: pos.Line,
					re:   re,
					raw:  q,
				})
				rest = strings.TrimSpace(tail)
			}
		}
	}
	return out
}

// cutQuoted splits a leading Go-quoted string off rest.
func cutQuoted(rest string) (string, string, error) {
	for i := 1; i < len(rest); i++ {
		if rest[i] == '\\' {
			i++
			continue
		}
		if rest[i] == '"' {
			q, err := strconv.Unquote(rest[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("bad quoted want %q: %w", rest[:i+1], err)
			}
			return q, rest[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated want string in %q", rest)
}
