package keycomplete

import (
	"testing"

	"resizecache/internal/analysis/analysistest"
)

// TestMissingFieldsAreReported is the acceptance fixture for the
// repo's scariest regression: an exported Config field that never
// reaches Key() must fail the build.
func TestMissingFieldsAreReported(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "keyfix")
}

func TestPinMissingVersion(t *testing.T) {
	PinOverride = "keypin_nover 1 0123456789abcdef\n"
	defer func() { PinOverride = "" }()
	analysistest.Run(t, ".", Analyzer, "keypin_nover")
}

func TestPinHashMismatch(t *testing.T) {
	PinOverride = "keypin_mismatch 3 0000000000000000\n"
	defer func() { PinOverride = "" }()
	analysistest.Run(t, ".", Analyzer, "keypin_mismatch")
}

func TestPinWithoutVersionConstant(t *testing.T) {
	PinOverride = "keypin_noconst 1 0123456789abcdef\n"
	defer func() { PinOverride = "" }()
	analysistest.Run(t, ".", Analyzer, "keypin_noconst")
}

// TestRepoPinExists: the embedded table must pin internal/sim at its
// current keyVersion (internal/sim's key_test checks the hash value
// itself against the source).
func TestRepoPinExists(t *testing.T) {
	if _, ok := Pin("resizecache/internal/sim", 2); !ok {
		t.Fatal("testdata/fieldhash.txt has no pin for resizecache/internal/sim keyVersion 2")
	}
}
