// Package keypin_mismatch: the pin table (overridden by the test)
// records a stale hash for keyVersion 3, simulating a field-set change
// that was not accompanied by a version bump.
package keypin_mismatch

const keyVersion = 3 // want "does not match the pin"

type Config struct{ A int }

func (c Config) Key() int { return c.A + keyVersion }
