// Package keyfix is the keycomplete fixture: a Config whose Key()
// fingerprints some fields, forgets two, and two fields that opt out
// (one unexported, one tagged nokey).
package keyfix

// Inner is reachable from Config through an exported field, so its
// exported fields must reach the fingerprint too.
type Inner struct {
	Used   int
	Missed bool // want "exported field Inner.Missed does not reach Config's Key"
}

type Config struct {
	Name   string
	Depth  int // want "exported field Config.Depth does not reach Config's Key"
	Inner  Inner
	hidden int
	Inert  int `simlint:"nokey"`
}

func (c Config) Key() uint64 {
	h := uint64(len(c.Name))
	h = h*31 + c.mix()
	return h + uint64(c.hidden)
}

// mix is part of Key's same-package call closure: fields consumed here
// count as fingerprinted, including the embedded-selection index path.
func (c Config) mix() uint64 {
	return uint64(c.Inner.Used)
}
