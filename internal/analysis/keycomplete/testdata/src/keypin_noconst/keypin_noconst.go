// Package keypin_noconst is pinned in the (test-overridden) pin table
// but declares no keyVersion constant at all.
package keypin_noconst

type Config struct{ A int }

func (c Config) Key() int { return c.A } // want "declares no keyVersion constant"
