// Package keypin_nover: the pin table (overridden by the test) pins
// this package at keyVersion 1 only, so the declared version 2 has no
// recorded field-set hash.
package keypin_nover

const keyVersion = 2 // want "keyVersion 2 has no pinned field-set hash"

type Config struct{ A int }

func (c Config) Key() int { return c.A + keyVersion }
