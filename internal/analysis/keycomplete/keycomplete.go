// Package keycomplete proves the repo's scariest invariant at build
// time: every exported field of sim.Config — and of every struct
// reachable from it — is written into the Key() fingerprint. A field
// that does not reach Key() makes two semantically different configs
// hash identically, so the run-orchestration layer's memo store and
// on-disk resume files silently serve one config's result for the
// other. The analyzer walks the call closure of the Key method,
// records which struct fields flow into the fingerprint, and reports
// any exported field left out; a field that is deliberately inert can
// opt out with a `simlint:"nokey"` struct tag.
//
// It also pins the fingerprinted field set to the keyVersion constant:
// a hash of the tracked structs' field lists is recorded in
// testdata/fieldhash.txt per (package, keyVersion), so changing the
// fingerprinted shape without bumping keyVersion — which would let
// stale persisted results alias the new encoding — is a build failure,
// not a convention. internal/sim's key_test derives its own version
// pin from the same hash (RepoFieldSet), so the test and the analyzer
// cannot drift apart.
package keycomplete

import (
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"resizecache/internal/analysis"
)

//go:embed testdata/fieldhash.txt
var pinData string

// PinOverride, when non-empty, replaces the embedded pin table —
// test-only, for exercising the pin diagnostics against fixtures.
var PinOverride string

// Analyzer is the keycomplete check.
var Analyzer = &analysis.Analyzer{
	Name: "keycomplete",
	Doc:  "every exported field reachable from Config must be written into the Key() fingerprint, and the fingerprinted field set must be pinned to keyVersion",
	Run:  run,
}

// result is the extracted fingerprint shape of one package.
type result struct {
	config   *types.Named
	keyDecl  *ast.FuncDecl
	tracked  []*types.Named // sorted by qualified name
	consumed map[*types.Named]map[string]bool
	version  int64 // keyVersion constant, -1 if absent
	verPos   *types.Const
	hash     string
}

func run(pass *analysis.Pass) error {
	res, err := analyze(pass.Pkg)
	if err != nil {
		return err
	}
	if res == nil {
		return nil // no Config/Key pair in this package: nothing to prove
	}

	for _, named := range res.tracked {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || nokey(st.Tag(i)) {
				continue
			}
			if !res.consumed[named][f.Name()] {
				pass.Reportf(f.Pos(),
					"exported field %s.%s does not reach %s's Key() fingerprint: encode it (and bump keyVersion) or tag it `simlint:\"nokey\"`",
					named.Obj().Name(), f.Name(), res.config.Obj().Name())
			}
		}
	}

	pins := parsePins()
	byVersion, pinned := pins[pass.Pkg.Path]
	if !pinned {
		return nil // package has no pin entries (e.g. fixtures): skip versioning
	}
	if res.version < 0 {
		pass.Reportf(res.keyDecl.Pos(),
			"package %s is pinned in fieldhash.txt but declares no keyVersion constant", pass.Pkg.Path)
		return nil
	}
	want, ok := byVersion[res.version]
	if !ok {
		pass.Reportf(res.verPos.Pos(),
			"keyVersion %d has no pinned field-set hash: add %q to internal/analysis/keycomplete/testdata/fieldhash.txt",
			res.version, fmt.Sprintf("%s %d %s", pass.Pkg.Path, res.version, res.hash))
		return nil
	}
	if want != res.hash {
		pass.Reportf(res.verPos.Pos(),
			"fingerprinted field set (hash %s) does not match the pin %s for keyVersion %d: the Key() encoding changed, so bump keyVersion and pin the new hash %q",
			res.hash, want, res.version, fmt.Sprintf("%s %d %s", pass.Pkg.Path, res.version+1, res.hash))
	}
	return nil
}

// analyze extracts the fingerprint shape of pkg, or nil if the package
// has no Config type with a Key method.
func analyze(pkg *analysis.Package) (*result, error) {
	scope := pkg.Types.Scope()
	obj := scope.Lookup("Config")
	if obj == nil {
		return nil, nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, nil
	}
	var keyFn *types.Func
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == "Key" {
			keyFn = m
			break
		}
	}
	if keyFn == nil {
		return nil, nil
	}
	decls := funcDecls(pkg)
	keyDecl := decls[keyFn]
	if keyDecl == nil {
		return nil, fmt.Errorf("keycomplete: no AST for %s.Key", named.Obj().Name())
	}

	res := &result{
		config:   named,
		keyDecl:  keyDecl,
		consumed: make(map[*types.Named]map[string]bool),
		version:  -1,
	}

	// Tracked closure: Config plus every named struct reachable through
	// exported, non-nokey fields (through slices, arrays, and pointers),
	// restricted to this module (stdlib structs are not ours to police).
	rootSeg := pkg.Path
	if i := strings.Index(rootSeg, "/"); i >= 0 {
		rootSeg = rootSeg[:i]
	}
	seen := map[*types.Named]bool{named: true}
	work := []*types.Named{named}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		st := n.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || nokey(st.Tag(i)) {
				continue
			}
			fn, ok := namedStruct(f.Type())
			if !ok || seen[fn] {
				continue
			}
			fpkg := fn.Obj().Pkg()
			if fpkg == nil {
				continue
			}
			fseg := fpkg.Path()
			if i := strings.Index(fseg, "/"); i >= 0 {
				fseg = fseg[:i]
			}
			if fseg != rootSeg {
				continue
			}
			seen[fn] = true
			work = append(work, fn)
		}
	}
	for n := range seen {
		res.tracked = append(res.tracked, n)
	}
	sort.Slice(res.tracked, func(i, j int) bool {
		return qualifiedName(res.tracked[i]) < qualifiedName(res.tracked[j])
	})

	// Consumption: walk Key's body and, transitively, every
	// same-package function it calls; a selector that resolves to a
	// field of a tracked struct marks that field (and, through the
	// selection's index path, any embedded hop) as fingerprinted.
	visited := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		decl := decls[fn]
		if decl == nil || decl.Body == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel := pkg.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
					markSelection(res, seen, sel)
				}
			case *ast.CallExpr:
				if callee := calleeFunc(pkg, n); callee != nil && callee.Pkg() == pkg.Types {
					visit(callee)
				}
			}
			return true
		})
	}
	visit(keyFn)

	// keyVersion constant and the field-set hash.
	if vobj, ok := scope.Lookup("keyVersion").(*types.Const); ok {
		if v, exact := constant.Int64Val(constant.ToInt(vobj.Val())); exact {
			res.version = v
			res.verPos = vobj
		}
	}
	res.hash = hashFieldSet(res.tracked)
	return res, nil
}

// markSelection records every tracked field the selection's index path
// touches: `l.Geom` through an embedded CacheSpec marks both
// LevelSpec.CacheSpec and CacheSpec.Geom.
func markSelection(res *result, tracked map[*types.Named]bool, sel *types.Selection) {
	t := sel.Recv()
	for _, idx := range sel.Index() {
		n, ok := namedStruct(t)
		if !ok {
			return
		}
		st := n.Underlying().(*types.Struct)
		if idx >= st.NumFields() {
			return
		}
		f := st.Field(idx)
		if tracked[n] {
			if res.consumed[n] == nil {
				res.consumed[n] = make(map[string]bool)
			}
			res.consumed[n][f.Name()] = true
		}
		t = f.Type()
	}
}

// namedStruct unwraps pointers, slices, arrays, and aliases down to a
// named struct type.
func namedStruct(t types.Type) (*types.Named, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// calleeFunc resolves a call's static callee, if it is a declared
// function or method (builtin, dynamic, and type-conversion calls
// resolve to nil). Generic instantiations resolve to their origin.
func calleeFunc(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := pkg.TypesInfo.Uses[id].(*types.Func); ok {
		return fn.Origin()
	}
	return nil
}

// funcDecls maps every declared function/method object to its AST.
func funcDecls(pkg *analysis.Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

func nokey(tag string) bool {
	return reflect.StructTag(tag).Get("simlint") == "nokey"
}

func qualifiedName(n *types.Named) string {
	if p := n.Obj().Pkg(); p != nil {
		return p.Path() + "." + n.Obj().Name()
	}
	return n.Obj().Name()
}

// hashFieldSet derives the canonical hash of the tracked structs'
// exported field lists: struct identity, field declaration order, field
// names, and field types (package-qualified by base name so the hash is
// stable across module renames). Both the analyzer's pin check and
// internal/sim's key_test compare against this exact derivation.
func hashFieldSet(tracked []*types.Named) string {
	qual := func(p *types.Package) string { return p.Name() }
	var b strings.Builder
	for _, n := range tracked {
		fmt.Fprintf(&b, "struct %s\n", qualifiedName(n))
		st := n.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || nokey(st.Tag(i)) {
				continue
			}
			fmt.Fprintf(&b, "  %s %s\n", f.Name(), types.TypeString(f.Type(), qual))
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}

// parsePins reads the pin table: one `<pkgpath> <version> <hash>` entry
// per line, '#' comments.
func parsePins() map[string]map[int64]string {
	data := pinData
	if PinOverride != "" {
		data = PinOverride
	}
	out := make(map[string]map[int64]string)
	for _, line := range strings.Split(data, "\n") {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(fields[1], "%d", &v); err != nil {
			continue
		}
		if out[fields[0]] == nil {
			out[fields[0]] = make(map[int64]string)
		}
		out[fields[0]][v] = fields[2]
	}
	return out
}

// RepoFieldSet loads this module's internal/sim package from source and
// returns its declared keyVersion and fingerprinted field-set hash.
// internal/sim's key_test derives its version-pin assertion from this,
// so the test and the analyzer share one definition of "the field set
// changed".
func RepoFieldSet() (version int64, hash string, err error) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		return 0, "", err
	}
	pkg, err := l.Load(l.ModulePath() + "/internal/sim")
	if err != nil {
		return 0, "", err
	}
	res, err := analyze(pkg)
	if err != nil {
		return 0, "", err
	}
	if res == nil {
		return 0, "", fmt.Errorf("keycomplete: internal/sim has no Config/Key pair")
	}
	return res.version, res.hash, nil
}

// Pin returns the pinned hash for (pkgpath, version) from the embedded
// table.
func Pin(pkgpath string, version int64) (string, bool) {
	h, ok := parsePins()[pkgpath][version]
	return h, ok
}
