// Package hotalloc turns PR 5's runtime allocation guards into static
// proof: a function annotated `//simlint:hotpath` in its doc comment —
// cache.Cache.Access, both engines' Run loops, the gang fan-out, the
// workload generator's Next — must contain no allocating construct, and
// neither may anything it statically calls, transitively across the
// whole module. Where testing.AllocsPerRun samples one configuration at
// runtime, hotalloc proves the property for every path at build time.
//
// Flagged constructs: make/new, append (may grow), heap composite
// literals (&T{...}, slice and map literals), closures, go/defer, map
// writes, string concatenation and string<->[]byte/[]rune conversions,
// arguments boxed into interface parameters, and calls into standard
// library packages that are not on the proven-alloc-free allowlist.
//
// Boundaries and escape hatches:
//
//   - `//simlint:coldpath <why>` on a callee's doc comment stops the
//     traversal there: the function is an explicitly amortized boundary
//     (a constructor, a per-phase or per-resize refresh) whose
//     allocations are by design not per-access/per-instruction work.
//   - `//simlint:allow <why>` on (or directly above) a construct's line
//     suppresses that single finding — one-time prologue allocations
//     inside an annotated engine loop, amortized trace appends.
//   - Dynamic (interface-method) calls are not traversed; the repo's
//     discipline is that hot implementations of those interfaces carry
//     their own `//simlint:hotpath` annotation (cache.Level.Access
//     implementations, workload.Source.Next implementations).
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"resizecache/internal/analysis"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "functions annotated //simlint:hotpath (and everything they statically call) must be free of allocating constructs",
	Run:  run,
}

// stdAllowlist names stdlib packages whose functions are alloc-free for
// our call patterns (pure arithmetic on machine words).
var stdAllowlist = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// checker carries the traversal state of one package's hotalloc run.
type checker struct {
	pass *analysis.Pass
	// decls/directives per loaded package, grown lazily as the
	// traversal crosses package boundaries.
	decls      map[*analysis.Package]map[*types.Func]*ast.FuncDecl
	directives map[*analysis.Package]map[string]map[int]map[string]bool // by filename
	byTypesPkg map[*types.Package]*analysis.Package
	visited    map[*types.Func]bool
	reported   map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:       pass,
		decls:      make(map[*analysis.Package]map[*types.Func]*ast.FuncDecl),
		directives: make(map[*analysis.Package]map[string]map[int]map[string]bool),
		byTypesPkg: make(map[*types.Package]*analysis.Package),
		visited:    make(map[*types.Func]bool),
		reported:   make(map[string]bool),
	}
	c.register(pass.Pkg)
	for fn, decl := range c.decls[pass.Pkg] {
		if analysis.FuncDirective(decl, "hotpath") {
			c.visit(pass.Pkg, fn, fn.FullName())
		}
	}
	return nil
}

// register indexes one package's declarations and directives.
func (c *checker) register(pkg *analysis.Package) {
	if _, ok := c.decls[pkg]; ok {
		return
	}
	decls := make(map[*types.Func]*ast.FuncDecl)
	dirs := make(map[string]map[int]map[string]bool)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
		dirs[pkg.Fset.Position(f.Pos()).Filename] = analysis.LineDirectives(pkg, f)
	}
	c.decls[pkg] = decls
	c.directives[pkg] = dirs
	c.byTypesPkg[pkg.Types] = pkg
}

// pkgFor resolves the analysis.Package that declares fn, loading it
// through the pass's dep resolver when the traversal leaves the current
// package. Returns nil when it cannot (no resolver, or non-module pkg).
func (c *checker) pkgFor(fn *types.Func) *analysis.Package {
	tp := fn.Pkg()
	if tp == nil {
		return nil
	}
	if p, ok := c.byTypesPkg[tp]; ok {
		return p
	}
	if c.pass.Dep == nil {
		return nil
	}
	p, err := c.pass.Dep(tp.Path())
	if err != nil || p == nil {
		return nil
	}
	c.register(p)
	return p
}

func (c *checker) suppressed(pkg *analysis.Package, n ast.Node) bool {
	pos := pkg.Fset.Position(n.Pos())
	return c.directives[pkg][pos.Filename][pos.Line]["allow"]
}

// reportf deduplicates findings that several hot roots reach through
// shared callees.
func (c *checker) reportf(pkg *analysis.Package, n ast.Node, root, format string, args ...any) {
	if c.suppressed(pkg, n) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if root != "" {
		msg += fmt.Sprintf(" (on the hot path of %s)", root)
	}
	pos := pkg.Fset.Position(n.Pos())
	key := fmt.Sprintf("%s:%d:%d:%s", pos.Filename, pos.Line, pos.Column, msg)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(n.Pos(), "%s", msg)
}

// visit checks fn's body and recurses into its static callees.
func (c *checker) visit(pkg *analysis.Package, fn *types.Func, root string) {
	if c.visited[fn] {
		return
	}
	c.visited[fn] = true
	decl := c.decls[pkg][fn]
	if decl == nil || decl.Body == nil {
		return
	}
	info := pkg.TypesInfo
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(pkg, n, root)
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.reportf(pkg, n, root, "heap-allocated composite literal")
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					c.reportf(pkg, n, root, "slice literal allocates")
				case *types.Map:
					c.reportf(pkg, n, root, "map literal allocates")
				}
			}
		case *ast.FuncLit:
			c.reportf(pkg, n, root, "closure allocates")
		case *ast.GoStmt:
			c.reportf(pkg, n, root, "go statement allocates a goroutine")
		case *ast.DeferStmt:
			c.reportf(pkg, n, root, "defer in a hot path")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := info.TypeOf(ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							c.reportf(pkg, ix, root, "map write may allocate")
						}
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := info.TypeOf(n); t != nil && isString(t) {
					c.reportf(pkg, n, root, "string concatenation allocates")
				}
			}
		}
		return true
	})
}

func (c *checker) checkCall(pkg *analysis.Package, call *ast.CallExpr, root string) {
	info := pkg.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Type conversions: boxing into an interface, or string<->bytes.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		target := tv.Type
		if types.IsInterface(target.Underlying()) && len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at.Underlying()) && !isUntypedNil(info, call.Args[0]) {
				c.reportf(pkg, call, root, "conversion to interface %s boxes its operand", types.TypeString(target, qualBase))
			}
		}
		if len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); at != nil && convAllocates(at, target) {
				c.reportf(pkg, call, root, "conversion %s -> %s copies/allocates",
					types.TypeString(at, qualBase), types.TypeString(target, qualBase))
			}
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.reportf(pkg, call, root, "make allocates")
			case "new":
				c.reportf(pkg, call, root, "new allocates")
			case "append":
				c.reportf(pkg, call, root, "append may grow its backing array")
			}
			return
		}
	}

	callee := calleeFunc(info, call)
	if callee == nil {
		// Dynamic: an interface method or a called function value. Not
		// traversed — hot implementations carry their own annotation.
		return
	}

	// Interface boxing at the call boundary.
	if sig, ok := callee.Type().(*types.Signature); ok {
		c.checkBoxing(pkg, call, sig, root)
	}

	cpkg := callee.Pkg()
	if cpkg == nil {
		return
	}
	if cpkg == pkg.Types || sameModule(pkg.Path, cpkg.Path()) {
		target := c.pkgFor(callee)
		if target == nil {
			c.reportf(pkg, call, root, "cannot verify call to %s (package %s not loadable): annotate it //simlint:coldpath or run under cmd/simlint", callee.Name(), cpkg.Path())
			return
		}
		tdecl := c.decls[target][callee]
		if tdecl == nil {
			c.reportf(pkg, call, root, "cannot verify call to %s: no declaration found", callee.FullName())
			return
		}
		if analysis.FuncDirective(tdecl, "coldpath") {
			return // explicitly amortized boundary
		}
		c.visit(target, callee, root)
		return
	}
	if !stdAllowlist[cpkg.Path()] {
		c.reportf(pkg, call, root, "call into %s is not proven alloc-free: hoist it out of the hot path or annotate //simlint:allow <why>", cpkg.Path())
	}
}

// checkBoxing flags concrete arguments passed to interface parameters.
func (c *checker) checkBoxing(pkg *analysis.Package, call *ast.CallExpr, sig *types.Signature, root string) {
	info := pkg.TypesInfo
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) || isUntypedNil(info, arg) {
			continue
		}
		c.reportf(pkg, arg, root, "argument boxed into interface parameter %s", types.TypeString(pt, qualBase))
	}
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if sel.Kind() == types.MethodVal {
				if types.IsInterface(sel.Recv().Underlying()) {
					return nil // dynamic dispatch
				}
				if fn, ok := sel.Obj().(*types.Func); ok {
					return fn.Origin()
				}
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin() // package-qualified call
		}
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// convAllocates reports whether a conversion from -> to copies into a
// fresh allocation (string <-> []byte/[]rune).
func convAllocates(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func sameModule(a, b string) bool {
	seg := func(s string) string {
		if i := strings.Index(s, "/"); i >= 0 {
			return s[:i]
		}
		return s
	}
	return seg(a) == seg(b)
}

func qualBase(p *types.Package) string { return p.Name() }
