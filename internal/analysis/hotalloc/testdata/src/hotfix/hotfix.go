// Package hotfix is the hotalloc fixture: one annotated hot root that
// trips every flagged construct once, a transitive same-package callee
// that allocates, an allowlisted math call, a suppressed prologue
// allocation, and a coldpath boundary the traversal must not cross.
package hotfix

import (
	"fmt"
	"math"
)

type sink struct{ v []int }

//simlint:hotpath fixture root
func Hot(s *sink, m map[int]int, name string) int {
	x := make([]int, 4)     // want "make allocates"
	p := new(int)           // want "new allocates"
	s.v = append(s.v, 1)    // want "append may grow its backing array"
	q := &sink{}            // want "heap-allocated composite literal"
	l := []int{1, 2}        // want "slice literal allocates"
	mm := map[int]int{1: 1} // want "map literal allocates"
	f := func() {}          // want "closure allocates"
	go f()                  // want "go statement allocates a goroutine"
	defer f()               // want "defer in a hot path"
	m[1] = 2                // want "map write may allocate"
	str := "a" + name       // want "string concatenation allocates"
	bs := []byte(str)       // want "copies/allocates"
	iv := any(p)            // want "boxes its operand"
	fmt.Sprint(1)           // want "argument boxed into interface parameter" "call into fmt is not proven alloc-free"
	r := math.Sqrt(4)       // allowlisted stdlib package: no finding
	//simlint:allow fixture: one-time prologue, outside the loop
	ok := make([]int, 1)
	helper()
	cold()
	_, _, _ = mm, bs, iv
	return x[0] + *p + len(q.v) + len(l) + int(r) + ok[0] + m[1]
}

// helper is NOT annotated: it is reached transitively from Hot, so its
// allocation is reported on Hot's hot path.
func helper() int {
	y := make([]int, 2) // want "make allocates"
	return len(y)
}

// cold is an amortized boundary: the traversal stops here.
//
//simlint:coldpath fixture: amortized constructor
func cold() []int {
	return make([]int, 8)
}
