package hotalloc

import (
	"testing"

	"resizecache/internal/analysis/analysistest"
)

// TestHotPathAllocations is the acceptance fixture: every allocating
// construct inside (or transitively reachable from) a
// //simlint:hotpath function is a finding; coldpath boundaries,
// allow-suppressed lines, and allowlisted math calls are not.
func TestHotPathAllocations(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "hotfix")
}
