package analysis

import (
	"go/types"
	"testing"
)

// TestLoadSimPackage proves the offline loader can fully type-check a
// real module package (and, transitively, its stdlib imports via the
// source importer) — the capability every analyzer rests on.
func TestLoadSimPackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath() != "resizecache" {
		t.Fatalf("module path = %q, want resizecache", l.ModulePath())
	}
	pkg, err := l.Load("resizecache/internal/sim")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	obj := pkg.Types.Scope().Lookup("Config")
	if obj == nil {
		t.Fatalf("sim.Config not found in loaded package")
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatalf("sim.Config is %T, want struct", obj.Type().Underlying())
	}
	if st.NumFields() < 10 {
		t.Fatalf("sim.Config has %d fields, expected a full config struct", st.NumFields())
	}
}

func TestModulePackagesListsKnownPackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.ModulePackages()
	if err != nil {
		t.Fatalf("ModulePackages: %v", err)
	}
	want := map[string]bool{
		"resizecache":              false,
		"resizecache/internal/sim": false,
		"resizecache/cmd/simlint":  false,
	}
	for _, p := range pkgs {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("ModulePackages missing %s (got %d packages)", p, len(pkgs))
		}
	}
}
