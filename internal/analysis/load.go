package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader type-checks packages of one module plus their standard-library
// dependencies without any external tooling: module-local import paths
// resolve to directories under the module root and are parsed from
// source, everything else is delegated to the toolchain's source
// importer (which type-checks the standard library from GOROOT). The
// result is a fully typed Pass per package, built offline — no go/
// packages, no export data, no network.
//
// A Loader is safe for use from a single goroutine; the package cache
// makes repeated loads (e.g. one per analyzer) cheap.
type Loader struct {
	Fset *token.FileSet

	moduleRoot string
	modulePath string

	std  types.ImporterFrom
	pkgs map[string]*Package // by import path
}

// Package is one loaded, type-checked package.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors holds type-checker soft errors. Analysis runs on
	// best-effort information when they are non-empty; drivers surface
	// them so a broken tree fails loudly instead of silently passing.
	TypeErrors []error
}

// NewLoader returns a Loader rooted at the module containing dir: the
// nearest parent directory (including dir itself) holding a go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modpath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modpath = strings.TrimSpace(rest)
			break
		}
	}
	if modpath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		moduleRoot: root,
		modulePath: modpath,
		std:        std,
		pkgs:       make(map[string]*Package),
	}, nil
}

// ModuleRoot returns the absolute path of the module root directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath returns the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModulePackages returns the import paths of every package directory in
// the module, sorted: directories under the root that contain at least
// one non-test .go file, skipping testdata, hidden directories, and
// vendor — the same set `go build ./...` would compile.
func (l *Loader) ModulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.moduleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(l.moduleRoot, path)
				if err != nil {
					return err
				}
				ip := l.modulePath
				if rel != "." {
					ip = l.modulePath + "/" + filepath.ToSlash(rel)
				}
				out = append(out, ip)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Load type-checks the package with the given import path (module-local
// or standard library) and caches the result.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: import path %q is outside module %s", path, l.modulePath)
	}
	p, err := l.LoadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir parses and type-checks the non-test .go files of one
// directory under the given import path. Used directly by test harness
// fixtures whose directories live outside the module package tree.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, TypesInfo: info}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil && tpkg == nil {
		return nil, err
	}
	pkg.Types = tpkg
	return pkg, nil
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.modulePath {
		return l.moduleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// loaderImporter adapts the Loader for go/types: module-local imports
// recurse through Load, anything else goes to the stdlib source
// importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.stdImport(path)
}

// stdImport serializes stdlib imports through the source importer; the
// importer itself is not safe for concurrent use and Loader methods may
// be reached from tests running in parallel.
var stdMu sync.Mutex

func (l *Loader) stdImport(path string) (*types.Package, error) {
	stdMu.Lock()
	defer stdMu.Unlock()
	return l.std.ImportFrom(path, l.moduleRoot, 0)
}
