// Package analysis is a self-contained static-analysis framework in the
// shape of golang.org/x/tools/go/analysis, built only on the standard
// library's go/ast + go/types (the environment this repo builds in has
// no module proxy, so x/tools itself is unavailable). It exists to host
// the repo-specific analyzers under internal/analysis/... — keycomplete,
// hotalloc, determinism, ctxflow — which prove at build time the three
// invariants the paper's claims rest on: every sim.Config field reaches
// the Key() fingerprint, annotated hot paths stay allocation-free, and
// simulation output is independent of map order and wall-clock state.
//
// The driver is cmd/simlint; tests use the sibling analysistest package
// with `// want "regexp"` fixtures, mirroring the upstream idiom.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer describes one check. Run inspects a Pass and reports
// findings through pass.Report*; a non-nil error aborts the driver (it
// means the analyzer itself failed, not that the code has findings).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// Dep resolves another module-local package by import path, letting
	// analyzers follow static calls across package boundaries (hotalloc
	// proves hot paths transitively through the whole module). May be
	// nil — e.g. under the fixture test harness — in which case
	// cross-package reasoning degrades gracefully per analyzer.
	Dep func(path string) (*Package, error)

	diagnostics []Diagnostic
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes one analyzer over one package and returns its findings
// sorted by position. An optional dep resolver enables cross-package
// reasoning (see Pass.Dep).
func Run(a *Analyzer, pkg *Package, dep ...func(path string) (*Package, error)) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Pkg: pkg}
	if len(dep) > 0 {
		pass.Dep = dep[0]
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
	}
	ds := pass.diagnostics
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Pos.Filename != ds[j].Pos.Filename {
			return ds[i].Pos.Filename < ds[j].Pos.Filename
		}
		if ds[i].Pos.Line != ds[j].Pos.Line {
			return ds[i].Pos.Line < ds[j].Pos.Line
		}
		return ds[i].Pos.Column < ds[j].Pos.Column
	})
	return ds, nil
}

// Directive is one `//simlint:<verb>` comment. Directives attach to
// declarations (in their doc comment) or to statements (an end-of-line
// or immediately preceding comment), and carry an optional free-text
// justification after the verb.
const directivePrefix = "//simlint:"

// FuncDirective reports whether fn's doc comment carries the given
// simlint directive verb (e.g. "hotpath", "coldpath").
func FuncDirective(fn *ast.FuncDecl, verb string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if directiveVerb(c.Text) == verb {
			return true
		}
	}
	return false
}

// directiveVerb extracts the verb of a simlint directive comment, or "".
func directiveVerb(text string) string {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return ""
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// LineDirectives collects, per file line, the simlint directive verbs
// attached to that line: a directive comment suppresses findings on its
// own line and on the line directly below, covering both the
// end-of-line form and the comment-above-the-statement form.
func LineDirectives(pkg *Package, file *ast.File) map[int]map[string]bool {
	out := make(map[int]map[string]bool)
	add := func(line int, verb string) {
		if out[line] == nil {
			out[line] = make(map[string]bool)
		}
		out[line][verb] = true
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			verb := directiveVerb(c.Text)
			if verb == "" {
				continue
			}
			line := pkg.Fset.Position(c.Pos()).Line
			add(line, verb)
			add(line+1, verb)
		}
	}
	return out
}
