package ctxflow

import (
	"testing"

	"resizecache/internal/analysis/analysistest"
)

func TestCtxflowFindings(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "ctxfix")
}
