// Package ctxflow enforces runner-layer hygiene around batch
// scheduling and cancellation:
//
//  1. The wait function returned by Enqueue-style batch calls
//     (Runner.Enqueue, experiment.EnqueueSweeps — any call whose result
//     tuple ends in func()) must be consumed, not discarded. Dropping
//     it leaks in-flight simulations past store flushes: the documented
//     contract is "cancel ctx, then wait, before flushing", and a
//     blank-assigned wait function makes that impossible.
//
//  2. A function that accepts a context.Context must actually thread
//     it: calling context.Background()/context.TODO() inside such a
//     function severs the caller's cancellation chain, and a context
//     parameter that is never used at all means the entry point
//     advertises cancellability it does not deliver.
//
// Suppress an individual finding with `//simlint:allow <why>` on (or
// directly above) its line.
package ctxflow

import (
	"go/ast"
	"go/types"

	"resizecache/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "Enqueue wait funcs must be consumed, and context.Context must thread through every sweep entry point",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Files {
		directives := analysis.LineDirectives(pass.Pkg, file)
		suppressed := func(n ast.Node) bool {
			return directives[pass.Pkg.Fset.Position(n.Pos()).Line]["allow"]
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxParam(pass, fd, suppressed)
			checkBody(pass, fd, info, suppressed)
		}
	}
	return nil
}

// checkCtxParam flags context parameters that are declared but never
// used (blank-named parameters are an explicit choice and exempt).
func checkCtxParam(pass *analysis.Pass, fd *ast.FuncDecl, suppressed func(ast.Node) bool) {
	info := pass.Pkg.TypesInfo
	for _, field := range fd.Type.Params.List {
		if !isContextType(info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
					used = true
					return false
				}
				return !used
			})
			if !used && !suppressed(name) {
				pass.Reportf(name.Pos(),
					"context parameter %q is never used: thread it through the sweep (or name it _ if this entry point is genuinely uncancellable)",
					name.Name)
			}
		}
	}
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, info *types.Info, suppressed func(ast.Node) bool) {
	hasCtx := false
	for _, field := range fd.Type.Params.List {
		if isContextType(info.TypeOf(field.Type)) && len(field.Names) > 0 {
			for _, n := range field.Names {
				if n.Name != "_" {
					hasCtx = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested closure defines its own scope; keep walking — a
			// Background() call inside it still severs the chain when
			// the enclosing function has a ctx.
			return true
		case *ast.CallExpr:
			if hasCtx && isBackgroundOrTODO(info, n) && !suppressed(n) {
				pass.Reportf(n.Pos(),
					"context.%s inside a function that already receives a context severs the caller's cancellation chain: pass the parameter through",
					calleeName(n))
			}
		case *ast.AssignStmt:
			checkEnqueueAssign(pass, n, info, suppressed)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if i := waitResultIndex(info, call); i >= 0 && !suppressed(n) {
					pass.Reportf(n.Pos(),
						"%s's returned wait function is discarded: the batch contract is cancel, wait, then flush — consume it",
						calleeName(call))
				}
			}
		}
		return true
	})
}

// checkEnqueueAssign flags `n, _ := r.Enqueue(...)` — a blank-assigned
// wait function.
func checkEnqueueAssign(pass *analysis.Pass, as *ast.AssignStmt, info *types.Info, suppressed func(ast.Node) bool) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	i := waitResultIndex(info, call)
	if i < 0 || i >= len(as.Lhs) {
		return
	}
	if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" && !suppressed(as) {
		pass.Reportf(as.Pos(),
			"%s's returned wait function is assigned to _: the batch contract is cancel, wait, then flush — consume it",
			calleeName(call))
	}
}

// waitResultIndex returns the index of the trailing func() result of an
// Enqueue-style call (a function whose name starts with "Enqueue" and
// whose final result is a niladic func), or -1.
func waitResultIndex(info *types.Info, call *ast.CallExpr) int {
	name := calleeName(call)
	if len(name) < 7 || name[:7] != "Enqueue" {
		return -1
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return -1
	}
	last := sig.Results().Len() - 1
	fsig, ok := sig.Results().At(last).Type().Underlying().(*types.Signature)
	if !ok || fsig.Params().Len() != 0 || fsig.Results().Len() != 0 {
		return -1
	}
	return last
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isBackgroundOrTODO(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO")
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
