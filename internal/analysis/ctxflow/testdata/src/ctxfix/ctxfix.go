// Package ctxfix is the ctxflow fixture: a batch runner in the repo's
// Enqueue shape, discarded and blank-assigned wait funcs, a severed
// cancellation chain, and an unused context parameter.
package ctxfix

import "context"

type runner struct{}

// Enqueue mirrors the repo's batch contract: the trailing func() is
// the wait handle.
func (r *runner) Enqueue(ctx context.Context, n int) (int, func()) {
	if ctx == nil {
		return 0, func() {}
	}
	return n, func() {}
}

func Unused(ctx context.Context, n int) int { // want "context parameter \"ctx\" is never used"
	return n + 1
}

func Severed(ctx context.Context, r *runner) int {
	n, wait := r.Enqueue(ctx, 1)
	bg := context.Background() // want "context.Background inside a function that already receives a context"
	m, w2 := r.Enqueue(bg, 2)
	w2()
	wait()
	return n + m
}

func Discards(ctx context.Context, r *runner) int {
	r.Enqueue(ctx, 1)         // want "Enqueue's returned wait function is discarded"
	n, _ := r.Enqueue(ctx, 2) // want "Enqueue's returned wait function is assigned to _"
	//simlint:allow fixture: the wait handle is intentionally dropped here
	r.Enqueue(ctx, 3)
	return n
}

// Uncancellable names its context _: an explicit opt-out, no finding.
func Uncancellable(_ context.Context) int { return 0 }
