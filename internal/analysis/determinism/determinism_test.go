package determinism

import (
	"testing"

	"resizecache/internal/analysis/analysistest"
)

func TestDeterminismFindings(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "detfix")
}
