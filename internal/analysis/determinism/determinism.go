// Package determinism protects the repo's bit-identity contract: a
// simulation must produce the same Result whether it runs solo, inside
// a gang, or resumed from a persisted store — the golden-fixture oracle
// and the gang-vs-solo tests all depend on it, and so does every
// content-addressed memo hit. The analyzer forbids the three stdlib
// constructs that silently break it inside the simulation packages:
//
//   - wall-clock reads (time.Now / time.Since / time.Until);
//   - the global math/rand generators (any use of math/rand or
//     math/rand/v2 — the workload layer has its own seeded xorshift);
//   - ranging over a map, whose iteration order differs run to run.
//
// A map range that is provably order-insensitive (e.g. the keys are
// collected and sorted before use) is annotated `//simlint:ordered
// <why>`; any finding can be suppressed with `//simlint:allow <why>`.
// The driver applies this analyzer to the deterministic core —
// internal/{sim,cpu,cache,core,workload,runner} — not to reporting or
// benchmarking layers, where wall-clock time is legitimate.
package determinism

import (
	"go/ast"
	"go/types"

	"resizecache/internal/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand, and map-order-dependent iteration in the deterministic simulation core",
	Run:  run,
}

// forbiddenTimeFuncs are the wall-clock entry points; the rest of
// package time (Duration arithmetic, formatting constants) is fine.
var forbiddenTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		directives := analysis.LineDirectives(pass.Pkg, file)
		suppressed := func(pos ast.Node, verbs ...string) bool {
			line := pass.Pkg.Fset.Position(pos.Pos()).Line
			for _, v := range verbs {
				if directives[line][v] {
					return true
				}
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.Pkg.TypesInfo.Uses[n]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if fn, ok := obj.(*types.Func); ok && forbiddenTimeFuncs[fn.Name()] && !suppressed(n, "allow") {
						pass.Reportf(n.Pos(),
							"time.%s reads the wall clock: simulation output must be a pure function of the config (suppress with //simlint:allow <why>)",
							fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !suppressed(n, "allow") {
						pass.Reportf(n.Pos(),
							"use of %s.%s: the simulation core must use its own seeded generators (internal/workload's xorshift), not math/rand",
							obj.Pkg().Name(), obj.Name())
					}
				}
			case *ast.RangeStmt:
				t := pass.Pkg.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap && !suppressed(n, "ordered", "allow") {
					pass.Reportf(n.Pos(),
						"map iteration order is nondeterministic: iterate a sorted slice, or annotate //simlint:ordered <why> if the consumer is order-insensitive")
				}
			}
			return true
		})
	}
	return nil
}
