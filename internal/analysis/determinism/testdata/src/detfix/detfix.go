// Package detfix is the determinism fixture: wall-clock reads, global
// math/rand, and a bare map range are findings; the ordered and allow
// directives suppress, and slice iteration is untouched.
package detfix

import (
	"math/rand"
	"time"
)

func Bad(m map[string]int) int64 {
	t := time.Now()    // want "time.Now reads the wall clock"
	d := time.Since(t) // want "time.Since reads the wall clock"
	x := rand.Int()    // want "use of rand.Int"
	total := 0
	for k := range m { // want "map iteration order is nondeterministic"
		total += m[k]
	}
	//simlint:ordered fixture: consumer sorts before any order-sensitive use
	for k := range m {
		total += m[k]
	}
	//simlint:allow fixture: deliberate wall-clock read
	now := time.Now()
	return int64(total) + int64(d) + int64(x) + now.Unix()
}

// Fine ranges over a slice: iteration order is defined, no finding;
// non-clock uses of package time are also fine.
func Fine(xs []int) time.Duration {
	total := 0
	for _, v := range xs {
		total += v
	}
	return time.Duration(total) * time.Millisecond
}
