package cache

import (
	"testing"
	"testing/quick"

	"resizecache/internal/geometry"
)

// refCache is an executable specification of the cache's hit/miss
// semantics: per-set LRU lists over block addresses with explicit
// enabled-set/way masking and the organizations' flush rules. The real
// Cache must agree with it event-for-event on arbitrary access streams,
// including across resizes.
type refCache struct {
	blockBytes int
	effSets    int
	effWays    int
	sets       map[int][]uint64 // set -> MRU-first block list
}

func newRefCache(g geometry.Geometry) *refCache {
	return &refCache{
		blockBytes: g.BlockBytes,
		effSets:    g.Sets(),
		effWays:    g.Assoc,
		sets:       map[int][]uint64{},
	}
}

func (r *refCache) index(block uint64) int { return int(block & uint64(r.effSets-1)) }

// access returns true on hit.
func (r *refCache) access(addr uint64) bool {
	block := addr / uint64(r.blockBytes)
	s := r.index(block)
	list := r.sets[s]
	for i, b := range list {
		if b == block {
			// Move to MRU.
			copy(list[1:i+1], list[:i])
			list[0] = block
			return true
		}
	}
	list = append([]uint64{block}, list...)
	if len(list) > r.effWays {
		list = list[:r.effWays]
	}
	r.sets[s] = list
	return false
}

// resize applies the organizations' flush semantics.
func (r *refCache) resize(effSets, effWays int) {
	// Ways down: truncate each list (LRU blocks beyond the mask are the
	// ones held in disabled ways only if they were there... the real
	// cache disables *physical* ways, which under LRU fill order hold
	// the least recently used blocks in steady state; matching exactly
	// requires tracking physical placement, so the reference instead
	// flushes everything when ways shrink — and so must the comparison
	// driver, which only checks agreement on streams whose resizes the
	// reference models exactly: set changes and full flushes.
	if effWays < r.effWays {
		r.sets = map[int][]uint64{}
	}
	if effSets < r.effSets {
		// Disabled sets flush.
		for s := range r.sets {
			if s >= effSets {
				delete(r.sets, s)
			}
		}
	}
	if effSets > r.effSets {
		// Remapped blocks flush: keep only blocks whose index under the
		// new width equals their current set.
		for s, list := range r.sets {
			var keep []uint64
			for _, b := range list {
				if int(b&uint64(effSets-1)) == s {
					keep = append(keep, b)
				}
			}
			r.sets[s] = keep
		}
	}
	r.effSets = effSets
	r.effWays = effWays
}

// TestCacheMatchesGoldenModel drives the real cache and the reference
// with identical random streams, interleaving selective-sets resizes, and
// requires identical hit/miss outcomes at every step.
func TestCacheMatchesGoldenModel(t *testing.T) {
	f := func(seed uint32, ops []uint16) bool {
		g := testGeom() // 4K 2-way, 64 sets
		c, err := New(Config{Name: "dut", Geom: g, HitLatency: 1,
			Energy: geometry.Default18um()}, &stubLevel{latency: 5})
		if err != nil {
			return false
		}
		ref := newRefCache(g)
		x := uint64(seed) | 1
		now := uint64(0)
		for _, op := range ops {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			if op%97 == 0 {
				// Resize sets: pick among full, half, quarter.
				sets := g.Sets() >> (x % 3)
				if _, err := c.SetEnabled(now, sets, c.EffWays()); err != nil {
					return false
				}
				ref.resize(sets, ref.effWays)
				continue
			}
			addr := (x % 4096) * 32
			missesBefore := c.Stat.Misses.Value()
			now = c.Access(now, addr, op%3 == 0)
			dutHit := c.Stat.Misses.Value() == missesBefore
			refHit := ref.access(addr)
			if dutHit != refHit {
				t.Logf("divergence at addr %x: dut hit=%v ref hit=%v", addr, dutHit, refHit)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheMatchesGoldenModelWithWayMasking drives way-only resizes where
// the reference flushes everything on downsize; the real cache keeps
// blocks in still-enabled ways, so it may only ever have MORE hits —
// never a hit the reference lacks in the same set beyond capacity. This
// checks the containment invariant rather than exact equality.
func TestCacheMatchesGoldenModelWithWayMasking(t *testing.T) {
	f := func(seed uint32, ops []uint16) bool {
		g := geometry.Geometry{SizeBytes: 8 << 10, Assoc: 4, BlockBytes: 32, SubarrayBytes: 1 << 10}
		c, err := New(Config{Name: "dut", Geom: g, HitLatency: 1,
			Energy: geometry.Default18um()}, &stubLevel{latency: 5})
		if err != nil {
			return false
		}
		x := uint64(seed) | 1
		now := uint64(0)
		for _, op := range ops {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			if op%61 == 0 {
				ways := 1 + int(x%4)
				if _, err := c.SetEnabled(now, c.EffSets(), ways); err != nil {
					return false
				}
				continue
			}
			now = c.Access(now, (x%4096)*32, op%3 == 0)
			// Occupancy invariant after every step.
			count := 0
			c.Contents(func(_, _ int, _ Line) { count++ })
			if count > c.EffSets()*c.EffWays() {
				return false
			}
		}
		st := &c.Stat
		return st.Hits.Value()+st.Misses.Value() == st.Accesses.Value()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
