package cache

// mshrFile is a small fully-associative file of miss-status holding
// registers. Each entry tracks one outstanding block miss and the cycle
// at which its fill completes. Secondary misses to the same block
// coalesce onto the existing entry; when all entries are busy the next
// miss must wait for the earliest completion (a structural stall the
// out-of-order engine partially hides and the in-order engine exposes).
type mshrFile struct {
	blocks  []uint64
	readyAt []uint64
	// maxReady is the latest outstanding completion time: when now has
	// passed it, no entry is busy and coalesce/earliestFree resolve with
	// one compare instead of a scan — the common case on the hit path,
	// where every access probes for an in-flight fill.
	maxReady uint64
}

func newMSHRFile(entries int) *mshrFile {
	return &mshrFile{
		blocks:  make([]uint64, entries),
		readyAt: make([]uint64, entries),
	}
}

// coalesce returns the completion time of an outstanding miss for block,
// if one exists at cycle now.
func (m *mshrFile) coalesce(block uint64, now uint64) (uint64, bool) {
	if m.maxReady <= now {
		return 0, false
	}
	for i, b := range m.blocks {
		if m.readyAt[i] > now && b == block {
			return m.readyAt[i], true
		}
	}
	return 0, false
}

// earliestFree returns the earliest cycle >= now at which an entry is
// available.
func (m *mshrFile) earliestFree(now uint64) uint64 {
	if m.maxReady <= now {
		return now
	}
	var best uint64 = ^uint64(0)
	for _, r := range m.readyAt {
		if r <= now {
			return now
		}
		if r < best {
			best = r
		}
	}
	return best
}

// allocate records a new outstanding miss completing at readyAt,
// replacing any entry that has already drained.
func (m *mshrFile) allocate(block uint64, readyAt uint64) {
	oldestIdx, oldest := 0, ^uint64(0)
	for i, r := range m.readyAt {
		if r < oldest {
			oldest = r
			oldestIdx = i
		}
	}
	m.blocks[oldestIdx] = block
	m.readyAt[oldestIdx] = readyAt
	if readyAt > m.maxReady {
		m.maxReady = readyAt
	}
}

// outstandingAt reports how many entries are busy at cycle now (tests).
func (m *mshrFile) outstandingAt(now uint64) int {
	n := 0
	for _, r := range m.readyAt {
		if r > now {
			n++
		}
	}
	return n
}
