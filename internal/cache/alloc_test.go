package cache

import (
	"testing"

	"resizecache/internal/geometry"
)

// silentLevel is a constant-latency next level that records nothing, so
// it cannot allocate on the access path.
type silentLevel struct{ latency uint64 }

func (s *silentLevel) Access(now uint64, addr uint64, write bool) uint64 { return now + s.latency }
func (s *silentLevel) Warm(addr uint64, write bool)                      {}
func (s *silentLevel) Finalize(uint64)                                   {}
func (s *silentLevel) EnergyPJ() float64                                 { return 0 }

// TestAccessSteadyStateZeroAllocs locks in the table-driven hot path's
// allocation behaviour: once constructed (and warmed through its MSHR
// and writeback structures), Cache.Access must not allocate — hits,
// misses, fills, and buffered writebacks all run on preallocated state.
func TestAccessSteadyStateZeroAllocs(t *testing.T) {
	c, err := New(Config{
		Name: "dut", Geom: testGeom(), HitLatency: 1,
		Energy: geometry.Default18um(), MSHREntries: 4, WritebackEntries: 2,
	}, &silentLevel{latency: 40})
	if err != nil {
		t.Fatal(err)
	}

	now := uint64(0)
	step := func(i uint64) {
		// An odd block stride over a footprint past the cache size forces
		// steady misses with dirty victims (every third access writes),
		// exercising fill, victim writeback, and MSHR turnover alongside
		// re-walk hits across all sets.
		addr := (i % 512) * 33 * 32
		done := c.Access(now, addr, i%3 == 0)
		if done > now {
			now = done
		}
		now++
	}
	for i := uint64(0); i < 4096; i++ {
		step(i) // warm arrays, MSHRs, and the writeback buffer
	}

	var i uint64
	allocs := testing.AllocsPerRun(2000, func() {
		step(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Cache.Access allocated %.2f times per access in steady state; want 0", allocs)
	}
}

// TestWritebackBufferFullBackpressure pins the writeback buffer's
// full-buffer semantics after the acquire refactor: when every slot is
// draining, a victim writeback stalls the fill until the earliest
// entry's drain cycle — acquire cannot fail, it resolves to that cycle
// by construction.
func TestWritebackBufferFullBackpressure(t *testing.T) {
	b := newWritebackBuffer(2)

	// Fill both slots with drains at cycles 100 and 200.
	if at := b.acquire(0); at != 0 {
		t.Fatalf("acquire on empty buffer: got cycle %d, want 0", at)
	}
	b.commit(100)
	if at := b.acquire(0); at != 0 {
		t.Fatalf("acquire with one free slot: got cycle %d, want 0", at)
	}
	b.commit(200)

	// Full buffer: the next acquire must resolve to the earliest drain.
	if at := b.acquire(10); at != 100 {
		t.Fatalf("acquire on full buffer: got cycle %d, want 100 (earliest drain)", at)
	}
	b.commit(300)

	// The slot that drained at 100 was reused; now the earliest is 200.
	if at := b.acquire(150); at != 200 {
		t.Fatalf("acquire on refilled buffer: got cycle %d, want 200", at)
	}
	b.commit(400)

	if got := b.occupancyAt(250); got != 2 {
		t.Fatalf("occupancy at 250: got %d, want 2", got)
	}
}

// TestWritebackFullBufferStallsFill drives the full cache path: a
// 1-entry writeback buffer with a slow next level must back-pressure a
// fill behind a second dirty eviction, and the returned completion time
// must reflect the stall (regression for the unchecked second reserve).
func TestWritebackFullBufferStallsFill(t *testing.T) {
	next := &stubLevel{latency: 100}
	c, err := New(Config{
		Name: "dut", Geom: testGeom(), HitLatency: 1,
		Energy: geometry.Default18um(), WritebackEntries: 1,
	}, next)
	if err != nil {
		t.Fatal(err)
	}

	// Two writes to addresses that map to set 0 dirty two blocks.
	c.Access(0, 0*64*1024, true)
	c.Access(1, 1*64*1024, true)
	// Two more conflicting misses evict both dirty blocks back to back.
	// The first writeback buffers at its start cycle; the second finds
	// the single slot draining (drain = next access latency = 100+) and
	// must wait for it.
	d1 := c.Access(2, 2*64*1024, false)
	d2 := c.Access(3, 3*64*1024, false)
	if c.Stat.Writebacks.Value() != 2 {
		t.Fatalf("writebacks: got %d, want 2", c.Stat.Writebacks.Value())
	}
	if d2 <= d1 {
		t.Fatalf("second conflicting fill (%d) did not stall behind the full writeback buffer (first: %d)", d2, d1)
	}
	// The second fill cannot complete before the first writeback's drain
	// (which started at the first miss's next-level completion).
	if d2 < 100 {
		t.Fatalf("second fill at %d completed before the buffered writeback could drain", d2)
	}
}
