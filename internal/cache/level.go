// Package cache implements the memory-hierarchy substrate: set-associative
// LRU cache arrays with subarray enable/disable masking (the mechanism
// resizable organizations are built on), miss-status holding registers
// (MSHRs) for non-blocking behaviour, writeback buffers, a unified L2, and
// a fixed-latency main-memory model.
//
// Timing model: every access carries the requester's current cycle and
// returns the absolute cycle at which the data is available. Structural
// hazards (MSHR exhaustion, writeback-buffer fills) surface as later
// completion times; the CPU models decide how much of that latency is
// exposed (blocking in-order vs. overlap-limited out-of-order).
//
// Energy model: each level integrates switching energy per access (scaled
// by its *enabled* subarrays at that moment) plus per-cycle clock and
// leakage energy for enabled capacity, using geometry.EnergyModel.
package cache

// Level is one level of the memory hierarchy.
type Level interface {
	// Access performs a read (write=false) or write (write=true) of the
	// block containing addr, starting at cycle now, and returns the cycle
	// at which the request completes.
	Access(now uint64, addr uint64, write bool) (doneAt uint64)
	// Warm performs a functional access: it advances tag, LRU, and dirty
	// state exactly as Access would — same hit/miss decisions, same
	// victim choice, same dirty-victim propagation — but models no
	// timing and charges no energy or statistics. Fast-forward windows
	// of the sampled execution mode use it to keep arrays warm between
	// detailed windows.
	Warm(addr uint64, write bool)
	// Finalize integrates background (clock/leakage) energy up to
	// endCycle. It must be called exactly once, after the simulation.
	Finalize(endCycle uint64)
	// EnergyPJ returns the energy consumed so far in picojoules.
	EnergyPJ() float64
}

// AccessKind distinguishes cache-array operations for energy accounting.
type AccessKind int

const (
	// KindLookup is a read probe: tag compare in every enabled way plus a
	// full data-row read.
	KindLookup AccessKind = iota
	// KindStoreLookup is a write probe: tag compare in every enabled way
	// but only a word-sized data drive (stores do not sense the row).
	KindStoreLookup
	// KindFill writes a full block fetched from the next level.
	KindFill
	// KindWritebackRead reads a victim block out of the array.
	KindWritebackRead
	// KindFlushRead reads a block during a resize-induced flush.
	KindFlushRead

	// numAccessKinds sizes the per-kind precomputed energy tables.
	numAccessKinds = int(KindFlushRead) + 1
)
