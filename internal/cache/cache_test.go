package cache

import (
	"testing"
	"testing/quick"

	"resizecache/internal/geometry"
)

// stubLevel is a scripted next level recording accesses.
type stubLevel struct {
	latency uint64
	reads   int
	writes  int
	addrs   []uint64
}

func (s *stubLevel) Access(now uint64, addr uint64, write bool) uint64 {
	if write {
		s.writes++
	} else {
		s.reads++
	}
	s.addrs = append(s.addrs, addr)
	return now + s.latency
}
func (s *stubLevel) Warm(addr uint64, write bool) { s.Access(0, addr, write) }
func (s *stubLevel) Finalize(uint64)              {}
func (s *stubLevel) EnergyPJ() float64            { return 0 }

func testGeom() geometry.Geometry {
	// Small geometry keeps tests readable: 4K 2-way, 32B blocks, 1K
	// subarrays -> 64 sets, 2 subarrays per way.
	return geometry.Geometry{SizeBytes: 4 << 10, Assoc: 2, BlockBytes: 32, SubarrayBytes: 1 << 10}
}

func newTestCache(t *testing.T, cfg Config, next Level) *Cache {
	t.Helper()
	if cfg.Geom.SizeBytes == 0 {
		cfg.Geom = testGeom()
	}
	if cfg.Name == "" {
		cfg.Name = "L1"
	}
	if cfg.HitLatency == 0 {
		cfg.HitLatency = 1
	}
	cfg.Energy = geometry.Default18um()
	if next == nil {
		next = &stubLevel{latency: 10}
	}
	c, err := New(cfg, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// addrFor builds an address that maps to the given set with the given tag
// under the *full* geometry.
func addrFor(g geometry.Geometry, set, tag int) uint64 {
	return uint64(tag)<<uint(g.IndexBits()+g.OffsetBits()) | uint64(set)<<uint(g.OffsetBits())
}

func TestHitAfterMiss(t *testing.T) {
	next := &stubLevel{latency: 10}
	c := newTestCache(t, Config{}, next)
	a := addrFor(testGeom(), 3, 7)

	done := c.Access(0, a, false)
	if done <= 1 {
		t.Fatalf("first access should miss: done=%d", done)
	}
	if next.reads != 1 {
		t.Fatalf("next level reads = %d, want 1", next.reads)
	}
	done = c.Access(done, a, false)
	if got := c.Stat.Hits.Value(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if done != c.Stat.Accesses.Value()+0 && done == 0 {
		t.Fatal("hit must complete")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := newTestCache(t, Config{}, nil)
	g := testGeom()
	a := addrFor(g, 5, 1)
	b := addrFor(g, 5, 2)
	d := addrFor(g, 5, 3)

	now := c.Access(0, a, false)
	now = c.Access(now, b, false)
	now = c.Access(now, a, false) // a is now MRU
	now = c.Access(now, d, false) // evicts b (LRU)
	misses := c.Stat.Misses.Value()
	now = c.Access(now, a, false)
	if c.Stat.Misses.Value() != misses {
		t.Fatal("a should still hit after d evicted the LRU block")
	}
	c.Access(now, b, false)
	if c.Stat.Misses.Value() != misses+1 {
		t.Fatal("b should have been evicted")
	}
}

func TestDirtyVictimWritesBack(t *testing.T) {
	next := &stubLevel{latency: 10}
	c := newTestCache(t, Config{}, next)
	g := testGeom()
	a := addrFor(g, 9, 1)
	b := addrFor(g, 9, 2)
	d := addrFor(g, 9, 3)

	now := c.Access(0, a, true) // dirty
	now = c.Access(now, b, false)
	c.Access(now, d, false) // evicts dirty a
	if next.writes != 1 {
		t.Fatalf("writebacks to next = %d, want 1", next.writes)
	}
	if c.Stat.Writebacks.Value() != 1 {
		t.Fatalf("writeback counter = %d", c.Stat.Writebacks.Value())
	}
	// The written-back address must be block a's address.
	found := false
	for _, ad := range next.addrs {
		if ad == a {
			found = true
		}
	}
	if !found {
		t.Fatal("victim writeback address mismatch")
	}
}

func TestCleanVictimSilentlyDropped(t *testing.T) {
	next := &stubLevel{latency: 10}
	c := newTestCache(t, Config{}, next)
	g := testGeom()
	now := c.Access(0, addrFor(g, 9, 1), false)
	now = c.Access(now, addrFor(g, 9, 2), false)
	c.Access(now, addrFor(g, 9, 3), false)
	if next.writes != 0 {
		t.Fatalf("clean eviction caused %d writes", next.writes)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	next := &stubLevel{latency: 10}
	c := newTestCache(t, Config{}, next)
	g := testGeom()
	a := addrFor(g, 4, 1)
	now := c.Access(0, a, false) // clean fill
	now = c.Access(now, a, true) // write hit dirties
	now = c.Access(now, addrFor(g, 4, 2), false)
	c.Access(now, addrFor(g, 4, 3), false) // evict a
	if next.writes != 1 {
		t.Fatal("write-hit block must write back on eviction")
	}
}

func TestMSHRCoalescing(t *testing.T) {
	next := &stubLevel{latency: 50}
	c := newTestCache(t, Config{MSHREntries: 4}, next)
	g := testGeom()
	a := addrFor(g, 1, 1)
	done1 := c.Access(0, a, false)
	// Second access to the same block while the miss is outstanding: must
	// coalesce (no second next-level read) and complete no later.
	done2 := c.Access(2, a+8, false) // same block, different word
	if next.reads != 1 {
		t.Fatalf("next reads = %d, want 1 (coalesced)", next.reads)
	}
	if done2 > done1 {
		t.Fatalf("coalesced miss finishes at %d after primary %d", done2, done1)
	}
	if c.Stat.MSHRCoalesced.Value() != 1 {
		t.Fatal("coalesce not counted")
	}
}

func TestMSHRStructuralStall(t *testing.T) {
	next := &stubLevel{latency: 100}
	c := newTestCache(t, Config{MSHREntries: 2}, next)
	g := testGeom()
	// Three distinct blocks missing back-to-back at cycle 0..2: the third
	// must wait for an MSHR slot.
	d1 := c.Access(0, addrFor(g, 1, 1), false)
	_ = c.Access(1, addrFor(g, 2, 1), false)
	d3 := c.Access(2, addrFor(g, 3, 1), false)
	if c.Stat.MSHRStalls.Value() != 1 {
		t.Fatalf("MSHR stalls = %d, want 1", c.Stat.MSHRStalls.Value())
	}
	if d3 <= d1 {
		t.Fatalf("stalled miss %d should finish after first %d", d3, d1)
	}
}

func TestCoalescedStoreDirtiesBlock(t *testing.T) {
	next := &stubLevel{latency: 50}
	c := newTestCache(t, Config{MSHREntries: 4}, next)
	g := testGeom()
	a := addrFor(g, 1, 1)
	done := c.Access(0, a, false) // primary load miss
	_ = c.Access(2, a+16, true)   // coalesced store
	now := c.Access(done, addrFor(g, 1, 2), false)
	c.Access(now, addrFor(g, 1, 3), false) // evict a
	if next.writes != 1 {
		t.Fatal("block dirtied by coalesced store must write back")
	}
}

func TestBlockingCacheSerializesMisses(t *testing.T) {
	next := &stubLevel{latency: 100}
	c := newTestCache(t, Config{}, next) // no MSHRs: blocking
	g := testGeom()
	d1 := c.Access(0, addrFor(g, 1, 1), false)
	if d1 < 100 {
		t.Fatalf("miss latency %d too small", d1)
	}
	// A blocking cache has no coalescing; same-block re-access after
	// completion hits.
	d2 := c.Access(d1, addrFor(g, 1, 1), false)
	if d2 != d1+1 {
		t.Fatalf("post-fill hit done=%d, want %d", d2, d1+1)
	}
}

func TestResizeWaysDownFlushesDirtyOnly(t *testing.T) {
	next := &stubLevel{latency: 10}
	c := newTestCache(t, Config{}, next)
	g := testGeom()
	// Fill both ways of set 0: way0 gets a (dirty via later store), way1 b.
	a := addrFor(g, 0, 1)
	b := addrFor(g, 0, 2)
	now := c.Access(0, a, true)
	now = c.Access(now, b, false)

	fl, err := c.SetEnabled(now, c.EffSets(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// One of the two blocks lives in way 1 and must be invalidated; the
	// LRU fill order puts a in way0, b in way1, so b (clean) flushes.
	if fl.Invalidated != 1 {
		t.Fatalf("invalidated = %d, want 1", fl.Invalidated)
	}
	if fl.Writebacks != 0 {
		t.Fatalf("clean flush should not write back, got %d", fl.Writebacks)
	}
	if c.EnabledBytes() != g.SizeBytes/2 {
		t.Fatalf("enabled bytes = %d", c.EnabledBytes())
	}
	// a must still hit; b must miss.
	misses := c.Stat.Misses.Value()
	now = c.Access(now, a, false)
	if c.Stat.Misses.Value() != misses {
		t.Fatal("way-0 block lost by way-1 disable")
	}
	c.Access(now, b, false)
	if c.Stat.Misses.Value() != misses+1 {
		t.Fatal("way-1 block survived disable")
	}
}

func TestResizeSetsDownFlushesDisabledSets(t *testing.T) {
	next := &stubLevel{latency: 10}
	c := newTestCache(t, Config{}, next)
	g := testGeom()
	half := g.Sets() / 2
	lowSet := 3
	highSet := half + 5
	aLow := addrFor(g, lowSet, 1)
	aHigh := addrFor(g, highSet, 1)
	now := c.Access(0, aLow, false)
	now = c.Access(now, aHigh, true) // dirty block in a to-be-disabled set

	fl, err := c.SetEnabled(now, half, c.EffWays())
	if err != nil {
		t.Fatal(err)
	}
	if fl.Invalidated != 1 || fl.Writebacks != 1 {
		t.Fatalf("flush = %+v, want 1 invalidated / 1 writeback", fl)
	}
	if next.writes != 1 {
		t.Fatal("dirty flush must reach next level")
	}
	// aHigh now maps to set highSet & (half-1) = 5 and must miss.
	misses := c.Stat.Misses.Value()
	c.Access(now, aHigh, false)
	if c.Stat.Misses.Value() != misses+1 {
		t.Fatal("block in disabled set must miss after downsize")
	}
}

func TestResizeSetsUpFlushesRemappedBlocks(t *testing.T) {
	next := &stubLevel{latency: 10}
	c := newTestCache(t, Config{}, next)
	g := testGeom()
	half := g.Sets() / 2
	if _, err := c.SetEnabled(0, half, c.EffWays()); err != nil {
		t.Fatal(err)
	}
	// Two blocks that alias to set 2 at half size but map to different
	// sets at full size: tags chosen so full-size index differs.
	aStay := addrFor(g, 2, 4)      // full-size set 2
	aMove := addrFor(g, 2+half, 4) // full-size set 2+half, half-size set 2
	now := c.Access(0, aStay, false)
	now = c.Access(now, aMove, false)

	fl, err := c.SetEnabled(now, g.Sets(), c.EffWays())
	if err != nil {
		t.Fatal(err)
	}
	if fl.Invalidated != 1 {
		t.Fatalf("remap flush invalidated = %d, want 1 (clean blocks flush too)", fl.Invalidated)
	}
	misses := c.Stat.Misses.Value()
	now = c.Access(now, aStay, false)
	if c.Stat.Misses.Value() != misses {
		t.Fatal("unmoved block must survive upsize")
	}
	c.Access(now, aMove, false)
	if c.Stat.Misses.Value() != misses+1 {
		t.Fatal("remapped block must have been flushed on upsize")
	}
}

func TestResizeRejectsInvalid(t *testing.T) {
	c := newTestCache(t, Config{}, nil)
	if _, err := c.SetEnabled(0, 3, 1); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
	if _, err := c.SetEnabled(0, c.EffSets(), 0); err == nil {
		t.Fatal("zero ways accepted")
	}
	if _, err := c.SetEnabled(0, c.EffSets()*2, 1); err == nil {
		t.Fatal("oversize sets accepted")
	}
	cMin := newTestCache(t, Config{ProvisionTagForMinSets: 16}, nil)
	if _, err := cMin.SetEnabled(0, 8, 1); err == nil {
		t.Fatal("resize below provisioned tag minimum accepted")
	}
}

func TestResizeNoopDoesNothing(t *testing.T) {
	c := newTestCache(t, Config{}, nil)
	fl, err := c.SetEnabled(0, c.EffSets(), c.EffWays())
	if err != nil || fl.Invalidated != 0 {
		t.Fatalf("noop resize: %+v, %v", fl, err)
	}
	if c.Stat.Resizes.Value() != 0 {
		t.Fatal("noop resize counted")
	}
}

func TestEnergyScalesWithEnabledSize(t *testing.T) {
	run := func(halfSets bool) float64 {
		c := newTestCache(t, Config{}, nil)
		if halfSets {
			if _, err := c.SetEnabled(0, c.EffSets()/2, c.EffWays()); err != nil {
				t.Fatal(err)
			}
		}
		g := testGeom()
		now := uint64(0)
		for i := 0; i < 2000; i++ {
			now = c.Access(now, addrFor(g, i%8, 1), false)
		}
		c.Finalize(now + 1000)
		return c.EnergyPJ()
	}
	full, half := run(false), run(true)
	if half >= full {
		t.Fatalf("downsized cache energy %v >= full %v", half, full)
	}
}

func TestProvisionedTagCostsMore(t *testing.T) {
	run := func(minSets int) float64 {
		c := newTestCache(t, Config{ProvisionTagForMinSets: minSets}, nil)
		g := testGeom()
		now := uint64(0)
		for i := 0; i < 1000; i++ {
			now = c.Access(now, addrFor(g, i%8, 1), false)
		}
		c.Finalize(now)
		return c.EnergyPJ()
	}
	conventional := run(0)
	provisioned := run(2) // tag array sized for a 2-set minimum
	if provisioned <= conventional {
		t.Fatal("selective-sets provisioned tag must dissipate more than conventional")
	}
}

func TestAvgEnabledBytesIntegration(t *testing.T) {
	c := newTestCache(t, Config{}, nil)
	g := testGeom()
	// Full size for ~1000 cycles, then half size for ~1000 cycles.
	now := uint64(0)
	for now < 1000 {
		now = c.Access(now, addrFor(g, 0, 1), false)
	}
	if _, err := c.SetEnabled(1000, c.EffSets()/2, c.EffWays()); err != nil {
		t.Fatal(err)
	}
	c.Finalize(2000)
	avg := c.AvgEnabledBytes()
	want := float64(g.SizeBytes)*0.5 + float64(g.SizeBytes/2)*0.5
	if avg < want*0.95 || avg > want*1.05 {
		t.Fatalf("avg enabled = %v, want ~%v", avg, want)
	}
}

func TestMemoryModel(t *testing.T) {
	m := NewMemory(32)
	if got := m.Latency(); got != 80+5*4 {
		t.Fatalf("latency = %d, want 100", got)
	}
	done := m.Access(7, 0x1000, false)
	if done != 7+100 {
		t.Fatalf("done = %d", done)
	}
	if m.Accesses() != 1 || m.EnergyPJ() <= 0 {
		t.Fatal("memory accounting broken")
	}
	m64 := NewMemory(64)
	if m64.Latency() != 80+5*8 {
		t.Fatalf("64B latency = %d, want 120", m64.Latency())
	}
}

func TestWritebackBufferBackpressure(t *testing.T) {
	b := newWritebackBuffer(2)
	if at := b.acquire(0); at != 0 {
		t.Fatalf("first acquire = %d, want 0", at)
	}
	b.commit(100)
	if at := b.acquire(0); at != 0 {
		t.Fatalf("second acquire = %d, want 0", at)
	}
	b.commit(200)
	// Full at cycle 50: acquire stalls to the earliest drain.
	if at := b.acquire(50); at != 100 {
		t.Fatalf("full-buffer acquire = %d, want 100 (earliest drain)", at)
	}
	b.commit(180)
	if got := b.occupancyAt(150); got != 2 {
		t.Fatalf("occupancy at 150 = %d, want 2", got)
	}
	// At a drain time the slot is free again with no stall.
	if at := b.acquire(200); at != 200 {
		t.Fatalf("acquire at drain time = %d, want 200", at)
	}
}

func TestMSHRFileAccounting(t *testing.T) {
	m := newMSHRFile(2)
	m.allocate(1, 100)
	m.allocate(2, 200)
	if got := m.outstandingAt(50); got != 2 {
		t.Fatalf("outstanding = %d", got)
	}
	if r, ok := m.coalesce(1, 50); !ok || r != 100 {
		t.Fatalf("coalesce = %d,%v", r, ok)
	}
	if _, ok := m.coalesce(1, 150); ok {
		t.Fatal("drained entry must not coalesce")
	}
	if f := m.earliestFree(50); f != 100 {
		t.Fatalf("earliestFree = %d", f)
	}
	if f := m.earliestFree(150); f != 150 {
		t.Fatalf("earliestFree after drain = %d", f)
	}
}

// Property: for a random access stream, total hits+misses == accesses and
// the cache never reports a hit for an address it could not contain.
func TestCacheCountingInvariantProperty(t *testing.T) {
	f := func(seed uint32, writes []bool) bool {
		next := &stubLevel{latency: 20}
		cfg := Config{Name: "p", Geom: testGeom(), HitLatency: 1, Energy: geometry.Default18um()}
		c, err := New(cfg, next)
		if err != nil {
			return false
		}
		x := uint64(seed) | 1
		now := uint64(0)
		for _, w := range writes {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			addr := (x % 8192) * 8
			now = c.Access(now, addr, w)
		}
		st := &c.Stat
		if st.Hits.Value()+st.Misses.Value() != st.Accesses.Value() {
			return false
		}
		return st.Fills.Value() == st.Misses.Value()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: resident block count never exceeds enabled capacity in blocks.
func TestOccupancyBoundProperty(t *testing.T) {
	f := func(seed uint32, n uint16, halfWays, halfSets bool) bool {
		c, err := New(Config{Name: "p", Geom: testGeom(), HitLatency: 1,
			Energy: geometry.Default18um()}, &stubLevel{latency: 5})
		if err != nil {
			return false
		}
		ways := c.EffWays()
		sets := c.EffSets()
		if halfWays {
			ways = 1
		}
		if halfSets {
			sets /= 2
		}
		if _, err := c.SetEnabled(0, sets, ways); err != nil {
			return false
		}
		x := uint64(seed) | 1
		now := uint64(0)
		for i := 0; i < int(n)%2000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			now = c.Access(now, (x%65536)*4, x&1 == 0)
		}
		count := 0
		c.Contents(func(_, _ int, _ Line) { count++ })
		return count <= sets*ways
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
