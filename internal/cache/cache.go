package cache

import (
	"fmt"

	"resizecache/internal/geometry"
	"resizecache/internal/stats"
)

// Line is one cache block frame.
type Line struct {
	BlockAddr uint64 // full block address (addr >> offsetBits)
	Valid     bool
	Dirty     bool
	lastUse   uint64 // LRU timestamp
}

// Stats aggregates per-cache event counts.
type Stats struct {
	Accesses      stats.Counter
	Hits          stats.Counter
	Misses        stats.Counter
	Fills         stats.Counter
	Writebacks    stats.Counter
	FlushedBlocks stats.Counter
	FlushedDirty  stats.Counter
	Resizes       stats.Counter
	MSHRCoalesced stats.Counter
	MSHRStalls    stats.Counter
}

// MissRatio returns misses/accesses.
func (s *Stats) MissRatio() float64 { return s.Misses.Ratio(&s.Accesses) }

// Config parameterizes a cache level.
type Config struct {
	Name       string
	Geom       geometry.Geometry
	HitLatency uint64
	AddrBits   int
	Energy     geometry.EnergyModel

	// ProvisionTagForMinSets, when nonzero, sizes the tag array for a
	// configuration with this many sets (the smallest offered size).
	// Selective-sets and hybrid caches must set this: smaller
	// configurations need more tag bits, so every access compares the
	// wider provisioned tag (paper §2.1). Zero means a conventional tag
	// array sized for the full geometry.
	ProvisionTagForMinSets int

	// MSHREntries > 0 makes the cache non-blocking with that many miss
	// registers; 0 models a blocking cache.
	MSHREntries int
	// WritebackEntries sizes the writeback buffer; 0 disables buffering
	// (victim writebacks serialize with the miss).
	WritebackEntries int

	// DelayedPrecharge models a lower level (e.g. L2) that precharges
	// only the accessed subarrays, trading access time for energy
	// (paper §3). L1s use all-subarray precharge.
	DelayedPrecharge bool

	// AblationFullPrecharge charges every access (and every idle cycle)
	// as if all subarrays were enabled, regardless of resizing masks —
	// removing the entire energy benefit of resizing. Used by the
	// ablation benchmarks to isolate the enabled-subarray accounting.
	AblationFullPrecharge bool

	// AblationFreeFlush performs resize flushes for correctness but
	// charges no array energy and sends no writeback traffic for them —
	// isolating the cost of the organizations' flush semantics.
	AblationFreeFlush bool
}

// Cache is a set-associative writeback cache with subarray masking.
// The array is allocated at the full configured geometry; the effective
// configuration (enabled sets and ways) may be lowered and raised by the
// resizable organizations in internal/core via SetEnabled.
type Cache struct {
	cfg     Config
	next    Level
	lines   []Line // maxSets*maxWays frames, way-major within each set
	maxSets int
	maxWays int

	effSets int // enabled sets (power of two)
	effWays int // enabled ways

	useClock uint64
	mshr     *mshrFile
	wb       *writebackBuffer

	Stat Stats

	energyPJ      float64 // switching (per-access) energy
	idlePJ        float64 // background energy: clock tree + leakage
	lastIdleCycle uint64
	finalized     bool

	// Derived hot-path state, refreshed by refreshDerived at construction
	// and at the end of SetEnabled — the only points where the effective
	// configuration changes. Access/fetchAndFill/writebackVictim read
	// these instead of re-deriving geometry and energy per access.
	offBits       uint                    // block-offset shift
	setMask       uint64                  // effSets - 1
	accessPJ      [numAccessKinds]float64 // switching energy per AccessKind
	idleCyclePJ   float64                 // clock+leakage per cycle
	enabledBytesF float64                 // float64(EnabledBytes())

	// size×time integral for average-enabled-size reporting
	sizeIntegral   float64
	totalSizeSpanC uint64
}

// New builds a cache level in its full-size configuration.
func New(cfg Config, next Level) (*Cache, error) {
	if err := cfg.Geom.Validate(); err != nil {
		return nil, fmt.Errorf("cache %s: %w", cfg.Name, err)
	}
	if cfg.AddrBits <= 0 {
		cfg.AddrBits = 40
	}
	if next == nil {
		return nil, fmt.Errorf("cache %s: next level required", cfg.Name)
	}
	c := &Cache{
		cfg:     cfg,
		next:    next,
		maxSets: cfg.Geom.Sets(),
		maxWays: cfg.Geom.Assoc,
	}
	c.lines = make([]Line, c.maxSets*c.maxWays)
	c.effSets = c.maxSets
	c.effWays = c.maxWays
	c.refreshDerived()
	if cfg.MSHREntries > 0 {
		c.mshr = newMSHRFile(cfg.MSHREntries)
	}
	if cfg.WritebackEntries > 0 {
		c.wb = newWritebackBuffer(cfg.WritebackEntries)
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// EffSets returns the number of currently enabled sets.
func (c *Cache) EffSets() int { return c.effSets }

// EffWays returns the number of currently enabled ways.
func (c *Cache) EffWays() int { return c.effWays }

// EnabledBytes returns the currently enabled data capacity.
func (c *Cache) EnabledBytes() int {
	return c.effSets * c.effWays * c.cfg.Geom.BlockBytes
}

func (c *Cache) offsetBits() int { return c.cfg.Geom.OffsetBits() }

func (c *Cache) blockAddr(addr uint64) uint64 { return addr >> c.offBits }

func (c *Cache) setIndex(block uint64) int { return int(block & c.setMask) }

// setLines returns the line frames of one set (all maxWays of them; the
// callers bound their scans by effWays).
func (c *Cache) setLines(set int) []Line {
	base := set * c.maxWays
	return c.lines[base : base+c.maxWays]
}

// enabledDataSubarrays returns the number of powered data subarrays under
// the current mask: each enabled way contributes subarrays proportional
// to the enabled-set fraction.
func (c *Cache) enabledDataSubarrays() int {
	per := c.cfg.Geom.SubarraysPerWay() * c.effSets / c.maxSets
	if per < 1 {
		per = 1
	}
	return per * c.effWays
}

// tagSubarrays approximates the tag array as one-eighth of the data area,
// with a floor of one subarray per enabled way.
func (c *Cache) enabledTagSubarrays() int {
	t := c.enabledDataSubarrays() / 8
	if t < c.effWays {
		t = c.effWays
	}
	return t
}

// fullTagSubarrays is the tag subarray count with everything enabled.
func (c *Cache) fullTagSubarrays() int {
	t := c.cfg.Geom.SubarraysPerWay() * c.maxWays / 8
	if t < c.maxWays {
		t = c.maxWays
	}
	return t
}

// comparedTagBits returns the tag width compared on each lookup. With a
// provisioned (selective-sets) tag array, the full provisioned width is
// read and compared regardless of the current size.
func (c *Cache) comparedTagBits() int {
	sets := c.effSets
	if c.cfg.ProvisionTagForMinSets > 0 {
		sets = c.cfg.ProvisionTagForMinSets
	}
	idx := 0
	for s := sets; s > 1; s >>= 1 {
		idx++
	}
	t := c.cfg.AddrBits - idx - c.offsetBits()
	if t < 0 {
		t = 0
	}
	return t
}

// accessProfile builds the energy-attribution profile for one access
// kind under the current effective configuration. It is evaluated only
// by refreshDerived; the per-access path indexes the resulting table.
func (c *Cache) accessProfile(kind AccessKind) geometry.AccessProfile {
	g := c.cfg.Geom
	rowBits := g.BlockBytes * 8
	p := geometry.AccessProfile{
		EnabledDataSubarrays: c.enabledDataSubarrays(),
		EnabledTagSubarrays:  c.enabledTagSubarrays(),
		TagBits:              c.comparedTagBits(),
		BlockBits:            rowBits,
		RowBits:              rowBits,
		TagRowBits:           c.comparedTagBits() + 8, // tag + valid/dirty/LRU state
	}
	if c.cfg.AblationFullPrecharge {
		// All subarrays precharge regardless of resizing masks.
		p.EnabledDataSubarrays = c.cfg.Geom.SubarraysPerWay() * c.maxWays
		p.EnabledTagSubarrays = c.fullTagSubarrays()
	}
	switch kind {
	case KindLookup:
		p.AccessedWays = c.effWays
	case KindStoreLookup:
		// Tag compare in every enabled way, no data-row sensing, one
		// 64-bit word driven into the selected way.
		p.AccessedWays = c.effWays
		p.BlockBits = 0
		p.WriteThroughBits = 64
	case KindFill:
		p.AccessedWays = 0
		p.WriteThroughBits = rowBits
	case KindWritebackRead, KindFlushRead:
		p.AccessedWays = 1
	}
	if c.cfg.DelayedPrecharge {
		// Only the accessed subarrays precharge: one per accessed way,
		// plus one tag subarray per way probed.
		ways := p.AccessedWays
		if ways == 0 {
			ways = 1
		}
		p.EnabledDataSubarrays = ways
		p.EnabledTagSubarrays = ways
	}
	return p
}

// refreshDerived recomputes every pure function of the effective
// configuration the per-access path depends on: the per-kind switching
// energy table, the idle-cycle energy rate, the enabled-capacity weight
// for the size-time integral, and the address-decomposition constants.
// Every entry is the exact value the per-access path used to compute
// inline, so accumulating from the table is bit-identical — the
// refactor moves when the arithmetic happens, never what is computed.
func (c *Cache) refreshDerived() {
	c.offBits = uint(c.cfg.Geom.OffsetBits())
	c.setMask = uint64(c.effSets - 1)

	var profiles [numAccessKinds]geometry.AccessProfile
	for k := range profiles {
		profiles[k] = c.accessProfile(AccessKind(k))
	}
	copy(c.accessPJ[:], c.cfg.Energy.AccessEnergies(profiles[:]))

	subs := c.enabledDataSubarrays() + c.enabledTagSubarrays()
	bytes := c.EnabledBytes()
	if c.cfg.AblationFullPrecharge {
		subs = c.cfg.Geom.SubarraysPerWay()*c.maxWays + c.fullTagSubarrays()
		bytes = c.cfg.Geom.SizeBytes
	}
	c.idleCyclePJ = c.cfg.Energy.IdleCyclePJ(subs, bytes)
	c.enabledBytesF = float64(c.EnabledBytes())
}

func (c *Cache) chargeArray(kind AccessKind) {
	c.energyPJ += c.accessPJ[kind]
}

// integrateIdle accrues clock+leakage energy and the size-time integral
// up to cycle now.
func (c *Cache) integrateIdle(now uint64) {
	if now <= c.lastIdleCycle {
		return
	}
	span := float64(now - c.lastIdleCycle)
	c.idlePJ += span * c.idleCyclePJ
	c.sizeIntegral += span * c.enabledBytesF
	c.totalSizeSpanC += now - c.lastIdleCycle
	c.lastIdleCycle = now
}

// Access implements Level.
//
//simlint:hotpath per-memory-reference; PR 5 pinned this at zero steady-state allocations
func (c *Cache) Access(now uint64, addr uint64, write bool) uint64 {
	c.integrateIdle(now)
	c.Stat.Accesses.Inc()
	c.useClock++
	if write {
		c.chargeArray(KindStoreLookup)
	} else {
		c.chargeArray(KindLookup)
	}

	block := c.blockAddr(addr)
	set := c.setIndex(block)
	ways := c.setLines(set)
	for w := 0; w < c.effWays; w++ {
		ln := &ways[w]
		if ln.Valid && ln.BlockAddr == block {
			c.Stat.Hits.Inc()
			ln.lastUse = c.useClock
			if write {
				ln.Dirty = true
			}
			done := now + c.cfg.HitLatency
			// Fills install block state synchronously, so an access that
			// arrives while the fill is still in flight appears as a hit;
			// it is really a secondary (coalesced) miss and must wait for
			// the outstanding fill to complete.
			if c.mshr != nil {
				if ready, ok := c.mshr.coalesce(block, done); ok {
					c.Stat.MSHRCoalesced.Inc()
					return ready
				}
			}
			return done
		}
	}

	// Miss path.
	c.Stat.Misses.Inc()
	missStart := now + c.cfg.HitLatency // detect miss after tag check

	if c.mshr != nil {
		if free := c.mshr.earliestFree(missStart); free > missStart {
			c.Stat.MSHRStalls.Inc()
			missStart = free
		}
	}

	fillDone := c.fetchAndFill(missStart, addr, block, set, write)

	if c.mshr != nil {
		c.mshr.allocate(block, fillDone)
	}
	return fillDone
}

// Warm implements Level: the functional twin of Access. It walks the same
// tag/LRU/dirty state machine — identical hit decisions, identical victim
// selection, identical dirty-victim propagation to the next level — but
// performs no timing, charges no energy, and records no statistics, MSHR,
// or writeback-buffer activity. useClock is shared with Access so LRU
// ordering stays consistent when detailed and fast-forward windows
// interleave.
//
//simlint:hotpath per-memory-reference during fast-forward windows
func (c *Cache) Warm(addr uint64, write bool) {
	c.useClock++
	block := c.blockAddr(addr)
	set := c.setIndex(block)
	ways := c.setLines(set)
	for w := 0; w < c.effWays; w++ {
		ln := &ways[w]
		if ln.Valid && ln.BlockAddr == block {
			ln.lastUse = c.useClock
			if write {
				ln.Dirty = true
			}
			return
		}
	}

	// Miss: warm the next level, evict as Access would, install.
	c.next.Warm(addr, false)
	victim := 0
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.effWays; w++ {
		ln := &ways[w]
		if !ln.Valid {
			victim = w
			oldest = 0
			break
		}
		if ln.lastUse < oldest {
			oldest = ln.lastUse
			victim = w
		}
	}
	ln := &ways[victim]
	if ln.Valid && ln.Dirty {
		c.next.Warm(ln.BlockAddr<<c.offBits, true)
	}
	*ln = Line{BlockAddr: block, Valid: true, Dirty: write, lastUse: c.useClock}
}

// fetchAndFill requests the block from the next level, selects a victim,
// performs any writeback, and installs the block. Returns completion time.
func (c *Cache) fetchAndFill(start uint64, addr, block uint64, set int, write bool) uint64 {
	nextDone := c.next.Access(start, addr, false)

	// Victim selection among enabled ways: prefer invalid, else LRU.
	ways := c.setLines(set)
	victim := 0
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.effWays; w++ {
		ln := &ways[w]
		if !ln.Valid {
			victim = w
			oldest = 0
			break
		}
		if ln.lastUse < oldest {
			oldest = ln.lastUse
			victim = w
		}
	}
	ln := &ways[victim]
	fillAt := nextDone
	if ln.Valid && ln.Dirty {
		fillAt = c.writebackVictim(nextDone, ln.BlockAddr)
	}
	c.chargeArray(KindFill)
	c.Stat.Fills.Inc()
	*ln = Line{BlockAddr: block, Valid: true, Dirty: write, lastUse: c.useClock}
	return fillAt
}

// writebackVictim reads the victim and sends it to the next level via the
// writeback buffer (if present). Returns the cycle at which the fill may
// proceed (a full buffer back-pressures the fill).
func (c *Cache) writebackVictim(now uint64, victimBlock uint64) uint64 {
	c.chargeArray(KindWritebackRead)
	c.Stat.Writebacks.Inc()
	victimAddr := victimBlock << c.offBits
	if c.wb == nil {
		return c.next.Access(now, victimAddr, true)
	}
	// acquire cannot fail: a full buffer resolves to the earliest drain
	// cycle, at which a slot is free by construction.
	slotAt := c.wb.acquire(now)
	done := c.next.Access(slotAt, victimAddr, true)
	c.wb.commit(done)
	return slotAt // fill proceeds once buffered, not once drained
}

// ResizeFlush describes what a resize operation evicted.
type ResizeFlush struct {
	Invalidated int // total blocks invalidated
	Writebacks  int // dirty blocks written back to the next level
}

// SetEnabled changes the effective configuration to effSets×effWays,
// applying the organization-specific flush semantics:
//
//   - any way being disabled has its dirty blocks written back and all
//     its blocks invalidated (they become unreachable);
//   - any set being disabled likewise flushes;
//   - when sets are *enabled* (upsize), every resident block whose set
//     mapping changes under the new index width is flushed — clean or
//     dirty — matching the paper's selective-sets semantics (§2.1).
//
// The operation is performed at cycle now for energy integration. The
// returned ResizeFlush reports eviction work (the writebacks' energy is
// charged to this cache and the next level; the latency is off the
// critical path, modelling background flushing during the resize).
//
//simlint:coldpath runs at resize boundaries only, never per access
func (c *Cache) SetEnabled(now uint64, effSets, effWays int) (ResizeFlush, error) {
	var fl ResizeFlush
	if effWays < 1 || effWays > c.maxWays {
		return fl, fmt.Errorf("cache %s: effWays %d out of range 1..%d", c.cfg.Name, effWays, c.maxWays)
	}
	if effSets < 1 || effSets > c.maxSets || effSets&(effSets-1) != 0 {
		return fl, fmt.Errorf("cache %s: effSets %d must be a power of two in 1..%d", c.cfg.Name, effSets, c.maxSets)
	}
	if c.cfg.ProvisionTagForMinSets > 0 && effSets < c.cfg.ProvisionTagForMinSets {
		return fl, fmt.Errorf("cache %s: effSets %d below provisioned minimum %d", c.cfg.Name, effSets, c.cfg.ProvisionTagForMinSets)
	}
	if effSets == c.effSets && effWays == c.effWays {
		return fl, nil
	}
	c.integrateIdle(now)
	c.Stat.Resizes.Inc()

	oldSets, oldWays := c.effSets, c.effWays

	flushLine := func(ln *Line) {
		if !ln.Valid {
			return
		}
		fl.Invalidated++
		c.Stat.FlushedBlocks.Inc()
		if c.cfg.AblationFreeFlush {
			// Invalidate for correctness, but charge no array energy and
			// send no writeback traffic (idealized resizing).
			ln.Valid = false
			ln.Dirty = false
			return
		}
		c.chargeArray(KindFlushRead)
		if ln.Dirty {
			fl.Writebacks++
			c.Stat.FlushedDirty.Inc()
			c.next.Access(now, ln.BlockAddr<<c.offBits, true)
		}
		ln.Valid = false
		ln.Dirty = false
	}

	// 1. Ways being disabled.
	if effWays < oldWays {
		for s := 0; s < oldSets; s++ {
			ways := c.setLines(s)
			for w := effWays; w < oldWays; w++ {
				flushLine(&ways[w])
			}
		}
	}
	// 2. Sets being disabled.
	if effSets < oldSets {
		for s := effSets; s < oldSets; s++ {
			ways := c.setLines(s)
			for w := 0; w < oldWays; w++ {
				flushLine(&ways[w])
			}
		}
	}
	// 3. Sets being enabled: remapped survivors flush.
	if effSets > oldSets {
		for s := 0; s < oldSets; s++ {
			ways := c.setLines(s)
			for w := 0; w < oldWays && w < effWays; w++ {
				ln := &ways[w]
				if ln.Valid && int(ln.BlockAddr&uint64(effSets-1)) != s {
					flushLine(ln)
				}
			}
		}
	}

	c.effSets = effSets
	c.effWays = effWays
	// The flushes above charged the outgoing configuration's energy
	// table; everything from here on runs under the new one.
	c.refreshDerived()
	return fl, nil
}

// IntegrateIdleTo accrues background (clock + leakage) energy and the
// size-time integral up to cycle now without finalizing the cache. The
// sampled execution mode calls it at detailed-window boundaries so
// per-window energy deltas include background energy; a later Finalize
// at the same cycle then integrates nothing further.
func (c *Cache) IntegrateIdleTo(now uint64) { c.integrateIdle(now) }

// Finalize implements Level.
func (c *Cache) Finalize(endCycle uint64) {
	if c.finalized {
		return
	}
	c.integrateIdle(endCycle)
	c.finalized = true
}

// EnergyPJ implements Level: total energy, switching plus background.
func (c *Cache) EnergyPJ() float64 { return c.energyPJ + c.idlePJ }

// SwitchingPJ returns per-access (dynamic) energy only.
func (c *Cache) SwitchingPJ() float64 { return c.energyPJ }

// BackgroundPJ returns clock-tree and leakage energy: the component that
// scales with enabled capacity over time. The paper (§3) argues resizing
// savings apply directly to leakage because leakage is proportional to
// enabled size; this split makes that measurable.
func (c *Cache) BackgroundPJ() float64 { return c.idlePJ }

// AvgEnabledBytes returns the time-weighted average enabled capacity.
func (c *Cache) AvgEnabledBytes() float64 {
	if c.totalSizeSpanC == 0 {
		return float64(c.EnabledBytes())
	}
	return c.sizeIntegral / float64(c.totalSizeSpanC)
}

// Contents iterates over valid resident blocks (for tests and debugging).
func (c *Cache) Contents(fn func(set, way int, ln Line)) {
	for s := 0; s < c.effSets; s++ {
		ways := c.setLines(s)
		for w := 0; w < c.effWays; w++ {
			if ways[w].Valid {
				fn(s, w, ways[w])
			}
		}
	}
}
