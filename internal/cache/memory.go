package cache

// Memory is the fixed-latency main-memory model from the paper's Table 2:
// an access costs BaseLatency plus PerChunkLatency for each ChunkBytes of
// the transfer (80 + 5 per 8 bytes in the base configuration).
type Memory struct {
	BaseLatency     uint64
	PerChunkLatency uint64
	ChunkBytes      int
	TransferBytes   int // bytes moved per access (the requester's block)
	AccessEnergyNJ  float64

	accesses uint64
	energyPJ float64
}

// NewMemory returns the base-configuration memory model for a given
// transfer (fill block) size.
func NewMemory(transferBytes int) *Memory {
	return &Memory{
		BaseLatency:     80,
		PerChunkLatency: 5,
		ChunkBytes:      8,
		TransferBytes:   transferBytes,
		AccessEnergyNJ:  2.5,
	}
}

// Latency returns the total access latency in cycles.
func (m *Memory) Latency() uint64 {
	chunks := (m.TransferBytes + m.ChunkBytes - 1) / m.ChunkBytes
	return m.BaseLatency + m.PerChunkLatency*uint64(chunks)
}

// Access implements Level.
//
//simlint:hotpath bottom of every miss chain
func (m *Memory) Access(now uint64, addr uint64, write bool) uint64 {
	m.accesses++
	m.energyPJ += m.AccessEnergyNJ * 1000
	return now + m.Latency()
}

// Warm implements Level: main memory holds everything, so a functional
// access has no state to advance.
//
//simlint:hotpath bottom of every fast-forward miss chain
func (m *Memory) Warm(addr uint64, write bool) {}

// Finalize implements Level (memory has no clocked idle energy here; DRAM
// refresh is outside the processor energy budget the paper reports).
func (m *Memory) Finalize(endCycle uint64) {}

// EnergyPJ implements Level.
func (m *Memory) EnergyPJ() float64 { return m.energyPJ }

// Accesses returns the demand access count.
func (m *Memory) Accesses() uint64 { return m.accesses }
