package cache

// writebackBuffer models a small buffer that decouples victim writebacks
// from the demand fill: a fill may proceed as soon as the victim is
// buffered, and the buffered block drains to the next level in the
// background. When the buffer is full the fill back-pressures until the
// earliest entry drains.
type writebackBuffer struct {
	drainAt []uint64 // per-slot cycle at which the occupying entry drains
	pending int      // index of the slot reserved by the last reserve()
}

func newWritebackBuffer(entries int) *writebackBuffer {
	return &writebackBuffer{drainAt: make([]uint64, entries), pending: -1}
}

// reserve tries to claim a slot at cycle now; ok=false means all slots
// are still draining.
func (b *writebackBuffer) reserve(now uint64) (uint64, bool) {
	for i, d := range b.drainAt {
		if d <= now {
			b.pending = i
			return now, true
		}
	}
	return 0, false
}

// earliestDrain returns the first cycle at which any slot frees.
func (b *writebackBuffer) earliestDrain() uint64 {
	best := b.drainAt[0]
	for _, d := range b.drainAt[1:] {
		if d < best {
			best = d
		}
	}
	return best
}

// commit records the drain-completion time for the reserved slot.
func (b *writebackBuffer) commit(drainDone uint64) {
	if b.pending >= 0 {
		b.drainAt[b.pending] = drainDone
		b.pending = -1
	}
}

// occupancyAt reports busy slots at cycle now (tests).
func (b *writebackBuffer) occupancyAt(now uint64) int {
	n := 0
	for _, d := range b.drainAt {
		if d > now {
			n++
		}
	}
	return n
}
