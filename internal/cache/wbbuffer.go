package cache

// writebackBuffer models a small buffer that decouples victim writebacks
// from the demand fill: a fill may proceed as soon as the victim is
// buffered, and the buffered block drains to the next level in the
// background. When the buffer is full the fill back-pressures until the
// earliest entry drains.
type writebackBuffer struct {
	drainAt []uint64 // per-slot cycle at which the occupying entry drains
	pending int      // index of the slot reserved by the last reserve()
}

func newWritebackBuffer(entries int) *writebackBuffer {
	return &writebackBuffer{drainAt: make([]uint64, entries), pending: -1}
}

// acquire claims a slot at the earliest cycle >= now at which one is
// free and returns that cycle. It cannot fail: when every slot is still
// draining it claims the slot that frees first, at its drain time —
// the full-buffer stall is resolved here, by construction, instead of
// by a retry the caller must get right.
func (b *writebackBuffer) acquire(now uint64) uint64 {
	earliest := 0
	for i, d := range b.drainAt {
		if d <= now {
			b.pending = i
			return now
		}
		if d < b.drainAt[earliest] {
			earliest = i
		}
	}
	b.pending = earliest
	return b.drainAt[earliest]
}

// commit records the drain-completion time for the reserved slot.
func (b *writebackBuffer) commit(drainDone uint64) {
	if b.pending >= 0 {
		b.drainAt[b.pending] = drainDone
		b.pending = -1
	}
}

// occupancyAt reports busy slots at cycle now (tests).
func (b *writebackBuffer) occupancyAt(now uint64) int {
	n := 0
	for _, d := range b.drainAt {
		if d > now {
			n++
		}
	}
	return n
}
