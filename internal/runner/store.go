package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"resizecache/internal/sim"
)

// storeVersion tags the on-disk JSON schema; results written by a
// different version (or a different sim.Key encoding, which changes the
// map keys) are discarded on load rather than misapplied.
const storeVersion = 1

// diskFile is the JSON document persisted by a DiskStore.
type diskFile struct {
	Version int                   `json:"version"`
	Results map[string]sim.Result `json:"results"`
}

// DiskStore is an optional persistent result store for a Runner: a JSON
// file mapping sim.Key hex fingerprints to sim.Results. It lets long
// multi-process workflows (cmd/figures regenerating figure after figure)
// resume without re-simulating configs completed by earlier runs.
//
// All methods are safe for concurrent use. Mutations accumulate in
// memory; Flush writes the file atomically (temp file + rename).
type DiskStore struct {
	path string

	mu      sync.Mutex
	results map[string]sim.Result
	dirty   bool
}

// OpenDiskStore loads the store at path, or creates an empty one if the
// file does not exist yet. A file with a mismatched schema version is
// treated as empty (it will be overwritten on Flush).
func OpenDiskStore(path string) (*DiskStore, error) {
	s := &DiskStore{path: path, results: make(map[string]sim.Result)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runner: open store %s: %w", path, err)
	}
	var f diskFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("runner: parse store %s: %w", path, err)
	}
	if f.Version == storeVersion && f.Results != nil {
		s.results = f.Results
	}
	return s, nil
}

// Len returns the number of stored results.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

// Path returns the backing file path.
func (s *DiskStore) Path() string { return s.path }

func (s *DiskStore) get(k sim.Key) (sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.results[k.String()]
	return res, ok
}

func (s *DiskStore) put(k sim.Key, res sim.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[k.String()] = res
	s.dirty = true
}

// Flush writes the store to disk if it changed since the last Flush.
func (s *DiskStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return nil
	}
	data, err := json.Marshal(diskFile{Version: storeVersion, Results: s.results})
	if err != nil {
		return fmt.Errorf("runner: encode store: %w", err)
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runner: flush store: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("runner: flush store: %w", werr)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: flush store: %w", err)
	}
	s.dirty = false
	return nil
}
