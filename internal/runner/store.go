package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"resizecache/internal/sim"
)

// Store is the pluggable persistent backend of a Runner: it holds
// per-config simulation outcomes keyed by sim.Config fingerprints and
// sweep-level artifacts (opaque serialized payloads, see Runner.Artifact)
// keyed by artifact fingerprints. The JSON DiskStore is the in-tree
// implementation; a network or sharded store for cross-machine sweeps
// implements the same five methods.
//
// Implementations must be safe for concurrent use. Lookup misses are
// not errors; a backend that cannot distinguish "absent" from "failed"
// should report failures as misses so the runner falls back to
// simulating.
type Store interface {
	// Lookup returns the stored outcome for a config fingerprint.
	Lookup(k sim.Key) (StoredResult, bool)
	// Record persists one completed outcome. The runner never records
	// cancellations — only results and real simulation errors.
	Record(k sim.Key, v StoredResult)
	// LookupArtifact returns the stored payload for an artifact
	// fingerprint. Callers must treat the returned bytes as read-only.
	LookupArtifact(k sim.Key) ([]byte, bool)
	// RecordArtifact persists one artifact payload. Payloads must be
	// valid JSON: backends may embed them verbatim in JSON documents,
	// and may drop payloads that are not.
	RecordArtifact(k sim.Key, data []byte)
	// Flush writes buffered mutations to the backing medium.
	Flush() error
}

// RemoteCounter is implemented by Store backends that talk to a remote
// tier (NetStore); Runner.Stats folds the counts into its
// RemoteHits/RemoteErrors fields so -stats output distinguishes local
// memo hits from network store traffic.
type RemoteCounter interface {
	// RemoteCounts returns the backend's cumulative successful remote
	// hits and failed round trips.
	RemoteCounts() (hits, errors uint64)
}

// BreakerCounter is implemented by Store backends that guard a remote
// tier with a circuit breaker (NetStore); Runner.Stats folds the count
// into its BreakerTrips field so degraded runs are visible in -stats
// output.
type BreakerCounter interface {
	// BreakerTrips returns how many times the backend's breaker opened.
	BreakerTrips() uint64
}

// StoredResult is one persisted simulation outcome: either a successful
// result or the message of the real (non-cancellation) error the
// simulation failed with. Persisting errors keeps a failing config from
// being re-simulated on every resume just to fail again.
type StoredResult struct {
	Result sim.Result `json:"result"`
	// Err, when non-empty, records that the simulation failed; the
	// runner replays it as a StoredError instead of re-running.
	Err string `json:"err,omitempty"`
}

// StoredError is a persisted simulation failure replayed from a Store
// without re-executing the simulation.
type StoredError struct{ Msg string }

func (e *StoredError) Error() string { return "stored failure: " + e.Msg }

// storeVersion tags the on-disk JSON schema; results written by a
// different version (or a different sim.Key encoding, which changes the
// map keys) are discarded on load rather than misapplied.
// Version history: 1 = results only; 2 = StoredResult entries (error
// persistence) + artifacts section.
const storeVersion = 2

// diskFile is the JSON document persisted by a DiskStore.
type diskFile struct {
	Version   int                        `json:"version"`
	Results   map[string]StoredResult    `json:"results"`
	Artifacts map[string]json.RawMessage `json:"artifacts,omitempty"`
}

// DiskStore is the JSON-file Store implementation: one document mapping
// hex fingerprints to outcomes and artifacts. It lets long multi-process
// workflows (cmd/figures regenerating figure after figure) resume
// without re-simulating configs — or re-deriving sweep winners —
// completed by earlier runs.
//
// All methods are safe for concurrent use. Mutations accumulate in
// memory; Flush writes the file atomically (temp file + rename).
type DiskStore struct {
	path string

	mu        sync.Mutex
	results   map[string]StoredResult
	artifacts map[string]json.RawMessage
	dirty     bool
}

var _ Store = (*DiskStore)(nil)

// OpenDiskStore loads the store at path, or creates an empty one if the
// file does not exist yet. A file with a mismatched schema version is
// treated as empty (it will be overwritten on Flush); a file that does
// not parse at all is an error, so a corrupted store is surfaced rather
// than silently discarded.
func OpenDiskStore(path string) (*DiskStore, error) {
	s := &DiskStore{
		path:      path,
		results:   make(map[string]StoredResult),
		artifacts: make(map[string]json.RawMessage),
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runner: open store %s: %w", path, err)
	}
	var f diskFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("runner: parse store %s: %w", path, err)
	}
	if f.Version == storeVersion {
		if f.Results != nil {
			s.results = f.Results
		}
		if f.Artifacts != nil {
			s.artifacts = f.Artifacts
		}
	}
	return s, nil
}

// Len returns the number of stored results.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

// ArtifactLen returns the number of stored artifacts.
func (s *DiskStore) ArtifactLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.artifacts)
}

// Path returns the backing file path.
func (s *DiskStore) Path() string { return s.path }

// Lookup implements Store.
func (s *DiskStore) Lookup(k sim.Key) (StoredResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.results[k.String()]
	return res, ok
}

// Record implements Store.
func (s *DiskStore) Record(k sim.Key, v StoredResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[k.String()] = v
	s.dirty = true
}

// LookupArtifact implements Store.
func (s *DiskStore) LookupArtifact(k sim.Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.artifacts[k.String()]
	return data, ok
}

// RecordArtifact implements Store. Payloads embed verbatim in the JSON
// document, so a payload that is not itself valid JSON is dropped here
// (it stays a cache miss) rather than poisoning Flush for the whole
// store.
func (s *DiskStore) RecordArtifact(k sim.Key, data []byte) {
	if !json.Valid(data) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Copy: json.RawMessage aliases the caller's buffer otherwise.
	s.artifacts[k.String()] = append(json.RawMessage(nil), data...)
	s.dirty = true
}

// Flush writes the store to disk if it changed since the last Flush.
func (s *DiskStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return nil
	}
	data, err := json.Marshal(diskFile{Version: storeVersion,
		Results: s.results, Artifacts: s.artifacts})
	if err != nil {
		return fmt.Errorf("runner: encode store: %w", err)
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runner: flush store: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("runner: flush store: %w", werr)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: flush store: %w", err)
	}
	s.dirty = false
	return nil
}

// MemStore is an in-process Store: the smallest backend the interface
// admits. It backs tests, and is the template for network or sharded
// implementations — every method is a straight key-value operation with
// no runner-visible semantics beyond the Store contract.
type MemStore struct {
	mu        sync.Mutex
	results   map[string]StoredResult
	artifacts map[string][]byte
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore {
	return &MemStore{
		results:   make(map[string]StoredResult),
		artifacts: make(map[string][]byte),
	}
}

// Lookup implements Store.
func (s *MemStore) Lookup(k sim.Key) (StoredResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.results[k.String()]
	return v, ok
}

// Record implements Store.
func (s *MemStore) Record(k sim.Key, v StoredResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[k.String()] = v
}

// LookupArtifact implements Store.
func (s *MemStore) LookupArtifact(k sim.Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.artifacts[k.String()]
	return data, ok
}

// RecordArtifact implements Store. Like DiskStore, non-JSON payloads
// are dropped (they stay cache misses): the reference in-memory backend
// models the strictest contract a backend may apply, so code that works
// against a MemStore works against every store.
func (s *MemStore) RecordArtifact(k sim.Key, data []byte) {
	if !json.Valid(data) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.artifacts[k.String()] = append([]byte(nil), data...)
}

// Flush implements Store; a MemStore has nothing to persist.
func (s *MemStore) Flush() error { return nil }
