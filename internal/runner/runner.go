// Package runner is the run-orchestration layer: every simulation in
// the repository executes through a Runner, which owns the worker pool
// and a content-addressed result store keyed by sim.Config fingerprints
// (sim.Key). The paper's evaluation is a design-space sweep that
// re-visits many identical configurations — every BestStatic/BestDynamic
// call re-runs the non-resizable baseline, and figure drivers repeat
// whole sweeps — so the Runner:
//
//   - memoizes completed results, so an identical config simulates once
//     per process (or once ever, with a persistent store);
//   - deduplicates identical configs that are in flight concurrently,
//     so parallel sweeps sharing a baseline do not race to re-run it;
//   - memoizes sweep-level artifacts (serialized winner selections, see
//     Artifact) so whole sweeps — not just individual configs — resolve
//     without re-running when a later figure driver repeats them;
//   - bounds concurrency with one shared semaphore instead of a pool
//     per sweep, so nested experiment drivers cannot oversubscribe;
//   - optionally bounds the in-memory memo table with LRU eviction, so
//     very large sweeps cannot grow it without limit;
//   - honours context cancellation between (not within) simulations;
//   - returns batch results in deterministic submission order;
//   - accepts whole plans up front (Enqueue): a batch of configs is
//     registered and scheduled without waiting, so later Run/RunAll
//     calls join the in-flight work instead of fanning out their own
//     per-sweep barrier, and the pool interleaves across sweeps.
//
// Callers either share the process-wide Default() runner (cross-sweep
// memoization for free) or construct private runners (hermetic sessions,
// tests, persistent stores).
package runner

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"resizecache/internal/sim"
)

// Options configures a Runner.
type Options struct {
	// Workers bounds concurrently executing simulations (0 = GOMAXPROCS).
	Workers int
	// Store, if non-nil, persists results and sweep artifacts across
	// processes: fingerprints found in the store resolve without
	// simulating, and every fresh outcome — including real simulation
	// errors, but never cancellations — is added to it. Call Store.Flush
	// to write it out.
	Store Store
	// MemoLimit bounds the number of completed entries kept in the
	// in-memory memo table; the least recently used entry is evicted
	// beyond it (0 = unbounded). Evicted configs re-simulate on the next
	// submission unless a Store still holds them.
	MemoLimit int
	// RunSim overrides the simulation entry point (nil = sim.Run).
	// Tests stub it to control timing and inject failures.
	RunSim func(sim.Config) (sim.Result, error)
	// GangSize bounds how many same-front-end configs one Enqueue pass
	// coalesces into a single gang simulation (sim.RunGang). 0 means
	// DefaultGangSize; 1 disables coalescing.
	GangSize int
	// RunGang overrides the gang entry point (nil = sim.RunGang, or a
	// sequential RunSim loop when RunSim is stubbed without it).
	RunGang func([]sim.Config) ([]sim.Result, error)
}

// DefaultGangSize is the gang bound when Options.GangSize is zero. Eight
// members amortize the shared front-end well past the 2× mark while
// keeping a gang's machine state compact and the pool's units of work
// evenly sized.
const DefaultGangSize = 8

// Stats is a snapshot of a Runner's scheduling counters.
type Stats struct {
	// Submitted counts Run calls (RunAll counts once per config).
	Submitted uint64
	// MemoHits resolved against an already-completed in-memory result.
	MemoHits uint64
	// StoreHits resolved against the persistent store without simulating.
	StoreHits uint64
	// InFlightDedups joined an identical config already executing.
	InFlightDedups uint64
	// Runs actually executed a simulation.
	Runs uint64
	// Errors counts failed submissions: fresh simulations that returned
	// an error plus stored failures replayed from the persistent store.
	Errors uint64
	// Evictions counts completed memo entries dropped by the LRU bound.
	Evictions uint64
	// Enqueued counts configs submitted through Enqueue that were not
	// already memoized or in flight (each got an owner goroutine).
	Enqueued uint64
	// Ganged counts configs simulated as members of a coalesced gang (a
	// subset of Runs): one workload+engine pass served each batch.
	Ganged uint64
	// GangBatches counts the gang passes dispatched; Ganged/GangBatches
	// is the realized average gang size.
	GangBatches uint64
	// EnqueueBatches counts Enqueue calls that registered fresh work —
	// the batched, non-blocking submission passes of plan execution.
	// Calls fully covered by the memo table or in-flight entries (a warm
	// plan, or a solo sweep whose configs an earlier pass enqueued) are
	// not counted.
	EnqueueBatches uint64
	// Barriers counts RunAll batches that had to submit fresh work (at
	// least one config neither memoized nor in flight): the caller
	// fanned out its own submissions and blocked on them. Batches fully
	// covered by earlier Enqueue/Run calls just join existing entries
	// and are not counted, so a plan whose sweeps were enqueued up
	// front gathers with zero barriers.
	Barriers uint64
	// ArtifactHits resolved a sweep-level artifact from the in-memory
	// tier (including joins of an in-flight computation).
	ArtifactHits uint64
	// ArtifactStoreHits resolved an artifact from the persistent store.
	ArtifactStoreHits uint64
	// ArtifactComputes ran a sweep to produce an artifact.
	ArtifactComputes uint64
	// RemoteHits counts result and artifact lookups served by a remote
	// store tier (a RemoteCounter backend such as NetStore). They are a
	// subset of StoreHits/ArtifactStoreHits: every remote hit is also a
	// store hit, so the two together separate local memo traffic from
	// network store traffic.
	RemoteHits uint64
	// RemoteErrors counts remote-store round trips that failed and were
	// degraded to misses (lookups) or dropped (records).
	RemoteErrors uint64
	// BreakerTrips counts the times the remote store's circuit breaker
	// opened (a BreakerCounter backend such as NetStore): runs of
	// consecutive failures after which the store stopped calling out
	// and served misses locally for a cooldown.
	BreakerTrips uint64
	// WarmupHits counts simulations whose warmup prefix was restored
	// from a persisted checkpoint instead of being re-executed (sampled
	// configs with a warmup, running through the default entry points
	// against a Store). This is the counter CI's warm-replay smoke job
	// asserts is nonzero.
	WarmupHits uint64
	// WarmupSaves counts warmup checkpoints computed and recorded for
	// later runs to restore.
	WarmupSaves uint64
}

// Hits is the total number of submissions that skipped simulation.
func (s Stats) Hits() uint64 { return s.MemoHits + s.StoreHits + s.InFlightDedups }

func (s Stats) String() string {
	out := fmt.Sprintf("runner: %d submitted, %d simulated, %d memo hits, %d store hits, %d in-flight dedups, %d errors, %d evictions; batch: %d enqueued in %d passes, %d barriers; gangs: %d ganged in %d batches; artifacts: %d hits, %d store hits, %d computes",
		s.Submitted, s.Runs, s.MemoHits, s.StoreHits, s.InFlightDedups, s.Errors,
		s.Evictions, s.Enqueued, s.EnqueueBatches, s.Barriers,
		s.Ganged, s.GangBatches,
		s.ArtifactHits, s.ArtifactStoreHits, s.ArtifactComputes)
	if s.RemoteHits > 0 || s.RemoteErrors > 0 || s.BreakerTrips > 0 {
		out += fmt.Sprintf("; remote: %d hits, %d errors", s.RemoteHits, s.RemoteErrors)
		if s.BreakerTrips > 0 {
			out += fmt.Sprintf(", %d breaker trips", s.BreakerTrips)
		}
	}
	if s.WarmupHits > 0 || s.WarmupSaves > 0 {
		out += fmt.Sprintf("; warmups: %d checkpoint hits, %d saves", s.WarmupHits, s.WarmupSaves)
	}
	return out
}

// Delta returns the field-wise difference s − prev: the runner activity
// between two snapshots. The facade reports per-call deltas in its
// outcomes instead of cumulative counters; note that on a shared runner
// a delta attributes everything that happened in the window, including
// work submitted by concurrent callers.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Submitted:         s.Submitted - prev.Submitted,
		MemoHits:          s.MemoHits - prev.MemoHits,
		StoreHits:         s.StoreHits - prev.StoreHits,
		InFlightDedups:    s.InFlightDedups - prev.InFlightDedups,
		Runs:              s.Runs - prev.Runs,
		Errors:            s.Errors - prev.Errors,
		Evictions:         s.Evictions - prev.Evictions,
		Enqueued:          s.Enqueued - prev.Enqueued,
		Ganged:            s.Ganged - prev.Ganged,
		GangBatches:       s.GangBatches - prev.GangBatches,
		EnqueueBatches:    s.EnqueueBatches - prev.EnqueueBatches,
		Barriers:          s.Barriers - prev.Barriers,
		ArtifactHits:      s.ArtifactHits - prev.ArtifactHits,
		ArtifactStoreHits: s.ArtifactStoreHits - prev.ArtifactStoreHits,
		ArtifactComputes:  s.ArtifactComputes - prev.ArtifactComputes,
		RemoteHits:        s.RemoteHits - prev.RemoteHits,
		RemoteErrors:      s.RemoteErrors - prev.RemoteErrors,
		BreakerTrips:      s.BreakerTrips - prev.BreakerTrips,
		WarmupHits:        s.WarmupHits - prev.WarmupHits,
		WarmupSaves:       s.WarmupSaves - prev.WarmupSaves,
	}
}

// entry is one fingerprint's slot in the memo table. The owner (the
// goroutine that created the entry) simulates and closes done; waiters
// block on done. Completed entries stay in the table as the memo store,
// tracked by the LRU list when a memo limit is set.
type entry struct {
	done chan struct{}
	res  sim.Result
	err  error
	elem *list.Element // LRU position once completed (nil if unbounded)
}

// Runner schedules simulations; see the package comment. The zero value
// is not usable — construct with New or share Default.
type Runner struct {
	sem       chan struct{}
	store     Store
	memoLimit int
	runSim    func(sim.Config) (sim.Result, error)
	runGang   func([]sim.Config) ([]sim.Result, error)
	gangSize  int

	mu      sync.Mutex
	entries map[sim.Key]*entry
	lru     *list.List // of sim.Key; front = most recently used

	artMu     sync.Mutex
	artifacts map[sim.Key]*artifactEntry

	submitted, memoHits, storeHits, dedups, runs, errs atomic.Uint64
	evictions, artHits, artStoreHits, artComputes      atomic.Uint64
	enqueued, enqueueBatches, barriers                 atomic.Uint64
	ganged, gangBatches                                atomic.Uint64
	warmupHits, warmupSaves                            atomic.Uint64
}

// noteWarmup folds one simulation's warmup-checkpoint outcome into the
// counters. Only the default (non-stubbed) entry points report.
func (r *Runner) noteWarmup(ws sim.WarmupStats) {
	if ws.CheckpointHit {
		r.warmupHits.Add(1)
	}
	if ws.CheckpointSaved {
		r.warmupSaves.Add(1)
	}
}

// checkpointTier exposes the Runner's store as a warmup-checkpoint
// store. Warmup checkpoints ride the artifact half of the Store
// contract, so any persistent backend — disk or network — shares them
// across processes for free.
func (r *Runner) checkpointTier() sim.CheckpointStore {
	if r.store == nil {
		return nil
	}
	return r.store
}

// New constructs a Runner.
func New(opts Options) *Runner {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	gangSize := opts.GangSize
	if gangSize == 0 {
		gangSize = DefaultGangSize
	}
	if gangSize < 1 {
		gangSize = 1
	}
	r := &Runner{
		sem:       make(chan struct{}, workers),
		store:     opts.Store,
		memoLimit: opts.MemoLimit,
		runSim:    opts.RunSim,
		runGang:   opts.RunGang,
		gangSize:  gangSize,
		entries:   make(map[sim.Key]*entry),
		lru:       list.New(),
		artifacts: make(map[sim.Key]*artifactEntry),
	}
	if r.runSim == nil {
		// The default entry point is checkpoint-aware: sampled configs
		// with a warmup prefix restore (or record) their warm state
		// through the Runner's store, so configs sharing a front-end skip
		// warmup — including across processes when the store persists.
		r.runSim = func(cfg sim.Config) (sim.Result, error) {
			res, ws, err := sim.RunWithCheckpoints(cfg, r.checkpointTier())
			r.noteWarmup(ws)
			return res, err
		}
	}
	if r.runGang == nil {
		if opts.RunSim != nil {
			// A stubbed RunSim without a matching gang stub must keep
			// observing every config, so gangs degrade to a sequential loop
			// over the stub.
			r.runGang = func(cfgs []sim.Config) ([]sim.Result, error) {
				out := make([]sim.Result, len(cfgs))
				for i, cfg := range cfgs {
					res, err := r.runSim(cfg)
					if err != nil {
						return nil, err
					}
					out[i] = res
				}
				return out, nil
			}
		} else {
			r.runGang = func(cfgs []sim.Config) ([]sim.Result, error) {
				out, ws, err := sim.RunGangWithCheckpoints(cfgs, r.checkpointTier())
				r.noteWarmup(ws)
				return out, err
			}
		}
	}
	return r
}

var (
	defaultOnce   sync.Once
	defaultRunner *Runner
)

// Default returns the process-wide shared Runner (GOMAXPROCS workers, no
// persistent store). Sweeps that share it memoize across each other.
func Default() *Runner {
	defaultOnce.Do(func() { defaultRunner = New(Options{}) })
	return defaultRunner
}

// Stats snapshots the counters. When the store is a remote tier
// (RemoteCounter), its hit/error counts are folded in, as are breaker
// trips when it guards itself with a circuit breaker (BreakerCounter).
func (r *Runner) Stats() Stats {
	var remoteHits, remoteErrs, breakerTrips uint64
	if rc, ok := r.store.(RemoteCounter); ok {
		remoteHits, remoteErrs = rc.RemoteCounts()
	}
	if bc, ok := r.store.(BreakerCounter); ok {
		breakerTrips = bc.BreakerTrips()
	}
	return Stats{
		RemoteHits:        remoteHits,
		RemoteErrors:      remoteErrs,
		BreakerTrips:      breakerTrips,
		Submitted:         r.submitted.Load(),
		MemoHits:          r.memoHits.Load(),
		StoreHits:         r.storeHits.Load(),
		InFlightDedups:    r.dedups.Load(),
		Runs:              r.runs.Load(),
		Errors:            r.errs.Load(),
		Evictions:         r.evictions.Load(),
		Enqueued:          r.enqueued.Load(),
		Ganged:            r.ganged.Load(),
		GangBatches:       r.gangBatches.Load(),
		EnqueueBatches:    r.enqueueBatches.Load(),
		Barriers:          r.barriers.Load(),
		ArtifactHits:      r.artHits.Load(),
		ArtifactStoreHits: r.artStoreHits.Load(),
		ArtifactComputes:  r.artComputes.Load(),
		WarmupHits:        r.warmupHits.Load(),
		WarmupSaves:       r.warmupSaves.Load(),
	}
}

// Run executes (or resolves from memo/store/in-flight work) one config.
// Identical configs are only ever simulated once per Runner; errors are
// memoized like results, except cancellation errors, which evict the
// entry so a later live context can retry.
func (r *Runner) Run(ctx context.Context, cfg sim.Config) (sim.Result, error) {
	r.submitted.Add(1)
	key := cfg.Key()
	for {
		res, err, retry := r.runKey(ctx, key, cfg)
		if !retry {
			return res, err
		}
	}
}

// runKey resolves one fingerprint. retry is true when the entry it
// waited on was evicted after a cancellation that does not apply to this
// caller's still-live context.
func (r *Runner) runKey(ctx context.Context, key sim.Key, cfg sim.Config) (sim.Result, error, bool) {
	if err := ctx.Err(); err != nil {
		return sim.Result{}, err, false
	}

	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		select {
		case <-e.done: // completed: memo hit
			if e.elem != nil {
				r.lru.MoveToFront(e.elem)
			}
			r.mu.Unlock()
			r.memoHits.Add(1)
			return e.res, e.err, false
		default: // executing: join it
			r.mu.Unlock()
			r.dedups.Add(1)
			select {
			case <-e.done:
				if e.err != nil && isCancellation(e.err) && ctx.Err() == nil {
					return sim.Result{}, nil, true // owner was cancelled, we are not
				}
				return e.res, e.err, false
			case <-ctx.Done():
				return sim.Result{}, ctx.Err(), false
			}
		}
	}
	e := &entry{done: make(chan struct{})}
	r.entries[key] = e
	r.mu.Unlock()

	res, err := r.execute(ctx, key, e, cfg)
	return res, err, false
}

// execute owns entry e for key: it resolves the config against the
// persistent store or simulates it under the worker-pool semaphore, then
// publishes the outcome. Both Run owners and Enqueue goroutines funnel
// through here, so enqueued work persists, counts, and cancels exactly
// like directly submitted work.
func (r *Runner) execute(ctx context.Context, key sim.Key, e *entry, cfg sim.Config) (sim.Result, error) {
	if r.store != nil {
		if sr, ok := r.store.Lookup(key); ok {
			r.storeHits.Add(1)
			var err error
			if sr.Err != "" {
				// Replay the persisted failure instead of re-simulating a
				// config known to fail.
				err = &StoredError{Msg: sr.Err}
				r.errs.Add(1)
			}
			r.complete(key, e, sr.Result, err)
			return sr.Result, err
		}
	}

	// Acquire a worker slot, simulate, publish.
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		r.complete(key, e, sim.Result{}, ctx.Err())
		return sim.Result{}, ctx.Err()
	}
	res, err := r.runSim(cfg)
	<-r.sem

	r.runs.Add(1)
	if err != nil {
		r.errs.Add(1)
	}
	if r.store != nil && !isCancellation(err) {
		sr := StoredResult{Result: res}
		if err != nil {
			sr.Err = err.Error()
		}
		r.store.Record(key, sr)
	}
	r.complete(key, e, res, err)
	return res, err
}

// Enqueue submits a batch of configs without waiting for their results:
// fingerprints not yet known to the runner are registered synchronously
// — before Enqueue returns, a later Run/RunAll of the same config joins
// the in-flight work instead of fanning out its own — and execute on
// the shared worker pool in the background. Fingerprints already
// memoized or executing are skipped. Outcomes land in the memo table
// and persistent store exactly as if Run had been called; cancelling
// ctx abandons work that has not started, leaving those fingerprints
// retryable. Returns the number of configs actually enqueued.
//
// Enqueue is the batch-scheduling primitive behind plan execution: a
// multi-sweep plan enqueues every profiling simulation in one pass, so
// the pool interleaves across sweeps and scenarios instead of draining
// at each sequential caller's per-sweep barrier.
//
// The returned wait function blocks until every goroutine this call
// spawned has published its outcome (to the memo table and, when
// configured, the persistent store). Callers that flush a store after
// abandoning a batch — a plan whose gathers errored early, leaving
// enqueued stragglers mid-simulation — must cancel ctx and wait before
// flushing, or completed results can land after the flush and be lost.
// Enqueue additionally coalesces the batch's memo-miss configs into
// gangs: configs sharing a front-end fingerprint (sim.Config.FrontKey —
// same benchmark, budget, engine, pipeline) run through one gang
// simulation of up to GangSize members instead of GangSize independent
// passes. Coalescing is invisible to waiters — outcomes publish to the
// same entries — and is accounted by the Ganged/GangBatches counters.
func (r *Runner) Enqueue(ctx context.Context, cfgs []sim.Config) (int, func()) {
	if len(cfgs) == 0 || ctx.Err() != nil {
		return 0, func() {}
	}
	var wg sync.WaitGroup
	var fresh []gangItem
	for i := range cfgs {
		key := cfgs[i].Key()
		r.mu.Lock()
		if _, ok := r.entries[key]; ok {
			r.mu.Unlock()
			continue
		}
		e := &entry{done: make(chan struct{})}
		r.entries[key] = e
		r.mu.Unlock()
		fresh = append(fresh, gangItem{cfg: cfgs[i], key: key, e: e})
	}
	if len(fresh) == 0 {
		return 0, func() {}
	}
	r.enqueueBatches.Add(1)
	r.enqueued.Add(uint64(len(fresh)))

	solo := func(it gangItem) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.execute(ctx, it.key, it.e, it.cfg)
		}()
	}

	if r.gangSize <= 1 {
		for _, it := range fresh {
			solo(it)
		}
		return len(fresh), wg.Wait
	}

	// Group the fresh entries by shared front-end; each same-front group
	// dispatches as gangs of up to gangSize, stragglers solo.
	groups := make(map[sim.Key][]gangItem)
	var order []sim.Key
	for _, it := range fresh {
		fk := it.cfg.FrontKey()
		if _, ok := groups[fk]; !ok {
			order = append(order, fk)
		}
		groups[fk] = append(groups[fk], it)
	}
	for _, fk := range order {
		g := groups[fk]
		for len(g) >= 2 {
			n := r.gangSize
			if n > len(g) {
				n = len(g)
			}
			batch := g[:n]
			g = g[n:]
			wg.Add(1)
			go func(batch []gangItem) {
				defer wg.Done()
				r.executeGang(ctx, batch)
			}(batch)
		}
		for _, it := range g {
			solo(it)
		}
	}
	return len(fresh), wg.Wait
}

// gangItem is one fresh Enqueue registration awaiting execution.
type gangItem struct {
	cfg sim.Config
	key sim.Key
	e   *entry
}

// executeGang owns a batch of same-front entries: members found in the
// persistent store resolve individually, and the rest run as one gang
// pass under a single worker slot. A gang-level error falls back to solo
// execution per member, so error outcomes and attribution are identical
// to the solo path.
func (r *Runner) executeGang(ctx context.Context, batch []gangItem) {
	live := batch[:0]
	for _, it := range batch {
		if r.store != nil {
			if sr, ok := r.store.Lookup(it.key); ok {
				r.storeHits.Add(1)
				var err error
				if sr.Err != "" {
					err = &StoredError{Msg: sr.Err}
					r.errs.Add(1)
				}
				r.complete(it.key, it.e, sr.Result, err)
				continue
			}
		}
		live = append(live, it)
	}
	switch len(live) {
	case 0:
		return
	case 1:
		r.execute(ctx, live[0].key, live[0].e, live[0].cfg)
		return
	}

	gangCfgs := make([]sim.Config, len(live))
	for i, it := range live {
		gangCfgs[i] = it.cfg
	}

	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		for _, it := range live {
			r.complete(it.key, it.e, sim.Result{}, ctx.Err())
		}
		return
	}
	results, err := r.runGang(gangCfgs)
	<-r.sem

	if err != nil {
		// The gang entry point rejects the whole batch on any member's
		// error; re-run solo so each member gets its own outcome.
		for _, it := range live {
			r.execute(ctx, it.key, it.e, it.cfg)
		}
		return
	}
	r.gangBatches.Add(1)
	for i, it := range live {
		r.runs.Add(1)
		r.ganged.Add(1)
		if r.store != nil {
			r.store.Record(it.key, StoredResult{Result: results[i]})
		}
		r.complete(it.key, it.e, results[i], nil)
	}
}

// complete publishes an entry's outcome. Cancellation outcomes are
// evicted from the table so the fingerprint can be retried later; other
// outcomes join the LRU list when a memo limit is set, evicting the
// least recently used completed entries beyond the bound.
func (r *Runner) complete(key sim.Key, e *entry, res sim.Result, err error) {
	e.res, e.err = res, err
	r.mu.Lock()
	switch {
	case err != nil && isCancellation(err):
		delete(r.entries, key)
	case r.memoLimit > 0:
		e.elem = r.lru.PushFront(key)
		for r.lru.Len() > r.memoLimit {
			oldest := r.lru.Back()
			r.lru.Remove(oldest)
			delete(r.entries, oldest.Value.(sim.Key))
			r.evictions.Add(1)
		}
	}
	r.mu.Unlock()
	close(e.done)
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunAll executes a batch and returns results in submission order. The
// first failing config (by submission index) determines the returned
// error. Concurrency is bounded by the Runner's shared worker pool.
func (r *Runner) RunAll(ctx context.Context, cfgs []sim.Config) ([]sim.Result, error) {
	return r.RunAllLimit(ctx, cfgs, 0)
}

// RunAllLimit is RunAll with an additional per-batch concurrency bound
// (<= 0 means no extra bound beyond the shared pool). Sweeps use it to
// honour a caller-requested parallelism below the pool size.
func (r *Runner) RunAllLimit(ctx context.Context, cfgs []sim.Config, limit int) ([]sim.Result, error) {
	// A batch that must submit work not already in flight or memoized is
	// a fan-out barrier: the caller blocks until its own submissions
	// drain. Batches fully covered by an earlier Enqueue pass (or prior
	// runs) just join existing entries and are not counted — the Barriers
	// counter is how batch-scheduled plans prove they gather without
	// fanning out.
	keys := make([]sim.Key, len(cfgs))
	for i := range cfgs {
		keys[i] = cfgs[i].Key()
	}
	fresh := false
	r.mu.Lock()
	for _, k := range keys {
		if _, ok := r.entries[k]; !ok {
			fresh = true
			break
		}
	}
	r.mu.Unlock()
	if fresh {
		r.barriers.Add(1)
	}

	results := make([]sim.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var gate chan struct{}
	if limit > 0 {
		gate = make(chan struct{}, limit)
	}
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if gate != nil {
				gate <- struct{}{}
				defer func() { <-gate }()
			}
			results[i], errs[i] = r.Run(ctx, cfgs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: config %d (%s): %w", i, cfgs[i].Benchmark, err)
		}
	}
	return results, nil
}
