package runner

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"resizecache/internal/sim"
)

func marshalResult(t *testing.T, r sim.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// sampledWarmupConfig returns a sampled config with a warmup prefix —
// the shape that exercises the runner's checkpoint tier.
func sampledWarmupConfig() sim.Config {
	cfg := sim.Default("gcc")
	cfg.Instructions = 120_000
	cfg.Sampling = sim.SamplingSpec{
		WarmupInstructions:      10_000,
		DetailedInstructions:    5_000,
		FastForwardInstructions: 10_000,
		SkipInstructions:        15_000,
	}
	return cfg
}

// TestRunnerWarmupCheckpointCounters: the default entry points thread
// warmup checkpoints through the Runner's store, and the Stats counters
// expose what happened — one save for the first config, one hit for a
// second config sharing the front-end.
func TestRunnerWarmupCheckpointCounters(t *testing.T) {
	store := NewMemStore()
	r := New(Options{Store: store})

	a := sampledWarmupConfig()
	b := a
	b.DCache.Geom.SizeBytes = a.DCache.Geom.SizeBytes / 2
	if a.WarmKey() != b.WarmKey() {
		t.Fatal("test configs must share a warmup key")
	}

	if _, err := r.Run(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.WarmupSaves != 1 || st.WarmupHits != 0 {
		t.Fatalf("after cold run: %d saves, %d hits; want 1, 0", st.WarmupSaves, st.WarmupHits)
	}

	if _, err := r.Run(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.WarmupHits != 1 {
		t.Fatalf("second geometry should restore the shared checkpoint: %+v", st)
	}
	if !strings.Contains(st.String(), "warmups: 1 checkpoint hits, 1 saves") {
		t.Errorf("Stats.String omits warmup counters: %s", st.String())
	}
	if d := st.Delta(Stats{WarmupHits: 1}); d.WarmupHits != 0 || d.WarmupSaves != 1 {
		t.Errorf("Delta ignores warmup counters: %+v", d)
	}
}

// TestRunnerWarmupCheckpointAcrossRunners: a fresh Runner sharing the
// same persistent store restores warmup checkpoints recorded by its
// predecessor — the cross-process replay CI smokes. The result must be
// bit-identical to a store-less run.
func TestRunnerWarmupCheckpointAcrossRunners(t *testing.T) {
	cfg := sampledWarmupConfig()
	baseline, err := New(Options{}).Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	store := NewMemStore()
	if _, err := New(Options{Store: store}).Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	// The second "process": same store, empty memo table. The result
	// memo also hits, so drop the stored result to force a re-simulation
	// that can only skip warmup via the checkpoint.
	store.mu.Lock()
	store.results = map[string]StoredResult{}
	store.mu.Unlock()

	r2 := New(Options{Store: store})
	res, err := r2.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.WarmupHits != 1 || st.WarmupSaves != 0 {
		t.Fatalf("replay runner: %d hits, %d saves; want 1, 0", st.WarmupHits, st.WarmupSaves)
	}
	if marshalResult(t, res) != marshalResult(t, baseline) {
		t.Error("checkpoint-restored result differs from store-less run")
	}
}

// TestRunnerGangWarmupCheckpoint: gang-coalesced enqueues thread the
// checkpoint store too — a gang of same-front sampled configs records
// the shared warmup once.
func TestRunnerGangWarmupCheckpoint(t *testing.T) {
	store := NewMemStore()
	r := New(Options{Store: store})

	base := sampledWarmupConfig()
	cfgs := make([]sim.Config, 4)
	for i := range cfgs {
		cfgs[i] = base
		cfgs[i].DCache.Geom.Assoc = 1 << i
	}
	n, wait := r.Enqueue(context.Background(), cfgs)
	if n != len(cfgs) {
		t.Fatalf("enqueued %d of %d", n, len(cfgs))
	}
	wait()

	st := r.Stats()
	if st.GangBatches == 0 {
		t.Fatalf("expected a coalesced gang: %+v", st)
	}
	if st.WarmupSaves == 0 {
		t.Errorf("gang run did not record the warmup checkpoint: %+v", st)
	}
	solo, err := New(Options{}).Run(context.Background(), cfgs[2])
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run(context.Background(), cfgs[2])
	if err != nil {
		t.Fatal(err)
	}
	if marshalResult(t, got) != marshalResult(t, solo) {
		t.Error("ganged sampled result differs from solo run")
	}
}
