package runner

import (
	"context"

	"resizecache/internal/sim"
)

// The sweep-artifact cache: figure drivers repeat whole profiling
// sweeps, not just individual configs — Figures 5, 6, 8 and 9 all
// re-derive BestStatic/BestDynamic grids the previous figure already
// selected. Artifact memoizes the *outcome of a sweep* (an opaque
// serialized payload, typically a winner selection) under a
// content-addressed fingerprint, so a warm sweep resolves without
// submitting a single config. Two tiers back it: the in-memory artifact
// table (per Runner) and, when the Runner has a Store, the persistent
// backend shared with per-config results — so cmd/figures -resume skips
// whole sweeps across processes, not just simulations.
//
// The payload is opaque to the runner on purpose: the experiment layer
// owns the schema (and versions it inside its fingerprints), which keeps
// the dependency arrow pointing from experiment to runner.

// artifactEntry is one artifact fingerprint's slot: the owner computes
// and closes done; concurrent callers of the same fingerprint wait.
type artifactEntry struct {
	done chan struct{}
	data []byte
	err  error
}

// Artifact resolves a sweep-level artifact: the in-memory tier first,
// then the persistent store, then compute. Concurrent calls for the
// same key run compute once (the others wait for it). Successful
// payloads are memoized in memory and recorded to the store; errors are
// never memoized — the per-config memo table underneath already replays
// stored failures cheaply, and caching a cancellation would poison the
// fingerprint for later live contexts.
//
// Payloads must be valid JSON (the Store contract embeds them in JSON
// documents). The returned slice is the caller's to keep: it never
// aliases the cache, so mutating it cannot corrupt later hits.
func (r *Runner) Artifact(ctx context.Context, key sim.Key, compute func(context.Context) ([]byte, error)) ([]byte, error) {
	for {
		data, err, retry := r.artifactOnce(ctx, key, compute)
		if !retry {
			if data != nil {
				data = append([]byte(nil), data...)
			}
			return data, err
		}
	}
}

// artifactOnce mirrors runKey's resolve-or-own protocol for one artifact
// fingerprint. retry is true when the entry it waited on failed in a way
// that does not apply to this caller (the owner erred or was cancelled;
// the entry has been evicted, so this caller can take ownership).
func (r *Runner) artifactOnce(ctx context.Context, key sim.Key, compute func(context.Context) ([]byte, error)) ([]byte, error, bool) {
	if err := ctx.Err(); err != nil {
		return nil, err, false
	}

	r.artMu.Lock()
	if e, ok := r.artifacts[key]; ok {
		select {
		case <-e.done: // completed: only successes stay in the table
			r.artMu.Unlock()
			r.artHits.Add(1)
			return e.data, nil, false
		default: // computing: join it
			r.artMu.Unlock()
			select {
			case <-e.done:
				if e.err != nil {
					if ctx.Err() == nil {
						return nil, nil, true // owner failed; retry with our context
					}
					return nil, ctx.Err(), false
				}
				r.artHits.Add(1)
				return e.data, nil, false
			case <-ctx.Done():
				return nil, ctx.Err(), false
			}
		}
	}
	e := &artifactEntry{done: make(chan struct{})}
	r.artifacts[key] = e
	r.artMu.Unlock()

	if r.store != nil {
		if data, ok := r.store.LookupArtifact(key); ok {
			r.artStoreHits.Add(1)
			r.artifactComplete(key, e, data, nil)
			return data, nil, false
		}
	}

	r.artComputes.Add(1)
	data, err := compute(ctx)
	if err == nil && r.store != nil {
		r.store.RecordArtifact(key, data)
	}
	r.artifactComplete(key, e, data, err)
	return data, err, false
}

// HasArtifact reports whether an artifact fingerprint would resolve
// without computing: it is memoized (or being computed right now) in the
// in-memory tier, or present in the persistent store. Batch schedulers
// probe it before enqueueing a sweep's simulations, so warm sweeps cost
// nothing — not even redundant submissions that would immediately
// memo-hit.
func (r *Runner) HasArtifact(key sim.Key) bool {
	r.artMu.Lock()
	_, ok := r.artifacts[key]
	r.artMu.Unlock()
	if ok {
		return true
	}
	if r.store != nil {
		if _, ok := r.store.LookupArtifact(key); ok {
			return true
		}
	}
	return false
}

// PutArtifact force-installs an artifact payload in both tiers,
// replacing whatever either held. Cache layers above use it to repair a
// fingerprint whose stored payload no longer decodes — without it the
// undecodable bytes would keep hitting and force a recompute on every
// call, in every process, forever.
func (r *Runner) PutArtifact(key sim.Key, data []byte) {
	e := &artifactEntry{done: make(chan struct{}), data: append([]byte(nil), data...)}
	close(e.done)
	r.artMu.Lock()
	r.artifacts[key] = e
	r.artMu.Unlock()
	if r.store != nil {
		r.store.RecordArtifact(key, data)
	}
}

// artifactComplete publishes an artifact outcome; failed computations
// are evicted so the fingerprint can be retried.
func (r *Runner) artifactComplete(key sim.Key, e *artifactEntry, data []byte, err error) {
	e.data, e.err = data, err
	if err != nil {
		r.artMu.Lock()
		delete(r.artifacts, key)
		r.artMu.Unlock()
	}
	close(e.done)
}
