package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resizecache/internal/sim"
)

// cfgN returns a distinct config per index (instruction count varies).
func cfgN(i int) sim.Config {
	c := sim.Default("gcc")
	c.Instructions = uint64(1000 + i)
	return c
}

// stubResult returns a recognizable result for a config.
func stubResult(cfg sim.Config) sim.Result {
	var r sim.Result
	r.CPU.Instructions = cfg.Instructions
	r.CPU.Cycles = 2 * cfg.Instructions
	return r
}

func TestRunMemoizes(t *testing.T) {
	var calls atomic.Int32
	r := New(Options{Workers: 2, RunSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}})
	ctx := context.Background()
	first, err := r.Run(ctx, cfgN(0))
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(ctx, cfgN(0))
	if err != nil {
		t.Fatal(err)
	}
	if first.CPU != second.CPU || first.EDP != second.EDP {
		t.Error("memoized result differs from original")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("simulated %d times, want 1", got)
	}
	st := r.Stats()
	if st.Submitted != 2 || st.Runs != 1 || st.MemoHits != 1 {
		t.Errorf("stats = %+v, want 2 submitted / 1 run / 1 memo hit", st)
	}
}

func TestRunAllDeterministicOrderAndBaselineDedup(t *testing.T) {
	var calls atomic.Int32
	r := New(Options{Workers: 4, RunSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}})
	// A sweep-shaped batch: baseline duplicated at both ends plus three
	// distinct candidates.
	cfgs := []sim.Config{cfgN(0), cfgN(1), cfgN(2), cfgN(3), cfgN(0)}
	res, err := r.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range cfgs {
		if res[i].CPU.Instructions != want.Instructions {
			t.Errorf("result %d out of order: got %d instructions, want %d",
				i, res[i].CPU.Instructions, want.Instructions)
		}
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("simulated %d distinct configs, want 4", got)
	}
	if hits := r.Stats().Hits(); hits != 1 {
		t.Errorf("hits = %d, want 1 (duplicated baseline)", hits)
	}
}

func TestConcurrentIdenticalSubmissionsDeduplicate(t *testing.T) {
	const waiters = 8
	release := make(chan struct{})
	var calls atomic.Int32
	r := New(Options{Workers: waiters, RunSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		<-release
		return stubResult(cfg), nil
	}})
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Run(context.Background(), cfgN(0))
		}(i)
	}
	// Wait until every submission has either started the simulation or
	// joined it, then release the single in-flight run.
	deadline := time.After(5 * time.Second)
	for {
		st := r.Stats()
		if st.Submitted == waiters && st.InFlightDedups == waiters-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("dedup never converged: %+v", r.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("simulated %d times, want 1", got)
	}
}

func TestRunErrorsAreMemoized(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	r := New(Options{Workers: 1, RunSim: func(sim.Config) (sim.Result, error) {
		calls.Add(1)
		return sim.Result{}, boom
	}})
	for i := 0; i < 2; i++ {
		if _, err := r.Run(context.Background(), cfgN(0)); !errors.Is(err, boom) {
			t.Fatalf("want boom, got %v", err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("failing config simulated %d times, want 1", calls.Load())
	}
	if r.Stats().Errors != 1 {
		t.Errorf("errors = %d, want 1", r.Stats().Errors)
	}
}

func TestContextCancellationMidSweep(t *testing.T) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	r := New(Options{Workers: 1, RunSim: func(cfg sim.Config) (sim.Result, error) {
		started <- struct{}{}
		<-release
		return stubResult(cfg), nil
	}})
	ctx, cancel := context.WithCancel(context.Background())
	var cfgs []sim.Config
	for i := 0; i < 16; i++ {
		cfgs = append(cfgs, cfgN(i))
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.RunAll(ctx, cfgs)
		done <- err
	}()
	<-started // first simulation occupies the single worker
	cancel()  // the other 15 are queued; cancellation must stop them
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunAll did not return after cancellation")
	}
	if runs := r.Stats().Runs; runs >= uint64(len(cfgs)) {
		t.Errorf("cancellation did not prevent queued runs: %d runs", runs)
	}
}

func TestCancelledEntryRetriesOnLiveContext(t *testing.T) {
	var calls atomic.Int32
	r := New(Options{Workers: 1, RunSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(cancelled, cfgN(0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// A cancellation outcome must not poison the fingerprint.
	res, err := r.Run(context.Background(), cfgN(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions != cfgN(0).Instructions {
		t.Error("retry returned wrong result")
	}
	if calls.Load() != 1 {
		t.Errorf("retry simulated %d times, want 1", calls.Load())
	}
}

func TestRunAllLimitBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int32
	r := New(Options{Workers: 8, RunSim: func(cfg sim.Config) (sim.Result, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return stubResult(cfg), nil
	}})
	var cfgs []sim.Config
	for i := 0; i < 12; i++ {
		cfgs = append(cfgs, cfgN(i))
	}
	if _, err := r.RunAllLimit(context.Background(), cfgs, 2); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds limit 2", p)
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	var calls atomic.Int32
	runSim := func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}

	store, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := New(Options{Workers: 2, Store: store, RunSim: runSim})
	if _, err := r1.RunAll(context.Background(), []sim.Config{cfgN(0), cfgN(1)}); err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d results, want 2", store.Len())
	}

	// A fresh process (fresh store + runner) must resolve from disk.
	store2, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Len() != 2 {
		t.Fatalf("reloaded store holds %d results, want 2", store2.Len())
	}
	r2 := New(Options{Workers: 2, Store: store2, RunSim: func(sim.Config) (sim.Result, error) {
		t.Error("store-resident config was re-simulated")
		return sim.Result{}, fmt.Errorf("unexpected simulation")
	}})
	res, err := r2.Run(context.Background(), cfgN(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions != cfgN(1).Instructions {
		t.Error("disk store returned wrong result")
	}
	if st := r2.Stats(); st.StoreHits != 1 {
		t.Errorf("store hits = %d, want 1", st.StoreHits)
	}
}

func TestDiskStoreFlushIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	store, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil { // nothing dirty: no file needed
		t.Fatal(err)
	}
	store.Record(sim.Default("gcc").Key(), StoredResult{})
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestStoredErrorReplayedWithoutSimulating(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	boom := errors.New("boom")
	store, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := New(Options{Workers: 1, Store: store, RunSim: func(sim.Config) (sim.Result, error) {
		return sim.Result{}, boom
	}})
	if _, err := r1.Run(context.Background(), cfgN(0)); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}

	// A fresh process must replay the persisted failure, not re-run it.
	store2, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	r2 := New(Options{Workers: 1, Store: store2, RunSim: func(sim.Config) (sim.Result, error) {
		calls.Add(1)
		return sim.Result{}, nil
	}})
	_, err = r2.Run(context.Background(), cfgN(0))
	var se *StoredError
	if !errors.As(err, &se) || !strings.Contains(se.Error(), "boom") {
		t.Fatalf("want replayed StoredError(boom), got %v", err)
	}
	if calls.Load() != 0 {
		t.Errorf("stored failure re-simulated %d times", calls.Load())
	}
	if st := r2.Stats(); st.StoreHits != 1 || st.Runs != 0 || st.Errors != 1 {
		t.Errorf("stats = %+v, want 1 store hit / 0 runs / 1 error", st)
	}
}

func TestCancellationsAreNeverPersisted(t *testing.T) {
	store := NewMemStore()
	r := New(Options{Workers: 1, Store: store, RunSim: func(sim.Config) (sim.Result, error) {
		return sim.Result{}, context.Canceled
	}})
	if _, err := r.Run(context.Background(), cfgN(0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, ok := store.Lookup(cfgN(0).Key()); ok {
		t.Error("cancellation outcome was persisted")
	}
	// The fingerprint stays retryable, and the retry's success persists.
	var calls atomic.Int32
	r2 := New(Options{Workers: 1, Store: store, RunSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}})
	if _, err := r2.Run(context.Background(), cfgN(0)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Errorf("retry simulated %d times, want 1", calls.Load())
	}
	if _, ok := store.Lookup(cfgN(0).Key()); !ok {
		t.Error("successful retry was not persisted")
	}
}

func TestDiskStoreCorruptAndVersionMismatch(t *testing.T) {
	dir := t.TempDir()

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(corrupt); err == nil {
		t.Error("corrupted store file accepted")
	}

	// A version-mismatched file loads as empty and is overwritten whole
	// on the next flush, never partially merged.
	old := filepath.Join(dir, "old.json")
	if err := os.WriteFile(old, []byte(`{"version":1,"results":{"deadbeef":{}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDiskStore(old)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("version-mismatched store loaded %d results", s.Len())
	}
	s.Record(cfgN(0).Key(), StoredResult{Result: stubResult(cfgN(0))})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDiskStore(old)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("rewritten store holds %d results, want 1", s2.Len())
	}
	if _, ok := s2.Lookup(cfgN(0).Key()); !ok {
		t.Error("rewritten store lost the fresh result")
	}
}

func TestMemStoreIsAPluggableBackend(t *testing.T) {
	store := NewMemStore()
	var calls atomic.Int32
	runSim := func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}
	r1 := New(Options{Workers: 1, Store: store, RunSim: runSim})
	if _, err := r1.Run(context.Background(), cfgN(0)); err != nil {
		t.Fatal(err)
	}
	// A second runner sharing the backend resolves without simulating.
	r2 := New(Options{Workers: 1, Store: store, RunSim: runSim})
	res, err := r2.Run(context.Background(), cfgN(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions != cfgN(0).Instructions {
		t.Error("backend returned wrong result")
	}
	if calls.Load() != 1 {
		t.Errorf("simulated %d times across runners, want 1", calls.Load())
	}
	if st := r2.Stats(); st.StoreHits != 1 {
		t.Errorf("store hits = %d, want 1", st.StoreHits)
	}
}

func TestMemoLRUEviction(t *testing.T) {
	var calls atomic.Int32
	r := New(Options{Workers: 1, MemoLimit: 2, RunSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}})
	ctx := context.Background()
	for i := 0; i < 3; i++ { // fills the table, evicting cfg 0
		if _, err := r.Run(ctx, cfgN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("cold runs = %d, want 3", calls.Load())
	}
	if _, err := r.Run(ctx, cfgN(2)); err != nil { // memo hit; refreshes recency
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Error("resident entry re-simulated")
	}
	if _, err := r.Run(ctx, cfgN(0)); err != nil { // evicted: must re-simulate
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Errorf("evicted entry not re-simulated (calls = %d)", calls.Load())
	}
	// cfg 2 was touched after cfg 1, so re-admitting cfg 0 evicted cfg 1
	// — cfg 2 must still be resident (i.e. recency, not insertion order).
	if _, err := r.Run(ctx, cfgN(2)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Errorf("recently used entry was evicted (calls = %d)", calls.Load())
	}
	if st := r.Stats(); st.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2", st.Evictions)
	}
}

func TestArtifactMemoizesAndPersists(t *testing.T) {
	store := NewMemStore()
	r := New(Options{Workers: 1, Store: store})
	key := sim.NewKeyBuilder("runner-test").Str("artifact").Sum()
	var computes atomic.Int32
	compute := func(context.Context) ([]byte, error) {
		computes.Add(1)
		return []byte(`{"v":1}`), nil
	}
	ctx := context.Background()
	a, err := r.Artifact(ctx, key, compute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Artifact(ctx, key, compute)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != `{"v":1}` || string(b) != string(a) {
		t.Errorf("artifact payloads differ: %q vs %q", a, b)
	}
	if computes.Load() != 1 {
		t.Errorf("computed %d times, want 1", computes.Load())
	}
	if st := r.Stats(); st.ArtifactHits != 1 || st.ArtifactComputes != 1 {
		t.Errorf("stats = %+v, want 1 artifact hit / 1 compute", st)
	}

	// A fresh runner sharing the store resolves from the persistent tier.
	r2 := New(Options{Workers: 1, Store: store})
	c, err := r2.Artifact(ctx, key, compute)
	if err != nil {
		t.Fatal(err)
	}
	if string(c) != string(a) {
		t.Error("persistent tier returned wrong payload")
	}
	if computes.Load() != 1 {
		t.Error("persistent tier miss recomputed the artifact")
	}
	if st := r2.Stats(); st.ArtifactStoreHits != 1 {
		t.Errorf("artifact store hits = %d, want 1", st.ArtifactStoreHits)
	}
}

func TestArtifactErrorsAreNotMemoized(t *testing.T) {
	r := New(Options{Workers: 1})
	key := sim.NewKeyBuilder("runner-test").Str("flaky").Sum()
	boom := errors.New("boom")
	fail := true
	ctx := context.Background()
	if _, err := r.Artifact(ctx, key, func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	data, err := r.Artifact(ctx, key, func(context.Context) ([]byte, error) {
		fail = false
		return []byte("ok"), nil
	})
	if err != nil || string(data) != "ok" {
		t.Fatalf("failed fingerprint not retried: %q, %v", data, err)
	}
	if fail {
		t.Error("second compute never ran")
	}
}

func TestArtifactInFlightDedup(t *testing.T) {
	const waiters = 6
	r := New(Options{Workers: waiters})
	key := sim.NewKeyBuilder("runner-test").Str("concurrent").Sum()
	release := make(chan struct{})
	var computes atomic.Int32
	var wg sync.WaitGroup
	outs := make([][]byte, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = r.Artifact(context.Background(), key, func(context.Context) ([]byte, error) {
				computes.Add(1)
				<-release
				return []byte("shared"), nil
			})
		}(i)
	}
	deadline := time.After(5 * time.Second)
	for computes.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no compute started")
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if string(outs[i]) != "shared" {
			t.Errorf("waiter %d got %q", i, outs[i])
		}
	}
	if computes.Load() != 1 {
		t.Errorf("computed %d times, want 1", computes.Load())
	}
}

// TestRealSimulationThroughRunner exercises the default runSim seam with
// a tiny real simulation, end to end through memoization.
func TestRealSimulationThroughRunner(t *testing.T) {
	r := New(Options{Workers: 2})
	cfg := sim.Default("m88ksim")
	cfg.Instructions = 20_000
	a, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Cycles == 0 || a.CPU.Cycles != b.CPU.Cycles {
		t.Errorf("memoized real run mismatch: %d vs %d cycles", a.CPU.Cycles, b.CPU.Cycles)
	}
	if st := r.Stats(); st.Runs != 1 || st.MemoHits != 1 {
		t.Errorf("stats = %+v, want 1 run / 1 memo hit", st)
	}
}

func TestEnqueueRegistersSynchronouslyAndJoins(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int32
	r := New(Options{Workers: 8, RunSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		<-release
		return stubResult(cfg), nil
	}})
	cfgs := []sim.Config{cfgN(0), cfgN(1), cfgN(2)}
	if n, _ := r.Enqueue(context.Background(), cfgs); n != 3 {
		t.Fatalf("enqueued %d configs, want 3", n)
	}
	// Entries are registered before Enqueue returns, so a batch gather of
	// the same configs joins the in-flight work: no fresh fan-out, no
	// barrier, no extra simulations.
	done := make(chan error, 1)
	go func() {
		_, err := r.RunAll(context.Background(), cfgs)
		done <- err
	}()
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if calls.Load() != 3 || st.Runs != 3 {
		t.Errorf("simulated %d/%d times, want 3", calls.Load(), st.Runs)
	}
	if st.Enqueued != 3 || st.EnqueueBatches != 1 {
		t.Errorf("enqueue stats = %+v, want 3 enqueued in 1 pass", st)
	}
	if st.Barriers != 0 {
		t.Errorf("gather of enqueued batch counted %d barriers, want 0", st.Barriers)
	}
	// A second Enqueue of the same batch finds everything memoized.
	if n, _ := r.Enqueue(context.Background(), cfgs); n != 0 {
		t.Errorf("warm Enqueue submitted %d configs, want 0", n)
	}
}

func TestRunAllCountsBarrierOnFreshWork(t *testing.T) {
	r := New(Options{Workers: 2, RunSim: func(cfg sim.Config) (sim.Result, error) {
		return stubResult(cfg), nil
	}})
	ctx := context.Background()
	if _, err := r.RunAll(ctx, []sim.Config{cfgN(0), cfgN(1)}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Barriers != 1 {
		t.Fatalf("cold batch counted %d barriers, want 1", st.Barriers)
	}
	// The same batch again is fully memoized: no fan-out, no barrier.
	if _, err := r.RunAll(ctx, []sim.Config{cfgN(0), cfgN(1)}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Barriers != 1 {
		t.Errorf("warm batch counted a barrier: %+v", st)
	}
	// One new config makes the batch fresh again.
	if _, err := r.RunAll(ctx, []sim.Config{cfgN(0), cfgN(2)}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Barriers != 2 {
		t.Errorf("partially fresh batch counted %d barriers, want 2", st.Barriers)
	}
}

func TestEnqueueCancellationLeavesRetryable(t *testing.T) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	r := New(Options{Workers: 1, RunSim: func(cfg sim.Config) (sim.Result, error) {
		started <- struct{}{}
		<-release
		return stubResult(cfg), nil
	}})
	ctx, cancel := context.WithCancel(context.Background())
	r.Enqueue(ctx, []sim.Config{cfgN(0), cfgN(1)})
	<-started // first owner occupies the single worker; second queues
	cancel()
	close(release)
	// The queued config completed with a cancellation and must have been
	// evicted, so a live context re-runs it.
	res, err := r.Run(context.Background(), cfgN(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions != cfgN(1).Instructions {
		t.Error("retry returned wrong result")
	}
}

func TestHasArtifactBothTiers(t *testing.T) {
	store := NewMemStore()
	r := New(Options{Workers: 1, Store: store})
	key := sim.NewKeyBuilder("runner-test").Str("probe").Sum()
	if r.HasArtifact(key) {
		t.Fatal("cold fingerprint reported present")
	}
	if _, err := r.Artifact(context.Background(), key, func(context.Context) ([]byte, error) {
		return []byte(`{"v":1}`), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !r.HasArtifact(key) {
		t.Error("memoized artifact reported absent")
	}
	// A fresh runner sharing the store sees the persistent tier.
	r2 := New(Options{Workers: 1, Store: store})
	if !r2.HasArtifact(key) {
		t.Error("stored artifact reported absent")
	}
	if New(Options{Workers: 1}).HasArtifact(key) {
		t.Error("storeless runner reported a foreign artifact present")
	}
}

func TestStatsDelta(t *testing.T) {
	a := Stats{Submitted: 10, Runs: 4, MemoHits: 6, Enqueued: 3, Barriers: 2, ArtifactComputes: 1}
	b := Stats{Submitted: 25, Runs: 5, MemoHits: 20, Enqueued: 3, Barriers: 2, ArtifactComputes: 1, ArtifactHits: 7}
	d := b.Delta(a)
	want := Stats{Submitted: 15, Runs: 1, MemoHits: 14, ArtifactHits: 7}
	if d != want {
		t.Errorf("Delta = %+v, want %+v", d, want)
	}
}

func TestEnqueueWaitDrainsStragglersBeforeFlush(t *testing.T) {
	store := NewMemStore()
	started := make(chan sim.Config, 2)
	release := make(chan struct{})
	r := New(Options{Workers: 1, Store: store, RunSim: func(cfg sim.Config) (sim.Result, error) {
		started <- cfg
		<-release
		return stubResult(cfg), nil
	}})
	ctx, cancel := context.WithCancel(context.Background())
	n, wait := r.Enqueue(ctx, []sim.Config{cfgN(0), cfgN(1)})
	if n != 2 {
		t.Fatalf("enqueued %d, want 2", n)
	}
	running := <-started // one config owns the single worker slot
	cancel()             // the queued one aborts; the running one is a straggler
	close(release)
	wait() // must not return until the straggler has published
	if _, ok := store.Lookup(running.Key()); !ok {
		t.Error("straggler's result was not persisted before wait returned")
	}
}

// TestStaleKeyEncodingInvalidatesCleanly models the sim.Key version
// bump (v1 -> v2): a store populated under a retired key encoding still
// loads, but its entries can only miss — the runner re-simulates under
// the current keys and persists alongside the stale entries, never
// serving a result the old key no longer describes.
func TestStaleKeyEncodingInvalidatesCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	store, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	// A v1-era fingerprint of cfgN(0): same config, retired encoding.
	// Any key the current encoder cannot produce stands in for it.
	var stale sim.Key
	copy(stale[:], []byte("v1-key-of-cfgN0-retired-encoding"))
	wrong := stubResult(cfgN(1)) // result the stale key maps to
	store.Record(stale, StoredResult{Result: wrong})
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Len() != 1 {
		t.Fatalf("stale store failed to load: %d results", store2.Len())
	}
	var calls atomic.Int32
	r := New(Options{Workers: 1, Store: store2, RunSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}})
	res, err := r.Run(context.Background(), cfgN(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions != cfgN(0).Instructions {
		t.Fatalf("got result for the wrong config: %+v", res.CPU)
	}
	if calls.Load() != 1 {
		t.Fatalf("stale store served a hit: %d simulations", calls.Load())
	}
	if st := r.Stats(); st.StoreHits != 0 {
		t.Fatalf("stale entry counted as a store hit: %+v", st)
	}
	// The fresh result persists under the new key; the stale entry stays
	// (unreachable) rather than corrupting the store.
	if err := store2.Flush(); err != nil {
		t.Fatal(err)
	}
	store3, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if store3.Len() != 2 {
		t.Fatalf("store holds %d results after re-run, want 2", store3.Len())
	}
	if _, ok := store3.Lookup(cfgN(0).Key()); !ok {
		t.Fatal("fresh result not persisted under the current key")
	}
}
