package runner

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resizecache/internal/sim"
)

// cfgN returns a distinct config per index (instruction count varies).
func cfgN(i int) sim.Config {
	c := sim.Default("gcc")
	c.Instructions = uint64(1000 + i)
	return c
}

// stubResult returns a recognizable result for a config.
func stubResult(cfg sim.Config) sim.Result {
	var r sim.Result
	r.CPU.Instructions = cfg.Instructions
	r.CPU.Cycles = 2 * cfg.Instructions
	return r
}

func TestRunMemoizes(t *testing.T) {
	var calls atomic.Int32
	r := New(Options{Workers: 2, runSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}})
	ctx := context.Background()
	first, err := r.Run(ctx, cfgN(0))
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(ctx, cfgN(0))
	if err != nil {
		t.Fatal(err)
	}
	if first.CPU != second.CPU || first.EDP != second.EDP {
		t.Error("memoized result differs from original")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("simulated %d times, want 1", got)
	}
	st := r.Stats()
	if st.Submitted != 2 || st.Runs != 1 || st.MemoHits != 1 {
		t.Errorf("stats = %+v, want 2 submitted / 1 run / 1 memo hit", st)
	}
}

func TestRunAllDeterministicOrderAndBaselineDedup(t *testing.T) {
	var calls atomic.Int32
	r := New(Options{Workers: 4, runSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}})
	// A sweep-shaped batch: baseline duplicated at both ends plus three
	// distinct candidates.
	cfgs := []sim.Config{cfgN(0), cfgN(1), cfgN(2), cfgN(3), cfgN(0)}
	res, err := r.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range cfgs {
		if res[i].CPU.Instructions != want.Instructions {
			t.Errorf("result %d out of order: got %d instructions, want %d",
				i, res[i].CPU.Instructions, want.Instructions)
		}
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("simulated %d distinct configs, want 4", got)
	}
	if hits := r.Stats().Hits(); hits != 1 {
		t.Errorf("hits = %d, want 1 (duplicated baseline)", hits)
	}
}

func TestConcurrentIdenticalSubmissionsDeduplicate(t *testing.T) {
	const waiters = 8
	release := make(chan struct{})
	var calls atomic.Int32
	r := New(Options{Workers: waiters, runSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		<-release
		return stubResult(cfg), nil
	}})
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Run(context.Background(), cfgN(0))
		}(i)
	}
	// Wait until every submission has either started the simulation or
	// joined it, then release the single in-flight run.
	deadline := time.After(5 * time.Second)
	for {
		st := r.Stats()
		if st.Submitted == waiters && st.InFlightDedups == waiters-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("dedup never converged: %+v", r.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("simulated %d times, want 1", got)
	}
}

func TestRunErrorsAreMemoized(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	r := New(Options{Workers: 1, runSim: func(sim.Config) (sim.Result, error) {
		calls.Add(1)
		return sim.Result{}, boom
	}})
	for i := 0; i < 2; i++ {
		if _, err := r.Run(context.Background(), cfgN(0)); !errors.Is(err, boom) {
			t.Fatalf("want boom, got %v", err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("failing config simulated %d times, want 1", calls.Load())
	}
	if r.Stats().Errors != 1 {
		t.Errorf("errors = %d, want 1", r.Stats().Errors)
	}
}

func TestContextCancellationMidSweep(t *testing.T) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	r := New(Options{Workers: 1, runSim: func(cfg sim.Config) (sim.Result, error) {
		started <- struct{}{}
		<-release
		return stubResult(cfg), nil
	}})
	ctx, cancel := context.WithCancel(context.Background())
	var cfgs []sim.Config
	for i := 0; i < 16; i++ {
		cfgs = append(cfgs, cfgN(i))
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.RunAll(ctx, cfgs)
		done <- err
	}()
	<-started // first simulation occupies the single worker
	cancel()  // the other 15 are queued; cancellation must stop them
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunAll did not return after cancellation")
	}
	if runs := r.Stats().Runs; runs >= uint64(len(cfgs)) {
		t.Errorf("cancellation did not prevent queued runs: %d runs", runs)
	}
}

func TestCancelledEntryRetriesOnLiveContext(t *testing.T) {
	var calls atomic.Int32
	r := New(Options{Workers: 1, runSim: func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(cancelled, cfgN(0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// A cancellation outcome must not poison the fingerprint.
	res, err := r.Run(context.Background(), cfgN(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions != cfgN(0).Instructions {
		t.Error("retry returned wrong result")
	}
	if calls.Load() != 1 {
		t.Errorf("retry simulated %d times, want 1", calls.Load())
	}
}

func TestRunAllLimitBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int32
	r := New(Options{Workers: 8, runSim: func(cfg sim.Config) (sim.Result, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return stubResult(cfg), nil
	}})
	var cfgs []sim.Config
	for i := 0; i < 12; i++ {
		cfgs = append(cfgs, cfgN(i))
	}
	if _, err := r.RunAllLimit(context.Background(), cfgs, 2); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds limit 2", p)
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	var calls atomic.Int32
	runSim := func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubResult(cfg), nil
	}

	store, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := New(Options{Workers: 2, Store: store, runSim: runSim})
	if _, err := r1.RunAll(context.Background(), []sim.Config{cfgN(0), cfgN(1)}); err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d results, want 2", store.Len())
	}

	// A fresh process (fresh store + runner) must resolve from disk.
	store2, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Len() != 2 {
		t.Fatalf("reloaded store holds %d results, want 2", store2.Len())
	}
	r2 := New(Options{Workers: 2, Store: store2, runSim: func(sim.Config) (sim.Result, error) {
		t.Error("store-resident config was re-simulated")
		return sim.Result{}, fmt.Errorf("unexpected simulation")
	}})
	res, err := r2.Run(context.Background(), cfgN(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions != cfgN(1).Instructions {
		t.Error("disk store returned wrong result")
	}
	if st := r2.Stats(); st.StoreHits != 1 {
		t.Errorf("store hits = %d, want 1", st.StoreHits)
	}
}

func TestDiskStoreFlushIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	store, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil { // nothing dirty: no file needed
		t.Fatal(err)
	}
	store.put(sim.Default("gcc").Key(), sim.Result{})
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestRealSimulationThroughRunner exercises the default runSim seam with
// a tiny real simulation, end to end through memoization.
func TestRealSimulationThroughRunner(t *testing.T) {
	r := New(Options{Workers: 2})
	cfg := sim.Default("m88ksim")
	cfg.Instructions = 20_000
	a, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Cycles == 0 || a.CPU.Cycles != b.CPU.Cycles {
		t.Errorf("memoized real run mismatch: %d vs %d cycles", a.CPU.Cycles, b.CPU.Cycles)
	}
	if st := r.Stats(); st.Runs != 1 || st.MemoHits != 1 {
		t.Errorf("stats = %+v, want 1 run / 1 memo hit", st)
	}
}
