package runner

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"resizecache/internal/sim"
)

// gangCfgN returns configs that share a simulation front-end (same
// benchmark, budget, engine, pipeline) but have distinct fingerprints —
// the shape of one benchmark's sweep cells.
func gangCfgN(bench string, i int) sim.Config {
	c := sim.Default(bench)
	c.Instructions = 5000
	c.MSHREntries = 8 + i
	return c
}

// gangRecorder is a RunGang stub that records dispatched batches.
type gangRecorder struct {
	mu      sync.Mutex
	batches [][]sim.Config
}

func (g *gangRecorder) run(cfgs []sim.Config) ([]sim.Result, error) {
	g.mu.Lock()
	g.batches = append(g.batches, cfgs)
	g.mu.Unlock()
	out := make([]sim.Result, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = stubResult(cfg)
	}
	return out, nil
}

func (g *gangRecorder) sizes() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	sizes := make([]int, len(g.batches))
	for i, b := range g.batches {
		sizes[i] = len(b)
	}
	sort.Ints(sizes)
	return sizes
}

func TestEnqueueCoalescesGangs(t *testing.T) {
	var solo atomic.Int32
	rec := &gangRecorder{}
	r := New(Options{Workers: 2,
		RunSim: func(cfg sim.Config) (sim.Result, error) {
			solo.Add(1)
			return stubResult(cfg), nil
		},
		RunGang: rec.run,
	})
	ctx := context.Background()

	cfgs := make([]sim.Config, 10)
	for i := range cfgs {
		cfgs[i] = gangCfgN("gcc", i)
	}
	n, wait := r.Enqueue(ctx, cfgs)
	wait()
	if n != 10 {
		t.Fatalf("enqueued %d, want 10", n)
	}
	// Default gang size 8: one full gang plus the 2-member remainder.
	if got := rec.sizes(); !reflect.DeepEqual(got, []int{2, 8}) {
		t.Errorf("gang batch sizes = %v, want [2 8]", got)
	}
	if got := solo.Load(); got != 0 {
		t.Errorf("%d solo simulations, want 0", got)
	}
	st := r.Stats()
	if st.Ganged != 10 || st.GangBatches != 2 || st.Runs != 10 {
		t.Errorf("stats = %+v, want 10 ganged / 2 gang batches / 10 runs", st)
	}

	// Outcomes published to the normal memo entries.
	for i := range cfgs {
		res, err := r.Run(ctx, cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, stubResult(cfgs[i])) {
			t.Errorf("config %d: wrong gang result", i)
		}
	}
	if st := r.Stats(); st.MemoHits != 10 {
		t.Errorf("memo hits = %d, want 10", st.MemoHits)
	}
}

func TestEnqueueGangsOnlyWithinFrontGroups(t *testing.T) {
	rec := &gangRecorder{}
	r := New(Options{Workers: 2,
		RunSim:  func(cfg sim.Config) (sim.Result, error) { return stubResult(cfg), nil },
		RunGang: rec.run,
	})
	var cfgs []sim.Config
	for i := 0; i < 3; i++ {
		cfgs = append(cfgs, gangCfgN("gcc", i), gangCfgN("vpr", i))
	}
	_, wait := r.Enqueue(context.Background(), cfgs)
	wait()

	if got := rec.sizes(); !reflect.DeepEqual(got, []int{3, 3}) {
		t.Fatalf("gang batch sizes = %v, want [3 3]", got)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, batch := range rec.batches {
		front := batch[0].FrontKey()
		for _, cfg := range batch[1:] {
			if cfg.FrontKey() != front {
				t.Errorf("mixed-front gang dispatched: %s with %s",
					batch[0].Benchmark, cfg.Benchmark)
			}
		}
	}
}

func TestEnqueueSingletonGroupsRunSolo(t *testing.T) {
	var solo atomic.Int32
	rec := &gangRecorder{}
	r := New(Options{Workers: 2,
		RunSim: func(cfg sim.Config) (sim.Result, error) {
			solo.Add(1)
			return stubResult(cfg), nil
		},
		RunGang: rec.run,
	})
	// Three distinct fronts, one config each: nothing to coalesce.
	cfgs := []sim.Config{cfgN(1), cfgN(2), cfgN(3)}
	_, wait := r.Enqueue(context.Background(), cfgs)
	wait()
	if len(rec.sizes()) != 0 {
		t.Errorf("gang dispatched for singleton groups: %v", rec.sizes())
	}
	if got := solo.Load(); got != 3 {
		t.Errorf("%d solo simulations, want 3", got)
	}
	if st := r.Stats(); st.Ganged != 0 || st.GangBatches != 0 {
		t.Errorf("stats = %+v, want no ganging", st)
	}
}

func TestGangSizeOneDisablesCoalescing(t *testing.T) {
	var solo atomic.Int32
	rec := &gangRecorder{}
	r := New(Options{Workers: 2, GangSize: 1,
		RunSim: func(cfg sim.Config) (sim.Result, error) {
			solo.Add(1)
			return stubResult(cfg), nil
		},
		RunGang: rec.run,
	})
	cfgs := make([]sim.Config, 4)
	for i := range cfgs {
		cfgs[i] = gangCfgN("gcc", i)
	}
	_, wait := r.Enqueue(context.Background(), cfgs)
	wait()
	if len(rec.sizes()) != 0 || solo.Load() != 4 {
		t.Errorf("gang batches %v, solo %d; want none ganged, 4 solo",
			rec.sizes(), solo.Load())
	}
}

func TestGangErrorFallsBackToSolo(t *testing.T) {
	var solo atomic.Int32
	r := New(Options{Workers: 2,
		RunSim: func(cfg sim.Config) (sim.Result, error) {
			solo.Add(1)
			return stubResult(cfg), nil
		},
		RunGang: func(cfgs []sim.Config) ([]sim.Result, error) {
			return nil, errors.New("gang refused")
		},
	})
	ctx := context.Background()
	cfgs := make([]sim.Config, 3)
	for i := range cfgs {
		cfgs[i] = gangCfgN("gcc", i)
	}
	_, wait := r.Enqueue(ctx, cfgs)
	wait()
	if got := solo.Load(); got != 3 {
		t.Errorf("%d solo fallback simulations, want 3", got)
	}
	st := r.Stats()
	if st.Ganged != 0 || st.GangBatches != 0 || st.Runs != 3 {
		t.Errorf("stats = %+v, want 0 ganged / 3 runs", st)
	}
	for i := range cfgs {
		res, err := r.Run(ctx, cfgs[i])
		if err != nil || !reflect.DeepEqual(res, stubResult(cfgs[i])) {
			t.Errorf("config %d: fallback result wrong (%v)", i, err)
		}
	}
}

func TestGangSkipsStoreHits(t *testing.T) {
	store := NewMemStore()
	hit := gangCfgN("gcc", 0)
	store.Record(hit.Key(), StoredResult{Result: stubResult(hit)})

	rec := &gangRecorder{}
	r := New(Options{Workers: 2, Store: store,
		RunSim:  func(cfg sim.Config) (sim.Result, error) { return stubResult(cfg), nil },
		RunGang: rec.run,
	})
	cfgs := make([]sim.Config, 4)
	for i := range cfgs {
		cfgs[i] = gangCfgN("gcc", i)
	}
	_, wait := r.Enqueue(context.Background(), cfgs)
	wait()

	if got := rec.sizes(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("gang batch sizes = %v, want [3]", got)
	}
	st := r.Stats()
	if st.StoreHits != 1 || st.Ganged != 3 {
		t.Errorf("stats = %+v, want 1 store hit / 3 ganged", st)
	}
}

// TestStubbedRunSimGetsSequentialGang: a stubbed RunSim without a gang
// stub still observes every config — the default gang entry point
// degrades to a loop over the stub.
func TestStubbedRunSimGetsSequentialGang(t *testing.T) {
	var calls atomic.Int32
	r := New(Options{Workers: 2,
		RunSim: func(cfg sim.Config) (sim.Result, error) {
			calls.Add(1)
			return stubResult(cfg), nil
		},
	})
	cfgs := make([]sim.Config, 3)
	for i := range cfgs {
		cfgs[i] = gangCfgN("gcc", i)
	}
	_, wait := r.Enqueue(context.Background(), cfgs)
	wait()
	if got := calls.Load(); got != 3 {
		t.Errorf("stub called %d times, want 3", got)
	}
	if st := r.Stats(); st.Ganged != 3 || st.GangBatches != 1 {
		t.Errorf("stats = %+v, want 3 ganged in 1 batch", st)
	}
}

// TestRealGangThroughRunner: with the real sim entry points, enqueued
// same-front configs gang and produce results bit-identical to solo
// sim.Run.
func TestRealGangThroughRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	r := New(Options{Workers: 2})
	ctx := context.Background()
	var cfgs []sim.Config
	for _, kb := range []int{16, 32, 64} {
		c := sim.Default("gcc")
		c.Instructions = 20_000
		c.DCache.Geom.SizeBytes = kb << 10
		cfgs = append(cfgs, c)
	}
	_, wait := r.Enqueue(ctx, cfgs)
	wait()
	if st := r.Stats(); st.Ganged != 3 || st.GangBatches != 1 {
		t.Fatalf("stats = %+v, want 3 ganged in 1 batch", st)
	}
	for i, cfg := range cfgs {
		got, err := r.Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("config %d: ganged result differs from solo sim.Run", i)
		}
	}
}
