package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"resizecache/internal/sim"
	simdclient "resizecache/internal/simd/client"
	"resizecache/internal/simd/wire"
)

// NetStore is the network Store backend: every Lookup/Record and
// artifact operation round-trips to a simd daemon's store service, so
// detached processes share one memo fabric even when they run their own
// simulations. Per the Store contract, failures degrade to misses — a
// daemon that is unreachable mid-run costs re-simulation, never
// corruption — and are counted (with successful remote hits) in the
// owning Runner's Stats as RemoteErrors/RemoteHits.
//
// Record and RecordArtifact write through synchronously; the daemon
// buffers them in its backing store, which it flushes on drain (and on
// an explicit Flush call here).
//
// A circuit breaker guards the degradation path: after
// BreakerThreshold consecutive failed round trips the store stops
// calling out and answers every operation as a miss for
// BreakerCooldownOps operations, then lets one probe through
// (half-open) — success closes the breaker, failure re-trips it. The
// cooldown is counted in operations, not wall-clock time, so breaker
// behaviour is deterministic for a fixed operation sequence. Trips are
// reported through the owning Runner's Stats as BreakerTrips.
type NetStore struct {
	conn       *simdclient.Conn
	breaker    breaker
	hits, errs atomic.Uint64
}

var _ Store = (*NetStore)(nil)
var _ RemoteCounter = (*NetStore)(nil)
var _ BreakerCounter = (*NetStore)(nil)

// Circuit-breaker defaults: a NetStore stops dialing out after this
// many consecutive failures and short-circuits this many operations
// before probing again.
const (
	DefaultBreakerThreshold   = 5
	DefaultBreakerCooldownOps = 128
)

// NetStoreOptions tunes OpenNetStoreWith. The zero value means
// defaults everywhere.
type NetStoreOptions struct {
	// BreakerThreshold is how many consecutive failed round trips trip
	// the breaker (0 = DefaultBreakerThreshold, negative = breaker
	// disabled: every operation calls out, however dead the daemon).
	BreakerThreshold int
	// BreakerCooldownOps is how many operations a tripped breaker
	// short-circuits before letting a probe through
	// (0 = DefaultBreakerCooldownOps).
	BreakerCooldownOps int
	// Client tunes the underlying simd client (timeouts, reconnect
	// backoff, failover); see simdclient.Options.
	Client simdclient.Options
}

// OpenNetStore dials a simd daemon (address forms per the simd client:
// "unix:<path>", "tcp:<host:port>", bare path or host:port; a
// comma-separated list fails over in order) and returns a Store backed
// by its store service, with default timeouts and circuit breaker.
func OpenNetStore(addr string) (*NetStore, error) {
	return OpenNetStoreWith(addr, NetStoreOptions{})
}

// OpenNetStoreWith is OpenNetStore with explicit tuning.
func OpenNetStoreWith(addr string, opts NetStoreOptions) (*NetStore, error) {
	conn, err := simdclient.DialWith(addr, opts.Client)
	if err != nil {
		return nil, fmt.Errorf("runner: dial net store %s: %w", addr, err)
	}
	s := &NetStore{conn: conn}
	s.breaker.threshold = opts.BreakerThreshold
	if s.breaker.threshold == 0 {
		s.breaker.threshold = DefaultBreakerThreshold
	}
	s.breaker.cooldown = opts.BreakerCooldownOps
	if s.breaker.cooldown == 0 {
		s.breaker.cooldown = DefaultBreakerCooldownOps
	}
	return s, nil
}

// Close tears down the daemon connection. Subsequent operations fail
// (and so read as misses).
func (s *NetStore) Close() error { return s.conn.Close() }

// RemoteCounts implements RemoteCounter.
func (s *NetStore) RemoteCounts() (hits, errors uint64) {
	return s.hits.Load(), s.errs.Load()
}

// BreakerTrips implements BreakerCounter.
func (s *NetStore) BreakerTrips() uint64 { return s.breaker.trips.Load() }

// call performs one synchronous store round trip, counting failures.
// A tripped breaker short-circuits the call without touching the
// network; the caller degrades exactly as it would on a failure.
func (s *NetStore) call(req wire.Request) (wire.Response, bool) {
	if !s.breaker.allow() {
		return wire.Response{}, false
	}
	resp, err := s.conn.Call(context.Background(), req)
	if err != nil {
		s.errs.Add(1)
		s.breaker.report(false)
		return wire.Response{}, false
	}
	s.breaker.report(true)
	return resp, true
}

// Lookup implements Store; a transport or protocol failure is a miss.
func (s *NetStore) Lookup(k sim.Key) (StoredResult, bool) {
	resp, ok := s.call(wire.Request{Op: wire.OpLookup, Key: k.String()})
	if !ok || !resp.Found {
		return StoredResult{}, false
	}
	var sr StoredResult
	if err := json.Unmarshal(resp.Value, &sr); err != nil {
		s.errs.Add(1)
		return StoredResult{}, false
	}
	s.hits.Add(1)
	return sr, true
}

// Record implements Store.
func (s *NetStore) Record(k sim.Key, v StoredResult) {
	data, err := json.Marshal(v)
	if err != nil {
		s.errs.Add(1)
		return
	}
	s.call(wire.Request{Op: wire.OpRecord, Key: k.String(), Value: data})
}

// LookupArtifact implements Store; failures are misses.
func (s *NetStore) LookupArtifact(k sim.Key) ([]byte, bool) {
	resp, ok := s.call(wire.Request{Op: wire.OpLookupArtifact, Key: k.String()})
	if !ok || !resp.Found {
		return nil, false
	}
	s.hits.Add(1)
	return append([]byte(nil), resp.Value...), true
}

// RecordArtifact implements Store. Non-JSON payloads are dropped here
// (the Store contract lets backends embed payloads in JSON documents)
// rather than burning a round trip on a frame the daemon would reject.
func (s *NetStore) RecordArtifact(k sim.Key, data []byte) {
	if !json.Valid(data) {
		return
	}
	s.call(wire.Request{Op: wire.OpRecordArtifact, Key: k.String(), Value: data})
}

// Flush implements Store: it asks the daemon to persist its backing
// store. Unlike lookups, a flush failure is surfaced — callers flush to
// establish durability, and a silent no-op would break that contract.
// A tripped breaker fails the flush immediately for the same reason.
// The underlying client bounds the round trip with its default call
// timeout, so a wedged daemon cannot hang a flush indefinitely.
func (s *NetStore) Flush() error {
	if !s.breaker.allow() {
		return fmt.Errorf("runner: net store flush: %w", ErrBreakerOpen)
	}
	if _, err := s.conn.Call(context.Background(), wire.Request{Op: wire.OpFlush}); err != nil {
		s.errs.Add(1)
		s.breaker.report(false)
		return fmt.Errorf("runner: net store flush: %w", err)
	}
	s.breaker.report(true)
	return nil
}

// ErrBreakerOpen is the failure a surfaced operation (Flush) returns
// while the circuit breaker is short-circuiting the daemon.
var ErrBreakerOpen = errors.New("circuit breaker open: daemon unreachable")

// breaker is a consecutive-failure circuit breaker with an
// operation-counted cooldown: no wall clock, so a fixed operation
// sequence always trips and recovers at the same points.
type breaker struct {
	threshold int // consecutive failures that trip (≤0 = disabled)
	cooldown  int // ops short-circuited per trip before a probe

	mu       sync.Mutex
	consec   int  // consecutive failures while closed
	skip     int  // short-circuited ops remaining in this cooldown
	halfOpen bool // cooldown drained; the next outcome decides alone
	trips    atomic.Uint64
}

// allow reports whether the next operation may call out. While the
// breaker is open it consumes one cooldown slot and says no; once the
// cooldown drains the operation goes through as the half-open probe.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.skip > 0 {
		b.skip--
		return false
	}
	return true
}

// report feeds an allowed operation's outcome back. A success closes
// the breaker; a failure trips it when it is half-open or when the
// consecutive-failure threshold is reached.
func (b *breaker) report(ok bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.consec = 0
		b.halfOpen = false
		return
	}
	b.consec++
	if b.halfOpen || b.consec >= b.threshold {
		b.trips.Add(1)
		b.skip = b.cooldown
		b.consec = 0
		b.halfOpen = true
	}
}
