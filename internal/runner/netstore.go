package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"resizecache/internal/sim"
	simdclient "resizecache/internal/simd/client"
	"resizecache/internal/simd/wire"
)

// NetStore is the network Store backend: every Lookup/Record and
// artifact operation round-trips to a simd daemon's store service, so
// detached processes share one memo fabric even when they run their own
// simulations. Per the Store contract, failures degrade to misses — a
// daemon that is unreachable mid-run costs re-simulation, never
// corruption — and are counted (with successful remote hits) in the
// owning Runner's Stats as RemoteErrors/RemoteHits.
//
// Record and RecordArtifact write through synchronously; the daemon
// buffers them in its backing store, which it flushes on drain (and on
// an explicit Flush call here).
type NetStore struct {
	conn       *simdclient.Conn
	hits, errs atomic.Uint64
}

var _ Store = (*NetStore)(nil)
var _ RemoteCounter = (*NetStore)(nil)

// OpenNetStore dials a simd daemon (address forms per the simd client:
// "unix:<path>", "tcp:<host:port>", bare path or host:port) and returns
// a Store backed by its store service.
func OpenNetStore(addr string) (*NetStore, error) {
	conn, err := simdclient.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("runner: dial net store %s: %w", addr, err)
	}
	return &NetStore{conn: conn}, nil
}

// Close tears down the daemon connection. Subsequent operations fail
// (and so read as misses).
func (s *NetStore) Close() error { return s.conn.Close() }

// RemoteCounts implements RemoteCounter.
func (s *NetStore) RemoteCounts() (hits, errors uint64) {
	return s.hits.Load(), s.errs.Load()
}

// call performs one synchronous store round trip, counting failures.
func (s *NetStore) call(req wire.Request) (wire.Response, bool) {
	resp, err := s.conn.Call(context.Background(), req)
	if err != nil {
		s.errs.Add(1)
		return wire.Response{}, false
	}
	return resp, true
}

// Lookup implements Store; a transport or protocol failure is a miss.
func (s *NetStore) Lookup(k sim.Key) (StoredResult, bool) {
	resp, ok := s.call(wire.Request{Op: wire.OpLookup, Key: k.String()})
	if !ok || !resp.Found {
		return StoredResult{}, false
	}
	var sr StoredResult
	if err := json.Unmarshal(resp.Value, &sr); err != nil {
		s.errs.Add(1)
		return StoredResult{}, false
	}
	s.hits.Add(1)
	return sr, true
}

// Record implements Store.
func (s *NetStore) Record(k sim.Key, v StoredResult) {
	data, err := json.Marshal(v)
	if err != nil {
		s.errs.Add(1)
		return
	}
	s.call(wire.Request{Op: wire.OpRecord, Key: k.String(), Value: data})
}

// LookupArtifact implements Store; failures are misses.
func (s *NetStore) LookupArtifact(k sim.Key) ([]byte, bool) {
	resp, ok := s.call(wire.Request{Op: wire.OpLookupArtifact, Key: k.String()})
	if !ok || !resp.Found {
		return nil, false
	}
	s.hits.Add(1)
	return append([]byte(nil), resp.Value...), true
}

// RecordArtifact implements Store. Non-JSON payloads are dropped here
// (the Store contract lets backends embed payloads in JSON documents)
// rather than burning a round trip on a frame the daemon would reject.
func (s *NetStore) RecordArtifact(k sim.Key, data []byte) {
	if !json.Valid(data) {
		return
	}
	s.call(wire.Request{Op: wire.OpRecordArtifact, Key: k.String(), Value: data})
}

// Flush implements Store: it asks the daemon to persist its backing
// store. Unlike lookups, a flush failure is surfaced — callers flush to
// establish durability, and a silent no-op would break that contract.
func (s *NetStore) Flush() error {
	if _, err := s.conn.Call(context.Background(), wire.Request{Op: wire.OpFlush}); err != nil {
		s.errs.Add(1)
		return fmt.Errorf("runner: net store flush: %w", err)
	}
	return nil
}
