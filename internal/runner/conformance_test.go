package runner_test

// The in-tree Store backends run the shared conformance suite; the
// NetStore backend runs the same suite against an in-process daemon in
// internal/simd's tests (it cannot live here without importing the
// server package into runner's tests).

import (
	"path/filepath"
	"testing"

	"resizecache/internal/runner"
	"resizecache/internal/runner/storetest"
)

func TestMemStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) runner.Store {
		return runner.NewMemStore()
	})
}

func TestDiskStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) runner.Store {
		s, err := runner.OpenDiskStore(filepath.Join(t.TempDir(), "store.json"))
		if err != nil {
			t.Fatalf("OpenDiskStore: %v", err)
		}
		return s
	})
}

// TestDiskStoreConformanceAfterReload re-runs the round-trip contracts
// through an actual disk cycle: record, flush, reopen, look up.
func TestDiskStoreReloadKeepsContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	s, err := runner.OpenDiskStore(path)
	if err != nil {
		t.Fatalf("OpenDiskStore: %v", err)
	}
	key := func(seed byte) (out [32]byte) {
		for i := range out {
			out[i] = seed + byte(i)
		}
		return out
	}
	s.Record(key(1), runner.StoredResult{Err: "persisted failure"})
	s.RecordArtifact(key(2), []byte(`{"rows":[1,2]}`))
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	re, err := runner.OpenDiskStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got, ok := re.Lookup(key(1)); !ok || got.Err != "persisted failure" {
		t.Errorf("reloaded result = %+v, %v; want the persisted failure", got, ok)
	}
	if got, ok := re.LookupArtifact(key(2)); !ok || string(got) != `{"rows":[1,2]}` {
		t.Errorf("reloaded artifact = %s, %v", got, ok)
	}
}
