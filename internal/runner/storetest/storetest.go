// Package storetest is the runner.Store conformance suite: one set of
// contract assertions every backend — MemStore, DiskStore, NetStore
// against an in-process daemon, and any future sharded store — must
// pass. The contract under test is the Store interface doc plus the
// parts the Runner relies on: result and error round trips, artifact
// round trips with the non-JSON-drop rule, record-buffer independence,
// and stored outcomes (results and failures alike) replaying through a
// Runner without re-simulating.
package storetest

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"resizecache/internal/runner"
	"resizecache/internal/sim"
	"resizecache/internal/stats"
)

// key returns a distinct deterministic fingerprint per seed.
func key(seed byte) sim.Key {
	var k sim.Key
	for i := range k {
		k[i] = seed + byte(i)
	}
	return k
}

// sampleResult is a representative outcome: scalar, float, and slice
// fields all set, so a lossy round trip (JSON or wire) cannot hide. The
// floats are binary-exact in JSON.
func sampleResult() sim.Result {
	return sim.Result{
		EDP: stats.EDP{EnergyJ: 0.125, Cycles: 123456},
		DCache: sim.CacheReport{Accesses: 42, MissRatio: 0.25, AvgBytes: 16384,
			FullBytes: 32768, Resizes: 3, FlushedBlocks: 7,
			SizeTrace: []int{32768, 16384, 16384},
			EnergyPJ:  12.5, SwitchingPJ: 10.5, BackgroundPJ: 2},
		ICache: sim.CacheReport{Accesses: 99, FullBytes: 32768},
		Levels: []sim.LevelReport{{Name: "L2",
			CacheReport: sim.CacheReport{Accesses: 7, FullBytes: 512 << 10}}},
	}
}

// Run exercises one Store implementation against the full contract.
// open must return a fresh, empty store per call; it is called once per
// subtest, so backends with per-instance state (temp files, daemon
// connections) get clean fixtures.
func Run(t *testing.T, open func(t *testing.T) runner.Store) {
	t.Run("ResultRoundTrip", func(t *testing.T) {
		s := open(t)
		want := runner.StoredResult{Result: sampleResult()}
		s.Record(key(1), want)
		got, ok := s.Lookup(key(1))
		if !ok {
			t.Fatal("recorded result not found")
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip mutated the result:\n got %+v\nwant %+v", got, want)
		}
		if _, ok := s.Lookup(key(2)); ok {
			t.Error("lookup of an unrecorded key reported a hit")
		}
	})

	t.Run("ErrorRoundTrip", func(t *testing.T) {
		s := open(t)
		want := runner.StoredResult{Err: "workload exploded"}
		s.Record(key(3), want)
		got, ok := s.Lookup(key(3))
		if !ok {
			t.Fatal("recorded failure not found")
		}
		if got.Err != want.Err {
			t.Errorf("Err = %q, want %q", got.Err, want.Err)
		}
	})

	t.Run("ArtifactRoundTrip", func(t *testing.T) {
		s := open(t)
		payload := []byte(`{"winner":3,"edp":0.5}`)
		s.RecordArtifact(key(4), payload)
		got, ok := s.LookupArtifact(key(4))
		if !ok {
			t.Fatal("recorded artifact not found")
		}
		if string(got) != string(payload) {
			t.Errorf("artifact = %s, want %s", got, payload)
		}
		if _, ok := s.LookupArtifact(key(5)); ok {
			t.Error("lookup of an unrecorded artifact key reported a hit")
		}
	})

	t.Run("LargeArtifactRoundTrip", func(t *testing.T) {
		// Warmup checkpoints serialize whole front-end snapshots, so
		// payloads run to megabytes; every backend must round-trip them
		// byte-for-byte (the wire protocol's frame bound is 64MB).
		s := open(t)
		blob := make([]byte, 0, 2<<20)
		blob = append(blob, `{"snapshot":"`...)
		for len(blob) < 2<<20 {
			blob = append(blob, "0123456789abcdef"...)
		}
		blob = append(blob, `"}`...)
		s.RecordArtifact(key(9), blob)
		got, ok := s.LookupArtifact(key(9))
		if !ok {
			t.Fatalf("%d-byte artifact not found", len(blob))
		}
		if !reflect.DeepEqual(got, blob) {
			t.Errorf("large artifact mutated: %d bytes back, want %d", len(got), len(blob))
		}
	})

	t.Run("BinarySafeArtifactRoundTrip", func(t *testing.T) {
		// Checkpoint payloads carry arbitrary machine state inside JSON
		// strings: every byte value (escaped per JSON), multi-byte UTF-8,
		// quotes, and backslashes must survive every backend unchanged.
		s := open(t)
		raw := make([]byte, 256)
		for i := range raw {
			raw[i] = byte(i)
		}
		quoted, err := json.Marshal(string(raw) + `"\` + "héllo  ")
		if err != nil {
			t.Fatal(err)
		}
		payload := append([]byte(`{"state":`), quoted...)
		payload = append(payload, '}')
		s.RecordArtifact(key(10), payload)
		got, ok := s.LookupArtifact(key(10))
		if !ok {
			t.Fatal("binary-bearing artifact not found")
		}
		if !reflect.DeepEqual(got, payload) {
			t.Errorf("binary content mutated:\n got %q\nwant %q", got, payload)
		}
	})

	t.Run("ArtifactOverwrite", func(t *testing.T) {
		// Corrupt-checkpoint recovery overwrites in place; the last write
		// must win on every backend.
		s := open(t)
		s.RecordArtifact(key(11), []byte(`{"v":1}`))
		s.RecordArtifact(key(11), []byte(`{"v":2}`))
		got, ok := s.LookupArtifact(key(11))
		if !ok {
			t.Fatal("overwritten artifact not found")
		}
		if string(got) != `{"v":2}` {
			t.Errorf("overwrite did not win: got %s", got)
		}
	})

	t.Run("NonJSONArtifactDropped", func(t *testing.T) {
		s := open(t)
		s.RecordArtifact(key(6), []byte("not json at all"))
		if _, ok := s.LookupArtifact(key(6)); ok {
			t.Error("non-JSON artifact was stored; the contract says it stays a miss")
		}
	})

	t.Run("RecordBufferIndependence", func(t *testing.T) {
		s := open(t)
		payload := []byte(`{"v":1}`)
		s.RecordArtifact(key(7), payload)
		payload[5] = '2' // the caller reuses its buffer
		got, ok := s.LookupArtifact(key(7))
		if !ok {
			t.Fatal("recorded artifact not found")
		}
		if string(got) != `{"v":1}` {
			t.Errorf("artifact aliases the caller's buffer: got %s", got)
		}
	})

	t.Run("FlushSucceeds", func(t *testing.T) {
		s := open(t)
		s.Record(key(8), runner.StoredResult{Result: sampleResult()})
		if err := s.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	})

	t.Run("StoredResultReplay", func(t *testing.T) {
		s := open(t)
		cfg := sim.Default("gcc")
		cfg.Instructions = 1000
		want := sampleResult()
		s.Record(cfg.Key(), runner.StoredResult{Result: want})
		r := runner.New(runner.Options{Store: s, RunSim: func(sim.Config) (sim.Result, error) {
			t.Error("stored config was re-simulated")
			return sim.Result{}, nil
		}})
		got, err := r.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("replayed result differs:\n got %+v\nwant %+v", got, want)
		}
		if st := r.Stats(); st.StoreHits != 1 || st.Runs != 0 {
			t.Errorf("stats = %v; want 1 store hit, 0 runs", st)
		}
	})

	t.Run("StoredErrorReplay", func(t *testing.T) {
		s := open(t)
		cfg := sim.Default("gcc")
		cfg.Instructions = 1000
		s.Record(cfg.Key(), runner.StoredResult{Err: "known-bad config"})
		r := runner.New(runner.Options{Store: s, RunSim: func(sim.Config) (sim.Result, error) {
			t.Error("stored failure was re-simulated")
			return sim.Result{}, nil
		}})
		_, err := r.Run(context.Background(), cfg)
		var stored *runner.StoredError
		if !errors.As(err, &stored) {
			t.Fatalf("Run error = %v; want a replayed *StoredError", err)
		}
		if stored.Msg != "known-bad config" {
			t.Errorf("replayed message = %q, want %q", stored.Msg, "known-bad config")
		}
	})
}

// RunUnreachable exercises the graceful-degradation half of the Store
// contract: a backend that cannot reach its medium (a dead daemon, a
// tripped circuit breaker) must answer lookups as misses and swallow
// records — without returning errors to the Runner and within bounded
// time — while Flush, which promises durability, must fail loudly.
// open must return a store whose backend is unreachable by
// construction; maxPerOp bounds how long any single degraded operation
// may take (pass the store's worst-case timeout budget).
func RunUnreachable(t *testing.T, open func(t *testing.T) runner.Store, maxPerOp time.Duration) {
	// timed fails the test if op outlives maxPerOp — degradation that
	// blocks for minutes is an outage with extra steps.
	timed := func(t *testing.T, name string, op func()) {
		t.Helper()
		start := time.Now()
		op()
		if elapsed := time.Since(start); elapsed > maxPerOp {
			t.Errorf("%s took %v against an unreachable backend; want under %v", name, elapsed, maxPerOp)
		}
	}

	t.Run("LookupsDegradeToMisses", func(t *testing.T) {
		s := open(t)
		timed(t, "Lookup", func() {
			if _, ok := s.Lookup(key(1)); ok {
				t.Error("Lookup against an unreachable backend reported a hit")
			}
		})
		timed(t, "LookupArtifact", func() {
			if _, ok := s.LookupArtifact(key(2)); ok {
				t.Error("LookupArtifact against an unreachable backend reported a hit")
			}
		})
	})

	t.Run("RecordsDroppedSilently", func(t *testing.T) {
		s := open(t)
		timed(t, "Record", func() {
			s.Record(key(3), runner.StoredResult{Result: sampleResult()})
		})
		timed(t, "RecordArtifact", func() {
			s.RecordArtifact(key(4), []byte(`{"v":1}`))
		})
	})

	t.Run("FlushFailsLoudly", func(t *testing.T) {
		s := open(t)
		timed(t, "Flush", func() {
			if err := s.Flush(); err == nil {
				t.Error("Flush against an unreachable backend returned nil; durability cannot be promised")
			}
		})
	})

	t.Run("RunnerStillSimulates", func(t *testing.T) {
		s := open(t)
		cfg := sim.Default("gcc")
		cfg.Instructions = 1000
		want := sampleResult()
		r := runner.New(runner.Options{Store: s, RunSim: func(sim.Config) (sim.Result, error) {
			return want, nil
		}})
		var got sim.Result
		var err error
		timed(t, "Runner.Run", func() { got, err = r.Run(context.Background(), cfg) })
		if err != nil {
			t.Fatalf("Run with an unreachable store: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("degraded run mutated the result:\n got %+v\nwant %+v", got, want)
		}
		if st := r.Stats(); st.Runs != 1 || st.StoreHits != 0 {
			t.Errorf("stats = %v; want 1 run, 0 store hits", st)
		}
	})
}
