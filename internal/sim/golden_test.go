package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"resizecache/internal/core"
	"resizecache/internal/geometry"
)

var updateGolden = flag.Bool("update", false, "rewrite the sim golden fixtures from the current implementation")

// goldenConfigs is the fixture corpus: a small set of simulations chosen
// to exercise every arm of the per-access energy path — both engines,
// every organization, static and dynamic policies, delayed-precharge
// shared levels, deep hierarchies, no hierarchy, and the ablation
// switches. The fixtures pin Result bit-for-bit (floats round-trip
// exactly through encoding/json), so any change to *what* the simulator
// computes — as opposed to when — fails TestGoldenResults.
func goldenConfigs() map[string]Config {
	cfgs := map[string]Config{}

	base := Default("gcc")
	base.Instructions = 120_000
	cfgs["gcc-ooo-base"] = base

	sets := Default("m88ksim")
	sets.Instructions = 120_000
	sets.Engine = InOrder
	sets.DCache.Org = core.SelectiveSets
	sets.DCache.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: 3}
	cfgs["m88ksim-inorder-static-sets"] = sets

	ways := Default("su2cor")
	ways.Instructions = 150_000
	ways.DCache.Org = core.SelectiveWays
	ways.DCache.Policy = PolicySpec{Kind: PolicyDynamic,
		Interval: 16384, MissBound: 163, SizeBoundBytes: 4 << 10}
	cfgs["su2cor-ooo-dynamic-ways"] = ways

	hyb := Default("vpr")
	hyb.Instructions = 120_000
	hyb.DCache.Org = core.Hybrid
	hyb.DCache.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: 2}
	hyb.ICache.Org = core.Hybrid
	hyb.ICache.Policy = PolicySpec{Kind: PolicyDynamic,
		Interval: 16384, MissBound: 64, SizeBoundBytes: 8 << 10}
	cfgs["vpr-ooo-hybrid-both"] = hyb

	noL2 := Default("ammp")
	noL2.Instructions = 100_000
	noL2.Engine = InOrder
	noL2.Levels = nil
	noL2.DCache.Org = core.SelectiveSets
	noL2.DCache.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: 2}
	noL2.DCache.AblationFullPrecharge = true
	noL2.ICache.AblationFreeFlush = true
	cfgs["ammp-inorder-nol2-ablations"] = noL2

	deep := Default("compress")
	deep.Instructions = 120_000
	deep.Levels = []LevelSpec{
		{CacheSpec: CacheSpec{
			Geom: geometry.Geometry{SizeBytes: 512 << 10, Assoc: 4, BlockBytes: 64, SubarrayBytes: 4 << 10},
			Org:  core.SelectiveWays,
			Policy: PolicySpec{Kind: PolicyDynamic,
				Interval: 4096, MissBound: 40},
		}, WritebackEntries: 4},
		{CacheSpec: CacheSpec{
			Geom: geometry.Geometry{SizeBytes: 2 << 20, Assoc: 8, BlockBytes: 64, SubarrayBytes: 4 << 10},
			Org:  core.NonResizable,
		}, Precharge: PrechargeFull},
	}
	cfgs["compress-ooo-resizable-l2-l3"] = deep

	return cfgs
}

const goldenPath = "testdata/golden.json"

// TestGoldenResults locks the simulator's observable outcomes: every
// fixture config must reproduce its recorded Result exactly, including
// every energy figure to the last bit. Run `go test ./internal/sim
// -run Golden -update` to re-record after an intentional model change.
func TestGoldenResults(t *testing.T) {
	got := map[string]Result{}
	for name, cfg := range goldenConfigs() {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = res
	}
	gotJSON, err := json.MarshalIndent(got, "", "\t")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden fixtures rewritten: %s", goldenPath)
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading fixtures (run with -update to create): %v", err)
	}
	if string(want) == string(gotJSON) {
		return
	}

	// Diagnose per config and per field rather than dumping both blobs.
	var wantRes map[string]Result
	if err := json.Unmarshal(want, &wantRes); err != nil {
		t.Fatalf("fixtures unreadable (run with -update to recreate): %v", err)
	}
	for name, g := range got {
		w, ok := wantRes[name]
		if !ok {
			t.Errorf("%s: no fixture recorded (run with -update)", name)
			continue
		}
		diffResult(t, name, w, g)
	}
	for name := range wantRes {
		if _, ok := got[name]; !ok {
			t.Errorf("%s: fixture exists but config was removed", name)
		}
	}
	if !t.Failed() {
		t.Errorf("fixture bytes differ but decoded results match; re-run with -update to normalize encoding")
	}
}

// diffResult reports the first-level fields where two results diverge.
func diffResult(t *testing.T, name string, want, got Result) {
	t.Helper()
	check := func(field string, w, g any) {
		if fmt.Sprintf("%v", w) != fmt.Sprintf("%v", g) {
			t.Errorf("%s: %s diverged:\n\twant %v\n\tgot  %v", name, field, w, g)
		}
	}
	check("CPU.Cycles", want.CPU.Cycles, got.CPU.Cycles)
	check("CPU.Instructions", want.CPU.Instructions, got.CPU.Instructions)
	check("CPU.Activity", want.CPU.Activity, got.CPU.Activity)
	check("CPU.BranchAccuracy", want.CPU.BranchAccuracy, got.CPU.BranchAccuracy)
	check("Energy", want.Energy, got.Energy)
	check("EDP", want.EDP, got.EDP)
	check("DCache", want.DCache, got.DCache)
	check("ICache", want.ICache, got.ICache)
	check("Levels", want.Levels, got.Levels)
}
