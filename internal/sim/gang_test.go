package sim

import (
	"reflect"
	"strings"
	"testing"
)

// gangSiblings builds a gang around cfg: the config itself plus members
// that differ only in per-member state (cache geometry, hierarchy
// depth) — exactly what a sweep varies within one benchmark.
func gangSiblings(cfg Config) []Config {
	bigD := cfg
	bigD.DCache.Geom.SizeBytes *= 2
	noL2 := cfg
	noL2.Levels = nil
	return []Config{cfg, bigD, noL2}
}

// TestGangMatchesGolden: for every golden-fixture config, a gang of the
// config plus per-member variants returns Results bit-identical to solo
// Run — the golden fixtures are the oracle because TestGoldenResults
// pins Run itself.
func TestGangMatchesGolden(t *testing.T) {
	for name, cfg := range goldenConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			gang := gangSiblings(cfg)
			want := make([]Result, len(gang))
			for i, c := range gang {
				r, err := Run(c)
				if err != nil {
					t.Fatalf("solo member %d: %v", i, err)
				}
				want[i] = r
			}
			got, err := RunGang(gang)
			if err != nil {
				t.Fatal(err)
			}
			for i := range gang {
				if !reflect.DeepEqual(got[i], want[i]) {
					diffResult(t, name, want[i], got[i])
				}
			}
		})
	}
}

// TestGangSingleMember: a gang of one degenerates to Run exactly.
func TestGangSingleMember(t *testing.T) {
	cfg := Default("gcc")
	cfg.Instructions = 50_000
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunGang([]Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], want) {
		diffResult(t, "single", want, got[0])
	}
}

// TestGangEmpty: an empty gang is a no-op, not an error.
func TestGangEmpty(t *testing.T) {
	res, err := RunGang(nil)
	if err != nil || res != nil {
		t.Fatalf("empty gang: %v, %v", res, err)
	}
}

// TestGangChunked: a gang larger than the chunk size replays the stream
// through the tee and still matches solo runs member for member.
func TestGangChunked(t *testing.T) {
	if testing.Short() {
		t.Skip("chunked gang is long")
	}
	base := Default("gcc")
	base.Instructions = 20_000
	var gang []Config
	for len(gang) <= gangChunk {
		for _, kb := range []int{8, 16, 32, 64} {
			c := base
			c.DCache.Geom.SizeBytes = kb << 10
			gang = append(gang, c)
		}
	}
	got, err := RunGang(gang)
	if err != nil {
		t.Fatal(err)
	}
	// Members 0 and last straddle the chunk boundary.
	for _, i := range []int{0, gangChunk - 1, gangChunk, len(gang) - 1} {
		want, err := Run(gang[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			diffResult(t, "chunked", want, got[i])
		}
	}
}

// TestGangRejectsMixedFront: configs that differ in any front-end field
// must error (not silently desync); the error names the mismatch.
func TestGangRejectsMixedFront(t *testing.T) {
	base := Default("gcc")
	base.Instructions = 10_000

	mismatches := map[string]func(*Config){
		"benchmark":    func(c *Config) { c.Benchmark = "vpr" },
		"engine":       func(c *Config) { c.Engine = InOrder },
		"instructions": func(c *Config) { c.Instructions = 20_000 },
		"width":        func(c *Config) { c.CPU.Width = 2 },
		"rob":          func(c *Config) { c.CPU.ROBEntries = 32 },
	}
	for name, mutate := range mismatches {
		other := base
		mutate(&other)
		if _, err := RunGang([]Config{base, other}); err == nil {
			t.Errorf("%s mismatch accepted", name)
		} else if !strings.Contains(err.Error(), "front-end mismatch") {
			t.Errorf("%s mismatch: unexpected error %v", name, err)
		}
	}

	// Per-member differences must NOT be rejected.
	if _, err := RunGang(gangSiblings(base)); err != nil {
		t.Errorf("per-member variation rejected: %v", err)
	}
}

// TestGangRejectsInvalidMember: an invalid member (unknown benchmark,
// zero budget) fails the whole gang up front.
func TestGangRejectsInvalidMember(t *testing.T) {
	good := Default("gcc")
	good.Instructions = 10_000
	zero := good
	zero.Instructions = 0
	if _, err := RunGang([]Config{good, zero}); err == nil {
		t.Error("zero-budget member accepted")
	}
	if _, err := RunGang([]Config{{Benchmark: "no-such-benchmark", Instructions: 1}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestFrontKeyProjection: FrontKey is exactly the front-end projection —
// sensitive to every front field, insensitive to every per-member field.
func TestFrontKeyProjection(t *testing.T) {
	base := Default("gcc")
	k := base.FrontKey()

	front := map[string]func(*Config){
		"benchmark":    func(c *Config) { c.Benchmark = "vpr" },
		"instructions": func(c *Config) { c.Instructions++ },
		"engine":       func(c *Config) { c.Engine = InOrder },
		"width":        func(c *Config) { c.CPU.Width = 2 },
		"rob":          func(c *Config) { c.CPU.ROBEntries = 32 },
		"lsq":          func(c *Config) { c.CPU.LSQEntries = 16 },
		"decode":       func(c *Config) { c.CPU.DecodeLatency = 5 },
		"mispredict":   func(c *Config) { c.CPU.MispredictPenalty = 9 },
	}
	for name, mutate := range front {
		c := base
		mutate(&c)
		if c.FrontKey() == k {
			t.Errorf("FrontKey insensitive to front field %s", name)
		}
	}

	member := map[string]func(*Config){
		"dcache":  func(c *Config) { c.DCache.Geom.SizeBytes *= 2 },
		"levels":  func(c *Config) { c.Levels = nil },
		"mshr":    func(c *Config) { c.MSHREntries = 2 },
		"energy":  func(c *Config) { c.Energy.BitlinePJPerBit *= 2 },
		"core-pj": func(c *Config) { c.Core.ClockPJ *= 2 },
	}
	for name, mutate := range member {
		c := base
		mutate(&c)
		if c.FrontKey() != k {
			t.Errorf("FrontKey sensitive to per-member field %s", name)
		}
	}
}
