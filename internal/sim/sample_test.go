package sim

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// fidelitySpec is the schedule the fidelity assertions run: dense enough
// that the ~100-150K-instruction golden budgets still yield 3+ steady
// windows, with the skip mechanism exercised.
func fidelitySpec() SamplingSpec {
	return SamplingSpec{
		DetailedInstructions:    5_000,
		FastForwardInstructions: 10_000,
		SkipInstructions:        15_000,
	}
}

// mapStore is an in-memory CheckpointStore for tests (the real backends
// live in internal/runner, which depends on this package).
type mapStore struct{ m map[Key][]byte }

func newMapStore() *mapStore                            { return &mapStore{m: map[Key][]byte{}} }
func (s *mapStore) LookupArtifact(k Key) ([]byte, bool) { d, ok := s.m[k]; return d, ok }
func (s *mapStore) RecordArtifact(k Key, d []byte) {
	s.m[k] = append([]byte(nil), d...)
}

func resultJSON(t *testing.T, r Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSampledFidelityWithinErrorBars runs every golden-fixture config
// sampled and fully detailed, and requires each sampled estimate to land
// within its own declared error bars: three standard errors plus a 2%
// systematic allowance for the stratified estimator's residual (the
// cold-start transient that extends past the first window; see
// windowAccum). Everything here is deterministic, so these are exact
// reproducible inequalities, not flaky statistics.
func TestSampledFidelityWithinErrorBars(t *testing.T) {
	for name, cfg := range goldenConfigs() {
		full, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := cfg
		s.Sampling = fidelitySpec()
		sam, err := Run(s)
		if err != nil {
			t.Fatalf("%s sampled: %v", name, err)
		}
		rep := sam.Sample
		if rep == nil {
			t.Fatalf("%s: sampled run has no SampleReport", name)
		}
		if rep.Windows < 3 {
			t.Fatalf("%s: only %d windows; fidelity spec should give 3+", name, rep.Windows)
		}
		if rep.TotalInstructions != cfg.Instructions {
			t.Errorf("%s: estimates represent %d instructions, budget is %d", name, rep.TotalInstructions, cfg.Instructions)
		}
		if sam.CPU.Instructions != cfg.Instructions {
			t.Errorf("%s: CPU.Instructions = %d, want full budget %d", name, sam.CPU.Instructions, cfg.Instructions)
		}

		const biasAllowance = 0.02
		check := func(metric string, got, want, relSE float64) {
			if want == 0 {
				t.Fatalf("%s: zero full-run %s", name, metric)
			}
			err := math.Abs(got-want) / want
			tol := 3*relSE + biasAllowance
			if err > tol {
				t.Errorf("%s: %s off by %.2f%%, outside declared bars (3×%.4f + %.0f%% = %.2f%%)",
					name, metric, 100*err, relSE, 100*biasAllowance, 100*tol)
			}
		}
		check("cycles", float64(sam.CPU.Cycles), float64(full.CPU.Cycles), rep.CPIRelStdErr)
		check("energy", sam.Energy.TotalJ(), full.Energy.TotalJ(), rep.EPIRelStdErr)
		check("EDP", sam.EDP.Product(), full.EDP.Product(), rep.EDPRelStdErr)
	}
}

// TestSampledRunDeterministic: the same sampled config twice is
// bit-identical — skips, window boundaries, and the RNG jumps are all
// deterministic.
func TestSampledRunDeterministic(t *testing.T) {
	cfg := goldenConfigs()["gcc-ooo-base"]
	cfg.Sampling = DefaultSampling()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, a) != resultJSON(t, b) {
		t.Fatal("two identical sampled runs differ")
	}
}

// TestCheckpointResumeBitIdentical is the tentpole's core guarantee: a
// run that restores the warmup prefix from a checkpoint produces exactly
// the Result a cold run produces — the checkpoint carries the complete
// front-end warm state, and caches start cold at the first window either
// way.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	cfg := goldenConfigs()["gcc-ooo-base"]
	cfg.Sampling = fidelitySpec()
	cfg.Sampling.WarmupInstructions = 10_000

	noStore, ws, err := RunWithCheckpoints(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws != (WarmupStats{}) {
		t.Errorf("nil store produced checkpoint traffic: %+v", ws)
	}

	st := newMapStore()
	cold, wsCold, err := RunWithCheckpoints(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if !wsCold.CheckpointSaved || wsCold.CheckpointHit {
		t.Errorf("cold run with empty store: stats %+v, want saved-not-hit", wsCold)
	}
	warm, wsWarm, err := RunWithCheckpoints(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if !wsWarm.CheckpointHit || wsWarm.CheckpointSaved {
		t.Errorf("second run with warm store: stats %+v, want hit-not-saved", wsWarm)
	}

	coldJSON := resultJSON(t, cold)
	if got := resultJSON(t, warm); got != coldJSON {
		t.Error("checkpoint-resumed run differs from cold run")
	}
	if got := resultJSON(t, noStore); got != coldJSON {
		t.Error("store-less run differs from cold run with store")
	}
}

// TestWarmupCheckpointSharedAcrossGeometries: the checkpoint key is the
// front-end fingerprint, so configs that differ only in their memory
// system share one warmup checkpoint.
func TestWarmupCheckpointSharedAcrossGeometries(t *testing.T) {
	a := goldenConfigs()["gcc-ooo-base"]
	a.Sampling = fidelitySpec()
	a.Sampling.WarmupInstructions = 10_000
	b := a
	b.DCache.Geom.SizeBytes = a.DCache.Geom.SizeBytes / 2

	if a.Key() == b.Key() {
		t.Fatal("test configs should have distinct Keys")
	}
	if a.WarmKey() != b.WarmKey() {
		t.Fatal("configs differing only in cache geometry should share a WarmKey")
	}

	st := newMapStore()
	if _, ws, err := RunWithCheckpoints(a, st); err != nil || !ws.CheckpointSaved {
		t.Fatalf("first config: err=%v stats=%+v, want a save", err, ws)
	}
	fromCheckpoint, ws, err := RunWithCheckpoints(b, st)
	if err != nil {
		t.Fatal(err)
	}
	if !ws.CheckpointHit {
		t.Errorf("second geometry should hit the shared checkpoint: %+v", ws)
	}
	coldB, _, err := RunWithCheckpoints(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, fromCheckpoint) != resultJSON(t, coldB) {
		t.Error("checkpoint shared across geometries changed the result")
	}
}

// TestCorruptCheckpointFallsBack: undecodable or version-mismatched
// stored payloads must never fail a run — they fall back to a cold
// warmup and are overwritten.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	cfg := goldenConfigs()["gcc-ooo-base"]
	cfg.Sampling = fidelitySpec()
	cfg.Sampling.WarmupInstructions = 10_000
	cold, _, err := RunWithCheckpoints(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldJSON := resultJSON(t, cold)

	for name, payload := range map[string][]byte{
		"garbage":       []byte("{not json"),
		"wrong-version": []byte(`{"version":99}`),
	} {
		st := newMapStore()
		st.RecordArtifact(cfg.WarmKey(), payload)
		res, ws, err := RunWithCheckpoints(cfg, st)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ws.CheckpointHit {
			t.Errorf("%s: corrupt checkpoint reported as hit", name)
		}
		if !ws.CheckpointSaved {
			t.Errorf("%s: corrupt checkpoint not overwritten", name)
		}
		if resultJSON(t, res) != coldJSON {
			t.Errorf("%s: result differs from cold run", name)
		}
	}
}

// TestSampledGangMatchesSolo: a sampled gang must stay bit-identical to
// its members run solo, exactly like the detailed gang paths.
func TestSampledGangMatchesSolo(t *testing.T) {
	base := goldenConfigs()["gcc-ooo-base"]
	base.Sampling = fidelitySpec()
	base.Sampling.WarmupInstructions = 10_000
	small := base
	small.DCache.Geom.SizeBytes = base.DCache.Geom.SizeBytes / 2
	ways := base
	ways.DCache.Geom.Assoc = 2
	cfgs := []Config{base, small, ways}

	gang, ws, err := RunGangWithCheckpoints(cfgs, newMapStore())
	if err != nil {
		t.Fatal(err)
	}
	if !ws.CheckpointSaved {
		t.Errorf("sampled gang with empty store should save the warmup: %+v", ws)
	}
	for i, cfg := range cfgs {
		solo, err := Run(cfg)
		if err != nil {
			t.Fatalf("member %d solo: %v", i, err)
		}
		if resultJSON(t, gang[i]) != resultJSON(t, solo) {
			t.Errorf("gang member %d differs from solo run", i)
		}
	}
}

// TestSamplingValidation: partial specs and degenerate warmups are
// errors, not silent fallbacks.
func TestSamplingValidation(t *testing.T) {
	for name, tc := range map[string]struct {
		spec SamplingSpec
		want string
	}{
		"detailed-only":    {SamplingSpec{DetailedInstructions: 5_000}, "partial sampling spec"},
		"fastforward-only": {SamplingSpec{FastForwardInstructions: 5_000}, "partial sampling spec"},
		"skip-only":        {SamplingSpec{SkipInstructions: 5_000}, "partial sampling spec"},
		"warmup-only":      {SamplingSpec{WarmupInstructions: 5_000}, "partial sampling spec"},
		"warmup-eats-budget": {SamplingSpec{
			WarmupInstructions: 200_000, DetailedInstructions: 5_000, FastForwardInstructions: 10_000,
		}, "consumes the whole"},
	} {
		cfg := Default("gcc")
		cfg.Instructions = 120_000
		cfg.Sampling = tc.spec
		_, err := Run(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v, want %q", name, err, tc.want)
		}
	}
}

// TestDetailedRunHasNoSampleReport: fully detailed results must not grow
// a Sample field — the golden fixtures pin their JSON byte-for-byte.
func TestDetailedRunHasNoSampleReport(t *testing.T) {
	res, err := Run(goldenConfigs()["gcc-ooo-base"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Sample != nil {
		t.Fatalf("detailed run carries SampleReport %+v", res.Sample)
	}
	if s := resultJSON(t, res); strings.Contains(s, "Sample") {
		t.Error("detailed Result JSON mentions Sample; fixtures would change")
	}
}
