package sim

import (
	"crypto/sha256"
	"testing"

	"resizecache/internal/analysis/keycomplete"
	"resizecache/internal/core"
	"resizecache/internal/geometry"
)

// TestKeyVersionPinnedToFieldSet derives its assertion from the
// keycomplete analyzer instead of hand-maintaining a parallel list of
// fingerprinted fields: the analyzer re-extracts this package's
// keyVersion and field-set hash from source and both must match the
// pin table embedded in the analyzer
// (internal/analysis/keycomplete/testdata/fieldhash.txt). Adding a
// Config field without routing it into Key() fails keycomplete;
// changing the fingerprinted shape without bumping keyVersion and
// re-pinning fails here and in simlint identically.
func TestKeyVersionPinnedToFieldSet(t *testing.T) {
	version, hash, err := keycomplete.RepoFieldSet()
	if err != nil {
		t.Fatalf("extracting field set: %v", err)
	}
	if version != keyVersion {
		t.Fatalf("analyzer saw keyVersion %d, package declares %d", version, keyVersion)
	}
	pinned, ok := keycomplete.Pin("resizecache/internal/sim", version)
	if !ok {
		t.Fatalf("keyVersion %d has no pin: add %q to internal/analysis/keycomplete/testdata/fieldhash.txt",
			version, hash)
	}
	if pinned != hash {
		t.Fatalf("fingerprinted field set (hash %s) drifted from the keyVersion-%d pin %s: bump keyVersion and pin the new hash",
			hash, version, pinned)
	}
}

// mutateL2 clones the hierarchy (the Levels backing array is shared
// between config copies) and applies fn to the outermost level.
func mutateL2(c *Config, fn func(*LevelSpec)) {
	c.Levels = append([]LevelSpec(nil), c.Hierarchy()...)
	fn(&c.Levels[0])
}

func TestKeyStableAcrossCalls(t *testing.T) {
	a := Default("gcc").Key()
	b := Default("gcc").Key()
	if a != b {
		t.Fatal("identical configs produced different keys")
	}
	if a.String() == "" || len(a.String()) != 64 {
		t.Fatalf("key hex %q not 64 chars", a.String())
	}
}

// TestKeyDistinguishesConfigs mutates every semantically meaningful
// field group and checks each mutation moves the fingerprint.
func TestKeyDistinguishesConfigs(t *testing.T) {
	base := Default("gcc")
	mutations := map[string]func(*Config){
		"benchmark":     func(c *Config) { c.Benchmark = "vpr" },
		"instructions":  func(c *Config) { c.Instructions++ },
		"engine":        func(c *Config) { c.Engine = InOrder },
		"cpu width":     func(c *Config) { c.CPU.Width++ },
		"rob":           func(c *Config) { c.CPU.ROBEntries++ },
		"dcache geom":   func(c *Config) { c.DCache.Geom.Assoc *= 2 },
		"dcache org":    func(c *Config) { c.DCache.Org = core.SelectiveSets },
		"icache org":    func(c *Config) { c.ICache.Org = core.SelectiveWays },
		"dcache policy": func(c *Config) { c.DCache.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: 1} },
		"static index": func(c *Config) {
			c.DCache.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: 2}
		},
		"dynamic params": func(c *Config) {
			c.DCache.Policy = PolicySpec{Kind: PolicyDynamic, Interval: 4096, MissBound: 64}
		},
		"ablation precharge": func(c *Config) { c.DCache.AblationFullPrecharge = true },
		"ablation flush":     func(c *Config) { c.ICache.AblationFreeFlush = true },
		"l2 geom":            func(c *Config) { mutateL2(c, func(l *LevelSpec) { l.Geom.SizeBytes *= 2 }) },
		"l2 assoc":           func(c *Config) { mutateL2(c, func(l *LevelSpec) { l.Geom.Assoc *= 2 }) },
		"l2 org":             func(c *Config) { mutateL2(c, func(l *LevelSpec) { l.Org = core.SelectiveWays }) },
		"l2 policy": func(c *Config) {
			mutateL2(c, func(l *LevelSpec) {
				l.Org = core.SelectiveWays
				l.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: 1}
			})
		},
		"l2 precharge": func(c *Config) { mutateL2(c, func(l *LevelSpec) { l.Precharge = PrechargeFull }) },
		"l2 mshrs":     func(c *Config) { mutateL2(c, func(l *LevelSpec) { l.MSHREntries = 4 }) },
		"l2 writeback": func(c *Config) { mutateL2(c, func(l *LevelSpec) { l.WritebackEntries = 4 }) },
		"l2 ablation":  func(c *Config) { mutateL2(c, func(l *LevelSpec) { l.AblationFreeFlush = true }) },
		"added l3": func(c *Config) {
			c.Levels = append(append([]LevelSpec(nil), c.Levels...), LevelSpec{CacheSpec: CacheSpec{
				Geom: geometry.Geometry{SizeBytes: 2 << 20, Assoc: 8, BlockBytes: 64, SubarrayBytes: 4 << 10},
				Org:  core.NonResizable,
			}})
		},
		"no shared levels": func(c *Config) { c.Levels = nil },
		"mshrs":            func(c *Config) { c.MSHREntries++ },
		"writeback":        func(c *Config) { c.WritebackEntries++ },
		"energy model":     func(c *Config) { c.Energy.PrechargePJPerBit *= 2 },
		"core energies":    func(c *Config) { c.Core.ClockPJ *= 2 },
	}
	baseKey := base.Key()
	seen := map[Key]string{baseKey: "base"}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		k := cfg.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyHierarchySpellings: the deprecated L2Geom and its equivalent
// one-level Levels spec describe the same simulation and must share a
// fingerprint; materially different hierarchies must not.
func TestKeyHierarchySpellings(t *testing.T) {
	legacy := Default("gcc")
	l2 := legacy.Hierarchy()[0].Geom
	legacy.Levels = nil
	legacy.L2Geom = l2

	modern := Default("gcc")
	if legacy.Key() != modern.Key() {
		t.Error("L2Geom spelling and its Levels equivalent fingerprint differently")
	}

	// A zero-value LevelSpec knob set explicitly is still the same level.
	explicit := Default("gcc")
	explicit.Levels = []LevelSpec{{CacheSpec: CacheSpec{Geom: l2, Org: core.NonResizable},
		Precharge: PrechargeDelayed}}
	if explicit.Key() != modern.Key() {
		t.Error("explicit delayed precharge perturbed the fingerprint")
	}

	deep := Default("gcc")
	deep.Levels = append(append([]LevelSpec(nil), deep.Levels...), LevelSpec{CacheSpec: CacheSpec{
		Geom: geometry.Geometry{SizeBytes: 2 << 20, Assoc: 8, BlockBytes: 64, SubarrayBytes: 4 << 10},
		Org:  core.NonResizable,
	}})
	if deep.Key() == modern.Key() {
		t.Error("adding an L3 did not move the fingerprint")
	}

	// The invalid both-set conflict (Run rejects it) must not alias the
	// valid Levels-only config: a warm memo/store would otherwise serve
	// a result where the cold path errors.
	conflict := Default("gcc")
	conflict.L2Geom = conflict.Hierarchy()[0].Geom
	if _, err := Run(conflict); err == nil {
		t.Error("both-set config accepted by Run")
	}
	if conflict.Key() == modern.Key() {
		t.Error("both-set conflict aliases the valid config's fingerprint")
	}
}

// TestKeyVersionNeverAliasesRetired re-encodes the canonical base
// config with both retired layouts — version 1 (flat L2 geometry) and
// version 2 (hierarchy-as-data but no sampling fields) — and checks
// neither fingerprint collides with the current key: a persisted store
// from an older version can only miss under current keys, never serve a
// stale result for a config it does not describe.
func TestKeyVersionNeverAliasesRetired(t *testing.T) {
	if keyVersion != 3 {
		t.Fatalf("keyVersion = %d, want 3 (update this test when bumping)", keyVersion)
	}
	c := Default("gcc").Canonical()
	l2 := c.Hierarchy()[0].Geom

	// Shared tails of the retired encodings.
	writeFront := func(w keyWriter) {
		w.str(c.Benchmark)
		w.u64(c.Instructions)
		w.u64(uint64(c.Engine))
		w.i(c.CPU.Width)
		w.i(c.CPU.ROBEntries)
		w.i(c.CPU.LSQEntries)
		w.u64(c.CPU.DecodeLatency)
		w.u64(c.CPU.MispredictPenalty)
		w.cacheSpec(c.DCache)
		w.cacheSpec(c.ICache)
	}
	writeEnergies := func(w keyWriter) {
		w.f64(c.Energy.PrechargePJPerBit)
		w.f64(c.Energy.BitlinePJPerBit)
		w.f64(c.Energy.WordlinePJPerBit)
		w.f64(c.Energy.SensePJPerBit)
		w.f64(c.Energy.DecodePJPerSubarray)
		w.f64(c.Energy.ComparePJPerBit)
		w.f64(c.Energy.OutputPJPerBit)
		w.f64(c.Energy.ClockPJPerSubarray)
		w.f64(c.Energy.LeakagePJPerBytePerCycle)
		w.f64(c.Core.DecodePJ)
		w.f64(c.Core.ROBWritePJ)
		w.f64(c.Core.LSQWritePJ)
		w.f64(c.Core.RegReadPJ)
		w.f64(c.Core.RegWritePJ)
		w.f64(c.Core.IntALUPJ)
		w.f64(c.Core.FPALUPJ)
		w.f64(c.Core.BpredPJ)
		w.f64(c.Core.BTBPJ)
		w.f64(c.Core.RASPJ)
		w.f64(c.Core.ResultBusPJ)
		w.f64(c.Core.ClockPJ)
	}

	h1 := sha256.New()
	w1 := keyWriter{h: h1}
	w1.u64(1) // keyVersion 1
	writeFront(w1)
	w1.geometry(l2.SizeBytes, l2.Assoc, l2.BlockBytes, l2.SubarrayBytes) // v1: bare L2 geometry
	w1.i(c.MSHREntries)
	w1.i(c.WritebackEntries)
	writeEnergies(w1)
	var v1 Key
	h1.Sum(v1[:0])

	h2 := sha256.New()
	w2 := keyWriter{h: h2}
	w2.u64(2) // keyVersion 2
	writeFront(w2)
	w2.i(len(c.Levels)) // v2: hierarchy as data, no sampling fields
	for _, l := range c.Levels {
		w2.cacheSpec(l.CacheSpec)
		w2.u64(uint64(l.Precharge))
		w2.i(l.MSHREntries)
		w2.i(l.WritebackEntries)
	}
	w2.geometry(c.L2Geom.SizeBytes, c.L2Geom.Assoc, c.L2Geom.BlockBytes, c.L2Geom.SubarrayBytes)
	w2.i(c.MSHREntries)
	w2.i(c.WritebackEntries)
	writeEnergies(w2)
	var v2 Key
	h2.Sum(v2[:0])

	cur := Default("gcc").Key()
	if v1 == cur {
		t.Fatal("current key aliases the v1 encoding of the same config")
	}
	if v2 == cur {
		t.Fatal("current key aliases the v2 encoding of the same config")
	}
}

// TestKeyBuilderStability: identical field sequences fingerprint
// identically, and every perturbation — value, order, field boundary,
// domain — moves the key. The artifact cache depends on both halves:
// stability for hits, sensitivity against collisions.
func TestKeyBuilderStability(t *testing.T) {
	mk := func() Key {
		return NewKeyBuilder("d").Str("app").Int(4).U64(9).RawKey(Default("gcc").Key()).Sum()
	}
	if mk() != mk() {
		t.Fatal("identical builder sequences produced different keys")
	}
	variants := map[string]Key{
		"base":           mk(),
		"domain":         NewKeyBuilder("e").Str("app").Int(4).U64(9).RawKey(Default("gcc").Key()).Sum(),
		"str value":      NewKeyBuilder("d").Str("app2").Int(4).U64(9).RawKey(Default("gcc").Key()).Sum(),
		"int value":      NewKeyBuilder("d").Str("app").Int(5).U64(9).RawKey(Default("gcc").Key()).Sum(),
		"field order":    NewKeyBuilder("d").Int(4).Str("app").U64(9).RawKey(Default("gcc").Key()).Sum(),
		"raw key":        NewKeyBuilder("d").Str("app").Int(4).U64(9).RawKey(Default("vpr").Key()).Sum(),
		"dropped field":  NewKeyBuilder("d").Str("app").Int(4).RawKey(Default("gcc").Key()).Sum(),
		"no raw key":     NewKeyBuilder("d").Str("app").Int(4).U64(9).Sum(),
		"empty sequence": NewKeyBuilder("d").Sum(),
	}
	seen := map[Key]string{}
	for name, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyBuilderNoAliasing: adjacent string fields must not alias under
// re-chunking (the classic "ab"+"c" vs "a"+"bc" hash mistake).
func TestKeyBuilderNoAliasing(t *testing.T) {
	a := NewKeyBuilder("d").Str("ab").Str("c").Sum()
	b := NewKeyBuilder("d").Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal("string fields alias across boundaries")
	}
}

// TestKeyCanonicalization verifies that fields the configured policy
// kind never reads do not perturb the fingerprint.
func TestKeyCanonicalization(t *testing.T) {
	mk := func(p PolicySpec) Config {
		c := Default("gcc")
		c.DCache.Org = core.SelectiveSets
		c.DCache.Policy = p
		return c
	}
	// A static policy ignores the dynamic controller's knobs.
	a := mk(PolicySpec{Kind: PolicyStatic, StaticIndex: 1})
	b := mk(PolicySpec{Kind: PolicyStatic, StaticIndex: 1, Interval: 4096, MissBound: 99})
	if a.Key() != b.Key() {
		t.Error("static policy key depends on dynamic-only fields")
	}
	// A dynamic policy ignores the static index.
	c := mk(PolicySpec{Kind: PolicyDynamic, Interval: 4096, MissBound: 64})
	d := mk(PolicySpec{Kind: PolicyDynamic, Interval: 4096, MissBound: 64, StaticIndex: 3})
	if c.Key() != d.Key() {
		t.Error("dynamic policy key depends on static index")
	}
	// No policy ignores everything.
	e := mk(PolicySpec{})
	f := mk(PolicySpec{StaticIndex: 2, Interval: 1024})
	if e.Key() != f.Key() {
		t.Error("nil policy key depends on policy parameters")
	}
	// The in-order engine forces a blocking d-cache: MSHRs are inert.
	g := Default("gcc")
	g.Engine = InOrder
	h := g
	h.MSHREntries = 32
	if g.Key() != h.Key() {
		t.Error("in-order key depends on d-cache MSHR entries")
	}
	// ... but they are meaningful out of order.
	i := Default("gcc")
	j := i
	j.MSHREntries = 32
	if i.Key() == j.Key() {
		t.Error("out-of-order key ignores d-cache MSHR entries")
	}
}

// TestKeyCanonicalizationPerLevel: the policy-knob zeroing applies at
// every level of the hierarchy, not just the L1s.
func TestKeyCanonicalizationPerLevel(t *testing.T) {
	mk := func(p PolicySpec) Config {
		c := Default("gcc")
		mutateL2(&c, func(l *LevelSpec) {
			l.Org = core.SelectiveWays
			l.Policy = p
		})
		return c
	}
	// A static L2 policy ignores the dynamic controller's knobs.
	a := mk(PolicySpec{Kind: PolicyStatic, StaticIndex: 1})
	b := mk(PolicySpec{Kind: PolicyStatic, StaticIndex: 1, Interval: 4096, MissBound: 99})
	if a.Key() != b.Key() {
		t.Error("static L2 policy key depends on dynamic-only fields")
	}
	// A dynamic L2 policy ignores the static index.
	c := mk(PolicySpec{Kind: PolicyDynamic, Interval: 4096, MissBound: 64})
	d := mk(PolicySpec{Kind: PolicyDynamic, Interval: 4096, MissBound: 64, StaticIndex: 3})
	if c.Key() != d.Key() {
		t.Error("dynamic L2 policy key depends on static index")
	}
	// No policy ignores every policy parameter.
	e := mk(PolicySpec{StaticIndex: 2, Interval: 1024})
	f := mk(PolicySpec{})
	if e.Key() != f.Key() {
		t.Error("nil L2 policy key depends on policy parameters")
	}
	// Canonical must not mutate the caller's Levels in place.
	orig := Default("gcc")
	mutateL2(&orig, func(l *LevelSpec) {
		l.Org = core.SelectiveWays
		l.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: 1, Interval: 4096}
	})
	_ = orig.Canonical()
	if orig.Levels[0].Policy.Interval != 4096 {
		t.Error("Canonical mutated the caller's level specs")
	}
}
