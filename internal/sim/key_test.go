package sim

import (
	"testing"

	"resizecache/internal/core"
)

func TestKeyStableAcrossCalls(t *testing.T) {
	a := Default("gcc").Key()
	b := Default("gcc").Key()
	if a != b {
		t.Fatal("identical configs produced different keys")
	}
	if a.String() == "" || len(a.String()) != 64 {
		t.Fatalf("key hex %q not 64 chars", a.String())
	}
}

// TestKeyDistinguishesConfigs mutates every semantically meaningful
// field group and checks each mutation moves the fingerprint.
func TestKeyDistinguishesConfigs(t *testing.T) {
	base := Default("gcc")
	mutations := map[string]func(*Config){
		"benchmark":     func(c *Config) { c.Benchmark = "vpr" },
		"instructions":  func(c *Config) { c.Instructions++ },
		"engine":        func(c *Config) { c.Engine = InOrder },
		"cpu width":     func(c *Config) { c.CPU.Width++ },
		"rob":           func(c *Config) { c.CPU.ROBEntries++ },
		"dcache geom":   func(c *Config) { c.DCache.Geom.Assoc *= 2 },
		"dcache org":    func(c *Config) { c.DCache.Org = core.SelectiveSets },
		"icache org":    func(c *Config) { c.ICache.Org = core.SelectiveWays },
		"dcache policy": func(c *Config) { c.DCache.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: 1} },
		"static index": func(c *Config) {
			c.DCache.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: 2}
		},
		"dynamic params": func(c *Config) {
			c.DCache.Policy = PolicySpec{Kind: PolicyDynamic, Interval: 4096, MissBound: 64}
		},
		"ablation precharge": func(c *Config) { c.DCache.AblationFullPrecharge = true },
		"ablation flush":     func(c *Config) { c.ICache.AblationFreeFlush = true },
		"l2 geom":            func(c *Config) { c.L2Geom.SizeBytes *= 2 },
		"mshrs":              func(c *Config) { c.MSHREntries++ },
		"writeback":          func(c *Config) { c.WritebackEntries++ },
		"energy model":       func(c *Config) { c.Energy.PrechargePJPerBit *= 2 },
		"core energies":      func(c *Config) { c.Core.ClockPJ *= 2 },
	}
	baseKey := base.Key()
	seen := map[Key]string{baseKey: "base"}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		k := cfg.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyBuilderStability: identical field sequences fingerprint
// identically, and every perturbation — value, order, field boundary,
// domain — moves the key. The artifact cache depends on both halves:
// stability for hits, sensitivity against collisions.
func TestKeyBuilderStability(t *testing.T) {
	mk := func() Key {
		return NewKeyBuilder("d").Str("app").Int(4).U64(9).RawKey(Default("gcc").Key()).Sum()
	}
	if mk() != mk() {
		t.Fatal("identical builder sequences produced different keys")
	}
	variants := map[string]Key{
		"base":           mk(),
		"domain":         NewKeyBuilder("e").Str("app").Int(4).U64(9).RawKey(Default("gcc").Key()).Sum(),
		"str value":      NewKeyBuilder("d").Str("app2").Int(4).U64(9).RawKey(Default("gcc").Key()).Sum(),
		"int value":      NewKeyBuilder("d").Str("app").Int(5).U64(9).RawKey(Default("gcc").Key()).Sum(),
		"field order":    NewKeyBuilder("d").Int(4).Str("app").U64(9).RawKey(Default("gcc").Key()).Sum(),
		"raw key":        NewKeyBuilder("d").Str("app").Int(4).U64(9).RawKey(Default("vpr").Key()).Sum(),
		"dropped field":  NewKeyBuilder("d").Str("app").Int(4).RawKey(Default("gcc").Key()).Sum(),
		"no raw key":     NewKeyBuilder("d").Str("app").Int(4).U64(9).Sum(),
		"empty sequence": NewKeyBuilder("d").Sum(),
	}
	seen := map[Key]string{}
	for name, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyBuilderNoAliasing: adjacent string fields must not alias under
// re-chunking (the classic "ab"+"c" vs "a"+"bc" hash mistake).
func TestKeyBuilderNoAliasing(t *testing.T) {
	a := NewKeyBuilder("d").Str("ab").Str("c").Sum()
	b := NewKeyBuilder("d").Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal("string fields alias across boundaries")
	}
}

// TestKeyCanonicalization verifies that fields the configured policy
// kind never reads do not perturb the fingerprint.
func TestKeyCanonicalization(t *testing.T) {
	mk := func(p PolicySpec) Config {
		c := Default("gcc")
		c.DCache.Org = core.SelectiveSets
		c.DCache.Policy = p
		return c
	}
	// A static policy ignores the dynamic controller's knobs.
	a := mk(PolicySpec{Kind: PolicyStatic, StaticIndex: 1})
	b := mk(PolicySpec{Kind: PolicyStatic, StaticIndex: 1, Interval: 4096, MissBound: 99})
	if a.Key() != b.Key() {
		t.Error("static policy key depends on dynamic-only fields")
	}
	// A dynamic policy ignores the static index.
	c := mk(PolicySpec{Kind: PolicyDynamic, Interval: 4096, MissBound: 64})
	d := mk(PolicySpec{Kind: PolicyDynamic, Interval: 4096, MissBound: 64, StaticIndex: 3})
	if c.Key() != d.Key() {
		t.Error("dynamic policy key depends on static index")
	}
	// No policy ignores everything.
	e := mk(PolicySpec{})
	f := mk(PolicySpec{StaticIndex: 2, Interval: 1024})
	if e.Key() != f.Key() {
		t.Error("nil policy key depends on policy parameters")
	}
	// The in-order engine forces a blocking d-cache: MSHRs are inert.
	g := Default("gcc")
	g.Engine = InOrder
	h := g
	h.MSHREntries = 32
	if g.Key() != h.Key() {
		t.Error("in-order key depends on d-cache MSHR entries")
	}
	// ... but they are meaningful out of order.
	i := Default("gcc")
	j := i
	j.MSHREntries = 32
	if i.Key() == j.Key() {
		t.Error("out-of-order key ignores d-cache MSHR entries")
	}
}
