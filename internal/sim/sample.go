package sim

import (
	"encoding/json"
	"fmt"
	"math"

	"resizecache/internal/cpu"
	"resizecache/internal/stats"
	"resizecache/internal/workload"
)

// Interval-sampled execution (SMARTS-style): instead of simulating every
// instruction through the timing and energy models, a sampled run
// alternates short *detailed* windows (full timing + energy, via the
// engines' RunWindow) with long *fast-forward* windows that advance only
// the architectural warm state — the workload stream, the branch
// predictor/BTB/RAS, and the cache tag arrays (cache.Level.Warm) — with
// no timing arithmetic and no energy accounting. Detailed-window
// measurements are then scaled to whole-run estimates, with per-metric
// standard-error bars computed over the per-window samples
// (Result.Sample). The cycle and energy estimates are stratified: the
// first detailed window — which measures the one-off cold-cache
// transient — counts once, and only the steady-state windows
// extrapolate (see windowAccum).
//
// An optional warmup prefix advances only the front-end (not the caches),
// so its end state is a pure function of the config's front-end
// projection; that is what makes warmup checkpoints shareable across
// every configuration with the same FrontKey, and what keeps
// checkpoint-resumed runs bit-identical to cold runs: the caches start
// cold at the first detailed window either way.

// SamplingSpec configures interval-sampled execution. The zero value
// disables sampling (every instruction runs in detail); an enabled spec
// sets both window lengths. A partial spec — exactly one window length,
// or only a warmup — is rejected by Run.
type SamplingSpec struct {
	// WarmupInstructions is the functional prefix executed before the
	// first detailed window: predictors train, caches stay cold. Its end
	// state is checkpointed under WarmKey when a CheckpointStore is
	// provided.
	WarmupInstructions uint64
	// DetailedInstructions is the length of each measured window.
	DetailedInstructions uint64
	// FastForwardInstructions is the length of the functional warming
	// window that immediately precedes each measured window after the
	// first.
	FastForwardInstructions uint64
	// SkipInstructions, when non-zero, widens the gap between windows:
	// after each measured window the stream position jumps by this many
	// instructions (workload.Generator.Skip — O(1) per gap, nothing is
	// generated or warmed) before the fast-forward warming runs. Skipping
	// trades a little warm-state staleness — repaired by the following
	// fast-forward window — for speedup that scales with the gap, where
	// pure fast-forwarding is bounded by event-generation cost.
	SkipInstructions uint64
}

// Enabled reports whether the spec describes a sampled run.
func (s SamplingSpec) Enabled() bool {
	return s.DetailedInstructions > 0 && s.FastForwardInstructions > 0
}

// DefaultSampling is the recommended schedule for benchmark-scale runs
// (hundreds of thousands of instructions and up): 5K-instruction
// measured windows each preceded by 10K instructions of functional
// warming, a 45K-instruction skip per period, and a 10K-instruction
// checkpointable warmup prefix. On the suite's workloads this lands
// whole-run EDP estimates within a few percent of fully detailed runs
// at a 3-5x speedup (BenchmarkSimSampled tracks the ratio). Runs far
// below ~200K instructions should shrink or zero SkipInstructions
// instead, or too few windows remain for useful error bars.
func DefaultSampling() SamplingSpec {
	return SamplingSpec{
		WarmupInstructions:      10_000,
		DetailedInstructions:    5_000,
		FastForwardInstructions: 10_000,
		SkipInstructions:        45_000,
	}
}

// SampleReport describes how a sampled Result was measured. Relative
// standard errors are the standard error of the per-window mean divided
// by the mean — multiply by a z-score for a confidence interval on any
// quantity extrapolated from the corresponding per-window metric.
type SampleReport struct {
	// Windows is the number of detailed windows measured.
	Windows int
	// WarmupInstructions is what the warmup prefix consumed.
	WarmupInstructions uint64
	// DetailedInstructions is the total measured in detail.
	DetailedInstructions uint64
	// TotalInstructions is the whole run the estimates represent
	// (warmup + detailed + fast-forwarded).
	TotalInstructions uint64
	// Scale is TotalInstructions / DetailedInstructions — the factor
	// applied to instruction-proportional event counters. Cycles and
	// energy use the stratified first-window estimator instead (see the
	// package comment), so their effective factors are lower when the
	// first window is cold.
	Scale float64
	// CPIRelStdErr bounds time estimates (cycles), EPIRelStdErr energy
	// estimates, and EDPRelStdErr their product, all relative to the
	// estimate; they are computed over the steady-state windows (2..n).
	// Zero when fewer than three windows were measured — under two
	// steady windows there is no variance information.
	CPIRelStdErr float64
	EPIRelStdErr float64
	EDPRelStdErr float64
}

// WarmupStats reports, out of band of the Result (so memoized results
// stay bit-identical regardless of checkpoint state), what the warmup
// prefix did with the checkpoint store.
type WarmupStats struct {
	// CheckpointHit: the warmup prefix was restored from the store.
	CheckpointHit bool
	// CheckpointSaved: the warmup prefix was computed and recorded.
	CheckpointSaved bool
}

// CheckpointStore persists warmup checkpoints across runs and processes.
// runner.Store satisfies it; payloads are valid JSON, honouring the
// artifact contract of that interface.
type CheckpointStore interface {
	LookupArtifact(k Key) ([]byte, bool)
	RecordArtifact(k Key, data []byte)
}

// checkpointFormatVersion tags the serialized warmup-checkpoint payload.
// Bump it whenever the warm-state wire format changes — any field change
// in workload.Snapshot, cpu.FrontEndState, or the bpred state structs —
// so stale checkpoints miss instead of restoring skewed state (see
// CONTRIBUTING.md).
const checkpointFormatVersion = 1

// checkpointPayload is the serialized post-warmup state: the workload
// generator position and the front-end warm state. Deliberately no cache
// state — the payload must be valid for every config sharing a FrontKey,
// and cache contents are geometry-dependent.
type checkpointPayload struct {
	Version  int               `json:"version"`
	Consumed uint64            `json:"consumed"` // instructions the prefix consumed
	Gen      workload.Snapshot `json:"gen"`
	Front    cpu.FrontEndState `json:"front"`
}

// WarmKey is the content-addressed checkpoint key: the front-end
// fingerprint (which covers the sampling spec, hence the warmup length)
// plus the checkpoint format version. Every config that can gang with
// this one shares its warmup checkpoint.
func (c Config) WarmKey() Key {
	return NewKeyBuilder("sim.warmup").
		RawKey(c.FrontKey()).
		U64(checkpointFormatVersion).
		Sum()
}

func decodeCheckpoint(data []byte) (checkpointPayload, error) {
	var p checkpointPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return p, err
	}
	if p.Version != checkpointFormatVersion {
		return p, fmt.Errorf("sim: checkpoint format version %d, want %d", p.Version, checkpointFormatVersion)
	}
	return p, nil
}

// frontEndHolder is the warm-state surface shared by the solo and gang
// engines; warmupWithCheckpoint drives any of them.
type frontEndHolder interface {
	WarmupFrontEnd(src workload.Source, maxInstr uint64) uint64
	SnapshotFrontEnd() (cpu.FrontEndState, error)
	RestoreFrontEnd(cpu.FrontEndState) error
}

// warmupWithCheckpoint runs the warmup prefix: on a store hit it
// restores the generator and front-end instead of stepping them; on a
// miss it computes the warm state and records it. Any undecodable or
// shape-mismatched stored payload falls back to a cold warmup (and is
// overwritten), so a corrupt store can never fail a run. Returns the
// instructions the prefix consumed.
func warmupWithCheckpoint(cfg Config, eng frontEndHolder, gen *workload.Generator, cs CheckpointStore, ws *WarmupStats) uint64 {
	want := cfg.Sampling.WarmupInstructions
	if want == 0 {
		return 0
	}
	key := cfg.WarmKey()
	if cs != nil {
		if data, ok := cs.LookupArtifact(key); ok {
			if p, err := decodeCheckpoint(data); err == nil {
				if err := eng.RestoreFrontEnd(p.Front); err == nil {
					gen.Restore(p.Gen)
					ws.CheckpointHit = true
					return p.Consumed
				}
			}
		}
	}
	n := eng.WarmupFrontEnd(gen, want)
	if cs != nil {
		front, err := eng.SnapshotFrontEnd()
		if err == nil {
			data, err := json.Marshal(checkpointPayload{
				Version:  checkpointFormatVersion,
				Consumed: n,
				Gen:      gen.Snapshot(),
				Front:    front,
			})
			if err == nil {
				cs.RecordArtifact(key, data)
				ws.CheckpointSaved = true
			}
		}
	}
	return n
}

// integrateTo accrues every level's background energy up to cycle now, so
// a subsequent energyPJ read includes idle energy through that cycle.
func (m *machine) integrateTo(now uint64) {
	m.dc.c.IntegrateIdleTo(now)
	m.ic.c.IntegrateIdleTo(now)
	for _, b := range m.shared {
		b.c.IntegrateIdleTo(now)
	}
}

// energyPJ sums the memory system's accumulated energy: switching plus
// background through the last integrateTo cycle. (Memories have no
// clocked idle energy, so no integration step for them.)
func (m *machine) energyPJ() float64 {
	pj := m.dc.c.EnergyPJ() + m.ic.c.EnergyPJ()
	for _, b := range m.shared {
		pj += b.c.EnergyPJ()
	}
	for _, mem := range m.mems {
		pj += mem.EnergyPJ()
	}
	return pj
}

// windowAccum accumulates one machine's detailed windows: the summed
// cpu.Result, the chained clock base, and the per-window CPI/EPI samples
// the estimator and its error bars derive from.
//
// The first detailed window is special: the warmup prefix warms only the
// front-end, so window 1 runs against cold caches and measures the
// one-off cache warmup transient — which the full run also pays exactly
// once. The estimator therefore treats window 1 as its own stratum,
// counted once and never extrapolated, and extrapolates only the
// steady-state windows (2..n, whose caches the fast-forward warming
// keeps representative) over the rest of the run. Extrapolating the
// cold window like the others would multiply the transient by the scale
// factor and overestimate small runs severely.
type windowAccum struct {
	m      *machine
	agg    cpu.Result
	base   uint64
	prevPJ float64
	cpi    []float64
	epi    []float64

	// Window 1 (the cold-start stratum), recorded at the first observe.
	firstInstr  uint64
	firstCycles uint64
	firstPJ     float64
}

// observe folds one detailed window's result in. Window energy is the
// machine's energy delta (after integrating background energy to the
// window's end cycle) plus the core energy of the window's activity.
func (w *windowAccum) observe(cfg Config, r cpu.Result) {
	winCycles := r.Cycles - w.base
	w.m.integrateTo(r.Cycles)
	nowPJ := w.m.energyPJ()
	winPJ := nowPJ - w.prevPJ + cfg.Core.CorePJ(r.Activity, r.Instructions, winCycles)
	w.prevPJ = nowPJ
	instr := float64(r.Instructions)
	w.cpi = append(w.cpi, float64(winCycles)/instr)
	w.epi = append(w.epi, winPJ/instr)
	if len(w.cpi) == 1 {
		w.firstInstr = r.Instructions
		w.firstCycles = winCycles
		w.firstPJ = winPJ
	}
	w.agg.Instructions += r.Instructions
	w.agg.Activity.Add(r.Activity)
	w.agg.Cycles = r.Cycles // absolute end of the latest window
	w.agg.BranchAccuracy = r.BranchAccuracy
	w.base = r.Cycles
}

// finish scales the detailed aggregate to a whole-run estimate of total
// instructions and attaches the SampleReport.
//
// Cycles and energy use the stratified estimator described on
// windowAccum: window 1's measurement counts once, the steady windows'
// mean CPI/EPI extrapolates over everything else. Event counters (cache
// accesses, activity events) are instruction-proportional and scale
// uniformly by total/detailed.
func (w *windowAccum) finish(cfg Config, total, warmup uint64) (Result, error) {
	if w.agg.Instructions == 0 {
		return Result{}, fmt.Errorf("sim: %s: no detailed instructions measured (stream exhausted before the first window)", cfg.Benchmark)
	}
	full := w.m.finish(cfg, w.agg)
	detCycles := float64(w.agg.Cycles) // windows chain, so this is Σ window cycles
	detPJ := full.Energy.TotalPJ()
	countScale := float64(total) / float64(w.agg.Instructions)

	var cyclesEst, pjEst, cpiSE, epiSE float64
	if len(w.cpi) >= 2 {
		rest := float64(total - w.firstInstr)
		cyclesEst = float64(w.firstCycles) + rest*mean(w.cpi[1:])
		pjEst = w.firstPJ + rest*mean(w.epi[1:])
		// Error bars cover the extrapolated stratum; applying them to the
		// whole estimate (which includes the exactly-measured window 1) is
		// slightly conservative.
		cpiSE = relStdErr(w.cpi[1:])
		epiSE = relStdErr(w.epi[1:])
	} else {
		cyclesEst = detCycles * countScale
		pjEst = detPJ * countScale
	}

	res := scaleResult(full, countScale, pjEst/detPJ)
	res.CPU.Cycles = uint64(cyclesEst + 0.5)
	res.CPU.Instructions = total
	res.EDP = stats.EDP{EnergyJ: res.Energy.TotalJ(), Cycles: res.CPU.Cycles}
	res.Sample = &SampleReport{
		Windows:              len(w.cpi),
		WarmupInstructions:   warmup,
		DetailedInstructions: w.agg.Instructions,
		TotalInstructions:    total,
		Scale:                countScale,
		CPIRelStdErr:         cpiSE,
		EPIRelStdErr:         epiSE,
		EDPRelStdErr:         math.Sqrt(cpiSE*cpiSE + epiSE*epiSE),
	}
	return res, nil
}

// mean of a non-empty sample slice.
func mean(samples []float64) float64 {
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// scaleCount rounds v*s half-up.
func scaleCount(v uint64, s float64) uint64 { return uint64(float64(v)*s + 0.5) }

// scaleCacheReport scales the extensive counters by counts and the
// energies by energy; ratios, capacities, and the resize trace are
// intensive and pass through.
func scaleCacheReport(c CacheReport, counts, energy float64) CacheReport {
	c.Accesses = scaleCount(c.Accesses, counts)
	c.Resizes = scaleCount(c.Resizes, counts)
	c.FlushedBlocks = scaleCount(c.FlushedBlocks, counts)
	c.EnergyPJ *= energy
	c.SwitchingPJ *= energy
	c.BackgroundPJ *= energy
	return c
}

// scaleResult extrapolates a detailed-window aggregate to the whole run:
// event counts scale by counts, energies by energy (the stratified
// estimate's ratio), intensive quantities (ratios, averages, accuracies)
// pass through. Cycles, EDP, and Instructions are set by the caller.
func scaleResult(r Result, counts, energy float64) Result {
	r.CPU.Activity = r.CPU.Activity.Scaled(counts)
	r.Energy.CorePJ *= energy
	r.Energy.L1IPJ *= energy
	r.Energy.L1DPJ *= energy
	r.Energy.L2PJ *= energy
	r.Energy.MemPJ *= energy
	r.DCache = scaleCacheReport(r.DCache, counts, energy)
	r.ICache = scaleCacheReport(r.ICache, counts, energy)
	for i := range r.Levels {
		r.Levels[i].CacheReport = scaleCacheReport(r.Levels[i].CacheReport, counts, energy)
	}
	return r
}

// relStdErr returns the standard error of the mean relative to the mean,
// using the sample standard deviation. Under two samples there is no
// variance information; callers see zero and Windows==1.
func relStdErr(samples []float64) float64 {
	n := len(samples)
	if n < 2 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(n)
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	se := math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
	return se / mean
}

// runSampledSolo is the sampled counterpart of the solo path in
// RunWithCheckpoints: warmup prefix (checkpointed), then alternating
// detailed and fast-forward windows until the instruction budget (or the
// stream) is exhausted.
func runSampledSolo(cfg Config, prof *workload.Profile, cs CheckpointStore) (Result, WarmupStats, error) {
	m, err := buildMachine(cfg)
	if err != nil {
		return Result{}, WarmupStats{}, err
	}
	eng, err := buildSoloEngine(cfg, m)
	if err != nil {
		return Result{}, WarmupStats{}, err
	}
	gen := workload.NewGenerator(prof)
	var ws WarmupStats
	consumed := warmupWithCheckpoint(cfg, eng, gen, cs, &ws)

	spec := cfg.Sampling
	acc := windowAccum{m: m}
	total := consumed
	for total < cfg.Instructions {
		r := eng.RunWindow(gen, min(spec.DetailedInstructions, cfg.Instructions-total), acc.base)
		if r.Instructions == 0 {
			break // stream exhausted
		}
		total += r.Instructions
		acc.observe(cfg, r)
		if total >= cfg.Instructions {
			break
		}
		// Gap to the next window: optional O(1) skip, then functional
		// warming right before the measurement so the window sees
		// representative cache and predictor state.
		if sk := min(spec.SkipInstructions, cfg.Instructions-total); sk > 0 {
			n := gen.Skip(sk)
			total += n
			if n < sk {
				break // stream exhausted
			}
		}
		ff := min(spec.FastForwardInstructions, cfg.Instructions-total)
		n := eng.FastForward(gen, ff)
		total += n
		if n < ff {
			break // stream exhausted; nothing left for another window
		}
	}
	res, err := acc.finish(cfg, total, consumed)
	if err != nil {
		return Result{}, ws, err
	}
	return res, ws, nil
}
