// Package sim wires the substrates into a complete simulated processor —
// workload generator → CPU engine → resizable L1 i-/d-caches → a
// declaratively described shared hierarchy (unified L2, optionally
// deeper levels, optionally none) → memory — runs it, and reports
// timing, energy breakdown, and resizing behaviour. One Config describes
// one simulation; experiments (internal/experiment) run many configs in
// parallel.
package sim

import (
	"fmt"

	"resizecache/internal/bpred"
	"resizecache/internal/cache"
	"resizecache/internal/core"
	"resizecache/internal/cpu"
	"resizecache/internal/energy"
	"resizecache/internal/geometry"
	"resizecache/internal/stats"
	"resizecache/internal/workload"
)

// EngineKind selects the processor timing model.
type EngineKind int

const (
	// OutOfOrder is the base configuration: 4-wide OoO with a
	// non-blocking d-cache (8 MSHRs).
	OutOfOrder EngineKind = iota
	// InOrder is the latency-exposing configuration: in-order issue with
	// a blocking d-cache.
	InOrder
)

func (e EngineKind) String() string {
	if e == InOrder {
		return "in-order"
	}
	return "out-of-order"
}

// PolicyKind selects the resizing strategy for one cache.
type PolicyKind int

const (
	// PolicyNone keeps the cache at full size (baseline).
	PolicyNone PolicyKind = iota
	// PolicyStatic fixes one profiled schedule point for the run.
	PolicyStatic
	// PolicyDynamic applies the miss-ratio interval controller.
	PolicyDynamic
)

// PolicySpec instantiates a resizing policy.
type PolicySpec struct {
	Kind PolicyKind
	// StaticIndex is the schedule point for PolicyStatic.
	StaticIndex int
	// Interval (accesses), MissBound, SizeBoundBytes, and
	// UpsizeHoldIntervals parameterize PolicyDynamic.
	Interval            uint64
	MissBound           uint64
	SizeBoundBytes      int
	UpsizeHoldIntervals int
}

func (p PolicySpec) build() core.Policy {
	switch p.Kind {
	case PolicyStatic:
		return &core.StaticPolicy{PointIndex: p.StaticIndex}
	case PolicyDynamic:
		return &core.DynamicPolicy{Interval: p.Interval, MissBound: p.MissBound,
			SizeBoundBytes: p.SizeBoundBytes, UpsizeHoldIntervals: p.UpsizeHoldIntervals}
	default:
		return nil
	}
}

// CacheSpec configures one resizable cache: its geometry, resizing
// organization, and policy. The L1s use it directly; LevelSpec embeds it
// for the shared levels.
type CacheSpec struct {
	Geom   geometry.Geometry
	Org    core.Organization
	Policy PolicySpec

	// Ablation switches (benchmark-only; see cache.Config).
	AblationFullPrecharge bool
	AblationFreeFlush     bool
}

// resizable reports whether the spec needs the resizing machinery at
// all; a non-resizable spec with no policy builds a plain cache array.
func (s CacheSpec) resizable() bool {
	return s.Org != core.NonResizable || s.Policy.Kind != PolicyNone
}

// PrechargeMode selects a level's precharge organization (paper §3).
type PrechargeMode int

const (
	// PrechargeDelayed precharges only the accessed subarrays, trading
	// access time for energy — the organization shared lower levels use.
	// This is the zero value: a zero LevelSpec behaves like the
	// conventional L2.
	PrechargeDelayed PrechargeMode = iota
	// PrechargeFull precharges every enabled subarray before decode, as
	// the latency-critical L1s do.
	PrechargeFull
)

func (m PrechargeMode) String() string {
	if m == PrechargeFull {
		return "full-precharge"
	}
	return "delayed-precharge"
}

// LevelSpec describes one shared cache level below the split L1s: a
// full CacheSpec (geometry, organization, resizing policy, ablations)
// plus the per-level structural knobs. The hierarchy is data — sim.Run
// builds whatever chain Levels describes, so a resizable L2, a deeper
// L2+L3 stack, and an L1-only machine are all just configs.
type LevelSpec struct {
	CacheSpec

	// Precharge selects the level's precharge organization; the zero
	// value is the shared-level default (delayed precharge).
	Precharge PrechargeMode
	// MSHREntries > 0 makes the level non-blocking; 0 (the default)
	// models the conventional blocking lower level.
	MSHREntries int
	// WritebackEntries sizes the level's writeback buffer (0 = none).
	WritebackEntries int
}

// Config is one complete simulation description.
type Config struct {
	Benchmark    string
	Instructions uint64
	Engine       EngineKind
	CPU          cpu.Config

	DCache CacheSpec
	ICache CacheSpec

	// Levels describes the shared hierarchy below the split L1s,
	// outermost first: Levels[0] is the L2, Levels[1] an L3, and so on.
	// An explicitly empty hierarchy (no Levels and a zero L2Geom)
	// connects the L1s straight to memory.
	Levels []LevelSpec

	// L2Geom is the older single-level form of Levels.
	//
	// Deprecated: set Levels instead. A non-zero L2Geom normalizes into
	// a one-level non-resizable spec when Levels is empty, and the two
	// spellings fingerprint identically; a config that sets both is
	// rejected by Run.
	L2Geom geometry.Geometry

	MSHREntries      int // d-cache MSHRs for the OoO engine
	WritebackEntries int

	Energy geometry.EnergyModel
	Core   energy.CoreEnergies

	// Sampling, when enabled, switches Run to interval-sampled execution:
	// short detailed windows alternate with long functional fast-forward
	// windows, and detailed measurements are scaled to whole-run estimates
	// with standard-error bars (Result.Sample). The zero value runs every
	// instruction in detail. See sample.go.
	Sampling SamplingSpec
}

// Hierarchy returns the config's shared levels in canonical form,
// outermost first: Levels verbatim when set, otherwise a non-zero
// L2Geom folded into a one-level non-resizable spec, otherwise nil (the
// L1s talk straight to memory).
func (c Config) Hierarchy() []LevelSpec {
	if len(c.Levels) > 0 {
		return c.Levels
	}
	if c.L2Geom == (geometry.Geometry{}) {
		return nil
	}
	return []LevelSpec{{CacheSpec: CacheSpec{Geom: c.L2Geom, Org: core.NonResizable}}}
}

// Default returns the paper's base configuration (Table 2) for a
// benchmark: 32K 2-way L1s, 512K 4-way L2, 4-wide OoO, 2M instructions.
func Default(benchmark string) Config {
	l1 := geometry.Geometry{SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, SubarrayBytes: 1 << 10}
	return Config{
		Benchmark:    benchmark,
		Instructions: 2_000_000,
		Engine:       OutOfOrder,
		CPU:          cpu.DefaultConfig(),
		DCache:       CacheSpec{Geom: l1, Org: core.NonResizable},
		ICache:       CacheSpec{Geom: l1, Org: core.NonResizable},
		Levels: []LevelSpec{{CacheSpec: CacheSpec{
			Geom: geometry.Geometry{SizeBytes: 512 << 10, Assoc: 4,
				BlockBytes: 64, SubarrayBytes: 4 << 10},
			Org: core.NonResizable,
		}}},
		MSHREntries:      8,
		WritebackEntries: 8,
		Energy:           geometry.Default18um(),
		Core:             energy.DefaultCore(),
	}
}

// CacheReport summarizes one cache's behaviour during a run.
type CacheReport struct {
	Accesses      uint64
	MissRatio     float64
	AvgBytes      float64 // time-weighted average enabled capacity
	FullBytes     int
	Resizes       uint64
	FlushedBlocks uint64
	SizeTrace     []int
	EnergyPJ      float64
	// SwitchingPJ / BackgroundPJ split EnergyPJ into per-access energy
	// and clock+leakage energy (the component the paper's §3 leakage
	// argument applies to).
	SwitchingPJ  float64
	BackgroundPJ float64
}

// SizeReductionPct is the paper's "reduction in average cache size".
func (c CacheReport) SizeReductionPct() float64 {
	if c.FullBytes == 0 {
		return 0
	}
	return 100 * (1 - c.AvgBytes/float64(c.FullBytes))
}

// LevelReport is one shared level's report.
type LevelReport struct {
	Name string // "L2", "L3", ...
	CacheReport
}

// Result is one simulation's complete outcome.
type Result struct {
	CPU    cpu.Result
	Energy energy.Breakdown
	EDP    stats.EDP
	DCache CacheReport
	ICache CacheReport
	// Levels reports the shared hierarchy, outermost (L2) first; empty
	// when the L1s connect straight to memory.
	Levels []LevelReport

	// Sample describes how the result was measured when the run used
	// interval sampling: window counts, the extrapolation factor, and
	// per-metric standard-error bars. Nil for fully detailed runs.
	Sample *SampleReport `json:",omitempty"`
}

// L2 returns the outermost shared level's report (the zero report when
// the hierarchy is empty).
func (r Result) L2() CacheReport {
	if len(r.Levels) == 0 {
		return CacheReport{}
	}
	return r.Levels[0].CacheReport
}

// reportCache summarizes one built cache array; trace is the resizing
// size trace, nil for non-resizable levels.
func reportCache(c *cache.Cache, trace []int) CacheReport {
	return CacheReport{
		Accesses:      c.Stat.Accesses.Value(),
		MissRatio:     c.Stat.MissRatio(),
		AvgBytes:      c.AvgEnabledBytes(),
		FullBytes:     c.Config().Geom.SizeBytes,
		Resizes:       c.Stat.Resizes.Value(),
		FlushedBlocks: c.Stat.FlushedBlocks.Value(),
		SizeTrace:     trace,
		EnergyPJ:      c.EnergyPJ(),
		SwitchingPJ:   c.SwitchingPJ(),
		BackgroundPJ:  c.BackgroundPJ(),
	}
}

// builtLevel is one constructed shared level: the raw array plus the
// resizable wrapper when the spec asked for one.
type builtLevel struct {
	name  string
	c     *cache.Cache
	r     *core.ResizableCache // nil for plain levels
	level cache.Level          // what the level above connects to
}

func (b builtLevel) report() LevelReport {
	var trace []int
	if b.r != nil {
		trace = b.r.SizeTrace
	}
	return LevelReport{Name: b.name, CacheReport: reportCache(b.c, trace)}
}

// buildHierarchy constructs the shared levels over mem, innermost
// first, and returns them outermost first along with the level the L1s
// connect to.
func buildHierarchy(specs []LevelSpec, em geometry.EnergyModel, mem cache.Level) ([]builtLevel, cache.Level, error) {
	built := make([]builtLevel, len(specs))
	next := mem
	for i := len(specs) - 1; i >= 0; i-- {
		spec := specs[i]
		name := fmt.Sprintf("L%d", i+2)
		lat := uint64(geometry.AccessLatencyCycles(spec.Geom))
		if spec.resizable() {
			r, err := core.NewResizable(core.Options{
				Name: name, Geom: spec.Geom, Org: spec.Org,
				Policy: spec.Policy.build(), HitLatency: lat,
				MSHREntries: spec.MSHREntries, WritebackEntries: spec.WritebackEntries,
				Energy:                em,
				DelayedPrecharge:      spec.Precharge == PrechargeDelayed,
				AblationFullPrecharge: spec.AblationFullPrecharge,
				AblationFreeFlush:     spec.AblationFreeFlush,
			}, next)
			if err != nil {
				return nil, nil, fmt.Errorf("sim: %s: %w", name, err)
			}
			built[i] = builtLevel{name: name, c: r.C, r: r, level: r}
		} else {
			// core.NewResizable could build this too (one-point schedule),
			// but a fixed level skips the wrapper so the hierarchy's hot
			// path pays no per-access interval accounting for a cache that
			// never resizes.
			c, err := cache.New(cache.Config{
				Name: name, Geom: spec.Geom, HitLatency: lat,
				Energy:                em,
				MSHREntries:           spec.MSHREntries,
				WritebackEntries:      spec.WritebackEntries,
				DelayedPrecharge:      spec.Precharge == PrechargeDelayed,
				AblationFullPrecharge: spec.AblationFullPrecharge,
				AblationFreeFlush:     spec.AblationFreeFlush,
			}, next)
			if err != nil {
				return nil, nil, fmt.Errorf("sim: %s: %w", name, err)
			}
			built[i] = builtLevel{name: name, c: c, level: c}
		}
		next = built[i].level
	}
	return built, next, nil
}

// validated resolves the config's workload profile and rejects
// structurally invalid configs. Shared by Run and RunGang so both entry
// points fail identically.
func validated(cfg Config) (*workload.Profile, error) {
	prof, err := workload.Get(cfg.Benchmark)
	if err != nil {
		return nil, err
	}
	if cfg.Instructions == 0 {
		return nil, fmt.Errorf("sim: zero instruction budget")
	}
	if len(cfg.Levels) > 0 && cfg.L2Geom != (geometry.Geometry{}) {
		return nil, fmt.Errorf("sim: both Levels and the deprecated L2Geom set; use Levels only")
	}
	if s := cfg.Sampling; s != (SamplingSpec{}) {
		if !s.Enabled() {
			return nil, fmt.Errorf("sim: partial sampling spec %+v: both DetailedInstructions and FastForwardInstructions must be set", s)
		}
		if s.WarmupInstructions >= cfg.Instructions {
			return nil, fmt.Errorf("sim: warmup %d consumes the whole %d-instruction budget", s.WarmupInstructions, cfg.Instructions)
		}
	}
	return prof, nil
}

// machine is one config's built memory system — the split L1s, the
// shared hierarchy, and the memories behind them. Run drives one
// machine with a solo engine; RunGang builds N machines and drives them
// all from one engine pass.
type machine struct {
	dc, ic builtLevel
	shared []builtLevel
	mems   []*cache.Memory
}

// buildMachine constructs the config's memory system.
func buildMachine(cfg Config) (*machine, error) {
	levels := cfg.Hierarchy()
	// Memory transfers its client's block: the innermost shared level's
	// when the hierarchy has one, otherwise one memory per L1 (the two
	// L1s may use different block sizes, so a shared transfer size would
	// mis-bill one of them).
	var mems []*cache.Memory
	newMem := func(blockBytes int) *cache.Memory {
		m := cache.NewMemory(blockBytes)
		mems = append(mems, m)
		return m
	}
	var shared []builtLevel
	var dNext, iNext cache.Level
	if n := len(levels); n > 0 {
		var err error
		var l1Next cache.Level
		shared, l1Next, err = buildHierarchy(levels, cfg.Energy, newMem(levels[n-1].Geom.BlockBytes))
		if err != nil {
			return nil, err
		}
		dNext, iNext = l1Next, l1Next
	} else {
		dNext = newMem(cfg.DCache.Geom.BlockBytes)
		iNext = newMem(cfg.ICache.Geom.BlockBytes)
	}

	// The L1s get the same treatment buildHierarchy gives shared levels:
	// a resizable spec builds the full wrapper, a fixed spec connects the
	// engine straight to the plain array so the per-access hot path pays
	// no interval accounting for a cache that never resizes.
	buildL1 := func(spec CacheSpec, name string, mshr, wbEntries int, next cache.Level) (builtLevel, error) {
		if spec.resizable() {
			r, err := core.NewResizable(core.Options{
				Name: name, Geom: spec.Geom, Org: spec.Org,
				Policy: spec.Policy.build(), HitLatency: 1,
				MSHREntries: mshr, WritebackEntries: wbEntries,
				Energy:                cfg.Energy,
				AblationFullPrecharge: spec.AblationFullPrecharge,
				AblationFreeFlush:     spec.AblationFreeFlush,
			}, next)
			if err != nil {
				return builtLevel{}, err
			}
			return builtLevel{name: name, c: r.C, r: r, level: r}, nil
		}
		c, err := cache.New(cache.Config{
			Name: name, Geom: spec.Geom, HitLatency: 1,
			Energy:                cfg.Energy,
			MSHREntries:           mshr,
			WritebackEntries:      wbEntries,
			AblationFullPrecharge: spec.AblationFullPrecharge,
			AblationFreeFlush:     spec.AblationFreeFlush,
		}, next)
		if err != nil {
			return builtLevel{}, err
		}
		return builtLevel{name: name, c: c, level: c}, nil
	}

	dMSHR := cfg.MSHREntries
	if cfg.Engine == InOrder {
		dMSHR = 0 // blocking d-cache
	}
	dc, err := buildL1(cfg.DCache, "L1d", dMSHR, cfg.WritebackEntries, dNext)
	if err != nil {
		return nil, fmt.Errorf("sim: d-cache: %w", err)
	}
	ic, err := buildL1(cfg.ICache, "L1i", 2, 0, iNext)
	if err != nil {
		return nil, fmt.Errorf("sim: i-cache: %w", err)
	}
	return &machine{dc: dc, ic: ic, shared: shared, mems: mems}, nil
}

// finish finalizes the machine's levels at the run's end time and
// assembles the complete Result from the engine's timing outcome.
func (m *machine) finish(cfg Config, res cpu.Result) Result {
	m.dc.level.Finalize(res.Cycles)
	m.ic.level.Finalize(res.Cycles)
	var sharedPJ float64
	levelReports := make([]LevelReport, len(m.shared))
	for i, b := range m.shared {
		b.level.Finalize(res.Cycles)
		levelReports[i] = b.report()
		sharedPJ += b.c.EnergyPJ()
	}
	var memPJ float64
	for _, mem := range m.mems {
		mem.Finalize(res.Cycles)
		memPJ += mem.EnergyPJ()
	}

	bd := energy.Breakdown{
		CorePJ: cfg.Core.CorePJ(res.Activity, res.Instructions, res.Cycles),
		L1IPJ:  m.ic.c.EnergyPJ(),
		L1DPJ:  m.dc.c.EnergyPJ(),
		L2PJ:   sharedPJ, // every shared level below the L1s
		MemPJ:  memPJ,
	}

	return Result{
		CPU:    res,
		Energy: bd,
		EDP:    stats.EDP{EnergyJ: bd.TotalJ(), Cycles: res.Cycles},
		DCache: m.dc.report().CacheReport,
		ICache: m.ic.report().CacheReport,
		Levels: levelReports,
	}
}

// soloEngine is what Run needs from an engine beyond the basic Engine
// contract: window-chained detailed execution, functional fast-forward,
// and front-end warm-state snapshots for the sampled execution mode.
// Both concrete engines implement it.
type soloEngine interface {
	cpu.Engine
	RunWindow(src workload.Source, maxInstr uint64, base uint64) cpu.Result
	FastForward(src workload.Source, maxInstr uint64) uint64
	frontEndHolder
}

// buildSoloEngine constructs the configured engine over the machine's L1s.
func buildSoloEngine(cfg Config, m *machine) (soloEngine, error) {
	if cfg.Engine == InOrder {
		return cpu.NewInOrder(cfg.CPU, m.ic.level, m.dc.level, bpred.NewDefault())
	}
	return cpu.NewOutOfOrder(cfg.CPU, m.ic.level, m.dc.level, bpred.NewDefault())
}

// Run executes one simulation.
func Run(cfg Config) (Result, error) {
	res, _, err := RunWithCheckpoints(cfg, nil)
	return res, err
}

// RunWithCheckpoints executes one simulation against an optional warmup
// checkpoint store (nil behaves exactly like Run). For sampled configs
// with a warmup prefix, a store hit restores the front-end warm state
// instead of recomputing it, and a miss records the computed state under
// cfg.WarmKey() for later runs; the Result is bit-identical either way.
// The returned WarmupStats says which of the two happened.
func RunWithCheckpoints(cfg Config, cs CheckpointStore) (Result, WarmupStats, error) {
	prof, err := validated(cfg)
	if err != nil {
		return Result{}, WarmupStats{}, err
	}
	if cfg.Sampling.Enabled() {
		return runSampledSolo(cfg, prof, cs)
	}
	m, err := buildMachine(cfg)
	if err != nil {
		return Result{}, WarmupStats{}, err
	}
	engine, err := buildSoloEngine(cfg, m)
	if err != nil {
		return Result{}, WarmupStats{}, err
	}
	res := engine.Run(workload.NewGenerator(prof), cfg.Instructions)
	return m.finish(cfg, res), WarmupStats{}, nil
}
