// Package sim wires the substrates into a complete simulated processor —
// workload generator → CPU engine → resizable L1 i-/d-caches → shared
// L2 → memory — runs it, and reports timing, energy breakdown, and
// resizing behaviour. One Config describes one simulation; experiments
// (internal/experiment) run many configs in parallel.
package sim

import (
	"fmt"

	"resizecache/internal/bpred"
	"resizecache/internal/cache"
	"resizecache/internal/core"
	"resizecache/internal/cpu"
	"resizecache/internal/energy"
	"resizecache/internal/geometry"
	"resizecache/internal/stats"
	"resizecache/internal/workload"
)

// EngineKind selects the processor timing model.
type EngineKind int

const (
	// OutOfOrder is the base configuration: 4-wide OoO with a
	// non-blocking d-cache (8 MSHRs).
	OutOfOrder EngineKind = iota
	// InOrder is the latency-exposing configuration: in-order issue with
	// a blocking d-cache.
	InOrder
)

func (e EngineKind) String() string {
	if e == InOrder {
		return "in-order"
	}
	return "out-of-order"
}

// PolicyKind selects the resizing strategy for one L1.
type PolicyKind int

const (
	// PolicyNone keeps the cache at full size (baseline).
	PolicyNone PolicyKind = iota
	// PolicyStatic fixes one profiled schedule point for the run.
	PolicyStatic
	// PolicyDynamic applies the miss-ratio interval controller.
	PolicyDynamic
)

// PolicySpec instantiates a resizing policy.
type PolicySpec struct {
	Kind PolicyKind
	// StaticIndex is the schedule point for PolicyStatic.
	StaticIndex int
	// Interval (accesses), MissBound, SizeBoundBytes, and
	// UpsizeHoldIntervals parameterize PolicyDynamic.
	Interval            uint64
	MissBound           uint64
	SizeBoundBytes      int
	UpsizeHoldIntervals int
}

func (p PolicySpec) build() core.Policy {
	switch p.Kind {
	case PolicyStatic:
		return &core.StaticPolicy{PointIndex: p.StaticIndex}
	case PolicyDynamic:
		return &core.DynamicPolicy{Interval: p.Interval, MissBound: p.MissBound,
			SizeBoundBytes: p.SizeBoundBytes, UpsizeHoldIntervals: p.UpsizeHoldIntervals}
	default:
		return nil
	}
}

// CacheSpec configures one resizable L1.
type CacheSpec struct {
	Geom   geometry.Geometry
	Org    core.Organization
	Policy PolicySpec

	// Ablation switches (benchmark-only; see cache.Config).
	AblationFullPrecharge bool
	AblationFreeFlush     bool
}

// Config is one complete simulation description.
type Config struct {
	Benchmark    string
	Instructions uint64
	Engine       EngineKind
	CPU          cpu.Config

	DCache CacheSpec
	ICache CacheSpec
	L2Geom geometry.Geometry

	MSHREntries      int // d-cache MSHRs for the OoO engine
	WritebackEntries int

	Energy geometry.EnergyModel
	Core   energy.CoreEnergies
}

// Default returns the paper's base configuration (Table 2) for a
// benchmark: 32K 2-way L1s, 512K 4-way L2, 4-wide OoO, 2M instructions.
func Default(benchmark string) Config {
	l1 := geometry.Geometry{SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, SubarrayBytes: 1 << 10}
	return Config{
		Benchmark:    benchmark,
		Instructions: 2_000_000,
		Engine:       OutOfOrder,
		CPU:          cpu.DefaultConfig(),
		DCache:       CacheSpec{Geom: l1, Org: core.NonResizable},
		ICache:       CacheSpec{Geom: l1, Org: core.NonResizable},
		L2Geom: geometry.Geometry{SizeBytes: 512 << 10, Assoc: 4,
			BlockBytes: 64, SubarrayBytes: 4 << 10},
		MSHREntries:      8,
		WritebackEntries: 8,
		Energy:           geometry.Default18um(),
		Core:             energy.DefaultCore(),
	}
}

// CacheReport summarizes one L1's behaviour during a run.
type CacheReport struct {
	Accesses      uint64
	MissRatio     float64
	AvgBytes      float64 // time-weighted average enabled capacity
	FullBytes     int
	Resizes       uint64
	FlushedBlocks uint64
	SizeTrace     []int
	EnergyPJ      float64
	// SwitchingPJ / BackgroundPJ split EnergyPJ into per-access energy
	// and clock+leakage energy (the component the paper's §3 leakage
	// argument applies to).
	SwitchingPJ  float64
	BackgroundPJ float64
}

// SizeReductionPct is the paper's "reduction in average cache size".
func (c CacheReport) SizeReductionPct() float64 {
	if c.FullBytes == 0 {
		return 0
	}
	return 100 * (1 - c.AvgBytes/float64(c.FullBytes))
}

// Result is one simulation's complete outcome.
type Result struct {
	CPU    cpu.Result
	Energy energy.Breakdown
	EDP    stats.EDP
	DCache CacheReport
	ICache CacheReport
}

// Run executes one simulation.
func Run(cfg Config) (Result, error) {
	prof, err := workload.Get(cfg.Benchmark)
	if err != nil {
		return Result{}, err
	}
	if cfg.Instructions == 0 {
		return Result{}, fmt.Errorf("sim: zero instruction budget")
	}

	mem := cache.NewMemory(cfg.L2Geom.BlockBytes)
	l2, err := cache.New(cache.Config{
		Name: "L2", Geom: cfg.L2Geom,
		HitLatency:       uint64(geometry.AccessLatencyCycles(cfg.L2Geom)),
		Energy:           cfg.Energy,
		DelayedPrecharge: true,
	}, mem)
	if err != nil {
		return Result{}, err
	}

	dMSHR := cfg.MSHREntries
	if cfg.Engine == InOrder {
		dMSHR = 0 // blocking d-cache
	}
	dc, err := core.NewL1(core.L1Options{
		Name: "L1d", Geom: cfg.DCache.Geom, Org: cfg.DCache.Org,
		Policy: cfg.DCache.Policy.build(), HitLatency: 1,
		MSHREntries: dMSHR, WritebackEntries: cfg.WritebackEntries,
		Energy:                cfg.Energy,
		AblationFullPrecharge: cfg.DCache.AblationFullPrecharge,
		AblationFreeFlush:     cfg.DCache.AblationFreeFlush,
	}, l2)
	if err != nil {
		return Result{}, fmt.Errorf("sim: d-cache: %w", err)
	}
	ic, err := core.NewL1(core.L1Options{
		Name: "L1i", Geom: cfg.ICache.Geom, Org: cfg.ICache.Org,
		Policy: cfg.ICache.Policy.build(), HitLatency: 1,
		MSHREntries: 2, Energy: cfg.Energy,
		AblationFullPrecharge: cfg.ICache.AblationFullPrecharge,
		AblationFreeFlush:     cfg.ICache.AblationFreeFlush,
	}, l2)
	if err != nil {
		return Result{}, fmt.Errorf("sim: i-cache: %w", err)
	}

	var engine cpu.Engine
	if cfg.Engine == InOrder {
		engine, err = cpu.NewInOrder(cfg.CPU, ic, dc, bpred.NewDefault())
	} else {
		engine, err = cpu.NewOutOfOrder(cfg.CPU, ic, dc, bpred.NewDefault())
	}
	if err != nil {
		return Result{}, err
	}

	res := engine.Run(workload.NewGenerator(prof), cfg.Instructions)

	dc.Finalize(res.Cycles)
	ic.Finalize(res.Cycles)
	l2.Finalize(res.Cycles)
	mem.Finalize(res.Cycles)

	bd := energy.Breakdown{
		CorePJ: cfg.Core.CorePJ(res.Activity, res.Instructions, res.Cycles),
		L1IPJ:  ic.EnergyPJ(),
		L1DPJ:  dc.EnergyPJ(),
		L2PJ:   l2.EnergyPJ(),
		MemPJ:  mem.EnergyPJ(),
	}

	report := func(r *core.ResizableCache) CacheReport {
		return CacheReport{
			Accesses:      r.C.Stat.Accesses.Value(),
			MissRatio:     r.C.Stat.MissRatio(),
			AvgBytes:      r.C.AvgEnabledBytes(),
			FullBytes:     r.C.Config().Geom.SizeBytes,
			Resizes:       r.C.Stat.Resizes.Value(),
			FlushedBlocks: r.C.Stat.FlushedBlocks.Value(),
			SizeTrace:     r.SizeTrace,
			EnergyPJ:      r.EnergyPJ(),
			SwitchingPJ:   r.C.SwitchingPJ(),
			BackgroundPJ:  r.C.BackgroundPJ(),
		}
	}

	return Result{
		CPU:    res,
		Energy: bd,
		EDP:    stats.EDP{EnergyJ: bd.TotalJ(), Cycles: res.Cycles},
		DCache: report(dc),
		ICache: report(ic),
	}, nil
}
