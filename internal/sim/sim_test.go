package sim

import (
	"testing"

	"resizecache/internal/core"
	"resizecache/internal/geometry"
)

func TestDefaultConfigRuns(t *testing.T) {
	cfg := Default("m88ksim")
	cfg.Instructions = 200_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions != 200_000 {
		t.Fatalf("ran %d instructions", res.CPU.Instructions)
	}
	if res.CPU.IPC() <= 0.2 || res.CPU.IPC() > 4 {
		t.Fatalf("implausible IPC %.2f", res.CPU.IPC())
	}
	if res.Energy.TotalPJ() <= 0 {
		t.Fatal("no energy accounted")
	}
	if res.EDP.Product() <= 0 {
		t.Fatal("no EDP")
	}
	if res.DCache.Accesses == 0 || res.ICache.Accesses == 0 {
		t.Fatal("cache accesses missing")
	}
	if res.DCache.AvgBytes != 32<<10 {
		t.Fatalf("non-resizable d-cache avg size %v", res.DCache.AvgBytes)
	}
}

func TestRunValidatesInputs(t *testing.T) {
	if _, err := Run(Default("nosuchapp")); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	cfg := Default("gcc")
	cfg.Instructions = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero budget accepted")
	}
	cfg = Default("gcc")
	cfg.DCache.Geom.BlockBytes = 33
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid d-geometry accepted")
	}
}

func TestStaticResizingReducesEnergy(t *testing.T) {
	// m88ksim has a tiny working set: a statically downsized
	// selective-sets d-cache must cut total energy with little slowdown.
	base := Default("m88ksim")
	base.Instructions = 400_000
	bres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	small := base
	small.DCache.Org = core.SelectiveSets
	small.DCache.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: 2} // 8K
	sres, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if sres.DCache.AvgBytes >= float64(32<<10) {
		t.Fatalf("d-cache not downsized: %v", sres.DCache.AvgBytes)
	}
	if sres.Energy.L1DPJ >= bres.Energy.L1DPJ {
		t.Fatal("downsizing did not reduce d-cache energy")
	}
	slow := sres.EDP.Slowdown(bres.EDP)
	if slow > 0.06 {
		t.Fatalf("slowdown %.1f%% exceeds paper's 6%% envelope for a fitting WS", 100*slow)
	}
	if sres.EDP.Product() >= bres.EDP.Product() {
		t.Fatal("EDP did not improve")
	}
}

func TestInOrderExposesDMissLatency(t *testing.T) {
	// swim misses a lot when downsized; the in-order engine must suffer
	// more slowdown from the same downsizing than the OoO engine.
	slowdown := func(kind EngineKind) float64 {
		base := Default("swim")
		base.Engine = kind
		base.Instructions = 300_000
		b, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		cut := base
		cut.DCache.Org = core.SelectiveSets
		cut.DCache.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: 2} // 8K
		c, err := Run(cut)
		if err != nil {
			t.Fatal(err)
		}
		return c.EDP.Slowdown(b.EDP)
	}
	inord := slowdown(InOrder)
	ooo := slowdown(OutOfOrder)
	if inord <= ooo {
		t.Fatalf("in-order slowdown %.3f should exceed OoO %.3f", inord, ooo)
	}
}

func TestDynamicPolicyProducesSizeTrace(t *testing.T) {
	cfg := Default("su2cor")
	cfg.Instructions = 600_000
	cfg.DCache.Org = core.SelectiveSets
	// The miss-bound must sit above the conflict-miss noise floor of the
	// 2-way base cache or the controller pins at full size.
	cfg.DCache.Policy = PolicySpec{Kind: PolicyDynamic, Interval: 32768, MissBound: 3000}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DCache.SizeTrace) == 0 {
		t.Fatal("dynamic run recorded no intervals")
	}
	if res.DCache.Resizes == 0 {
		t.Fatal("dynamic policy never resized on a periodic workload")
	}
	if res.DCache.SizeReductionPct() <= 0 {
		t.Fatal("no average size reduction")
	}
}

func TestEngineKindString(t *testing.T) {
	if OutOfOrder.String() != "out-of-order" || InOrder.String() != "in-order" {
		t.Fatal("EngineKind strings wrong")
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := Default("vpr")
	cfg.Instructions = 150_000
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Cycles != b.CPU.Cycles || a.Energy.TotalPJ() != b.Energy.TotalPJ() {
		t.Fatal("simulation not deterministic")
	}
}

// Energy-share calibration: averaged over the suite on the base config,
// the L1 d-cache share should be near the paper's 18.5 % and the i-cache
// near 17.5 %.
func TestEnergySharesMatchPaperCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep in -short mode")
	}
	var dSum, iSum float64
	names := []string{"ammp", "applu", "apsi", "compress", "gcc", "ijpeg",
		"m88ksim", "su2cor", "swim", "tomcatv", "vortex", "vpr"}
	for _, name := range names {
		cfg := Default(name)
		cfg.Instructions = 300_000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := res.Energy.Share("l1d")
		i, _ := res.Energy.Share("l1i")
		dSum += d
		iSum += i
	}
	dAvg := dSum / float64(len(names))
	iAvg := iSum / float64(len(names))
	if dAvg < 0.145 || dAvg > 0.225 {
		t.Errorf("avg d-cache share %.1f%%, want ~18.5%%", 100*dAvg)
	}
	if iAvg < 0.135 || iAvg > 0.215 {
		t.Errorf("avg i-cache share %.1f%%, want ~17.5%%", 100*iAvg)
	}
	t.Logf("calibration: l1d %.1f%% (paper 18.5%%), l1i %.1f%% (paper 17.5%%)",
		100*dAvg, 100*iAvg)
}

// The paper's §3 leakage argument: background (clock + leakage) energy is
// proportional to enabled capacity, so downsizing cuts it in proportion.
func TestBackgroundEnergyScalesWithSize(t *testing.T) {
	run := func(static int) Result {
		cfg := Default("m88ksim")
		cfg.Instructions = 200_000
		if static >= 0 {
			cfg.DCache.Org = core.SelectiveSets
			cfg.DCache.Policy = PolicySpec{Kind: PolicyStatic, StaticIndex: static}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(-1)
	quarter := run(2) // 8K of 32K
	if full.DCache.BackgroundPJ <= 0 || full.DCache.SwitchingPJ <= 0 {
		t.Fatal("energy split not populated")
	}
	ratio := quarter.DCache.BackgroundPJ / full.DCache.BackgroundPJ
	// Cycles differ slightly between runs; allow a loose band around 1/4.
	if ratio < 0.15 || ratio > 0.45 {
		t.Fatalf("background energy ratio %.2f, want ~0.25 for a quarter-size cache", ratio)
	}
}

// TestHierarchyAsData: the shared hierarchy is built from the Levels
// spec — a resizable L2, a deeper L2+L3 stack, and an L1-only machine
// are all just configs.
func TestHierarchyAsData(t *testing.T) {
	base := Default("m88ksim")
	base.Instructions = 150_000
	bres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(bres.Levels) != 1 || bres.Levels[0].Name != "L2" {
		t.Fatalf("base hierarchy reports %+v, want one L2", bres.Levels)
	}
	if bres.L2().Accesses == 0 || bres.L2().EnergyPJ <= 0 {
		t.Fatalf("L2 report empty: %+v", bres.L2())
	}
	if bres.L2().AvgBytes != 512<<10 {
		t.Fatalf("non-resizable L2 avg size %v", bres.L2().AvgBytes)
	}

	// Statically downsized selective-ways L2: smaller average size, less
	// L2 energy, and the breakdown's L2 share follows the level reports.
	cut := base
	cut.Levels = []LevelSpec{{CacheSpec: CacheSpec{
		Geom:   base.Hierarchy()[0].Geom,
		Org:    core.SelectiveWays,
		Policy: PolicySpec{Kind: PolicyStatic, StaticIndex: 2}, // 2 of 4 ways
	}}}
	cres, err := Run(cut)
	if err != nil {
		t.Fatal(err)
	}
	if got := cres.L2().AvgBytes; got != 256<<10 {
		t.Fatalf("downsized L2 avg %v bytes, want 256K", got)
	}
	if cres.L2().EnergyPJ >= bres.L2().EnergyPJ {
		t.Fatal("downsized L2 should use less energy")
	}
	if cres.Energy.L2PJ != cres.L2().EnergyPJ {
		t.Fatalf("breakdown L2 %.1f != level report %.1f", cres.Energy.L2PJ, cres.L2().EnergyPJ)
	}

	// Dynamic L2 resizing records a size trace through the level report.
	// The interval is short because the L2 only sees L1 misses.
	dyn := base
	dyn.Levels = []LevelSpec{{CacheSpec: CacheSpec{
		Geom: base.Hierarchy()[0].Geom,
		Org:  core.SelectiveSets,
		Policy: PolicySpec{Kind: PolicyDynamic, Interval: 128, MissBound: 8,
			SizeBoundBytes: 64 << 10},
	}}}
	dres, err := Run(dyn)
	if err != nil {
		t.Fatal(err)
	}
	if len(dres.Levels[0].SizeTrace) == 0 {
		t.Fatal("dynamic L2 recorded no size trace")
	}

	// Deeper hierarchy: an L3 behind the L2.
	deep := base
	deep.Levels = append(append([]LevelSpec(nil), base.Levels...), LevelSpec{CacheSpec: CacheSpec{
		Geom: geometry.Geometry{SizeBytes: 2 << 20, Assoc: 8, BlockBytes: 64, SubarrayBytes: 4 << 10},
		Org:  core.NonResizable,
	}})
	deepRes, err := Run(deep)
	if err != nil {
		t.Fatal(err)
	}
	if len(deepRes.Levels) != 2 || deepRes.Levels[1].Name != "L3" {
		t.Fatalf("deep hierarchy reports %+v", deepRes.Levels)
	}
	if deepRes.Levels[1].Accesses == 0 {
		t.Fatal("L3 never accessed")
	}
	if deepRes.Levels[1].Accesses > deepRes.Levels[0].Accesses {
		t.Fatal("L3 saw more traffic than the L2 in front of it")
	}

	// No shared levels at all: L1 misses go straight to memory. Fewer
	// levels to absorb misses means more cycles, never fewer.
	flat := base
	flat.Levels = nil
	flat.L2Geom = geometry.Geometry{}
	flatRes, err := Run(flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(flatRes.Levels) != 0 {
		t.Fatalf("flat hierarchy reports %+v", flatRes.Levels)
	}
	if flatRes.Energy.L2PJ != 0 {
		t.Fatalf("flat hierarchy charged L2 energy %.1f", flatRes.Energy.L2PJ)
	}
	if flatRes.CPU.Cycles <= bres.CPU.Cycles {
		t.Fatal("removing the L2 should not speed the machine up")
	}

	// Setting both the deprecated L2Geom and Levels is rejected.
	both := Default("m88ksim")
	both.L2Geom = geometry.Geometry{SizeBytes: 512 << 10, Assoc: 4, BlockBytes: 64, SubarrayBytes: 4 << 10}
	if _, err := Run(both); err == nil {
		t.Fatal("config with both Levels and L2Geom accepted")
	}
}

// TestLegacyL2GeomStillRuns: the deprecated single-field spelling keeps
// working and produces the identical simulation.
func TestLegacyL2GeomStillRuns(t *testing.T) {
	modern := Default("gcc")
	modern.Instructions = 100_000

	legacy := modern
	legacy.Levels = nil
	legacy.L2Geom = modern.Hierarchy()[0].Geom

	a, err := Run(modern)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Cycles != b.CPU.Cycles || a.Energy.TotalPJ() != b.Energy.TotalPJ() {
		t.Fatalf("spellings diverge: %+v vs %+v", a.CPU, b.CPU)
	}
}
