package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"resizecache/internal/geometry"
)

// Key is a content-addressed fingerprint of a Config: two Configs that
// describe the same simulation (after Canonical normalization) hash to
// the same Key, and any semantically meaningful field difference yields
// a different Key. Keys index the run-orchestration layer's memoized
// result store (internal/runner) and its on-disk resume files, so the
// encoding below is versioned: bump keyVersion whenever Config gains a
// field or an existing field changes meaning, which invalidates stale
// persisted results instead of silently aliasing them.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk store's map key).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// keyVersion tags the fingerprint encoding; see Key. Version 2
// introduced the hierarchy-as-data encoding: the full Levels list is
// fingerprinted (count plus every LevelSpec field) where version 1
// encoded a bare L2 geometry, so v1 stores invalidate cleanly — their
// keys can never alias a v2 config. Version 3 added the sampling spec
// (warmup/detailed/fast-forward instruction counts) to both Key and
// FrontKey for the interval-sampled execution mode.
const keyVersion = 3

// Canonical returns the config with semantically inert fields zeroed
// and the hierarchy in normal form, so that configs describing
// identical simulations fingerprint identically:
//
//   - policy parameters not read by the configured policy kind (a static
//     policy ignores the dynamic controller's knobs and vice versa), at
//     every level of the hierarchy;
//   - d-cache MSHRs under the in-order engine, which forces a blocking
//     d-cache regardless of the configured entry count;
//   - the deprecated L2Geom, folded into its equivalent one-level
//     Levels spec (see Hierarchy), so both spellings share a key.
//
// Run never inspects the zeroed fields, so Canonical is behaviour
// preserving by construction.
func (c Config) Canonical() Config {
	c.DCache.Policy = c.DCache.Policy.canonical()
	c.ICache.Policy = c.ICache.Policy.canonical()
	if c.Engine == InOrder {
		c.MSHREntries = 0
	}
	// A config that sets both Levels and L2Geom is invalid (Run rejects
	// it); keep the conflicting L2Geom so its fingerprint can never
	// alias the valid Levels-only config — otherwise a warm memo/store
	// would serve the valid config's result where the cold path errors.
	conflict := len(c.Levels) > 0 && c.L2Geom != (geometry.Geometry{})
	levels := c.Hierarchy()
	if len(levels) > 0 {
		canon := make([]LevelSpec, len(levels))
		for i, l := range levels {
			l.Policy = l.Policy.canonical()
			canon[i] = l
		}
		c.Levels = canon
	} else {
		c.Levels = nil
	}
	if !conflict {
		c.L2Geom = geometry.Geometry{}
	}
	return c
}

// canonical zeroes the PolicySpec fields the policy kind does not read.
func (p PolicySpec) canonical() PolicySpec {
	switch p.Kind {
	case PolicyStatic:
		return PolicySpec{Kind: PolicyStatic, StaticIndex: p.StaticIndex}
	case PolicyDynamic:
		p.StaticIndex = 0
		return p
	default:
		return PolicySpec{}
	}
}

// Key returns the canonical fingerprint of the config.
func (c Config) Key() Key {
	c = c.Canonical()
	h := sha256.New()
	w := keyWriter{h: h}
	w.u64(keyVersion)
	w.str(c.Benchmark)
	w.u64(c.Instructions)
	w.u64(uint64(c.Engine))
	// CPU pipeline.
	w.i(c.CPU.Width)
	w.i(c.CPU.ROBEntries)
	w.i(c.CPU.LSQEntries)
	w.u64(c.CPU.DecodeLatency)
	w.u64(c.CPU.MispredictPenalty)
	// L1s and the shared hierarchy (Canonical already folded L2Geom in).
	w.cacheSpec(c.DCache)
	w.cacheSpec(c.ICache)
	w.i(len(c.Levels))
	for _, l := range c.Levels {
		w.cacheSpec(l.CacheSpec)
		w.u64(uint64(l.Precharge))
		w.i(l.MSHREntries)
		w.i(l.WritebackEntries)
	}
	// All zeros for every valid config; non-zero only for the invalid
	// Levels+L2Geom conflict, whose cold-path error must memoize under
	// its own key (see Canonical).
	w.geometry(c.L2Geom.SizeBytes, c.L2Geom.Assoc, c.L2Geom.BlockBytes, c.L2Geom.SubarrayBytes)
	w.i(c.MSHREntries)
	w.i(c.WritebackEntries)
	// Sampled execution (all zero for fully detailed runs; a partial spec
	// is invalid but keeps its own fingerprint so the cold-path error
	// memoizes under its own key, like the Levels+L2Geom conflict).
	w.u64(c.Sampling.WarmupInstructions)
	w.u64(c.Sampling.DetailedInstructions)
	w.u64(c.Sampling.FastForwardInstructions)
	w.u64(c.Sampling.SkipInstructions)
	// Energy models.
	w.f64(c.Energy.PrechargePJPerBit)
	w.f64(c.Energy.BitlinePJPerBit)
	w.f64(c.Energy.WordlinePJPerBit)
	w.f64(c.Energy.SensePJPerBit)
	w.f64(c.Energy.DecodePJPerSubarray)
	w.f64(c.Energy.ComparePJPerBit)
	w.f64(c.Energy.OutputPJPerBit)
	w.f64(c.Energy.ClockPJPerSubarray)
	w.f64(c.Energy.LeakagePJPerBytePerCycle)
	w.f64(c.Core.DecodePJ)
	w.f64(c.Core.ROBWritePJ)
	w.f64(c.Core.LSQWritePJ)
	w.f64(c.Core.RegReadPJ)
	w.f64(c.Core.RegWritePJ)
	w.f64(c.Core.IntALUPJ)
	w.f64(c.Core.FPALUPJ)
	w.f64(c.Core.BpredPJ)
	w.f64(c.Core.BTBPJ)
	w.f64(c.Core.RASPJ)
	w.f64(c.Core.ResultBusPJ)
	w.f64(c.Core.ClockPJ)
	var k Key
	h.Sum(k[:0])
	return k
}

// FrontKey fingerprints the config's shared simulation front-end: the
// projection of the config that determines workload generation and the
// engine's functional stepping (benchmark, instruction budget, engine
// kind, the full pipeline shape, and the sampling window schedule). Two
// configs with equal FrontKeys drive bit-identical functional streams
// through identical window boundaries and may therefore run as one gang
// (RunGang); everything outside the projection — cache geometries,
// resizing organizations and policies, hierarchy depth, MSHRs, energy
// models — is per-member state a gang evaluates independently.
func (c Config) FrontKey() Key {
	return NewKeyBuilder("sim.front").
		Str(c.Benchmark).
		U64(c.Instructions).
		U64(uint64(c.Engine)).
		Int(c.CPU.Width).
		Int(c.CPU.ROBEntries).
		Int(c.CPU.LSQEntries).
		U64(c.CPU.DecodeLatency).
		U64(c.CPU.MispredictPenalty).
		U64(c.Sampling.WarmupInstructions).
		U64(c.Sampling.DetailedInstructions).
		U64(c.Sampling.FastForwardInstructions).
		U64(c.Sampling.SkipInstructions).
		Sum()
}

// KeyBuilder accumulates explicitly ordered fields into a
// content-addressed fingerprint with the same encoding rules as
// Config.Key (fixed-width integers, length-prefixed strings, the shared
// keyVersion prefix). Higher layers use it to fingerprint values
// *derived from* configs — most prominently sweep-level artifacts in
// the run-orchestration layer, keyed by the fingerprints of every
// config the sweep would run — so one versioning scheme invalidates
// both per-config results and derived artifacts together.
//
// A builder is single-use: construct with NewKeyBuilder, append fields,
// call Sum once.
type KeyBuilder struct {
	h hash.Hash
	w keyWriter
}

// NewKeyBuilder starts a fingerprint in a named domain; distinct
// domains never collide even over identical field sequences.
func NewKeyBuilder(domain string) *KeyBuilder {
	h := sha256.New()
	b := &KeyBuilder{h: h, w: keyWriter{h: h}}
	b.w.u64(keyVersion)
	b.w.str(domain)
	return b
}

// U64 appends an unsigned integer field.
func (b *KeyBuilder) U64(v uint64) *KeyBuilder { b.w.u64(v); return b }

// Int appends a signed integer field.
func (b *KeyBuilder) Int(v int) *KeyBuilder { b.w.i(v); return b }

// Str appends a string field (length-prefixed; never aliases).
func (b *KeyBuilder) Str(s string) *KeyBuilder { b.w.str(s); return b }

// RawKey appends another fingerprint (e.g. a Config.Key) as a field.
func (b *KeyBuilder) RawKey(k Key) *KeyBuilder {
	b.w.u64(uint64(len(k)))
	b.h.Write(k[:])
	return b
}

// Sum finalizes the fingerprint.
func (b *KeyBuilder) Sum() Key {
	var k Key
	b.h.Sum(k[:0])
	return k
}

// keyWriter streams fixed-width, field-order-stable encodings into the
// hash. Strings are length-prefixed so adjacent fields cannot alias.
type keyWriter struct {
	h hash.Hash
}

func (w keyWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.h.Write(b[:])
}

func (w keyWriter) i(v int) { w.u64(uint64(int64(v))) }

func (w keyWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w keyWriter) b(v bool) {
	if v {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w keyWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

// cacheSpec encodes one cache spec (an L1 or a shared level's core).
func (w keyWriter) cacheSpec(s CacheSpec) {
	w.geometry(s.Geom.SizeBytes, s.Geom.Assoc, s.Geom.BlockBytes, s.Geom.SubarrayBytes)
	w.u64(uint64(s.Org))
	w.u64(uint64(s.Policy.Kind))
	w.i(s.Policy.StaticIndex)
	w.u64(s.Policy.Interval)
	w.u64(s.Policy.MissBound)
	w.i(s.Policy.SizeBoundBytes)
	w.i(s.Policy.UpsizeHoldIntervals)
	w.b(s.AblationFullPrecharge)
	w.b(s.AblationFreeFlush)
}

func (w keyWriter) geometry(size, assoc, block, subarray int) {
	w.i(size)
	w.i(assoc)
	w.i(block)
	w.i(subarray)
}
