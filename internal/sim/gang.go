package sim

import (
	"fmt"

	"resizecache/internal/bpred"
	"resizecache/internal/cpu"
	"resizecache/internal/workload"
)

// gangChunk bounds how many machines one engine pass drives. Chunking
// keeps a huge gang's per-instruction member loop within a working set
// the data caches like; the chunks share one generated stream through a
// workload.Tee, so generation still happens once per gang. Sequential
// chunks make the tee buffer the full stream for the later chunks —
// memory proportional to the instruction budget — which is the right
// trade only past a healthy chunk size; runner-built gangs stay at or
// below the configured gang size (default 8) and never chunk.
const gangChunk = 32

// RunGang executes N simulations in one workload+engine pass. All
// configs must share a simulation front-end — equal FrontKeys: same
// benchmark, instruction budget, engine kind, and pipeline shape —
// because the gang evaluates the shared functional stream once and fans
// each event out to every member's private memory system. Cache
// geometries, resizing organizations and policies, hierarchy depth,
// MSHRs, and energy models may all differ per member.
//
// Each member's Result is bit-identical to Run on the same config
// (TestGangMatchesGolden pins this against the golden fixtures); a gang
// of one degenerates to exactly Run.
func RunGang(cfgs []Config) ([]Result, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	prof, err := validated(cfgs[0])
	if err != nil {
		return nil, err
	}
	front := cfgs[0].FrontKey()
	for i, cfg := range cfgs[1:] {
		if _, err := validated(cfg); err != nil {
			return nil, err
		}
		if cfg.FrontKey() != front {
			return nil, fmt.Errorf(
				"sim: gang member %d front-end mismatch: %s/%d instr/%s/%+v vs member 0 %s/%d instr/%s/%+v",
				i+1, cfg.Benchmark, cfg.Instructions, cfg.Engine, cfg.CPU,
				cfgs[0].Benchmark, cfgs[0].Instructions, cfgs[0].Engine, cfgs[0].CPU)
		}
	}

	machines := make([]*machine, len(cfgs))
	members := make([]cpu.GangMember, len(cfgs))
	for i, cfg := range cfgs {
		m, err := buildMachine(cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: gang member %d: %w", i, err)
		}
		machines[i] = m
		members[i] = cpu.GangMember{IC: m.ic.level, DC: m.dc.level}
	}

	out := make([]Result, len(cfgs))
	run := func(members []cpu.GangMember, src workload.Source) ([]cpu.Result, error) {
		if cfgs[0].Engine == InOrder {
			return cpu.RunGangInOrder(cfgs[0].CPU, bpred.NewDefault(), members, src, cfgs[0].Instructions)
		}
		return cpu.RunGangOutOfOrder(cfgs[0].CPU, bpred.NewDefault(), members, src, cfgs[0].Instructions)
	}

	if len(cfgs) <= gangChunk {
		results, err := run(members, workload.NewGenerator(prof))
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = machines[i].finish(cfgs[i], results[i])
		}
		return out, nil
	}

	// Oversized gang: one generated stream feeds every chunk through a
	// tee. Each chunk's engine rebuilds the functional front-end state
	// (predictor, BTB, RAS) from the identical stream, so results stay
	// bit-identical to the unchunked pass.
	chunks := (len(cfgs) + gangChunk - 1) / gangChunk
	tee := workload.NewTee(workload.NewGenerator(prof), chunks)
	for c := 0; c < chunks; c++ {
		lo := c * gangChunk
		hi := lo + gangChunk
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		results, err := run(members[lo:hi], tee.Source(c))
		if err != nil {
			return nil, err
		}
		for i, r := range results {
			out[lo+i] = machines[lo+i].finish(cfgs[lo+i], r)
		}
	}
	return out, nil
}
