package sim

import (
	"fmt"

	"resizecache/internal/bpred"
	"resizecache/internal/cpu"
	"resizecache/internal/workload"
)

// gangChunk bounds how many machines one engine pass drives. Chunking
// keeps a huge gang's per-instruction member loop within a working set
// the data caches like; the chunks share one generated stream through a
// workload.Tee, so generation still happens once per gang. Sequential
// chunks make the tee buffer the full stream for the later chunks —
// memory proportional to the instruction budget — which is the right
// trade only past a healthy chunk size; runner-built gangs stay at or
// below the configured gang size (default 8) and never chunk.
const gangChunk = 32

// RunGang executes N simulations in one workload+engine pass. All
// configs must share a simulation front-end — equal FrontKeys: same
// benchmark, instruction budget, engine kind, pipeline shape, and
// sampling schedule — because the gang evaluates the shared functional
// stream once and fans each event out to every member's private memory
// system. Cache geometries, resizing organizations and policies,
// hierarchy depth, MSHRs, and energy models may all differ per member.
//
// Each member's Result is bit-identical to Run on the same config
// (TestGangMatchesGolden pins this against the golden fixtures); a gang
// of one degenerates to exactly Run.
func RunGang(cfgs []Config) ([]Result, error) {
	out, _, err := RunGangWithCheckpoints(cfgs, nil)
	return out, err
}

// RunGangWithCheckpoints is RunGang against an optional warmup
// checkpoint store (nil behaves exactly like RunGang); see
// RunWithCheckpoints for the checkpoint semantics. A sampled gang has
// one shared warmup prefix, so one WarmupStats covers every member.
func RunGangWithCheckpoints(cfgs []Config, cs CheckpointStore) ([]Result, WarmupStats, error) {
	if len(cfgs) == 0 {
		return nil, WarmupStats{}, nil
	}
	prof, err := validated(cfgs[0])
	if err != nil {
		return nil, WarmupStats{}, err
	}
	front := cfgs[0].FrontKey()
	for i, cfg := range cfgs[1:] {
		if _, err := validated(cfg); err != nil {
			return nil, WarmupStats{}, err
		}
		if cfg.FrontKey() != front {
			return nil, WarmupStats{}, fmt.Errorf(
				"sim: gang member %d front-end mismatch: %s/%d instr/%s/%+v/%+v vs member 0 %s/%d instr/%s/%+v/%+v",
				i+1, cfg.Benchmark, cfg.Instructions, cfg.Engine, cfg.CPU, cfg.Sampling,
				cfgs[0].Benchmark, cfgs[0].Instructions, cfgs[0].Engine, cfgs[0].CPU, cfgs[0].Sampling)
		}
	}

	machines := make([]*machine, len(cfgs))
	members := make([]cpu.GangMember, len(cfgs))
	for i, cfg := range cfgs {
		m, err := buildMachine(cfg)
		if err != nil {
			return nil, WarmupStats{}, fmt.Errorf("sim: gang member %d: %w", i, err)
		}
		machines[i] = m
		members[i] = cpu.GangMember{IC: m.ic.level, DC: m.dc.level}
	}

	if cfgs[0].Sampling.Enabled() {
		return runSampledGang(cfgs, prof, machines, members, cs)
	}

	out := make([]Result, len(cfgs))
	run := func(members []cpu.GangMember, src workload.Source) ([]cpu.Result, error) {
		if cfgs[0].Engine == InOrder {
			return cpu.RunGangInOrder(cfgs[0].CPU, bpred.NewDefault(), members, src, cfgs[0].Instructions)
		}
		return cpu.RunGangOutOfOrder(cfgs[0].CPU, bpred.NewDefault(), members, src, cfgs[0].Instructions)
	}

	if len(cfgs) <= gangChunk {
		results, err := run(members, workload.NewGenerator(prof))
		if err != nil {
			return nil, WarmupStats{}, err
		}
		for i := range out {
			out[i] = machines[i].finish(cfgs[i], results[i])
		}
		return out, WarmupStats{}, nil
	}

	// Oversized gang: one generated stream feeds every chunk through a
	// tee. Each chunk's engine rebuilds the functional front-end state
	// (predictor, BTB, RAS) from the identical stream, so results stay
	// bit-identical to the unchunked pass.
	chunks := (len(cfgs) + gangChunk - 1) / gangChunk
	tee := workload.NewTee(workload.NewGenerator(prof), chunks)
	for c := 0; c < chunks; c++ {
		lo := c * gangChunk
		hi := min(lo+gangChunk, len(cfgs))
		results, err := run(members[lo:hi], tee.Source(c))
		if err != nil {
			return nil, WarmupStats{}, err
		}
		for i, r := range results {
			out[lo+i] = machines[lo+i].finish(cfgs[lo+i], r)
		}
	}
	return out, WarmupStats{}, nil
}

// gangEngine is the window-capable gang surface runSampledGang drives;
// cpu.GangOutOfOrder and cpu.GangInOrder both implement it.
type gangEngine interface {
	RunWindow(src workload.Source, maxInstr uint64, base []uint64) []cpu.Result
	FastForward(src workload.Source, maxInstr uint64) uint64
	frontEndHolder
}

// runSampledGang is the sampled counterpart of the gang paths above.
// Unlike the detailed chunked path, every chunk drives its own generator
// rather than a tee: generation is deterministic, so the chunks see
// bit-identical streams and window boundaries anyway, and an owned
// generator is what lets each chunk Skip the inter-window gaps in O(1) —
// a tee would have to buffer or replay the skipped region. Chunk 0's
// warmup populates the checkpoint store (when one is provided), so later
// chunks restore it instead of re-stepping the prefix.
func runSampledGang(cfgs []Config, prof *workload.Profile, machines []*machine, members []cpu.GangMember, cs CheckpointStore) ([]Result, WarmupStats, error) {
	cfg0 := cfgs[0]
	spec := cfg0.Sampling
	var ws WarmupStats

	out := make([]Result, len(cfgs))
	chunks := (len(cfgs) + gangChunk - 1) / gangChunk
	for c := 0; c < chunks; c++ {
		lo := c * gangChunk
		hi := min(lo+gangChunk, len(cfgs))
		var (
			eng gangEngine
			err error
		)
		if cfg0.Engine == InOrder {
			eng, err = cpu.NewGangInOrder(cfg0.CPU, bpred.NewDefault(), members[lo:hi])
		} else {
			eng, err = cpu.NewGangOutOfOrder(cfg0.CPU, bpred.NewDefault(), members[lo:hi])
		}
		if err != nil {
			return nil, ws, err
		}

		gen := workload.NewGenerator(prof)
		var consumed uint64
		if c == 0 {
			consumed = warmupWithCheckpoint(cfg0, eng, gen, cs, &ws)
		} else {
			// Later chunks warm through the store chunk 0 just populated
			// (or re-step the prefix identically when there is none);
			// their stats are the gang's internal traffic, not the
			// caller's.
			var chunkWS WarmupStats
			consumed = warmupWithCheckpoint(cfg0, eng, gen, cs, &chunkWS)
		}

		accs := make([]windowAccum, hi-lo)
		for i := range accs {
			accs[i].m = machines[lo+i]
		}
		base := make([]uint64, hi-lo)
		total := consumed
		for total < cfg0.Instructions {
			rs := eng.RunWindow(gen, min(spec.DetailedInstructions, cfg0.Instructions-total), base)
			if rs[0].Instructions == 0 {
				break // stream exhausted
			}
			total += rs[0].Instructions
			for i := range accs {
				accs[i].observe(cfgs[lo+i], rs[i])
				base[i] = rs[i].Cycles
			}
			if total >= cfg0.Instructions {
				break
			}
			if sk := min(spec.SkipInstructions, cfg0.Instructions-total); sk > 0 {
				n := gen.Skip(sk)
				total += n
				if n < sk {
					break // stream exhausted
				}
			}
			ff := min(spec.FastForwardInstructions, cfg0.Instructions-total)
			n := eng.FastForward(gen, ff)
			total += n
			if n < ff {
				break // stream exhausted
			}
		}
		for i := range accs {
			res, err := accs[i].finish(cfgs[lo+i], total, consumed)
			if err != nil {
				return nil, ws, err
			}
			out[lo+i] = res
		}
	}
	return out, ws, nil
}
