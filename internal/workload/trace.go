package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace file format: a compact binary encoding of an event stream so
// generated workloads can be exported (cmd/tracegen), inspected, or
// replayed without the generator.
//
// Layout (little-endian):
//
//	magic   [4]byte  "RCT1"
//	nameLen uint16   benchmark name length
//	name    []byte
//	count   uint64   number of events
//	events  count × record
//
// record:
//
//	pc    uint64
//	addr  uint64
//	kind  uint8
//	flags uint8 (bit0 = taken)
//	dep1  uint16
//	dep2  uint16
//	lat   uint8
//	pad   uint8
const traceMagic = "RCT1"

// TraceWriter streams events to w.
type TraceWriter struct {
	w     *bufio.Writer
	count uint64
	done  bool
}

// NewTraceWriter writes the header for a trace of count events.
func NewTraceWriter(w io.Writer, name string, count uint64) (*TraceWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	if len(name) > 0xFFFF {
		return nil, errors.New("workload: trace name too long")
	}
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], count)
	if _, err := bw.Write(cnt[:]); err != nil {
		return nil, err
	}
	return &TraceWriter{w: bw, count: count}, nil
}

// Write appends one event.
func (t *TraceWriter) Write(ev *Event) error {
	if t.done {
		return errors.New("workload: trace already complete")
	}
	var rec [24]byte
	binary.LittleEndian.PutUint64(rec[0:], ev.PC)
	binary.LittleEndian.PutUint64(rec[8:], ev.Addr)
	rec[16] = byte(ev.Kind)
	if ev.Taken {
		rec[17] = 1
	}
	binary.LittleEndian.PutUint16(rec[18:], uint16(ev.Dep1))
	binary.LittleEndian.PutUint16(rec[20:], uint16(ev.Dep2))
	rec[22] = ev.Lat
	if _, err := t.w.Write(rec[:]); err != nil {
		return err
	}
	t.count--
	if t.count == 0 {
		t.done = true
	}
	return nil
}

// Flush completes the trace; it errors if fewer events were written than
// declared.
func (t *TraceWriter) Flush() error {
	if !t.done {
		return fmt.Errorf("workload: trace incomplete, %d events missing", t.count)
	}
	return t.w.Flush()
}

// TraceReader replays a trace file.
type TraceReader struct {
	r         *bufio.Reader
	Name      string
	Count     uint64
	remaining uint64
}

// NewTraceReader parses the header.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: reading trace magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", magic)
	}
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	name := make([]byte, binary.LittleEndian.Uint16(hdr[:]))
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	return &TraceReader{r: br, Name: string(name), Count: n, remaining: n}, nil
}

// Next fills ev with the next record; returns false at end of trace.
func (t *TraceReader) Next(ev *Event) (bool, error) {
	if t.remaining == 0 {
		return false, nil
	}
	var rec [24]byte
	if _, err := io.ReadFull(t.r, rec[:]); err != nil {
		return false, fmt.Errorf("workload: truncated trace: %w", err)
	}
	ev.PC = binary.LittleEndian.Uint64(rec[0:])
	ev.Addr = binary.LittleEndian.Uint64(rec[8:])
	ev.Kind = Kind(rec[16])
	ev.Taken = rec[17]&1 == 1
	ev.Dep1 = int32(binary.LittleEndian.Uint16(rec[18:]))
	ev.Dep2 = int32(binary.LittleEndian.Uint16(rec[20:]))
	ev.Lat = rec[22]
	t.remaining--
	return true, nil
}

// Source is anything that yields an event stream: a live Generator or a
// TraceReader wrapped by ReplaySource.
type Source interface {
	Next(ev *Event) bool
}

// ReplaySource adapts TraceReader to Source, surfacing I/O errors via Err.
type ReplaySource struct {
	R   *TraceReader
	err error
}

// Next implements Source.
func (s *ReplaySource) Next(ev *Event) bool {
	ok, err := s.R.Next(ev)
	if err != nil {
		s.err = err
		return false
	}
	return ok
}

// Err returns the first I/O error encountered, if any.
func (s *ReplaySource) Err() error { return s.err }
