package workload

import (
	"fmt"
	"sort"
)

// Benchmark profiles.
//
// Each profile is parameterized from the per-benchmark behaviour the
// paper reports in Section 4 (which applications are capacity-bound vs.
// conflict-bound, which working sets fit where, which vary over time,
// and which exhibit "unavailable-size emulation"). Working-set levels
// are expressed in 32-byte blocks: 128 blocks = 4K, 256 = 8K, 512 = 16K,
// 768 = 24K, 1024 = 32K.
//
// The paper's qualitative facts encoded here:
//
//	d-cache (32K 4-way study, Fig. 5): apsi, gcc, ijpeg, su2cor, vortex,
//	vpr are conflict-sensitive (selective-sets wins by keeping ways);
//	ammp, applu, m88ksim need only small caches (sets' smaller minimum
//	wins); compress needs ~20K — granularity between 16K and 32K that
//	only selective-ways offers; swim's working set barely fits 32K so
//	neither org downsizes; tomcatv downsizes equally but suffers extra
//	conflict misses under selective-ways.
//
//	d-cache dynamic behaviour (Fig. 7): constant — ammp, applu, m88ksim,
//	tomcatv; varying — compress, gcc, vortex, vpr; periodic — su2cor;
//	emulation — apsi, compress, ijpeg, swim.
//
//	i-cache (Fig. 5b, Fig. 8): small working sets — ammp, compress,
//	ijpeg, m88ksim, swim; associativity-bound — apsi, su2cor, vpr;
//	applu reaches the same size under both orgs (ways then cheaper per
//	access); gcc and tomcatv exceed 32K (no downsizing; emulation under
//	dynamic); periodic i-working-sets — applu, apsi, ijpeg; emulation —
//	gcc, tomcatv, vortex, vpr.

var registry = map[string]*Profile{}

func register(p *Profile) {
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate profile %q", p.Name))
	}
	registry[p.Name] = p
}

// Names returns all registered benchmark names, sorted (the paper's
// alphabetical ordering in Figures 5 and 7-9).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry { //simlint:ordered collected then sorted before return
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the profile for a benchmark name.
func Get(name string) (*Profile, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return p, nil
}

// MustGet is Get for known-good names in examples and benches.
func MustGet(name string) *Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

func init() {
	// ---- SPEC2000 ----

	register(&Profile{
		// ammp: molecular dynamics; tiny hot data and code, constant.
		Name:     "ammp",
		LoadFrac: 0.30, StoreFrac: 0.09, BranchFrac: 0.08, FloatFrac: 0.28,
		DepMeanDist: 5.5, BranchRandFrac: 0.05,
		Phases: []Phase{{
			Instructions: 1 << 40, // single phase, constant behaviour
			DLevels:      []WSLevel{{Blocks: 64, Frac: 0.85}, {Blocks: 38, Frac: 0.15}},
			ILevels:      []WSLevel{{Blocks: 56, Frac: 1.0}},
			DCold:        0.004,
		}},
	})

	register(&Profile{
		// vortex: OO database; varying data working set, i-stream needs
		// ~20K (between 16K and 32K).
		Name:     "vortex",
		LoadFrac: 0.27, StoreFrac: 0.15, BranchFrac: 0.16, FloatFrac: 0,
		DepMeanDist: 3.2, BranchRandFrac: 0.12,
		Phases: []Phase{
			{
				Instructions: 500_000,
				DLevels:      []WSLevel{{Blocks: 140, Frac: 0.62}, {Blocks: 290, Frac: 0.38}},
				ILevels:      []WSLevel{{Blocks: 620, Frac: 0.99}, {Blocks: 900, Frac: 0.01}},
				DCold:        0.010,
				DConflict:    ConflictSpec{Ways: 3, Frac: 0.03},
			},
			{
				Instructions: 400_000,
				DLevels:      []WSLevel{{Blocks: 90, Frac: 0.80}, {Blocks: 80, Frac: 0.20}},
				ILevels:      []WSLevel{{Blocks: 620, Frac: 0.99}, {Blocks: 900, Frac: 0.01}},
				DCold:        0.004,
				DConflict:    ConflictSpec{Ways: 3, Frac: 0.03},
			},
			{
				Instructions: 500_000,
				DLevels:      []WSLevel{{Blocks: 200, Frac: 0.55}, {Blocks: 430, Frac: 0.45}},
				ILevels:      []WSLevel{{Blocks: 620, Frac: 0.99}, {Blocks: 900, Frac: 0.01}},
				DCold:        0.028,
				DConflict:    ConflictSpec{Ways: 3, Frac: 0.03},
			},
		},
		Periodic: true,
	})

	register(&Profile{
		// vpr: place & route; conflict-bound data, medium i-stream with
		// conflicts.
		Name:     "vpr",
		LoadFrac: 0.28, StoreFrac: 0.11, BranchFrac: 0.15, FloatFrac: 0.05,
		DepMeanDist: 3.0, BranchRandFrac: 0.22,
		Phases: []Phase{
			{
				Instructions: 600_000,
				DLevels:      []WSLevel{{Blocks: 130, Frac: 0.70}, {Blocks: 290, Frac: 0.30}},
				ILevels:      []WSLevel{{Blocks: 200, Frac: 1.0}},
				DCold:        0.006,
				DConflict:    ConflictSpec{Ways: 3, Frac: 0.07},
				IConflict:    ConflictSpec{Ways: 3, Frac: 0.04},
			},
			{
				Instructions: 500_000,
				DLevels:      []WSLevel{{Blocks: 110, Frac: 0.62}, {Blocks: 380, Frac: 0.38}},
				ILevels:      []WSLevel{{Blocks: 230, Frac: 1.0}},
				DCold:        0.006,
				DConflict:    ConflictSpec{Ways: 3, Frac: 0.07},
				IConflict:    ConflictSpec{Ways: 3, Frac: 0.04},
			},
		},
		Periodic: true,
	})

	// ---- SPEC95 ----

	register(&Profile{
		// applu: PDE solver; small constant data set, periodic i-stream.
		Name:     "applu",
		LoadFrac: 0.31, StoreFrac: 0.10, BranchFrac: 0.05, FloatFrac: 0.30,
		DepMeanDist: 6.5, BranchRandFrac: 0.03,
		Phases: []Phase{
			{
				Instructions: 450_000,
				DLevels:      []WSLevel{{Blocks: 64, Frac: 0.88}, {Blocks: 32, Frac: 0.12}},
				ILevels:      []WSLevel{{Blocks: 110, Frac: 1.0}},
				DCold:        0.004,
			},
			{
				Instructions: 350_000,
				DLevels:      []WSLevel{{Blocks: 64, Frac: 0.88}, {Blocks: 32, Frac: 0.12}},
				ILevels:      []WSLevel{{Blocks: 250, Frac: 1.0}},
				DCold:        0.004,
			},
		},
		Periodic: true,
	})

	register(&Profile{
		// apsi: mesoscale model; conflict-bound data sized between
		// offered points (emulation type), periodic conflict-bound
		// i-stream.
		Name:     "apsi",
		LoadFrac: 0.29, StoreFrac: 0.11, BranchFrac: 0.07, FloatFrac: 0.28,
		DepMeanDist: 5.5, BranchRandFrac: 0.06,
		Phases: []Phase{
			{
				Instructions: 500_000,
				DLevels:      []WSLevel{{Blocks: 170, Frac: 0.74}, {Blocks: 260, Frac: 0.26}},
				ILevels:      []WSLevel{{Blocks: 170, Frac: 1.0}},
				DCold:        0.005,
				DConflict:    ConflictSpec{Ways: 3, Frac: 0.06},
				IConflict:    ConflictSpec{Ways: 3, Frac: 0.05},
			},
			{
				Instructions: 400_000,
				DLevels:      []WSLevel{{Blocks: 150, Frac: 0.78}, {Blocks: 90, Frac: 0.22}},
				ILevels:      []WSLevel{{Blocks: 300, Frac: 1.0}},
				DCold:        0.003,
				DConflict:    ConflictSpec{Ways: 3, Frac: 0.06},
				IConflict:    ConflictSpec{Ways: 3, Frac: 0.05},
			},
		},
		Periodic: true,
	})

	register(&Profile{
		// compress: data set ~20K (between 16K and 32K: selective-ways'
		// 24K point wins; dynamic emulates); tiny i-stream; hard
		// branches; working set also varies.
		Name:     "compress",
		LoadFrac: 0.26, StoreFrac: 0.13, BranchFrac: 0.17, FloatFrac: 0,
		DepMeanDist: 2.6, BranchRandFrac: 0.30,
		Phases: []Phase{
			{
				Instructions: 600_000,
				DLevels:      []WSLevel{{Blocks: 110, Frac: 0.52}, {Blocks: 490, Frac: 0.48, RandFrac: 0.3}},
				ILevels:      []WSLevel{{Blocks: 62, Frac: 1.0}},
				DCold:        0.045,
			},
			{
				Instructions: 450_000,
				DLevels:      []WSLevel{{Blocks: 100, Frac: 0.60}, {Blocks: 350, Frac: 0.40, RandFrac: 0.3}},
				ILevels:      []WSLevel{{Blocks: 62, Frac: 1.0}},
				DCold:        0.005,
			},
		},
		Periodic: true,
	})

	register(&Profile{
		// gcc: compiler; strongly varying data set, i-stream > 32K so
		// the i-cache never downsizes statically (emulates dynamically).
		Name:     "gcc",
		LoadFrac: 0.25, StoreFrac: 0.14, BranchFrac: 0.19, FloatFrac: 0,
		DepMeanDist: 2.8, BranchRandFrac: 0.18,
		Phases: []Phase{
			{
				Instructions: 400_000,
				DLevels:      []WSLevel{{Blocks: 120, Frac: 0.66}, {Blocks: 260, Frac: 0.34}},
				ILevels: []WSLevel{{Blocks: 640, Frac: 0.58, RandFrac: 0.3},
					{Blocks: 1350, Frac: 0.42, RandFrac: 0.85}},
				DCold:     0.015,
				DConflict: ConflictSpec{Ways: 3, Frac: 0.08},
			},
			{
				Instructions: 450_000,
				DLevels:      []WSLevel{{Blocks: 170, Frac: 0.55}, {Blocks: 640, Frac: 0.45, RandFrac: 0.3}},
				ILevels: []WSLevel{{Blocks: 640, Frac: 0.58, RandFrac: 0.3},
					{Blocks: 1350, Frac: 0.42, RandFrac: 0.85}},
				DCold:     0.018,
				DConflict: ConflictSpec{Ways: 3, Frac: 0.08},
			},
			{
				Instructions: 350_000,
				DLevels:      []WSLevel{{Blocks: 140, Frac: 0.62}, {Blocks: 340, Frac: 0.38, RandFrac: 0.3}},
				ILevels: []WSLevel{{Blocks: 640, Frac: 0.58, RandFrac: 0.3},
					{Blocks: 1350, Frac: 0.42, RandFrac: 0.85}},
				DCold:     0.015,
				DConflict: ConflictSpec{Ways: 3, Frac: 0.08},
			},
		},
		Periodic: true,
	})

	register(&Profile{
		// ijpeg: image compression; data ~6K (between 4K and 8K —
		// emulation), conflict-tinged; small periodic i-stream.
		Name:     "ijpeg",
		LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.12, FloatFrac: 0.03,
		DepMeanDist: 3.8, BranchRandFrac: 0.08,
		Phases: []Phase{
			{
				Instructions: 550_000,
				DLevels:      []WSLevel{{Blocks: 90, Frac: 0.60}, {Blocks: 100, Frac: 0.40}},
				ILevels:      []WSLevel{{Blocks: 90, Frac: 1.0}},
				DCold:        0.008,
				DConflict:    ConflictSpec{Ways: 3, Frac: 0.05},
			},
			{
				Instructions: 400_000,
				DLevels:      []WSLevel{{Blocks: 50, Frac: 0.72}, {Blocks: 60, Frac: 0.28}},
				ILevels:      []WSLevel{{Blocks: 160, Frac: 1.0}},
				DCold:        0.008,
				DConflict:    ConflictSpec{Ways: 3, Frac: 0.05},
			},
		},
		Periodic: true,
	})

	register(&Profile{
		// m88ksim: CPU simulator; tiny constant working sets, very
		// predictable branches.
		Name:     "m88ksim",
		LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.18, FloatFrac: 0,
		DepMeanDist: 2.8, BranchRandFrac: 0.05,
		Phases: []Phase{{
			Instructions: 1 << 40,
			DLevels:      []WSLevel{{Blocks: 60, Frac: 0.88}, {Blocks: 50, Frac: 0.12}},
			ILevels:      []WSLevel{{Blocks: 160, Frac: 1.0}},
			DCold:        0.003,
		}},
	})

	register(&Profile{
		// su2cor: quantum physics; periodic data phases (execution
		// phases repeat), conflict-bound both sides.
		Name:     "su2cor",
		LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.06, FloatFrac: 0.30,
		DepMeanDist: 6.0, BranchRandFrac: 0.04,
		Phases: []Phase{
			{
				Instructions: 450_000,
				DLevels:      []WSLevel{{Blocks: 100, Frac: 0.85}, {Blocks: 60, Frac: 0.15}},
				ILevels:      []WSLevel{{Blocks: 180, Frac: 1.0}},
				DCold:        0.003,
				DConflict:    ConflictSpec{Ways: 3, Frac: 0.03},
				IConflict:    ConflictSpec{Ways: 3, Frac: 0.04},
			},
			{
				Instructions: 450_000,
				DLevels:      []WSLevel{{Blocks: 560, Frac: 0.82}, {Blocks: 160, Frac: 0.18}},
				ILevels:      []WSLevel{{Blocks: 180, Frac: 1.0}},
				DCold:        0.022,
				DConflict:    ConflictSpec{Ways: 3, Frac: 0.03},
				IConflict:    ConflictSpec{Ways: 3, Frac: 0.04},
			},
		},
		Periodic: true,
	})

	register(&Profile{
		// swim: shallow water model; data set nearly fills 32K so any
		// downsizing floods misses; tiny i-stream.
		Name:     "swim",
		LoadFrac: 0.32, StoreFrac: 0.12, BranchFrac: 0.04, FloatFrac: 0.32,
		DepMeanDist: 7.0, BranchRandFrac: 0.02,
		Phases: []Phase{{
			Instructions: 1 << 40,
			DLevels: []WSLevel{{Blocks: 880, Frac: 0.90},
				{Blocks: 1400, Frac: 0.10, RandFrac: 0.6}},
			ILevels: []WSLevel{{Blocks: 64, Frac: 1.0}},
			DCold:   0.010,
		}},
	})

	register(&Profile{
		// tomcatv: vectorized mesh generation; data ~14K (downsizes to
		// 16K under both orgs, but losing ways costs conflict misses);
		// i-stream just over 32K.
		Name:     "tomcatv",
		LoadFrac: 0.31, StoreFrac: 0.11, BranchFrac: 0.05, FloatFrac: 0.30,
		DepMeanDist: 6.5, BranchRandFrac: 0.03,
		Phases: []Phase{{
			Instructions: 1 << 40,
			DLevels: []WSLevel{{Blocks: 420, Frac: 0.92},
				{Blocks: 120, Frac: 0.08, RandFrac: 0.4}},
			ILevels:   []WSLevel{{Blocks: 1150, Frac: 0.96, RandFrac: 0.8}, {Blocks: 400, Frac: 0.04}},
			DCold:     0.006,
			DConflict: ConflictSpec{Ways: 3, Frac: 0.08},
		}},
	})
}
