package workload

import (
	"testing"
)

// collect drains up to n events from a source.
func collect(src Source, n int) []Event {
	var out []Event
	var ev Event
	for len(out) < n && src.Next(&ev) {
		out = append(out, ev)
	}
	return out
}

// TestTeeConsumersSeeIdenticalStream: every consumer view yields exactly
// the stream a fresh generator produces, regardless of interleaving.
func TestTeeConsumersSeeIdenticalStream(t *testing.T) {
	const n = 2000
	want := collect(NewGenerator(MustGet("gcc")), n)

	interleavings := map[string]func(views []Source) [][]Event{
		// Lockstep round-robin: the gang engine's regime.
		"lockstep": func(views []Source) [][]Event {
			out := make([][]Event, len(views))
			var ev Event
			for i := 0; i < n; i++ {
				for c, v := range views {
					if !v.Next(&ev) {
						t.Fatalf("consumer %d exhausted at %d", c, i)
					}
					out[c] = append(out[c], ev)
				}
			}
			return out
		},
		// One consumer races ahead in bursts, forcing ring growth.
		"bursty": func(views []Source) [][]Event {
			out := make([][]Event, len(views))
			var ev Event
			for len(out[0]) < n {
				burst := 257
				if n-len(out[0]) < burst {
					burst = n - len(out[0])
				}
				for i := 0; i < burst; i++ {
					views[0].Next(&ev)
					out[0] = append(out[0], ev)
				}
				for c := 1; c < len(views); c++ {
					for len(out[c]) < len(out[0]) {
						views[c].Next(&ev)
						out[c] = append(out[c], ev)
					}
				}
			}
			return out
		},
		// Fully sequential: consumer 0 drains first, then the others
		// replay from the buffered window.
		"sequential": func(views []Source) [][]Event {
			out := make([][]Event, len(views))
			for c, v := range views {
				out[c] = collect(v, n)
			}
			return out
		},
	}

	for name, run := range interleavings {
		tee := NewTee(NewGenerator(MustGet("gcc")), 3)
		views := []Source{tee.Source(0), tee.Source(1), tee.Source(2)}
		got := run(views)
		for c := range got {
			if len(got[c]) != n {
				t.Fatalf("%s: consumer %d saw %d events, want %d", name, c, len(got[c]), n)
			}
			for i := range got[c] {
				if got[c][i] != want[i] {
					t.Fatalf("%s: consumer %d event %d = %+v, want %+v", name, c, i, got[c][i], want[i])
				}
			}
		}
	}
}

// TestTeeExhaustion: a finite source ends every consumer at the same
// event count, and a consumer that hits the end keeps reporting false.
func TestTeeExhaustion(t *testing.T) {
	const limit = 500
	tee := NewTee(&boundedSource{inner: NewGenerator(MustGet("vpr")), left: limit}, 2)
	a := collect(tee.Source(0), limit+100)
	b := collect(tee.Source(1), limit+100)
	if len(a) != limit || len(b) != limit {
		t.Fatalf("consumers saw %d/%d events, want %d each", len(a), len(b), limit)
	}
	var ev Event
	if tee.Source(0).Next(&ev) {
		t.Error("exhausted consumer yielded another event")
	}
}

// boundedSource truncates a source after left events.
type boundedSource struct {
	inner Source
	left  int
}

func (s *boundedSource) Next(ev *Event) bool {
	if s.left == 0 {
		return false
	}
	s.left--
	return s.inner.Next(ev)
}

// TestTeeLockstepDoesNotAllocate: the gang regime must stay within the
// initial ring — zero allocations once constructed.
func TestTeeLockstepDoesNotAllocate(t *testing.T) {
	tee := NewTee(NewGenerator(MustGet("gcc")), 4)
	views := make([]Source, 4)
	for i := range views {
		views[i] = tee.Source(i)
	}
	var ev Event
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 512; i++ {
			for _, v := range views {
				v.Next(&ev)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("lockstep tee allocated %.1f per run, want 0", allocs)
	}
}
