package workload

// rng is a xorshift64* PRNG: fast, allocation-free, and deterministic
// across runs — every benchmark profile seeds one from its name so whole
// experiments are exactly reproducible.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return rng{s: seed}
}

func (r *rng) next() uint64 {
	// Keep the state in a register across the three xorshift steps: one
	// load and one store instead of three read-modify-writes to memory.
	// This is the simulator's innermost arithmetic — every generated
	// instruction draws several times.
	s := r.s
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	r.s = s
	return s * 0x2545F4914F6CDD1D
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 {
	// next()>>11 < 2^53 always fits in an int64, so the signed conversion
	// yields the identical float64 while compiling to a single
	// instruction (the unsigned conversion needs a sign test and branch).
	return float64(int64(r.next()>>11)) / (1 << 53)
}

// intn returns a uniform int in [0,n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// seedFromString hashes a string into a 64-bit seed (FNV-1a).
func seedFromString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
