package workload

// rng is a xorshift64* PRNG: fast, allocation-free, and deterministic
// across runs — every benchmark profile seeds one from its name so whole
// experiments are exactly reproducible.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform int in [0,n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// seedFromString hashes a string into a 64-bit seed (FNV-1a).
func seedFromString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
