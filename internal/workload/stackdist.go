package workload

// ReuseProfiler measures LRU stack distances (reuse distances) of a
// block-address stream. A fully-associative LRU cache of capacity C
// hits exactly those accesses whose stack distance is < C, so the
// profile is the capacity-miss curve of a workload — the tool used to
// calibrate benchmark profiles against the behaviours the paper reports,
// exposed for users who want to add their own profiles.
type ReuseProfiler struct {
	blockBytes int
	maxTrack   int
	stack      []uint64
	// histogram[d] counts accesses with stack distance d (capped at
	// maxTrack); cold counts first-touch accesses.
	histogram []uint64
	cold      uint64
	total     uint64
}

// NewReuseProfiler tracks distances up to maxTrack distinct blocks.
func NewReuseProfiler(blockBytes, maxTrack int) *ReuseProfiler {
	if blockBytes <= 0 {
		blockBytes = 32
	}
	if maxTrack <= 0 {
		maxTrack = 4096
	}
	return &ReuseProfiler{
		blockBytes: blockBytes,
		maxTrack:   maxTrack,
		histogram:  make([]uint64, maxTrack+1),
	}
}

// Observe records one memory access.
func (r *ReuseProfiler) Observe(addr uint64) {
	r.total++
	blk := addr / uint64(r.blockBytes)
	for i, b := range r.stack {
		if b == blk {
			r.histogram[i]++
			copy(r.stack[1:i+1], r.stack[:i])
			r.stack[0] = blk
			return
		}
	}
	r.cold++
	r.stack = append([]uint64{blk}, r.stack...)
	if len(r.stack) > r.maxTrack {
		r.histogram[r.maxTrack] += 0 // distances beyond maxTrack are cold-equivalent
		r.stack = r.stack[:r.maxTrack]
	}
}

// Total returns the number of observed accesses.
func (r *ReuseProfiler) Total() uint64 { return r.total }

// ColdFraction returns the fraction of first-touch (or beyond-tracking)
// accesses.
func (r *ReuseProfiler) ColdFraction() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.cold) / float64(r.total)
}

// HitRatioAt returns the hit ratio of an ideal fully-associative LRU
// cache holding capacityBlocks blocks.
func (r *ReuseProfiler) HitRatioAt(capacityBlocks int) float64 {
	if r.total == 0 {
		return 0
	}
	if capacityBlocks > r.maxTrack {
		capacityBlocks = r.maxTrack
	}
	var hits uint64
	for d := 0; d < capacityBlocks; d++ {
		hits += r.histogram[d]
	}
	return float64(hits) / float64(r.total)
}

// MissCurve evaluates the miss ratio at each capacity (in blocks).
func (r *ReuseProfiler) MissCurve(capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = 1 - r.HitRatioAt(c)
	}
	return out
}

// ProfileDStream runs a profile's generator for n instructions and
// returns the reuse profile of its data stream.
func ProfileDStream(p *Profile, n uint64, maxTrack int) *ReuseProfiler {
	g := NewGenerator(p)
	r := NewReuseProfiler(blockBytes, maxTrack)
	var ev Event
	for i := uint64(0); i < n; i++ {
		if !g.Next(&ev) {
			break
		}
		if ev.Kind == KindLoad || ev.Kind == KindStore {
			r.Observe(ev.Addr)
		}
	}
	return r
}
