package workload

// Snapshot is the generator's complete mutable state at an instruction
// boundary. It contains only plain data (no pointers into the generator),
// so it can be serialized into a warmup checkpoint and restored into a
// fresh Generator built from the same Profile. The per-phase hoist tables
// are deliberately absent: they are a pure function of (profile,
// phaseIdx) and Restore rebuilds them without consuming RNG draws.
type Snapshot struct {
	RNG         uint64
	Instr       uint64
	PhaseIdx    int
	PhaseLeft   uint64
	Exhausted   bool
	DCursors    []int
	ICursor     int
	DConfCursor int
	IConfCursor int
	ColdCursor  uint64
	RunAddr     uint64
	RunLeft     int
	BrCounter   int
	CallDepth   int
}

// Snapshot captures the generator state. The returned value owns its
// slices (they do not alias generator storage).
func (g *Generator) Snapshot() Snapshot {
	return Snapshot{
		RNG:         g.r.s,
		Instr:       g.instr,
		PhaseIdx:    g.phaseIdx,
		PhaseLeft:   g.phaseLeft,
		Exhausted:   g.exhausted,
		DCursors:    append([]int(nil), g.dCursors...),
		ICursor:     g.iCursor,
		DConfCursor: g.dConfCursor,
		IConfCursor: g.iConfCursor,
		ColdCursor:  g.coldCursor,
		RunAddr:     g.runAddr,
		RunLeft:     g.runLeft,
		BrCounter:   g.brCounter,
		CallDepth:   g.callDepth,
	}
}

// Restore rewinds (or fast-forwards) the generator to a snapshot taken
// from a generator built over the same profile. After Restore the event
// stream continues exactly as it would have from the snapshot point.
func (g *Generator) Restore(s Snapshot) {
	g.r.s = s.RNG
	g.instr = s.Instr
	g.exhausted = s.Exhausted
	if !s.Exhausted {
		g.rebuildPhaseHoists(s.PhaseIdx)
	}
	g.phaseLeft = s.PhaseLeft
	g.dCursors = reuse(g.dCursors, len(s.DCursors))
	copy(g.dCursors, s.DCursors)
	g.iCursor = s.ICursor
	g.dConfCursor = s.DConfCursor
	g.iConfCursor = s.IConfCursor
	g.coldCursor = s.ColdCursor
	g.runAddr = s.RunAddr
	g.runLeft = s.RunLeft
	g.brCounter = s.BrCounter
	g.callDepth = s.CallDepth
}
