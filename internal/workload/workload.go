// Package workload synthesizes the reference streams that drive the
// simulator: one calibrated profile per SPEC95/SPEC2000 benchmark the
// paper evaluates (ammp, applu, apsi, compress, gcc, ijpeg, m88ksim,
// su2cor, swim, tomcatv, vortex, vpr).
//
// The paper's experiments are driven entirely by each benchmark's cache
// behaviour: the shape of its miss-ratio-versus-(size, associativity)
// surface, how that shape varies over time, and how much latency the
// pipeline can hide. Profiles therefore describe, per execution phase:
//
//   - a hierarchy of data working-set *levels* (blocks touched cyclically
//     with a given share of accesses) — capacity knees of the miss curve;
//   - a *conflict group* (blocks spaced 64K apart that collide in any
//     reasonable L1 indexing) whose residency requires associativity —
//     this is what makes an application "conflict-bound";
//   - the same two notions for the instruction stream; and
//   - instruction mix, dependency distances (ILP), and branch behaviour.
//
// The generator produces a deterministic instruction-by-instruction event
// stream; the caches under test then do all the real work. Nothing in the
// generator knows which cache configuration is being simulated.
package workload

// Kind classifies a generated instruction.
type Kind uint8

const (
	KindInt Kind = iota
	KindFloat
	KindLoad
	KindStore
	KindBranch
	// KindCall and KindReturn are unconditional control transfers
	// predicted via the return-address stack rather than the direction
	// predictor; the generator keeps them balanced around a bounded call
	// depth.
	KindCall
	KindReturn
)

// Event is one dynamic instruction.
type Event struct {
	PC    uint64
	Addr  uint64 // memory address for loads/stores
	Kind  Kind
	Taken bool  // branch outcome
	Dep1  int32 // distance in instructions to first producer (0 = none)
	Dep2  int32 // distance to second producer (0 = none)
	Lat   uint8 // execution latency in cycles
}

// WSLevel is one working-set level: Blocks cache blocks that receive
// Frac of the (non-cold, non-conflict) data accesses. Accesses walk the
// level cyclically (crisp capacity knee at Blocks) except that a RandFrac
// share jump uniformly within the level, which spreads reuse distances:
// a cache smaller than the level still captures part of the traffic.
// RandFrac near 1 models loosely-structured footprints (e.g. code or
// data slightly larger than the cache where each size step costs
// proportionally); RandFrac 0 models tight loop sweeps where any deficit
// misses everything.
type WSLevel struct {
	Blocks   int
	Frac     float64
	RandFrac float64
}

// ConflictSpec describes a conflict group: Ways blocks that map to the
// same set under any L1 indexing (64K stride), receiving Frac of
// accesses. Keeping them all resident requires associativity >= Ways.
type ConflictSpec struct {
	Ways int
	Frac float64
}

// Phase is one execution phase of a benchmark.
type Phase struct {
	// Instructions is the phase length.
	Instructions uint64
	// DLevels and ILevels describe data / instruction working sets.
	DLevels []WSLevel
	ILevels []WSLevel
	// DCold is the fraction of data accesses that touch fresh, never
	// reused blocks (compulsory misses).
	DCold float64
	// DConflict / IConflict add associativity-bound access streams.
	DConflict ConflictSpec
	IConflict ConflictSpec
}

// Profile is a complete benchmark description.
type Profile struct {
	Name string
	// Instruction mix (fractions of the dynamic stream).
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FloatFrac  float64
	// DepMeanDist is the mean register-dependence distance; larger means
	// more instruction-level parallelism for the out-of-order engine.
	DepMeanDist float64
	// BranchRandFrac is the fraction of branches with data-dependent
	// (unpredictable) outcomes; the rest are loop-style and biased.
	BranchRandFrac float64
	// Phases execute in order; if Periodic, the sequence repeats.
	Phases   []Phase
	Periodic bool
}

// TotalPhaseInstructions sums the phase lengths (one period).
func (p *Profile) TotalPhaseInstructions() uint64 {
	var n uint64
	for _, ph := range p.Phases {
		n += ph.Instructions
	}
	return n
}

// Generator produces the deterministic event stream for a profile.
type Generator struct {
	prof *Profile
	// r is embedded by value: every generated instruction draws from it
	// several times, and an inline field keeps the state on the
	// Generator's own cache line instead of behind a pointer.
	r rng

	instr       uint64 // instructions generated so far
	phaseIdx    int
	phaseLeft   uint64
	exhausted   bool
	dCursors    []int // per-level block cursor
	iCursor     int   // instruction-stream byte cursor within hot code
	dConfCursor int
	iConfCursor int
	coldCursor  uint64

	// current spatial run: consecutive word accesses within one block
	runAddr uint64
	runLeft int

	pcBase    uint64
	brCounter int
	callDepth int

	// Profile-constant hoists, computed once in NewGenerator: the
	// cumulative instruction-mix thresholds Next compares the kind draw
	// against (summed in the same association order the inline
	// expressions used, so every comparison sees the identical float64),
	// and the inverse mean dependence distance depDistance's geometric
	// loop tests against.
	thLoad, thStore, thBranch, thFloat float64
	invDepMean                         float64

	// Per-phase hoists, rebuilt by enterPhase: the active phase pointer
	// and, per working-set level, the effective jump probability (with
	// the 1/32 jitter floor applied) and the instruction footprint in
	// bytes and instruction slots.
	curPhase *Phase
	dJumpP   []float64 // per-DLevel reposition probability
	dBase    []uint64  // per-DLevel region base address
	iBytes   []int     // per-ILevel hot-code bytes (floored at one block)
	iSlots   []int     // iBytes / instrBytes
	iBase    []uint64  // per-ILevel region base address
}

// Address-space layout: disjoint regions so streams never alias.
const (
	codeBase     = 0x0040_0000
	codeConfBase = 0x00C0_0000
	dataBase     = 0x1000_0000
	dataConfBase = 0x2000_0000
	coldBase     = 0x3000_0000
	conflictStr  = 64 << 10 // 64K stride: same index in any L1 studied
	blockBytes   = 32
	instrBytes   = 4
)

// NewGenerator builds the deterministic generator for a profile.
func NewGenerator(p *Profile) *Generator {
	g := &Generator{
		prof:   p,
		r:      newRNG(seedFromString(p.Name)),
		pcBase: codeBase,
	}
	g.thLoad = p.LoadFrac
	g.thStore = p.LoadFrac + p.StoreFrac
	g.thBranch = p.LoadFrac + p.StoreFrac + p.BranchFrac
	g.thFloat = p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FloatFrac
	m := p.DepMeanDist
	if m < 1 {
		m = 1
	}
	g.invDepMean = 1 / m
	g.enterPhase(0)
	return g
}

// reuse returns s resized to n elements, reusing its backing storage
// when it is large enough — enterPhase runs at every phase transition
// of a periodic profile, and the generator must stay allocation-free
// after warm-up. Contents are unspecified; callers assign every index.
func reuse[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

//simlint:coldpath runs at phase transitions only; reuse() keeps it allocation-free after warm-up
func (g *Generator) enterPhase(i int) {
	g.rebuildPhaseHoists(i)
	ph := g.curPhase
	g.phaseLeft = ph.Instructions
	for j := range g.dCursors {
		// Stagger cursors so levels do not walk in lockstep.
		c := 0
		if ph.DLevels[j].Blocks > 0 {
			c = g.r.intn(ph.DLevels[j].Blocks)
		}
		g.dCursors[j] = c
	}
	g.iCursor = 0
	g.runLeft = 0
}

// rebuildPhaseHoists recomputes the per-phase derived tables (jump
// probabilities, region bases, instruction footprints) for phase i. It is
// pure with respect to the RNG — Restore relies on that to re-enter a
// snapshotted phase without perturbing the random stream.
//
//simlint:coldpath runs at phase transitions and restore only
func (g *Generator) rebuildPhaseHoists(i int) {
	g.phaseIdx = i
	ph := &g.prof.Phases[i]
	g.curPhase = ph
	g.dCursors = reuse(g.dCursors, len(ph.DLevels))
	g.dJumpP = reuse(g.dJumpP, len(ph.DLevels))
	g.dBase = reuse(g.dBase, len(ph.DLevels))
	dBase := uint64(dataBase)
	for j := range ph.DLevels {
		jumpP := ph.DLevels[j].RandFrac
		if jumpP < 1.0/32 {
			jumpP = 1.0 / 32 // minimum jitter keeps knees from being cliffs
		}
		g.dJumpP[j] = jumpP
		g.dBase[j] = dBase
		dBase += uint64(ph.DLevels[j].Blocks)*blockBytes + (1 << 20) // separate regions
	}
	g.iBytes = reuse(g.iBytes, len(ph.ILevels))
	g.iSlots = reuse(g.iSlots, len(ph.ILevels))
	g.iBase = reuse(g.iBase, len(ph.ILevels))
	iBase := g.pcBase
	for j, lv := range ph.ILevels {
		bytes := lv.Blocks * blockBytes
		if bytes <= 0 {
			bytes = blockBytes
		}
		g.iBytes[j] = bytes
		g.iSlots[j] = bytes / instrBytes
		g.iBase[j] = iBase
		iBase += uint64(lv.Blocks)*blockBytes + (1 << 20) // separate regions
	}
}

func (g *Generator) phase() *Phase { return g.curPhase }

// advancePhase moves to the next phase; returns false when the workload
// is exhausted (non-periodic profile ran out of phases).
func (g *Generator) advancePhase() bool {
	next := g.phaseIdx + 1
	if next >= len(g.prof.Phases) {
		if !g.prof.Periodic {
			return false
		}
		next = 0
	}
	g.enterPhase(next)
	return true
}

// dataAddr produces the next data address according to the phase's
// working-set structure.
func (g *Generator) dataAddr() uint64 {
	// Continue an in-progress spatial run within the current block.
	if g.runLeft > 0 {
		g.runLeft--
		g.runAddr += 8
		return g.runAddr
	}
	ph := g.phase()
	x := g.r.float()

	// Cold stream.
	if x < ph.DCold {
		g.coldCursor++
		a := coldBase + g.coldCursor*blockBytes
		return a
	}
	x -= ph.DCold

	// Conflict group.
	if cf := ph.DConflict; cf.Ways > 0 && x < cf.Frac {
		g.dConfCursor = (g.dConfCursor + 1) % cf.Ways
		return dataConfBase + uint64(g.dConfCursor)*conflictStr
	}
	if cf := ph.DConflict; cf.Ways > 0 {
		x -= cf.Frac
	}

	// Working-set levels: pick by fraction, walk cyclically with a small
	// chance of repositioning (softens the LRU cliff), then start a short
	// spatial run within the block.
	for li, lv := range ph.DLevels {
		if x < lv.Frac || li == len(ph.DLevels)-1 {
			c := g.dCursors[li]
			if g.r.float() < g.dJumpP[li] {
				c = g.r.intn(lv.Blocks)
			} else {
				c++
				if c >= lv.Blocks {
					c = 0
				}
			}
			g.dCursors[li] = c
			addr := g.dBase[li] + uint64(c)*blockBytes
			// 0-2 further word touches within the block.
			g.runLeft = g.r.intn(3)
			g.runAddr = addr
			return addr
		}
		x -= lv.Frac
	}
	return dataBase
}

// nextPC produces the next instruction address. The hot code region is
// the phase's instruction working set, walked sequentially with wrap;
// IConflict diverts a fraction of fetches to the conflict code group.
func (g *Generator) nextPC() uint64 {
	ph := g.phase()
	if cf := ph.IConflict; cf.Ways > 0 && g.r.float() < cf.Frac {
		g.iConfCursor = (g.iConfCursor + 1) % cf.Ways
		return codeConfBase + uint64(g.iConfCursor)*conflictStr
	}
	// Determine hot-code bytes from levels: treat ILevels like DLevels.
	var pc uint64
	x := g.r.float()
	for li, lv := range ph.ILevels {
		if x < lv.Frac || li == len(ph.ILevels)-1 {
			base := g.iBase[li]
			bytes := g.iBytes[li]
			if li == 0 {
				// Hot loop code: sequential walk with RandFrac-controlled
				// far jumps (calls/returns within the hot footprint).
				// iCursor stays in [0, bytes): every assignment is 0, a
				// slot index times instrBytes, or an increment followed by
				// the wrap check below — so no modulo is needed.
				if lv.RandFrac > 0 && g.r.float() < lv.RandFrac {
					g.iCursor = g.r.intn(g.iSlots[li]) * instrBytes
				}
				pc = base + uint64(g.iCursor)
				g.iCursor += instrBytes
				if g.iCursor >= bytes {
					g.iCursor = 0
				}
			} else {
				// Secondary code levels (cold functions): random entry.
				pc = base + uint64(g.r.intn(g.iSlots[li]))*instrBytes
			}
			return pc
		}
		x -= lv.Frac
	}
	g.iCursor += instrBytes
	return g.pcBase + uint64(g.iCursor)
}

// depDistance samples a register-dependence distance (geometric around
// DepMeanDist), bounded to stay inside a realistic window.
func (g *Generator) depDistance() int32 {
	d := 1
	for g.r.float() > g.invDepMean && d < 48 {
		d++
	}
	return int32(d)
}

// Next fills ev with the next instruction; it returns false when a
// non-periodic profile is exhausted.
//
//simlint:hotpath per-generated-instruction
func (g *Generator) Next(ev *Event) bool {
	if g.exhausted {
		return false
	}
	if g.phaseLeft == 0 {
		if !g.advancePhase() {
			g.exhausted = true
			return false
		}
	}
	g.phaseLeft--
	g.instr++

	p := g.prof
	x := g.r.float()
	ev.PC = g.nextPC()
	ev.Addr = 0
	ev.Taken = false
	ev.Dep1 = g.depDistance()
	ev.Dep2 = 0
	ev.Lat = 1

	switch {
	case x < g.thLoad:
		ev.Kind = KindLoad
		ev.Addr = g.dataAddr()
	case x < g.thStore:
		ev.Kind = KindStore
		ev.Addr = g.dataAddr()
		ev.Dep2 = g.depDistance()
	case x < g.thBranch:
		// ~12% of control transfers are calls and another ~12% returns,
		// kept balanced around a bounded call depth; the rest are
		// conditional branches.
		cr := g.r.float()
		switch {
		case cr < 0.12 && g.callDepth < 48:
			ev.Kind = KindCall
			ev.Taken = true
			g.callDepth++
		case cr < 0.24 && g.callDepth > 0:
			ev.Kind = KindReturn
			ev.Taken = true
			g.callDepth--
		default:
			ev.Kind = KindBranch
			g.brCounter++
			if g.r.float() < p.BranchRandFrac {
				ev.Taken = g.r.float() < 0.5
			} else {
				// Loop-style branch: taken except at loop exits.
				ev.Taken = g.brCounter%16 != 0
			}
		}
	case x < g.thFloat:
		ev.Kind = KindFloat
		ev.Lat = 4
		ev.Dep2 = g.depDistance()
	default:
		ev.Kind = KindInt
		if g.r.float() < 0.5 {
			ev.Dep2 = g.depDistance()
		}
	}
	return true
}

// Generated returns how many instructions have been produced.
func (g *Generator) Generated() uint64 { return g.instr }

// Skip advances the stream position by n instructions without generating
// events, in O(phases crossed) instead of O(n). The sampled execution
// mode uses it to jump the gap between one window's functional warming
// and the next window (internal/sim).
//
// A skip is a deterministic state jump, not a replay: the RNG is remixed
// as a function of (state, n), the working-set cursors are re-staggered
// exactly the way enterPhase staggers them at a phase boundary (their
// positions within a cyclic walk carry no information), and the cold
// stream advances so skipped instructions still consume fresh block
// addresses. Two generators skipping at the same position therefore
// remain bit-identical, but the post-skip stream differs from the
// stepped stream — callers own that trade (see the sampling notes in
// internal/sim).
//
// Returns how many instructions were skipped; fewer than n only when a
// non-periodic profile ran out of phases.
func (g *Generator) Skip(n uint64) uint64 {
	if g.exhausted || n == 0 {
		return 0
	}
	var done uint64
	for n > 0 {
		if g.phaseLeft == 0 {
			if !g.advancePhase() {
				g.exhausted = true
				break
			}
		}
		step := min(n, g.phaseLeft)
		g.phaseLeft -= step
		g.instr += step
		// Every skipped instruction could at most touch one fresh cold
		// block; advancing by the full step keeps post-skip cold
		// addresses disjoint from anything a stepped run could have
		// touched, at the cost of some unused address space.
		g.coldCursor += step
		n -= step
		done += step
	}
	g.r.s = remix(g.r.s ^ (done * 0x9E3779B97F4A7C15))
	if !g.exhausted {
		ph := g.curPhase
		for j := range g.dCursors {
			if b := ph.DLevels[j].Blocks; b > 0 {
				g.dCursors[j] = g.r.intn(b)
			}
		}
		if len(g.iSlots) > 0 && g.iSlots[0] > 0 {
			g.iCursor = g.r.intn(g.iSlots[0]) * instrBytes
		}
	}
	g.runLeft = 0
	return done
}

// remix finalizes a skip's RNG jump (splitmix64 finalizer), guarding the
// xorshift absorbing state.
func remix(s uint64) uint64 {
	s ^= s >> 30
	s *= 0xBF58476D1CE4E5B9
	s ^= s >> 27
	s *= 0x94D049BB133111EB
	s ^= s >> 31
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return s
}
