package workload

import (
	"math"
	"testing"
)

func TestReuseProfilerCyclicStream(t *testing.T) {
	// A cyclic sweep over 64 blocks has stack distance exactly 63 for
	// every non-cold access: a 64-block cache hits everything, a
	// 63-block cache hits nothing.
	r := NewReuseProfiler(32, 256)
	for pass := 0; pass < 10; pass++ {
		for b := 0; b < 64; b++ {
			r.Observe(uint64(b) * 32)
		}
	}
	if got := r.HitRatioAt(64); got < 0.85 {
		t.Fatalf("HitRatioAt(64) = %.2f, want ~0.9 (only cold misses)", got)
	}
	if got := r.HitRatioAt(63); got != 0 {
		t.Fatalf("HitRatioAt(63) = %.2f, want 0 for cyclic sweep", got)
	}
	wantCold := 64.0 / 640.0
	if math.Abs(r.ColdFraction()-wantCold) > 1e-9 {
		t.Fatalf("cold fraction = %v, want %v", r.ColdFraction(), wantCold)
	}
}

func TestReuseProfilerMRUStream(t *testing.T) {
	// Repeated access to one block: stack distance 0 after the first.
	r := NewReuseProfiler(32, 16)
	for i := 0; i < 100; i++ {
		r.Observe(0x1000)
	}
	if got := r.HitRatioAt(1); got < 0.98 {
		t.Fatalf("HitRatioAt(1) = %.2f", got)
	}
}

func TestMissCurveMonotone(t *testing.T) {
	r := ProfileDStream(MustGet("ammp"), 100_000, 1024)
	caps := []int{32, 64, 128, 256, 512, 1024}
	curve := r.MissCurve(caps)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-9 {
			t.Fatalf("miss curve not monotone: %v", curve)
		}
	}
	// ammp's declared working set (~102 blocks) must show a knee: misses
	// at 128 blocks well below misses at 32.
	if curve[3] > 0.5*curve[0] {
		t.Fatalf("no knee visible: %v", curve)
	}
}

func TestProfilerDefaults(t *testing.T) {
	r := NewReuseProfiler(0, 0)
	r.Observe(64)
	if r.Total() != 1 || r.ColdFraction() != 1 {
		t.Fatal("defaults broken")
	}
	if (&ReuseProfiler{}).ColdFraction() != 0 {
		t.Fatal("empty profiler should report 0")
	}
	if (&ReuseProfiler{histogram: make([]uint64, 2), maxTrack: 1}).HitRatioAt(5) != 0 {
		t.Fatal("empty profiler hit ratio should be 0")
	}
}

func TestProfilerTrackingBound(t *testing.T) {
	r := NewReuseProfiler(32, 8)
	// Touch 20 distinct blocks twice: second touches of evicted blocks
	// count as cold (beyond tracking).
	for pass := 0; pass < 2; pass++ {
		for b := 0; b < 20; b++ {
			r.Observe(uint64(b) * 32)
		}
	}
	if len(r.stack) > 8 {
		t.Fatalf("stack grew past maxTrack: %d", len(r.stack))
	}
	if r.HitRatioAt(100) > 0.5 {
		t.Fatal("beyond-tracking reuse should not count as hits")
	}
}
