package workload

import "testing"

// TestSkipDeterministic: two generators performing the same interleaving
// of Next and Skip calls stay bit-identical — Skip is a deterministic
// state jump, not a source of divergence.
func TestSkipDeterministic(t *testing.T) {
	a := NewGenerator(MustGet("gcc"))
	b := NewGenerator(MustGet("gcc"))
	var ea, eb Event
	for round := 0; round < 5; round++ {
		for i := 0; i < 3_000; i++ {
			oa, ob := a.Next(&ea), b.Next(&eb)
			if oa != ob || ea != eb {
				t.Fatalf("round %d event %d diverged: %+v vs %+v", round, i, ea, eb)
			}
		}
		if na, nb := a.Skip(20_000), b.Skip(20_000); na != nb {
			t.Fatalf("round %d skipped %d vs %d", round, na, nb)
		}
	}
}

// TestSkipAdvancesPosition: Skip consumes stream position like Next
// does — Generated advances, and phase accounting stays consistent
// across boundaries.
func TestSkipAdvancesPosition(t *testing.T) {
	p := MustGet("su2cor") // two phases, periodic
	g := NewGenerator(p)
	period := p.TotalPhaseInstructions()
	if n := g.Skip(2*period + 7); n != 2*period+7 {
		t.Fatalf("periodic profile skipped %d of %d", n, 2*period+7)
	}
	if g.Generated() != 2*period+7 {
		t.Fatalf("Generated = %d after skip", g.Generated())
	}
	var ev Event
	if !g.Next(&ev) {
		t.Fatal("periodic generator exhausted after skip")
	}
}

// TestSkipSnapshotRestore: a snapshot taken after a skip restores into a
// fresh generator whose subsequent stream is bit-identical.
func TestSkipSnapshotRestore(t *testing.T) {
	a := NewGenerator(MustGet("vpr"))
	var ea, eb Event
	for i := 0; i < 1_000; i++ {
		a.Next(&ea)
	}
	a.Skip(50_000)
	snap := a.Snapshot()

	b := NewGenerator(MustGet("vpr"))
	b.Restore(snap)
	for i := 0; i < 5_000; i++ {
		oa, ob := a.Next(&ea), b.Next(&eb)
		if oa != ob || ea != eb {
			t.Fatalf("event %d after restore diverged: %+v vs %+v", i, ea, eb)
		}
	}
}

// TestSkipExhaustsNonPeriodic: skipping past the end of a one-shot
// profile reports the truncated count and leaves the generator
// exhausted.
func TestSkipExhaustsNonPeriodic(t *testing.T) {
	single := &Profile{
		Name: "oneshot-skip", LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		DepMeanDist: 3,
		Phases: []Phase{{Instructions: 1000,
			DLevels: []WSLevel{{Blocks: 16, Frac: 1}},
			ILevels: []WSLevel{{Blocks: 16, Frac: 1}}}},
	}
	g := NewGenerator(single)
	var ev Event
	for i := 0; i < 400; i++ {
		g.Next(&ev)
	}
	if n := g.Skip(10_000); n != 600 {
		t.Fatalf("skipped %d, want the 600 remaining", n)
	}
	if g.Next(&ev) {
		t.Fatal("generator should be exhausted after skipping past the end")
	}
	if n := g.Skip(10); n != 0 {
		t.Fatalf("exhausted generator skipped %d more", n)
	}
}

// TestSkipZeroIsFree: Skip(0) must not perturb the stream — the sampled
// execution mode relies on a zero-skip schedule being bit-identical to
// one with no skips at all.
func TestSkipZeroIsFree(t *testing.T) {
	a := NewGenerator(MustGet("gcc"))
	b := NewGenerator(MustGet("gcc"))
	var ea, eb Event
	for i := 0; i < 2_000; i++ {
		if i%100 == 0 {
			a.Skip(0)
		}
		oa, ob := a.Next(&ea), b.Next(&eb)
		if oa != ob || ea != eb {
			t.Fatalf("event %d diverged after Skip(0)", i)
		}
	}
}
