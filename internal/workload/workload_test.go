package workload

import (
	"bytes"
	"math"
	"testing"
)

func TestNamesCoverPaperBenchmarks(t *testing.T) {
	want := []string{"ammp", "applu", "apsi", "compress", "gcc", "ijpeg",
		"m88ksim", "su2cor", "swim", "tomcatv", "vortex", "vpr"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nosuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if p := MustGet("gcc"); p.Name != "gcc" {
		t.Fatal("MustGet broken")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() []Event {
		g := NewGenerator(MustGet("vortex"))
		evs := make([]Event, 5000)
		for i := range evs {
			if !g.Next(&evs[i]) {
				t.Fatal("generator exhausted unexpectedly")
			}
		}
		return evs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs between runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInstructionMixMatchesProfile(t *testing.T) {
	for _, name := range Names() {
		p := MustGet(name)
		g := NewGenerator(p)
		var ev Event
		counts := map[Kind]int{}
		const n = 200000
		for i := 0; i < n; i++ {
			if !g.Next(&ev) {
				t.Fatalf("%s exhausted at %d", name, i)
			}
			counts[ev.Kind]++
		}
		check := func(kind Kind, want float64, label string) {
			got := float64(counts[kind]) / n
			if math.Abs(got-want) > 0.02 {
				t.Errorf("%s: %s fraction = %.3f, want %.3f", name, label, got, want)
			}
		}
		check(KindLoad, p.LoadFrac, "load")
		check(KindStore, p.StoreFrac, "store")
		check(KindFloat, p.FloatFrac, "float")
		// Control transfers split across branches, calls, and returns.
		ctl := float64(counts[KindBranch]+counts[KindCall]+counts[KindReturn]) / n
		if math.Abs(ctl-p.BranchFrac) > 0.02 {
			t.Errorf("%s: control fraction = %.3f, want %.3f", name, ctl, p.BranchFrac)
		}
	}
}

func TestMemoryEventsCarryAddresses(t *testing.T) {
	g := NewGenerator(MustGet("gcc"))
	var ev Event
	for i := 0; i < 50000; i++ {
		g.Next(&ev)
		isMem := ev.Kind == KindLoad || ev.Kind == KindStore
		if isMem && ev.Addr == 0 {
			t.Fatalf("memory op %d without address", i)
		}
		if !isMem && ev.Addr != 0 {
			t.Fatalf("non-memory op %d with address %x", i, ev.Addr)
		}
		if ev.PC == 0 {
			t.Fatalf("instruction %d without PC", i)
		}
	}
}

// The d-stream of a profile must exhibit capacity knees at its declared
// working-set levels: an LRU stack simulation of distinct-block reuse
// distances should show most accesses reusable within the first level
// and nearly all within the largest level.
func TestWorkingSetKnee(t *testing.T) {
	p := MustGet("ammp") // levels: 72 and 200 blocks
	g := NewGenerator(p)
	var ev Event
	// Simple fully-associative LRU stack over block addresses.
	var stack []uint64
	reuseWithin := func(limit int) (hits, total int) {
		g = NewGenerator(p)
		stack = stack[:0]
		for i := 0; i < 150000; i++ {
			g.Next(&ev)
			if ev.Kind != KindLoad && ev.Kind != KindStore {
				continue
			}
			blk := ev.Addr >> 5
			pos := -1
			for j, b := range stack {
				if b == blk {
					pos = j
					break
				}
			}
			total++
			if pos >= 0 {
				if pos < limit {
					hits++
				}
				stack = append(stack[:pos], stack[pos+1:]...)
			}
			stack = append([]uint64{blk}, stack...)
			if len(stack) > 4096 {
				stack = stack[:4096]
			}
		}
		return hits, total
	}
	h96, tot := reuseWithin(96)
	h512, _ := reuseWithin(512)
	small := float64(h96) / float64(tot)
	big := float64(h512) / float64(tot)
	if small < 0.55 {
		t.Errorf("hot-level reuse within 96 blocks = %.2f, want > 0.55", small)
	}
	if big < 0.90 {
		t.Errorf("full-WS reuse within 512 blocks = %.2f, want > 0.90", big)
	}
	if big-small < 0.05 {
		t.Errorf("no second working-set knee: %.2f vs %.2f", small, big)
	}
}

// Conflict groups must use the documented 64K stride so they collide in
// any L1 indexing studied.
func TestConflictGroupStride(t *testing.T) {
	p := MustGet("vpr")
	g := NewGenerator(p)
	var ev Event
	seen := map[uint64]bool{}
	for i := 0; i < 200000; i++ {
		g.Next(&ev)
		if ev.Addr >= dataConfBase && ev.Addr < coldBase {
			seen[ev.Addr] = true
		}
	}
	if len(seen) != 3 {
		t.Fatalf("conflict group addresses = %d, want 3 (K=3)", len(seen))
	}
	for a := range seen {
		if (a-dataConfBase)%conflictStr != 0 {
			t.Fatalf("conflict address %x not on 64K stride", a)
		}
	}
}

func TestPhaseProgressionAndPeriodicity(t *testing.T) {
	p := MustGet("su2cor") // two phases, periodic
	g := NewGenerator(p)
	var ev Event
	period := p.TotalPhaseInstructions()
	if period == 0 {
		t.Fatal("zero period")
	}
	// Run two periods and verify the generator keeps producing.
	for i := uint64(0); i < 2*period+10; i++ {
		if !g.Next(&ev) {
			t.Fatalf("periodic workload exhausted at %d", i)
		}
	}
	// Non-periodic profile must exhaust.
	single := &Profile{
		Name: "oneshot", LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		DepMeanDist: 3,
		Phases: []Phase{{Instructions: 1000,
			DLevels: []WSLevel{{Blocks: 16, Frac: 1}},
			ILevels: []WSLevel{{Blocks: 16, Frac: 1}}}},
	}
	gs := NewGenerator(single)
	n := 0
	for gs.Next(&ev) {
		n++
	}
	if n != 1000 {
		t.Fatalf("one-shot produced %d events, want 1000", n)
	}
	if gs.Next(&ev) {
		t.Fatal("exhausted generator produced another event")
	}
}

func TestDependencyDistancesBounded(t *testing.T) {
	g := NewGenerator(MustGet("swim"))
	var ev Event
	var sum, n float64
	for i := 0; i < 100000; i++ {
		g.Next(&ev)
		if ev.Dep1 < 0 || ev.Dep1 > 48 || ev.Dep2 < 0 || ev.Dep2 > 48 {
			t.Fatalf("dep distance out of range: %+v", ev)
		}
		if ev.Dep1 > 0 {
			sum += float64(ev.Dep1)
			n++
		}
	}
	mean := sum / n
	// swim declares DepMeanDist 7.0; geometric sampling should land near.
	if mean < 4 || mean > 10 {
		t.Fatalf("mean dep distance = %.1f, want ~7", mean)
	}
}

func TestBranchBiasDiffersByProfile(t *testing.T) {
	takenRate := func(name string) float64 {
		g := NewGenerator(MustGet(name))
		var ev Event
		taken, total := 0, 0
		for i := 0; i < 100000; i++ {
			g.Next(&ev)
			if ev.Kind == KindBranch {
				total++
				if ev.Taken {
					taken++
				}
			}
		}
		return float64(taken) / float64(total)
	}
	// compress has 30% random branches: taken rate pulled toward 0.5
	// relative to m88ksim (5% random).
	if takenRate("compress") >= takenRate("m88ksim") {
		t.Error("compress should have less biased branches than m88ksim")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g := NewGenerator(MustGet("ijpeg"))
	const n = 2000
	var buf bytes.Buffer
	w, err := NewTraceWriter(&buf, "ijpeg", n)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Event, n)
	for i := range want {
		g.Next(&want[i])
		if err := w.Write(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "ijpeg" || r.Count != n {
		t.Fatalf("header = %q/%d", r.Name, r.Count)
	}
	src := &ReplaySource{R: r}
	var ev Event
	for i := 0; i < n; i++ {
		if !src.Next(&ev) {
			t.Fatalf("trace ended early at %d: %v", i, src.Err())
		}
		w := want[i]
		// Dep distances are stored as uint16; all generated values fit.
		if ev.PC != w.PC || ev.Addr != w.Addr || ev.Kind != w.Kind ||
			ev.Taken != w.Taken || ev.Dep1 != w.Dep1 || ev.Dep2 != w.Dep2 || ev.Lat != w.Lat {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, ev, w)
		}
	}
	if src.Next(&ev) {
		t.Fatal("trace produced extra events")
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
}

func TestTraceWriterUnderfill(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewTraceWriter(&buf, "x", 10)
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := w.Write(&ev); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err == nil {
		t.Fatal("underfilled trace flushed without error")
	}
}

func TestTraceReaderBadMagic(t *testing.T) {
	if _, err := NewTraceReader(bytes.NewBufferString("XXXXjunkjunk")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTraceWriterOverfill(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewTraceWriter(&buf, "x", 1)
	var ev Event
	if err := w.Write(&ev); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&ev); err == nil {
		t.Fatal("overfill accepted")
	}
}

func TestRNGDeterministicAndUniformish(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	r := newRNG(1)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.float()
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("rng mean = %v", mean)
	}
	if newRNG(0).s == 0 {
		t.Fatal("zero seed must be remapped")
	}
	if seedFromString("a") == seedFromString("b") {
		t.Fatal("seed collision")
	}
}
