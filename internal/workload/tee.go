package workload

// Tee replicates one event stream to several consumers without
// re-generating it: the underlying Source is pulled exactly once per
// event, and every consumer observes the identical sequence. This is
// the workload half of one-pass multi-config simulation — a sweep's
// cells share their benchmark's instruction stream, so the generator
// (or a trace decode) should run once per gang, not once per cell.
//
// Events live in a power-of-two ring buffer between the fastest and the
// slowest consumer; the ring grows (doubling) only when the consumer lag
// exceeds its capacity, so lockstep consumers — the gang engine's
// regime — stay within the initial allocation and the steady state is
// allocation-free. Consumers that run to completion one after another
// instead force the ring to hold the whole stream; that works, but
// costs memory proportional to the stream length.
//
// A Tee and its consumer Sources are not safe for concurrent use.
type Tee struct {
	src Source
	buf []Event
	// mask is len(buf)-1; buf[seq&mask] holds the event with sequence
	// number seq while it is still live.
	mask      uint64
	produced  uint64 // events pulled from src so far
	exhausted bool
	pos       []uint64 // per-consumer next sequence number
}

// teeInitialCap is the starting ring capacity (power of two). Lockstep
// consumers never lag by more than one event, so the default never
// regrows in the gang engine's use.
const teeInitialCap = 64

// NewTee builds a tee over src with n consumers.
func NewTee(src Source, n int) *Tee {
	if n < 1 {
		n = 1
	}
	return &Tee{
		src:  src,
		buf:  make([]Event, teeInitialCap),
		mask: teeInitialCap - 1,
		pos:  make([]uint64, n),
	}
}

// Consumers returns the number of consumer views.
func (t *Tee) Consumers() int { return len(t.pos) }

// Source returns consumer i's view of the stream. Each view implements
// workload.Source and yields exactly the events of the underlying
// source, in order, independent of how the other views interleave.
func (t *Tee) Source(i int) Source { return &teeView{t: t, i: i} }

// teeView is one consumer's cursor into the tee.
type teeView struct {
	t *Tee
	i int
}

// Next implements Source.
//
//simlint:hotpath per-instruction replay for >GangSize member gangs
func (v *teeView) Next(ev *Event) bool { return v.t.next(v.i, ev) }

func (t *Tee) next(i int, ev *Event) bool {
	p := t.pos[i]
	if p == t.produced {
		if t.exhausted {
			return false
		}
		if t.produced-t.slowest() == uint64(len(t.buf)) {
			t.grow()
		}
		if !t.src.Next(&t.buf[t.produced&t.mask]) {
			t.exhausted = true
			return false
		}
		t.produced++
	}
	*ev = t.buf[p&t.mask]
	t.pos[i] = p + 1
	return true
}

// slowest returns the smallest consumer cursor: events before it can be
// overwritten.
func (t *Tee) slowest() uint64 {
	min := t.pos[0]
	for _, p := range t.pos[1:] {
		if p < min {
			min = p
		}
	}
	return min
}

// grow doubles the ring, re-placing the live window [slowest, produced)
// at its new masked positions.
//
//simlint:coldpath ring doubling, amortized over the lag that caused it
func (t *Tee) grow() {
	nbuf := make([]Event, 2*len(t.buf))
	nmask := uint64(len(nbuf) - 1)
	for seq := t.slowest(); seq < t.produced; seq++ {
		nbuf[seq&nmask] = t.buf[seq&t.mask]
	}
	t.buf, t.mask = nbuf, nmask
}
