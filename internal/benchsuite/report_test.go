package benchsuite

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestNextPathNumbersSequentially(t *testing.T) {
	dir := t.TempDir()
	p, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_0.json" {
		t.Fatalf("empty dir: got %s, want BENCH_0.json", p)
	}
	if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err = NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("after BENCH_0: got %s, want BENCH_1.json", p)
	}
}

func TestReportRoundTrip(t *testing.T) {
	entries := []Entry{{
		Name: "SimRun", Iterations: 3, NsPerOp: 1.5e7,
		AllocsPerOp: 46, BytesPerOp: 1 << 18,
		InstrsPerSec: 1.3e7,
		Metrics:      map[string]float64{"instrs/op": 200000},
	}}
	r := NewReport(true, entries)
	if r.Schema != 1 || !r.Short {
		t.Fatalf("bad envelope: %+v", r)
	}
	path := filepath.Join(t.TempDir(), "BENCH_0.json")
	if err := WriteReport(path, r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != 1 || !reflect.DeepEqual(back.Benchmarks[0], entries[0]) {
		t.Fatalf("round trip mismatch: %+v", back.Benchmarks)
	}
}

// TestRunShortTierSelection checks the suite's tier split without
// executing anything minutes-scale: every Short entry must be one of
// the raw-throughput benchmarks, and All must include the figure tier.
func TestRunShortTierSelection(t *testing.T) {
	var short, long int
	for _, bm := range All() {
		if bm.F == nil || bm.Name == "" {
			t.Fatalf("malformed suite entry: %+v", bm)
		}
		if bm.Short {
			short++
		} else {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("suite tiers degenerate: %d short, %d long", short, long)
	}
}
