package benchsuite

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func baselineReport() Report {
	return Report{
		Schema: 1,
		Benchmarks: []Entry{
			{Name: "SimRun", NsPerOp: 1000},
			{Name: "SimInOrder", NsPerOp: 2000},
			{Name: "Broken", Failed: true},
		},
	}
}

func TestCompareDeltas(t *testing.T) {
	cur := []Entry{
		{Name: "SimRun", NsPerOp: 1100},     // +10%
		{Name: "SimInOrder", NsPerOp: 1800}, // -10%
		{Name: "Broken", NsPerOp: 500},      // baseline failed
		{Name: "SweepGang", NsPerOp: 300},   // new benchmark
		{Name: "Crashed", Failed: true},     // current failure: skipped
	}
	deltas := Compare(baselineReport(), cur)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4: %v", len(deltas), deltas)
	}
	if d := deltas[0]; d.Name != "SimRun" || math.Abs(d.Pct-10) > 1e-9 {
		t.Errorf("SimRun delta = %+v, want +10%%", d)
	}
	if d := deltas[1]; math.Abs(d.Pct+10) > 1e-9 {
		t.Errorf("SimInOrder delta = %+v, want -10%%", d)
	}
	if d := deltas[2]; !d.BaseFail {
		t.Errorf("Broken delta = %+v, want BaseFail", d)
	}
	if d := deltas[3]; !d.Missing {
		t.Errorf("SweepGang delta = %+v, want Missing", d)
	}
}

// A metric that exists only in the new report — sampled_speedup_x landing
// in an upgraded benchmark, or a whole new benchmark like SimSampled —
// must read as a new entry, never as a failure or regression.
func TestCompareNewMetricsAreNewEntries(t *testing.T) {
	base := Report{
		Schema: 1,
		Benchmarks: []Entry{
			{Name: "SimRun", NsPerOp: 1000,
				Metrics: map[string]float64{"instrs/op": 200000, "legacy_ratio": 2}},
		},
	}
	cur := []Entry{
		{Name: "SimRun", NsPerOp: 1000,
			Metrics: map[string]float64{"instrs/op": 200000, "sampled_speedup_x": 3.4}},
		{Name: "SimSampled", NsPerOp: 300,
			Metrics: map[string]float64{"sampled_speedup_x": 3.4}},
	}
	deltas := Compare(base, cur)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %v", len(deltas), deltas)
	}
	if bad := Regressions(deltas, 0); len(bad) != 0 {
		t.Fatalf("new metrics/benchmarks reported as regressions: %v", bad)
	}

	simRun := deltas[0]
	byName := map[string]MetricDelta{}
	for _, m := range simRun.Metrics {
		byName[m.Name] = m
	}
	if m := byName["sampled_speedup_x"]; !m.NewInReport || m.New != 3.4 {
		t.Errorf("sampled_speedup_x = %+v, want NewInReport with value 3.4", m)
	}
	if m := byName["legacy_ratio"]; !m.Removed || m.Base != 2 {
		t.Errorf("legacy_ratio = %+v, want Removed with baseline 2", m)
	}
	if m := byName["instrs/op"]; m.NewInReport || m.Removed || m.Pct != 0 {
		t.Errorf("instrs/op = %+v, want unchanged both-sides metric", m)
	}
	if s := simRun.String(); !strings.Contains(s, "sampled_speedup_x=3.4 (new metric)") ||
		!strings.Contains(s, "legacy_ratio (removed; baseline 2)") {
		t.Errorf("SimRun delta string missing metric notes: %q", s)
	}

	if d := deltas[1]; !d.Missing || d.Regressed(0) {
		t.Errorf("SimSampled delta = %+v, want Missing and never regressed", d)
	}
}

func TestRegressions(t *testing.T) {
	cur := []Entry{
		{Name: "SimRun", NsPerOp: 1500},     // +50%
		{Name: "SimInOrder", NsPerOp: 2300}, // +15%
		{Name: "SweepGang", NsPerOp: 9999},  // missing from baseline
	}
	deltas := Compare(baselineReport(), cur)
	bad := Regressions(deltas, 10)
	if len(bad) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(bad), bad)
	}
	// Worst first.
	if bad[0].Name != "SimRun" || bad[1].Name != "SimInOrder" {
		t.Errorf("regression order = %s, %s; want SimRun, SimInOrder",
			bad[0].Name, bad[1].Name)
	}
	if got := Regressions(deltas, 60); len(got) != 0 {
		t.Errorf("threshold 60%%: got %v, want none", got)
	}
	// New benchmarks never count as regressions.
	for _, d := range bad {
		if d.Missing {
			t.Errorf("missing-baseline entry reported as regression: %+v", d)
		}
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_0.json")
	rep := NewReport(true, baselineReport().Benchmarks)
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != 1 || len(got.Benchmarks) != 3 || got.Benchmarks[0].Name != "SimRun" {
		t.Errorf("round-trip report = %+v", got)
	}
	if _, err := LoadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
}
