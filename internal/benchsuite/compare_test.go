package benchsuite

import (
	"math"
	"path/filepath"
	"testing"
)

func baselineReport() Report {
	return Report{
		Schema: 1,
		Benchmarks: []Entry{
			{Name: "SimRun", NsPerOp: 1000},
			{Name: "SimInOrder", NsPerOp: 2000},
			{Name: "Broken", Failed: true},
		},
	}
}

func TestCompareDeltas(t *testing.T) {
	cur := []Entry{
		{Name: "SimRun", NsPerOp: 1100},     // +10%
		{Name: "SimInOrder", NsPerOp: 1800}, // -10%
		{Name: "Broken", NsPerOp: 500},      // baseline failed
		{Name: "SweepGang", NsPerOp: 300},   // new benchmark
		{Name: "Crashed", Failed: true},     // current failure: skipped
	}
	deltas := Compare(baselineReport(), cur)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4: %v", len(deltas), deltas)
	}
	if d := deltas[0]; d.Name != "SimRun" || math.Abs(d.Pct-10) > 1e-9 {
		t.Errorf("SimRun delta = %+v, want +10%%", d)
	}
	if d := deltas[1]; math.Abs(d.Pct+10) > 1e-9 {
		t.Errorf("SimInOrder delta = %+v, want -10%%", d)
	}
	if d := deltas[2]; !d.BaseFail {
		t.Errorf("Broken delta = %+v, want BaseFail", d)
	}
	if d := deltas[3]; !d.Missing {
		t.Errorf("SweepGang delta = %+v, want Missing", d)
	}
}

func TestRegressions(t *testing.T) {
	cur := []Entry{
		{Name: "SimRun", NsPerOp: 1500},     // +50%
		{Name: "SimInOrder", NsPerOp: 2300}, // +15%
		{Name: "SweepGang", NsPerOp: 9999},  // missing from baseline
	}
	deltas := Compare(baselineReport(), cur)
	bad := Regressions(deltas, 10)
	if len(bad) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(bad), bad)
	}
	// Worst first.
	if bad[0].Name != "SimRun" || bad[1].Name != "SimInOrder" {
		t.Errorf("regression order = %s, %s; want SimRun, SimInOrder",
			bad[0].Name, bad[1].Name)
	}
	if got := Regressions(deltas, 60); len(got) != 0 {
		t.Errorf("threshold 60%%: got %v, want none", got)
	}
	// New benchmarks never count as regressions.
	for _, d := range bad {
		if d.Missing {
			t.Errorf("missing-baseline entry reported as regression: %+v", d)
		}
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_0.json")
	rep := NewReport(true, baselineReport().Benchmarks)
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != 1 || len(got.Benchmarks) != 3 || got.Benchmarks[0].Name != "SimRun" {
		t.Errorf("round-trip report = %+v", got)
	}
	if _, err := LoadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
}
