package benchsuite

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// Entry is one benchmark's recorded outcome.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// InstrsPerSec is simulated instructions per wall-clock second,
	// derived for benchmarks that report an instrs/op metric.
	InstrsPerSec float64 `json:"instrs_per_sec,omitempty"`
	// Metrics carries every b.ReportMetric value, including each figure
	// benchmark's headline result metrics (edp_red_pct and friends).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Failed marks a benchmark whose body aborted; its numbers are void.
	Failed bool `json:"failed,omitempty"`
}

// Report is the BENCH_<n>.json document.
type Report struct {
	Schema     int     `json:"schema"`
	CreatedAt  string  `json:"created_at"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	Short      bool    `json:"short"`
	Benchmarks []Entry `json:"benchmarks"`
}

// Run executes the suite (the Short tier only when short is set) via
// testing.Benchmark and collects entries. progress, when non-nil, is
// called with each benchmark's name before it runs.
func Run(short bool, progress func(name string)) []Entry {
	var entries []Entry
	for _, bm := range All() {
		if short && !bm.Short {
			continue
		}
		if progress != nil {
			progress(bm.Name)
		}
		r := testing.Benchmark(bm.F)
		e := Entry{
			Name:        bm.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(max(r.N, 1)),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Failed:      r.N == 0,
		}
		if len(r.Extra) > 0 {
			e.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Metrics[k] = v
			}
		}
		if instrs, ok := r.Extra["instrs/op"]; ok && e.NsPerOp > 0 {
			e.InstrsPerSec = instrs / e.NsPerOp * 1e9
		}
		entries = append(entries, e)
	}
	return entries
}

// NewReport wraps entries in the report envelope with the current
// environment stamped in.
func NewReport(short bool, entries []Entry) Report {
	return Report{
		Schema:     1,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Short:      short,
		Benchmarks: entries,
	}
}

// WriteReport marshals the report to path (indented, trailing newline).
func WriteReport(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// NextPath returns the first BENCH_<n>.json path in dir that does not
// exist yet, so successive runs append to the trajectory instead of
// overwriting it.
func NextPath(dir string) (string, error) {
	for n := 0; ; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p, nil
		} else if err != nil {
			return "", err
		}
	}
}
