package benchsuite

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Delta is one benchmark's comparison against a baseline report.
type Delta struct {
	Name     string
	BaseNs   float64 // baseline ns/op
	NewNs    float64 // current ns/op
	Pct      float64 // (NewNs-BaseNs)/BaseNs * 100; positive = slower
	Missing  bool    // benchmark absent from the baseline
	BaseFail bool    // baseline entry failed; delta not meaningful
	// Metrics compares the entry's custom metrics (b.ReportMetric
	// values) against the baseline entry's, sorted by name. A metric
	// present only in the current report — a freshly added measurement
	// like sampled_speedup_x landing in an existing benchmark — is a new
	// entry (NewInReport), never a failure or regression; one present
	// only in the baseline is flagged Removed so silently dropped
	// measurements still surface in the comparison output.
	Metrics []MetricDelta
}

// MetricDelta is one custom metric's comparison against the baseline
// entry of the same benchmark.
type MetricDelta struct {
	Name        string
	Base, New   float64
	Pct         float64 // (New-Base)/Base * 100 when both sides present
	NewInReport bool    // metric absent from the baseline entry
	Removed     bool    // metric absent from the current entry
}

func (m MetricDelta) String() string {
	switch {
	case m.NewInReport:
		return fmt.Sprintf("%s=%g (new metric)", m.Name, m.New)
	case m.Removed:
		return fmt.Sprintf("%s (removed; baseline %g)", m.Name, m.Base)
	default:
		return fmt.Sprintf("%s=%g (%+.1f%%)", m.Name, m.New, m.Pct)
	}
}

// Regressed reports whether this delta is a regression past maxPct.
// Missing or baseline-failed entries never regress: a freshly added
// benchmark has no baseline to regress against.
func (d Delta) Regressed(maxPct float64) bool {
	return !d.Missing && !d.BaseFail && d.Pct > maxPct
}

func (d Delta) String() string {
	if d.Missing {
		return fmt.Sprintf("%-24s %12.0f ns/op   (not in baseline)", d.Name, d.NewNs)
	}
	if d.BaseFail {
		return fmt.Sprintf("%-24s %12.0f ns/op   (baseline failed)", d.Name, d.NewNs)
	}
	s := fmt.Sprintf("%-24s %12.0f ns/op   baseline %12.0f   %+7.1f%%",
		d.Name, d.NewNs, d.BaseNs, d.Pct)
	var notes []string
	for _, m := range d.Metrics {
		if m.NewInReport || m.Removed {
			notes = append(notes, m.String())
		}
	}
	if len(notes) > 0 {
		s += "   [" + strings.Join(notes, ", ") + "]"
	}
	return s
}

// Compare matches current entries against a baseline report by name and
// returns one Delta per current entry, in the current report's order.
// Failed current entries are skipped — a benchmark that no longer runs
// is a test failure, not a performance delta.
func Compare(base Report, cur []Entry) []Delta {
	byName := make(map[string]Entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		byName[e.Name] = e
	}
	var deltas []Delta
	for _, e := range cur {
		if e.Failed {
			continue
		}
		d := Delta{Name: e.Name, NewNs: e.NsPerOp}
		b, ok := byName[e.Name]
		switch {
		case !ok:
			d.Missing = true
		case b.Failed || b.NsPerOp <= 0:
			d.BaseFail = true
		default:
			d.BaseNs = b.NsPerOp
			d.Pct = (e.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			d.Metrics = compareMetrics(b.Metrics, e.Metrics)
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// compareMetrics matches two entries' custom-metric maps by name. New
// metrics (current only) and removed metrics (baseline only) are
// flagged, not dropped, so a growing or shrinking metric set reads as
// exactly that in the comparison.
func compareMetrics(base, cur map[string]float64) []MetricDelta {
	names := make([]string, 0, len(base)+len(cur))
	for name := range cur {
		names = append(names, name)
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []MetricDelta
	for _, name := range names {
		bv, inBase := base[name]
		cv, inCur := cur[name]
		m := MetricDelta{Name: name, Base: bv, New: cv,
			NewInReport: !inBase, Removed: !inCur}
		if inBase && inCur && bv != 0 {
			m.Pct = (cv - bv) / bv * 100
		}
		out = append(out, m)
	}
	return out
}

// Regressions filters deltas to those past maxPct, worst first.
func Regressions(deltas []Delta, maxPct float64) []Delta {
	var bad []Delta
	for _, d := range deltas {
		if d.Regressed(maxPct) {
			bad = append(bad, d)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].Pct > bad[j].Pct })
	return bad
}

// LoadReport reads a BENCH_<n>.json written by WriteReport.
func LoadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("benchsuite: parse %s: %w", path, err)
	}
	return rep, nil
}
