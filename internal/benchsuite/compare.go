package benchsuite

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Delta is one benchmark's comparison against a baseline report.
type Delta struct {
	Name     string
	BaseNs   float64 // baseline ns/op
	NewNs    float64 // current ns/op
	Pct      float64 // (NewNs-BaseNs)/BaseNs * 100; positive = slower
	Missing  bool    // benchmark absent from the baseline
	BaseFail bool    // baseline entry failed; delta not meaningful
}

// Regressed reports whether this delta is a regression past maxPct.
// Missing or baseline-failed entries never regress: a freshly added
// benchmark has no baseline to regress against.
func (d Delta) Regressed(maxPct float64) bool {
	return !d.Missing && !d.BaseFail && d.Pct > maxPct
}

func (d Delta) String() string {
	if d.Missing {
		return fmt.Sprintf("%-24s %12.0f ns/op   (not in baseline)", d.Name, d.NewNs)
	}
	if d.BaseFail {
		return fmt.Sprintf("%-24s %12.0f ns/op   (baseline failed)", d.Name, d.NewNs)
	}
	return fmt.Sprintf("%-24s %12.0f ns/op   baseline %12.0f   %+7.1f%%",
		d.Name, d.NewNs, d.BaseNs, d.Pct)
}

// Compare matches current entries against a baseline report by name and
// returns one Delta per current entry, in the current report's order.
// Failed current entries are skipped — a benchmark that no longer runs
// is a test failure, not a performance delta.
func Compare(base Report, cur []Entry) []Delta {
	byName := make(map[string]Entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		byName[e.Name] = e
	}
	var deltas []Delta
	for _, e := range cur {
		if e.Failed {
			continue
		}
		d := Delta{Name: e.Name, NewNs: e.NsPerOp}
		b, ok := byName[e.Name]
		switch {
		case !ok:
			d.Missing = true
		case b.Failed || b.NsPerOp <= 0:
			d.BaseFail = true
		default:
			d.BaseNs = b.NsPerOp
			d.Pct = (e.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// Regressions filters deltas to those past maxPct, worst first.
func Regressions(deltas []Delta, maxPct float64) []Delta {
	var bad []Delta
	for _, d := range deltas {
		if d.Regressed(maxPct) {
			bad = append(bad, d)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].Pct > bad[j].Pct })
	return bad
}

// LoadReport reads a BENCH_<n>.json written by WriteReport.
func LoadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("benchsuite: parse %s: %w", path, err)
	}
	return rep, nil
}
