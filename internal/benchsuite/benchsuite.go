// Package benchsuite defines the repository's performance benchmarks as
// plain functions over *testing.B, shared by two harnesses: the go-test
// benchmark harness (bench_test.go wraps each function in a standard
// Benchmark* shell) and the cmd/bench driver, which runs the same
// functions through testing.Benchmark and records a machine-readable
// BENCH_<n>.json so the repository has a performance trajectory instead
// of folklore.
//
// Two tiers:
//
//   - raw-throughput benchmarks (Short=true) time the simulator's inner
//     loop itself — one sim.Run, the workload generator — and carry an
//     instrs/op metric so ns/instr and instrs/sec are derivable;
//   - figure benchmarks (Short=false) regenerate the paper's experiments
//     at reduced fidelity end to end and report each experiment's
//     headline result metrics (edp_red_pct and friends), so a
//     performance diff also shows result regressions.
package benchsuite

import (
	"context"
	"testing"
	"time"

	"resizecache"
	"resizecache/figures"
	"resizecache/internal/core"
	"resizecache/internal/geometry"
	"resizecache/internal/runner"
	"resizecache/internal/sim"
	"resizecache/internal/workload"
)

// BenchApps is the representative app slice the reduced-fidelity
// benchmarks run: a small-working-set app, a conflict-bound app, and a
// phase-varying app.
var BenchApps = []string{"m88ksim", "vpr", "su2cor"}

// FigOpts returns the reduced-fidelity figure options every figure
// benchmark uses.
func FigOpts() figures.Options {
	return figures.Options{Instructions: 400_000, Apps: BenchApps}
}

// Bench is one suite entry.
type Bench struct {
	Name string
	// Short marks the raw-throughput tier that cmd/bench -short runs;
	// figure benchmarks are minutes-scale and excluded from smoke runs.
	Short bool
	F     func(b *testing.B)
}

// All returns the suite in reporting order.
func All() []Bench {
	return []Bench{
		{Name: "SimRun", Short: true, F: SimRun},
		{Name: "SimSampled", Short: true, F: SimSampled},
		{Name: "SimRunDeepHierarchy", Short: true, F: SimRunDeepHierarchy},
		{Name: "SimInOrder", Short: true, F: SimInOrder},
		{Name: "SweepGang", Short: true, F: SweepGang},
		{Name: "WorkloadGenerator", Short: true, F: WorkloadGenerator},
		{Name: "Table1Hybrid", F: Table1Hybrid},
		{Name: "Figure4Organizations", F: Figure4Organizations},
		{Name: "Figure5PerApp", F: Figure5PerApp},
		{Name: "Figure6Hybrid", F: Figure6Hybrid},
		{Name: "Figure7DCacheStrategies", F: Figure7DCacheStrategies},
		{Name: "Figure8ICacheStrategies", F: Figure8ICacheStrategies},
		{Name: "Figure9DualResize", F: Figure9DualResize},
		{Name: "FigureL2Resizing", F: FigureL2Resizing},
	}
}

// ---------------------------------------------------------------------
// Raw-throughput benchmarks (simulator engineering, not paper results).
// ---------------------------------------------------------------------

// SimRun is the simulator's hot path on the base config. The
// table-driven per-access path (precomputed energy tables, hoisted
// geometry) is accountable to this number.
func SimRun(b *testing.B) {
	cfg := sim.Default("gcc")
	cfg.Instructions = 200_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Instructions), "instrs/op")
}

// SimRunDeepHierarchy is the same workload on an L2+L3 stack — the
// hierarchy loop's cost scales with levels, not with a hard-wired chain.
func SimRunDeepHierarchy(b *testing.B) {
	cfg := sim.Default("gcc")
	cfg.Instructions = 200_000
	cfg.Levels = append(cfg.Levels, sim.LevelSpec{CacheSpec: sim.CacheSpec{
		Geom: geometry.Geometry{SizeBytes: 2 << 20, Assoc: 8, BlockBytes: 64, SubarrayBytes: 4 << 10},
		Org:  core.NonResizable,
	}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Instructions), "instrs/op")
}

// SimInOrder times the latency-exposing engine on the base config.
func SimInOrder(b *testing.B) {
	cfg := sim.Default("gcc")
	cfg.Engine = sim.InOrder
	cfg.Instructions = 200_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Instructions), "instrs/op")
}

// SimSampled times interval-sampled execution of exactly the SimRun
// workload (the default sampling schedule, warmup checkpointed through
// an in-memory store as the runner does) and reports sampled_speedup_x:
// the multiplier over a fully detailed sim.Run of the same config,
// measured untimed each invocation. The first iteration computes and
// records the warmup checkpoint; later iterations restore it, exactly
// the steady state of a design-space sweep. edp_relse_pct reports the
// estimate's own error bar (one relative standard error, in percent).
func SimSampled(b *testing.B) {
	full := sim.Default("gcc")
	full.Instructions = 200_000
	soloStart := time.Now()
	if _, err := sim.Run(full); err != nil {
		b.Fatal(err)
	}
	soloNs := float64(time.Since(soloStart).Nanoseconds())

	cfg := full
	cfg.Sampling = sim.DefaultSampling()
	store := runner.NewMemStore()
	var last sim.Result
	b.ReportAllocs()
	b.ResetTimer()
	sampledStart := time.Now()
	for i := 0; i < b.N; i++ {
		res, _, err := sim.RunWithCheckpoints(cfg, store)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	sampledNs := float64(time.Since(sampledStart).Nanoseconds()) / float64(b.N)
	if sampledNs > 0 {
		b.ReportMetric(soloNs/sampledNs, "sampled_speedup_x")
	}
	if last.Sample != nil {
		b.ReportMetric(100*last.Sample.EDPRelStdErr, "edp_relse_pct")
	}
	b.ReportMetric(float64(cfg.Instructions), "instrs/op")
}

// SweepGangConfigs returns the 8-configuration same-benchmark sweep the
// gang benchmark measures: one benchmark's d-cache design points (four
// capacities at two associativities), all sharing the simulation
// front-end.
func SweepGangConfigs() []sim.Config {
	var cfgs []sim.Config
	for _, assoc := range []int{2, 4} {
		for _, kb := range []int{8, 16, 32, 64} {
			cfg := sim.Default("gcc")
			cfg.Instructions = 200_000
			cfg.DCache.Geom.SizeBytes = kb << 10
			cfg.DCache.Geom.Assoc = assoc
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// SweepGang times the 8-config sweep through one gang pass
// (sim.RunGang) and reports gang_speedup_x: the multiplier over running
// the same eight configs as independent sim.Runs (measured untimed each
// invocation). This is the one-pass-sweep headline number; instrs/op
// counts all eight members' instructions, so instrs/sec here is
// sweep-cell throughput.
func SweepGang(b *testing.B) {
	cfgs := SweepGangConfigs()
	soloStart := time.Now()
	for _, cfg := range cfgs {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	soloNs := float64(time.Since(soloStart).Nanoseconds())

	b.ReportAllocs()
	b.ResetTimer()
	gangStart := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunGang(cfgs); err != nil {
			b.Fatal(err)
		}
	}
	gangNs := float64(time.Since(gangStart).Nanoseconds()) / float64(b.N)
	if gangNs > 0 {
		b.ReportMetric(soloNs/gangNs, "gang_speedup_x")
	}
	b.ReportMetric(float64(len(cfgs))*float64(cfgs[0].Instructions), "instrs/op")
}

// WorkloadGenerator times event synthesis alone.
func WorkloadGenerator(b *testing.B) {
	gen := workload.NewGenerator(workload.MustGet("gcc"))
	var ev workload.Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !gen.Next(&ev) {
			gen = workload.NewGenerator(workload.MustGet("gcc"))
		}
	}
}

// ---------------------------------------------------------------------
// Figure benchmarks: one per table/figure of the paper, each through
// the declarative batch API on a fresh Session per iteration.
// ---------------------------------------------------------------------

// Table1Hybrid regenerates the hybrid size schedule.
func Table1Hybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure4Organizations regenerates the ways-vs-sets grid.
func Figure4Organizations(b *testing.B) {
	ctx := context.Background()
	var last figures.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = figures.Figure4(ctx, resizecache.NewSession(), FigOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if v, ok := last.Cell(resizecache.DOnly, resizecache.SelectiveSets, 2); ok {
		b.ReportMetric(v, "sets2way_edp_red_pct")
	}
	if v, ok := last.Cell(resizecache.DOnly, resizecache.SelectiveWays, 16); ok {
		b.ReportMetric(v, "ways16way_edp_red_pct")
	}
}

// Figure5PerApp regenerates the per-app comparison at 4-way.
func Figure5PerApp(b *testing.B) {
	ctx := context.Background()
	var last figures.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = figures.Figure5(ctx, resizecache.NewSession(), resizecache.DOnly, FigOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	_, _, ew, es := last.Averages()
	b.ReportMetric(ew, "ways_edp_red_pct")
	b.ReportMetric(es, "sets_edp_red_pct")
}

// Figure6Hybrid regenerates the hybrid-organization comparison.
func Figure6Hybrid(b *testing.B) {
	ctx := context.Background()
	var last figures.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = figures.Figure6(ctx, resizecache.NewSession(), FigOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if v, ok := last.Cell(resizecache.DOnly, resizecache.Hybrid, 4); ok {
		b.ReportMetric(v, "hybrid4way_edp_red_pct")
	}
}

// Figure7DCacheStrategies regenerates the d-cache static/dynamic panel.
func Figure7DCacheStrategies(b *testing.B) {
	ctx := context.Background()
	var last figures.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = figures.StrategyPanel(ctx, resizecache.NewSession(),
			resizecache.DOnly, resizecache.InOrderEngine, FigOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	_, _, se, de := last.Averages()
	b.ReportMetric(se, "static_edp_red_pct")
	b.ReportMetric(de, "dynamic_edp_red_pct")
}

// Figure8ICacheStrategies regenerates the i-cache static/dynamic panel.
func Figure8ICacheStrategies(b *testing.B) {
	ctx := context.Background()
	var last figures.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = figures.StrategyPanel(ctx, resizecache.NewSession(),
			resizecache.IOnly, resizecache.OutOfOrderEngine, FigOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	_, _, se, de := last.Averages()
	b.ReportMetric(se, "static_edp_red_pct")
	b.ReportMetric(de, "dynamic_edp_red_pct")
}

// Figure9DualResize regenerates the both-caches experiment.
func Figure9DualResize(b *testing.B) {
	ctx := context.Background()
	var last figures.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = figures.Figure9(ctx, resizecache.NewSession(), FigOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	_, _, _, de, ie, be := last.Averages()
	b.ReportMetric(de+ie, "sum_edp_red_pct")
	b.ReportMetric(be, "both_edp_red_pct")
}

// FigureL2Resizing regenerates the L2-resizing extension (static panel).
func FigureL2Resizing(b *testing.B) {
	ctx := context.Background()
	var last figures.FigL2Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = figures.FigureL2(ctx, resizecache.NewSession(), resizecache.Static, FigOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if r, ok := last.Row(resizecache.SelectiveSets); ok {
		b.ReportMetric(r.EDPReductionPct, "sets_l2_edp_red_pct")
		b.ReportMetric(r.L2SizeRedPct, "sets_l2_size_red_pct")
	}
}
