package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"resizecache/internal/core"
	"resizecache/internal/geometry"
	"resizecache/internal/sim"
)

// ---------------------------------------------------------------------
// Table 1: hybrid offered sizes for a 32K 4-way cache with 1K subarrays.
// ---------------------------------------------------------------------

// Table1 renders the hybrid size/associativity matrix of the paper's
// Table 1 together with the derived resizing schedule.
func Table1() (string, error) {
	g := l1Geom(4)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: hybrid resizing granularity, %v\n\n", g)
	fmt.Fprintf(&b, "%-12s", "way size")
	for w := g.Assoc; w >= 1; w-- {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("%d-way", w))
	}
	b.WriteString("\n")
	for ws := g.WayBytes(); ws >= g.SubarrayBytes; ws >>= 1 {
		fmt.Fprintf(&b, "%-12s", geometry.FormatSize(ws))
		for w := g.Assoc; w >= 1; w-- {
			fmt.Fprintf(&b, "%8s", geometry.FormatSize(ws*w))
		}
		b.WriteString("\n")
	}
	sched, err := core.BuildSchedule(g, core.Hybrid)
	if err != nil {
		return "", err
	}
	b.WriteString("\nschedule (redundant sizes -> highest associativity):\n  ")
	for i, p := range sched.Points {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(p.String())
	}
	b.WriteString("\n")
	return b.String(), nil
}

// Table2 renders the base system configuration.
func Table2() string {
	cfg := sim.Default("gcc")
	var b strings.Builder
	b.WriteString("Table 2: base system configuration\n\n")
	rows := [][2]string{
		{"Issue/decode width", fmt.Sprintf("%d instrs per cycle", cfg.CPU.Width)},
		{"ROB / LSQ", fmt.Sprintf("%d entries / %d entries", cfg.CPU.ROBEntries, cfg.CPU.LSQEntries)},
		{"Branch predictor", "combination (gshare + bimodal)"},
		{"writeback buffer / mshr", fmt.Sprintf("%d entries / %d entries", cfg.WritebackEntries, cfg.MSHREntries)},
		{"Base L1 i-cache", fmt.Sprintf("%v; 1 cycle", cfg.ICache.Geom)},
		{"Base L1 d-cache", fmt.Sprintf("%v; 1 cycle", cfg.DCache.Geom)},
		{"L2 unified cache", fmt.Sprintf("%v; %d cycles", cfg.L2Geom, geometry.AccessLatencyCycles(cfg.L2Geom))},
		{"Memory access latency", "(80 + 5 per 8 bytes) cycles"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %s\n", r[0], r[1])
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 4: selective-ways vs selective-sets across associativities.
// ---------------------------------------------------------------------

// Fig4Cell is one bar of Figure 4: mean EDP reduction for one
// organization at one associativity.
type Fig4Cell struct {
	Assoc           int
	Org             core.Organization
	EDPReductionPct float64
}

// Fig4Result holds both charts of Figure 4.
type Fig4Result struct {
	DCache []Fig4Cell
	ICache []Fig4Cell
}

// Cell returns the mean EDP reduction for (side, org, assoc).
func (f Fig4Result) Cell(side Side, org core.Organization, assoc int) (float64, bool) {
	cells := f.DCache
	if side == ISide {
		cells = f.ICache
	}
	for _, c := range cells {
		if c.Org == org && c.Assoc == assoc {
			return c.EDPReductionPct, true
		}
	}
	return 0, false
}

// sweepOrgGrid sweeps a figure's organization × associativity grid.
func sweepOrgGrid(ctx context.Context, orgs []core.Organization, assocs []int, opts Options) (d, i []Fig4Cell, err error) {
	for _, side := range []Side{DSide, ISide} {
		for _, assoc := range assocs {
			for _, org := range orgs {
				var sum float64
				apps := opts.apps()
				for _, app := range apps {
					best, err := BestStaticContext(ctx, app, side, org, assoc, opts)
					if err != nil {
						return nil, nil, err
					}
					sum += best.EDPReductionPct()
				}
				cell := Fig4Cell{Assoc: assoc, Org: org,
					EDPReductionPct: sum / float64(len(apps))}
				if side == DSide {
					d = append(d, cell)
				} else {
					i = append(i, cell)
				}
			}
		}
	}
	return d, i, nil
}

// Figure4 regenerates Figure 4: static selective-ways vs selective-sets,
// mean processor EDP reduction, for 2/4/8/16-way 32K caches.
func Figure4(opts Options) (Fig4Result, error) {
	return Figure4Context(context.Background(), opts)
}

// Figure4Context is Figure4 with cancellation.
func Figure4Context(ctx context.Context, opts Options) (Fig4Result, error) {
	d, i, err := sweepOrgGrid(ctx,
		[]core.Organization{core.SelectiveWays, core.SelectiveSets},
		[]int{2, 4, 8, 16}, opts)
	if err != nil {
		return Fig4Result{}, err
	}
	return Fig4Result{DCache: d, ICache: i}, nil
}

// Render formats the figure as a text table.
func (f Fig4Result) Render() string {
	return renderOrgGrid("Figure 4: resizable cache organizations and energy-delay reductions",
		[]core.Organization{core.SelectiveWays, core.SelectiveSets},
		[]int{2, 4, 8, 16}, f.DCache, f.ICache)
}

func renderOrgGrid(title string, orgs []core.Organization, assocs []int, d, i []Fig4Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, side := range []struct {
		name  string
		cells []Fig4Cell
	}{{"(a) D-Cache", d}, {"(b) I-Cache", i}} {
		fmt.Fprintf(&b, "\n%s  — reduction (%%) in processor energy-delay\n", side.name)
		fmt.Fprintf(&b, "  %-16s", "")
		for _, a := range assocs {
			fmt.Fprintf(&b, "%8s", fmt.Sprintf("%d-way", a))
		}
		b.WriteString("\n")
		for _, org := range orgs {
			fmt.Fprintf(&b, "  %-16s", org)
			for _, a := range assocs {
				val := 0.0
				for _, c := range side.cells {
					if c.Org == org && c.Assoc == a {
						val = c.EDPReductionPct
					}
				}
				fmt.Fprintf(&b, "%8.1f", val)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 5: per-application comparison at 4-way.
// ---------------------------------------------------------------------

// Fig5Row is one application's bars in Figure 5.
type Fig5Row struct {
	App             string
	WaysSizeRedPct  float64
	SetsSizeRedPct  float64
	WaysEDPRedPct   float64
	SetsEDPRedPct   float64
	WaysChosen      string
	SetsChosen      string
	WaysSlowdownPct float64
	SetsSlowdownPct float64
}

// Fig5Result holds per-app rows plus averages for one cache side.
type Fig5Result struct {
	Side Side
	Rows []Fig5Row
}

// Averages returns mean (sizeWays, sizeSets, edpWays, edpSets).
func (f Fig5Result) Averages() (sw, ss, ew, es float64) {
	if len(f.Rows) == 0 {
		return
	}
	for _, r := range f.Rows {
		sw += r.WaysSizeRedPct
		ss += r.SetsSizeRedPct
		ew += r.WaysEDPRedPct
		es += r.SetsEDPRedPct
	}
	n := float64(len(f.Rows))
	return sw / n, ss / n, ew / n, es / n
}

// Row returns the row for an app.
func (f Fig5Result) Row(app string) (Fig5Row, bool) {
	for _, r := range f.Rows {
		if r.App == app {
			return r, true
		}
	}
	return Fig5Row{}, false
}

// Figure5 regenerates Figure 5 for one side: per-app average-size and
// EDP reductions of static selective-ways vs selective-sets on 32K 4-way.
func Figure5(side Side, opts Options) (Fig5Result, error) {
	return Figure5Context(context.Background(), side, opts)
}

// Figure5Context is Figure5 with cancellation.
func Figure5Context(ctx context.Context, side Side, opts Options) (Fig5Result, error) {
	out := Fig5Result{Side: side}
	for _, app := range opts.apps() {
		w, err := BestStaticContext(ctx, app, side, core.SelectiveWays, 4, opts)
		if err != nil {
			return out, err
		}
		s, err := BestStaticContext(ctx, app, side, core.SelectiveSets, 4, opts)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, Fig5Row{
			App:             app,
			WaysSizeRedPct:  w.SizeReductionPct(),
			SetsSizeRedPct:  s.SizeReductionPct(),
			WaysEDPRedPct:   w.EDPReductionPct(),
			SetsEDPRedPct:   s.EDPReductionPct(),
			WaysChosen:      w.Desc,
			SetsChosen:      s.Desc,
			WaysSlowdownPct: w.SlowdownPct(),
			SetsSlowdownPct: s.SlowdownPct(),
		})
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].App < out.Rows[j].App })
	return out, nil
}

// Render formats the figure.
func (f Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (%s): selective-ways vs selective-sets, 32K 4-way, static\n\n", f.Side)
	fmt.Fprintf(&b, "  %-10s %22s   %22s   %-18s %-18s\n", "",
		"size reduction (%)", "EDP reduction (%)", "ways chose", "sets chose")
	fmt.Fprintf(&b, "  %-10s %10s %10s   %10s %10s\n", "app", "ways", "sets", "ways", "sets")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-10s %10.1f %10.1f   %10.1f %10.1f   %-18s %-18s\n",
			r.App, r.WaysSizeRedPct, r.SetsSizeRedPct, r.WaysEDPRedPct, r.SetsEDPRedPct,
			r.WaysChosen, r.SetsChosen)
	}
	sw, ss, ew, es := f.Averages()
	fmt.Fprintf(&b, "  %-10s %10.1f %10.1f   %10.1f %10.1f\n", "AVG.", sw, ss, ew, es)
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 6: hybrid organization.
// ---------------------------------------------------------------------

// Figure6 regenerates Figure 6: hybrid vs selective-ways vs
// selective-sets across associativities.
func Figure6(opts Options) (Fig4Result, error) {
	return Figure6Context(context.Background(), opts)
}

// Figure6Context is Figure6 with cancellation.
func Figure6Context(ctx context.Context, opts Options) (Fig4Result, error) {
	d, i, err := sweepOrgGrid(ctx,
		[]core.Organization{core.Hybrid, core.SelectiveWays, core.SelectiveSets},
		[]int{2, 4, 8, 16}, opts)
	if err != nil {
		return Fig4Result{}, err
	}
	return Fig4Result{DCache: d, ICache: i}, nil
}

// RenderFigure6 formats Figure 6 (same grid shape as Figure 4 plus
// hybrid).
func RenderFigure6(f Fig4Result) string {
	return renderOrgGrid("Figure 6: effectiveness of hybrid organizations",
		[]core.Organization{core.Hybrid, core.SelectiveWays, core.SelectiveSets},
		[]int{2, 4, 8, 16}, f.DCache, f.ICache)
}

// ---------------------------------------------------------------------
// Figures 7 & 8: static vs dynamic on the two processor types.
// ---------------------------------------------------------------------

// Fig7Row is one application under one engine: static vs dynamic.
type Fig7Row struct {
	App               string
	StaticSizeRedPct  float64
	DynamicSizeRedPct float64
	StaticEDPRedPct   float64
	DynamicEDPRedPct  float64
	StaticChosen      string
	DynamicChosen     string
}

// Fig7Result is one panel (one engine) of Figure 7 or 8.
type Fig7Result struct {
	Side   Side
	Engine sim.EngineKind
	Rows   []Fig7Row
}

// Averages returns mean (staticSize, dynSize, staticEDP, dynEDP).
func (f Fig7Result) Averages() (ss, ds, se, de float64) {
	if len(f.Rows) == 0 {
		return
	}
	for _, r := range f.Rows {
		ss += r.StaticSizeRedPct
		ds += r.DynamicSizeRedPct
		se += r.StaticEDPRedPct
		de += r.DynamicEDPRedPct
	}
	n := float64(len(f.Rows))
	return ss / n, ds / n, se / n, de / n
}

// Row returns the row for an app.
func (f Fig7Result) Row(app string) (Fig7Row, bool) {
	for _, r := range f.Rows {
		if r.App == app {
			return r, true
		}
	}
	return Fig7Row{}, false
}

// StrategyPanel runs the static-vs-dynamic comparison (the machinery of
// Figures 7 and 8) for one cache side and engine, on 32K 2-way
// selective-sets as in the paper.
func StrategyPanel(side Side, engine sim.EngineKind, opts Options) (Fig7Result, error) {
	return StrategyPanelContext(context.Background(), side, engine, opts)
}

// StrategyPanelContext is StrategyPanel with cancellation.
func StrategyPanelContext(ctx context.Context, side Side, engine sim.EngineKind, opts Options) (Fig7Result, error) {
	opts.Engine = engine
	out := Fig7Result{Side: side, Engine: engine}
	for _, app := range opts.apps() {
		st, err := BestStaticContext(ctx, app, side, core.SelectiveSets, 2, opts)
		if err != nil {
			return out, err
		}
		dy, err := BestDynamicContext(ctx, app, side, core.SelectiveSets, 2, opts)
		if err != nil {
			return out, err
		}
		sizeRed := func(b Best) float64 { return b.SizeReductionPct() }
		out.Rows = append(out.Rows, Fig7Row{
			App:               app,
			StaticSizeRedPct:  sizeRed(st),
			DynamicSizeRedPct: sizeRed(dy),
			StaticEDPRedPct:   st.EDPReductionPct(),
			DynamicEDPRedPct:  dy.EDPReductionPct(),
			StaticChosen:      st.Desc,
			DynamicChosen:     dy.Desc,
		})
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].App < out.Rows[j].App })
	return out, nil
}

// Figure7 regenerates Figure 7 (d-cache): panel (a) in-order/blocking,
// panel (b) out-of-order/non-blocking.
func Figure7(opts Options) (inorder, ooo Fig7Result, err error) {
	return Figure7Context(context.Background(), opts)
}

// Figure7Context is Figure7 with cancellation.
func Figure7Context(ctx context.Context, opts Options) (inorder, ooo Fig7Result, err error) {
	inorder, err = StrategyPanelContext(ctx, DSide, sim.InOrder, opts)
	if err != nil {
		return
	}
	ooo, err = StrategyPanelContext(ctx, DSide, sim.OutOfOrder, opts)
	return
}

// Figure8 regenerates Figure 8 (i-cache).
func Figure8(opts Options) (inorder, ooo Fig7Result, err error) {
	return Figure8Context(context.Background(), opts)
}

// Figure8Context is Figure8 with cancellation.
func Figure8Context(ctx context.Context, opts Options) (inorder, ooo Fig7Result, err error) {
	inorder, err = StrategyPanelContext(ctx, ISide, sim.InOrder, opts)
	if err != nil {
		return
	}
	ooo, err = StrategyPanelContext(ctx, ISide, sim.OutOfOrder, opts)
	return
}

// Render formats one strategy panel.
func (f Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s resizing, %v engine: static vs dynamic (32K 2-way selective-sets)\n\n",
		f.Side, f.Engine)
	fmt.Fprintf(&b, "  %-10s %22s   %22s\n", "",
		"size reduction (%)", "EDP reduction (%)")
	fmt.Fprintf(&b, "  %-10s %10s %10s   %10s %10s   %s\n", "app",
		"static", "dynamic", "static", "dynamic", "chosen")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-10s %10.1f %10.1f   %10.1f %10.1f   %s | %s\n",
			r.App, r.StaticSizeRedPct, r.DynamicSizeRedPct,
			r.StaticEDPRedPct, r.DynamicEDPRedPct, r.StaticChosen, r.DynamicChosen)
	}
	ss, ds, se, de := f.Averages()
	fmt.Fprintf(&b, "  %-10s %10.1f %10.1f   %10.1f %10.1f\n", "AVG.", ss, ds, se, de)
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 9: resizing d-cache and i-cache together.
// ---------------------------------------------------------------------

// Fig9Row is one application's three bars: d alone, i alone, both.
type Fig9Row struct {
	App string
	// Size reductions are normalized to the combined base d+i capacity.
	DAloneSizeRedPct float64
	IAloneSizeRedPct float64
	BothSizeRedPct   float64
	DAloneEDPRedPct  float64
	IAloneEDPRedPct  float64
	BothEDPRedPct    float64
	BothSlowdownPct  float64
}

// Fig9Result holds Figure 9.
type Fig9Result struct {
	Rows []Fig9Row
}

// Averages returns mean (dSize, iSize, bothSize, dEDP, iEDP, bothEDP).
func (f Fig9Result) Averages() (dsz, isz, bsz, de, ie, be float64) {
	if len(f.Rows) == 0 {
		return
	}
	for _, r := range f.Rows {
		dsz += r.DAloneSizeRedPct
		isz += r.IAloneSizeRedPct
		bsz += r.BothSizeRedPct
		de += r.DAloneEDPRedPct
		ie += r.IAloneEDPRedPct
		be += r.BothEDPRedPct
	}
	n := float64(len(f.Rows))
	return dsz / n, isz / n, bsz / n, de / n, ie / n, be / n
}

// Row returns the row for an app.
func (f Fig9Result) Row(app string) (Fig9Row, bool) {
	for _, r := range f.Rows {
		if r.App == app {
			return r, true
		}
	}
	return Fig9Row{}, false
}

// Figure9 regenerates Figure 9: static selective-sets resizing of the
// d-cache alone, the i-cache alone, and both simultaneously, on the base
// configuration (32K 2-way L1s, out-of-order engine). The static points
// chosen for the "both" run are the same profiled winners as the
// standalone runs, matching the paper's decoupled-profiling argument.
func Figure9(opts Options) (Fig9Result, error) {
	return Figure9Context(context.Background(), opts)
}

// Figure9Context is Figure9 with cancellation.
func Figure9Context(ctx context.Context, opts Options) (Fig9Result, error) {
	opts.Engine = sim.OutOfOrder
	var out Fig9Result
	for _, app := range opts.apps() {
		dBest, err := BestStaticContext(ctx, app, DSide, core.SelectiveSets, 2, opts)
		if err != nil {
			return out, err
		}
		iBest, err := BestStaticContext(ctx, app, ISide, core.SelectiveSets, 2, opts)
		if err != nil {
			return out, err
		}
		// The combined run reuses each profiled winner's Spec verbatim
		// (Best.Spec.StaticIndex carries the chosen schedule point), so the
		// "both" configuration is exactly the standalone winners composed —
		// no lossy reverse-lookup from average sizes.
		comb, err := CombinedContext(ctx, app, core.SelectiveSets, 2, dBest, iBest, opts)
		if err != nil {
			return out, err
		}
		bothRes := comb.Chosen

		base := dBest.Base // non-resizable baseline, same for all three
		full := float64(2 * 32 << 10)
		row := Fig9Row{
			App:              app,
			DAloneSizeRedPct: 100 * (float64(32<<10) - dBest.Chosen.DCache.AvgBytes) / full,
			IAloneSizeRedPct: 100 * (float64(32<<10) - iBest.Chosen.ICache.AvgBytes) / full,
			BothSizeRedPct:   100 * (full - bothRes.DCache.AvgBytes - bothRes.ICache.AvgBytes) / full,
			DAloneEDPRedPct:  dBest.EDPReductionPct(),
			IAloneEDPRedPct:  iBest.EDPReductionPct(),
			BothEDPRedPct:    bothRes.EDP.ReductionPct(base.EDP),
			BothSlowdownPct:  100 * bothRes.EDP.Slowdown(base.EDP),
		}
		out.Rows = append(out.Rows, row)
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].App < out.Rows[j].App })
	return out, nil
}

// Render formats Figure 9.
func (f Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: decoupled resizings on d-cache and i-cache (static selective-sets, 32K 2-way, OoO)\n\n")
	fmt.Fprintf(&b, "  %-10s %28s   %28s\n", "",
		"size reduction (%, of d+i)", "EDP reduction (%)")
	fmt.Fprintf(&b, "  %-10s %8s %8s %8s   %8s %8s %8s %8s\n", "app",
		"d", "i", "both", "d", "i", "both", "d+i sum")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-10s %8.1f %8.1f %8.1f   %8.1f %8.1f %8.1f %8.1f\n",
			r.App, r.DAloneSizeRedPct, r.IAloneSizeRedPct, r.BothSizeRedPct,
			r.DAloneEDPRedPct, r.IAloneEDPRedPct, r.BothEDPRedPct,
			r.DAloneEDPRedPct+r.IAloneEDPRedPct)
	}
	dsz, isz, bsz, de, ie, be := f.Averages()
	fmt.Fprintf(&b, "  %-10s %8.1f %8.1f %8.1f   %8.1f %8.1f %8.1f %8.1f\n",
		"AVG.", dsz, isz, bsz, de, ie, be, de+ie)
	return b.String()
}
