package experiment

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"resizecache/internal/core"
	"resizecache/internal/geometry"
	"resizecache/internal/runner"
	"resizecache/internal/sim"
)

// fastOpts trades fidelity for test speed; claim tests use tolerant
// thresholds accordingly. Full-fidelity numbers come from cmd/figures.
func fastOpts() Options {
	// 1M instructions covers at least one full phase period of every
	// profile; shorter runs truncate phase structure and distort the
	// profiling sweeps.
	o := DefaultOptions()
	o.Instructions = 1_000_000
	return o
}

func TestBestStaticPicksProfiledMinimum(t *testing.T) {
	opts := fastOpts()
	best, err := BestStatic("m88ksim", DSide, core.SelectiveSets, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	// m88ksim's tiny working set must downsize substantially and win EDP.
	if best.SizeReductionPct() < 40 {
		t.Errorf("m88ksim size reduction %.1f%%, want >= 40%%", best.SizeReductionPct())
	}
	if best.EDPReductionPct() <= 5 {
		t.Errorf("m88ksim EDP reduction %.1f%%, want > 5%%", best.EDPReductionPct())
	}
	if best.Spec.Kind != sim.PolicyStatic {
		t.Error("static sweep returned non-static spec")
	}
}

// TestSoloSweepGangsCandidates: a lone sweep (the sequential
// Simulate/BestStatic path, no plan in sight) must still route its
// candidates through the runner's batched Enqueue, so same-front
// configs coalesce into gangs and the gather loop never pays a
// fan-out barrier.
func TestSoloSweepGangsCandidates(t *testing.T) {
	opts := DefaultOptions()
	opts.Instructions = 60_000
	r := runner.New(runner.Options{})
	opts.Runner = r
	if _, err := BestStatic("m88ksim", DSide, core.SelectiveSets, 2, opts); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.EnqueueBatches == 0 || st.Enqueued == 0 {
		t.Fatalf("solo sweep bypassed Enqueue: %+v", st)
	}
	if st.Ganged == 0 || st.GangBatches == 0 {
		t.Errorf("solo sweep coalesced no gangs: %+v", st)
	}
	if st.Barriers != 0 {
		t.Errorf("solo sweep fanned out %d gather barriers, want 0", st.Barriers)
	}
}

func TestSwimNeverDownsizes(t *testing.T) {
	opts := fastOpts()
	for _, org := range []core.Organization{core.SelectiveWays, core.SelectiveSets} {
		best, err := BestStatic("swim", DSide, org, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		if best.SizeReductionPct() > 1 {
			t.Errorf("swim downsized %.1f%% under %v; paper: working set fills 32K",
				best.SizeReductionPct(), org)
		}
	}
}

func TestCompressFavorsWaysGranularity(t *testing.T) {
	// compress's ~20K working set needs the 24K point only selective-ways
	// offers at 4-way (paper §4.1).
	opts := fastOpts()
	w, err := BestStatic("compress", DSide, core.SelectiveWays, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BestStatic("compress", DSide, core.SelectiveSets, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if w.EDPReductionPct() <= s.EDPReductionPct() {
		t.Errorf("compress: ways %.1f%% should beat sets %.1f%%",
			w.EDPReductionPct(), s.EDPReductionPct())
	}
	if !strings.Contains(w.Desc, "24K") {
		t.Errorf("compress ways chose %s, want the 24K point", w.Desc)
	}
}

func TestConflictAppsFavorSets(t *testing.T) {
	// Conflict-bound apps keep their conflict groups resident only while
	// associativity is maintained (paper Fig. 5a). The paper also lists
	// su2cor here; our su2cor profile emphasizes its periodic phase
	// behaviour (Fig. 7) instead — see EXPERIMENTS.md deviations.
	opts := fastOpts()
	for _, app := range []string{"apsi", "vpr", "tomcatv"} {
		w, err := BestStatic(app, DSide, core.SelectiveWays, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		s, err := BestStatic(app, DSide, core.SelectiveSets, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		if s.EDPReductionPct() <= w.EDPReductionPct() {
			t.Errorf("%s: sets %.1f%% should beat ways %.1f%%",
				app, s.EDPReductionPct(), w.EDPReductionPct())
		}
	}
}

func TestCombinedResizingIsAdditive(t *testing.T) {
	if testing.Short() {
		t.Skip("three-run experiment in -short mode")
	}
	opts := fastOpts()
	app := "m88ksim"
	dBest, err := BestStatic(app, DSide, core.SelectiveSets, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	iBest, err := BestStatic(app, ISide, core.SelectiveSets, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	both, err := Combined(app, core.SelectiveSets, 2, dBest, iBest, opts)
	if err != nil {
		t.Fatal(err)
	}
	sum := dBest.EDPReductionPct() + iBest.EDPReductionPct()
	got := both.EDPReductionPct()
	if got < 0.7*sum || got > 1.3*sum+2 {
		t.Errorf("combined %.1f%% not additive vs d+i sum %.1f%%", got, sum)
	}
}

func TestSlowdownEnvelopeHolds(t *testing.T) {
	// Paper: every reported point is within 6%% performance degradation.
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	opts := fastOpts()
	for _, app := range []string{"ammp", "compress", "gcc", "swim"} {
		for _, org := range []core.Organization{core.SelectiveWays, core.SelectiveSets} {
			best, err := BestStatic(app, DSide, org, 4, opts)
			if err != nil {
				t.Fatal(err)
			}
			if best.SlowdownPct() > 6 {
				t.Errorf("%s/%v: slowdown %.1f%% exceeds 6%%", app, org, best.SlowdownPct())
			}
		}
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	cfgs := []sim.Config{sim.Default("gcc"), sim.Default("nosuch")}
	cfgs[0].Instructions = 1000
	opts := DefaultOptions()
	opts.Runner = runner.New(runner.Options{Workers: 2})
	if _, err := opts.runAll(context.Background(), cfgs); err == nil {
		t.Fatal("bad config did not surface")
	}
}

func TestSweepsRejectBothSides(t *testing.T) {
	opts := DefaultOptions()
	if _, err := BestStatic("gcc", BothSides, core.SelectiveSets, 2, opts); err == nil {
		t.Error("BestStatic accepted BothSides")
	}
	if _, err := BestDynamic("gcc", BothSides, core.SelectiveSets, 2, opts); err == nil {
		t.Error("BestDynamic accepted BothSides")
	}
}

func TestSideString(t *testing.T) {
	if DSide.String() != "d-cache" || ISide.String() != "i-cache" ||
		BothSides.String() != "d+i-caches" {
		t.Fatal("Side strings wrong")
	}
}

func TestDynamicCandidatesDeduplicated(t *testing.T) {
	sched, err := core.BuildSchedule(l1Geom(2), core.SelectiveSets)
	if err != nil {
		t.Fatal(err)
	}
	cands := dynamicCandidates(sched, false)
	seen := map[DynamicParams]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %+v", c)
		}
		seen[c] = true
		if c.MissBound == 0 || c.Interval == 0 {
			t.Fatalf("degenerate candidate %+v", c)
		}
	}
	if len(cands) < 10 {
		t.Fatalf("only %d candidates", len(cands))
	}
}

// tinyArtifactOpts runs one app at minimal fidelity on a private runner
// — enough to exercise caching plumbing without a full-fidelity sweep.
func tinyArtifactOpts() Options {
	opts := DefaultOptions()
	opts.Instructions = 60_000
	opts.Apps = []string{"m88ksim"}
	opts.Runner = runner.New(runner.Options{})
	return opts
}

// TestCombinedUsesProfiledSpecs guards the Figure 9 plumbing: the
// combined run must hold exactly the schedule points named by the
// profiled winners' Spec.StaticIndex — not points re-derived from
// average sizes, which can mispick between near-equal entries.
func TestCombinedUsesProfiledSpecs(t *testing.T) {
	opts := tinyArtifactOpts()
	sched, err := core.BuildSchedule(l1Geom(2), core.SelectiveSets)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Points) < 3 {
		t.Fatalf("schedule too short: %d points", len(sched.Points))
	}
	dIdx, iIdx := 1, 2
	mkBest := func(side Side, idx int) Best {
		return Best{App: "m88ksim", Side: side, Org: core.SelectiveSets,
			Spec: sim.PolicySpec{Kind: sim.PolicyStatic, StaticIndex: idx}}
	}
	comb, err := Combined("m88ksim", core.SelectiveSets, 2,
		mkBest(DSide, dIdx), mkBest(ISide, iIdx), opts)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, avg float64, idx int) {
		want := float64(sched.Points[idx].Bytes)
		if avg < 0.99*want || avg > 1.01*want {
			t.Errorf("%s held %.0f bytes, want schedule point %d (%.0f)", name, avg, idx, want)
		}
	}
	check("d-cache", comb.Chosen.DCache.AvgBytes, dIdx)
	check("i-cache", comb.Chosen.ICache.AvgBytes, iIdx)
}

// TestSweepArtifactWarmsAcrossDrivers: regenerating one figure's grid
// warms the next. A Figure-6-shaped grid repeats a Figure-4-shaped
// grid's (ways, sets) cells and adds hybrid; the repeated cells must
// resolve as whole-sweep artifact hits, and re-running the first grid
// must submit zero configs.
func TestSweepArtifactWarmsAcrossDrivers(t *testing.T) {
	opts := tinyArtifactOpts()
	ctx := context.Background()
	grid := func(orgs ...core.Organization) {
		t.Helper()
		for _, side := range []Side{DSide, ISide} {
			for _, org := range orgs {
				for _, app := range opts.apps() {
					if _, err := BestStaticContext(ctx, app, side, org, 2, opts); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	grid(core.SelectiveWays, core.SelectiveSets) // Figure 4's cells
	cold := opts.Runner.Stats()
	if cold.ArtifactComputes != 4 { // 2 sides x 2 orgs x 1 app
		t.Fatalf("cold grid computed %d artifacts, want 4", cold.ArtifactComputes)
	}
	if cold.ArtifactHits != 0 {
		t.Fatalf("cold grid scored %d artifact hits, want 0", cold.ArtifactHits)
	}

	grid(core.Hybrid, core.SelectiveWays, core.SelectiveSets) // Figure 6 repeats them
	warm := opts.Runner.Stats()
	if got := warm.ArtifactHits - cold.ArtifactHits; got != 4 {
		t.Errorf("repeated cells scored %d artifact hits, want 4", got)
	}
	if got := warm.ArtifactComputes - cold.ArtifactComputes; got != 2 { // hybrid only
		t.Errorf("warm grid computed %d new artifacts, want 2 (hybrid)", got)
	}

	grid(core.SelectiveWays, core.SelectiveSets) // fully warm
	again := opts.Runner.Stats()
	if again.Submitted != warm.Submitted || again.Runs != warm.Runs {
		t.Errorf("fully warm grid submitted configs: %d -> %d submitted, %d -> %d runs",
			warm.Submitted, again.Submitted, warm.Runs, again.Runs)
	}
}

// TestSweepArtifactResumesFromStore: with a persistent store, a fresh
// runner (a new process in real use) resolves a repeated sweep from the
// artifact tier — zero submissions — and returns the identical Best.
func TestSweepArtifactResumesFromStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	store, err := runner.OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := tinyArtifactOpts()
	opts.Runner = runner.New(runner.Options{Store: store})
	first, err := BestStatic("m88ksim", DSide, core.SelectiveSets, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}

	store2, err := runner.OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	opts.Runner = runner.New(runner.Options{Store: store2})
	second, err := BestStatic("m88ksim", DSide, core.SelectiveSets, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := opts.Runner.Stats()
	if st.ArtifactStoreHits != 1 || st.Submitted != 0 || st.Runs != 0 {
		t.Errorf("resumed sweep stats = %+v, want 1 artifact store hit, 0 submitted, 0 runs", st)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("resumed Best differs:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestCachedBestRepairsUndecodablePayload: a stored payload that no
// longer decodes must cost exactly one recompute — the fresh payload
// repairs both tiers, so later calls (and later processes) hit again.
func TestCachedBestRepairsUndecodablePayload(t *testing.T) {
	store := runner.NewMemStore()
	cfg := sim.Default("gcc")
	cfg.Instructions = 1000
	cfgs := []sim.Config{cfg}
	// Valid JSON (so every Store backend keeps it) that does not decode
	// into a Best payload.
	store.RecordArtifact(sweepArtifactKey("best-static", cfgs), []byte("[1,2,3]"))

	var computes int
	want := Best{App: "gcc", Desc: "static 8K/2-way"}
	compute := func(context.Context) (Best, error) {
		computes++
		return want, nil
	}
	ctx := context.Background()
	r1 := runner.New(runner.Options{Store: store})
	got, err := cachedBest(ctx, r1, "best-static", cfgs, compute)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != want.App || got.Desc != want.Desc {
		t.Errorf("repair returned %+v, want %+v", got, want)
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	// Same runner: the repaired in-memory tier must decode.
	if _, err := cachedBest(ctx, r1, "best-static", cfgs, compute); err != nil {
		t.Fatal(err)
	}
	// Fresh runner, same store: the repaired persistent tier must decode.
	r2 := runner.New(runner.Options{Store: store})
	again, err := cachedBest(ctx, r2, "best-static", cfgs, compute)
	if err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Errorf("repaired payload recomputed (computes = %d)", computes)
	}
	if again.Desc != want.Desc {
		t.Errorf("repaired store returned %+v", again)
	}
}

// TestSweepArtifactKeySeparatesSweeps: distinct sweeps must fingerprint
// apart even when they share structure, and identical sweeps must not.
func TestSweepArtifactKeySeparatesSweeps(t *testing.T) {
	cfgs := func(app string, n uint64) []sim.Config {
		c := sim.Default(app)
		c.Instructions = n
		return []sim.Config{c}
	}
	a := sweepArtifactKey("best-static", cfgs("gcc", 1000))
	if b := sweepArtifactKey("best-static", cfgs("gcc", 1000)); a != b {
		t.Error("identical sweeps fingerprint apart")
	}
	if b := sweepArtifactKey("best-dynamic", cfgs("gcc", 1000)); a == b {
		t.Error("sweep kind does not move the fingerprint")
	}
	if b := sweepArtifactKey("best-static", cfgs("vpr", 1000)); a == b {
		t.Error("config contents do not move the fingerprint")
	}
	if b := sweepArtifactKey("best-static", append(cfgs("gcc", 1000), cfgs("gcc", 2000)...)); a == b {
		t.Error("config count does not move the fingerprint")
	}
}

func TestBestAccessorsOnSides(t *testing.T) {
	b := Best{Side: ISide, Chosen: sim.Result{}, Base: sim.Result{}}
	// Zero results: reductions degenerate but must not panic.
	_ = b.SizeReductionPct()
	_ = b.SlowdownPct()
	b.Side = DSide
	_ = b.SizeReductionPct()
}

// TestBestSpecMatchesBestStatic guards the SweepSpec refactor: the spec
// path must enumerate the identical sweep (same artifact fingerprint,
// same winner) as the classic entry points.
func TestBestSpecMatchesBestStatic(t *testing.T) {
	opts := tinyArtifactOpts()
	direct, err := BestStatic("m88ksim", DSide, core.SelectiveSets, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same sweep through the spec on the same runner: a pure artifact
	// hit, zero submissions.
	before := opts.Runner.Stats()
	spec := NewSweepSpec("m88ksim", DSide, core.SelectiveSets, 2, false, opts)
	viaSpec, err := BestSpec(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := opts.Runner.Stats()
	if st.Submitted != before.Submitted || st.ArtifactHits != before.ArtifactHits+1 {
		t.Errorf("spec path did not hit the sweep artifact: %+v -> %+v", before, st)
	}
	if !reflect.DeepEqual(direct, viaSpec) {
		t.Errorf("spec winner differs:\ndirect: %+v\nspec:   %+v", direct, viaSpec)
	}
}

// TestEnqueueSweepsBatchesColdAndSkipsWarm: the plan-level batch pass
// must enqueue every distinct config of cold sweeps in one runner pass
// (shared baselines deduplicated), let gathers join with zero fan-out
// barriers, and enqueue nothing once the sweeps' artifacts are warm.
func TestEnqueueSweepsBatchesColdAndSkipsWarm(t *testing.T) {
	opts := tinyArtifactOpts()
	ctx := context.Background()
	specs := []SweepSpec{
		NewSweepSpec("m88ksim", DSide, core.SelectiveSets, 2, false, opts),
		NewSweepSpec("m88ksim", ISide, core.SelectiveSets, 2, false, opts),
	}
	n, _ := EnqueueSweeps(ctx, specs, opts)
	if n == 0 {
		t.Fatal("cold sweeps enqueued nothing")
	}
	for _, spec := range specs {
		if _, err := BestSpecContext(ctx, spec, opts); err != nil {
			t.Fatal(err)
		}
	}
	st := opts.Runner.Stats()
	if st.EnqueueBatches != 1 || st.Enqueued != uint64(n) {
		t.Errorf("enqueue stats = %+v, want one pass of %d configs", st, n)
	}
	if st.Barriers != 0 {
		t.Errorf("gathers of enqueued sweeps fanned out %d barriers, want 0", st.Barriers)
	}
	if st.Runs != uint64(n) {
		t.Errorf("ran %d configs, want the %d enqueued (dedup broken?)", st.Runs, n)
	}
	// Warm: artifacts exist, so the batch pass skips everything.
	if again, _ := EnqueueSweeps(ctx, specs, opts); again != 0 {
		t.Errorf("warm sweeps enqueued %d configs, want 0", again)
	}
	if st := opts.Runner.Stats(); st.EnqueueBatches != 1 {
		t.Errorf("warm pass still called Enqueue: %+v", st)
	}
}

// TestL2SideSweep: the sweep machinery is hierarchy-generic — an
// L2Side spec profiles the shared L2's schedule and reports through
// the level reports; a hierarchy with no shared level is rejected.
func TestL2SideSweep(t *testing.T) {
	opts := DefaultOptions()
	opts.Instructions = 150_000
	opts.Runner = runner.New(runner.Options{})
	base := BaseConfig("m88ksim", 2, opts)
	best, err := BestSpec(SweepSpec{App: "m88ksim", Side: L2Side,
		Org: core.SelectiveWays, Base: base}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if best.Side != L2Side {
		t.Fatalf("side = %v", best.Side)
	}
	if best.SizeReductionPct() <= 0 {
		t.Errorf("m88ksim's L2 did not shrink: %s (%.1f%%)", best.Desc, best.SizeReductionPct())
	}
	if got := best.Chosen.L2().AvgBytes; got >= 512<<10 {
		t.Errorf("chosen L2 average %v bytes, want below full size", got)
	}
	// The L1 reports must be untouched by the L2 sweep.
	if best.Chosen.DCache.AvgBytes != 32<<10 {
		t.Errorf("d-cache perturbed: %+v", best.Chosen.DCache)
	}

	flat := base
	flat.Levels = nil
	flat.L2Geom = geometry.Geometry{}
	if _, err := BestSpec(SweepSpec{App: "m88ksim", Side: L2Side,
		Org: core.SelectiveWays, Base: flat}, opts); err == nil {
		t.Error("L2 sweep over an empty hierarchy accepted")
	}
}

// TestCombinedBestsAppliesEverySide: the generalized combined run holds
// each profiled winner — including the L2's — in one simulation.
func TestCombinedBestsAppliesEverySide(t *testing.T) {
	opts := DefaultOptions()
	opts.Instructions = 150_000
	opts.Runner = runner.New(runner.Options{})
	base := BaseConfig("m88ksim", 2, opts)
	d, err := BestSpec(SweepSpec{App: "m88ksim", Side: DSide,
		Org: core.SelectiveSets, Base: base}, opts)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := BestSpec(SweepSpec{App: "m88ksim", Side: L2Side,
		Org: core.SelectiveWays, Base: base}, opts)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := CombinedBests(base, []Best{d, l2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if comb.Chosen.DCache.AvgBytes >= 32<<10 {
		t.Errorf("combined run left the d-cache at full size: %+v", comb.Chosen.DCache)
	}
	if comb.Chosen.L2().AvgBytes >= 512<<10 {
		t.Errorf("combined run left the L2 at full size: %+v", comb.Chosen.L2())
	}
	if comb.EDPReductionPct() <= 0 {
		t.Errorf("combined resizing lost EDP: %.1f%%", comb.EDPReductionPct())
	}
	// SizeReductionPct computes over the actually resized sides (d + L2,
	// recorded in Resized) — the capacity-dominant L2 shrink must show,
	// not be averaged away against the never-resized i-cache.
	if got := comb.SizeReductionPct(); got <= 50 {
		t.Errorf("combined size reduction %.1f%% ignores the resized L2", got)
	}
	if _, err := CombinedBests(base, nil, opts); err == nil {
		t.Error("empty parts accepted")
	}
}

// TestApplySideL2PreservesLevelKnobs: replacing the L2's cache core
// must keep the base level's structural knobs AND its ablation
// switches, so an ablated-base sweep compares like against like.
func TestApplySideL2PreservesLevelKnobs(t *testing.T) {
	cfg := sim.Default("gcc")
	cfg.Levels[0].AblationFreeFlush = true
	cfg.Levels[0].Precharge = sim.PrechargeFull
	cfg.Levels[0].MSHREntries = 4
	geom := cfg.Levels[0].Geom
	applySide(&cfg, L2Side, sim.CacheSpec{Geom: geom, Org: core.SelectiveWays,
		Policy: sim.PolicySpec{Kind: sim.PolicyStatic, StaticIndex: 1}})
	l := cfg.Levels[0]
	if l.Org != core.SelectiveWays || l.Policy.Kind != sim.PolicyStatic {
		t.Errorf("cache core not replaced: %+v", l)
	}
	if !l.AblationFreeFlush || l.Precharge != sim.PrechargeFull || l.MSHREntries != 4 {
		t.Errorf("level knobs dropped: %+v", l)
	}
}

// TestSweepSpecArtifactKey: stable across calls, distinct per sweep,
// and erroring for an unsweepable spec.
func TestSweepSpecArtifactKey(t *testing.T) {
	opts := DefaultOptions()
	opts.Instructions = 100_000
	st := SweepSpec{App: "gcc", Side: DSide, Org: core.SelectiveSets,
		Base: BaseConfig("gcc", 2, opts)}
	a, err := st.ArtifactKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.ArtifactKey()
	if err != nil || a != b {
		t.Fatalf("artifact key unstable: %v vs %v (%v)", a, b, err)
	}
	dyn := st
	dyn.Dynamic = true
	if k, _ := dyn.ArtifactKey(); k == a {
		t.Error("static and dynamic sweeps share an artifact key")
	}
	l2 := st
	l2.Side = L2Side
	l2.Org = core.SelectiveWays
	if k, _ := l2.ArtifactKey(); k == a {
		t.Error("d-cache and L2 sweeps share an artifact key")
	}
	bad := l2
	bad.Base.Levels = nil
	bad.Base.L2Geom = geometry.Geometry{}
	if _, err := bad.ArtifactKey(); err == nil {
		t.Error("L2 sweep over an empty hierarchy produced a key")
	}
}
