package experiment

import (
	"context"
	"encoding/json"

	"resizecache/internal/runner"
	"resizecache/internal/sim"
)

// Sweep-artifact caching: BestStatic/BestDynamic winner selections are
// sweep-level artifacts — pure functions of the configs the sweep runs —
// and every figure driver re-derives the same grids (Figure 6 repeats
// Figure 4's ways/sets cells, Figure 9 repeats Figure 5's and 8's
// selective-sets winners). The helpers here memoize a Best through the
// runner's two-tier artifact cache (in-memory + persistent store) under
// a content-addressed fingerprint, so regenerating one figure warms the
// next and a resumed cmd/figures run skips whole sweeps.

// artifactVersion tags the serialized Best schema and the
// winner-selection algorithm (pickBest, candidate enumeration). Bump it
// whenever either changes: persisted artifacts from older code are then
// unreachable (different fingerprints) instead of misapplied.
// Version 2: sim.Result gained the per-level hierarchy reports.
const artifactVersion = 2

// sweepArtifactKey fingerprints one winner-selection sweep: the sweep
// kind plus the content fingerprint of every config it would run, in
// order. Anything that changes any underlying simulation — app, side,
// organization, associativity, schedule, engine, instruction budget,
// energy model, the sim.Key encoding itself — changes some cfg.Key()
// and therefore the artifact key, so no Options field needs to be
// enumerated here.
func sweepArtifactKey(kind string, cfgs []sim.Config) sim.Key {
	b := sim.NewKeyBuilder("experiment/sweep")
	b.Int(artifactVersion)
	b.Str(kind)
	for _, cfg := range cfgs {
		b.RawKey(cfg.Key())
	}
	return b.Sum()
}

// cachedBest resolves a sweep's Best through the runner's artifact
// cache, running compute only on a cold fingerprint. A payload that no
// longer decodes (e.g. a store written by a foreign build) falls back
// to the direct sweep and repairs both cache tiers with the fresh
// payload, so the broken bytes cost one recompute, not one per call.
func cachedBest(ctx context.Context, r *runner.Runner, kind string, cfgs []sim.Config, compute func(context.Context) (Best, error)) (Best, error) {
	key := sweepArtifactKey(kind, cfgs)
	data, err := r.Artifact(ctx, key, func(ctx context.Context) ([]byte, error) {
		best, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		return json.Marshal(stripTraces(best))
	})
	if err != nil {
		return Best{}, err
	}
	var best Best
	if err := json.Unmarshal(data, &best); err != nil {
		fresh, cerr := compute(ctx)
		if cerr != nil {
			return Best{}, cerr
		}
		fresh = stripTraces(fresh)
		if repaired, merr := json.Marshal(fresh); merr == nil {
			r.PutArtifact(key, repaired)
		}
		return fresh, nil
	}
	return best, nil
}

// stripTraces drops the per-interval size traces from a Best's results
// before caching. No figure or facade consumer reads a trace through a
// Best (they come from direct sim runs), and a dynamic winner's trace
// is by far the largest field — hundreds of ints per cache, repeated in
// every artifact sharing the baseline. Stripping uniformly on the cold
// path too keeps cold and warm Bests identical.
func stripTraces(b Best) Best {
	strip := func(r sim.Result) sim.Result {
		r.DCache.SizeTrace = nil
		r.ICache.SizeTrace = nil
		if len(r.Levels) > 0 {
			levels := append([]sim.LevelReport(nil), r.Levels...)
			for i := range levels {
				levels[i].SizeTrace = nil
			}
			r.Levels = levels
		}
		return r
	}
	b.Chosen = strip(b.Chosen)
	b.Base = strip(b.Base)
	return b
}
