package experiment

import (
	"strings"
	"testing"
)

func sensOpts() Options {
	o := DefaultOptions()
	o.Instructions = 400_000
	o.Apps = []string{"ammp", "vpr"}
	return o
}

func TestSubarraySensitivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	rows, err := SubarraySensitivity(sensOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Finer subarrays offer more schedule points, so size reduction must
	// be monotonically non-increasing as subarrays coarsen.
	for i := 1; i < len(rows); i++ {
		if rows[i].SizeRedPct > rows[i-1].SizeRedPct+1 {
			t.Errorf("coarser subarray increased size reduction: %+v -> %+v",
				rows[i-1], rows[i])
		}
	}
	// 512B subarrays enable at least as much saving as 4K ones.
	if rows[0].EDPReductionPct < rows[3].EDPReductionPct-0.5 {
		t.Errorf("finest granularity should not lose to coarsest: %+v vs %+v",
			rows[0], rows[3])
	}
}

func TestIntervalSensitivityRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	rows, err := IntervalSensitivity(sensOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SizeRedPct < 0 || r.SizeRedPct > 100 {
			t.Errorf("implausible size reduction %+v", r)
		}
	}
}

func TestL2SensitivityStability(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	rows, err := L2Sensitivity(sensOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's decoupling claim is about footprint: the profiled L1
	// sizes should be stable across L2 capacities. (The EDP percentage
	// legitimately dilutes as a larger L2 takes a bigger energy share.)
	for i := 1; i < len(rows); i++ {
		d := rows[i].SizeRedPct - rows[0].SizeRedPct
		if d < -5 || d > 5 {
			t.Errorf("L2 size changed the profiled L1 sizes: %+v vs %+v", rows[0], rows[i])
		}
	}
	for _, r := range rows {
		if r.EDPReductionPct <= 0 {
			t.Errorf("resizing gain vanished at %s", r.Label)
		}
	}
}

func TestRenderSensitivity(t *testing.T) {
	s := RenderSensitivity("title", []SensitivityRow{{Label: "x", EDPReductionPct: 1.5, SizeRedPct: 50}})
	if !strings.Contains(s, "title") || !strings.Contains(s, "x") || !strings.Contains(s, "1.5") {
		t.Fatalf("render = %q", s)
	}
}
