package experiment

import (
	"context"
	"fmt"
	"strings"

	"resizecache/internal/core"
	"resizecache/internal/geometry"
	"resizecache/internal/sim"
)

// Sensitivity studies — the "exploiting choice" follow-ups the paper
// leaves implicit: how the headline results move with the subarray
// granularity (which sets the resizing floor and step), the dynamic
// controller's interval, and the L2 size backing the resized L1s.
//
// Each driver batch-schedules its whole parameter grid: every cold
// sweep (or raw config pair) is enqueued on the runner in one pass
// before any gathering starts, so the worker pool interleaves across
// parameter points instead of draining at each point's barrier.

// SensitivityRow is one parameter point of a sensitivity sweep.
type SensitivityRow struct {
	Label           string
	EDPReductionPct float64 // suite mean, best static selective-sets d-cache
	SizeRedPct      float64
}

// SubarraySensitivity sweeps the subarray size (512B, 1K, 2K, 4K) for a
// 32K 2-way selective-sets d-cache. Smaller subarrays offer smaller
// minimum sizes (512B subarray -> 1K minimum at 2-way), larger ones
// coarser schedules.
func SubarraySensitivity(opts Options) ([]SensitivityRow, error) {
	return SubarraySensitivityContext(context.Background(), opts)
}

// SubarraySensitivityContext is SubarraySensitivity with cancellation.
func SubarraySensitivityContext(ctx context.Context, opts Options) ([]SensitivityRow, error) {
	apps := opts.apps()
	type point struct {
		label string
		specs []SweepSpec
	}
	var points []point
	var all []SweepSpec
	for _, sub := range []int{512, 1 << 10, 2 << 10, 4 << 10} {
		geom := geometry.Geometry{SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, SubarrayBytes: sub}
		if err := geom.Validate(); err != nil {
			return nil, err
		}
		sched, err := core.BuildSchedule(geom, core.SelectiveSets)
		if err != nil {
			return nil, err
		}
		p := point{label: fmt.Sprintf("%s subarray (%d points, min %s)",
			geometry.FormatSize(sub), len(sched.Points), geometry.FormatSize(sched.MinBytes()))}
		for _, app := range apps {
			base := baseConfig(app, opts.Engine, opts.Instructions, 2, 2)
			base.DCache.Geom = geom
			p.specs = append(p.specs, SweepSpec{App: app, Side: DSide,
				Org: core.SelectiveSets, Base: base})
		}
		points = append(points, p)
		all = append(all, p.specs...)
	}
	// One batched pass over the whole grid; on an early error return,
	// cancel and drain the stragglers so a caller flushing a store right
	// after cannot race their result writes.
	enqCtx, stopEnqueue := context.WithCancel(ctx)
	_, wait := EnqueueSweeps(enqCtx, all, opts)
	defer func() { stopEnqueue(); wait() }()
	var out []SensitivityRow
	for _, p := range points {
		var edp, size float64
		for _, spec := range p.specs {
			best, err := BestSpecContext(ctx, spec, opts)
			if err != nil {
				return nil, err
			}
			edp += best.EDPReductionPct()
			size += best.SizeReductionPct()
		}
		n := float64(len(apps))
		out = append(out, SensitivityRow{Label: p.label,
			EDPReductionPct: edp / n, SizeRedPct: size / n})
	}
	return out, nil
}

// IntervalSensitivity sweeps the dynamic controller's interval for a
// fixed miss-bound fraction and size bound, on the in-order engine where
// adaptation lag is most exposed.
func IntervalSensitivity(opts Options) ([]SensitivityRow, error) {
	return IntervalSensitivityContext(context.Background(), opts)
}

// IntervalSensitivityContext is IntervalSensitivity with cancellation.
func IntervalSensitivityContext(ctx context.Context, opts Options) ([]SensitivityRow, error) {
	opts.Engine = sim.InOrder
	apps := opts.apps()
	intervals := []uint64{2048, 8192, 32768, 131072}
	pair := func(interval uint64, app string) [2]sim.Config {
		base := baseConfig(app, opts.Engine, opts.Instructions, 2, 2)
		cfg := base
		cfg.DCache = sim.CacheSpec{Geom: l1Geom(2), Org: core.SelectiveSets,
			Policy: sim.PolicySpec{Kind: sim.PolicyDynamic, Interval: interval,
				MissBound: uint64(float64(interval) * 0.01), SizeBoundBytes: 4 << 10,
				UpsizeHoldIntervals: 3}}
		return [2]sim.Config{base, cfg}
	}
	// This sweep runs raw config pairs (no winner selection to cache), so
	// batch-schedule the configs themselves: the gathers below join. On
	// an early error return, cancel and drain the stragglers.
	var batch []sim.Config
	for _, interval := range intervals {
		for _, app := range apps {
			p := pair(interval, app)
			batch = append(batch, p[0], p[1])
		}
	}
	enqCtx, stopEnqueue := context.WithCancel(ctx)
	_, wait := opts.runner().Enqueue(enqCtx, batch)
	defer func() { stopEnqueue(); wait() }()
	var out []SensitivityRow
	for _, interval := range intervals {
		var edp, size float64
		for _, app := range apps {
			p := pair(interval, app)
			res, err := opts.runAll(ctx, p[:])
			if err != nil {
				return nil, err
			}
			edp += res[1].EDP.ReductionPct(res[0].EDP)
			size += res[1].DCache.SizeReductionPct()
		}
		n := float64(len(apps))
		out = append(out, SensitivityRow{
			Label:           fmt.Sprintf("interval %d accesses", interval),
			EDPReductionPct: edp / n,
			SizeRedPct:      size / n,
		})
	}
	return out, nil
}

// L2Sensitivity sweeps the L2 capacity to test the paper's claim that L1
// resizing has minimal impact on the L2 footprint: the resizing gain
// should be stable across L2 sizes.
func L2Sensitivity(opts Options) ([]SensitivityRow, error) {
	return L2SensitivityContext(context.Background(), opts)
}

// L2SensitivityContext is L2Sensitivity with cancellation.
func L2SensitivityContext(ctx context.Context, opts Options) ([]SensitivityRow, error) {
	apps := opts.apps()
	type point struct {
		label string
		specs []SweepSpec
	}
	var points []point
	var all []SweepSpec
	for _, l2kb := range []int{256, 512, 1024} {
		p := point{label: fmt.Sprintf("%dK L2", l2kb)}
		for _, app := range apps {
			base := baseConfig(app, opts.Engine, opts.Instructions, 2, 2)
			base.Levels = []sim.LevelSpec{{CacheSpec: sim.CacheSpec{
				Geom: geometry.Geometry{SizeBytes: l2kb << 10, Assoc: 4,
					BlockBytes: 64, SubarrayBytes: 4 << 10},
				Org: core.NonResizable,
			}}}
			p.specs = append(p.specs, SweepSpec{App: app, Side: DSide,
				Org: core.SelectiveSets, Base: base})
		}
		points = append(points, p)
		all = append(all, p.specs...)
	}
	// One batched pass over the whole grid, drained on early error like
	// SubarraySensitivity's.
	enqCtx, stopEnqueue := context.WithCancel(ctx)
	_, wait := EnqueueSweeps(enqCtx, all, opts)
	defer func() { stopEnqueue(); wait() }()
	var out []SensitivityRow
	for _, p := range points {
		var edp, size float64
		for _, spec := range p.specs {
			best, err := BestSpecContext(ctx, spec, opts)
			if err != nil {
				return nil, err
			}
			edp += best.EDPReductionPct()
			size += best.SizeReductionPct()
		}
		n := float64(len(apps))
		out = append(out, SensitivityRow{Label: p.label,
			EDPReductionPct: edp / n, SizeRedPct: size / n})
	}
	return out, nil
}

// RenderSensitivity formats a sweep as a text table.
func RenderSensitivity(title string, rows []SensitivityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n  %-36s %14s %14s\n", title, "parameter", "EDP red (%)", "size red (%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-36s %14.1f %14.1f\n", r.Label, r.EDPReductionPct, r.SizeRedPct)
	}
	return b.String()
}
