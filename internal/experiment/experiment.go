// Package experiment defines the paper's evaluation: offline profiling
// sweeps that select static sizes and dynamic parameters by minimum
// energy-delay product, and one driver per table/figure (Table 1,
// Figures 4-9) that regenerates the corresponding rows/series.
//
// All simulation execution goes through the run-orchestration layer
// (internal/runner): sweeps submit batches of configs to a shared
// memoizing worker pool, so repeated configurations — most prominently
// the non-resizable baseline every sweep compares against — simulate at
// most once per runner. On top of that, every winner-selection sweep
// (BestStatic, BestDynamic and the sensitivity variants) memoizes its
// outcome as a sweep-level artifact (see artifact.go), so a figure
// driver repeating a grid another figure already profiled resolves the
// whole sweep — not just its simulations — from cache. Every simulation
// is independently deterministic, so results do not depend on
// scheduling.
package experiment

import (
	"context"
	"fmt"

	"resizecache/internal/core"
	"resizecache/internal/geometry"
	"resizecache/internal/runner"
	"resizecache/internal/sim"
	"resizecache/internal/workload"
)

// Side selects which L1 an experiment resizes.
type Side int

const (
	// DSide resizes the data cache.
	DSide Side = iota
	// ISide resizes the instruction cache.
	ISide
	// BothSides resizes both caches simultaneously (the paper's Figure 9
	// combined experiment).
	BothSides
)

func (s Side) String() string {
	switch s {
	case ISide:
		return "i-cache"
	case BothSides:
		return "d+i-caches"
	default:
		return "d-cache"
	}
}

// Options control sweep scale; the defaults regenerate the paper's
// figures at full fidelity.
type Options struct {
	// Instructions per simulation.
	Instructions uint64
	// Parallelism bounds concurrent simulations within one sweep
	// (0 = the runner's worker-pool size).
	Parallelism int
	// Apps restricts the benchmark list (nil = all twelve).
	Apps []string
	// Engine is the processor model (Figures 4-6 and 9 use the
	// out-of-order base configuration).
	Engine sim.EngineKind
	// Runner executes the simulations (nil = the process-wide shared
	// runner). Passing a dedicated runner makes a sweep hermetic; passing
	// one with a DiskStore makes it resumable across processes.
	Runner *runner.Runner
}

// DefaultOptions returns full-fidelity settings.
func DefaultOptions() Options {
	return Options{Instructions: 1_500_000, Engine: sim.OutOfOrder}
}

func (o Options) apps() []string {
	if len(o.Apps) > 0 {
		return o.Apps
	}
	return workload.Names()
}

func (o Options) runner() *runner.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return runner.Default()
}

// runAll submits a batch through the configured runner, honouring the
// sweep-level parallelism bound.
func (o Options) runAll(ctx context.Context, cfgs []sim.Config) ([]sim.Result, error) {
	return o.runner().RunAllLimit(ctx, cfgs, o.Parallelism)
}

// l1Geom returns the experiments' 32K L1 geometry at a set-associativity.
func l1Geom(assoc int) geometry.Geometry {
	return geometry.Geometry{SizeBytes: 32 << 10, Assoc: assoc,
		BlockBytes: 32, SubarrayBytes: 1 << 10}
}

// baseConfig builds the simulation config for one app with non-resizable
// caches of the given associativities.
func baseConfig(app string, engine sim.EngineKind, instr uint64, dAssoc, iAssoc int) sim.Config {
	cfg := sim.Default(app)
	cfg.Engine = engine
	cfg.Instructions = instr
	cfg.DCache = sim.CacheSpec{Geom: l1Geom(dAssoc), Org: core.NonResizable}
	cfg.ICache = sim.CacheSpec{Geom: l1Geom(iAssoc), Org: core.NonResizable}
	return cfg
}

// Best is the outcome of a profiling sweep for one application: the
// minimum-EDP configuration relative to the non-resizable baseline of the
// same size and associativity.
type Best struct {
	App    string
	Side   Side
	Org    core.Organization
	Desc   string // chosen configuration, e.g. "static 8K/4-way" or "dynamic mb=512 sb=4K"
	Spec   sim.PolicySpec
	Chosen sim.Result
	Base   sim.Result
}

// EDPReductionPct is the paper's headline metric: percent reduction in
// processor energy-delay versus the baseline.
func (b Best) EDPReductionPct() float64 { return b.Chosen.EDP.ReductionPct(b.Base.EDP) }

// SizeReductionPct is the percent reduction in average enabled capacity
// of the resized cache(s); for BothSides it is computed over the
// combined d+i capacity.
func (b Best) SizeReductionPct() float64 {
	switch b.Side {
	case ISide:
		return b.Chosen.ICache.SizeReductionPct()
	case BothSides:
		full := float64(b.Chosen.DCache.FullBytes + b.Chosen.ICache.FullBytes)
		if full == 0 {
			return 0
		}
		avg := b.Chosen.DCache.AvgBytes + b.Chosen.ICache.AvgBytes
		return 100 * (1 - avg/full)
	default:
		return b.Chosen.DCache.SizeReductionPct()
	}
}

// SlowdownPct is the performance degradation versus baseline.
func (b Best) SlowdownPct() float64 { return 100 * b.Chosen.EDP.Slowdown(b.Base.EDP) }

// applySide sets the resizable side of a config. Only DSide and ISide
// are valid: combined resizing is a distinct protocol (Combined), not a
// sweep parameter — sweeps must reject BothSides via checkSweepSide.
func applySide(cfg *sim.Config, side Side, spec sim.CacheSpec) {
	if side == ISide {
		cfg.ICache = spec
	} else {
		cfg.DCache = spec
	}
}

// checkSweepSide rejects sides a single-cache profiling sweep cannot
// resize; without it BothSides would silently profile the d-cache only
// while reporting combined d+i metrics.
func checkSweepSide(side Side) error {
	if side != DSide && side != ISide {
		return fmt.Errorf("experiment: profiling sweeps resize one cache (got %v); use Combined for both", side)
	}
	return nil
}

// pickBest selects the minimum-EDP candidate from a sweep batch whose
// first element is the baseline.
func pickBest(res []sim.Result) int {
	best := 1
	for i := 2; i < len(res); i++ {
		if res[i].EDP.Product() < res[best].EDP.Product() {
			best = i
		}
	}
	return best
}

// BestStatic profiles every schedule point of an organization (the
// paper's static strategy: run each offered size offline, pick the
// minimum-EDP one) and returns the winner for one application.
func BestStatic(app string, side Side, org core.Organization, assoc int, opts Options) (Best, error) {
	return BestStaticContext(context.Background(), app, side, org, assoc, opts)
}

// BestStaticContext is BestStatic with cancellation.
func BestStaticContext(ctx context.Context, app string, side Side, org core.Organization, assoc int, opts Options) (Best, error) {
	if err := checkSweepSide(side); err != nil {
		return Best{}, err
	}
	return bestStaticWithBase(ctx, app, side, org,
		baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc), opts)
}

// bestStaticWithBase is the static-sweep core, parameterized over the
// base config so sensitivity studies can vary non-L1 parameters (L2
// size, subarray granularity). The whole sweep memoizes as one artifact
// through the runner's artifact cache, keyed by the configs it would
// run — so a repeated sweep (the same grid cell in a later figure, or a
// resumed process with a persistent store) resolves without submitting
// a single simulation.
func bestStaticWithBase(ctx context.Context, app string, side Side, org core.Organization, base sim.Config, opts Options) (Best, error) {
	geom := base.DCache.Geom
	if side == ISide {
		geom = base.ICache.Geom
	}
	sched, err := core.BuildSchedule(geom, org)
	if err != nil {
		return Best{}, err
	}
	cfgs := []sim.Config{base}
	for i := range sched.Points {
		cfg := base
		applySide(&cfg, side, sim.CacheSpec{Geom: geom, Org: org,
			Policy: sim.PolicySpec{Kind: sim.PolicyStatic, StaticIndex: i}})
		cfgs = append(cfgs, cfg)
	}
	return cachedBest(ctx, opts.runner(), "best-static", cfgs, func(ctx context.Context) (Best, error) {
		res, err := opts.runAll(ctx, cfgs)
		if err != nil {
			return Best{}, err
		}
		bestIdx := pickBest(res)
		return Best{
			App: app, Side: side, Org: org,
			Desc:   fmt.Sprintf("static %v", sched.Points[bestIdx-1]),
			Spec:   sim.PolicySpec{Kind: sim.PolicyStatic, StaticIndex: bestIdx - 1},
			Chosen: res[bestIdx],
			Base:   res[0],
		}, nil
	})
}

// DynamicParams is one dynamic-controller parameterization.
type DynamicParams struct {
	Interval       uint64
	MissBound      uint64
	SizeBoundBytes int
	UpsizeHold     int
}

// dynamicCandidates enumerates the offline profiling grid for the
// miss-ratio controller: miss-bounds as fractions of the interval and
// size-bounds across the schedule's range.
func dynamicCandidates(sched core.Schedule) []DynamicParams {
	// Miss-bounds span well past each app's background miss level
	// (conflict and cold misses) or the controller would pin at full
	// size; the shorter interval tracks phases in shorter runs; the
	// size-bound candidates are every offered size below full, since the
	// bound is how profiling pins the controller at an app's known floor.
	intervals := []uint64{4096, 16384, 65536}
	missFracs := []float64{0.002, 0.005, 0.01, 0.02, 0.04, 0.08, 0.15}
	var sizeBounds []int
	for _, p := range sched.Points[1:] {
		sizeBounds = append(sizeBounds, p.Bytes)
	}
	if len(sizeBounds) == 0 {
		sizeBounds = []int{sched.Geom.SizeBytes}
	}
	holds := []int{0, 3}
	var out []DynamicParams
	seen := map[DynamicParams]bool{}
	for _, iv := range intervals {
		for _, mf := range missFracs {
			for _, sb := range sizeBounds {
				for _, h := range holds {
					p := DynamicParams{Interval: iv,
						MissBound: uint64(mf * float64(iv)), SizeBoundBytes: sb,
						UpsizeHold: h}
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
			}
		}
	}
	return out
}

// BestDynamic profiles the dynamic controller's parameter grid for one
// application and returns the minimum-EDP parameterization.
func BestDynamic(app string, side Side, org core.Organization, assoc int, opts Options) (Best, error) {
	return BestDynamicContext(context.Background(), app, side, org, assoc, opts)
}

// BestDynamicContext is BestDynamic with cancellation.
func BestDynamicContext(ctx context.Context, app string, side Side, org core.Organization, assoc int, opts Options) (Best, error) {
	if err := checkSweepSide(side); err != nil {
		return Best{}, err
	}
	sched, err := core.BuildSchedule(l1Geom(assoc), org)
	if err != nil {
		return Best{}, err
	}
	cands := dynamicCandidates(sched)
	cfgs := []sim.Config{baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc)}
	for _, p := range cands {
		cfg := baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc)
		applySide(&cfg, side, sim.CacheSpec{
			Geom: l1Geom(assoc), Org: org,
			Policy: sim.PolicySpec{Kind: sim.PolicyDynamic, Interval: p.Interval,
				MissBound: p.MissBound, SizeBoundBytes: p.SizeBoundBytes,
				UpsizeHoldIntervals: p.UpsizeHold},
		})
		cfgs = append(cfgs, cfg)
	}
	return cachedBest(ctx, opts.runner(), "best-dynamic", cfgs, func(ctx context.Context) (Best, error) {
		res, err := opts.runAll(ctx, cfgs)
		if err != nil {
			return Best{}, err
		}
		bestIdx := pickBest(res)
		p := cands[bestIdx-1]
		return Best{
			App: app, Side: side, Org: org,
			Desc: fmt.Sprintf("dynamic mb=%d sb=%s", p.MissBound,
				geometry.FormatSize(p.SizeBoundBytes)),
			Spec: sim.PolicySpec{Kind: sim.PolicyDynamic, Interval: p.Interval,
				MissBound: p.MissBound, SizeBoundBytes: p.SizeBoundBytes,
				UpsizeHoldIntervals: p.UpsizeHold},
			Chosen: res[bestIdx],
			Base:   res[0],
		}, nil
	})
}

// Combined runs one simulation with both L1s resizing at their
// individually profiled configurations (the paper's Figure 9 protocol:
// the additivity of d- and i-cache resizing lets each be profiled
// alone). The returned Best compares against the shared non-resizable
// baseline.
func Combined(app string, org core.Organization, assoc int, dBest, iBest Best, opts Options) (Best, error) {
	return CombinedContext(context.Background(), app, org, assoc, dBest, iBest, opts)
}

// CombinedContext is Combined with cancellation.
func CombinedContext(ctx context.Context, app string, org core.Organization, assoc int, dBest, iBest Best, opts Options) (Best, error) {
	cfg := baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc)
	cfg.DCache = sim.CacheSpec{Geom: l1Geom(assoc), Org: org, Policy: dBest.Spec}
	cfg.ICache = sim.CacheSpec{Geom: l1Geom(assoc), Org: org, Policy: iBest.Spec}
	res, err := opts.runner().Run(ctx, cfg)
	if err != nil {
		return Best{}, err
	}
	return Best{
		App: app, Side: BothSides, Org: org,
		Desc:   fmt.Sprintf("both: %s + %s", dBest.Desc, iBest.Desc),
		Chosen: res,
		Base:   dBest.Base,
	}, nil
}
