// Package experiment defines the paper's evaluation machinery: offline
// profiling sweeps that select static sizes and dynamic parameters by
// minimum energy-delay product (BestStatic/BestDynamic/Combined, with
// SweepSpec as the shared sweep descriptor), plus the extension
// sensitivity studies. The table/figure drivers themselves live in the
// public figures package, built on the facade's Grid/Plan/Session.Run
// batch API.
//
// All simulation execution goes through the run-orchestration layer
// (internal/runner): sweeps submit batches of configs to a shared
// memoizing worker pool, so repeated configurations — most prominently
// the non-resizable baseline every sweep compares against — simulate at
// most once per runner, and a plan's sweeps can be enqueued up front in
// one batched pass (EnqueueSweeps) so gathers join in-flight work. On
// top of that, every winner-selection sweep (BestSpec and the
// sensitivity variants) memoizes its outcome as a sweep-level artifact
// (see artifact.go), so a driver repeating a grid another figure
// already profiled resolves the whole sweep — not just its simulations
// — from cache. Every simulation is independently deterministic, so
// results do not depend on scheduling.
package experiment

import (
	"context"
	"fmt"
	"strings"

	"resizecache/internal/core"
	"resizecache/internal/geometry"
	"resizecache/internal/runner"
	"resizecache/internal/sim"
	"resizecache/internal/workload"
)

// Side selects which cache of the hierarchy an experiment resizes.
type Side int

const (
	// DSide resizes the data cache.
	DSide Side = iota
	// ISide resizes the instruction cache.
	ISide
	// BothSides resizes both L1 caches simultaneously (the paper's
	// Figure 9 combined experiment).
	BothSides
	// L2Side resizes the shared L2 (the hierarchy's outermost level).
	L2Side
)

func (s Side) String() string {
	switch s {
	case ISide:
		return "i-cache"
	case BothSides:
		return "d+i-caches"
	case L2Side:
		return "l2-cache"
	default:
		return "d-cache"
	}
}

// Options control sweep scale; the defaults regenerate the paper's
// figures at full fidelity.
type Options struct {
	// Instructions per simulation.
	Instructions uint64
	// Parallelism bounds concurrent simulations within one sweep
	// (0 = the runner's worker-pool size).
	Parallelism int
	// Apps restricts the benchmark list (nil = all twelve).
	Apps []string
	// Engine is the processor model (Figures 4-6 and 9 use the
	// out-of-order base configuration).
	Engine sim.EngineKind
	// Runner executes the simulations (nil = the process-wide shared
	// runner). Passing a dedicated runner makes a sweep hermetic; passing
	// one with a DiskStore makes it resumable across processes.
	Runner *runner.Runner
}

// DefaultOptions returns full-fidelity settings.
func DefaultOptions() Options {
	return Options{Instructions: 1_500_000, Engine: sim.OutOfOrder}
}

func (o Options) apps() []string {
	if len(o.Apps) > 0 {
		return o.Apps
	}
	return workload.Names()
}

func (o Options) runner() *runner.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return runner.Default()
}

// runAll submits a batch through the configured runner, honouring the
// sweep-level parallelism bound.
func (o Options) runAll(ctx context.Context, cfgs []sim.Config) ([]sim.Result, error) {
	return o.runner().RunAllLimit(ctx, cfgs, o.Parallelism)
}

// l1Geom returns the experiments' 32K L1 geometry at a set-associativity.
func l1Geom(assoc int) geometry.Geometry {
	return geometry.Geometry{SizeBytes: 32 << 10, Assoc: assoc,
		BlockBytes: 32, SubarrayBytes: 1 << 10}
}

// baseConfig builds the simulation config for one app with non-resizable
// caches of the given associativities.
func baseConfig(app string, engine sim.EngineKind, instr uint64, dAssoc, iAssoc int) sim.Config {
	cfg := sim.Default(app)
	cfg.Engine = engine
	cfg.Instructions = instr
	cfg.DCache = sim.CacheSpec{Geom: l1Geom(dAssoc), Org: core.NonResizable}
	cfg.ICache = sim.CacheSpec{Geom: l1Geom(iAssoc), Org: core.NonResizable}
	return cfg
}

// BaseConfig builds the non-resizable baseline config sweeps derive
// their candidates from: the app on opts' engine and instruction budget
// with 32K L1s at one associativity and the default shared hierarchy.
// Callers building custom sweeps (a different L2, a deeper hierarchy)
// override Levels before wrapping it in a SweepSpec.
func BaseConfig(app string, assoc int, opts Options) sim.Config {
	return baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc)
}

// Best is the outcome of a profiling sweep for one application: the
// minimum-EDP configuration relative to the non-resizable baseline of the
// same size and associativity.
type Best struct {
	App    string
	Side   Side
	Org    core.Organization
	Desc   string // chosen configuration, e.g. "static 8K/4-way" or "dynamic mb=512 sb=4K"
	Spec   sim.PolicySpec
	Chosen sim.Result
	Base   sim.Result
	// Resized lists the sides a combined run (CombinedBests) resized;
	// empty for single-sweep Bests, where Side alone identifies the
	// cache. SizeReductionPct computes over these when set.
	Resized []Side `json:",omitempty"`
}

// EDPReductionPct is the paper's headline metric: percent reduction in
// processor energy-delay versus the baseline.
func (b Best) EDPReductionPct() float64 { return b.Chosen.EDP.ReductionPct(b.Base.EDP) }

// sideReport returns the chosen result's report for one resized side.
func (b Best) sideReport(side Side) sim.CacheReport {
	switch side {
	case ISide:
		return b.Chosen.ICache
	case L2Side:
		return b.Chosen.L2()
	default:
		return b.Chosen.DCache
	}
}

// SizeReductionPct is the percent reduction in average enabled capacity
// of the resized cache(s): the single resized cache for sweep Bests,
// the combined d+i capacity for the paper's BothSides experiment, and
// the combined capacity of every resized side for a CombinedBests
// result (which records them in Resized).
func (b Best) SizeReductionPct() float64 {
	sides := b.Resized
	if len(sides) == 0 {
		switch b.Side {
		case BothSides:
			sides = []Side{DSide, ISide}
		default:
			sides = []Side{b.Side}
		}
	}
	var avg, full float64
	for _, s := range sides {
		r := b.sideReport(s)
		avg += r.AvgBytes
		full += float64(r.FullBytes)
	}
	if full == 0 {
		return 0
	}
	return 100 * (1 - avg/full)
}

// SlowdownPct is the performance degradation versus baseline.
func (b Best) SlowdownPct() float64 { return 100 * b.Chosen.EDP.Slowdown(b.Base.EDP) }

// applySide sets the resizable side of a config. Only DSide, ISide, and
// L2Side are valid: combined resizing is a distinct protocol
// (CombinedBests), not a sweep parameter — sweeps must reject BothSides
// via checkSweepSide. For L2Side only the level's geometry,
// organization, and policy are replaced: the base level keeps its
// structural knobs (precharge mode, MSHR and writeback sizing) and its
// ablation switches, so a sweep over an ablated base compares ablated
// candidates against the ablated baseline.
func applySide(cfg *sim.Config, side Side, spec sim.CacheSpec) {
	switch side {
	case ISide:
		cfg.ICache = spec
	case L2Side:
		levels := append([]sim.LevelSpec(nil), cfg.Hierarchy()...)
		// sideGeom already rejected an empty hierarchy.
		levels[0].Geom = spec.Geom
		levels[0].Org = spec.Org
		levels[0].Policy = spec.Policy
		cfg.Levels = levels
		cfg.L2Geom = geometry.Geometry{}
	default:
		cfg.DCache = spec
	}
}

// sideGeom returns the geometry of the cache a side resizes.
func sideGeom(cfg sim.Config, side Side) (geometry.Geometry, error) {
	switch side {
	case ISide:
		return cfg.ICache.Geom, nil
	case L2Side:
		levels := cfg.Hierarchy()
		if len(levels) == 0 {
			return geometry.Geometry{}, fmt.Errorf("experiment: L2 resizing needs a shared level in the hierarchy")
		}
		return levels[0].Geom, nil
	default:
		return cfg.DCache.Geom, nil
	}
}

// checkSweepSide rejects sides a single-cache profiling sweep cannot
// resize; without it BothSides would silently profile the d-cache only
// while reporting combined d+i metrics.
func checkSweepSide(side Side) error {
	if side != DSide && side != ISide && side != L2Side {
		return fmt.Errorf("experiment: profiling sweeps resize one cache (got %v); use CombinedBests for several", side)
	}
	return nil
}

// pickBest selects the minimum-EDP candidate from a sweep batch whose
// first element is the baseline.
func pickBest(res []sim.Result) int {
	best := 1
	for i := 2; i < len(res); i++ {
		if res[i].EDP.Product() < res[best].EDP.Product() {
			best = i
		}
	}
	return best
}

// SweepSpec identifies one profiling sweep — the unit a BestStatic or
// BestDynamic call executes, and the unit plan-level batch scheduling
// enqueues up front (see EnqueueSweeps). Base is the fully resolved
// non-resizable baseline config (benchmark, engine, instruction budget,
// associativities, and any sensitivity overrides such as subarray or L2
// geometry); the sweep derives its candidate configs from it
// deterministically, so a spec built twice enumerates byte-identical
// batches and fingerprints to the same artifact.
type SweepSpec struct {
	App     string
	Side    Side
	Org     core.Organization
	Dynamic bool
	Base    sim.Config
}

// NewSweepSpec builds the spec for one (app, side, org, assoc) sweep
// under opts — exactly the sweep BestStaticContext/BestDynamicContext
// run for the same arguments.
func NewSweepSpec(app string, side Side, org core.Organization, assoc int, dynamic bool, opts Options) SweepSpec {
	return SweepSpec{App: app, Side: side, Org: org, Dynamic: dynamic,
		Base: baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc)}
}

// kind is the artifact-cache namespace of the sweep.
func (s SweepSpec) kind() string {
	if s.Dynamic {
		return "best-dynamic"
	}
	return "best-static"
}

// ArtifactKey is the sweep's artifact-cache fingerprint: the sweep kind
// and schema version plus the content fingerprint of every config the
// sweep would run (baseline and all candidates). Anything that changes
// the winner selection — candidate enumeration, schedule building, any
// underlying simulation, or artifactVersion itself — moves it. Layers
// caching values derived from whole sweeps (the facade's figure-level
// aggregates) compose it into their own fingerprints so their caches
// invalidate together with the sweep tier.
func (s SweepSpec) ArtifactKey() (sim.Key, error) {
	cfgs, _, err := s.sweep()
	if err != nil {
		return sim.Key{}, err
	}
	return sweepArtifactKey(s.kind(), cfgs), nil
}

// sweep enumerates the batch the spec would run — the baseline followed
// by every candidate — plus a describe function mapping the winning
// batch index to the chosen description and policy.
func (s SweepSpec) sweep() (cfgs []sim.Config, describe func(bestIdx int) (string, sim.PolicySpec), err error) {
	geom, err := sideGeom(s.Base, s.Side)
	if err != nil {
		return nil, nil, err
	}
	sched, err := core.BuildSchedule(geom, s.Org)
	if err != nil {
		return nil, nil, err
	}
	cfgs = []sim.Config{s.Base}
	if s.Dynamic {
		cands := dynamicCandidates(sched, s.Side == L2Side)
		for _, p := range cands {
			cfg := s.Base
			applySide(&cfg, s.Side, sim.CacheSpec{Geom: geom, Org: s.Org,
				Policy: sim.PolicySpec{Kind: sim.PolicyDynamic, Interval: p.Interval,
					MissBound: p.MissBound, SizeBoundBytes: p.SizeBoundBytes,
					UpsizeHoldIntervals: p.UpsizeHold}})
			cfgs = append(cfgs, cfg)
		}
		return cfgs, func(bestIdx int) (string, sim.PolicySpec) {
			p := cands[bestIdx-1]
			return fmt.Sprintf("dynamic mb=%d sb=%s", p.MissBound,
					geometry.FormatSize(p.SizeBoundBytes)),
				sim.PolicySpec{Kind: sim.PolicyDynamic, Interval: p.Interval,
					MissBound: p.MissBound, SizeBoundBytes: p.SizeBoundBytes,
					UpsizeHoldIntervals: p.UpsizeHold}
		}, nil
	}
	for i := range sched.Points {
		cfg := s.Base
		applySide(&cfg, s.Side, sim.CacheSpec{Geom: geom, Org: s.Org,
			Policy: sim.PolicySpec{Kind: sim.PolicyStatic, StaticIndex: i}})
		cfgs = append(cfgs, cfg)
	}
	return cfgs, func(bestIdx int) (string, sim.PolicySpec) {
		return fmt.Sprintf("static %v", sched.Points[bestIdx-1]),
			sim.PolicySpec{Kind: sim.PolicyStatic, StaticIndex: bestIdx - 1}
	}, nil
}

// BestSpec profiles one sweep and returns its minimum-EDP winner versus
// the baseline.
func BestSpec(spec SweepSpec, opts Options) (Best, error) {
	return BestSpecContext(context.Background(), spec, opts)
}

// BestSpecContext is the sweep core: it runs (or resolves) the spec's
// batch and selects the winner. The whole sweep memoizes as one
// artifact through the runner's artifact cache, keyed by the configs it
// would run — so a repeated sweep (the same grid cell in a later
// figure, or a resumed process with a persistent store) resolves
// without submitting a single simulation, and a sweep enqueued up front
// by a plan gathers by joining the in-flight work instead of fanning
// out its own barrier.
func BestSpecContext(ctx context.Context, spec SweepSpec, opts Options) (Best, error) {
	if err := checkSweepSide(spec.Side); err != nil {
		return Best{}, err
	}
	cfgs, describe, err := spec.sweep()
	if err != nil {
		return Best{}, err
	}
	return cachedBest(ctx, opts.runner(), spec.kind(), cfgs, func(ctx context.Context) (Best, error) {
		// Batch-enqueue the candidate set before gathering, so a solo
		// sweep (a single Session.Simulate, cmd/respcache) coalesces its
		// same-front candidates into gangs exactly like a plan's
		// batched pass does — instead of fanning them out one Run at a
		// time behind a barrier. Skipped when the caller bounds
		// Parallelism, which Enqueue's pool-wide dispatch cannot honour.
		if opts.Parallelism <= 0 {
			enqCtx, stopEnqueue := context.WithCancel(ctx)
			_, waitEnqueued := opts.runner().Enqueue(enqCtx, cfgs)
			defer func() {
				// Abandon stragglers on error; see Enqueue's wait contract.
				stopEnqueue()
				waitEnqueued()
			}()
		}
		res, err := opts.runAll(ctx, cfgs)
		if err != nil {
			return Best{}, err
		}
		bestIdx := pickBest(res)
		desc, pspec := describe(bestIdx)
		return Best{
			App: spec.App, Side: spec.Side, Org: spec.Org,
			Desc: desc, Spec: pspec,
			Chosen: res[bestIdx],
			Base:   res[0],
		}, nil
	})
}

// EnqueueSweeps submits the simulations of every cold sweep in specs to
// the runner in one batched, non-blocking pass: sweeps whose artifact is
// already cached (either tier) are skipped outright, the rest have their
// configs deduplicated by fingerprint (sweeps of one plan share
// baselines) and handed to Runner.Enqueue in one call. The later
// per-sweep gathers (BestSpecContext) then join the in-flight work
// instead of each fanning out its own barrier, so a multi-scenario
// plan's simulations interleave freely on the shared pool. Best-effort:
// a spec whose schedule cannot be built is skipped here and surfaces its
// error from the gather. Returns the number of configs enqueued and a
// wait function with Runner.Enqueue's semantics (cancel ctx, then wait,
// before flushing a store out from under abandoned stragglers).
func EnqueueSweeps(ctx context.Context, specs []SweepSpec, opts Options) (int, func()) {
	r := opts.runner()
	seen := make(map[sim.Key]bool)
	var cfgs []sim.Config
	for _, spec := range specs {
		if checkSweepSide(spec.Side) != nil {
			continue
		}
		scfgs, _, err := spec.sweep()
		if err != nil {
			continue
		}
		if r.HasArtifact(sweepArtifactKey(spec.kind(), scfgs)) {
			continue
		}
		for i := range scfgs {
			if k := scfgs[i].Key(); !seen[k] {
				seen[k] = true
				cfgs = append(cfgs, scfgs[i])
			}
		}
	}
	if len(cfgs) == 0 {
		return 0, func() {}
	}
	return r.Enqueue(ctx, cfgs)
}

// BestStatic profiles every schedule point of an organization (the
// paper's static strategy: run each offered size offline, pick the
// minimum-EDP one) and returns the winner for one application.
func BestStatic(app string, side Side, org core.Organization, assoc int, opts Options) (Best, error) {
	return BestStaticContext(context.Background(), app, side, org, assoc, opts)
}

// BestStaticContext is BestStatic with cancellation.
func BestStaticContext(ctx context.Context, app string, side Side, org core.Organization, assoc int, opts Options) (Best, error) {
	return BestSpecContext(ctx, NewSweepSpec(app, side, org, assoc, false, opts), opts)
}

// DynamicParams is one dynamic-controller parameterization.
type DynamicParams struct {
	Interval       uint64
	MissBound      uint64
	SizeBoundBytes int
	UpsizeHold     int
}

// dynamicCandidates enumerates the offline profiling grid for the
// miss-ratio controller: miss-bounds as fractions of the interval and
// size-bounds across the schedule's range. lowTraffic selects the
// interval set for caches that see only the level above's misses (the
// shared L2): an order of magnitude shorter, so the controller still
// observes enough interval boundaries to adapt.
func dynamicCandidates(sched core.Schedule, lowTraffic bool) []DynamicParams {
	// Miss-bounds span well past each app's background miss level
	// (conflict and cold misses) or the controller would pin at full
	// size; the shorter interval tracks phases in shorter runs; the
	// size-bound candidates are every offered size below full, since the
	// bound is how profiling pins the controller at an app's known floor.
	intervals := []uint64{4096, 16384, 65536}
	if lowTraffic {
		intervals = []uint64{128, 1024, 8192}
	}
	missFracs := []float64{0.002, 0.005, 0.01, 0.02, 0.04, 0.08, 0.15}
	var sizeBounds []int
	for _, p := range sched.Points[1:] {
		sizeBounds = append(sizeBounds, p.Bytes)
	}
	if len(sizeBounds) == 0 {
		sizeBounds = []int{sched.Geom.SizeBytes}
	}
	holds := []int{0, 3}
	var out []DynamicParams
	seen := map[DynamicParams]bool{}
	for _, iv := range intervals {
		for _, mf := range missFracs {
			for _, sb := range sizeBounds {
				for _, h := range holds {
					p := DynamicParams{Interval: iv,
						MissBound: uint64(mf * float64(iv)), SizeBoundBytes: sb,
						UpsizeHold: h}
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
			}
		}
	}
	return out
}

// BestDynamic profiles the dynamic controller's parameter grid for one
// application and returns the minimum-EDP parameterization.
func BestDynamic(app string, side Side, org core.Organization, assoc int, opts Options) (Best, error) {
	return BestDynamicContext(context.Background(), app, side, org, assoc, opts)
}

// BestDynamicContext is BestDynamic with cancellation.
func BestDynamicContext(ctx context.Context, app string, side Side, org core.Organization, assoc int, opts Options) (Best, error) {
	return BestSpecContext(ctx, NewSweepSpec(app, side, org, assoc, true, opts), opts)
}

// Combined runs one simulation with both L1s resizing at their
// individually profiled configurations (the paper's Figure 9 protocol:
// the additivity of d- and i-cache resizing lets each be profiled
// alone). The returned Best compares against the shared non-resizable
// baseline.
func Combined(app string, org core.Organization, assoc int, dBest, iBest Best, opts Options) (Best, error) {
	return CombinedContext(context.Background(), app, org, assoc, dBest, iBest, opts)
}

// CombinedContext is Combined with cancellation.
func CombinedContext(ctx context.Context, app string, org core.Organization, assoc int, dBest, iBest Best, opts Options) (Best, error) {
	return CombinedBestsContext(ctx,
		baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc),
		[]Best{dBest, iBest}, opts)
}

// CombinedBests is the decoupled-profiling protocol generalized over
// the hierarchy: one simulation with every profiled winner applied to
// its side of base — any subset of {d-cache, i-cache, L2}. Each part
// carries its own side, organization, and policy from its sweep; the
// returned Best compares against the parts' shared non-resizable
// baseline.
func CombinedBests(base sim.Config, parts []Best, opts Options) (Best, error) {
	return CombinedBestsContext(context.Background(), base, parts, opts)
}

// CombinedBestsContext is CombinedBests with cancellation.
func CombinedBestsContext(ctx context.Context, base sim.Config, parts []Best, opts Options) (Best, error) {
	if len(parts) == 0 {
		return Best{}, fmt.Errorf("experiment: no profiled parts to combine")
	}
	cfg := base
	descs := make([]string, 0, len(parts))
	resized := make([]Side, 0, len(parts))
	for _, p := range parts {
		geom, err := sideGeom(cfg, p.Side)
		if err != nil {
			return Best{}, err
		}
		applySide(&cfg, p.Side, sim.CacheSpec{Geom: geom, Org: p.Org, Policy: p.Spec})
		descs = append(descs, p.Desc)
		resized = append(resized, p.Side)
	}
	res, err := opts.runner().Run(ctx, cfg)
	if err != nil {
		return Best{}, err
	}
	return Best{
		App: parts[0].App, Side: BothSides, Org: parts[0].Org,
		Desc:    "both: " + strings.Join(descs, " + "),
		Chosen:  res,
		Base:    parts[0].Base,
		Resized: resized,
	}, nil
}
