// Package experiment defines the paper's evaluation: offline profiling
// sweeps that select static sizes and dynamic parameters by minimum
// energy-delay product, and one driver per table/figure (Table 1,
// Figures 4-9) that regenerates the corresponding rows/series.
//
// All sweeps run simulations in parallel across goroutines; every
// simulation is independently deterministic, so results do not depend on
// scheduling.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"resizecache/internal/core"
	"resizecache/internal/geometry"
	"resizecache/internal/sim"
	"resizecache/internal/workload"
)

// Side selects which L1 an experiment resizes.
type Side int

const (
	// DSide resizes the data cache.
	DSide Side = iota
	// ISide resizes the instruction cache.
	ISide
)

func (s Side) String() string {
	if s == ISide {
		return "i-cache"
	}
	return "d-cache"
}

// Options control sweep scale; the defaults regenerate the paper's
// figures at full fidelity.
type Options struct {
	// Instructions per simulation.
	Instructions uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Apps restricts the benchmark list (nil = all twelve).
	Apps []string
	// Engine is the processor model (Figures 4-6 and 9 use the
	// out-of-order base configuration).
	Engine sim.EngineKind
}

// DefaultOptions returns full-fidelity settings.
func DefaultOptions() Options {
	return Options{Instructions: 1_500_000, Engine: sim.OutOfOrder}
}

func (o Options) apps() []string {
	if len(o.Apps) > 0 {
		return o.Apps
	}
	return workload.Names()
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// l1Geom returns the experiments' 32K L1 geometry at a set-associativity.
func l1Geom(assoc int) geometry.Geometry {
	return geometry.Geometry{SizeBytes: 32 << 10, Assoc: assoc,
		BlockBytes: 32, SubarrayBytes: 1 << 10}
}

// baseConfig builds the simulation config for one app with non-resizable
// caches of the given associativities.
func baseConfig(app string, engine sim.EngineKind, instr uint64, dAssoc, iAssoc int) sim.Config {
	cfg := sim.Default(app)
	cfg.Engine = engine
	cfg.Instructions = instr
	cfg.DCache = sim.CacheSpec{Geom: l1Geom(dAssoc), Org: core.NonResizable}
	cfg.ICache = sim.CacheSpec{Geom: l1Geom(iAssoc), Org: core.NonResizable}
	return cfg
}

// runParallel executes configs concurrently, preserving order.
func runParallel(cfgs []sim.Config, workers int) ([]sim.Result, error) {
	results := make([]sim.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = sim.Run(cfgs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: run %d (%s): %w", i, cfgs[i].Benchmark, err)
		}
	}
	return results, nil
}

// Best is the outcome of a profiling sweep for one application: the
// minimum-EDP configuration relative to the non-resizable baseline of the
// same size and associativity.
type Best struct {
	App    string
	Side   Side
	Org    core.Organization
	Desc   string // chosen configuration, e.g. "static 8K/4-way" or "dynamic mb=512 sb=4K"
	Spec   sim.PolicySpec
	Chosen sim.Result
	Base   sim.Result
}

// EDPReductionPct is the paper's headline metric: percent reduction in
// processor energy-delay versus the baseline.
func (b Best) EDPReductionPct() float64 { return b.Chosen.EDP.ReductionPct(b.Base.EDP) }

// SizeReductionPct is the percent reduction in average enabled capacity
// of the resized cache.
func (b Best) SizeReductionPct() float64 {
	if b.Side == ISide {
		return b.Chosen.ICache.SizeReductionPct()
	}
	return b.Chosen.DCache.SizeReductionPct()
}

// SlowdownPct is the performance degradation versus baseline.
func (b Best) SlowdownPct() float64 { return 100 * b.Chosen.EDP.Slowdown(b.Base.EDP) }

// apply sets the resizable side of a config.
func applySide(cfg *sim.Config, side Side, spec sim.CacheSpec) {
	if side == ISide {
		cfg.ICache = spec
	} else {
		cfg.DCache = spec
	}
}

// BestStatic profiles every schedule point of an organization (the
// paper's static strategy: run each offered size offline, pick the
// minimum-EDP one) and returns the winner for one application.
func BestStatic(app string, side Side, org core.Organization, assoc int, opts Options) (Best, error) {
	sched, err := core.BuildSchedule(l1Geom(assoc), org)
	if err != nil {
		return Best{}, err
	}
	cfgs := []sim.Config{baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc)}
	for i := range sched.Points {
		cfg := baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc)
		applySide(&cfg, side, sim.CacheSpec{
			Geom: l1Geom(assoc), Org: org,
			Policy: sim.PolicySpec{Kind: sim.PolicyStatic, StaticIndex: i},
		})
		cfgs = append(cfgs, cfg)
	}
	res, err := runParallel(cfgs, opts.workers())
	if err != nil {
		return Best{}, err
	}
	base := res[0]
	bestIdx := 1
	for i := 2; i < len(res); i++ {
		if res[i].EDP.Product() < res[bestIdx].EDP.Product() {
			bestIdx = i
		}
	}
	return Best{
		App: app, Side: side, Org: org,
		Desc:   fmt.Sprintf("static %v", sched.Points[bestIdx-1]),
		Spec:   sim.PolicySpec{Kind: sim.PolicyStatic, StaticIndex: bestIdx - 1},
		Chosen: res[bestIdx],
		Base:   base,
	}, nil
}

// DynamicParams is one dynamic-controller parameterization.
type DynamicParams struct {
	Interval       uint64
	MissBound      uint64
	SizeBoundBytes int
	UpsizeHold     int
}

// dynamicCandidates enumerates the offline profiling grid for the
// miss-ratio controller: miss-bounds as fractions of the interval and
// size-bounds across the schedule's range.
func dynamicCandidates(sched core.Schedule) []DynamicParams {
	// Miss-bounds span well past each app's background miss level
	// (conflict and cold misses) or the controller would pin at full
	// size; the shorter interval tracks phases in shorter runs; the
	// size-bound candidates are every offered size below full, since the
	// bound is how profiling pins the controller at an app's known floor.
	intervals := []uint64{4096, 16384, 65536}
	missFracs := []float64{0.002, 0.005, 0.01, 0.02, 0.04, 0.08, 0.15}
	var sizeBounds []int
	for _, p := range sched.Points[1:] {
		sizeBounds = append(sizeBounds, p.Bytes)
	}
	if len(sizeBounds) == 0 {
		sizeBounds = []int{sched.Geom.SizeBytes}
	}
	holds := []int{0, 3}
	var out []DynamicParams
	seen := map[DynamicParams]bool{}
	for _, iv := range intervals {
		for _, mf := range missFracs {
			for _, sb := range sizeBounds {
				for _, h := range holds {
					p := DynamicParams{Interval: iv,
						MissBound: uint64(mf * float64(iv)), SizeBoundBytes: sb,
						UpsizeHold: h}
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
			}
		}
	}
	return out
}

// BestDynamic profiles the dynamic controller's parameter grid for one
// application and returns the minimum-EDP parameterization.
func BestDynamic(app string, side Side, org core.Organization, assoc int, opts Options) (Best, error) {
	sched, err := core.BuildSchedule(l1Geom(assoc), org)
	if err != nil {
		return Best{}, err
	}
	cands := dynamicCandidates(sched)
	cfgs := []sim.Config{baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc)}
	for _, p := range cands {
		cfg := baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc)
		applySide(&cfg, side, sim.CacheSpec{
			Geom: l1Geom(assoc), Org: org,
			Policy: sim.PolicySpec{Kind: sim.PolicyDynamic, Interval: p.Interval,
				MissBound: p.MissBound, SizeBoundBytes: p.SizeBoundBytes,
				UpsizeHoldIntervals: p.UpsizeHold},
		})
		cfgs = append(cfgs, cfg)
	}
	res, err := runParallel(cfgs, opts.workers())
	if err != nil {
		return Best{}, err
	}
	base := res[0]
	bestIdx := 1
	for i := 2; i < len(res); i++ {
		if res[i].EDP.Product() < res[bestIdx].EDP.Product() {
			bestIdx = i
		}
	}
	p := cands[bestIdx-1]
	return Best{
		App: app, Side: side, Org: org,
		Desc: fmt.Sprintf("dynamic mb=%d sb=%s", p.MissBound,
			geometry.FormatSize(p.SizeBoundBytes)),
		Spec: sim.PolicySpec{Kind: sim.PolicyDynamic, Interval: p.Interval,
			MissBound: p.MissBound, SizeBoundBytes: p.SizeBoundBytes,
			UpsizeHoldIntervals: p.UpsizeHold},
		Chosen: res[bestIdx],
		Base:   base,
	}, nil
}

// Combined runs one simulation with both L1s resizing at their
// individually profiled configurations (the paper's Figure 9 protocol:
// the additivity of d- and i-cache resizing lets each be profiled
// alone). The returned Best compares against the shared non-resizable
// baseline.
func Combined(app string, org core.Organization, assoc int, dBest, iBest Best, opts Options) (Best, error) {
	cfg := baseConfig(app, opts.Engine, opts.Instructions, assoc, assoc)
	cfg.DCache = sim.CacheSpec{Geom: l1Geom(assoc), Org: org, Policy: dBest.Spec}
	cfg.ICache = sim.CacheSpec{Geom: l1Geom(assoc), Org: org, Policy: iBest.Spec}
	res, err := sim.Run(cfg)
	if err != nil {
		return Best{}, err
	}
	return Best{
		App: app, Side: DSide, Org: org,
		Desc:   fmt.Sprintf("both: %s + %s", dBest.Desc, iBest.Desc),
		Chosen: res,
		Base:   dBest.Base,
	}, nil
}
