package bpred

import (
	"testing"
	"testing/quick"
)

func TestBTBHitAfterUpdate(t *testing.T) {
	b := NewBTB(6, 2)
	pc, tgt := uint64(0x400100), uint64(0x400800)
	if _, hit := b.Lookup(pc); hit {
		t.Fatal("cold BTB hit")
	}
	b.Update(pc, tgt)
	got, hit := b.Lookup(pc)
	if !hit || got != tgt {
		t.Fatalf("Lookup = %x,%v", got, hit)
	}
	// Retarget the same branch (e.g. indirect branch changed target).
	b.Update(pc, tgt+64)
	if got, _ := b.Lookup(pc); got != tgt+64 {
		t.Fatalf("retarget failed: %x", got)
	}
	if b.HitRate() <= 0 || b.HitRate() >= 1 {
		t.Fatalf("hit rate = %v", b.HitRate())
	}
}

func TestBTBLRUEviction(t *testing.T) {
	b := NewBTB(0, 2) // one set, 2 ways: third entry evicts LRU
	b.Update(0x100, 0xA)
	b.Update(0x200, 0xB)
	b.Lookup(0x100) // 0x100 now MRU
	b.Update(0x300, 0xC)
	if _, hit := b.Lookup(0x100); !hit {
		t.Fatal("MRU entry evicted")
	}
	if _, hit := b.Lookup(0x200); hit {
		t.Fatal("LRU entry survived")
	}
	if _, hit := b.Lookup(0x300); !hit {
		t.Fatal("new entry missing")
	}
}

func TestBTBSetConflictIsolation(t *testing.T) {
	b := NewBTB(4, 1) // 16 sets, direct-mapped
	// Same set (stride 16 lines), different tags: they evict each other.
	a1 := uint64(0x1000)
	a2 := a1 + 16*4*16
	b.Update(a1, 1)
	b.Update(a2, 2)
	if _, hit := b.Lookup(a1); hit {
		t.Fatal("direct-mapped conflict should have evicted a1")
	}
	// Different sets: both live.
	b.Update(a1, 1)
	b.Update(a1+4, 3)
	if _, hit := b.Lookup(a1); !hit {
		t.Fatal("adjacent branch evicted a1 from another set")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("underflow returned ok")
	}
	if r.Pushes != 3 || r.Pops != 4 {
		t.Fatalf("counters %d/%d", r.Pushes, r.Pops)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if r.Depth() != 2 {
		t.Fatalf("depth = %d", r.Depth())
	}
	if got, _ := r.Pop(); got != 3 {
		t.Fatalf("Pop = %d, want 3", got)
	}
	if got, _ := r.Pop(); got != 2 {
		t.Fatalf("Pop = %d, want 2", got)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("oldest entry should have been overwritten")
	}
}

// Property: matched push/pop sequences that never exceed capacity behave
// exactly like a slice stack.
func TestRASMatchesReferenceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRAS(16)
		var ref []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 && len(ref) < 16 {
				r.Push(next)
				ref = append(ref, next)
				next++
			} else {
				got, ok := r.Pop()
				if len(ref) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := ref[len(ref)-1]
				ref = ref[:len(ref)-1]
				if !ok || got != want {
					return false
				}
			}
		}
		return r.Depth() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
