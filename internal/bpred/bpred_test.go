package bpred

import (
	"testing"
	"testing/quick"
)

func TestTwoBitSaturation(t *testing.T) {
	c := twoBit(0)
	for i := 0; i < 10; i++ {
		c = c.train(false)
	}
	if c != 0 {
		t.Fatalf("counter underflowed to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.train(true)
	}
	if c != 3 {
		t.Fatalf("counter = %d, want saturated 3", c)
	}
	if !c.taken() {
		t.Fatal("saturated counter must predict taken")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	pc := uint64(0x400100)
	for i := 0; i < 8; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Fatal("always-taken branch predicted not-taken")
	}
	pc2 := uint64(0x400200)
	for i := 0; i < 8; i++ {
		b.Update(pc2, false)
	}
	if b.Predict(pc2) {
		t.Fatal("never-taken branch predicted taken")
	}
	// Independent PCs must not have interfered.
	if !b.Predict(pc) {
		t.Fatal("aliasing between distinct table entries")
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	// A T,N,T,N... alternating branch is unpredictable for bimodal but
	// perfectly predictable with history.
	g := NewGShare(12, 8)
	bi := NewBimodal(12)
	pc := uint64(0x40ABC0)
	gWrong, bWrong := 0, 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if g.Predict(pc) != taken {
			gWrong++
		}
		if bi.Predict(pc) != taken {
			bWrong++
		}
		g.Update(pc, taken)
		bi.Update(pc, taken)
	}
	if gWrong > 50 {
		t.Fatalf("gshare mispredicted %d/2000 on an alternating pattern", gWrong)
	}
	if bWrong < 500 {
		t.Fatalf("bimodal unexpectedly good (%d wrong): test pattern broken", bWrong)
	}
}

func TestCombiningTracksBetterComponent(t *testing.T) {
	c := NewDefault()
	pc := uint64(0x400480)
	wrong := 0
	const n = 4000
	for i := 0; i < n; i++ {
		taken := i%2 == 0 // history-predictable
		if c.Predict(pc) != taken {
			wrong++
		}
		c.Update(pc, taken)
	}
	if float64(wrong)/n > 0.05 {
		t.Fatalf("combining mispredict rate %.2f on pattern gshare nails", float64(wrong)/n)
	}
	// Strongly biased branch: must also be near-perfect.
	c2 := NewDefault()
	wrong = 0
	for i := 0; i < n; i++ {
		if c2.Predict(pc) != true {
			wrong++
		}
		c2.Update(pc, true)
	}
	if float64(wrong)/n > 0.02 {
		t.Fatalf("combining mispredict rate %.2f on always-taken", float64(wrong)/n)
	}
}

func TestStatsAccuracy(t *testing.T) {
	s := Stats{P: NewBimodal(8)}
	pc := uint64(0x1000)
	for i := 0; i < 100; i++ {
		s.PredictAndTrain(pc, true)
	}
	if s.Lookups != 100 {
		t.Fatalf("lookups = %d", s.Lookups)
	}
	if s.Accuracy() < 0.95 {
		t.Fatalf("accuracy = %v on trivially biased branch", s.Accuracy())
	}
	empty := Stats{P: NewBimodal(4)}
	if empty.Accuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestNames(t *testing.T) {
	if NewBimodal(4).Name() != "bimodal" || NewGShare(4, 4).Name() != "gshare" ||
		NewDefault().Name() != "combining" {
		t.Fatal("predictor names wrong")
	}
}

// Property: on fully biased branches, any predictor converges to at most
// a bounded number of mispredictions (training works for arbitrary PCs).
func TestBiasedConvergenceProperty(t *testing.T) {
	f := func(pcSeed uint32, taken bool) bool {
		pc := uint64(pcSeed) << 2
		preds := []Predictor{NewBimodal(10), NewGShare(10, 8), NewDefault()}
		for _, p := range preds {
			wrong := 0
			for i := 0; i < 200; i++ {
				if p.Predict(pc) != taken {
					wrong++
				}
				p.Update(pc, taken)
			}
			if wrong > 20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
