// Package bpred implements the branch predictors of the simulated
// processor: a bimodal (PC-indexed two-bit counter) predictor, a gshare
// two-level predictor, and the combining predictor of the paper's base
// configuration (Table 2: "combination"), which uses a meta chooser table
// to select between the two component predictions per branch.
package bpred

// Predictor is a direction predictor for conditional branches.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// twoBit is a saturating two-bit counter: 0,1 predict not-taken; 2,3
// predict taken.
type twoBit uint8

func (c twoBit) taken() bool { return c >= 2 }

func (c twoBit) train(taken bool) twoBit {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a PC-indexed table of two-bit counters.
type Bimodal struct {
	table []twoBit
	mask  uint64
}

// NewBimodal builds a bimodal predictor with 2^bits entries, initialized
// weakly taken.
func NewBimodal(bits int) *Bimodal {
	n := 1 << bits
	t := make([]twoBit, n)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].train(taken)
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// GShare is a two-level predictor indexing a pattern table with the
// global history register XORed into the PC.
type GShare struct {
	table   []twoBit
	mask    uint64
	history uint64
	histLen uint
}

// NewGShare builds a gshare predictor with 2^bits entries and histBits of
// global history.
func NewGShare(bits, histBits int) *GShare {
	n := 1 << bits
	t := make([]twoBit, n)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, mask: uint64(n - 1), histLen: uint(histBits)}
}

func (g *GShare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor; it also shifts the resolved direction into
// the global history register.
func (g *GShare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].train(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histLen) - 1
}

// Name implements Predictor.
func (g *GShare) Name() string { return "gshare" }

// Combining is the tournament predictor: a meta table of two-bit
// counters picks, per branch, between two component predictors. The meta
// counter trains toward whichever component was correct when they
// disagree.
type Combining struct {
	meta  []twoBit
	mask  uint64
	comp1 Predictor // selected when the meta counter predicts "taken"
	comp2 Predictor
}

// NewCombining builds a combining predictor over two components with a
// 2^bits-entry chooser.
func NewCombining(bits int, comp1, comp2 Predictor) *Combining {
	n := 1 << bits
	t := make([]twoBit, n)
	for i := range t {
		t[i] = 2
	}
	return &Combining{meta: t, mask: uint64(n - 1), comp1: comp1, comp2: comp2}
}

// NewDefault returns the base-configuration predictor: a combination of
// bimodal and gshare with 4K-entry tables, as a SimpleScalar "comb"
// predictor would be configured.
func NewDefault() *Combining {
	return NewCombining(12, NewGShare(12, 10), NewBimodal(12))
}

func (c *Combining) index(pc uint64) uint64 { return (pc >> 2) & c.mask }

// Predict implements Predictor.
func (c *Combining) Predict(pc uint64) bool {
	if c.meta[c.index(pc)].taken() {
		return c.comp1.Predict(pc)
	}
	return c.comp2.Predict(pc)
}

// Update implements Predictor.
func (c *Combining) Update(pc uint64, taken bool) {
	p1 := c.comp1.Predict(pc)
	p2 := c.comp2.Predict(pc)
	if p1 != p2 {
		i := c.index(pc)
		c.meta[i] = c.meta[i].train(p1 == taken)
	}
	c.comp1.Update(pc, taken)
	c.comp2.Update(pc, taken)
}

// Name implements Predictor.
func (c *Combining) Name() string { return "combining" }

// Stats wraps a predictor and counts accuracy.
type Stats struct {
	P          Predictor
	Lookups    uint64
	Mispredict uint64
}

// PredictAndTrain performs one predict/update round and returns whether
// the prediction was correct.
func (s *Stats) PredictAndTrain(pc uint64, taken bool) bool {
	s.Lookups++
	pred := s.P.Predict(pc)
	s.P.Update(pc, taken)
	if pred != taken {
		s.Mispredict++
		return false
	}
	return true
}

// Accuracy returns the fraction of correct predictions.
func (s *Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return 1 - float64(s.Mispredict)/float64(s.Lookups)
}
