package bpred

import "fmt"

// This file implements warm-state snapshot/restore for every predictor
// structure. The sampled execution mode serializes these states into
// persistent warmup checkpoints (internal/sim), so the field sets below
// are a wire format: changing what they capture requires bumping the
// checkpoint format version in internal/sim (see CONTRIBUTING.md).

// PredictorState is the serializable warm state of a direction
// predictor. Table holds two-bit counters one per byte ([]byte
// round-trips through JSON as base64, keeping checkpoints compact);
// combining predictors store the meta table there and their components
// in Comp1/Comp2.
type PredictorState struct {
	Kind    string          `json:"kind"`
	Table   []byte          `json:"table"`
	History uint64          `json:"history,omitempty"` // gshare global history
	Comp1   *PredictorState `json:"comp1,omitempty"`
	Comp2   *PredictorState `json:"comp2,omitempty"`
}

func counterBytes(t []twoBit) []byte {
	b := make([]byte, len(t))
	for i, c := range t {
		b[i] = byte(c)
	}
	return b
}

func restoreCounters(dst []twoBit, src []byte, what string) error {
	if len(src) != len(dst) {
		return fmt.Errorf("bpred: %s table length %d does not match predictor's %d", what, len(src), len(dst))
	}
	for i, b := range src {
		if b > 3 {
			return fmt.Errorf("bpred: %s counter %d out of two-bit range", what, b)
		}
		dst[i] = twoBit(b)
	}
	return nil
}

// SnapshotPredictor captures the warm state of a predictor built from
// this package's constructors. It errors on an unknown implementation,
// so a new predictor type cannot silently checkpoint as empty state.
func SnapshotPredictor(p Predictor) (PredictorState, error) {
	switch v := p.(type) {
	case *Bimodal:
		return PredictorState{Kind: "bimodal", Table: counterBytes(v.table)}, nil
	case *GShare:
		return PredictorState{Kind: "gshare", Table: counterBytes(v.table), History: v.history}, nil
	case *Combining:
		c1, err := SnapshotPredictor(v.comp1)
		if err != nil {
			return PredictorState{}, err
		}
		c2, err := SnapshotPredictor(v.comp2)
		if err != nil {
			return PredictorState{}, err
		}
		return PredictorState{Kind: "combining", Table: counterBytes(v.meta), Comp1: &c1, Comp2: &c2}, nil
	default:
		return PredictorState{}, fmt.Errorf("bpred: cannot snapshot predictor %q (%T)", p.Name(), p)
	}
}

// RestorePredictor loads a snapshot into an already-constructed
// predictor of the same shape (same kinds, same table geometries).
func RestorePredictor(p Predictor, s PredictorState) error {
	switch v := p.(type) {
	case *Bimodal:
		if s.Kind != "bimodal" {
			return fmt.Errorf("bpred: snapshot kind %q into bimodal", s.Kind)
		}
		return restoreCounters(v.table, s.Table, "bimodal")
	case *GShare:
		if s.Kind != "gshare" {
			return fmt.Errorf("bpred: snapshot kind %q into gshare", s.Kind)
		}
		if err := restoreCounters(v.table, s.Table, "gshare"); err != nil {
			return err
		}
		v.history = s.History & ((1 << v.histLen) - 1)
		return nil
	case *Combining:
		if s.Kind != "combining" || s.Comp1 == nil || s.Comp2 == nil {
			return fmt.Errorf("bpred: snapshot kind %q into combining", s.Kind)
		}
		if err := restoreCounters(v.meta, s.Table, "combining meta"); err != nil {
			return err
		}
		if err := RestorePredictor(v.comp1, *s.Comp1); err != nil {
			return err
		}
		return RestorePredictor(v.comp2, *s.Comp2)
	default:
		return fmt.Errorf("bpred: cannot restore predictor %q (%T)", p.Name(), p)
	}
}

// BTBState is the serializable warm state of a BTB: parallel per-entry
// arrays plus the LRU clock and hit counters.
type BTBState struct {
	Tags    []uint64 `json:"tags"`
	Targets []uint64 `json:"targets"`
	LRU     []uint64 `json:"lru"`
	Valid   []byte   `json:"valid"`
	Clock   uint64   `json:"clock"`
	Lookups uint64   `json:"lookups"`
	Hits    uint64   `json:"hits"`
}

// Snapshot captures the BTB's warm state.
func (b *BTB) Snapshot() BTBState {
	n := len(b.entries)
	s := BTBState{
		Tags:    make([]uint64, n),
		Targets: make([]uint64, n),
		LRU:     make([]uint64, n),
		Valid:   make([]byte, n),
		Clock:   b.clock,
		Lookups: b.Lookups,
		Hits:    b.Hits,
	}
	for i := range b.entries {
		e := &b.entries[i]
		s.Tags[i] = e.tag
		s.Targets[i] = e.tgt
		s.LRU[i] = e.lru
		if e.valid {
			s.Valid[i] = 1
		}
	}
	return s
}

// Restore loads a snapshot into a BTB of the same geometry.
func (b *BTB) Restore(s BTBState) error {
	n := len(b.entries)
	if len(s.Tags) != n || len(s.Targets) != n || len(s.LRU) != n || len(s.Valid) != n {
		return fmt.Errorf("bpred: BTB snapshot entry count does not match geometry (%d entries)", n)
	}
	for i := range b.entries {
		b.entries[i] = btbEntry{tag: s.Tags[i], tgt: s.Targets[i], lru: s.LRU[i], valid: s.Valid[i] != 0}
	}
	b.clock = s.Clock
	b.Lookups = s.Lookups
	b.Hits = s.Hits
	return nil
}

// RASState is the serializable warm state of a return-address stack.
type RASState struct {
	Stack  []uint64 `json:"stack"`
	Top    int      `json:"top"`
	Depth  int      `json:"depth"`
	Pushes uint64   `json:"pushes"`
	Pops   uint64   `json:"pops"`
}

// Snapshot captures the RAS's warm state.
func (r *RAS) Snapshot() RASState {
	return RASState{
		Stack:  append([]uint64(nil), r.stack...),
		Top:    r.top,
		Depth:  r.depth,
		Pushes: r.Pushes,
		Pops:   r.Pops,
	}
}

// Restore loads a snapshot into a RAS of the same capacity.
func (r *RAS) Restore(s RASState) error {
	if len(s.Stack) != len(r.stack) {
		return fmt.Errorf("bpred: RAS snapshot depth %d does not match capacity %d", len(s.Stack), len(r.stack))
	}
	if s.Top < 0 || s.Top >= len(r.stack) || s.Depth < 0 || s.Depth > len(r.stack) {
		return fmt.Errorf("bpred: RAS snapshot top/depth out of range")
	}
	copy(r.stack, s.Stack)
	r.top = s.Top
	r.depth = s.Depth
	r.Pushes = s.Pushes
	r.Pops = s.Pops
	return nil
}

// StatsState is the serializable accuracy-counter state of Stats.
type StatsState struct {
	Lookups    uint64 `json:"lookups"`
	Mispredict uint64 `json:"mispredict"`
}

// Snapshot captures the accuracy counters (the wrapped predictor is
// snapshotted separately via SnapshotPredictor).
func (s *Stats) Snapshot() StatsState {
	return StatsState{Lookups: s.Lookups, Mispredict: s.Mispredict}
}

// Restore loads the accuracy counters.
func (s *Stats) Restore(st StatsState) {
	s.Lookups = st.Lookups
	s.Mispredict = st.Mispredict
}
