package bpred

// BTB is a set-associative branch target buffer: the fetch stage uses it
// to redirect to a predicted-taken branch's target in the same cycle.
// A taken branch that misses in the BTB costs a fetch bubble even when
// its direction was predicted correctly.
type BTB struct {
	sets  int
	ways  int
	tags  [][]uint64
	tgt   [][]uint64
	valid [][]bool
	lru   [][]uint64
	clock uint64

	Lookups uint64
	Hits    uint64
}

// NewBTB builds a BTB with 2^setBits sets and the given associativity.
func NewBTB(setBits, ways int) *BTB {
	sets := 1 << setBits
	b := &BTB{sets: sets, ways: ways}
	b.tags = make([][]uint64, sets)
	b.tgt = make([][]uint64, sets)
	b.valid = make([][]bool, sets)
	b.lru = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		b.tags[i] = make([]uint64, ways)
		b.tgt[i] = make([]uint64, ways)
		b.valid[i] = make([]bool, ways)
		b.lru[i] = make([]uint64, ways)
	}
	return b
}

func (b *BTB) index(pc uint64) (set int, tag uint64) {
	line := pc >> 2
	return int(line % uint64(b.sets)), line / uint64(b.sets)
}

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	b.Lookups++
	b.clock++
	set, tag := b.index(pc)
	for w := 0; w < b.ways; w++ {
		if b.valid[set][w] && b.tags[set][w] == tag {
			b.lru[set][w] = b.clock
			b.Hits++
			return b.tgt[set][w], true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for a taken branch.
func (b *BTB) Update(pc, target uint64) {
	b.clock++
	set, tag := b.index(pc)
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < b.ways; w++ {
		if b.valid[set][w] && b.tags[set][w] == tag {
			b.tgt[set][w] = target
			b.lru[set][w] = b.clock
			return
		}
		if !b.valid[set][w] {
			victim, oldest = w, 0
		} else if b.lru[set][w] < oldest {
			victim, oldest = w, b.lru[set][w]
		}
	}
	b.tags[set][victim] = tag
	b.tgt[set][victim] = target
	b.valid[set][victim] = true
	b.lru[set][victim] = b.clock
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	if b.Lookups == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Lookups)
}

// RAS is a return address stack with wrap-around overflow, as in
// SimpleScalar: pushes beyond capacity overwrite the oldest entry.
type RAS struct {
	stack []uint64
	top   int
	depth int

	Pushes uint64
	Pops   uint64
}

// NewRAS builds a return-address stack with the given capacity.
func NewRAS(entries int) *RAS {
	return &RAS{stack: make([]uint64, entries)}
}

// Push records a call's return address.
func (r *RAS) Push(ret uint64) {
	r.Pushes++
	r.stack[r.top] = ret
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the next return address; ok is false when the stack has
// underflowed.
func (r *RAS) Pop() (ret uint64, ok bool) {
	r.Pops++
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top], true
}

// Depth returns the current number of valid entries.
func (r *RAS) Depth() int { return r.depth }
