package bpred

// btbEntry is one BTB way. Entries live in a single flat slice indexed
// by set*ways+way, so a lookup's way probe walks one contiguous cache
// line instead of chasing per-field slice headers.
type btbEntry struct {
	tag   uint64
	tgt   uint64
	lru   uint64
	valid bool
}

// BTB is a set-associative branch target buffer: the fetch stage uses it
// to redirect to a predicted-taken branch's target in the same cycle.
// A taken branch that misses in the BTB costs a fetch bubble even when
// its direction was predicted correctly.
type BTB struct {
	setMask  uint64 // sets - 1 (sets is a power of two)
	setShift uint   // log2(sets), for the tag split
	ways     int
	entries  []btbEntry
	clock    uint64

	Lookups uint64
	Hits    uint64
}

// NewBTB builds a BTB with 2^setBits sets and the given associativity.
func NewBTB(setBits, ways int) *BTB {
	sets := 1 << setBits
	return &BTB{
		setMask:  uint64(sets - 1),
		setShift: uint(setBits),
		ways:     ways,
		entries:  make([]btbEntry, sets*ways),
	}
}

// index splits a PC into set index and tag. The set count is a power of
// two, so the split is a mask and a shift — no divide on the fetch path.
func (b *BTB) index(pc uint64) (set int, tag uint64) {
	line := pc >> 2
	return int(line & b.setMask), line >> b.setShift
}

// set returns the entry slice for one set.
func (b *BTB) set(set int) []btbEntry {
	return b.entries[set*b.ways : (set+1)*b.ways]
}

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	b.Lookups++
	b.clock++
	s, tag := b.index(pc)
	ways := b.set(s)
	for w := range ways {
		e := &ways[w]
		if e.valid && e.tag == tag {
			e.lru = b.clock
			b.Hits++
			return e.tgt, true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for a taken branch.
func (b *BTB) Update(pc, target uint64) {
	b.clock++
	s, tag := b.index(pc)
	ways := b.set(s)
	victim, oldest := 0, ^uint64(0)
	for w := range ways {
		e := &ways[w]
		if e.valid && e.tag == tag {
			e.tgt = target
			e.lru = b.clock
			return
		}
		if !e.valid {
			victim, oldest = w, 0
		} else if e.lru < oldest {
			victim, oldest = w, e.lru
		}
	}
	ways[victim] = btbEntry{tag: tag, tgt: target, lru: b.clock, valid: true}
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	if b.Lookups == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Lookups)
}

// RAS is a return address stack with wrap-around overflow, as in
// SimpleScalar: pushes beyond capacity overwrite the oldest entry.
type RAS struct {
	stack []uint64
	top   int
	depth int

	Pushes uint64
	Pops   uint64
}

// NewRAS builds a return-address stack with the given capacity.
func NewRAS(entries int) *RAS {
	return &RAS{stack: make([]uint64, entries)}
}

// Push records a call's return address.
func (r *RAS) Push(ret uint64) {
	r.Pushes++
	r.stack[r.top] = ret
	if r.top++; r.top == len(r.stack) {
		r.top = 0
	}
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the next return address; ok is false when the stack has
// underflowed.
func (r *RAS) Pop() (ret uint64, ok bool) {
	r.Pops++
	if r.depth == 0 {
		return 0, false
	}
	if r.top--; r.top < 0 {
		r.top = len(r.stack) - 1
	}
	r.depth--
	return r.stack[r.top], true
}

// Depth returns the current number of valid entries.
func (r *RAS) Depth() int { return r.depth }
