// Package prof wires the standard pprof profiles into the CLI drivers,
// so hot-path work on the simulator is measurable without editing code:
// run any experiment with -cpuprofile/-memprofile and feed the output
// to `go tool pprof`.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start turns on CPU profiling (when cpuPath is non-empty) and arranges
// a heap snapshot at stop time (when memPath is non-empty). The
// returned stop function must run before the process exits — callers
// that exit with os.Exit must do so *after* invoking it (defer it in a
// function whose return precedes the exit), or the CPU profile is left
// unterminated and the heap profile never written.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
