// Package core implements the paper's primary contribution: the design
// space of resizable caches. It provides the three resizing
// organizations — selective-ways, selective-sets, and the proposed hybrid
// selective-sets-and-ways — as offered-size schedules over a cache
// geometry, a ResizableCache that applies resizes with the correct flush
// semantics and energy accounting, and the two resizing strategies
// (static, and the miss-ratio-based dynamic controller with miss-bound
// and size-bound parameters).
package core

import (
	"fmt"
	"sort"

	"resizecache/internal/geometry"
)

// Organization selects a resizable cache organization.
type Organization int

const (
	// NonResizable is the conventional fixed cache (the baseline).
	NonResizable Organization = iota
	// SelectiveWays enables/disables individual associative ways
	// (Albonesi, MICRO-32).
	SelectiveWays
	// SelectiveSets enables/disables cache sets by masking index bits
	// (Yang et al., HPCA-7).
	SelectiveSets
	// Hybrid combines both, offering the union of their size spectra
	// (this paper's proposal). Redundant sizes resolve to the highest
	// set-associativity, per Table 1.
	Hybrid
	// HybridMinWays is the ablation variant of Hybrid: redundant sizes
	// resolve to the FEWEST ways (cheapest per-access read energy)
	// instead of the highest associativity (lowest miss ratio). Used to
	// quantify the cost of Table 1's tie-break rule.
	HybridMinWays
)

func (o Organization) String() string {
	switch o {
	case NonResizable:
		return "non-resizable"
	case SelectiveWays:
		return "selective-ways"
	case SelectiveSets:
		return "selective-sets"
	case Hybrid:
		return "hybrid"
	case HybridMinWays:
		return "hybrid-min-ways"
	default:
		return fmt.Sprintf("Organization(%d)", int(o))
	}
}

// SizePoint is one configuration offered by an organization: an enabled
// capacity realized as Sets × Ways × blockBytes.
type SizePoint struct {
	Bytes int
	Sets  int
	Ways  int
}

func (p SizePoint) String() string {
	return fmt.Sprintf("%s/%d-way", geometry.FormatSize(p.Bytes), p.Ways)
}

// Schedule is the ordered list of configurations an organization offers
// for a geometry, largest first. Index 0 is always the full-size
// configuration.
type Schedule struct {
	Org    Organization
	Geom   geometry.Geometry
	Points []SizePoint
}

// MinSets returns the fewest sets appearing anywhere in the schedule
// (the value the tag array must be provisioned for when sets can shrink).
func (s Schedule) MinSets() int {
	min := s.Geom.Sets()
	for _, p := range s.Points {
		if p.Sets < min {
			min = p.Sets
		}
	}
	return min
}

// MinBytes returns the smallest offered capacity.
func (s Schedule) MinBytes() int {
	min := s.Points[0].Bytes
	for _, p := range s.Points {
		if p.Bytes < min {
			min = p.Bytes
		}
	}
	return min
}

// IndexAtOrBelow returns the index of the largest offered point with
// Bytes <= limit, or 0 if none (the full size).
func (s Schedule) IndexAtOrBelow(limit int) int {
	for i, p := range s.Points {
		if p.Bytes <= limit {
			return i
		}
	}
	return 0
}

// NeedsProvisionedTag reports whether this schedule ever reduces the set
// count, forcing a tag array provisioned for the minimum size.
func (s Schedule) NeedsProvisionedTag() bool { return s.MinSets() < s.Geom.Sets() }

// BuildSchedule enumerates the configurations offered by org over g.
//
// Enable/disable granularity is one subarray per way, so the minimum set
// count is one subarray's worth of blocks (paper §2.1). For the hybrid
// organization, every (setCount, wayCount) combination is enumerated and
// redundant sizes resolve to the highest set-associativity (Table 1's
// shaded entries), which reproduces Table 1 exactly: sizes from 32K down
// to 3K alternate 4-way/3-way, and only below 3K does associativity drop
// further.
func BuildSchedule(g geometry.Geometry, org Organization) (Schedule, error) {
	if err := g.Validate(); err != nil {
		return Schedule{}, err
	}
	maxSets := g.Sets()
	minSets := g.SubarrayBytes / g.BlockBytes // one subarray per way
	if minSets < 1 {
		minSets = 1
	}
	block := g.BlockBytes
	var pts []SizePoint
	add := func(sets, ways int) {
		pts = append(pts, SizePoint{Bytes: sets * ways * block, Sets: sets, Ways: ways})
	}

	switch org {
	case NonResizable:
		add(maxSets, g.Assoc)
	case SelectiveWays:
		for w := g.Assoc; w >= 1; w-- {
			add(maxSets, w)
		}
	case SelectiveSets:
		for s := maxSets; s >= minSets; s >>= 1 {
			add(s, g.Assoc)
		}
	case Hybrid, HybridMinWays:
		best := map[int]SizePoint{}
		preferMoreWays := org == Hybrid
		for s := maxSets; s >= minSets; s >>= 1 {
			for w := g.Assoc; w >= 1; w-- {
				size := s * w * block
				cur, ok := best[size]
				better := !ok || (preferMoreWays && w > cur.Ways) ||
					(!preferMoreWays && w < cur.Ways)
				if better {
					best[size] = SizePoint{Bytes: size, Sets: s, Ways: w}
				}
			}
		}
		for _, p := range best { //simlint:ordered sizes are unique map keys; the sort below imposes a total order
			pts = append(pts, p)
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Bytes > pts[j].Bytes })
	default:
		return Schedule{}, fmt.Errorf("core: unknown organization %d", int(org))
	}

	if pts[0].Bytes != g.SizeBytes {
		return Schedule{}, fmt.Errorf("core: schedule for %v does not start at full size", org)
	}
	return Schedule{Org: org, Geom: g, Points: pts}, nil
}
