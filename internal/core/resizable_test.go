package core

import (
	"testing"

	"resizecache/internal/cache"
	"resizecache/internal/geometry"
)

type stubNext struct{ latency uint64 }

func (s *stubNext) Access(now uint64, addr uint64, write bool) uint64 { return now + s.latency }
func (s *stubNext) Warm(addr uint64, write bool)                      {}
func (s *stubNext) Finalize(uint64)                                   {}
func (s *stubNext) EnergyPJ() float64                                 { return 0 }

func buildL1(t *testing.T, org Organization, p Policy) *ResizableCache {
	t.Helper()
	r, err := NewResizable(Options{
		Name: "L1d",
		// 32K 4-way: selective-sets offers 32K, 16K, 8K, 4K.
		Geom:       geometry.Geometry{SizeBytes: 32 << 10, Assoc: 4, BlockBytes: 32, SubarrayBytes: 1 << 10},
		Org:        org,
		Policy:     p,
		HitLatency: 1,
		Energy:     geometry.Default18um(),
	}, &stubNext{latency: 12})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewResizableProvisionsTagForSetOrgs(t *testing.T) {
	rw := buildL1(t, SelectiveWays, nil)
	if rw.C.Config().ProvisionTagForMinSets != 0 {
		t.Error("selective-ways should use a conventional tag array")
	}
	rs := buildL1(t, SelectiveSets, nil)
	if rs.C.Config().ProvisionTagForMinSets != rs.Sched.MinSets() {
		t.Error("selective-sets tag array not provisioned for min sets")
	}
	rh := buildL1(t, Hybrid, nil)
	if rh.C.Config().ProvisionTagForMinSets != rh.Sched.MinSets() {
		t.Error("hybrid tag array not provisioned for min sets")
	}
}

func TestWrapValidation(t *testing.T) {
	g := geometry.Geometry{SizeBytes: 8 << 10, Assoc: 4, BlockBytes: 32, SubarrayBytes: 1 << 10}
	sched, _ := BuildSchedule(g, SelectiveSets)
	// Cache without provisioned tag must be rejected for a sets schedule.
	c, err := cache.New(cache.Config{Name: "x", Geom: g, HitLatency: 1,
		Energy: geometry.Default18um()}, &stubNext{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Wrap(c, sched, nil); err == nil {
		t.Fatal("missing tag provisioning accepted")
	}
	// Geometry mismatch must be rejected.
	g2 := g
	g2.SizeBytes = 16 << 10
	sched2, _ := BuildSchedule(g2, SelectiveWays)
	if _, err := Wrap(c, sched2, nil); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if _, err := Wrap(c, Schedule{}, nil); err == nil {
		t.Fatal("empty schedule accepted")
	}
}

func TestStaticPolicyAppliesPointAtBind(t *testing.T) {
	r := buildL1(t, SelectiveSets, &StaticPolicy{PointIndex: 2})
	if r.Index() != 2 {
		t.Fatalf("index = %d, want 2", r.Index())
	}
	want := r.Sched.Points[2]
	if r.C.EnabledBytes() != want.Bytes {
		t.Fatalf("enabled = %d, want %d", r.C.EnabledBytes(), want.Bytes)
	}
	// Static never moves: run accesses and confirm.
	now := uint64(0)
	for i := 0; i < 10000; i++ {
		now = r.Access(now, uint64(i*64), false)
	}
	if r.Index() != 2 {
		t.Fatal("static policy moved")
	}
	if len(r.SizeTrace) != 0 {
		t.Fatal("static policy should not record intervals")
	}
}

func TestUpsizeDownsizeBounds(t *testing.T) {
	r := buildL1(t, SelectiveSets, nil)
	if r.Upsize(0) {
		t.Fatal("upsize from full size should fail")
	}
	moves := 0
	for r.Downsize(0) {
		moves++
		if moves > 10 {
			t.Fatal("runaway downsize")
		}
	}
	if r.Index() != len(r.Sched.Points)-1 {
		t.Fatal("not at minimum after exhaustive downsize")
	}
	if r.Downsize(0) {
		t.Fatal("downsize below minimum should fail")
	}
}

func TestSetIndexRangeCheck(t *testing.T) {
	r := buildL1(t, Hybrid, nil)
	if err := r.SetIndex(0, -1); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := r.SetIndex(0, len(r.Sched.Points)); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// Drive a dynamic policy with a tiny working set: every interval should
// see few misses, so the cache must walk down to its size bound.
func TestDynamicPolicyDownsizesOnLowMisses(t *testing.T) {
	p := &DynamicPolicy{Interval: 1000, MissBound: 20, SizeBoundBytes: 8 << 10}
	r := buildL1(t, SelectiveSets, p)
	now := uint64(0)
	for i := 0; i < 20000; i++ {
		now = r.Access(now, uint64(i%16)*32, false) // 16-block working set
	}
	if got := r.Current().Bytes; got != 8<<10 {
		t.Fatalf("settled at %d bytes, want size bound 8K", got)
	}
	if p.Resizings == 0 {
		t.Fatal("no resizings recorded")
	}
	if len(r.SizeTrace) == 0 {
		t.Fatal("size trace empty")
	}
}

// A working set far larger than the cache should keep misses above bound,
// so a dynamic cache that starts small must walk back up to full size.
func TestDynamicPolicyUpsizesOnHighMisses(t *testing.T) {
	p := &DynamicPolicy{Interval: 1000, MissBound: 50}
	r := buildL1(t, SelectiveSets, p)
	if err := r.SetIndex(0, len(r.Sched.Points)-1); err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := 0; i < 30000; i++ {
		now = r.Access(now, uint64(i%4096)*32, false) // 128K streaming set
	}
	if r.Index() != 0 {
		t.Fatalf("index = %d, want 0 (full size)", r.Index())
	}
}

// Working set between two offered sizes: dynamic resizing must oscillate
// (the paper's "unavailable-size emulation").
func TestDynamicPolicyEmulatesUnavailableSize(t *testing.T) {
	// The interval must be long enough that resize-flush refills (~WS/2
	// misses) stay under the bound, or the controller thrashes at the top
	// of the schedule instead of tracking the working set.
	p := &DynamicPolicy{Interval: 2000, MissBound: 100}
	r := buildL1(t, SelectiveSets, p) // offers 32K, 16K, 8K, 4K
	now := uint64(0)
	// ~6K working set (192 blocks): too big for 4K, comfortable in 8K.
	for i := 0; i < 200000; i++ {
		now = r.Access(now, uint64(i%192)*32, false)
	}
	seen := map[int]bool{}
	for _, idx := range r.SizeTrace {
		seen[idx] = true
	}
	if !seen[2] || !seen[3] {
		t.Fatalf("expected oscillation between 8K and 4K, size trace visited %v", seen)
	}
	if r.C.Stat.Resizes.Value() < 4 {
		t.Fatalf("expected repeated resizing, got %d", r.C.Stat.Resizes.Value())
	}
}

func TestDynamicPolicySizeBoundBlocksDownsize(t *testing.T) {
	p := &DynamicPolicy{Interval: 100, MissBound: 1 << 60, SizeBoundBytes: 32 << 10}
	r := buildL1(t, SelectiveSets, p)
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		now = r.Access(now, 0, false)
	}
	if r.Index() != 0 {
		t.Fatal("size bound equal to full size must pin the cache")
	}
	if p.Resizings != 0 {
		t.Fatal("resizings counted despite bound")
	}
}

func TestResizableEnergyAndFinalize(t *testing.T) {
	r := buildL1(t, SelectiveWays, &StaticPolicy{PointIndex: 2})
	now := uint64(0)
	for i := 0; i < 1000; i++ {
		now = r.Access(now, uint64(i%8)*32, false)
	}
	r.Finalize(now)
	if r.EnergyPJ() <= 0 {
		t.Fatal("no energy recorded")
	}
	full := buildL1(t, SelectiveWays, &StaticPolicy{PointIndex: 0})
	now = 0
	for i := 0; i < 1000; i++ {
		now = full.Access(now, uint64(i%8)*32, false)
	}
	full.Finalize(now)
	if r.EnergyPJ() >= full.EnergyPJ() {
		t.Fatal("downsized ways must use less energy than full size")
	}
}

// With UpsizeHoldIntervals set, the controller must not downsize during
// the hold window after an upsize — the emulation hysteresis.
func TestDynamicPolicyUpsizeHold(t *testing.T) {
	p := &DynamicPolicy{Interval: 500, MissBound: 50, UpsizeHoldIntervals: 4}
	r := buildL1(t, SelectiveSets, p)
	// Force the cache small, then stream a large working set to trigger
	// an upsize, then a tiny working set: downsizes must wait out the
	// hold.
	if err := r.SetIndex(0, len(r.Sched.Points)-1); err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := 0; i < 1000; i++ { // one interval of heavy missing
		now = r.Access(now, uint64(i%4096)*32, false)
	}
	idxAfterUp := r.Index()
	if idxAfterUp >= len(r.Sched.Points)-1 {
		t.Fatal("no upsize happened")
	}
	// Two quiet intervals: within the hold, index must not increase
	// (no downsizing).
	for i := 0; i < 1000; i++ {
		now = r.Access(now, 0, false)
	}
	if r.Index() > idxAfterUp {
		t.Fatalf("downsized during hold window: %d -> %d", idxAfterUp, r.Index())
	}
	// After the hold expires, quiet traffic lets it walk back down.
	for i := 0; i < 4000; i++ {
		now = r.Access(now, 0, false)
	}
	if r.Index() <= idxAfterUp {
		t.Fatal("never downsized after hold expired")
	}
}
