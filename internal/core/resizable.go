package core

import (
	"fmt"

	"resizecache/internal/cache"
)

// ResizableCache couples a cache array with an organization's schedule
// and a resizing policy. It implements cache.Level, so it drops into the
// hierarchy wherever a conventional cache would.
//
// Per-access flow: the policy's interval machinery observes every access
// and its hit/miss outcome; at interval boundaries the policy may request
// a step up or down the schedule, which ResizableCache applies with the
// organization's flush semantics (delegated to cache.Cache.SetEnabled).
type ResizableCache struct {
	C      *cache.Cache
	Sched  Schedule
	policy Policy

	idx int // current schedule index

	// Interval machinery (driven per access, in accesses as the paper's
	// dynamic framework specifies). intervalLen caches the policy's
	// IntervalLength at Wrap time — policies declare a fixed monitoring
	// interval, so the hot path pays a field read instead of an
	// interface call per access.
	intervalLen      uint64
	intervalAccesses uint64
	intervalMisses   uint64

	// SizeTrace records the schedule index at each interval boundary;
	// experiments use it to classify behaviour (constant / varying /
	// emulating).
	SizeTrace []int
}

// Wrap couples an already-allocated cache with a schedule and policy.
// The cache must have been built at the schedule's full geometry, with
// ProvisionTagForMinSets set if the schedule shrinks sets; NewResizable
// does all of that from one Options value.
func Wrap(c *cache.Cache, sched Schedule, p Policy) (*ResizableCache, error) {
	if len(sched.Points) == 0 {
		return nil, fmt.Errorf("core: empty schedule")
	}
	if c.Config().Geom != sched.Geom {
		return nil, fmt.Errorf("core: cache geometry %v does not match schedule %v",
			c.Config().Geom, sched.Geom)
	}
	if sched.NeedsProvisionedTag() && c.Config().ProvisionTagForMinSets != sched.MinSets() {
		return nil, fmt.Errorf("core: schedule needs tag provisioned for %d sets, cache has %d",
			sched.MinSets(), c.Config().ProvisionTagForMinSets)
	}
	r := &ResizableCache{C: c, Sched: sched, policy: p}
	if p != nil {
		p.Bind(r)
		r.intervalLen = p.IntervalLength()
	}
	return r, nil
}

// Current returns the active size point.
func (r *ResizableCache) Current() SizePoint { return r.Sched.Points[r.idx] }

// Index returns the active schedule index.
func (r *ResizableCache) Index() int { return r.idx }

// SetIndex jumps to schedule point i at cycle now.
func (r *ResizableCache) SetIndex(now uint64, i int) error {
	if i < 0 || i >= len(r.Sched.Points) {
		return fmt.Errorf("core: schedule index %d out of range [0,%d)", i, len(r.Sched.Points))
	}
	p := r.Sched.Points[i]
	if _, err := r.C.SetEnabled(now, p.Sets, p.Ways); err != nil {
		return err
	}
	r.idx = i
	return nil
}

// Downsize moves one step smaller if possible; reports whether it moved.
func (r *ResizableCache) Downsize(now uint64) bool {
	if r.idx+1 >= len(r.Sched.Points) {
		return false
	}
	return r.SetIndex(now, r.idx+1) == nil
}

// Upsize moves one step larger if possible; reports whether it moved.
func (r *ResizableCache) Upsize(now uint64) bool {
	if r.idx == 0 {
		return false
	}
	return r.SetIndex(now, r.idx-1) == nil
}

// Access implements cache.Level, threading each access through the
// policy's interval accounting.
//
//simlint:hotpath per-access wrapper for policy-driven caches
func (r *ResizableCache) Access(now uint64, addr uint64, write bool) uint64 {
	missesBefore := r.C.Stat.Misses.Value()
	done := r.C.Access(now, addr, write)
	r.intervalAccesses++
	if r.C.Stat.Misses.Value() != missesBefore {
		r.intervalMisses++
	}
	if r.intervalLen > 0 && r.intervalAccesses >= r.intervalLen {
		r.policy.OnInterval(now, r.intervalMisses)
		r.SizeTrace = append(r.SizeTrace, r.idx) //simlint:allow amortized: one append per policy interval, not per access
		r.intervalAccesses = 0
		r.intervalMisses = 0
	}
	return done
}

// Warm implements cache.Level: functional accesses advance the array's
// warm state but bypass the policy's interval accounting — dynamic
// policies observe only the detailed windows, so their resize decisions
// stay a pure function of the detailed access stream.
//
//simlint:hotpath per-access wrapper during fast-forward windows
func (r *ResizableCache) Warm(addr uint64, write bool) { r.C.Warm(addr, write) }

// Finalize implements cache.Level.
func (r *ResizableCache) Finalize(endCycle uint64) { r.C.Finalize(endCycle) }

// EnergyPJ implements cache.Level.
func (r *ResizableCache) EnergyPJ() float64 { return r.C.EnergyPJ() }
