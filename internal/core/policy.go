package core

// Policy is a resizing strategy. Bind attaches it to the cache it
// controls; IntervalLength returns the monitoring interval in accesses
// (0 disables interval callbacks); OnInterval is invoked at each interval
// boundary with the miss count of the elapsed interval.
type Policy interface {
	Name() string
	Bind(r *ResizableCache)
	IntervalLength() uint64
	OnInterval(now uint64, misses uint64)
}

// StaticPolicy fixes the cache at one schedule point for the whole run —
// the paper's static resizing strategy, where profiling selects the point
// before execution and the OS loads the size mask at launch.
type StaticPolicy struct {
	// PointIndex is the schedule index to run at.
	PointIndex int
	r          *ResizableCache
}

// Name implements Policy.
func (s *StaticPolicy) Name() string { return "static" }

// Bind applies the fixed configuration immediately (cycle 0).
func (s *StaticPolicy) Bind(r *ResizableCache) {
	s.r = r
	// An invalid index is a programming error surfaced by SetIndex; keep
	// the cache at full size in that case.
	_ = r.SetIndex(0, s.PointIndex)
}

// IntervalLength implements Policy; static resizing needs no monitoring.
func (s *StaticPolicy) IntervalLength() uint64 { return 0 }

// OnInterval implements Policy.
func (s *StaticPolicy) OnInterval(uint64, uint64) {}

// DynamicPolicy is the miss-ratio-based dynamic resizing framework of
// Yang et al. (HPCA-7), as evaluated by the paper: hardware counts misses
// over fixed-length intervals (measured in cache accesses); at each
// boundary the cache upsizes one step when interval misses exceed
// MissBound and downsizes one step when they fall below, never shrinking
// under SizeBoundBytes. Both parameters come from offline profiling.
type DynamicPolicy struct {
	// Interval is the monitoring window in cache accesses.
	Interval uint64
	// MissBound is the miss-count threshold per interval.
	MissBound uint64
	// SizeBoundBytes is the smallest capacity dynamic resizing may reach
	// (the thrash guard). Zero means the schedule minimum.
	SizeBoundBytes int
	// UpsizeHoldIntervals suppresses downsizing for this many intervals
	// after an upsize — the hysteresis that lets the controller "spend a
	// while at the larger size" when emulating a size between two
	// offered points (paper §4.2.1), instead of thrashing 50/50.
	UpsizeHoldIntervals int

	r    *ResizableCache
	hold int

	// Resizings counts applied size changes (for reporting).
	Resizings uint64
}

// Name implements Policy.
func (d *DynamicPolicy) Name() string { return "dynamic" }

// Bind implements Policy; dynamic resizing starts at full size.
func (d *DynamicPolicy) Bind(r *ResizableCache) { d.r = r }

// IntervalLength implements Policy.
func (d *DynamicPolicy) IntervalLength() uint64 { return d.Interval }

// OnInterval implements Policy.
func (d *DynamicPolicy) OnInterval(now uint64, misses uint64) {
	switch {
	case misses > d.MissBound:
		if d.r.Upsize(now) {
			d.Resizings++
			d.hold = d.UpsizeHoldIntervals
		}
	default:
		if d.hold > 0 {
			d.hold--
			return
		}
		next := d.r.Index() + 1
		if next >= len(d.r.Sched.Points) {
			return
		}
		if bound := d.SizeBoundBytes; bound > 0 && d.r.Sched.Points[next].Bytes < bound {
			return
		}
		if d.r.Downsize(now) {
			d.Resizings++
		}
	}
}
