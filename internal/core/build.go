package core

import (
	"resizecache/internal/cache"
	"resizecache/internal/geometry"
)

// L1Options configures construction of a resizable L1.
type L1Options struct {
	Name             string
	Geom             geometry.Geometry
	Org              Organization
	Policy           Policy
	HitLatency       uint64
	MSHREntries      int
	WritebackEntries int
	Energy           geometry.EnergyModel
	AddrBits         int

	// Ablation switches (see cache.Config).
	AblationFullPrecharge bool
	AblationFreeFlush     bool
}

// NewL1 builds a resizable L1 cache over next: it derives the
// organization's schedule, provisions the tag array when the schedule
// shrinks sets, allocates the array, and attaches the policy.
func NewL1(opt L1Options, next cache.Level) (*ResizableCache, error) {
	sched, err := BuildSchedule(opt.Geom, opt.Org)
	if err != nil {
		return nil, err
	}
	cfg := cache.Config{
		Name:                  opt.Name,
		Geom:                  opt.Geom,
		HitLatency:            opt.HitLatency,
		AddrBits:              opt.AddrBits,
		Energy:                opt.Energy,
		MSHREntries:           opt.MSHREntries,
		WritebackEntries:      opt.WritebackEntries,
		AblationFullPrecharge: opt.AblationFullPrecharge,
		AblationFreeFlush:     opt.AblationFreeFlush,
	}
	if sched.NeedsProvisionedTag() {
		cfg.ProvisionTagForMinSets = sched.MinSets()
	}
	c, err := cache.New(cfg, next)
	if err != nil {
		return nil, err
	}
	return NewResizable(c, sched, opt.Policy)
}
