package core

import (
	"resizecache/internal/cache"
	"resizecache/internal/geometry"
)

// Options configures construction of a resizable cache at any level of
// the hierarchy — the split L1s and the shared levels below them use the
// same machinery.
type Options struct {
	Name             string
	Geom             geometry.Geometry
	Org              Organization
	Policy           Policy
	HitLatency       uint64
	MSHREntries      int
	WritebackEntries int
	Energy           geometry.EnergyModel
	AddrBits         int

	// DelayedPrecharge selects the lower-level precharge organization
	// (precharge only the accessed subarrays; paper §3). The L1s use
	// all-subarray precharge and leave it false.
	DelayedPrecharge bool

	// Ablation switches (see cache.Config).
	AblationFullPrecharge bool
	AblationFreeFlush     bool
}

// NewResizable builds a resizable cache over next: it derives the
// organization's schedule, provisions the tag array when the schedule
// shrinks sets, allocates the array, and attaches the policy. It is
// level-agnostic — an L1 and a shared L2 differ only in their Options.
func NewResizable(opt Options, next cache.Level) (*ResizableCache, error) {
	sched, err := BuildSchedule(opt.Geom, opt.Org)
	if err != nil {
		return nil, err
	}
	cfg := cache.Config{
		Name:                  opt.Name,
		Geom:                  opt.Geom,
		HitLatency:            opt.HitLatency,
		AddrBits:              opt.AddrBits,
		Energy:                opt.Energy,
		MSHREntries:           opt.MSHREntries,
		WritebackEntries:      opt.WritebackEntries,
		DelayedPrecharge:      opt.DelayedPrecharge,
		AblationFullPrecharge: opt.AblationFullPrecharge,
		AblationFreeFlush:     opt.AblationFreeFlush,
	}
	if sched.NeedsProvisionedTag() {
		cfg.ProvisionTagForMinSets = sched.MinSets()
	}
	c, err := cache.New(cfg, next)
	if err != nil {
		return nil, err
	}
	return Wrap(c, sched, opt.Policy)
}
