package core

import (
	"testing"
	"testing/quick"

	"resizecache/internal/geometry"
)

func g32k(assoc int) geometry.Geometry {
	return geometry.Geometry{SizeBytes: 32 << 10, Assoc: assoc, BlockBytes: 32, SubarrayBytes: 1 << 10}
}

func TestTable1HybridScheduleExact(t *testing.T) {
	// Paper Table 1: 32K 4-way, 1K subarray hybrid offers exactly
	// 32K, 24K, 16K, 12K, 8K, 6K, 4K, 3K, 2K, 1K — with redundant sizes
	// resolved to the highest set-associativity.
	sched, err := BuildSchedule(g32k(4), Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kb   int
		ways int
	}{
		{32, 4}, {24, 3}, {16, 4}, {12, 3}, {8, 4}, {6, 3}, {4, 4}, {3, 3}, {2, 2}, {1, 1},
	}
	if len(sched.Points) != len(want) {
		t.Fatalf("got %d points %v, want %d", len(sched.Points), sched.Points, len(want))
	}
	for i, w := range want {
		p := sched.Points[i]
		if p.Bytes != w.kb<<10 || p.Ways != w.ways {
			t.Errorf("point %d = %v, want %dK/%d-way", i, p, w.kb, w.ways)
		}
	}
}

func TestSelectiveWaysSchedule(t *testing.T) {
	// Paper: a 32K 4-way selective-ways cache offers 32K, 24K, 16K, 8K.
	sched, err := BuildSchedule(g32k(4), SelectiveWays)
	if err != nil {
		t.Fatal(err)
	}
	wantKB := []int{32, 24, 16, 8}
	if len(sched.Points) != len(wantKB) {
		t.Fatalf("points = %v", sched.Points)
	}
	for i, kb := range wantKB {
		if sched.Points[i].Bytes != kb<<10 {
			t.Errorf("point %d = %v, want %dK", i, sched.Points[i], kb)
		}
		if sched.Points[i].Sets != sched.Geom.Sets() {
			t.Errorf("selective-ways must not change sets")
		}
	}
	if sched.NeedsProvisionedTag() {
		t.Error("selective-ways must not need a provisioned tag array")
	}
}

func TestSelectiveSetsSchedule(t *testing.T) {
	// Paper: a 32K 4-way selective-sets cache offers 32K, 16K, 8K, 4K
	// (minimum one 1K subarray per way => 32 sets => 4K total).
	sched, err := BuildSchedule(g32k(4), SelectiveSets)
	if err != nil {
		t.Fatal(err)
	}
	wantKB := []int{32, 16, 8, 4}
	if len(sched.Points) != len(wantKB) {
		t.Fatalf("points = %v", sched.Points)
	}
	for i, kb := range wantKB {
		p := sched.Points[i]
		if p.Bytes != kb<<10 {
			t.Errorf("point %d = %v, want %dK", i, p, kb)
		}
		if p.Ways != 4 {
			t.Errorf("selective-sets must maintain set-associativity, got %d ways", p.Ways)
		}
	}
	if !sched.NeedsProvisionedTag() {
		t.Error("selective-sets needs a provisioned tag array")
	}
	if sched.MinSets() != 32 {
		t.Errorf("MinSets = %d, want 32", sched.MinSets())
	}
}

func TestSelectiveSets2WayGranularityGap(t *testing.T) {
	// Paper §4.1: selective-sets on 2-way offers nothing between 32K and
	// 16K, whereas selective-ways on 16-way offers 2K granularity
	// throughout. Verify both schedule shapes.
	sets2, err := BuildSchedule(g32k(2), SelectiveSets)
	if err != nil {
		t.Fatal(err)
	}
	if sets2.Points[1].Bytes != 16<<10 {
		t.Fatalf("second point %v, want 16K", sets2.Points[1])
	}
	ways16, err := BuildSchedule(g32k(16), SelectiveWays)
	if err != nil {
		t.Fatal(err)
	}
	if len(ways16.Points) != 16 {
		t.Fatalf("16-way schedule has %d points", len(ways16.Points))
	}
	for i := 1; i < len(ways16.Points); i++ {
		if ways16.Points[i-1].Bytes-ways16.Points[i].Bytes != 2<<10 {
			t.Fatalf("16-way granularity not 2K at %d", i)
		}
	}
}

func TestNonResizableSchedule(t *testing.T) {
	sched, err := BuildSchedule(g32k(2), NonResizable)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Points) != 1 || sched.Points[0].Bytes != 32<<10 {
		t.Fatalf("points = %v", sched.Points)
	}
}

func TestBuildScheduleRejectsBadOrgAndGeometry(t *testing.T) {
	if _, err := BuildSchedule(g32k(2), Organization(99)); err == nil {
		t.Fatal("unknown organization accepted")
	}
	bad := g32k(2)
	bad.BlockBytes = 33
	if _, err := BuildSchedule(bad, SelectiveSets); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestIndexAtOrBelow(t *testing.T) {
	sched, _ := BuildSchedule(g32k(4), Hybrid)
	if i := sched.IndexAtOrBelow(13 << 10); sched.Points[i].Bytes != 12<<10 {
		t.Errorf("IndexAtOrBelow(13K) -> %v", sched.Points[i])
	}
	if i := sched.IndexAtOrBelow(32 << 10); i != 0 {
		t.Errorf("IndexAtOrBelow(32K) = %d", i)
	}
	if i := sched.IndexAtOrBelow(512); i != 0 {
		t.Errorf("IndexAtOrBelow(512) = %d, want 0 fallback", i)
	}
}

func TestOrganizationString(t *testing.T) {
	cases := map[Organization]string{
		NonResizable: "non-resizable", SelectiveWays: "selective-ways",
		SelectiveSets: "selective-sets", Hybrid: "hybrid", Organization(42): "Organization(42)",
	}
	for org, want := range cases {
		if org.String() != want {
			t.Errorf("%d.String() = %q", int(org), org.String())
		}
	}
}

// Property: for any valid geometry, the hybrid schedule is a superset of
// both selective-ways and selective-sets size spectra, strictly sorted
// descending, and every point's Bytes equals Sets*Ways*Block.
func TestHybridSupersetProperty(t *testing.T) {
	f := func(sizeExp, assocExp uint8) bool {
		se := 13 + int(sizeExp%4) // 8K..64K
		assoc := 1 << (assocExp % 5)
		g := geometry.Geometry{SizeBytes: 1 << se, Assoc: assoc, BlockBytes: 32, SubarrayBytes: 1 << 10}
		if g.Validate() != nil {
			return true
		}
		hy, err1 := BuildSchedule(g, Hybrid)
		sw, err2 := BuildSchedule(g, SelectiveWays)
		ss, err3 := BuildSchedule(g, SelectiveSets)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		sizes := map[int]bool{}
		for i, p := range hy.Points {
			if p.Bytes != p.Sets*p.Ways*g.BlockBytes {
				return false
			}
			if i > 0 && hy.Points[i-1].Bytes <= p.Bytes {
				return false
			}
			sizes[p.Bytes] = true
		}
		for _, p := range sw.Points {
			if !sizes[p.Bytes] {
				return false
			}
		}
		for _, p := range ss.Points {
			if !sizes[p.Bytes] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
