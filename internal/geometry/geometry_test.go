package geometry

import (
	"strings"
	"testing"
	"testing/quick"
)

func g32k2w() Geometry {
	return Geometry{SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, SubarrayBytes: 1 << 10}
}

func TestValidateAcceptsBaseConfigs(t *testing.T) {
	cases := []Geometry{
		g32k2w(),
		{SizeBytes: 32 << 10, Assoc: 4, BlockBytes: 32, SubarrayBytes: 1 << 10},
		{SizeBytes: 32 << 10, Assoc: 16, BlockBytes: 32, SubarrayBytes: 1 << 10},
		{SizeBytes: 512 << 10, Assoc: 4, BlockBytes: 64, SubarrayBytes: 4 << 10},
		// Hybrid configurations use 3-way: 24K 3-way with 8K ways.
		{SizeBytes: 24 << 10, Assoc: 3, BlockBytes: 32, SubarrayBytes: 1 << 10},
	}
	for _, g := range cases {
		if err := g.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", g, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		g    Geometry
		frag string
	}{
		{Geometry{SizeBytes: 0, Assoc: 1, BlockBytes: 32, SubarrayBytes: 1024}, "size"},
		{Geometry{SizeBytes: 32 << 10, Assoc: 0, BlockBytes: 32, SubarrayBytes: 1024}, "associativity"},
		{Geometry{SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 33, SubarrayBytes: 1024}, "block"},
		{Geometry{SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, SubarrayBytes: 1000}, "subarray"},
		{Geometry{SizeBytes: 32 << 10, Assoc: 7, BlockBytes: 32, SubarrayBytes: 1024}, "divisible"},
		{Geometry{SizeBytes: 24 << 10, Assoc: 2, BlockBytes: 32, SubarrayBytes: 1024}, "way size"},
		{Geometry{SizeBytes: 64, Assoc: 2, BlockBytes: 64, SubarrayBytes: 64}, "way size"},
		{Geometry{SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 32, SubarrayBytes: 32 << 10}, "way size"},
		{Geometry{SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 2048, SubarrayBytes: 1024}, "smaller than block"},
	}
	for _, c := range cases {
		err := c.g.Validate()
		if err == nil {
			t.Errorf("%+v: expected error containing %q, got nil", c.g, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%+v: error %q does not contain %q", c.g, err, c.frag)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	g := g32k2w()
	if got := g.WayBytes(); got != 16<<10 {
		t.Errorf("WayBytes = %d", got)
	}
	if got := g.Sets(); got != 512 {
		t.Errorf("Sets = %d", got)
	}
	if got := g.SubarraysPerWay(); got != 16 {
		t.Errorf("SubarraysPerWay = %d", got)
	}
	if got := g.TotalSubarrays(); got != 32 {
		t.Errorf("TotalSubarrays = %d", got)
	}
	if got := g.BlocksPerSubarray(); got != 32 {
		t.Errorf("BlocksPerSubarray = %d", got)
	}
	if got := g.IndexBits(); got != 9 {
		t.Errorf("IndexBits = %d", got)
	}
	if got := g.OffsetBits(); got != 5 {
		t.Errorf("OffsetBits = %d", got)
	}
	if got := g.TagBits(32); got != 32-9-5 {
		t.Errorf("TagBits = %d", got)
	}
}

func TestTagBitsGrowsWhenSetsShrink(t *testing.T) {
	// Selective-sets correctness hinges on this: halving the sets moves
	// one bit from index to tag.
	big := g32k2w()
	small := big
	small.SizeBytes /= 2 // 16K 2-way: 256 sets
	if small.Validate() != nil {
		t.Fatal("small geometry should validate")
	}
	if small.TagBits(40) != big.TagBits(40)+1 {
		t.Fatalf("tag bits: small=%d big=%d, want +1", small.TagBits(40), big.TagBits(40))
	}
}

func TestFormatSize(t *testing.T) {
	cases := map[int]string{
		32 << 10: "32K", 3 << 10: "3K", 1 << 20: "1M", 512: "512B", 1536: "1536B",
	}
	for in, want := range cases {
		if got := FormatSize(in); got != want {
			t.Errorf("FormatSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestStringIncludesShape(t *testing.T) {
	s := g32k2w().String()
	for _, frag := range []string{"32K", "2-way", "512 sets", "32 subarrays"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestAccessEnergyScalesWithEnabledSubarrays(t *testing.T) {
	m := Default18um()
	p := AccessProfile{
		EnabledDataSubarrays: 32, EnabledTagSubarrays: 2,
		AccessedWays: 2, TagBits: 18, BlockBits: 256, RowBits: 512,
	}
	full := m.AccessEnergyPJ(p)
	p.EnabledDataSubarrays = 16
	half := m.AccessEnergyPJ(p)
	if half >= full {
		t.Fatalf("disabling subarrays must reduce access energy: %v >= %v", half, full)
	}
}

func TestAccessEnergyExtraTagBitsCost(t *testing.T) {
	m := Default18um()
	p := AccessProfile{EnabledDataSubarrays: 32, EnabledTagSubarrays: 2,
		AccessedWays: 2, TagBits: 18, BlockBits: 256, RowBits: 512}
	base := m.AccessEnergyPJ(p)
	p.TagBits = 22 // selective-sets resizing tag bits
	withExtra := m.AccessEnergyPJ(p)
	if withExtra <= base {
		t.Fatal("extra tag bits must cost energy")
	}
	// But the cost must be small relative to the access (paper §3: the
	// resizing tag bits are insignificant next to 256 data bitlines).
	if (withExtra-base)/base > 0.05 {
		t.Fatalf("resizing tag bit overhead %.1f%% too large", 100*(withExtra-base)/base)
	}
}

func TestIdleCyclePJ(t *testing.T) {
	m := Default18um()
	full := m.IdleCyclePJ(32, 32<<10)
	half := m.IdleCyclePJ(16, 16<<10)
	if half >= full {
		t.Fatal("idle energy must shrink with disabled subarrays")
	}
	if m.IdleCyclePJ(0, 0) != 0 {
		t.Fatal("fully disabled cache should idle at zero")
	}
}

func TestAccessLatencyCycles(t *testing.T) {
	if got := AccessLatencyCycles(g32k2w()); got != 1 {
		t.Fatalf("L1 latency = %d, want 1", got)
	}
	l2 := Geometry{SizeBytes: 512 << 10, Assoc: 4, BlockBytes: 64, SubarrayBytes: 4 << 10}
	if got := AccessLatencyCycles(l2); got != 12 {
		t.Fatalf("L2 latency = %d, want 12", got)
	}
	big := Geometry{SizeBytes: 4 << 20, Assoc: 8, BlockBytes: 64, SubarrayBytes: 4 << 10}
	if got := AccessLatencyCycles(big); got != 20 {
		t.Fatalf("4M latency = %d, want 20", got)
	}
}

// Property: for any valid power-of-two geometry, index+offset+tag bits
// reconstruct the address width, and subarray bookkeeping is consistent.
func TestGeometryBitAccountingProperty(t *testing.T) {
	f := func(sizeExp, assocExp, blockExp uint8) bool {
		se := 10 + int(sizeExp%8) // 1K..128K
		ae := int(assocExp % 4)   // 1..8 ways
		be := 4 + int(blockExp%3) // 16..64B blocks
		g := Geometry{SizeBytes: 1 << se, Assoc: 1 << ae, BlockBytes: 1 << be, SubarrayBytes: 1 << 10}
		if g.Validate() != nil {
			return true // skip invalid combos
		}
		const addr = 40
		if g.IndexBits()+g.OffsetBits()+g.TagBits(addr) != addr {
			return false
		}
		if g.Sets()*g.Assoc*g.BlockBytes != g.SizeBytes {
			return false
		}
		return g.TotalSubarrays()*g.SubarrayBytes == g.SizeBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
