package geometry

// CACTI-lite switching-energy model for a 0.18µ process at Vdd = 1.8 V.
//
// The model charges each access for:
//
//   - precharging the bitlines of every *enabled* data and tag subarray
//     (all enabled subarrays precharge before decode completes, per the
//     all-precharge organization in Wilson & Jouppi and Wattch);
//   - asserting one wordline and discharging one row of bitlines in each
//     *accessed* subarray (the set-associative lookup reads as many data
//     subarrays as the enabled associativity);
//   - sense amplifiers on accessed columns;
//   - the row decoders of enabled subarrays;
//   - tag comparators, one per enabled way;
//   - output drivers for the selected block.
//
// Absolute values are per-bitline-pair charge constants in picojoules
// chosen to land the base configuration of the paper (Table 2: 32K 2-way
// L1s, 512K 4-way L2 at 0.18µ) at the paper's reported energy shares:
// L1 d-cache ≈ 18.5 % and i-cache ≈ 17.5 % of processor energy. Only
// *relative* energies matter for the paper's conclusions; the calibration
// is documented in EXPERIMENTS.md.
type EnergyModel struct {
	// PrechargePJPerBit is the energy to precharge one bitline pair of
	// one SRAM row-width column (per bit of subarray row width).
	PrechargePJPerBit float64
	// BitlinePJPerBit is the read/write discharge energy per accessed bit.
	BitlinePJPerBit float64
	// WordlinePJPerBit is wordline drive energy per cell on the row.
	WordlinePJPerBit float64
	// SensePJPerBit is sense-amplifier energy per sensed bit.
	SensePJPerBit float64
	// DecodePJPerSubarray is row-decoder energy per enabled subarray.
	DecodePJPerSubarray float64
	// ComparePJPerBit is tag comparator energy per tag bit per way.
	ComparePJPerBit float64
	// OutputPJPerBit is output-driver energy per bit of the selected word.
	OutputPJPerBit float64
	// ClockPJPerSubarray is per-cycle clock distribution energy charged
	// to each enabled subarray (eliminated for disabled subarrays).
	ClockPJPerSubarray float64
	// LeakagePJPerBytePerCycle models subthreshold leakage, proportional
	// to the *enabled* cache capacity (gated-Vdd removes leakage of
	// disabled subarrays).
	LeakagePJPerBytePerCycle float64
}

// Default18um returns the calibrated 0.18µ model used by every
// experiment in this repository.
func Default18um() EnergyModel {
	// Precharge dominates by design: in the paper's deep-submicron model
	// (§3) the precharged bitlines of *all* enabled subarrays discharge
	// through the pass transistors on every access, so per-access energy
	// scales with enabled capacity — that is the saving resizing taps.
	// The per-accessed-way read terms (bitline swing, sense) are an order
	// of magnitude below the precharge term: they only break ties between
	// organizations at equal enabled size (e.g. the paper's observation
	// that applu's i-cache dissipates less under selective-ways because a
	// lower-associativity access reads fewer subarrays).
	return EnergyModel{
		PrechargePJPerBit:        0.10,
		BitlinePJPerBit:          0.02,
		WordlinePJPerBit:         0.009,
		SensePJPerBit:            0.01,
		DecodePJPerSubarray:      1.9,
		ComparePJPerBit:          0.15,
		OutputPJPerBit:           0.22,
		ClockPJPerSubarray:       0.9,
		LeakagePJPerBytePerCycle: 0.0009,
	}
}

// AccessProfile describes one cache access for energy attribution.
type AccessProfile struct {
	// EnabledDataSubarrays / EnabledTagSubarrays are the counts of
	// powered (precharged, clocked) subarrays at access time.
	EnabledDataSubarrays int
	EnabledTagSubarrays  int
	// AccessedWays is how many ways are actually read (enabled
	// associativity for a lookup; 1 for a fill or writeback).
	AccessedWays int
	// TagBits is the tag width compared per way, including any extra
	// resizing tag bits provisioned by selective-sets.
	TagBits int
	// BlockBits is the data row width read per accessed way.
	BlockBits int
	// RowBits is the physical data-subarray row width in bits (precharge
	// granularity).
	RowBits int
	// TagRowBits is the tag-subarray row width (tag + status bits); tag
	// subarrays are far narrower than data subarrays and precharge
	// proportionally less. Zero defaults to RowBits for callers that do
	// not distinguish (conservative).
	TagRowBits int
	// WriteThroughBits, if nonzero, is the number of bits driven on a
	// write (stores drive rather than sense).
	WriteThroughBits int
}

// AccessEnergyPJ returns the switching energy of one access in picojoules.
func (m EnergyModel) AccessEnergyPJ(p AccessProfile) float64 {
	if p.AccessedWays < 0 {
		p.AccessedWays = 0
	}
	tagRow := p.TagRowBits
	if tagRow == 0 {
		tagRow = p.RowBits
	}
	pre := m.PrechargePJPerBit * (float64(p.RowBits)*float64(p.EnabledDataSubarrays) +
		float64(tagRow)*float64(p.EnabledTagSubarrays))
	bl := m.BitlinePJPerBit * float64(p.BlockBits) * float64(p.AccessedWays)
	wl := m.WordlinePJPerBit * float64(p.RowBits) * float64(p.AccessedWays)
	sense := m.SensePJPerBit * float64(p.BlockBits) * float64(p.AccessedWays)
	dec := m.DecodePJPerSubarray * float64(p.EnabledDataSubarrays+p.EnabledTagSubarrays)
	cmp := m.ComparePJPerBit * float64(p.TagBits) * float64(p.AccessedWays)
	out := m.OutputPJPerBit * float64(p.BlockBits)
	wr := m.BitlinePJPerBit * float64(p.WriteThroughBits)
	return pre + bl + wl + sense + dec + cmp + out + wr
}

// AccessEnergies precomputes AccessEnergyPJ for a fixed set of profiles.
// A cache's per-access profiles are pure functions of its effective
// configuration, which changes only at (rare) resize events — hot paths
// should build their profile set once per configuration, precompute this
// table, and charge accesses by indexing it. Each entry is the exact
// float64 AccessEnergyPJ would return for the same profile, so switching
// a caller from per-access evaluation to table lookup is bit-identical.
func (m EnergyModel) AccessEnergies(profiles []AccessProfile) []float64 {
	table := make([]float64, len(profiles))
	for i, p := range profiles {
		table[i] = m.AccessEnergyPJ(p)
	}
	return table
}

// IdleCyclePJ returns per-cycle background energy (clock + leakage) for a
// cache with the given enabled subarray count and enabled capacity.
func (m EnergyModel) IdleCyclePJ(enabledSubarrays int, enabledBytes int) float64 {
	return m.ClockPJPerSubarray*float64(enabledSubarrays) +
		m.LeakagePJPerBytePerCycle*float64(enabledBytes)
}

// AccessLatencyCycles estimates access latency for a geometry at the
// simulated clock. L1-class caches (<= 64K) hit in 1 cycle in the paper's
// configuration; larger arrays are dominated by wire delay. This mirrors
// the paper's fixed Table 2 latencies; it exists so the hierarchy stays
// self-consistent if users instantiate nonstandard geometries.
func AccessLatencyCycles(g Geometry) int {
	switch {
	case g.SizeBytes <= 64<<10:
		return 1
	case g.SizeBytes <= 256<<10:
		return 6
	case g.SizeBytes <= 1<<20:
		return 12
	default:
		return 20
	}
}
