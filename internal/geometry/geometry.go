// Package geometry models the physical organization of RAM-tag caches:
// the division of tag and data arrays into SRAM subarrays, index/tag bit
// widths, and a CACTI-lite energy model that attributes per-access
// switching energy to precharge, bitline, wordline, sense-amplifier,
// decoder, and output-driver activity.
//
// Modern high-performance caches precharge all subarrays before every
// access to overlap precharge with address decode (Wilson & Jouppi,
// WRL TR 93/5), so per-access energy is dominated by the number of
// *enabled* subarrays rather than by how many are actually read. This is
// exactly the structural property resizable caches exploit: disabling a
// subarray removes its precharge and clock energy entirely.
package geometry

import (
	"fmt"
	"math/bits"
)

// Geometry describes one cache's logical and physical organization.
// All sizes are in bytes. Sizes, block size, and subarray size must be
// powers of two; associativity may be any positive integer (the hybrid
// organization uses non-power-of-two way counts such as 3).
type Geometry struct {
	SizeBytes     int // total data capacity
	Assoc         int // number of ways
	BlockBytes    int // cache block (line) size
	SubarrayBytes int // SRAM subarray granularity for enable/disable
}

// Validate checks structural invariants and returns a descriptive error
// for the first violation found.
func (g Geometry) Validate() error {
	switch {
	case g.SizeBytes <= 0:
		return fmt.Errorf("geometry: size %d must be positive", g.SizeBytes)
	case g.Assoc <= 0:
		return fmt.Errorf("geometry: associativity %d must be positive", g.Assoc)
	case g.BlockBytes <= 0 || !isPow2(g.BlockBytes):
		return fmt.Errorf("geometry: block size %d must be a positive power of two", g.BlockBytes)
	case g.SubarrayBytes <= 0 || !isPow2(g.SubarrayBytes):
		return fmt.Errorf("geometry: subarray size %d must be a positive power of two", g.SubarrayBytes)
	case g.SizeBytes%g.Assoc != 0:
		return fmt.Errorf("geometry: size %d not divisible by associativity %d", g.SizeBytes, g.Assoc)
	}
	way := g.SizeBytes / g.Assoc
	switch {
	case !isPow2(way):
		return fmt.Errorf("geometry: way size %d must be a power of two", way)
	case way < g.BlockBytes:
		return fmt.Errorf("geometry: way size %d smaller than block size %d", way, g.BlockBytes)
	case way < g.SubarrayBytes:
		return fmt.Errorf("geometry: way size %d smaller than subarray size %d", way, g.SubarrayBytes)
	case g.SubarrayBytes < g.BlockBytes:
		return fmt.Errorf("geometry: subarray size %d smaller than block size %d", g.SubarrayBytes, g.BlockBytes)
	}
	return nil
}

// WayBytes returns the capacity of a single way.
func (g Geometry) WayBytes() int { return g.SizeBytes / g.Assoc }

// Sets returns the number of cache sets.
func (g Geometry) Sets() int { return g.WayBytes() / g.BlockBytes }

// SubarraysPerWay returns how many subarrays make up one way.
func (g Geometry) SubarraysPerWay() int { return g.WayBytes() / g.SubarrayBytes }

// TotalSubarrays returns the number of data subarrays in the cache.
func (g Geometry) TotalSubarrays() int { return g.SubarraysPerWay() * g.Assoc }

// BlocksPerSubarray returns the number of cache blocks per subarray.
func (g Geometry) BlocksPerSubarray() int { return g.SubarrayBytes / g.BlockBytes }

// IndexBits returns the number of address bits used to select a set.
func (g Geometry) IndexBits() int { return log2(g.Sets()) }

// OffsetBits returns the number of block-offset address bits.
func (g Geometry) OffsetBits() int { return log2(g.BlockBytes) }

// TagBits returns the tag width for a given physical address width.
func (g Geometry) TagBits(addrBits int) int {
	t := addrBits - g.IndexBits() - g.OffsetBits()
	if t < 0 {
		return 0
	}
	return t
}

func (g Geometry) String() string {
	return fmt.Sprintf("%s %d-way %dB-block (%d sets, %d subarrays)",
		FormatSize(g.SizeBytes), g.Assoc, g.BlockBytes, g.Sets(), g.TotalSubarrays())
}

// FormatSize renders a byte count in the paper's "32K"-style notation.
func FormatSize(b int) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dK", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func isPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

// log2 returns floor(log2(x)) for positive x; 0 for x <= 1.
func log2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x)) - 1
}
