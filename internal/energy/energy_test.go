package energy

import (
	"math"
	"strings"
	"testing"

	"resizecache/internal/cpu"
)

func sampleActivity() cpu.Activity {
	return cpu.Activity{
		IntOps: 500, FloatOps: 100, Loads: 250, Stores: 120, Branches: 150,
		Mispredicts: 15, FetchGroups: 300, ROBInserts: 1000, LSQInserts: 370,
		RegReads: 800, RegWrites: 700, BpredLookups: 150,
	}
}

func TestCorePJPositiveAndLinear(t *testing.T) {
	e := DefaultCore()
	one := e.CorePJ(sampleActivity(), 1000, 400)
	if one <= 0 {
		t.Fatal("zero core energy")
	}
	// Doubling activity and cycles doubles energy.
	act := sampleActivity()
	act.IntOps *= 2
	act.FloatOps *= 2
	act.Loads *= 2
	act.Stores *= 2
	act.Branches *= 2
	act.ROBInserts *= 2
	act.LSQInserts *= 2
	act.RegReads *= 2
	act.RegWrites *= 2
	act.BpredLookups *= 2
	two := e.CorePJ(act, 2000, 800)
	if math.Abs(two-2*one) > 1e-6 {
		t.Fatalf("core energy not linear: %v vs 2×%v", two, one)
	}
}

func TestClockScalesWithCycles(t *testing.T) {
	e := DefaultCore()
	a := e.CorePJ(cpu.Activity{}, 0, 100)
	b := e.CorePJ(cpu.Activity{}, 0, 200)
	if math.Abs(b-2*a) > 1e-9 {
		t.Fatalf("clock energy not per-cycle: %v vs %v", a, b)
	}
}

func TestBreakdownTotalsAndShares(t *testing.T) {
	b := Breakdown{CorePJ: 50, L1IPJ: 20, L1DPJ: 20, L2PJ: 5, MemPJ: 5}
	if b.TotalPJ() != 100 {
		t.Fatalf("total = %v", b.TotalPJ())
	}
	if b.TotalJ() != 100e-12 {
		t.Fatalf("joules = %v", b.TotalJ())
	}
	for comp, want := range map[string]float64{
		"core": 0.5, "l1i": 0.2, "l1d": 0.2, "l2": 0.05, "mem": 0.05,
	} {
		got, err := b.Share(comp)
		if err != nil || math.Abs(got-want) > 1e-12 {
			t.Errorf("Share(%s) = %v, %v", comp, got, err)
		}
	}
	if _, err := b.Share("gpu"); err == nil {
		t.Fatal("unknown component accepted")
	}
	if _, err := (Breakdown{}).Share("core"); err == nil {
		t.Fatal("zero total accepted")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{CorePJ: 60, L1IPJ: 20, L1DPJ: 20}
	s := b.String()
	for _, frag := range []string{"core 60.0%", "l1i 20.0%", "l1d 20.0%"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	if (Breakdown{}).String() == "" {
		t.Error("empty breakdown should still render")
	}
}

func TestWattsAt(t *testing.T) {
	b := Breakdown{CorePJ: 1e12} // 1 J
	// 1 J over 1e9 cycles at 1 GHz = 1 second -> 1 W.
	if w := b.WattsAt(1_000_000_000, 1e9); math.Abs(w-1) > 1e-9 {
		t.Fatalf("watts = %v", w)
	}
	if (Breakdown{}).WattsAt(0, 1e9) != 0 {
		t.Fatal("zero cycles should yield zero watts")
	}
}
