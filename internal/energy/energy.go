// Package energy assembles processor-wide energy from per-structure
// activity counts (Wattch-style architecture-level accounting): each
// pipeline structure has a per-event switching energy, the clock tree
// dissipates per cycle, and the cache hierarchy's energy is integrated by
// the cache models themselves (geometry.EnergyModel).
//
// Absolute per-event constants are calibrated at 0.18µ so that the
// paper's base configuration (Table 2, out-of-order engine) reproduces
// the paper's reported energy shares: L1 d-cache ≈ 18.5 % and L1 i-cache
// ≈ 17.5 % of processor energy averaged over the benchmark suite. Only
// relative magnitudes influence any of the paper's conclusions.
package energy

import (
	"fmt"

	"resizecache/internal/cpu"
)

// CoreEnergies holds per-event energies (pJ) for non-cache structures.
type CoreEnergies struct {
	DecodePJ    float64 // per instruction decoded/renamed
	ROBWritePJ  float64 // per ROB insertion (OoO only; 0 events in-order)
	LSQWritePJ  float64 // per LSQ insertion
	RegReadPJ   float64 // per register-file read port use
	RegWritePJ  float64 // per register-file write
	IntALUPJ    float64 // per integer ALU op
	FPALUPJ     float64 // per floating-point op
	BpredPJ     float64 // per branch-predictor lookup+update
	BTBPJ       float64 // per branch-target-buffer probe
	RASPJ       float64 // per return-address-stack push/pop
	ResultBusPJ float64 // per completing instruction
	ClockPJ     float64 // per cycle, core clock tree (cache clocks are
	// accounted inside the cache models, so disabling subarrays removes
	// their clock load there)
}

// DefaultCore returns the calibrated 0.18µ core model.
func DefaultCore() CoreEnergies {
	return CoreEnergies{
		DecodePJ:    55,
		ROBWritePJ:  46,
		LSQWritePJ:  44,
		RegReadPJ:   20,
		RegWritePJ:  29,
		IntALUPJ:    107,
		FPALUPJ:     435,
		BpredPJ:     64,
		ResultBusPJ: 64,
		ClockPJ:     476,
	}
}

// CorePJ returns total non-cache energy for a run.
func (e CoreEnergies) CorePJ(act cpu.Activity, instructions, cycles uint64) float64 {
	evPJ := e.DecodePJ*float64(instructions) +
		e.ROBWritePJ*float64(act.ROBInserts) +
		e.LSQWritePJ*float64(act.LSQInserts) +
		e.RegReadPJ*float64(act.RegReads) +
		e.RegWritePJ*float64(act.RegWrites) +
		e.IntALUPJ*float64(act.IntOps+act.Loads+act.Stores+act.Branches) +
		e.FPALUPJ*float64(act.FloatOps) +
		e.BpredPJ*float64(act.BpredLookups) +
		e.BTBPJ*float64(act.BTBLookups) +
		e.RASPJ*float64(act.RASOps) +
		e.ResultBusPJ*float64(instructions)
	return evPJ + e.ClockPJ*float64(cycles)
}

// Breakdown is the per-component energy of one simulation, in picojoules.
type Breakdown struct {
	CorePJ float64
	L1IPJ  float64
	L1DPJ  float64
	L2PJ   float64
	MemPJ  float64
}

// TotalPJ sums all components.
func (b Breakdown) TotalPJ() float64 {
	return b.CorePJ + b.L1IPJ + b.L1DPJ + b.L2PJ + b.MemPJ
}

// TotalJ converts to joules.
func (b Breakdown) TotalJ() float64 { return b.TotalPJ() * 1e-12 }

// Share returns a component's fraction of the total; component is one of
// "core", "l1i", "l1d", "l2", "mem".
func (b Breakdown) Share(component string) (float64, error) {
	t := b.TotalPJ()
	if t == 0 {
		return 0, fmt.Errorf("energy: zero total")
	}
	switch component {
	case "core":
		return b.CorePJ / t, nil
	case "l1i":
		return b.L1IPJ / t, nil
	case "l1d":
		return b.L1DPJ / t, nil
	case "l2":
		return b.L2PJ / t, nil
	case "mem":
		return b.MemPJ / t, nil
	default:
		return 0, fmt.Errorf("energy: unknown component %q", component)
	}
}

func (b Breakdown) String() string {
	t := b.TotalPJ()
	if t == 0 {
		return "energy: empty breakdown"
	}
	return fmt.Sprintf("total %.3g J (core %.1f%%, l1i %.1f%%, l1d %.1f%%, l2 %.1f%%, mem %.1f%%)",
		b.TotalJ(), 100*b.CorePJ/t, 100*b.L1IPJ/t, 100*b.L1DPJ/t, 100*b.L2PJ/t, 100*b.MemPJ/t)
}

// WattsAt returns average power at a clock frequency in Hz.
func (b Breakdown) WattsAt(cycles uint64, hz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / hz
	return b.TotalJ() / seconds
}
