package figures

import (
	"fmt"
	"strings"

	"resizecache"
)

// Render formats Figure 4 as a text table.
func (f Fig4Result) Render() string {
	return renderOrgGrid("Figure 4: resizable cache organizations and energy-delay reductions",
		[]resizecache.Organization{resizecache.SelectiveWays, resizecache.SelectiveSets},
		[]int{2, 4, 8, 16}, f.DCache, f.ICache)
}

// RenderFigure6 formats Figure 6 (same grid shape as Figure 4 plus
// hybrid).
func RenderFigure6(f Fig4Result) string {
	return renderOrgGrid("Figure 6: effectiveness of hybrid organizations",
		[]resizecache.Organization{resizecache.Hybrid, resizecache.SelectiveWays, resizecache.SelectiveSets},
		[]int{2, 4, 8, 16}, f.DCache, f.ICache)
}

func renderOrgGrid(title string, orgs []resizecache.Organization, assocs []int, d, i []Fig4Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, side := range []struct {
		name  string
		cells []Fig4Cell
	}{{"(a) D-Cache", d}, {"(b) I-Cache", i}} {
		fmt.Fprintf(&b, "\n%s  — reduction (%%) in processor energy-delay\n", side.name)
		fmt.Fprintf(&b, "  %-16s", "")
		for _, a := range assocs {
			fmt.Fprintf(&b, "%8s", fmt.Sprintf("%d-way", a))
		}
		b.WriteString("\n")
		for _, org := range orgs {
			fmt.Fprintf(&b, "  %-16s", org)
			for _, a := range assocs {
				val := 0.0
				for _, c := range side.cells {
					if c.Org == org && c.Assoc == a {
						val = c.EDPReductionPct
					}
				}
				fmt.Fprintf(&b, "%8.1f", val)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Render formats Figure 5.
func (f Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (%s): selective-ways vs selective-sets, 32K 4-way, static\n\n", f.Side)
	fmt.Fprintf(&b, "  %-10s %22s   %22s   %-18s %-18s\n", "",
		"size reduction (%)", "EDP reduction (%)", "ways chose", "sets chose")
	fmt.Fprintf(&b, "  %-10s %10s %10s   %10s %10s\n", "app", "ways", "sets", "ways", "sets")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-10s %10.1f %10.1f   %10.1f %10.1f   %-18s %-18s\n",
			r.App, r.WaysSizeRedPct, r.SetsSizeRedPct, r.WaysEDPRedPct, r.SetsEDPRedPct,
			r.WaysChosen, r.SetsChosen)
	}
	sw, ss, ew, es := f.Averages()
	fmt.Fprintf(&b, "  %-10s %10.1f %10.1f   %10.1f %10.1f\n", "AVG.", sw, ss, ew, es)
	return b.String()
}

// Render formats one strategy panel of Figure 7 or 8.
func (f Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s resizing, %v engine: static vs dynamic (32K 2-way selective-sets)\n\n",
		f.Side, f.Engine)
	fmt.Fprintf(&b, "  %-10s %22s   %22s\n", "",
		"size reduction (%)", "EDP reduction (%)")
	fmt.Fprintf(&b, "  %-10s %10s %10s   %10s %10s   %s\n", "app",
		"static", "dynamic", "static", "dynamic", "chosen")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-10s %10.1f %10.1f   %10.1f %10.1f   %s | %s\n",
			r.App, r.StaticSizeRedPct, r.DynamicSizeRedPct,
			r.StaticEDPRedPct, r.DynamicEDPRedPct, r.StaticChosen, r.DynamicChosen)
	}
	ss, ds, se, de := f.Averages()
	fmt.Fprintf(&b, "  %-10s %10.1f %10.1f   %10.1f %10.1f\n", "AVG.", ss, ds, se, de)
	return b.String()
}

// Render formats the L2-resizing sensitivity figure.
func (f FigL2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "L2 resizing (%v): suite-mean outcome per L2 organization (512K 4-way L2, OoO)\n\n", f.Strategy)
	fmt.Fprintf(&b, "  %-16s %8s %9s %9s   %s\n", "L2 organization",
		"EDP (%)", "size (%)", "slow (%)", "energy shares (core/l1i/l1d/l2/mem, %)")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-16s %8.1f %9.1f %9.1f   %.1f / %.1f / %.1f / %.1f / %.1f\n",
			r.Org, r.EDPReductionPct, r.L2SizeRedPct, r.SlowdownPct,
			r.Energy.CorePct, r.Energy.L1IPct, r.Energy.L1DPct, r.Energy.L2Pct, r.Energy.MemPct)
	}
	return b.String()
}

// Render formats Figure 9.
func (f Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: decoupled resizings on d-cache and i-cache (static selective-sets, 32K 2-way, OoO)\n\n")
	fmt.Fprintf(&b, "  %-10s %28s   %28s\n", "",
		"size reduction (%, of d+i)", "EDP reduction (%)")
	fmt.Fprintf(&b, "  %-10s %8s %8s %8s   %8s %8s %8s %8s\n", "app",
		"d", "i", "both", "d", "i", "both", "d+i sum")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-10s %8.1f %8.1f %8.1f   %8.1f %8.1f %8.1f %8.1f\n",
			r.App, r.DAloneSizeRedPct, r.IAloneSizeRedPct, r.BothSizeRedPct,
			r.DAloneEDPRedPct, r.IAloneEDPRedPct, r.BothEDPRedPct,
			r.DAloneEDPRedPct+r.IAloneEDPRedPct)
	}
	dsz, isz, bsz, de, ie, be := f.Averages()
	fmt.Fprintf(&b, "  %-10s %8.1f %8.1f %8.1f   %8.1f %8.1f %8.1f %8.1f\n",
		"AVG.", dsz, isz, bsz, de, ie, be, de+ie)
	return b.String()
}
