package figures

import (
	"fmt"
	"strings"

	"resizecache/internal/core"
	"resizecache/internal/geometry"
	"resizecache/internal/sim"
)

// The tables are static renderings of the design space and base system —
// no simulation, so they bypass the plan machinery.

// Table1 renders the hybrid size/associativity matrix of the paper's
// Table 1 together with the derived resizing schedule.
func Table1() (string, error) {
	g := geometry.Geometry{SizeBytes: 32 << 10, Assoc: 4, BlockBytes: 32, SubarrayBytes: 1 << 10}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: hybrid resizing granularity, %v\n\n", g)
	fmt.Fprintf(&b, "%-12s", "way size")
	for w := g.Assoc; w >= 1; w-- {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("%d-way", w))
	}
	b.WriteString("\n")
	for ws := g.WayBytes(); ws >= g.SubarrayBytes; ws >>= 1 {
		fmt.Fprintf(&b, "%-12s", geometry.FormatSize(ws))
		for w := g.Assoc; w >= 1; w-- {
			fmt.Fprintf(&b, "%8s", geometry.FormatSize(ws*w))
		}
		b.WriteString("\n")
	}
	sched, err := core.BuildSchedule(g, core.Hybrid)
	if err != nil {
		return "", err
	}
	b.WriteString("\nschedule (redundant sizes -> highest associativity):\n  ")
	for i, p := range sched.Points {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(p.String())
	}
	b.WriteString("\n")
	return b.String(), nil
}

// Table2 renders the base system configuration.
func Table2() string {
	cfg := sim.Default("gcc")
	var b strings.Builder
	b.WriteString("Table 2: base system configuration\n\n")
	rows := [][2]string{
		{"Issue/decode width", fmt.Sprintf("%d instrs per cycle", cfg.CPU.Width)},
		{"ROB / LSQ", fmt.Sprintf("%d entries / %d entries", cfg.CPU.ROBEntries, cfg.CPU.LSQEntries)},
		{"Branch predictor", "combination (gshare + bimodal)"},
		{"writeback buffer / mshr", fmt.Sprintf("%d entries / %d entries", cfg.WritebackEntries, cfg.MSHREntries)},
		{"Base L1 i-cache", fmt.Sprintf("%v; 1 cycle", cfg.ICache.Geom)},
		{"Base L1 d-cache", fmt.Sprintf("%v; 1 cycle", cfg.DCache.Geom)},
		{"L2 unified cache", fmt.Sprintf("%v; %d cycles", cfg.Hierarchy()[0].Geom,
			geometry.AccessLatencyCycles(cfg.Hierarchy()[0].Geom))},
		{"Memory access latency", "(80 + 5 per 8 bytes) cycles"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %s\n", r[0], r[1])
	}
	return b.String()
}
