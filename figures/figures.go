// Package figures regenerates the paper's tables and figures on top of
// the public resizecache API. Every figure declares its design-space
// grid as a resizecache.Grid, expands it to a Plan, and executes it
// through Session.Run — one batched pass over the whole grid, with
// every cold profiling sweep enqueued on the shared pool up front —
// then aggregates the streamed outcomes into the figure's rows. Warm
// grids (a session that already rendered an overlapping figure, or one
// backed by a persistent store) resolve without submitting a single
// simulation.
package figures

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"resizecache"
)

// Options control figure scale; the zero value regenerates at the
// paper's full fidelity.
type Options struct {
	// Instructions per simulation (0 = the facade default, 1.5M).
	Instructions uint64
	// Apps restricts the benchmark list (nil = all twelve).
	Apps []string
	// Sampling, when enabled, runs every figure simulation interval
	// sampled (resizecache.SamplingSpec): grids regenerate several times
	// faster and the aggregated EDP reductions become estimates with
	// error bars. Sampled and detailed figure aggregates cache under
	// distinct artifact fingerprints. The zero value keeps full detail.
	Sampling resizecache.SamplingSpec
	// Progress, if non-nil, is invoked after each completed scenario of
	// a figure's plan with completed-of-total counts.
	Progress func(completed, total int)
}

func (o Options) apps() []string {
	if len(o.Apps) > 0 {
		return o.Apps
	}
	return resizecache.Benchmarks()
}

// cell indexes one outcome of a figure's plan by its scenario axes.
type cell struct {
	app     string
	org     resizecache.Organization
	strat   resizecache.Strategy
	assoc   int
	sides   resizecache.Sides
	inOrder bool
	hier    resizecache.Hierarchy
	l2org   resizecache.Organization
	l2strat resizecache.Strategy
	l2assoc int
}

func cellOf(sc resizecache.Scenario) cell {
	return cell{app: sc.Benchmark, org: sc.Organization, strat: sc.Strategy,
		assoc: sc.Assoc, sides: sc.Sides, inOrder: sc.InOrder,
		hier: sc.Hierarchy, l2org: sc.L2.Organization, l2strat: sc.L2.Strategy,
		l2assoc: sc.L2.Assoc}
}

// collect runs a plan through the session and indexes the outcomes by
// their axes. The first per-scenario error (in plan order) aborts the
// figure.
func collect(ctx context.Context, s resizecache.Executor, plan resizecache.Plan, o Options) (map[cell]resizecache.Outcome, error) {
	var opts []resizecache.RunOption
	if o.Progress != nil {
		opts = append(opts, resizecache.OnResult(func(_ resizecache.Result, done, total int) {
			o.Progress(done, total)
		}))
	}
	results, err := resizecache.Collect(s.Run(ctx, plan, opts...))
	if err != nil {
		return nil, err
	}
	outs := make(map[cell]resizecache.Outcome, len(results))
	for _, r := range results {
		outs[cellOf(r.Scenario)] = r.Outcome
	}
	return outs, nil
}

// figureVersion tags the aggregated row-set schemas and the aggregation
// logic of every driver in this package. Bump it whenever a result
// struct or an aggregation changes: cached figure-level artifacts from
// older code then miss (and recompute) instead of decoding wrongly.
const figureVersion = 1

// cachedFigure resolves a whole figure — its aggregated, renderable
// result — through the session's plan-level artifact cache: the figure
// aggregate is a pure function of the outcomes of its plan, so it
// memoizes one tier above the per-sweep artifacts. A fully warm figure
// (same session, or a persistent store) returns without probing a
// single per-cell sweep; a cold one expands and runs the plan once and
// caches the aggregate. A cached payload that no longer decodes (e.g. a
// store written by a foreign build) falls back to the direct run and
// repairs the cache.
func cachedFigure[T any](ctx context.Context, s resizecache.Executor, domain string, g resizecache.Grid, o Options, aggregate func(map[cell]resizecache.Outcome) (T, error)) (T, error) {
	var zero T
	plan, err := g.Expand()
	if err != nil {
		return zero, err
	}
	compute := func(ctx context.Context) ([]byte, error) {
		outs, err := collect(ctx, s, plan, o)
		if err != nil {
			return nil, err
		}
		agg, err := aggregate(outs)
		if err != nil {
			return nil, err
		}
		return json.Marshal(agg)
	}
	data, err := s.Artifact(ctx, domain, figureVersion, plan, compute)
	if err != nil {
		return zero, err
	}
	var out T
	if err := json.Unmarshal(data, &out); err == nil {
		return out, nil
	}
	data, err = compute(ctx)
	if err != nil {
		return zero, err
	}
	s.PutArtifact(domain, figureVersion, plan, data)
	var fresh T
	if err := json.Unmarshal(data, &fresh); err != nil {
		return zero, err
	}
	return fresh, nil
}

// ---------------------------------------------------------------------
// Figures 4 & 6: organization × associativity grids.
// ---------------------------------------------------------------------

// Fig4Cell is one bar of Figure 4: mean EDP reduction for one
// organization at one associativity.
type Fig4Cell struct {
	Assoc           int
	Org             resizecache.Organization
	EDPReductionPct float64
}

// Fig4Result holds both charts of Figure 4 (and Figure 6).
type Fig4Result struct {
	DCache []Fig4Cell
	ICache []Fig4Cell
}

// Cell returns the mean EDP reduction for (side, org, assoc); side is
// DOnly or IOnly.
func (f Fig4Result) Cell(side resizecache.Sides, org resizecache.Organization, assoc int) (float64, bool) {
	cells := f.DCache
	if side == resizecache.IOnly {
		cells = f.ICache
	}
	for _, c := range cells {
		if c.Org == org && c.Assoc == assoc {
			return c.EDPReductionPct, true
		}
	}
	return 0, false
}

// OrgGrid sweeps an organization × associativity grid for the d- and
// i-cache sides separately under the static strategy — the machinery of
// Figures 4 and 6 — as one plan.
func OrgGrid(ctx context.Context, s resizecache.Executor, orgs []resizecache.Organization, assocs []int, o Options) (Fig4Result, error) {
	grid := resizecache.Grid{
		Benchmarks:    o.apps(),
		Organizations: orgs,
		Strategies:    []resizecache.Strategy{resizecache.Static},
		Assocs:        assocs,
		Sides:         []resizecache.Sides{resizecache.DOnly, resizecache.IOnly},
		Instructions:  o.Instructions,
		Sampling:      o.Sampling,
	}
	apps := o.apps()
	return cachedFigure(ctx, s, "org-grid", grid, o, func(outs map[cell]resizecache.Outcome) (Fig4Result, error) {
		var f Fig4Result
		for _, side := range []resizecache.Sides{resizecache.DOnly, resizecache.IOnly} {
			for _, assoc := range assocs {
				for _, org := range orgs {
					var sum float64
					for _, app := range apps {
						sum += outs[cell{app: app, org: org, strat: resizecache.Static,
							assoc: assoc, sides: side}].EDPReductionPct
					}
					c := Fig4Cell{Assoc: assoc, Org: org,
						EDPReductionPct: sum / float64(len(apps))}
					if side == resizecache.DOnly {
						f.DCache = append(f.DCache, c)
					} else {
						f.ICache = append(f.ICache, c)
					}
				}
			}
		}
		return f, nil
	})
}

// Figure4 regenerates Figure 4: static selective-ways vs selective-sets,
// mean processor EDP reduction, for 2/4/8/16-way 32K caches.
func Figure4(ctx context.Context, s resizecache.Executor, o Options) (Fig4Result, error) {
	return OrgGrid(ctx, s,
		[]resizecache.Organization{resizecache.SelectiveWays, resizecache.SelectiveSets},
		[]int{2, 4, 8, 16}, o)
}

// Figure6 regenerates Figure 6: hybrid vs selective-ways vs
// selective-sets across associativities.
func Figure6(ctx context.Context, s resizecache.Executor, o Options) (Fig4Result, error) {
	return OrgGrid(ctx, s,
		[]resizecache.Organization{resizecache.Hybrid, resizecache.SelectiveWays, resizecache.SelectiveSets},
		[]int{2, 4, 8, 16}, o)
}

// ---------------------------------------------------------------------
// Figure 5: per-application comparison at 4-way.
// ---------------------------------------------------------------------

// Fig5Row is one application's bars in Figure 5.
type Fig5Row struct {
	App             string
	WaysSizeRedPct  float64
	SetsSizeRedPct  float64
	WaysEDPRedPct   float64
	SetsEDPRedPct   float64
	WaysChosen      string
	SetsChosen      string
	WaysSlowdownPct float64
	SetsSlowdownPct float64
}

// Fig5Result holds per-app rows plus averages for one cache side.
type Fig5Result struct {
	Side resizecache.Sides
	Rows []Fig5Row
}

// Averages returns mean (sizeWays, sizeSets, edpWays, edpSets).
func (f Fig5Result) Averages() (sw, ss, ew, es float64) {
	if len(f.Rows) == 0 {
		return
	}
	for _, r := range f.Rows {
		sw += r.WaysSizeRedPct
		ss += r.SetsSizeRedPct
		ew += r.WaysEDPRedPct
		es += r.SetsEDPRedPct
	}
	n := float64(len(f.Rows))
	return sw / n, ss / n, ew / n, es / n
}

// Row returns the row for an app.
func (f Fig5Result) Row(app string) (Fig5Row, bool) {
	for _, r := range f.Rows {
		if r.App == app {
			return r, true
		}
	}
	return Fig5Row{}, false
}

// Figure5 regenerates Figure 5 for one side (DOnly or IOnly): per-app
// average-size and EDP reductions of static selective-ways vs
// selective-sets on 32K 4-way.
func Figure5(ctx context.Context, s resizecache.Executor, side resizecache.Sides, o Options) (Fig5Result, error) {
	if side != resizecache.DOnly && side != resizecache.IOnly {
		return Fig5Result{}, fmt.Errorf("figures: Figure 5 compares single-cache resizings (got %v)", side)
	}
	grid := resizecache.Grid{
		Benchmarks:    o.apps(),
		Organizations: []resizecache.Organization{resizecache.SelectiveWays, resizecache.SelectiveSets},
		Strategies:    []resizecache.Strategy{resizecache.Static},
		Assocs:        []int{4},
		Sides:         []resizecache.Sides{side},
		Instructions:  o.Instructions,
		Sampling:      o.Sampling,
	}
	return cachedFigure(ctx, s, "fig5", grid, o, func(outs map[cell]resizecache.Outcome) (Fig5Result, error) {
		sizeRed := func(out resizecache.Outcome) float64 {
			if side == resizecache.IOnly {
				return out.ICacheSizeReductionPct
			}
			return out.DCacheSizeReductionPct
		}
		chosen := func(out resizecache.Outcome) string {
			if side == resizecache.IOnly {
				return out.IChosen
			}
			return out.DChosen
		}
		f := Fig5Result{Side: side}
		for _, app := range o.apps() {
			w := outs[cell{app: app, org: resizecache.SelectiveWays, strat: resizecache.Static, assoc: 4, sides: side}]
			st := outs[cell{app: app, org: resizecache.SelectiveSets, strat: resizecache.Static, assoc: 4, sides: side}]
			f.Rows = append(f.Rows, Fig5Row{
				App:             app,
				WaysSizeRedPct:  sizeRed(w),
				SetsSizeRedPct:  sizeRed(st),
				WaysEDPRedPct:   w.EDPReductionPct,
				SetsEDPRedPct:   st.EDPReductionPct,
				WaysChosen:      chosen(w),
				SetsChosen:      chosen(st),
				WaysSlowdownPct: w.SlowdownPct,
				SetsSlowdownPct: st.SlowdownPct,
			})
		}
		sort.Slice(f.Rows, func(i, j int) bool { return f.Rows[i].App < f.Rows[j].App })
		return f, nil
	})
}

// ---------------------------------------------------------------------
// Figures 7 & 8: static vs dynamic on the two processor types.
// ---------------------------------------------------------------------

// Fig7Row is one application under one engine: static vs dynamic.
type Fig7Row struct {
	App               string
	StaticSizeRedPct  float64
	DynamicSizeRedPct float64
	StaticEDPRedPct   float64
	DynamicEDPRedPct  float64
	StaticChosen      string
	DynamicChosen     string
}

// Fig7Result is one panel (one engine) of Figure 7 or 8.
type Fig7Result struct {
	Side   resizecache.Sides
	Engine resizecache.Engine
	Rows   []Fig7Row
}

// Averages returns mean (staticSize, dynSize, staticEDP, dynEDP).
func (f Fig7Result) Averages() (ss, ds, se, de float64) {
	if len(f.Rows) == 0 {
		return
	}
	for _, r := range f.Rows {
		ss += r.StaticSizeRedPct
		ds += r.DynamicSizeRedPct
		se += r.StaticEDPRedPct
		de += r.DynamicEDPRedPct
	}
	n := float64(len(f.Rows))
	return ss / n, ds / n, se / n, de / n
}

// Row returns the row for an app.
func (f Fig7Result) Row(app string) (Fig7Row, bool) {
	for _, r := range f.Rows {
		if r.App == app {
			return r, true
		}
	}
	return Fig7Row{}, false
}

// StrategyPanel runs the static-vs-dynamic comparison (the machinery of
// Figures 7 and 8) for one cache side (DOnly or IOnly) and engine, on
// 32K 2-way selective-sets as in the paper — one plan spanning both
// strategies' sweeps.
func StrategyPanel(ctx context.Context, s resizecache.Executor, side resizecache.Sides, engine resizecache.Engine, o Options) (Fig7Result, error) {
	if side != resizecache.DOnly && side != resizecache.IOnly {
		return Fig7Result{}, fmt.Errorf("figures: strategy panels compare single-cache resizings (got %v)", side)
	}
	grid := resizecache.Grid{
		Benchmarks:    o.apps(),
		Organizations: []resizecache.Organization{resizecache.SelectiveSets},
		Strategies:    []resizecache.Strategy{resizecache.Static, resizecache.Dynamic},
		Assocs:        []int{2},
		Sides:         []resizecache.Sides{side},
		Engines:       []resizecache.Engine{engine},
		Instructions:  o.Instructions,
		Sampling:      o.Sampling,
	}
	return cachedFigure(ctx, s, "strategy-panel", grid, o, func(outs map[cell]resizecache.Outcome) (Fig7Result, error) {
		inOrder := engine == resizecache.InOrderEngine
		sizeRed := func(out resizecache.Outcome) float64 {
			if side == resizecache.IOnly {
				return out.ICacheSizeReductionPct
			}
			return out.DCacheSizeReductionPct
		}
		chosen := func(out resizecache.Outcome) string {
			if side == resizecache.IOnly {
				return out.IChosen
			}
			return out.DChosen
		}
		f := Fig7Result{Side: side, Engine: engine}
		for _, app := range o.apps() {
			st := outs[cell{app: app, org: resizecache.SelectiveSets, strat: resizecache.Static, assoc: 2, sides: side, inOrder: inOrder}]
			dy := outs[cell{app: app, org: resizecache.SelectiveSets, strat: resizecache.Dynamic, assoc: 2, sides: side, inOrder: inOrder}]
			f.Rows = append(f.Rows, Fig7Row{
				App:               app,
				StaticSizeRedPct:  sizeRed(st),
				DynamicSizeRedPct: sizeRed(dy),
				StaticEDPRedPct:   st.EDPReductionPct,
				DynamicEDPRedPct:  dy.EDPReductionPct,
				StaticChosen:      chosen(st),
				DynamicChosen:     chosen(dy),
			})
		}
		sort.Slice(f.Rows, func(i, j int) bool { return f.Rows[i].App < f.Rows[j].App })
		return f, nil
	})
}

// Figure7 regenerates Figure 7 (d-cache): panel (a) in-order/blocking,
// panel (b) out-of-order/non-blocking.
func Figure7(ctx context.Context, s resizecache.Executor, o Options) (inorder, ooo Fig7Result, err error) {
	inorder, err = StrategyPanel(ctx, s, resizecache.DOnly, resizecache.InOrderEngine, o)
	if err != nil {
		return
	}
	ooo, err = StrategyPanel(ctx, s, resizecache.DOnly, resizecache.OutOfOrderEngine, o)
	return
}

// Figure8 regenerates Figure 8 (i-cache).
func Figure8(ctx context.Context, s resizecache.Executor, o Options) (inorder, ooo Fig7Result, err error) {
	inorder, err = StrategyPanel(ctx, s, resizecache.IOnly, resizecache.InOrderEngine, o)
	if err != nil {
		return
	}
	ooo, err = StrategyPanel(ctx, s, resizecache.IOnly, resizecache.OutOfOrderEngine, o)
	return
}

// ---------------------------------------------------------------------
// Figure 9: resizing d-cache and i-cache together.
// ---------------------------------------------------------------------

// Fig9Row is one application's three bars: d alone, i alone, both.
type Fig9Row struct {
	App string
	// Size reductions are normalized to the combined base d+i capacity.
	DAloneSizeRedPct float64
	IAloneSizeRedPct float64
	BothSizeRedPct   float64
	DAloneEDPRedPct  float64
	IAloneEDPRedPct  float64
	BothEDPRedPct    float64
	BothSlowdownPct  float64
}

// Fig9Result holds Figure 9.
type Fig9Result struct {
	Rows []Fig9Row
}

// Averages returns mean (dSize, iSize, bothSize, dEDP, iEDP, bothEDP).
func (f Fig9Result) Averages() (dsz, isz, bsz, de, ie, be float64) {
	if len(f.Rows) == 0 {
		return
	}
	for _, r := range f.Rows {
		dsz += r.DAloneSizeRedPct
		isz += r.IAloneSizeRedPct
		bsz += r.BothSizeRedPct
		de += r.DAloneEDPRedPct
		ie += r.IAloneEDPRedPct
		be += r.BothEDPRedPct
	}
	n := float64(len(f.Rows))
	return dsz / n, isz / n, bsz / n, de / n, ie / n, be / n
}

// Row returns the row for an app.
func (f Fig9Result) Row(app string) (Fig9Row, bool) {
	for _, r := range f.Rows {
		if r.App == app {
			return r, true
		}
	}
	return Fig9Row{}, false
}

// Figure9 regenerates Figure 9: static selective-sets resizing of the
// d-cache alone, the i-cache alone, and both simultaneously, on the
// base configuration (32K 2-way L1s, out-of-order engine) — one plan
// over the three Sides values. The BothSides scenario holds each cache
// at its standalone profiled winner, matching the paper's
// decoupled-profiling argument.
func Figure9(ctx context.Context, s resizecache.Executor, o Options) (Fig9Result, error) {
	grid := resizecache.Grid{
		Benchmarks:    o.apps(),
		Organizations: []resizecache.Organization{resizecache.SelectiveSets},
		Strategies:    []resizecache.Strategy{resizecache.Static},
		Assocs:        []int{2},
		Sides:         []resizecache.Sides{resizecache.DOnly, resizecache.IOnly, resizecache.BothSides},
		Instructions:  o.Instructions,
		Sampling:      o.Sampling,
	}
	return cachedFigure(ctx, s, "fig9", grid, o, func(outs map[cell]resizecache.Outcome) (Fig9Result, error) {
		var f Fig9Result
		at := func(app string, side resizecache.Sides) resizecache.Outcome {
			return outs[cell{app: app, org: resizecache.SelectiveSets,
				strat: resizecache.Static, assoc: 2, sides: side}]
		}
		for _, app := range o.apps() {
			d, i, both := at(app, resizecache.DOnly), at(app, resizecache.IOnly), at(app, resizecache.BothSides)
			// The two L1s are the same size, so a per-cache reduction is half
			// of the combined d+i capacity reduction.
			f.Rows = append(f.Rows, Fig9Row{
				App:              app,
				DAloneSizeRedPct: d.DCacheSizeReductionPct / 2,
				IAloneSizeRedPct: i.ICacheSizeReductionPct / 2,
				BothSizeRedPct:   (both.DCacheSizeReductionPct + both.ICacheSizeReductionPct) / 2,
				DAloneEDPRedPct:  d.EDPReductionPct,
				IAloneEDPRedPct:  i.EDPReductionPct,
				BothEDPRedPct:    both.EDPReductionPct,
				BothSlowdownPct:  both.SlowdownPct,
			})
		}
		sort.Slice(f.Rows, func(i, j int) bool { return f.Rows[i].App < f.Rows[j].App })
		return f, nil
	})
}

// ---------------------------------------------------------------------
// L2 resizing: the hierarchy-as-data extension figure.
// ---------------------------------------------------------------------

// FigL2Row is one L2 organization's suite-mean outcome under L2-only
// resizing of the base hierarchy's 512K 4-way L2.
type FigL2Row struct {
	Org             resizecache.Organization
	EDPReductionPct float64
	L2SizeRedPct    float64
	SlowdownPct     float64
	// Energy is the suite-mean processor energy breakdown of the chosen
	// configurations — where the saved L2 energy shows up.
	Energy resizecache.EnergyShares
}

// FigL2Result holds the L2-resizing sensitivity figure for one strategy.
type FigL2Result struct {
	Strategy resizecache.Strategy
	Rows     []FigL2Row
}

// Row returns the row for an organization.
func (f FigL2Result) Row(org resizecache.Organization) (FigL2Row, bool) {
	for _, r := range f.Rows {
		if r.Org == org {
			return r, true
		}
	}
	return FigL2Row{}, false
}

// FigureL2 regenerates the L2-resizing sensitivity extension: resize
// the shared L2 alone under each organization (selective-ways,
// selective-sets, hybrid) with the given strategy, and report the
// suite-mean EDP reduction, L2 size reduction, and energy breakdown —
// one plan over the L2Orgs axis through Session.Run, cached like every
// other figure.
func FigureL2(ctx context.Context, s resizecache.Executor, strat resizecache.Strategy, o Options) (FigL2Result, error) {
	orgs := []resizecache.Organization{
		resizecache.SelectiveWays, resizecache.SelectiveSets, resizecache.Hybrid}
	grid := resizecache.Grid{
		Benchmarks: o.apps(),
		// The L1 organization axis is inert for L2-only cells; one value
		// keeps the pre-dedup expansion small.
		Organizations: []resizecache.Organization{resizecache.SelectiveSets},
		Sides:         []resizecache.Sides{resizecache.L2Only},
		L2Orgs:        orgs,
		L2Strategies:  []resizecache.Strategy{strat},
		Instructions:  o.Instructions,
		Sampling:      o.Sampling,
	}
	apps := o.apps()
	return cachedFigure(ctx, s, "fig-l2", grid, o, func(outs map[cell]resizecache.Outcome) (FigL2Result, error) {
		f := FigL2Result{Strategy: strat}
		for _, org := range orgs {
			row := FigL2Row{Org: org}
			for _, app := range apps {
				out := outs[cell{app: app, org: resizecache.NonResizable,
					strat: resizecache.Static, assoc: 2, sides: resizecache.L2Only,
					l2org: org, l2strat: strat, l2assoc: 4}]
				row.EDPReductionPct += out.EDPReductionPct
				row.L2SizeRedPct += out.L2SizeReductionPct
				row.SlowdownPct += out.SlowdownPct
				row.Energy = row.Energy.Add(out.Energy)
			}
			inv := 1 / float64(len(apps))
			row.EDPReductionPct *= inv
			row.L2SizeRedPct *= inv
			row.SlowdownPct *= inv
			row.Energy = row.Energy.Scale(inv)
			f.Rows = append(f.Rows, row)
		}
		return f, nil
	})
}
