package figures

import (
	"context"
	"strings"
	"testing"

	"resizecache"
)

// fastOpts trades fidelity for test speed; claim tests use tolerant
// thresholds accordingly. Full-fidelity numbers come from cmd/figures.
// 1M instructions covers at least one full phase period of every
// profile; shorter runs truncate phase structure and distort the
// profiling sweeps.
func fastOpts() Options {
	return Options{Instructions: 1_000_000}
}

func TestTable1RendersPaperSchedule(t *testing.T) {
	s, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"32K", "24K", "12K", "6K", "3K",
		"24K/3-way", "16K/4-way", "2K/2-way", "1K/1-way"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Table1 missing %q:\n%s", frag, s)
		}
	}
}

func TestTable2RendersBaseConfig(t *testing.T) {
	s := Table2()
	for _, frag := range []string{"4 instrs per cycle", "64 entries / 32 entries",
		"32K 2-way", "512K 4-way", "80 + 5 per 8 bytes"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Table2 missing %q:\n%s", frag, s)
		}
	}
}

func TestOrgGridCrossover(t *testing.T) {
	// The paper's organization conclusion: selective-sets wins at
	// associativity <= 4, selective-ways at >= 8 — checked at the
	// endpoints to keep the test affordable.
	if testing.Short() {
		t.Skip("multi-sweep in -short mode")
	}
	f, err := OrgGrid(context.Background(), resizecache.NewSession(),
		[]resizecache.Organization{resizecache.SelectiveWays, resizecache.SelectiveSets},
		[]int{2, 16}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, side := range []resizecache.Sides{resizecache.DOnly, resizecache.IOnly} {
		get := func(org resizecache.Organization, assoc int) float64 {
			v, ok := f.Cell(side, org, assoc)
			if !ok {
				t.Fatalf("%v: missing cell %v/%d", side, org, assoc)
			}
			return v
		}
		if get(resizecache.SelectiveSets, 2) <= get(resizecache.SelectiveWays, 2) {
			t.Errorf("%v: sets should win at 2-way (%.1f vs %.1f)", side,
				get(resizecache.SelectiveSets, 2), get(resizecache.SelectiveWays, 2))
		}
		if get(resizecache.SelectiveWays, 16) <= get(resizecache.SelectiveSets, 16) {
			t.Errorf("%v: ways should win at 16-way (%.1f vs %.1f)", side,
				get(resizecache.SelectiveWays, 16), get(resizecache.SelectiveSets, 16))
		}
	}
}

func TestHybridDominatesAtLowAssoc(t *testing.T) {
	// Paper Fig. 6: hybrid equals or improves on both organizations. Our
	// reproduction holds this strictly at <= 8-way; at 16-way the hybrid
	// pays its provisioned tag array and per-way tag banks (documented in
	// EXPERIMENTS.md), so the claim is checked at 4-way here.
	if testing.Short() {
		t.Skip("multi-sweep in -short mode")
	}
	f, err := OrgGrid(context.Background(), resizecache.NewSession(),
		[]resizecache.Organization{resizecache.Hybrid, resizecache.SelectiveWays, resizecache.SelectiveSets},
		[]int{4}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, side := range []resizecache.Sides{resizecache.DOnly, resizecache.IOnly} {
		get := func(org resizecache.Organization) float64 {
			v, _ := f.Cell(side, org, 4)
			return v
		}
		hy, wy, st := get(resizecache.Hybrid), get(resizecache.SelectiveWays), get(resizecache.SelectiveSets)
		if hy+0.3 < wy || hy+0.3 < st {
			t.Errorf("%v: hybrid %.1f%% should dominate ways %.1f%% and sets %.1f%%", side, hy, wy, st)
		}
	}
}

func TestDynamicBeatsStaticOnInOrderDCache(t *testing.T) {
	// Paper Fig. 7a: with d-miss latency exposed (in-order, blocking),
	// dynamic resizing clearly beats static on phase-varying apps.
	if testing.Short() {
		t.Skip("dynamic sweep in -short mode")
	}
	o := fastOpts()
	o.Apps = []string{"su2cor", "compress", "gcc", "vortex"}
	panel, err := StrategyPanel(context.Background(), resizecache.NewSession(),
		resizecache.DOnly, resizecache.InOrderEngine, o)
	if err != nil {
		t.Fatal(err)
	}
	_, _, se, de := panel.Averages()
	if de <= se {
		t.Errorf("in-order d-cache: dynamic %.1f%% should beat static %.1f%%", de, se)
	}
}

// tinyOpts runs one app at minimal fidelity — enough to exercise the
// plan plumbing without a full-fidelity sweep.
func tinyOpts() Options {
	return Options{Instructions: 60_000, Apps: []string{"m88ksim"}}
}

// TestFigureGridsRunAsBatchedPlans: each figure driver must execute its
// whole grid as one Session.Run plan — a single enqueue pass, zero
// fan-out barriers at gather time — and repeating an overlapping figure
// on the same session must reuse its sweeps without simulating.
func TestFigureGridsRunAsBatchedPlans(t *testing.T) {
	ctx := context.Background()
	s := resizecache.NewSession()
	var progressed int
	o := tinyOpts()
	o.Progress = func(done, total int) { progressed = done }
	if _, err := Figure4(ctx, s, o); err != nil {
		t.Fatal(err)
	}
	cold := s.Stats()
	if cold.EnqueueBatches != 1 {
		t.Errorf("Figure 4 used %d enqueue passes, want 1", cold.EnqueueBatches)
	}
	if cold.Barriers != 0 {
		t.Errorf("Figure 4 gathers fanned out %d barriers, want 0", cold.Barriers)
	}
	// 1 app × 2 orgs × 4 assocs × 2 sides.
	if progressed != 16 {
		t.Errorf("progress callback ended at %d, want 16", progressed)
	}

	// Figure 6 repeats every (ways, sets) cell of Figure 4; only the
	// hybrid sweeps are new work, and they ride one more batched pass.
	if _, err := Figure6(ctx, s, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	warm := s.Stats()
	if warm.ArtifactHits <= cold.ArtifactHits {
		t.Errorf("Figure 6 reused no sweeps from Figure 4: %+v", warm)
	}
	if warm.Barriers != 0 {
		t.Errorf("warm figure fanned out %d barriers", warm.Barriers)
	}

	// Fully warm: re-rendering Figure 4 must not simulate or enqueue.
	if _, err := Figure4(ctx, s, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	again := s.Stats()
	if again.Runs != warm.Runs || again.Enqueued != warm.Enqueued {
		t.Errorf("warm Figure 4 did fresh work: %+v -> %+v", warm, again)
	}
}

func TestFigure9DecoupledRows(t *testing.T) {
	f, err := Figure9(context.Background(), resizecache.NewSession(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := f.Row("m88ksim")
	if !ok {
		t.Fatal("missing m88ksim row")
	}
	// m88ksim downsizes both caches: every size column is positive and
	// the combined reduction at least matches the larger standalone one
	// (each standalone column is normalized to the combined capacity).
	if r.DAloneSizeRedPct <= 0 || r.IAloneSizeRedPct <= 0 || r.BothSizeRedPct <= 0 {
		t.Errorf("size columns not positive: %+v", r)
	}
	if r.BothSizeRedPct+0.5 < r.DAloneSizeRedPct || r.BothSizeRedPct+0.5 < r.IAloneSizeRedPct {
		t.Errorf("combined size reduction below a standalone one: %+v", r)
	}
}

func TestPanelsRejectBothSides(t *testing.T) {
	ctx := context.Background()
	s := resizecache.NewSession()
	if _, err := Figure5(ctx, s, resizecache.BothSides, tinyOpts()); err == nil {
		t.Error("Figure5 accepted BothSides")
	}
	if _, err := StrategyPanel(ctx, s, resizecache.BothSides, resizecache.OutOfOrderEngine, tinyOpts()); err == nil {
		t.Error("StrategyPanel accepted BothSides")
	}
}

// TestFigureLevelArtifactCache: a figure's aggregate memoizes one tier
// above the per-sweep artifacts — re-rendering a warm figure resolves
// as one figure-level artifact hit without probing a single per-cell
// sweep, submitting a simulation, or enqueueing work.
func TestFigureLevelArtifactCache(t *testing.T) {
	ctx := context.Background()
	s := resizecache.NewSession()
	first, err := Figure4(ctx, s, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	cold := s.Stats()
	if cold.Runs == 0 {
		t.Fatalf("cold figure ran nothing: %+v", cold)
	}
	second, err := Figure4(ctx, s, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	warm := s.Stats()
	if warm.Runs != cold.Runs || warm.Submitted != cold.Submitted || warm.Enqueued != cold.Enqueued {
		t.Errorf("warm figure did fresh work: %+v -> %+v", cold, warm)
	}
	if got := warm.ArtifactHits - cold.ArtifactHits; got != 1 {
		t.Errorf("warm figure scored %d artifact hits, want exactly 1 (the figure-level aggregate)", got)
	}
	if len(second.DCache) != len(first.DCache) || second.DCache[0] != first.DCache[0] {
		t.Errorf("cached figure differs: %+v vs %+v", second, first)
	}
}

// TestFigureL2Plumbing: the L2 figure runs end to end on a tiny grid.
func TestFigureL2Plumbing(t *testing.T) {
	f, err := FigureL2(context.Background(), resizecache.NewSession(), resizecache.Static, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 organizations", len(f.Rows))
	}
	r, ok := f.Row(resizecache.SelectiveWays)
	if !ok {
		t.Fatal("missing selective-ways row")
	}
	if r.Energy.L2Pct <= 0 {
		t.Errorf("no L2 energy share: %+v", r)
	}
	if s := f.Render(); !strings.Contains(s, "selective-ways") {
		t.Errorf("render missing organization rows:\n%s", s)
	}
}

// TestFigureL2ResizingPaysOff: the hierarchy-as-data claim test — the
// suite's working sets sit far below 512K, so resizing the L2 alone
// must shrink it substantially and reduce processor energy-delay.
func TestFigureL2ResizingPaysOff(t *testing.T) {
	if testing.Short() {
		t.Skip("L2 sweep in -short mode")
	}
	o := fastOpts()
	o.Apps = []string{"m88ksim", "compress", "gcc"}
	f, err := FigureL2(context.Background(), resizecache.NewSession(), resizecache.Static, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, org := range []resizecache.Organization{resizecache.SelectiveWays, resizecache.SelectiveSets} {
		r, ok := f.Row(org)
		if !ok {
			t.Fatalf("missing %v row", org)
		}
		if r.L2SizeRedPct <= 10 {
			t.Errorf("%v: L2 barely shrank (%.1f%%)", org, r.L2SizeRedPct)
		}
		if r.EDPReductionPct <= 0 {
			t.Errorf("%v: no EDP gain from L2 resizing (%.1f%%)", org, r.EDPReductionPct)
		}
	}
}
