package figures

import (
	"strings"
	"testing"

	"resizecache"
)

func TestFig4ResultAccessorsAndRender(t *testing.T) {
	f := Fig4Result{
		DCache: []Fig4Cell{{Assoc: 2, Org: resizecache.SelectiveWays, EDPReductionPct: 5.5},
			{Assoc: 2, Org: resizecache.SelectiveSets, EDPReductionPct: 9.1}},
		ICache: []Fig4Cell{{Assoc: 2, Org: resizecache.SelectiveWays, EDPReductionPct: 6.0},
			{Assoc: 2, Org: resizecache.SelectiveSets, EDPReductionPct: 11.2}},
	}
	if v, ok := f.Cell(resizecache.DOnly, resizecache.SelectiveSets, 2); !ok || v != 9.1 {
		t.Fatalf("Cell = %v,%v", v, ok)
	}
	if _, ok := f.Cell(resizecache.IOnly, resizecache.Hybrid, 16); ok {
		t.Fatal("missing cell reported present")
	}
	s := f.Render()
	for _, frag := range []string{"Figure 4", "D-Cache", "I-Cache", "selective-ways", "9.1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Render missing %q", frag)
		}
	}
	s6 := RenderFigure6(f)
	if !strings.Contains(s6, "Figure 6") || !strings.Contains(s6, "hybrid") {
		t.Errorf("Figure 6 render broken: %q", s6[:60])
	}
}

func TestFig5ResultAccessorsAndRender(t *testing.T) {
	f := Fig5Result{Side: resizecache.DOnly, Rows: []Fig5Row{
		{App: "gcc", WaysSizeRedPct: 50, SetsSizeRedPct: 50, WaysEDPRedPct: 2, SetsEDPRedPct: 4,
			WaysChosen: "static 16K/2-way", SetsChosen: "static 16K/4-way"},
		{App: "vpr", WaysSizeRedPct: 25, SetsSizeRedPct: 50, WaysEDPRedPct: 1, SetsEDPRedPct: 5},
	}}
	sw, ss, ew, es := f.Averages()
	if sw != 37.5 || ss != 50 || ew != 1.5 || es != 4.5 {
		t.Fatalf("Averages = %v %v %v %v", sw, ss, ew, es)
	}
	if r, ok := f.Row("vpr"); !ok || r.SetsEDPRedPct != 5 {
		t.Fatalf("Row = %+v,%v", r, ok)
	}
	if _, ok := f.Row("nosuch"); ok {
		t.Fatal("missing row reported present")
	}
	s := f.Render()
	for _, frag := range []string{"Figure 5", "d-cache", "gcc", "AVG.", "16K/2-way"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Render missing %q", frag)
		}
	}
	if (Fig5Result{}).Render() == "" {
		t.Error("empty render should still produce a header")
	}
	var empty Fig5Result
	if a, b, c, d := empty.Averages(); a+b+c+d != 0 {
		t.Error("empty averages should be zero")
	}
}

func TestFig7ResultAccessorsAndRender(t *testing.T) {
	f := Fig7Result{Side: resizecache.IOnly, Engine: resizecache.InOrderEngine, Rows: []Fig7Row{
		{App: "su2cor", StaticSizeRedPct: 50, DynamicSizeRedPct: 60,
			StaticEDPRedPct: 6, DynamicEDPRedPct: 8,
			StaticChosen: "static 16K", DynamicChosen: "dynamic mb=512"},
	}}
	ss, ds, se, de := f.Averages()
	if ss != 50 || ds != 60 || se != 6 || de != 8 {
		t.Fatalf("Averages = %v %v %v %v", ss, ds, se, de)
	}
	if r, ok := f.Row("su2cor"); !ok || r.DynamicEDPRedPct != 8 {
		t.Fatalf("Row = %+v,%v", r, ok)
	}
	if _, ok := f.Row("x"); ok {
		t.Fatal("missing row reported present")
	}
	s := f.Render()
	for _, frag := range []string{"i-cache", "in-order", "su2cor", "dynamic mb=512", "AVG."} {
		if !strings.Contains(s, frag) {
			t.Errorf("Render missing %q", frag)
		}
	}
	var empty Fig7Result
	if a, b, c, d := empty.Averages(); a+b+c+d != 0 {
		t.Error("empty averages should be zero")
	}
}

func TestFig9ResultAccessorsAndRender(t *testing.T) {
	f := Fig9Result{Rows: []Fig9Row{
		{App: "ammp", DAloneSizeRedPct: 40, IAloneSizeRedPct: 45, BothSizeRedPct: 85,
			DAloneEDPRedPct: 15, IAloneEDPRedPct: 13, BothEDPRedPct: 28},
	}}
	dsz, isz, bsz, de, ie, be := f.Averages()
	if dsz != 40 || isz != 45 || bsz != 85 || de != 15 || ie != 13 || be != 28 {
		t.Fatal("Averages broken")
	}
	if r, ok := f.Row("ammp"); !ok || r.BothEDPRedPct != 28 {
		t.Fatalf("Row = %+v,%v", r, ok)
	}
	if _, ok := f.Row("x"); ok {
		t.Fatal("missing row reported present")
	}
	s := f.Render()
	for _, frag := range []string{"Figure 9", "ammp", "d+i sum", "AVG."} {
		if !strings.Contains(s, frag) {
			t.Errorf("Render missing %q", frag)
		}
	}
	var empty Fig9Result
	a1, a2, a3, a4, a5, a6 := empty.Averages()
	if a1+a2+a3+a4+a5+a6 != 0 {
		t.Error("empty averages should be zero")
	}
}
