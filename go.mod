module resizecache

go 1.24
